package manetskyline_test

import (
	"fmt"

	sky "manetskyline"
)

// The paper's §3.2 walk-through: device M2 originates a query over hotel
// relations held by two devices; the filtering tuple h21 prunes M1's local
// skyline before transmission.
func Example() {
	hotel := func(x float64, price, rating float64) sky.Tuple {
		return sky.Tuple{X: x, Y: x, Attrs: []float64{price, rating}}
	}
	r1 := []sky.Tuple{
		hotel(11, 20, 7), hotel(12, 40, 5), hotel(13, 80, 7),
		hotel(14, 80, 4), hotel(15, 100, 7), hotel(16, 100, 3),
	}
	r2 := []sky.Tuple{
		hotel(21, 60, 3), hotel(22, 90, 2), hotel(23, 120, 1),
		hotel(24, 140, 2), hotel(25, 100, 4),
	}
	schema := sky.Schema{Min: []float64{0, 0}, Max: []float64{200, 10}}

	m1 := sky.NewDevice(1, r1, schema, sky.Exact, true)
	m2 := sky.NewDevice(2, r2, schema, sky.Exact, true)

	q, local := m2.Originate(sky.Point{}, sky.Unconstrained())
	fmt.Printf("filter: price=%.0f rating=%.0f\n", q.Filter.Attrs[0], q.Filter.Attrs[1])

	reply := m1.Process(q)
	fmt.Printf("M1 sends %d of %d local skyline tuples\n", len(reply.Skyline), reply.Unreduced)

	final := sky.Merge(local.Skyline, reply.Skyline)
	fmt.Printf("final skyline: %d hotels\n", len(final))
	// Output:
	// filter: price=60 rating=3
	// M1 sends 2 of 4 local skyline tuples
	// final skyline: 5 hotels
}

// ExampleSkyline evaluates a centralized skyline.
func ExampleSkyline() {
	data := []sky.Tuple{
		{X: 0, Y: 0, Attrs: []float64{1, 9}},
		{X: 1, Y: 1, Attrs: []float64{5, 5}},
		{X: 2, Y: 2, Attrs: []float64{9, 1}},
		{X: 3, Y: 3, Attrs: []float64{6, 6}}, // dominated by (5,5)
	}
	for _, t := range sky.Skyline(data) {
		fmt.Println(t.Attrs)
	}
	// Output:
	// [1 9]
	// [5 5]
	// [9 1]
}

// ExampleConstrainedSkyline restricts the skyline to a query region.
func ExampleConstrainedSkyline() {
	data := []sky.Tuple{
		{X: 0, Y: 0, Attrs: []float64{3, 3}},
		{X: 100, Y: 0, Attrs: []float64{1, 1}}, // better, but too far
	}
	result := sky.ConstrainedSkyline(data, sky.Point{X: 0, Y: 0}, 50)
	fmt.Println(len(result), result[0].Attrs)
	// Output:
	// 1 [3 3]
}
