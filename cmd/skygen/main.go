// Command skygen generates the synthetic datasets of the paper's evaluation
// as CSV, optionally pre-partitioned into per-device files.
//
// Usage:
//
//	skygen -n 100000 -dim 2 -dist AC -o data.csv
//	skygen -n 100000 -dim 2 -dist IN -grid 5 -o dev        # dev-00.csv …
package main

import (
	"flag"
	"fmt"
	"os"

	"manetskyline/internal/gen"
	"manetskyline/internal/tuple"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "skygen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 100000, "number of tuples")
		dim      = flag.Int("dim", 2, "non-spatial attributes")
		dist     = flag.String("dist", "IN", "distribution: IN|AC|CO")
		distinct = flag.Int("distinct", 1000, "distinct values per attribute (0 = continuous)")
		space    = flag.Float64("space", 1000, "spatial extent")
		grid     = flag.Int("grid", 0, "partition into grid² local relations (0 = single file)")
		format   = flag.String("format", "csv", "output format: csv|bin")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "data.csv", "output file, or prefix with -grid")
	)
	flag.Parse()

	cfg := gen.DefaultConfig(*n, *dim, gen.Independent, *seed)
	switch *dist {
	case "IN":
		cfg.Dist = gen.Independent
	case "AC":
		cfg.Dist = gen.AntiCorrelated
	case "CO":
		cfg.Dist = gen.Correlated
	default:
		return fmt.Errorf("unknown distribution %q", *dist)
	}
	cfg.Distinct = *distinct
	cfg.Space = *space

	var write func(f *os.File, ts []tuple.Tuple) error
	switch *format {
	case "csv":
		write = func(f *os.File, ts []tuple.Tuple) error { return gen.WriteCSV(f, ts) }
	case "bin":
		write = func(f *os.File, ts []tuple.Tuple) error { return gen.WriteBin(f, ts) }
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	data := gen.Generate(cfg)
	if *grid <= 0 {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := write(f, data); err != nil {
			return err
		}
		fmt.Printf("wrote %d tuples to %s\n", len(data), *out)
		return nil
	}

	parts := gen.GridPartition(data, *grid, cfg.Space)
	for i, part := range parts {
		name := fmt.Sprintf("%s-%02d.%s", *out, i, *format)
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := write(f, part); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %6d tuples to %s (cell %d,%d)\n", len(part), name, i / *grid, i%*grid)
	}
	return nil
}
