// Command skysim runs one MANET scenario end to end and reports per-query
// and aggregate metrics — the interactive face of the simulator behind
// Figures 8-12.
//
// Usage:
//
//	skysim -grid 5 -n 50000 -dim 2 -dist IN -d 250 -strategy BF -time 7200
//
// -strategy SF selects the sampling-filter strategy (tune with -filterk,
// -samplek, -samplettl, -samplewait):
//
//	skysim -grid 10 -n 10000 -strategy SF -filterk 2
//
// With -nodes it instead runs the large-scale preset (constant-density
// geometry, compact mobility, flood-installed routes, per-link queues) and
// reports simulator throughput and memory:
//
//	skysim -nodes 30000 -strategy BF
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"manetskyline/internal/bench"
	"manetskyline/internal/core"
	"manetskyline/internal/faults"
	"manetskyline/internal/gen"
	"manetskyline/internal/manet"
	"manetskyline/internal/stats"
	"manetskyline/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "skysim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		grid     = flag.Int("grid", 5, "grid side length (devices = grid²)")
		n        = flag.Int("n", 50000, "global relation cardinality")
		dim      = flag.Int("dim", 2, "non-spatial attributes (2-5)")
		dist     = flag.String("dist", "IN", "attribute distribution: IN|AC|CO")
		d        = flag.Float64("d", 250, "query distance of interest")
		strategy = flag.String("strategy", "BF", "forwarding: BF|DF|SF")
		mode     = flag.String("mode", "UNE", "VDR estimation: EXT|OVE|UNE")
		dynamic  = flag.Bool("dynamic", true, "dynamic filter updates")
		filters  = flag.Int("filters", 1, "filtering tuples per query (§7 multi-filter extension)")
		filterK  = flag.Int("filterk", 0, "SF broadcast filter-set size (0 = default)")
		sampleK  = flag.Int("samplek", 0, "SF per-device sample budget (0 = default)")
		sampleW  = flag.Float64("samplewait", 0, "SF sample-collection window in simulated seconds (0 = default)")
		sampleT  = flag.Int("samplettl", 0, "SF sampling-round flood TTL in hops (0 = default)")
		simTime  = flag.Float64("time", 7200, "simulated seconds")
		minQ     = flag.Int("minq", 1, "min queries per device")
		maxQ     = flag.Int("maxq", 5, "max queries per device")
		static   = flag.Bool("static", false, "disable mobility")
		fade     = flag.Float64("fade", 0, "radio gray-zone fade margin in [0,1]")
		loss     = flag.Float64("loss", 0, "independent frame loss probability")
		redist   = flag.Bool("redistribute", false, "hand relations to devices closer to the data (§7 extension)")
		faultsIn = flag.String("faults", "", "fault plan: a builtin name ("+
			"crash, pause, partition, crash+partition, lossy-center, chaos, churn) or a JSON plan file")
		recall     = flag.Bool("recall", false, "score every result against the centralized skyline oracle")
		retries    = flag.Int("retries", 0, "originator re-issues per query (0 disables)")
		backoff    = flag.Float64("backoff", 15, "delay before the first re-issue, doubling per attempt")
		backoffMax = flag.Float64("backoffmax", 120, "cap on the retry backoff (0 = uncapped)")
		deadline   = flag.Float64("deadline", 0, "per-query deadline in simulated seconds (0 disables)")
		ackTO      = flag.Float64("acktimeout", 5, "DF neighbour acknowledgement timeout")
		subtreeTO  = flag.Float64("subtreetimeout", 300, "DF child subtree result timeout")
		seed       = flag.Int64("seed", 1, "random seed")
		nodes      = flag.Int("nodes", 0, "run the large-scale preset with this many devices (ignores most other flags)")
		scaleTime  = flag.Float64("scaletime", 0, "simulated seconds for the -nodes preset (0 = preset default)")
		scaleOrig  = flag.Int("originators", 0, "query issuers for the -nodes preset (0 = preset default)")
		trace      = flag.String("trace", "", "write a JSONL event trace to this file")
		metrics    = flag.String("metrics", "", `dump Prometheus-format metrics to this file ("-" for stdout)`)
		spansOut   = flag.String("spans", "", `write per-query span timelines as JSON to this file ("-" for stdout)`)
		verbose    = flag.Bool("v", false, "print per-query metrics")
	)
	flag.Parse()

	if *nodes > 0 {
		cfg := bench.LargeConfig{
			Nodes:       *nodes,
			SimTime:     *scaleTime,
			Originators: *scaleOrig,
			Seed:        *seed,
		}
		switch *strategy {
		case "BF":
			cfg.Strategy = manet.BreadthFirst
		case "DF":
			cfg.Strategy = manet.DepthFirst
		case "SF":
			cfg.Strategy = manet.SamplingFilter
		default:
			return fmt.Errorf("unknown strategy %q", *strategy)
		}
		fmt.Printf("scale preset: %d nodes requested, %v forwarding\n\n", *nodes, cfg.Strategy)
		fmt.Print(bench.RunLarge(cfg).Report())
		return nil
	}

	p := manet.DefaultParams()
	p.Grid = *grid
	p.GlobalN = *n
	p.Dim = *dim
	p.QueryDist = *d
	p.Dynamic = *dynamic
	p.NumFilters = *filters
	p.FilterK = *filterK
	p.SampleK = *sampleK
	p.SampleWait = *sampleW
	p.SampleTTL = *sampleT
	p.SimTime = *simTime
	p.MinQueries, p.MaxQueries = *minQ, *maxQ
	p.Static = *static
	p.Radio.FadeMargin = *fade
	p.Radio.Loss = *loss
	p.Redistribute = *redist
	p.Recall = *recall
	p.QueryRetries = *retries
	p.RetryBackoff = *backoff
	p.RetryBackoffMax = *backoffMax
	p.QueryDeadline = *deadline
	p.AckTimeout = *ackTO
	p.SubtreeTimeout = *subtreeTO
	p.Seed = *seed
	if *faultsIn != "" {
		plan, err := faults.Load(*faultsIn, p.NumDevices(), p.SimTime)
		if err != nil {
			return err
		}
		p.Faults = plan
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		defer f.Close()
		p.Trace = f
	}
	if *metrics != "" {
		p.Metrics = telemetry.NewRegistry()
	}
	if *spansOut != "" {
		p.Spans = telemetry.NewSpanLog()
	}

	switch *dist {
	case "IN":
		p.Dist = gen.Independent
	case "AC":
		p.Dist = gen.AntiCorrelated
	case "CO":
		p.Dist = gen.Correlated
	default:
		return fmt.Errorf("unknown distribution %q", *dist)
	}
	switch *strategy {
	case "BF":
		p.Strategy = manet.BreadthFirst
	case "DF":
		p.Strategy = manet.DepthFirst
	case "SF":
		p.Strategy = manet.SamplingFilter
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	switch *mode {
	case "EXT":
		p.Mode = core.Exact
	case "OVE":
		p.Mode = core.Over
	case "UNE":
		p.Mode = core.Under
	default:
		return fmt.Errorf("unknown estimation mode %q", *mode)
	}
	if err := p.Validate(); err != nil {
		return err
	}

	fmt.Printf("scenario: %d devices, %d tuples (%v, %d attrs), d=%g, %v/%v dynamic=%v, %gs simulated\n",
		p.NumDevices(), p.GlobalN, p.Dist, p.Dim, p.QueryDist, p.Strategy, p.Mode, p.Dynamic, p.SimTime)

	out := manet.Run(p)

	if *verbose {
		fmt.Println("\nper-query metrics:")
		for _, q := range out.Queries {
			status := "incomplete"
			rt := ""
			if q.Done {
				status = "done"
				if q.Partial {
					status = "partial"
				}
				rt = fmt.Sprintf(" rt=%.3fs", q.ResponseTime)
			}
			extra := ""
			if q.Retries > 0 {
				extra += fmt.Sprintf(" retries=%d", q.Retries)
			}
			if out.RecallComputed {
				extra += fmt.Sprintf(" recall=%.3f prec=%.3f", q.Recall, q.Precision)
			}
			fmt.Printf("  org=%-3d cnt=%-3d t=%-8.1f %-10s%s drr=%+.3f devices=%d msgs=%d result=%d%s\n",
				q.Org, q.Key.Cnt, q.Issued, status, rt, q.DRR(), q.Acc.Devices, q.Messages, q.ResultTuples, extra)
		}
	}

	fmt.Printf("\nqueries issued:   %d (skipped %d while busy)\n", len(out.Queries), out.SkippedIssues)
	fmt.Printf("completion rate:  %.1f%%\n", out.CompletionRate()*100)
	fmt.Printf("pooled DRR:       %.3f\n", out.PooledDRR())
	var rtw stats.Welford
	var rts []float64
	for _, q := range out.Queries {
		if q.Done {
			rtw.Add(q.ResponseTime)
			rts = append(rts, q.ResponseTime)
		}
	}
	if rtw.N() > 0 {
		fmt.Printf("resp. time:       mean %.3fs ± %.3fs, median %.3fs (n=%d)\n",
			rtw.Mean(), rtw.StdDev(), stats.Median(rts), rtw.N())
	} else {
		fmt.Printf("resp. time:       n/a (no completed queries)\n")
	}
	if p.Metrics != nil {
		if h := p.Metrics.Histogram("manet_response_time_seconds", "", nil); h.Count() > 0 {
			fmt.Printf("resp. quantiles:  p50 %.3fs  p95 %.3fs  p99 %.3fs (bucket-interpolated)\n",
				h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		}
	}
	fmt.Printf("mean msgs/query:  %.1f\n", out.MeanMessages())
	fmt.Printf("radio frames:     %d sent, %d received, %d lost to range, %d lost to noise\n",
		out.Radio.FramesSent, out.Radio.Receptions, out.Radio.DroppedRange, out.Radio.DroppedLoss)
	fmt.Printf("routing overhead: %d RREQ, %d RREP, %d RERR; data %d fwd / %d delivered / %d dropped\n",
		out.Aodv.RREQSent, out.Aodv.RREPSent, out.Aodv.RERRSent,
		out.Aodv.DataForwarded, out.Aodv.DataDelivered, out.Aodv.DataDropped)
	if out.Transfers > 0 {
		fmt.Printf("redistribution:   %d relation hand-offs\n", out.Transfers)
	}
	if p.Faults != nil {
		partial, retried := 0, 0
		for _, q := range out.Queries {
			if q.Partial {
				partial++
			}
			retried += q.Retries
		}
		fmt.Printf("fault plan %q:    %d outage, %d link, %d region, %d partition drops; %d duped, %d reordered\n",
			p.Faults.Name, out.Faults.OutageDrops, out.Faults.LinkDrops,
			out.Faults.RegionDrops, out.Faults.PartitionDrops,
			out.Faults.Duplicated, out.Faults.Reordered)
		fmt.Printf("degradation:      %d partial results, %d re-issues\n", partial, retried)
	}
	if out.RecallComputed {
		if r, ok := out.MeanRecall(); ok {
			pr, _ := out.MeanPrecision()
			fmt.Printf("recall:           mean %.3f, precision %.3f (centralized oracle)\n", r, pr)
		}
	}
	if p.Metrics != nil {
		if br := p.Metrics.Bytes(); br.OnAir > 0 {
			fmt.Printf("%s\n", br.String())
		}
	}
	fmt.Printf("events executed:  %d\n", out.Events)

	if *metrics != "" {
		if err := dumpTo(*metrics, p.Metrics.WritePrometheus); err != nil {
			return err
		}
	}
	if *spansOut != "" {
		if err := dumpTo(*spansOut, p.Spans.WriteJSON); err != nil {
			return err
		}
	}
	return nil
}

// dumpTo writes a report to the named file, or to stdout for "-".
func dumpTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
