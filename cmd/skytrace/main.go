// Command skytrace merges per-peer span dumps from the live TCP runtime
// into causal per-query timelines: every cross-peer hop with its latency,
// per-hop percentiles, and the critical path that set each query's
// end-to-end latency.
//
// Inputs are either files (one /trace.jsonl dump per peer) or live peers
// polled over HTTP:
//
//	skytrace peer0.jsonl peer1.jsonl peer2.jsonl
//	skytrace -peers http://127.0.0.1:8080,http://127.0.0.1:8081
//
// By default the merged report is human-readable text; -json emits the
// merged timelines as JSON for downstream tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"manetskyline/internal/telemetry"
	"manetskyline/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "skytrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		peers   = flag.String("peers", "", "comma-separated peer base URLs to poll at <url>/trace.jsonl")
		jsonOut = flag.Bool("json", false, "emit merged timelines as JSON instead of text")
		timeout = flag.Duration("timeout", 5*time.Second, "per-peer HTTP fetch timeout")
	)
	flag.Parse()

	var spans []*telemetry.Span
	if *peers != "" {
		client := &http.Client{Timeout: *timeout}
		for _, base := range strings.Split(*peers, ",") {
			base = strings.TrimSpace(base)
			if base == "" {
				continue
			}
			got, err := fetchSpans(client, base)
			if err != nil {
				return err
			}
			spans = append(spans, got...)
		}
	}
	for _, path := range flag.Args() {
		got, err := readSpansFile(path)
		if err != nil {
			return err
		}
		spans = append(spans, got...)
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans: pass dump files or -peers URLs")
	}

	tls := trace.Merge(spans)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(tls)
	}
	return trace.WriteReport(os.Stdout, tls)
}

// fetchSpans pulls one peer's /trace.jsonl.
func fetchSpans(client *http.Client, base string) ([]*telemetry.Span, error) {
	url := strings.TrimRight(base, "/") + "/trace.jsonl"
	if !strings.Contains(base, "://") {
		url = "http://" + url
	}
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("fetch %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("fetch %s: %s", url, resp.Status)
	}
	spans, err := trace.ReadSpansJSONL(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", url, err)
	}
	return spans, nil
}

// readSpansFile reads one dump file ("-" for stdin).
func readSpansFile(path string) ([]*telemetry.Span, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	spans, err := trace.ReadSpansJSONL(r)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return spans, nil
}
