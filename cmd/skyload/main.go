// Command skyload is the open-loop load harness for the gateway front
// tier: it offers queries at a FIXED arrival rate — a slow or shedding
// gateway does not slow the offered load down, so there is no coordinated
// omission — and reports goodput, shed rate (by reason), and latency
// quantiles over what was accepted.
//
// Against a skypeer gateway:
//
//	skypeer -dirserver :7940
//	skypeer -join 127.0.0.1:7940 -id 0 -data dev-00.csv \
//	        -gateway :7950 -gwrate 50 -gwmaxspeed 10 -gwslack 25
//	skyload -addr 127.0.0.1:7950 -qps 100 -duration 10s -regions 4
//
// A sweep over offered rates (the overload curve for EXPERIMENTS.md):
//
//	skyload -addr 127.0.0.1:7950 -qps 25,50,100 -duration 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/gateway"
	"manetskyline/internal/tuple"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "skyload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "", "gateway front-door address to load")
		qps      = flag.String("qps", "50", "offered arrival rate(s), comma-separated for a sweep")
		duration = flag.Duration("duration", 10*time.Second, "how long to offer load at each rate")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-request round-trip budget")
		regions  = flag.Int("regions", 1, "distinct query regions cycled round-robin (fewer = more coalescing)")
		spread   = flag.Float64("spread", 1000, "distance between consecutive query regions")
		d        = flag.Float64("d", 0, "distance of interest per query (0 = unconstrained)")
		clientID = flag.Int("client", 1000, "originator device id stamped on queries")
		gap      = flag.Duration("gap", time.Second, "pause between sweep points")
	)
	flag.Parse()
	if *addr == "" {
		return fmt.Errorf("need -addr (see -help)")
	}
	if *regions < 1 {
		*regions = 1
	}

	points := make([]tuple.Point, *regions)
	for i := range points {
		points[i] = tuple.Point{X: float64(i) * *spread, Y: float64(i) * *spread}
	}

	rates := strings.Split(*qps, ",")
	for i, raw := range rates {
		rate, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil || rate <= 0 {
			return fmt.Errorf("bad qps value %q", raw)
		}
		rep, err := gateway.RunLoad(gateway.LoadConfig{
			Addr:     *addr,
			QPS:      rate,
			Duration: *duration,
			Timeout:  *timeout,
			Regions:  points,
			D:        *d,
			ClientID: core.DeviceID(*clientID),
		})
		if err != nil {
			return err
		}
		fmt.Println(rep)
		if len(rep.ShedByReason) > 0 {
			fmt.Printf("  shed by reason: %v\n", rep.ShedByReason)
		}
		if i < len(rates)-1 {
			time.Sleep(*gap)
		}
	}
	return nil
}
