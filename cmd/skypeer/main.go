// Command skypeer deploys the distributed skyline protocol across real
// processes: a directory server for bootstrap, then one peer process per
// device, each serving its local relation over TCP with the binary wire
// format. A peer can also issue a query and print the assembled skyline.
//
// A three-terminal session:
//
//	skypeer -dirserver :7940
//	skypeer -join 127.0.0.1:7940 -id 0 -data dev-00.csv -x 250 -y 250 -neighbors 1
//	skypeer -join 127.0.0.1:7940 -id 1 -data dev-01.csv -x 750 -y 250 -neighbors 0 \
//	        -query 400 -peers 2
//
// Data files are CSV (skygen) or the binary dataset format (skygen
// -format bin), selected by extension.
//
// With -lease TTL a peer registers under a directory lease it keeps alive
// by heartbeat; if the process crashes, the lease decays and the other
// peers prune it from their flood fan-out instead of black-holing frames.
//
// With -gateway ADDR a peer additionally serves the overload-hardened
// query front door (internal/gateway): clients send query frames to that
// address and get results or explicit reject frames back, under
// single-flight coalescing (-gwrate, -gwburst, -gwqueue for admission
// control; -gwmaxspeed/-gwslack/-gwcachettl for the movement-aware result
// cache; -breaker/-breakercooldown for per-neighbor circuit breakers on
// the transport). Drive it with cmd/skyload.
//
// Any mode accepts -http ADDR to serve live telemetry: /metrics
// (Prometheus text), /metrics.json (snapshot), and /debug/pprof. With
// -trace the peer additionally records per-hop transport spans, served at
// /trace.jsonl — collect every peer's dump with cmd/skytrace to get merged
// causal timelines. -flight N keeps a lock-free ring of the last N fault
// events (dead-letters, decode/dial failures, reconnects) at /flight.jsonl.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"manetskyline/internal/core"
	"manetskyline/internal/gateway"
	"manetskyline/internal/gen"
	"manetskyline/internal/tcp"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "skypeer:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dirserver = flag.String("dirserver", "", "run a directory server on this address and block")
		join      = flag.String("join", "", "directory server address to join as a peer")
		id        = flag.Int("id", 0, "this peer's device id")
		dataPath  = flag.String("data", "", "local relation file (.csv or .bin)")
		x         = flag.Float64("x", 500, "this peer's x position")
		y         = flag.Float64("y", 500, "this peer's y position")
		neighbors = flag.String("neighbors", "", "comma-separated neighbor device ids")
		dim       = flag.Int("dim", 2, "attributes (for the schema when data is empty)")
		attrMax   = flag.Float64("attrmax", 1000, "global attribute upper bound")
		mode      = flag.String("mode", "UNE", "VDR estimation: EXT|OVE|UNE")
		filters   = flag.Int("filters", 1, "filtering tuples per query")
		query     = flag.Float64("query", 0, "issue one query with this distance of interest, print the skyline, and exit")
		peers     = flag.Int("peers", 0, "network size for the query quorum (default: directory size)")
		lease     = flag.Duration("lease", 0, "register with a directory lease of this TTL, kept alive by heartbeat (0 = permanent)")
		httpAddr  = flag.String("http", "", "serve /metrics, /metrics.json, /trace.jsonl, /flight.jsonl, and /debug/pprof on this address")
		traceOn   = flag.Bool("trace", false, "record per-hop transport spans, served at /trace.jsonl (needs -http)")
		flightN   = flag.Int("flight", 0, "keep a flight recorder of the last N fault events, served at /flight.jsonl (needs -http)")

		gwAddr     = flag.String("gateway", "", "serve a query front door on this address: single-flight coalescing, movement-aware cache, admission control")
		gwRate     = flag.Float64("gwrate", 0, "gateway: sustained admitted queries/sec (0 = unlimited)")
		gwBurst    = flag.Int("gwburst", 0, "gateway: token-bucket burst (0 = ceil(rate))")
		gwQueue    = flag.Int("gwqueue", 0, "gateway: bounded admission queue depth (0 = 64)")
		gwTTL      = flag.Duration("gwcachettl", 0, "gateway: cap on the result cache TTL (0 = movement bound only)")
		gwSpeed    = flag.Float64("gwmaxspeed", 0, "gateway: scenario speed bound (units/sec) deriving the movement-aware cache TTL")
		gwSlack    = flag.Float64("gwslack", 0, "gateway: movement (distance units) a cached skyline may absorb before expiring")
		gwDeadline = flag.Duration("gwdeadline", 0, "gateway: per-request deadline including queueing (0 = 2s)")
		gwSF       = flag.Bool("gwsf", false, "gateway: run admitted queries under the SF strategy instead of the BF flood")

		breakerN  = flag.Int("breaker", 0, "open a per-neighbor circuit breaker after N consecutive dial failures (0 = off)")
		breakerCD = flag.Duration("breakercooldown", 0, "circuit breaker cooldown before the half-open probe (0 = 2s)")
	)
	flag.Parse()

	var (
		reg    *telemetry.Registry
		spans  *telemetry.SpanLog
		flight *telemetry.FlightRecorder
	)
	if *httpAddr != "" {
		reg = telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		if *traceOn {
			spans = telemetry.NewSpanLog()
		}
		if *flightN > 0 {
			flight = telemetry.NewFlightRecorder(*flightN)
		}
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, telemetry.NewObsMux(reg, spans, flight)) }()
		fmt.Printf("telemetry on http://%s/metrics\n", ln.Addr())
	}

	if *dirserver != "" {
		srv, err := tcp.NewDirectoryServer(*dirserver)
		if err != nil {
			return err
		}
		defer srv.Close()
		srv.SetRegistry(reg)
		fmt.Printf("directory server on %s\n", srv.Addr())
		waitForSignal()
		return nil
	}

	if *join == "" {
		return fmt.Errorf("need -dirserver or -join (see -help)")
	}

	var data []tuple.Tuple
	if *dataPath != "" {
		f, err := os.Open(*dataPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if strings.HasSuffix(*dataPath, ".bin") {
			data, err = gen.ReadBin(f)
		} else {
			data, err = gen.ReadCSV(f)
		}
		if err != nil {
			return err
		}
		if len(data) > 0 {
			*dim = data[0].Dim()
		}
	}
	schema := tuple.NewSchema(*dim, 0, *attrMax)

	var est core.Estimation
	switch *mode {
	case "EXT":
		est = core.Exact
	case "OVE":
		est = core.Over
	case "UNE":
		est = core.Under
	default:
		return fmt.Errorf("unknown estimation mode %q", *mode)
	}

	client := tcp.NewDirectoryClient(*join)
	cfg := tcp.DefaultConfig()
	cfg.Registry = reg
	cfg.Spans = spans
	cfg.Flight = flight
	cfg.LeaseTTL = *lease
	cfg.BreakerThreshold = *breakerN
	cfg.BreakerCooldown = *breakerCD
	peer, err := tcp.NewPeer(core.DeviceID(*id), data, schema, est, true,
		tuple.Point{X: *x, Y: *y}, client, cfg)
	if err != nil {
		return err
	}
	defer peer.Close()
	peer.SetNumFilters(*filters)

	for _, part := range strings.Split(*neighbors, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		nb, err := strconv.Atoi(part)
		if err != nil {
			return fmt.Errorf("bad neighbor id %q", part)
		}
		peer.AddNeighbor(core.DeviceID(nb))
	}

	fmt.Printf("peer %d on %s with %d tuples at (%.0f,%.0f)\n",
		*id, peer.Addr(), len(data), *x, *y)

	if *gwAddr != "" {
		// Gateway mode: this peer becomes the fleet's query front door.
		// Quorum size tracks the live directory so crashed peers fall out
		// of the wait; -peers freezes it instead.
		peersFn := func() int {
			if *peers > 0 {
				return *peers
			}
			if all, err := client.List(); err == nil {
				return len(all)
			}
			return 0
		}
		g, err := gateway.New(gateway.PeerBackend(peer, peersFn, 1), gateway.Config{
			Rate:            *gwRate,
			Burst:           *gwBurst,
			QueueDepth:      *gwQueue,
			DefaultDeadline: *gwDeadline,
			CacheTTL:        *gwTTL,
			MaxSpeed:        *gwSpeed,
			MovementSlack:   *gwSlack,
			Registry:        reg,
		})
		if err != nil {
			return err
		}
		defer g.Close()
		strategy := gateway.BF
		if *gwSF {
			strategy = gateway.SF
		}
		srv, err := gateway.NewServer(g, gateway.ServerConfig{
			Addr: *gwAddr, ID: core.DeviceID(*id), Strategy: strategy, ReqTimeout: *gwDeadline,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("gateway front door on %s (rate %g qps, cache ttl %v)\n",
			srv.Addr(), *gwRate, g.CacheTTL())
		fmt.Println("serving; ctrl-c to stop")
		waitForSignal()
		return nil
	}

	if *query <= 0 {
		fmt.Println("serving; ctrl-c to stop")
		waitForSignal()
		return nil
	}

	total := *peers
	if total <= 0 {
		all, err := client.List()
		if err != nil {
			return err
		}
		total = len(all)
	}
	res, err := peer.Query(*query, total)
	if err != nil {
		return err
	}
	fmt.Printf("query d=%g: %d peers answered in %v (complete=%v)\n",
		*query, res.Results, res.Elapsed.Round(1e6), res.Complete)
	for _, t := range res.Skyline {
		fmt.Printf("  (%8.2f, %8.2f) %v\n", t.X, t.Y, t.Attrs)
	}
	return nil
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}
