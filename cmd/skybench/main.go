// Command skybench regenerates the paper's evaluation artifacts: every
// figure of §5 plus the ablations this reproduction adds, as aligned text
// tables and optional CSV files.
//
// Usage:
//
//	skybench -experiment all                 # everything at default scale
//	skybench -experiment fig5a -scale paper  # one figure at full Table 6 scale
//	skybench -list                           # show available experiments
//	skybench -experiment sim -csv results/   # also write CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"manetskyline/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "skybench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expName = flag.String("experiment", "all", "experiment to run (see -list)")
		scale   = flag.String("scale", "default", "sweep scale: small|default|paper")
		csvDir  = flag.String("csv", "", "directory for CSV output (optional)")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-12s %s\n", e.Name, e.Description)
		}
		return nil
	}

	sc, err := bench.ParseScale(*scale)
	if err != nil {
		return err
	}
	exp, err := bench.Lookup(*expName)
	if err != nil {
		return err
	}

	fmt.Printf("# %s (scale=%s)\n\n", exp.Description, sc)
	start := time.Now()
	tables := exp.Run(sc)
	if err := bench.Emit(os.Stdout, *csvDir, tables...); err != nil {
		return err
	}
	fmt.Printf("# %d tables in %.1fs\n", len(tables), time.Since(start).Seconds())
	return nil
}
