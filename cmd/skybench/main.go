// Command skybench regenerates the paper's evaluation artifacts: every
// figure of §5 plus the ablations this reproduction adds, as aligned text
// tables and optional CSV files.
//
// Usage:
//
//	skybench -experiment all                 # everything at default scale
//	skybench -experiment fig5a -scale paper  # one figure at full Table 6 scale
//	skybench -list                           # show available experiments
//	skybench -experiment sim -csv results/   # also write CSV files
//	skybench -experiment sim -workers 1      # serial sweep (tables are byte-identical to parallel)
//	skybench -experiment sim -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"manetskyline/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "skybench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expName    = flag.String("experiment", "all", "experiment to run (see -list)")
		scale      = flag.String("scale", "default", "sweep scale: small|default|paper")
		csvDir     = flag.String("csv", "", "directory for CSV output (optional)")
		list       = flag.Bool("list", false, "list experiments and exit")
		workers    = flag.Int("workers", 0, "concurrent scenario jobs (0 = GOMAXPROCS; 1 = serial)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-12s %s\n", e.Name, e.Description)
		}
		return nil
	}

	sc, err := bench.ParseScale(*scale)
	if err != nil {
		return err
	}
	exp, err := bench.Lookup(*expName)
	if err != nil {
		return err
	}
	bench.SetWorkers(*workers)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "skybench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "skybench: memprofile:", err)
			}
		}()
	}

	fmt.Printf("# %s (scale=%s, workers=%d)\n\n", exp.Description, sc, bench.Workers())
	start := time.Now()
	tables := exp.Run(sc)
	if err := bench.Emit(os.Stdout, *csvDir, tables...); err != nil {
		return err
	}
	fmt.Printf("# %d tables in %.1fs\n", len(tables), time.Since(start).Seconds())
	return nil
}
