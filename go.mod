module manetskyline

go 1.22
