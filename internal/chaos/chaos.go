// Package chaos applies internal/faults plans to live TCP connections: a
// per-link proxy fleet sits between the peers of internal/tcp and their
// real sockets, translating the plan's outages, partitions, loss windows,
// and duplicate/reorder chaos into genuine socket behaviour — stalled
// streams, dropped frames, delayed and duplicated deliveries — plus
// socket-only extras (connection resets, byte-trickle) no simulator can
// model. The same builtin plans that drive the deterministic simulator's
// recall gates therefore also soak the supervised transport end to end.
//
// Topology: every peer resolves its neighbours through Router.View(id),
// which hands back per-(from,to) proxy addresses instead of real ones, so
// the proxy knows both endpoints of each link and can apply directional
// and partition faults correctly. Registration and heartbeats pass through
// untouched — the directory is the control plane, and a real deployment's
// bootstrap rendezvous would not share the data path's radio fate.
//
// Fault-to-socket mapping:
//
//	outage/partition  the proxy stops forwarding while the window is
//	                  active; frames queue in kernel/proxy buffers and
//	                  flow again on heal — exactly a cable cut, which TCP
//	                  rides out unless the endpoints give up first
//	link/region loss  frames silently vanish with the window's probability
//	duplicate         extra copies of the frame are forwarded
//	reorder           the frame is held back while later ones overtake
//	Extras.ResetProb  the connection is torn down (after forwarding), so
//	                  the transport's reconnect path runs hot
//	Extras.Trickle*   frames dribble out a few bytes at a time, stressing
//	                  read deadlines and partial-frame handling
package chaos

import (
	"math/rand"
	"sync"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/faults"
	"manetskyline/internal/tcp"
	"manetskyline/internal/tuple"
)

// Extras are socket-level perturbations with no simulator counterpart.
type Extras struct {
	// ResetProb tears the connection down after forwarding a frame with
	// this probability: pure connection churn (no data loss), exercising
	// reconnect under backoff.
	ResetProb float64
	// TrickleChunk, when positive, forwards each frame in chunks of this
	// many bytes with TrickleDelay between them.
	TrickleChunk int
	TrickleDelay time.Duration
	// Latency adds a fixed one-way delay to every frame.
	Latency time.Duration
}

// Options tune a Router.
type Options struct {
	// Scale maps wall time onto plan time: plan-seconds per wall-second.
	// 0 means 1 (a 3-second plan plays out over 3 wall seconds).
	Scale float64
	// Positions, when set, locate nodes for region-loss evaluation.
	Positions map[int]tuple.Point
	// Seed drives the extras' random stream (plan loss draws use the
	// plan's own seed via faults.Eval).
	Seed int64
	// Extras are applied to every link on top of the plan.
	Extras Extras
}

// Router owns the proxy fleet for one network under one fault plan.
type Router struct {
	inner tcp.Resolver
	eval  *faults.Eval
	opts  Options
	start time.Time
	done  chan struct{}

	rmu sync.Mutex
	rng *rand.Rand

	mu      sync.Mutex
	proxies map[[2]int]*linkProxy
	closed  bool

	wg sync.WaitGroup
}

// NewRouter wraps the inner resolver (the real directory) with a fault
// plan. The plan clock starts now.
func NewRouter(inner tcp.Resolver, plan *faults.Plan, opts Options) *Router {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	return &Router{
		inner:   inner,
		eval:    faults.NewEval(plan, opts.Seed),
		opts:    opts,
		start:   time.Now(),
		done:    make(chan struct{}),
		rng:     rand.New(rand.NewSource(opts.Seed*0x5DEECE66D + 0xB)),
		proxies: make(map[[2]int]*linkProxy),
	}
}

// now is the current plan time.
func (r *Router) now() float64 {
	return time.Since(r.start).Seconds() * r.opts.Scale
}

// wallFor converts a plan-time span to wall time.
func (r *Router) wallFor(planSeconds float64) time.Duration {
	return time.Duration(planSeconds / r.opts.Scale * float64(time.Second))
}

// pos locates a node for region-loss checks (zero point when unknown).
func (r *Router) pos(node int) tuple.Point {
	return r.opts.Positions[node]
}

// chance draws one extras decision.
func (r *Router) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	r.rmu.Lock()
	defer r.rmu.Unlock()
	return r.rng.Float64() < p
}

// View returns the resolver peer `from` must use: lookups resolve to the
// (from → to) link proxy, registration and heartbeats pass through.
func (r *Router) View(from core.DeviceID) tcp.Resolver {
	return &view{r: r, from: int(from)}
}

// proxy returns (creating if needed) the proxy for one directed link.
func (r *Router) proxy(from, to int) *linkProxy {
	key := [2]int{from, to}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	if p := r.proxies[key]; p != nil {
		return p
	}
	p, err := newLinkProxy(r, from, to)
	if err != nil {
		return nil
	}
	r.proxies[key] = p
	return p
}

// Close tears the fleet down: listeners, live pumps, and delayed writers.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	proxies := make([]*linkProxy, 0, len(r.proxies))
	for _, p := range r.proxies {
		proxies = append(proxies, p)
	}
	r.mu.Unlock()
	close(r.done)
	for _, p := range proxies {
		p.close()
	}
	r.wg.Wait()
}

// view is the per-source resolver handed to one peer.
type view struct {
	r    *Router
	from int
}

// Register passes the peer's real address to the inner directory; proxies
// resolve it lazily per connection, so re-registrations take effect.
func (v *view) Register(id core.DeviceID, addr string) {
	v.r.inner.Register(id, addr)
}

// RegisterLease forwards leased registration when the inner directory
// supports it and degrades to permanent registration otherwise.
func (v *view) RegisterLease(id core.DeviceID, addr string, ttl time.Duration) error {
	if lr, ok := v.r.inner.(tcp.LeaseRegistrar); ok {
		return lr.RegisterLease(id, addr, ttl)
	}
	v.r.inner.Register(id, addr)
	return nil
}

// Heartbeat forwards to the inner directory (vacuously true without lease
// support).
func (v *view) Heartbeat(id core.DeviceID) bool {
	if hb, ok := v.r.inner.(tcp.Heartbeater); ok {
		return hb.Heartbeat(id)
	}
	return true
}

// Invalidate forwards cache eviction when supported.
func (v *view) Invalidate(id core.DeviceID) {
	if inv, ok := v.r.inner.(tcp.Invalidator); ok {
		inv.Invalidate(id)
	}
}

// Lookup resolves through the inner directory (so lease decay still hides
// dead peers) but returns the link proxy's address.
func (v *view) Lookup(to core.DeviceID) (string, bool) {
	if _, ok := v.r.inner.Lookup(to); !ok {
		return "", false
	}
	p := v.r.proxy(v.from, int(to))
	if p == nil {
		return "", false
	}
	return p.addr(), true
}
