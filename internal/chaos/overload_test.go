package chaos

import (
	"testing"
	"time"

	"manetskyline/internal/faults"
	"manetskyline/internal/gateway"
	"manetskyline/internal/leaktest"
	"manetskyline/internal/telemetry"
)

// TestSoakOverload is the overload gate: a 9-peer grid under the
// crash+partition plan, fronted by a gateway rate-limited to roughly half
// the offered load. The run must end with (1) zero unexplained outcomes —
// every query either served or explicitly rejected, no silent timeouts;
// (2) real shedding, attributed by reason; (3) mean recall over the
// ACCEPTED queries at the same ≥0.9 floor the plain soaks enforce; and
// (4) bounded tail latency for what was accepted.
func TestSoakOverload(t *testing.T) {
	defer leaktest.Check(t)()
	plan, err := faults.Named("crash+partition", 9, 3.0)
	if err != nil {
		t.Fatalf("Named: %v", err)
	}
	reg := telemetry.NewRegistry()
	peer := soakPeerConfig(reg)
	peer.BreakerThreshold = 3
	peer.BreakerCooldown = 500 * time.Millisecond
	res, err := SoakOverload(OverloadConfig{
		Grid: 3, Tuples: 1800, Seed: 5,
		Plan: plan, Horizon: 3.0, Wall: 3 * time.Second,
		OfferedQPS:  30,
		Regions:     4,
		ReqDeadline: time.Second,
		Peer:        peer,
		Gateway: gateway.Config{
			Rate: 3, Burst: 2, QueueDepth: 2,
			MaxSpeed: 10, MovementSlack: 1, // 100ms movement-aware TTL
			Registry: reg,
		},
	})
	if err != nil {
		t.Fatalf("SoakOverload: %v", err)
	}
	t.Logf("overload soak: %s", res)

	if res.Sent < 60 {
		t.Fatalf("open-loop clock fired only %d arrivals", res.Sent)
	}
	if got := res.Accepted + res.Shedded + res.BackendErrors + res.Unexplained; got != res.Sent {
		t.Errorf("outcome accounting leaks requests: %d classified of %d sent", got, res.Sent)
	}
	if res.Unexplained != 0 {
		t.Errorf("%d queries ended without an explicit outcome — the contract is zero silent timeouts", res.Unexplained)
	}
	if res.Shedded == 0 {
		t.Errorf("2x-capacity overload shed nothing; admission control is not engaging")
	}
	if len(res.ShedByReason) == 0 {
		t.Errorf("sheds carry no reason attribution: %+v", res)
	}
	if res.Accepted == 0 {
		t.Fatalf("overloaded gateway accepted nothing")
	}
	if res.MeanRecall < 0.9 {
		t.Errorf("mean recall over accepted queries = %.3f, want >= 0.9 — overload must not corrupt what IS served",
			res.MeanRecall)
	}
	// Accepted-query tail: an admitted leader can wait out its admission
	// deadline and then run one full transport query, but never longer —
	// the bound is structural, not the soak wall clock.
	if limit := soakPeerConfig(nil).QueryTimeout + time.Second + 500*time.Millisecond; res.P99 > limit {
		t.Errorf("p99 over accepted queries = %v, want <= %v", res.P99, limit)
	}

	snap := reg.Snapshot()
	if snap.Counters["gateway_coalesced_total"] == 0 {
		t.Errorf("gateway_coalesced_total = 0; identical queries under overload must coalesce")
	}
	if snap.Counters["gateway_shed_total"] == 0 {
		t.Errorf("gateway_shed_total = 0 after an overload run")
	}
	if snap.Counters["gateway_requests_total"] != int64(res.Sent) {
		t.Errorf("gateway_requests_total = %d, want %d", snap.Counters["gateway_requests_total"], res.Sent)
	}
}
