package chaos

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/faults"
	"manetskyline/internal/gateway"
	"manetskyline/internal/gen"
	"manetskyline/internal/skyline"
	"manetskyline/internal/tcp"
	"manetskyline/internal/tuple"
	"manetskyline/internal/wire"
)

// OverloadConfig describes one overload soak: the same live-socket peer
// grid and fault plan as Soak, but fronted by a gateway whose admission
// budget is deliberately smaller than the offered load. An open-loop clock
// drives queries at OfferedQPS — typically 2× the gateway's Rate — while
// crashes and partitions play out underneath.
//
// The contract under test is graceful degradation: the queries the gateway
// ACCEPTS must stay correct (recall against the liveness-aware oracle),
// and every query it does not accept must get an explicit rejection —
// zero unexplained outcomes.
type OverloadConfig struct {
	// Grid, Tuples, Seed, Plan, Horizon, Wall: as in SoakConfig.
	Grid    int
	Tuples  int
	Seed    int64
	Plan    *faults.Plan
	Horizon float64
	Wall    time.Duration
	// OfferedQPS is the open-loop arrival rate into the gateway.
	OfferedQPS float64
	// Regions is how many distinct query regions the clock cycles over
	// (0 ⇒ 2); fewer regions means more coalescing and caching.
	Regions int
	// D is the constrained-skyline distance (0 means unconstrained).
	D float64
	// SF runs queries under the sampling-filter strategy.
	SF bool
	// ReqDeadline bounds each request including admission queueing
	// (0 ⇒ 3s).
	ReqDeadline time.Duration
	// Peer configures every grid peer; Gateway configures the front tier.
	Peer    tcp.Config
	Gateway gateway.Config
}

// OverloadResult classifies every request of an overload soak. Accepted +
// Shedded + BackendErrors + Unexplained always equals Sent: a request with
// no explicit outcome lands in Unexplained, and the soak's gate holds that
// at zero.
type OverloadResult struct {
	Peers         int
	Sent          int
	Accepted      int
	Shedded       int
	ShedByReason  map[string]int
	BackendErrors int
	Unexplained   int
	// Coalesced and Cached count accepted responses served by attaching
	// to an in-flight execution or from the movement-aware cache.
	Coalesced int
	Cached    int
	// MeanRecall and MinRecall score accepted responses against the
	// liveness-aware oracle at each request's issue time.
	MeanRecall float64
	MinRecall  float64
	// P50/P95/P99 are latency quantiles over accepted requests.
	P50, P95, P99 time.Duration
}

// String renders the result as one log-friendly line.
func (r *OverloadResult) String() string {
	return fmt.Sprintf(
		"sent %d: accepted %d (%d coalesced, %d cached), shed %d %v, backend errors %d, unexplained %d, recall mean %.3f min %.3f, p50 %v p95 %v p99 %v",
		r.Sent, r.Accepted, r.Coalesced, r.Cached, r.Shedded, r.ShedByReason,
		r.BackendErrors, r.Unexplained, r.MeanRecall, r.MinRecall, r.P50, r.P95, r.P99)
}

// SoakOverload runs the scenario. The gateway fronts one stable entry peer
// (the first node the plan never crashes); its admission control, not the
// MANET, decides what runs, and the oracle holds the accepted subset to
// the usual recall floor.
func SoakOverload(cfg OverloadConfig) (*OverloadResult, error) {
	if cfg.Grid <= 0 || cfg.Plan == nil || cfg.Horizon <= 0 || cfg.Wall <= 0 ||
		cfg.OfferedQPS <= 0 {
		return nil, fmt.Errorf("chaos: incomplete overload config %+v", cfg)
	}
	if cfg.Regions <= 0 {
		cfg.Regions = 2
	}
	if cfg.ReqDeadline <= 0 {
		cfg.ReqDeadline = 3 * time.Second
	}
	d := cfg.D
	if d == 0 {
		d = core.Unconstrained()
	}
	n := cfg.Grid * cfg.Grid
	gcfg := gen.DefaultConfig(cfg.Tuples, 2, gen.Independent, cfg.Seed)
	data := gen.Generate(gcfg)
	parts := gen.GridPartition(data, cfg.Grid, gcfg.Space)
	positions := make(map[int]tuple.Point, n)
	for i := 0; i < n; i++ {
		positions[i] = gen.CellRect(i/cfg.Grid, i%cfg.Grid, cfg.Grid, gcfg.Space).Center()
	}

	dir := tcp.NewDirectory()
	router := NewRouter(dir, cfg.Plan, Options{
		Scale:     cfg.Horizon / cfg.Wall.Seconds(),
		Positions: positions,
		Seed:      cfg.Seed,
	})
	defer router.Close()

	net := &soakNet{peers: make([]*tcp.Peer, n), alive: make([]bool, n)}
	defer func() {
		net.mu.Lock()
		peers := append([]*tcp.Peer(nil), net.peers...)
		net.mu.Unlock()
		for _, p := range peers {
			if p != nil {
				p.Close()
			}
		}
	}()
	spawn := func(i int) error {
		p, err := tcp.NewPeer(core.DeviceID(i), parts[i], gcfg.Schema(), core.Under,
			true, positions[i], router.View(core.DeviceID(i)), cfg.Peer)
		if err != nil {
			return fmt.Errorf("chaos: peer %d: %w", i, err)
		}
		r, c := i/cfg.Grid, i%cfg.Grid
		if r > 0 {
			p.AddNeighbor(core.DeviceID(i - cfg.Grid))
		}
		if r < cfg.Grid-1 {
			p.AddNeighbor(core.DeviceID(i + cfg.Grid))
		}
		if c > 0 {
			p.AddNeighbor(core.DeviceID(i - 1))
		}
		if c < cfg.Grid-1 {
			p.AddNeighbor(core.DeviceID(i + 1))
		}
		net.peers[i] = p
		net.alive[i] = true
		return nil
	}
	for i := 0; i < n; i++ {
		if err := spawn(i); err != nil {
			return nil, err
		}
	}

	// Enact outages for real, exactly as Soak does.
	scale := cfg.Horizon / cfg.Wall.Seconds()
	var timers []*time.Timer
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()
	unstable := make(map[int]bool)
	for _, o := range cfg.Plan.Outages {
		o := o
		if o.Node < 0 || o.Node >= n {
			continue
		}
		unstable[o.Node] = true
		timers = append(timers, time.AfterFunc(time.Duration(o.Start/scale*float64(time.Second)), func() {
			net.mu.Lock()
			p := net.peers[o.Node]
			net.peers[o.Node] = nil
			net.alive[o.Node] = false
			net.mu.Unlock()
			if p != nil {
				p.Close()
			}
		}))
		if o.End > 0 {
			timers = append(timers, time.AfterFunc(time.Duration(o.End/scale*float64(time.Second)), func() {
				net.mu.Lock()
				defer net.mu.Unlock()
				if net.peers[o.Node] == nil {
					spawn(o.Node)
				}
			}))
		}
	}
	entry := -1
	for i := 0; i < n; i++ {
		if !unstable[i] {
			entry = i
			break
		}
	}
	if entry < 0 {
		return nil, fmt.Errorf("chaos: plan crashes every node; no stable entry peer")
	}

	backend := func(req gateway.Request) (tcp.QueryResult, error) {
		net.mu.Lock()
		p := net.peers[entry]
		alive := 0
		for i := 0; i < n; i++ {
			if net.alive[i] {
				alive++
			}
		}
		net.mu.Unlock()
		if p == nil {
			return tcp.QueryResult{}, fmt.Errorf("chaos: entry peer down")
		}
		qd := req.D
		if qd <= 0 {
			qd = math.Inf(1)
		}
		if cfg.SF {
			return p.QuerySF(qd, alive)
		}
		return p.Query(qd, alive)
	}
	g, err := gateway.New(backend, cfg.Gateway)
	if err != nil {
		return nil, err
	}
	defer g.Close()

	// Query regions: distinct gateway cache/coalescing cells spread over
	// the field (the entry peer's own position anchors the MANET flood
	// either way, so regions only diversify the front-tier keys).
	regions := make([]tuple.Point, cfg.Regions)
	for i := range regions {
		regions[i] = tuple.Point{X: float64(i) * 4 * 250, Y: 0}
	}

	res := &OverloadResult{Peers: n, ShedByReason: make(map[string]int), MinRecall: 1}
	var (
		resMu   sync.Mutex
		wg      sync.WaitGroup
		lats    []time.Duration
		recalls []float64
	)
	interval := time.Duration(float64(time.Second) / cfg.OfferedQPS)
	start := time.Now()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	sent := 0
	for now := start; !now.After(start.Add(cfg.Wall)); {
		// Liveness-aware oracle snapshot at issue time.
		net.mu.Lock()
		var union []tuple.Tuple
		seen := make(map[[2]float64]bool)
		for i := 0; i < n; i++ {
			if !net.alive[i] {
				continue
			}
			for _, t := range parts[i] {
				s := [2]float64{t.X, t.Y}
				if !seen[s] {
					seen[s] = true
					union = append(union, t)
				}
			}
		}
		entryPos := positions[entry]
		net.mu.Unlock()

		req := gateway.Request{
			Pos:      regions[sent%len(regions)],
			D:        cfg.D,
			Deadline: time.Now().Add(cfg.ReqDeadline),
		}
		if cfg.SF {
			req.Strategy = gateway.SF
		}
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			r, err := g.Do(req)
			lat := time.Since(t0)
			resMu.Lock()
			defer resMu.Unlock()
			switch {
			case err == nil:
				res.Accepted++
				lats = append(lats, lat)
				switch r.Source {
				case gateway.SourceCoalesced:
					res.Coalesced++
				case gateway.SourceCache:
					res.Cached++
				}
				truth := skyline.Constrained(union, entryPos, d)
				bysite := make(map[[2]float64]tuple.Tuple, len(truth))
				for _, tt := range truth {
					bysite[[2]float64{tt.X, tt.Y}] = tt
				}
				matched := 0
				for _, tt := range r.Skyline {
					if u, ok := bysite[[2]float64{tt.X, tt.Y}]; ok && u.Equal(tt) {
						matched++
					}
				}
				recall := 1.0
				if len(truth) > 0 {
					recall = float64(matched) / float64(len(truth))
				}
				recalls = append(recalls, recall)
				if recall < res.MinRecall {
					res.MinRecall = recall
				}
			case errors.Is(err, gateway.ErrShedded):
				res.Shedded++
				var se *gateway.SheddedError
				if errors.As(err, &se) {
					res.ShedByReason[wire.RejectCodeName(se.Code)]++
				}
			case err != nil && !errors.Is(err, gateway.ErrGatewayClosed):
				res.BackendErrors++
			default:
				res.Unexplained++
			}
		}()
		now = <-ticker.C
	}
	res.Sent = sent
	wg.Wait()

	sum := 0.0
	for _, r := range recalls {
		sum += r
	}
	if len(recalls) > 0 {
		res.MeanRecall = sum / float64(len(recalls))
	} else {
		res.MeanRecall = 1
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))]
	}
	res.P50, res.P95, res.P99 = q(0.50), q(0.95), q(0.99)
	return res, nil
}
