package chaos

import (
	"io"
	"net"
	"sync"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/wire"
)

// linkProxy forwards frames for one directed link (from → to), applying the
// plan. Each accepted client connection gets its own backend connection to
// the destination peer (resolved at accept time, so a re-registered peer on
// a new port is picked up by the next connection).
type linkProxy struct {
	r        *Router
	from, to int
	ln       net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func newLinkProxy(r *Router, from, to int) (*linkProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &linkProxy{r: r, from: from, to: to, ln: ln, conns: make(map[net.Conn]struct{})}
	r.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

func (p *linkProxy) addr() string { return p.ln.Addr().String() }

// track registers a connection for teardown; returns false if the proxy is
// already closing.
func (p *linkProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conns == nil {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *linkProxy) untrack(c net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conns != nil {
		delete(p.conns, c)
	}
}

// close stops the listener and severs every live connection so pumps
// unblock.
func (p *linkProxy) close() {
	p.ln.Close()
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for c := range conns {
		c.Close()
	}
}

func (p *linkProxy) acceptLoop() {
	defer p.r.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.r.wg.Add(1)
		go p.pump(client)
	}
}

// pump shuttles frames from one client connection to a fresh backend
// connection, applying the plan per frame.
func (p *linkProxy) pump(client net.Conn) {
	defer p.r.wg.Done()
	defer client.Close()
	if !p.track(client) {
		return
	}
	defer p.untrack(client)

	addr, ok := p.r.inner.Lookup(core.DeviceID(p.to))
	if !ok {
		return
	}
	backend, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return
	}
	defer backend.Close()
	if !p.track(backend) {
		return
	}
	defer p.untrack(backend)

	// The protocol never sends bytes backend → client, but propagating a
	// backend close (peer crash) to the client keeps failure detection
	// honest.
	p.r.wg.Add(1)
	go func() {
		defer p.r.wg.Done()
		io.Copy(io.Discard, backend)
		client.Close()
	}()

	// Delayed (reordered) writes from other goroutines share the backend
	// stream with the inline path; the mutex keeps frames intact.
	var wmu sync.Mutex
	var delayed sync.WaitGroup
	defer delayed.Wait()

	for {
		// Raw passthrough: the proxy must not interpret (or rewrite) the
		// header, so traced v2 frames cross the middlebox byte-identical.
		hdr, body, err := wire.ReadRawFrame(client)
		if err != nil {
			return
		}
		if !p.waitHealed() {
			return
		}
		now := p.r.now()
		if p.r.eval.DropFrame(p.from, p.to, now, p.r.pos(p.from), p.r.pos(p.to)) {
			continue
		}
		delay, dups := p.r.eval.FrameEffects(now)
		wallDelay := p.r.wallFor(delay) + p.r.opts.Extras.Latency
		if wallDelay > 0 {
			hdr, body := hdr, body
			delayed.Add(1)
			p.r.wg.Add(1)
			go func() {
				defer p.r.wg.Done()
				defer delayed.Done()
				select {
				case <-time.After(wallDelay):
				case <-p.r.done:
					return
				}
				wmu.Lock()
				defer wmu.Unlock()
				for i := 0; i <= dups; i++ {
					if p.writeFrame(backend, hdr, body) != nil {
						return
					}
				}
			}()
			continue
		}
		wmu.Lock()
		werr := p.writeFrame(backend, hdr, body)
		for i := 0; i < dups && werr == nil; i++ {
			werr = p.writeFrame(backend, hdr, body)
		}
		wmu.Unlock()
		if werr != nil {
			return
		}
		if p.r.chance(p.r.opts.Extras.ResetProb) {
			// Forwarded, then reset: connection churn without frame loss.
			return
		}
	}
}

// waitHealed blocks while the link is severed (outage or partition), letting
// frames queue rather than vanish — a severed TCP path loses no data unless
// an endpoint gives up. Returns false when the router shuts down first.
func (p *linkProxy) waitHealed() bool {
	for {
		now := p.r.now()
		if !p.r.eval.Severed(p.from, p.to, now) {
			return true
		}
		until, forever := p.r.eval.SeveredUntil(p.from, p.to, now)
		wait := 100 * time.Millisecond
		if !forever {
			if w := p.r.wallFor(until-now) + time.Millisecond; w < wait {
				wait = w
			}
		}
		select {
		case <-p.r.done:
			return false
		case <-time.After(wait):
		}
	}
}

// writeFrame forwards one frame, trickling it byte-wise when configured.
// The original header bytes are preserved verbatim (trace flag included).
// Callers hold the per-backend write mutex.
func (p *linkProxy) writeFrame(backend net.Conn, hdr [4]byte, body []byte) error {
	chunk := p.r.opts.Extras.TrickleChunk
	if chunk <= 0 {
		return wire.WriteRawFrame(backend, hdr, body)
	}
	buf := make([]byte, 0, 4+len(body))
	buf = append(buf, hdr[:]...)
	buf = append(buf, body...)
	for len(buf) > 0 {
		n := chunk
		if n > len(buf) {
			n = len(buf)
		}
		if _, err := backend.Write(buf[:n]); err != nil {
			return err
		}
		buf = buf[n:]
		if d := p.r.opts.Extras.TrickleDelay; d > 0 && len(buf) > 0 {
			select {
			case <-p.r.done:
				return net.ErrClosed
			case <-time.After(d):
			}
		}
	}
	return nil
}
