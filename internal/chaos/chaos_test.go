package chaos

import (
	"testing"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/faults"
	"manetskyline/internal/gen"
	"manetskyline/internal/leaktest"
	"manetskyline/internal/skyline"
	"manetskyline/internal/tcp"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
)

// twoPeers builds the smallest proxied network: two neighbouring peers whose
// only link runs through the router.
func twoPeers(t *testing.T, plan *faults.Plan, opts Options, cfg tcp.Config) (
	p0, p1 *tcp.Peer, data []tuple.Tuple, done func()) {
	t.Helper()
	gcfg := gen.DefaultConfig(400, 2, gen.Independent, 3)
	data = gen.Generate(gcfg)
	half := len(data) / 2
	dir := tcp.NewDirectory()
	router := NewRouter(dir, plan, opts)
	mk := func(id core.DeviceID, ts []tuple.Tuple) *tcp.Peer {
		p, err := tcp.NewPeer(id, ts, gcfg.Schema(), core.Under, true,
			tuple.Point{X: 500, Y: 500}, router.View(id), cfg)
		if err != nil {
			t.Fatalf("NewPeer %d: %v", id, err)
		}
		return p
	}
	p0 = mk(0, data[:half])
	p1 = mk(1, data[half:])
	p0.AddNeighbor(1)
	p1.AddNeighbor(0)
	return p0, p1, data, func() {
		p0.Close()
		p1.Close()
		router.Close()
	}
}

// A query issued into an active partition must not fail — the frames stall
// at the proxy like they would in a severed TCP path and the query completes
// once the window heals.
func TestProxyPartitionStallsAndHeals(t *testing.T) {
	defer leaktest.Check(t)()
	plan := &faults.Plan{Partitions: []faults.Partition{{
		Window: faults.Window{Start: 0, End: 0.6},
		Groups: [][]int{{0}, {1}},
	}}}
	p0, _, data, done := twoPeers(t, plan, Options{}, tcp.DefaultConfig())
	defer done()

	res, err := p0.Query(core.Unconstrained(), 2)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Complete {
		t.Fatalf("query across a healed partition incomplete: %d results", res.Results)
	}
	if res.Elapsed < 300*time.Millisecond {
		t.Errorf("query finished in %v; the partition should have stalled it ~600ms", res.Elapsed)
	}
	want := skyline.Constrained(data, p0.Pos(), core.Unconstrained())
	if !skyline.SetEqual(res.Skyline, want) {
		t.Errorf("skyline after heal: got %d tuples, want %d", len(res.Skyline), len(want))
	}
}

// A fully lossy link silently eats every frame: the sender's writes succeed
// (as they would into a dead radio) and the query times out incomplete.
func TestProxyLossyLinkDropsFrames(t *testing.T) {
	defer leaktest.Check(t)()
	plan := &faults.Plan{LinkLoss: []faults.LinkLoss{{
		Window: faults.Window{Start: 0, End: 100},
		From:   0, To: 1, Bidirectional: true, Prob: 1,
	}}}
	cfg := tcp.DefaultConfig()
	cfg.QueryTimeout = 300 * time.Millisecond
	p0, _, _, done := twoPeers(t, plan, Options{}, cfg)
	defer done()

	res, err := p0.Query(core.Unconstrained(), 2)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Complete || res.Results != 0 {
		t.Errorf("query over a 100%% lossy link: complete=%v results=%d, want an empty timeout",
			res.Complete, res.Results)
	}
}

// ResetProb=1 tears the connection down after every forwarded frame. No
// frame is lost, so every query must still complete — riding entirely on
// the pool's write-retry and reconnect machinery.
func TestProxyResetChurnStillCompletes(t *testing.T) {
	defer leaktest.Check(t)()
	reg := telemetry.NewRegistry()
	cfg := tcp.DefaultConfig()
	cfg.Registry = reg
	plan := &faults.Plan{}
	p0, _, data, done := twoPeers(t, plan, Options{Extras: Extras{ResetProb: 1}}, cfg)
	defer done()

	for i := 0; i < 3; i++ {
		res, err := p0.Query(core.Unconstrained(), 2)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !res.Complete {
			t.Fatalf("query %d incomplete under reset churn: %d results", i, res.Results)
		}
		want := skyline.Constrained(data, p0.Pos(), core.Unconstrained())
		if !skyline.SetEqual(res.Skyline, want) {
			t.Errorf("query %d skyline mismatch", i)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["tcp_send_retries_total"] == 0 {
		t.Errorf("reset churn should have forced write retries, counter is 0")
	}
	if snap.Counters["tcp_dead_letters_total"] != 0 {
		t.Errorf("reset churn dead-lettered %d frames; resets lose no data",
			snap.Counters["tcp_dead_letters_total"])
	}
}

// Trickled delivery (a few bytes at a time) must not confuse the framed
// reader or trip deadlines on healthy-but-slow links.
func TestProxyTrickleDelivery(t *testing.T) {
	defer leaktest.Check(t)()
	opts := Options{Extras: Extras{TrickleChunk: 7, TrickleDelay: 100 * time.Microsecond}}
	p0, _, data, done := twoPeers(t, &faults.Plan{}, opts, tcp.DefaultConfig())
	defer done()

	res, err := p0.Query(core.Unconstrained(), 2)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Complete {
		t.Fatalf("trickled query incomplete: %d results", res.Results)
	}
	want := skyline.Constrained(data, p0.Pos(), core.Unconstrained())
	if !skyline.SetEqual(res.Skyline, want) {
		t.Errorf("trickled skyline: got %d tuples, want %d", len(res.Skyline), len(want))
	}
}

// soakPeerConfig is the transport tuning the live soaks run under: leases
// short enough that a crashed peer decays out of the flood within the run,
// and a query timeout long enough to span the partition heal.
func soakPeerConfig(reg *telemetry.Registry) tcp.Config {
	return tcp.Config{
		QueryTimeout: 2200 * time.Millisecond,
		Quorum:       1.0,
		DialTimeout:  time.Second,
		LeaseTTL:     250 * time.Millisecond,
		Registry:     reg,
	}
}

// The golden-replay plan against live sockets: two permanent crashes and a
// middle-third partition over a 9-peer grid. Queries issued into the
// partition must complete after the heal, crashed peers must decay out of
// the quorum, and mean recall against the liveness-aware oracle must hold
// the same ≥0.9 floor the simulator's recall gate enforces.
func TestSoakCrashPartition(t *testing.T) {
	defer leaktest.Check(t)()
	plan, err := faults.Named("crash+partition", 9, 3.0)
	if err != nil {
		t.Fatalf("Named: %v", err)
	}
	res, err := Soak(SoakConfig{
		Grid: 3, Tuples: 1800, Seed: 1,
		Plan: plan, Horizon: 3.0, Wall: 3 * time.Second,
		QueryEvery: 150 * time.Millisecond,
		Peer:       soakPeerConfig(nil),
	})
	if err != nil {
		t.Fatalf("Soak: %v", err)
	}
	if len(res.Queries) < 10 {
		t.Fatalf("only %d queries issued", len(res.Queries))
	}
	for _, q := range res.Queries {
		if q.Err != nil {
			t.Errorf("query from %d at %v failed: %v", q.Org, q.Issued, q.Err)
		}
	}
	mean := res.MeanRecall()
	completed := res.Completed()
	t.Logf("crash+partition soak: %d queries, %d complete, mean recall %.3f",
		len(res.Queries), completed, mean)
	if mean < 0.9 {
		t.Errorf("mean recall %.3f under crash+partition, want >= 0.9", mean)
	}
	if completed < len(res.Queries)/2 {
		t.Errorf("only %d/%d queries completed", completed, len(res.Queries))
	}
}

// The same crash+partition plan with every query running the SF strategy:
// the sampling round, filter flood, and survivor collection must ride the
// same self-healing transport to the same recall floor. SFSampleWait is kept
// small so the filter flood still fits inside the query timeout after the
// partition heals.
func TestSoakSF(t *testing.T) {
	defer leaktest.Check(t)()
	plan, err := faults.Named("crash+partition", 9, 3.0)
	if err != nil {
		t.Fatalf("Named: %v", err)
	}
	cfg := soakPeerConfig(nil)
	cfg.SFSampleWait = 100 * time.Millisecond
	res, err := Soak(SoakConfig{
		Grid: 3, Tuples: 1800, Seed: 3,
		Plan: plan, Horizon: 3.0, Wall: 3 * time.Second,
		QueryEvery: 150 * time.Millisecond,
		Peer:       cfg,
		SF:         true,
	})
	if err != nil {
		t.Fatalf("Soak: %v", err)
	}
	if len(res.Queries) < 10 {
		t.Fatalf("only %d queries issued", len(res.Queries))
	}
	for _, q := range res.Queries {
		if q.Err != nil {
			t.Errorf("SF query from %d at %v failed: %v", q.Org, q.Issued, q.Err)
		}
	}
	mean := res.MeanRecall()
	completed := res.Completed()
	t.Logf("SF crash+partition soak: %d queries, %d complete, mean recall %.3f",
		len(res.Queries), completed, mean)
	if mean < 0.9 {
		t.Errorf("SF mean recall %.3f under crash+partition, want >= 0.9", mean)
	}
	if completed < len(res.Queries)/2 {
		t.Errorf("only %d/%d SF queries completed", completed, len(res.Queries))
	}
}

// The chaos plan (10%% duplication, 10%% reordering up to 2s) against live
// sockets: duplicated result frames must not double-count the quorum (the
// shared registry's dedupe counter proves they arrived) and recall stays at
// the floor.
func TestSoakChaosDupReorder(t *testing.T) {
	defer leaktest.Check(t)()
	plan, err := faults.Named("chaos", 9, 2.0)
	if err != nil {
		t.Fatalf("Named: %v", err)
	}
	reg := telemetry.NewRegistry()
	res, err := Soak(SoakConfig{
		Grid: 3, Tuples: 1800, Seed: 2,
		Plan: plan, Horizon: 2.0, Wall: 2 * time.Second,
		QueryEvery: 150 * time.Millisecond,
		Peer:       soakPeerConfig(reg),
	})
	if err != nil {
		t.Fatalf("Soak: %v", err)
	}
	if len(res.Queries) < 8 {
		t.Fatalf("only %d queries issued", len(res.Queries))
	}
	mean := res.MeanRecall()
	completed := res.Completed()
	snap := reg.Snapshot()
	t.Logf("chaos soak: %d queries, %d complete, mean recall %.3f, dup results ignored %d",
		len(res.Queries), completed, mean, snap.Counters["tcp_dup_results_total"])
	if mean < 0.9 {
		t.Errorf("mean recall %.3f under chaos, want >= 0.9", mean)
	}
	if completed < len(res.Queries)*2/3 {
		t.Errorf("only %d/%d queries completed under chaos", completed, len(res.Queries))
	}
}
