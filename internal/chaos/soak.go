package chaos

import (
	"fmt"
	"sync"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/faults"
	"manetskyline/internal/gen"
	"manetskyline/internal/skyline"
	"manetskyline/internal/tcp"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
)

// SoakConfig describes one live-socket soak: a grid of real tcp.Peers wired
// through a chaos Router, issuing queries on a cadence while the plan plays
// out, each query scored against a liveness-aware centralized oracle.
type SoakConfig struct {
	// Grid is the network side length: Grid×Grid peers, one per cell.
	Grid int
	// Tuples is the total dataset cardinality, grid-partitioned over peers.
	Tuples int
	// Seed drives data generation and the router's extras stream.
	Seed int64
	// Plan is the fault schedule; its outages are enacted for real (the
	// peer's process is closed, its lease decays) and its partitions, loss
	// and chaos windows are applied by the proxies.
	Plan *faults.Plan
	// Horizon is the plan time (seconds) that Wall maps onto.
	Horizon float64
	// Wall is how long queries are issued.
	Wall time.Duration
	// QueryEvery is the issue cadence, rotating over stable originators.
	QueryEvery time.Duration
	// D is the constrained-skyline distance (0 means unconstrained).
	D float64
	// SF issues queries under the sampling-filter strategy (tcp.Peer.QuerySF)
	// instead of the breadth-first flood; the oracle and scoring are
	// identical.
	SF bool
	// Peer configures every peer; LeaseTTL should be set so real crashes
	// decay out of the directory.
	Peer tcp.Config
	// Extras adds socket-level churn on every link.
	Extras Extras
	// Trace gives every peer its own SpanLog recording per-hop transport
	// spans. Logs are per-device and survive crash/respawn, so a restarted
	// peer keeps appending to its device's history; the merged spans come
	// back in SoakResult.Spans, ready for trace.Merge / cmd/skytrace.
	Trace bool
	// Flight, when non-nil, is shared by every peer: dead-letters, decode
	// failures, dial failures and reconnects land in the ring as they
	// happen.
	Flight *telemetry.FlightRecorder
	// FlightDump, when set with Flight, snapshots the recorder to this
	// file the first time a query's recall lands below RecallTrigger —
	// the black-box dump for the failure that tripped the gate.
	FlightDump string
	// RecallTrigger is the dump threshold (0 disables dumping).
	RecallTrigger float64
}

// QueryOutcome scores one soak query.
type QueryOutcome struct {
	Org      int
	Issued   time.Duration // offset from soak start
	Err      error
	Complete bool
	Results  int
	Recall   float64
	Truth    int
}

// SoakResult aggregates a soak run.
type SoakResult struct {
	Peers   int
	Queries []QueryOutcome
	// Spans is every peer's span log merged (only with SoakConfig.Trace).
	Spans []*telemetry.Span
	// FlightDumped reports whether a recall miss snapshotted the recorder.
	FlightDumped bool
}

// MeanRecall averages per-query recall (1 when no queries ran).
func (s *SoakResult) MeanRecall() float64 {
	if len(s.Queries) == 0 {
		return 1
	}
	sum := 0.0
	for _, q := range s.Queries {
		sum += q.Recall
	}
	return sum / float64(len(s.Queries))
}

// Completed counts queries that reached their quorum before timing out.
func (s *SoakResult) Completed() int {
	n := 0
	for _, q := range s.Queries {
		if q.Complete {
			n++
		}
	}
	return n
}

// soakNet guards the mutable fleet state shared between the query loop and
// the outage timers.
type soakNet struct {
	mu    sync.Mutex
	peers []*tcp.Peer
	alive []bool
}

// Soak runs the scenario. The oracle is liveness-aware: each query's ground
// truth is the constrained skyline over the union of the datasets of peers
// alive at issue time — a crashed device's tuples are gone and no protocol
// can recover them, but peers that are merely partitioned stay in the
// truth, so meeting a recall floor still requires the transport to carry
// their results across the heal.
func Soak(cfg SoakConfig) (*SoakResult, error) {
	if cfg.Grid <= 0 || cfg.Plan == nil || cfg.Horizon <= 0 || cfg.Wall <= 0 ||
		cfg.QueryEvery <= 0 {
		return nil, fmt.Errorf("chaos: incomplete soak config %+v", cfg)
	}
	d := cfg.D
	if d == 0 {
		d = core.Unconstrained()
	}
	n := cfg.Grid * cfg.Grid
	gcfg := gen.DefaultConfig(cfg.Tuples, 2, gen.Independent, cfg.Seed)
	data := gen.Generate(gcfg)
	parts := gen.GridPartition(data, cfg.Grid, gcfg.Space)
	positions := make(map[int]tuple.Point, n)
	for i := 0; i < n; i++ {
		positions[i] = gen.CellRect(i/cfg.Grid, i%cfg.Grid, cfg.Grid, gcfg.Space).Center()
	}

	dir := tcp.NewDirectory()
	router := NewRouter(dir, cfg.Plan, Options{
		Scale:     cfg.Horizon / cfg.Wall.Seconds(),
		Positions: positions,
		Seed:      cfg.Seed,
		Extras:    cfg.Extras,
	})
	defer router.Close()

	net := &soakNet{peers: make([]*tcp.Peer, n), alive: make([]bool, n)}
	defer func() {
		net.mu.Lock()
		peers := append([]*tcp.Peer(nil), net.peers...)
		net.mu.Unlock()
		for _, p := range peers {
			if p != nil {
				p.Close()
			}
		}
	}()

	var spanLogs []*telemetry.SpanLog
	if cfg.Trace {
		spanLogs = make([]*telemetry.SpanLog, n)
		for i := range spanLogs {
			spanLogs[i] = telemetry.NewSpanLog()
		}
	}

	spawn := func(i int) error {
		pcfg := cfg.Peer
		if cfg.Trace {
			pcfg.Spans = spanLogs[i]
		}
		pcfg.Flight = cfg.Flight
		p, err := tcp.NewPeer(core.DeviceID(i), parts[i], gcfg.Schema(), core.Under,
			true, positions[i], router.View(core.DeviceID(i)), pcfg)
		if err != nil {
			return fmt.Errorf("chaos: peer %d: %w", i, err)
		}
		r, c := i/cfg.Grid, i%cfg.Grid
		if r > 0 {
			p.AddNeighbor(core.DeviceID(i - cfg.Grid))
		}
		if r < cfg.Grid-1 {
			p.AddNeighbor(core.DeviceID(i + cfg.Grid))
		}
		if c > 0 {
			p.AddNeighbor(core.DeviceID(i - 1))
		}
		if c < cfg.Grid-1 {
			p.AddNeighbor(core.DeviceID(i + 1))
		}
		net.peers[i] = p
		net.alive[i] = true
		return nil
	}
	for i := 0; i < n; i++ {
		if err := spawn(i); err != nil {
			return nil, err
		}
	}

	// Enact outages for real: close the peer when its window opens (its
	// heartbeats stop and the lease decays honestly) and restart it — new
	// port, same identity and data — when a bounded window closes.
	scale := cfg.Horizon / cfg.Wall.Seconds()
	var timers []*time.Timer
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()
	unstable := make(map[int]bool)
	for _, o := range cfg.Plan.Outages {
		o := o
		if o.Node < 0 || o.Node >= n {
			continue
		}
		unstable[o.Node] = true
		timers = append(timers, time.AfterFunc(time.Duration(o.Start/scale*float64(time.Second)), func() {
			net.mu.Lock()
			p := net.peers[o.Node]
			net.peers[o.Node] = nil
			net.alive[o.Node] = false
			net.mu.Unlock()
			if p != nil {
				p.Close()
			}
		}))
		if o.End > 0 {
			timers = append(timers, time.AfterFunc(time.Duration(o.End/scale*float64(time.Second)), func() {
				net.mu.Lock()
				defer net.mu.Unlock()
				if net.peers[o.Node] == nil {
					spawn(o.Node)
				}
			}))
		}
	}
	var stable []int
	for i := 0; i < n; i++ {
		if !unstable[i] {
			stable = append(stable, i)
		}
	}
	if len(stable) == 0 {
		return nil, fmt.Errorf("chaos: plan crashes every node; no stable originator")
	}

	res := &SoakResult{Peers: n}
	var (
		resMu  sync.Mutex
		wg     sync.WaitGroup
		dumped bool
	)
	start := time.Now()
	ticker := time.NewTicker(cfg.QueryEvery)
	defer ticker.Stop()
	for turn := 0; ; turn++ {
		<-ticker.C
		issued := time.Since(start)
		if issued >= cfg.Wall {
			break
		}
		net.mu.Lock()
		org := stable[turn%len(stable)]
		p := net.peers[org]
		aliveCount := 0
		var union []tuple.Tuple
		seen := make(map[[2]float64]bool)
		for i := 0; i < n; i++ {
			if !net.alive[i] {
				continue
			}
			aliveCount++
			for _, t := range parts[i] {
				s := [2]float64{t.X, t.Y}
				if !seen[s] {
					seen[s] = true
					union = append(union, t)
				}
			}
		}
		net.mu.Unlock()
		if p == nil {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var qr tcp.QueryResult
			var err error
			if cfg.SF {
				qr, err = p.QuerySF(d, aliveCount)
			} else {
				qr, err = p.Query(d, aliveCount)
			}
			truth := skyline.Constrained(union, p.Pos(), d)
			out := QueryOutcome{
				Org: org, Issued: issued, Err: err,
				Complete: qr.Complete, Results: qr.Results, Truth: len(truth),
			}
			bysite := make(map[[2]float64]tuple.Tuple, len(truth))
			for _, t := range truth {
				bysite[[2]float64{t.X, t.Y}] = t
			}
			matched := 0
			for _, t := range qr.Skyline {
				if u, ok := bysite[[2]float64{t.X, t.Y}]; ok && u.Equal(t) {
					matched++
				}
			}
			if len(truth) == 0 {
				out.Recall = 1
			} else {
				out.Recall = float64(matched) / float64(len(truth))
			}
			if cfg.Flight != nil && cfg.RecallTrigger > 0 && out.Recall < cfg.RecallTrigger {
				cfg.Flight.Record(telemetry.FlightEvent{
					Kind: "recall_miss", Peer: int32(org),
					Detail: fmt.Sprintf("recall %.3f < %.3f (%d/%d tuples)",
						out.Recall, cfg.RecallTrigger, out.Results, out.Truth),
				})
			}
			resMu.Lock()
			res.Queries = append(res.Queries, out)
			if cfg.Flight != nil && cfg.FlightDump != "" && !dumped &&
				cfg.RecallTrigger > 0 && out.Recall < cfg.RecallTrigger {
				if err := cfg.Flight.DumpFile(cfg.FlightDump); err == nil {
					dumped = true
					res.FlightDumped = true
				}
			}
			resMu.Unlock()
		}()
	}
	wg.Wait()
	for _, l := range spanLogs {
		res.Spans = append(res.Spans, l.Spans()...)
	}
	return res, nil
}
