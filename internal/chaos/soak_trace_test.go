package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"manetskyline/internal/faults"
	"manetskyline/internal/leaktest"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/trace"
)

// The observability acceptance soak: 9 peers under crash+partition with
// tracing on. The merged spans must reconstruct causal per-query timelines
// showing real TCP hops with per-hop latency, and the recall trigger must
// snapshot the flight recorder when a query issued into the partition times
// out short of the truth.
func TestSoakTracing(t *testing.T) {
	defer leaktest.Check(t)()
	plan, err := faults.Named("crash+partition", 9, 3.0)
	if err != nil {
		t.Fatalf("Named: %v", err)
	}
	flight := telemetry.NewFlightRecorder(512)
	dump := filepath.Join(t.TempDir(), "flight.jsonl")
	pcfg := soakPeerConfig(nil)
	// Shorter than the partition window: queries issued into it time out
	// incomplete, recall drops below the trigger, the recorder dumps.
	pcfg.QueryTimeout = 700 * time.Millisecond
	res, err := Soak(SoakConfig{
		Grid: 3, Tuples: 1800, Seed: 4,
		Plan: plan, Horizon: 3.0, Wall: 3 * time.Second,
		QueryEvery: 150 * time.Millisecond,
		Peer:       pcfg,
		Trace:      true,
		Flight:     flight, FlightDump: dump, RecallTrigger: 0.999,
	})
	if err != nil {
		t.Fatalf("Soak: %v", err)
	}
	if len(res.Queries) < 8 {
		t.Fatalf("only %d queries issued", len(res.Queries))
	}
	if len(res.Spans) == 0 {
		t.Fatal("traced soak returned no spans")
	}

	tls := trace.Merge(res.Spans)
	if len(tls) == 0 {
		t.Fatal("merged spans produced no timelines")
	}
	// Every query the soak scored must have a merged timeline, and at least
	// one must show the full causal story: multi-hop flood, result hops
	// back, a critical path, and positive per-hop latencies.
	if len(tls) < len(res.Queries) {
		t.Errorf("%d timelines for %d queries", len(tls), len(res.Queries))
	}
	full := 0
	for _, tl := range tls {
		queries, results := 0, 0
		for _, h := range tl.Hops {
			if h.Bytes <= 0 {
				t.Errorf("query %d/%d: hop %d->%d with %d bytes", tl.Org, tl.Cnt, h.From, h.To, h.Bytes)
			}
			if h.Lost {
				continue
			}
			if h.Latency < 0 {
				t.Errorf("query %d/%d: negative hop latency %g", tl.Org, tl.Cnt, h.Latency)
			}
			switch h.Kind {
			case "query":
				queries++
			case "result":
				results++
			}
		}
		if tl.Done && queries > 0 && results > 0 && len(tl.Critical) > 0 {
			full++
		}
	}
	if full == 0 {
		t.Errorf("no timeline shows flood hops, result hops, and a critical path")
	}

	// The partition must have tripped the recall trigger: fault events in
	// the ring and one snapshot on disk.
	if flight.Len() == 0 {
		t.Error("flight recorder is empty after a crash+partition soak")
	}
	if !res.FlightDumped {
		t.Error("no flight-recorder dump; partition queries should have missed recall")
	}
	if data, err := os.ReadFile(dump); err != nil || len(data) == 0 {
		t.Errorf("flight dump unreadable: err=%v bytes=%d", err, len(data))
	}
	miss := 0
	for _, ev := range flight.Snapshot() {
		if ev.Kind == "recall_miss" {
			miss++
		}
	}
	if miss == 0 {
		t.Error("no recall_miss events recorded")
	}

	var report bytes.Buffer
	if err := trace.WriteReport(&report, tls); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	t.Logf("merged trace (%d timelines, %d recall misses):\n%s", len(tls), miss, report.String())
}
