package device

import (
	"testing"

	"manetskyline/internal/localsky"
)

func TestValidate(t *testing.T) {
	for _, m := range []CostModel{Handheld200MHz(), Desktop(), {}} {
		if err := m.Validate(); err != nil {
			t.Errorf("model %+v should validate: %v", m, err)
		}
	}
	bad := CostModel{PerIDCmp: -1}
	if bad.Validate() == nil {
		t.Errorf("negative cost should fail validation")
	}
}

func TestTimeComposition(t *testing.T) {
	m := CostModel{Fixed: 1, PerTuple: 2, PerIDCmp: 3, PerValCmp: 5, PerDist: 7}
	s := localsky.Stats{Scanned: 1, IDCmp: 1, ValCmp: 1, DistChecks: 1}
	if got := m.Time(s); got != 1+2+3+5+7 {
		t.Errorf("Time = %v, want 18", got)
	}
	if got := m.Time(localsky.Stats{}); got != 1 {
		t.Errorf("empty stats should cost only Fixed: %v", got)
	}
}

func TestHandheldSlowerThanDesktop(t *testing.T) {
	s := localsky.Stats{Scanned: 10000, IDCmp: 50000, ValCmp: 50000, DistChecks: 10000}
	hh, dt := Handheld200MHz().Time(s), Desktop().Time(s)
	if hh <= dt {
		t.Errorf("handheld (%v) should be slower than desktop (%v)", hh, dt)
	}
	// Roughly two to three orders of magnitude, as between an interpreted
	// 200 MHz device and a compiled 3 GHz desktop.
	if hh/dt < 50 {
		t.Errorf("handheld/desktop ratio %v implausibly small", hh/dt)
	}
}

func TestIDCheaperThanValue(t *testing.T) {
	m := Handheld200MHz()
	id := m.Time(localsky.Stats{IDCmp: 1000000})
	val := m.Time(localsky.Stats{ValCmp: 1000000})
	if id >= val {
		t.Errorf("ID comparisons (%v) must be cheaper than value comparisons (%v) — the §4.2 premise", id, val)
	}
}
