// Package device models the processing speed of the resource-constrained
// handhelds the paper targets (an HP iPAQ h6365: 200 MHz TI OMAP1510
// running interpreted SuperWaba code, §5.1).
//
// The paper measured local skyline processing on the real device and then,
// in the MANET experiments, *estimated* per-device processing costs and
// added them to the simulated communication delays (§5.2.3). This package
// is that estimator: it converts the work counters recorded by
// internal/localsky into simulated seconds using per-operation costs
// calibrated to a 200 MHz-class interpreted runtime. The HS-vs-FS shape of
// Figure 5 (ID comparisons several times cheaper than raw float
// comparisons, both dwarfed by an interpreter's per-operation overhead)
// is what matters, not the absolute constants.
package device

import (
	"fmt"

	"manetskyline/internal/localsky"
)

// CostModel maps work counters to seconds.
type CostModel struct {
	// Fixed is the per-query dispatch overhead.
	Fixed float64
	// PerTuple is the per-scanned-tuple loop overhead.
	PerTuple float64
	// PerIDCmp is the cost of one integer ID comparison (hybrid storage).
	PerIDCmp float64
	// PerValCmp is the cost of one raw attribute-value comparison,
	// including the addressing/dereference work flat storage needs.
	PerValCmp float64
	// PerDist is the cost of one spatial distance check.
	PerDist float64
}

// Handheld200MHz returns constants for the paper's iPAQ-class device: an
// interpreted runtime on a 200 MHz core, where a float comparison with
// offset addressing costs on the order of microseconds and a byte-ID
// comparison roughly a quarter of that.
func Handheld200MHz() CostModel {
	return CostModel{
		Fixed:     5e-3,
		PerTuple:  1e-6,
		PerIDCmp:  0.5e-6,
		PerValCmp: 2e-6,
		PerDist:   3e-6,
	}
}

// Desktop returns constants for the paper's simulation host (a ~3 GHz
// Pentium IV running compiled code), provided for comparison benches.
func Desktop() CostModel {
	return CostModel{
		Fixed:     1e-5,
		PerTuple:  5e-9,
		PerIDCmp:  2e-9,
		PerValCmp: 6e-9,
		PerDist:   8e-9,
	}
}

// Validate checks that all constants are non-negative.
func (c CostModel) Validate() error {
	for name, v := range map[string]float64{
		"Fixed": c.Fixed, "PerTuple": c.PerTuple, "PerIDCmp": c.PerIDCmp,
		"PerValCmp": c.PerValCmp, "PerDist": c.PerDist,
	} {
		if v < 0 {
			return fmt.Errorf("device: negative cost %s = %g", name, v)
		}
	}
	return nil
}

// Time converts one evaluation's work counters into seconds.
func (c CostModel) Time(s localsky.Stats) float64 {
	return c.Fixed +
		float64(s.Scanned)*c.PerTuple +
		float64(s.IDCmp)*c.PerIDCmp +
		float64(s.ValCmp)*c.PerValCmp +
		float64(s.DistChecks)*c.PerDist
}
