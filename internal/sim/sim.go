// Package sim provides the discrete-event simulation kernel underneath the
// MANET simulator — the Go counterpart of the JiST/SWANS engine the paper
// uses. Events are closures ordered by simulated time with FIFO tie-break,
// the clock only moves when events run, and all randomness flows through a
// seeded source so every simulation is reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Engine is a single-threaded discrete-event scheduler.
type Engine struct {
	now   float64
	queue eventHeap
	seq   uint64
	rng   *rand.Rand
	ran   uint64
}

// NewEngine creates an engine with its clock at zero and a deterministic
// random source.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG exposes the engine's seeded random source. All simulation components
// must draw randomness from here (or from sources derived from it) to keep
// runs reproducible.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// Schedule runs f after delay seconds of simulated time. A negative delay
// panics: the past is immutable in a DES.
func (e *Engine) Schedule(delay float64, f func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	e.At(e.now+delay, f)
}

// At runs f at absolute simulated time t (not before the current time).
func (e *Engine) At(t float64, f func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %g before now %g", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, run: f})
}

// Step executes the earliest pending event and reports whether one existed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.ran++
	ev.run()
	return true
}

// Run executes events until the queue empties or the next event lies beyond
// until; the clock finishes at the time of the last executed event (or
// until, whichever the caller prefers to read). It returns the number of
// events executed.
func (e *Engine) Run(until float64) uint64 {
	start := e.ran
	for len(e.queue) > 0 && e.queue[0].at <= until {
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
	return e.ran - start
}

// RunAll drains the queue completely and returns the number of events
// executed.
func (e *Engine) RunAll() uint64 {
	start := e.ran
	for e.Step() {
	}
	return e.ran - start
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Executed returns the total number of events run so far.
func (e *Engine) Executed() uint64 { return e.ran }

type event struct {
	at  float64
	seq uint64
	run func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
