// Package sim provides the discrete-event simulation kernel underneath the
// MANET simulator — the Go counterpart of the JiST/SWANS engine the paper
// uses. Events are closures ordered by simulated time with FIFO tie-break,
// the clock only moves when events run, and all randomness flows through a
// seeded source so every simulation is reproducible.
//
// The event queue is a value-based 4-ary heap: events are stored inline (no
// per-event heap object), the shallower tree does fewer cache-missing
// comparisons per operation than a binary heap of pointers, and steady-state
// Schedule/Step cycles allocate nothing once the queue slice has grown to
// its high-water mark. Components with hot delivery paths implement Runner
// and recycle their event state through their own free lists (see
// radio.Medium); one-off closures keep using Schedule/At.
package sim

import (
	"fmt"
	"math/rand"
)

// Runner is a pre-allocated event: Run is invoked when the event fires.
// Pooled implementations let hot paths schedule without allocating a
// closure per event.
type Runner interface {
	Run()
}

// funcRunner adapts a plain closure to Runner. Func values are
// pointer-shaped, so the interface conversion itself does not allocate.
type funcRunner func()

func (f funcRunner) Run() { f() }

// Engine is a single-threaded discrete-event scheduler.
type Engine struct {
	now   float64
	queue []event // value-based 4-ary min-heap on (at, seq)
	seq   uint64
	rng   *rand.Rand
	ran   uint64
}

type event struct {
	at  float64
	seq uint64
	r   Runner
}

// NewEngine creates an engine with its clock at zero and a deterministic
// random source.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG exposes the engine's seeded random source. All simulation components
// must draw randomness from here (or from sources derived from it) to keep
// runs reproducible.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// Schedule runs f after delay seconds of simulated time. A negative delay
// panics: the past is immutable in a DES.
func (e *Engine) Schedule(delay float64, f func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	e.At(e.now+delay, f)
}

// At runs f at absolute simulated time t (not before the current time).
func (e *Engine) At(t float64, f func()) {
	e.AtRunner(t, funcRunner(f))
}

// ScheduleRunner runs r after delay seconds of simulated time.
func (e *Engine) ScheduleRunner(delay float64, r Runner) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	e.AtRunner(e.now+delay, r)
}

// AtRunner runs r at absolute simulated time t (not before the current
// time). This is the allocation-free scheduling primitive: the event is
// stored by value and r may come from the caller's free list.
func (e *Engine) AtRunner(t float64, r Runner) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %g before now %g", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, r: r})
}

// Step executes the earliest pending event and reports whether one existed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.ran++
	ev.r.Run()
	return true
}

// Run executes events until the queue empties or the next event lies beyond
// until; the clock finishes at the time of the last executed event (or
// until, whichever the caller prefers to read). It returns the number of
// events executed.
func (e *Engine) Run(until float64) uint64 {
	start := e.ran
	for len(e.queue) > 0 && e.queue[0].at <= until {
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
	return e.ran - start
}

// RunAll drains the queue completely and returns the number of events
// executed.
func (e *Engine) RunAll() uint64 {
	start := e.ran
	for e.Step() {
	}
	return e.ran - start
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Executed returns the total number of events run so far.
func (e *Engine) Executed() uint64 { return e.ran }

// --- 4-ary value heap -------------------------------------------------------

// less orders events by time with FIFO tie-break; seq is unique, so the
// order is total and any conforming heap pops the same sequence.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev event) {
	q := append(e.queue, ev)
	// Sift up: parent of i is (i-1)/4.
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !less(&q[i], &q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	e.queue = q
}

func (e *Engine) pop() event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the Runner reference
	q = q[:n]
	// Sift down: children of i are 4i+1 .. 4i+4.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// Find the smallest of up to four children.
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&q[j], &q[m]) {
				m = j
			}
		}
		if !less(&q[m], &q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	e.queue = q
	return top
}
