// Package sim provides the discrete-event simulation kernel underneath the
// MANET simulator — the Go counterpart of the JiST/SWANS engine the paper
// uses. Events are ordered by simulated time with FIFO tie-break, the clock
// only moves when events run, and all randomness flows through a seeded
// source so every simulation is reproducible.
//
// The event queue is a value-based 4-ary heap of *compact events*: each
// queue entry is a fixed 32-byte struct carrying a small handler-kind enum
// and two integer arguments instead of an interface or closure payload. The
// queue therefore contains no pointers at all — the garbage collector never
// scans it, which matters when a 100k-node scenario keeps hundreds of
// thousands of frames in flight — and steady-state Schedule/Step cycles
// allocate nothing once the slices have grown to their high-water marks.
//
// Hot components (the radio medium's frame deliveries, per-link queues)
// register their own event kinds with RegisterKind and schedule with
// AtKind/ScheduleKind, packing node IDs and pool-slot indices into the two
// argument words. One-off closures keep using Schedule/At, and pre-allocated
// Runner values keep using ScheduleRunner/AtRunner: both are dispatched
// through reserved kinds whose argument indexes a free-listed side table, so
// the queue stays pointer-free either way.
//
// Event times remain float64 seconds. The tendermint-style gossip
// simulators this design borrows from use int32 millisecond ticks; here the
// golden-trace determinism gates pin every historical delivery timestamp
// bit-for-bit, so the time representation is the one part of the event that
// must not be quantized.
package sim

import (
	"fmt"
	"math/rand"
)

// Runner is a pre-allocated event: Run is invoked when the event fires.
// Pooled implementations let hot paths schedule without allocating a
// closure per event.
type Runner interface {
	Run()
}

// Kind identifies a registered compact-event handler on one engine.
type Kind uint16

// Reserved kinds backing the closure and Runner APIs.
const (
	kindFunc Kind = iota
	kindRunner
	numReservedKinds
)

// Engine is a single-threaded discrete-event scheduler.
type Engine struct {
	now   float64
	queue []event // value-based 4-ary min-heap on (at, seq)
	seq   uint64
	rng   *rand.Rand
	ran   uint64

	// kinds maps a Kind to its handler; indices 0 and 1 are the reserved
	// closure and Runner dispatchers.
	kinds []func(a uint32, b uint64)

	// Side tables for the reserved kinds: pending closures and Runners live
	// in free-listed slots referenced by the event's a-argument, keeping the
	// queue itself pointer-free.
	funcs      []func()
	funcFree   []uint32
	runners    []Runner
	runnerFree []uint32
}

// event is one queue entry: 32 bytes, no pointers.
type event struct {
	at   float64
	seq  uint64
	b    uint64
	a    uint32
	kind Kind
}

// NewEngine creates an engine with its clock at zero and a deterministic
// random source.
func NewEngine(seed int64) *Engine {
	e := &Engine{rng: rand.New(rand.NewSource(seed))}
	e.kinds = append(e.kinds,
		func(a uint32, _ uint64) { // kindFunc
			f := e.funcs[a]
			e.funcs[a] = nil
			e.funcFree = append(e.funcFree, a)
			f()
		},
		func(a uint32, _ uint64) { // kindRunner
			r := e.runners[a]
			e.runners[a] = nil
			e.runnerFree = append(e.runnerFree, a)
			r.Run()
		},
	)
	return e
}

// RegisterKind installs a compact-event handler and returns its Kind. Hot
// paths register once at setup and then schedule events that carry only
// (kind, a, b) — no closure, no interface, no allocation.
func (e *Engine) RegisterKind(fn func(a uint32, b uint64)) Kind {
	if fn == nil {
		panic("sim: nil kind handler")
	}
	k := Kind(len(e.kinds))
	e.kinds = append(e.kinds, fn)
	return k
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG exposes the engine's seeded random source. All simulation components
// must draw randomness from here (or from sources derived from it) to keep
// runs reproducible.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// Schedule runs f after delay seconds of simulated time. A negative delay
// panics: the past is immutable in a DES.
func (e *Engine) Schedule(delay float64, f func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	e.At(e.now+delay, f)
}

// At runs f at absolute simulated time t (not before the current time).
func (e *Engine) At(t float64, f func()) {
	var slot uint32
	if n := len(e.funcFree); n > 0 {
		slot = e.funcFree[n-1]
		e.funcFree = e.funcFree[:n-1]
		e.funcs[slot] = f
	} else {
		slot = uint32(len(e.funcs))
		e.funcs = append(e.funcs, f)
	}
	e.AtKind(t, kindFunc, slot, 0)
}

// ScheduleRunner runs r after delay seconds of simulated time.
func (e *Engine) ScheduleRunner(delay float64, r Runner) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	e.AtRunner(e.now+delay, r)
}

// AtRunner runs r at absolute simulated time t (not before the current
// time). The event is stored by value and r may come from the caller's free
// list; r itself parks in a free-listed side slot until the event fires.
func (e *Engine) AtRunner(t float64, r Runner) {
	var slot uint32
	if n := len(e.runnerFree); n > 0 {
		slot = e.runnerFree[n-1]
		e.runnerFree = e.runnerFree[:n-1]
		e.runners[slot] = r
	} else {
		slot = uint32(len(e.runners))
		e.runners = append(e.runners, r)
	}
	e.AtKind(t, kindRunner, slot, 0)
}

// ScheduleKind queues a compact event after delay seconds of simulated time.
func (e *Engine) ScheduleKind(delay float64, k Kind, a uint32, b uint64) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	e.AtKind(e.now+delay, k, a, b)
}

// AtKind queues a compact event at absolute simulated time t (not before
// the current time). This is the allocation-free scheduling primitive: the
// 32-byte event is stored by value in the pointer-free queue and dispatched
// to the registered handler when it fires.
func (e *Engine) AtKind(t float64, k Kind, a uint32, b uint64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %g before now %g", t, e.now))
	}
	if int(k) >= len(e.kinds) {
		panic(fmt.Sprintf("sim: unregistered event kind %d", k))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, kind: k, a: a, b: b})
}

// Step executes the earliest pending event and reports whether one existed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.ran++
	e.kinds[ev.kind](ev.a, ev.b)
	return true
}

// Run executes events until the queue empties or the next event lies beyond
// until; the clock finishes at the time of the last executed event (or
// until, whichever the caller prefers to read). It returns the number of
// events executed.
func (e *Engine) Run(until float64) uint64 {
	start := e.ran
	for len(e.queue) > 0 && e.queue[0].at <= until {
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
	return e.ran - start
}

// RunAll drains the queue completely and returns the number of events
// executed.
func (e *Engine) RunAll() uint64 {
	start := e.ran
	for e.Step() {
	}
	return e.ran - start
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Executed returns the total number of events run so far.
func (e *Engine) Executed() uint64 { return e.ran }

// --- 4-ary value heap -------------------------------------------------------

// less orders events by time with FIFO tie-break; seq is unique, so the
// order is total and any conforming heap pops the same sequence.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev event) {
	q := append(e.queue, ev)
	// Sift up: parent of i is (i-1)/4.
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !less(&q[i], &q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	e.queue = q
}

func (e *Engine) pop() event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	// Sift down: children of i are 4i+1 .. 4i+4.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// Find the smallest of up to four children.
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&q[j], &q[m]) {
				m = j
			}
		}
		if !less(&q[m], &q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	e.queue = q
	return top
}
