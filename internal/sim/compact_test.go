package sim

import "testing"

// TestKindScheduling checks that compact events dispatch to their registered
// handler with their argument words intact, interleaved in (time, FIFO)
// order with closure and Runner events.
func TestKindScheduling(t *testing.T) {
	e := NewEngine(1)
	type hit struct {
		a uint32
		b uint64
	}
	var hits []hit
	k := e.RegisterKind(func(a uint32, b uint64) { hits = append(hits, hit{a, b}) })

	var order []int
	e.AtKind(2, k, 7, 1<<40)
	e.Schedule(1, func() { order = append(order, 1) })
	e.ScheduleKind(2, k, 9, 42) // same time as the first: FIFO by seq
	e.ScheduleRunner(3, runnerFunc(func() { order = append(order, 3) }))
	e.RunAll()

	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("closure/runner events out of order: %v", order)
	}
	if len(hits) != 2 || hits[0] != (hit{7, 1 << 40}) || hits[1] != (hit{9, 42}) {
		t.Fatalf("kind events wrong: %+v", hits)
	}
}

// TestKindNested checks that a kind handler may schedule further compact
// events while the queue is mid-drain.
func TestKindNested(t *testing.T) {
	e := NewEngine(1)
	var depths []uint32
	var k Kind
	k = e.RegisterKind(func(a uint32, _ uint64) {
		depths = append(depths, a)
		if a < 3 {
			e.ScheduleKind(1, k, a+1, 0)
		}
	})
	e.AtKind(1, k, 0, 0)
	e.RunAll()
	if len(depths) != 4 || depths[3] != 3 {
		t.Fatalf("nested kind events: %v", depths)
	}
	if e.Now() != 4 {
		t.Fatalf("clock = %g, want 4", e.Now())
	}
}

// TestUnregisteredKindPanics pins the guard against scheduling with a Kind
// the engine never issued.
func TestUnregisteredKindPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Errorf("unregistered kind should panic")
		}
	}()
	e.AtKind(1, Kind(99), 0, 0)
}

// TestSimEventZeroAllocs is the allocation regression gate for the compact
// event path: once the queue has reached its working size, a schedule+pop
// cycle of a registered-kind event must not allocate. This is what keeps
// the per-frame delivery path of a 30k-node flood allocation-free.
func TestSimEventZeroAllocs(t *testing.T) {
	e := NewEngine(1)
	var sink uint64
	k := e.RegisterKind(func(a uint32, b uint64) { sink += uint64(a) + b })
	for i := 0; i < 64; i++ { // grow the queue to its working size
		e.ScheduleKind(float64(i%7)+1, k, uint32(i), uint64(i))
	}
	for e.Step() {
	}
	e.ScheduleKind(1, k, 1, 2)
	e.Step() // warm up
	allocs := testing.AllocsPerRun(100, func() {
		e.ScheduleKind(1, k, 1, 2)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("ScheduleKind+Step allocated %.1f objects/op, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("handler never ran")
	}
}
