package sim

import (
	"sort"
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.Schedule(d, func() { order = append(order, d) })
	}
	if n := e.RunAll(); n != 5 {
		t.Fatalf("ran %d events, want 5", n)
	}
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 5 {
		t.Errorf("clock = %v, want 5", e.Now())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var hits []float64
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.Schedule(2, func() { hits = append(hits, e.Now()) })
	})
	e.RunAll()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("nested events: %v", hits)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), func() { count++ })
	}
	if n := e.Run(5); n != 5 {
		t.Fatalf("Run(5) executed %d, want 5", n)
	}
	if e.Now() != 5 {
		t.Errorf("clock = %v, want 5", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("pending = %d, want 5", e.Pending())
	}
	if n := e.Run(100); n != 5 {
		t.Errorf("second Run executed %d, want 5", n)
	}
	if e.Executed() != 10 {
		t.Errorf("Executed = %d", e.Executed())
	}
}

func TestRunAdvancesClockToUntil(t *testing.T) {
	e := NewEngine(1)
	e.Run(42)
	if e.Now() != 42 {
		t.Errorf("idle Run should advance the clock to until: %v", e.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Errorf("negative delay should panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestPastSchedulingPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(5, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Errorf("scheduling in the past should panic")
		}
	}()
	e.At(1, func() {})
}

func TestDeterminism(t *testing.T) {
	trace := func(seed int64) []float64 {
		e := NewEngine(seed)
		var out []float64
		var tick func()
		tick = func() {
			out = append(out, e.Now())
			if len(out) < 50 {
				e.Schedule(e.RNG().Float64(), tick)
			}
		}
		e.Schedule(0, tick)
		e.RunAll()
		return out
	}
	a, b := trace(7), trace(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := trace(8)
	diff := len(a) != len(c)
	for i := 0; !diff && i < len(a); i++ {
		diff = a[i] != c[i]
	}
	if !diff {
		t.Errorf("different seeds produced identical traces")
	}
}

// TestScheduleStepZeroAllocs pins the steady-state scheduler at zero heap
// allocations: once the queue slice has reached its high-water mark,
// Schedule/Step cycles with a prebuilt closure must not allocate. This is
// what lets the radio layer's pooled deliveries make the whole transmit
// path allocation-free.
func TestScheduleStepZeroAllocs(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ { // grow the queue to its working size
		e.Schedule(float64(i%7)+1, fn)
	}
	for e.Step() {
	}
	e.Schedule(1, fn)
	e.Step() // warm up
	allocs := testing.AllocsPerRun(50, func() {
		e.Schedule(1, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("Schedule+Step allocated %.1f objects/op, want 0", allocs)
	}
}

// TestRunnerScheduling checks the Runner-based API orders and executes
// events exactly like the closure API.
func TestRunnerScheduling(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.ScheduleRunner(2, runnerFunc(func() { order = append(order, 2) }))
	e.AtRunner(1, runnerFunc(func() { order = append(order, 1) }))
	e.Schedule(3, func() { order = append(order, 3) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("runner events ran out of order: %v", order)
	}
}

type runnerFunc func()

func (f runnerFunc) Run() { f() }
