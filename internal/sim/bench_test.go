package sim

import "testing"

// BenchmarkEngineScheduleStep measures the steady-state Schedule+Step cycle
// over a deep pending queue: every iteration pushes one event and pops the
// earliest, which is exactly the scheduler work a simulation run amortizes
// over its event count. The scheduled function is static so the benchmark
// isolates the queue itself (capturing closures are the caller's cost).
func BenchmarkEngineScheduleStep(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	const pending = 1024
	for i := 0; i < pending; i++ {
		e.Schedule(float64(i%97)+0.5, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(float64(i%97)+0.5, fn)
		e.Step()
	}
}
