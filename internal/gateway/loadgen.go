package gateway

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/tuple"
	"manetskyline/internal/wire"
)

// LoadConfig drives one open-loop load run against a gateway Server.
//
// Open-loop means arrivals come from a fixed-rate clock, not from request
// completions: a slow or shedding gateway does not slow the offered load
// down, which is exactly the regime where closed-loop harnesses flatter a
// system (coordinated omission). Each arrival gets its own connection and
// goroutine, so a stuck request delays nothing.
type LoadConfig struct {
	// Addr is the gateway server to hit.
	Addr string
	// QPS is the offered arrival rate (must be positive).
	QPS float64
	// Duration is how long arrivals are generated (must be positive).
	Duration time.Duration
	// Timeout bounds each request round trip (0 ⇒ 2s). A request that
	// gets no frame back inside it counts as a Timeout — the failure mode
	// the gateway's explicit rejects exist to eliminate.
	Timeout time.Duration
	// Regions are the query positions, cycled round-robin (empty ⇒ one
	// region at the origin). More regions means fewer coalescing/cache
	// collisions.
	Regions []tuple.Point
	// D is each query's distance of interest (0 ⇒ unconstrained).
	D float64
	// ClientID stamps the queries' originator field.
	ClientID core.DeviceID
}

// LoadReport summarizes one load run.
type LoadReport struct {
	// Offered is the configured arrival rate; Sent is how many requests
	// the clock actually fired.
	Offered float64
	Sent    int
	// Accepted got a result frame; Shedded got an explicit reject frame
	// (split by reason in ShedByReason); Timeouts got nothing inside the
	// round-trip budget; Errors covers dial/protocol failures.
	Accepted     int
	Shedded      int
	ShedByReason map[string]int
	Timeouts     int
	Errors       int
	// GoodputQPS is accepted results per second of run time; ShedRate is
	// the shed fraction of all sent requests.
	GoodputQPS float64
	ShedRate   float64
	// P50/P95/P99 are latency quantiles over accepted requests.
	P50, P95, P99 time.Duration
	// Elapsed is the whole run including the drain of in-flight requests.
	Elapsed time.Duration
}

// String renders the report as one log-friendly line.
func (r LoadReport) String() string {
	return fmt.Sprintf(
		"offered %.0f qps: sent %d, accepted %d (goodput %.1f qps), shed %d (%.1f%%), timeouts %d, errors %d, p50 %v p95 %v p99 %v",
		r.Offered, r.Sent, r.Accepted, r.GoodputQPS, r.Shedded, 100*r.ShedRate,
		r.Timeouts, r.Errors, r.P50, r.P95, r.P99)
}

// outcome is one request's classified result.
type outcome struct {
	kind    int // 0 accepted, 1 shedded, 2 timeout, 3 error
	reason  string
	latency time.Duration
}

// RunLoad executes one open-loop run and blocks until every request
// goroutine has finished (so callers can leak-gate it).
func RunLoad(cfg LoadConfig) (LoadReport, error) {
	if cfg.QPS <= 0 || cfg.Duration <= 0 {
		return LoadReport{}, fmt.Errorf("gateway: load run needs positive QPS and duration")
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	regions := cfg.Regions
	if len(regions) == 0 {
		regions = []tuple.Point{{}}
	}

	interval := time.Duration(float64(time.Second) / cfg.QPS)
	outcomes := make(chan outcome, int(cfg.QPS*cfg.Duration.Seconds())+16)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	ticker := time.NewTicker(interval)
	sent := 0
	for now := start; !now.After(deadline); {
		wg.Add(1)
		go issue(cfg, regions[sent%len(regions)], uint8(sent), outcomes, &wg)
		sent++
		now = <-ticker.C
	}
	ticker.Stop()
	wg.Wait()
	close(outcomes)

	rep := LoadReport{
		Offered:      cfg.QPS,
		Sent:         sent,
		ShedByReason: make(map[string]int),
		Elapsed:      time.Since(start),
	}
	var lats []time.Duration
	for o := range outcomes {
		switch o.kind {
		case 0:
			rep.Accepted++
			lats = append(lats, o.latency)
		case 1:
			rep.Shedded++
			rep.ShedByReason[o.reason]++
		case 2:
			rep.Timeouts++
		default:
			rep.Errors++
		}
	}
	rep.GoodputQPS = float64(rep.Accepted) / rep.Elapsed.Seconds()
	if rep.Sent > 0 {
		rep.ShedRate = float64(rep.Shedded) / float64(rep.Sent)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.P50 = quantileDur(lats, 0.50)
	rep.P95 = quantileDur(lats, 0.95)
	rep.P99 = quantileDur(lats, 0.99)
	return rep, nil
}

// issue runs one request on its own connection and classifies the outcome.
func issue(cfg LoadConfig, pos tuple.Point, cnt uint8, out chan<- outcome, wg *sync.WaitGroup) {
	defer wg.Done()
	start := time.Now()
	conn, err := net.DialTimeout("tcp", cfg.Addr, cfg.Timeout)
	if err != nil {
		out <- outcome{kind: 3}
		return
	}
	defer conn.Close()
	conn.SetDeadline(start.Add(cfg.Timeout))
	q := core.Query{Org: cfg.ClientID, Cnt: cnt, Pos: pos, D: cfg.D}
	if err := wire.WriteFrame(conn, wire.EncodeQuery(q)); err != nil {
		out <- outcome{kind: 3}
		return
	}
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			out <- outcome{kind: 2}
		} else {
			out <- outcome{kind: 3}
		}
		return
	}
	switch kind, _ := wire.Peek(msg); kind {
	case wire.KindResult:
		out <- outcome{kind: 0, latency: time.Since(start)}
	case wire.KindReject:
		rej, err := wire.DecodeReject(msg)
		if err != nil {
			out <- outcome{kind: 3}
			return
		}
		out <- outcome{kind: 1, reason: wire.RejectCodeName(rej.Code)}
	default:
		out <- outcome{kind: 3}
	}
}

// quantileDur picks the p-quantile of a sorted latency slice.
func quantileDur(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
