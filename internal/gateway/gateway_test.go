package gateway

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"manetskyline/internal/leaktest"
	"manetskyline/internal/tcp"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
)

// stubBackend returns a fixed skyline, counting calls. release, when
// non-nil, blocks every call until it is closed.
func stubBackend(calls *atomic.Int64, release chan struct{}) Backend {
	return func(req Request) (tcp.QueryResult, error) {
		calls.Add(1)
		if release != nil {
			<-release
		}
		return tcp.QueryResult{
			Skyline:  []tuple.Tuple{{X: 1, Y: 2, Attrs: []float64{3, 4}}},
			Results:  2,
			Complete: true,
		}, nil
	}
}

// waitFor polls cond for up to 2 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSingleFlightCoalescing pins the tentpole property: N identical
// concurrent queries run ONE MANET execution; the rest attach to it and
// share the result.
func TestSingleFlightCoalescing(t *testing.T) {
	defer leaktest.Check(t)()
	reg := telemetry.NewRegistry()
	var calls atomic.Int64
	release := make(chan struct{})
	g, err := New(stubBackend(&calls, release), Config{Registry: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	req := Request{Pos: tuple.Point{X: 100, Y: 100}, D: 200}
	const followers = 7
	results := make(chan Response, followers+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		res, err := g.Do(req)
		if err != nil {
			t.Errorf("leader Do: %v", err)
		}
		results <- res
	}()
	waitFor(t, "leader inside backend", func() bool { return calls.Load() == 1 })
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := g.Do(req)
			if err != nil {
				t.Errorf("follower Do: %v", err)
			}
			results <- res
		}()
	}
	waitFor(t, "followers attached", func() bool {
		return reg.Snapshot().Counters["gateway_coalesced_total"] == followers
	})
	close(release)
	wg.Wait()
	close(results)

	var live, coalesced int
	for res := range results {
		if len(res.Skyline) != 1 || !res.Complete {
			t.Errorf("shared result corrupted: %+v", res)
		}
		switch res.Source {
		case SourceLive:
			live++
		case SourceCoalesced:
			coalesced++
		default:
			t.Errorf("unexpected source %v", res.Source)
		}
	}
	if live != 1 || coalesced != followers {
		t.Errorf("live=%d coalesced=%d, want 1/%d", live, coalesced, followers)
	}
	if calls.Load() != 1 {
		t.Errorf("backend ran %d times for %d identical queries", calls.Load(), followers+1)
	}
}

// TestCacheTTLDerivedFromSpeedBound pins the movement-aware TTL: with a
// 10 u/s speed bound and 0.5 u of slack the cache must serve for 50 ms and
// not a moment past it.
func TestCacheTTLDerivedFromSpeedBound(t *testing.T) {
	defer leaktest.Check(t)()
	reg := telemetry.NewRegistry()
	var calls atomic.Int64
	cfg := Config{MaxSpeed: 10, MovementSlack: 0.5, Registry: reg}
	if ttl := cfg.TTL(); ttl != 50*time.Millisecond {
		t.Fatalf("TTL() = %v, want 50ms from slack/speed", ttl)
	}
	g, err := New(stubBackend(&calls, nil), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	req := Request{Pos: tuple.Point{X: 10, Y: 10}, D: 100}
	if res, err := g.Do(req); err != nil || res.Source != SourceLive {
		t.Fatalf("first query: res=%+v err=%v, want live", res, err)
	}
	res, err := g.Do(req)
	if err != nil || res.Source != SourceCache {
		t.Fatalf("immediate repeat: source=%v err=%v, want cache hit", res.Source, err)
	}
	// A position elsewhere in the SAME 250-unit region cell shares the entry.
	if res, err := g.Do(Request{Pos: tuple.Point{X: 200, Y: 200}, D: 100}); err != nil || res.Source != SourceCache {
		t.Fatalf("same-cell query: source=%v err=%v, want cache hit", res.Source, err)
	}
	// A different region cell must not.
	if res, err := g.Do(Request{Pos: tuple.Point{X: 900, Y: 900}, D: 100}); err != nil || res.Source != SourceLive {
		t.Fatalf("cross-cell query: source=%v err=%v, want live", res.Source, err)
	}

	time.Sleep(80 * time.Millisecond) // movement budget exhausted
	if res, err := g.Do(req); err != nil || res.Source != SourceLive {
		t.Fatalf("post-TTL query: source=%v err=%v, want live re-execution", res.Source, err)
	}
	snap := reg.Snapshot()
	if snap.Counters["gateway_cache_hits_total"] != 2 {
		t.Errorf("gateway_cache_hits_total = %d, want 2", snap.Counters["gateway_cache_hits_total"])
	}
	if snap.Counters["gateway_cache_stale_total"] == 0 {
		t.Errorf("gateway_cache_stale_total = 0; the expired entry was not observed")
	}
	if calls.Load() != 3 {
		t.Errorf("backend ran %d times, want 3 (first, cross-cell, post-TTL)", calls.Load())
	}

	// The cap side: an explicit CacheTTL below the movement bound wins.
	capped := Config{MaxSpeed: 1, MovementSlack: 100, CacheTTL: time.Second}
	if ttl := capped.TTL(); ttl != time.Second {
		t.Errorf("TTL() = %v, want the 1s cap under a 100s movement bound", ttl)
	}
}

// TestAdmissionShedsExplicitly pins the overload contract: beyond the rate
// and queue budget every query gets an explicit SheddedError with a
// retry-after hint — never a silent wait.
func TestAdmissionShedsExplicitly(t *testing.T) {
	defer leaktest.Check(t)()
	reg := telemetry.NewRegistry()
	var calls atomic.Int64
	g, err := New(stubBackend(&calls, nil), Config{
		Rate: 2, Burst: 1, QueueDepth: 1,
		DefaultDeadline: 100 * time.Millisecond,
		Registry:        reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	// Token 1: admitted immediately.
	if _, err := g.Do(Request{Pos: tuple.Point{X: 0, Y: 0}}); err != nil {
		t.Fatalf("first query: %v", err)
	}
	// Distinct key, empty bucket: the ~500ms token wait exceeds the 100ms
	// deadline, so the gateway must reject NOW with the honest wait.
	start := time.Now()
	_, err = g.Do(Request{Pos: tuple.Point{X: 1000, Y: 1000}})
	if !errors.Is(err, ErrShedded) {
		t.Fatalf("over-rate query error = %v, want ErrShedded", err)
	}
	var se *SheddedError
	if !errors.As(err, &se) {
		t.Fatalf("over-rate error %T does not carry a *SheddedError", err)
	}
	if se.RetryAfter <= 0 {
		t.Errorf("rate shed has no retry-after hint: %+v", se)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("rate shed took %v; rejection must be immediate, not deadline-paced", elapsed)
	}

	// Queue shed: one request is allowed to wait for a token; a second
	// waiter overflows QueueDepth=1 and is shed with the queue code.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Do(Request{Pos: tuple.Point{X: 2000, Y: 2000}, Deadline: time.Now().Add(5 * time.Second)})
	}()
	waitFor(t, "a request waiting in the admission queue", func() bool {
		return reg.Snapshot().Gauges["gateway_queue_depth"] >= 1
	})
	_, err = g.Do(Request{Pos: tuple.Point{X: 3000, Y: 3000}, Deadline: time.Now().Add(5 * time.Second)})
	if !errors.As(err, &se) || wireCode(se) != "queue" {
		t.Errorf("queue overflow error = %v, want a queue-code SheddedError", err)
	}
	wg.Wait()

	snap := reg.Snapshot()
	if snap.Counters["gateway_shed_total"] < 2 {
		t.Errorf("gateway_shed_total = %d, want >= 2", snap.Counters["gateway_shed_total"])
	}
	if snap.Counters[`gateway_shed_reason_total{reason="rate"}`] == 0 {
		t.Errorf("rate shed not attributed in gateway_shed_reason_total")
	}
	if snap.Counters[`gateway_shed_reason_total{reason="queue"}`] == 0 {
		t.Errorf("queue shed not attributed in gateway_shed_reason_total")
	}
}

// wireCode names a shed error's reject code.
func wireCode(se *SheddedError) string {
	return map[uint8]string{0: "rate", 1: "queue", 2: "deadline", 3: "unavailable"}[se.Code]
}

// TestGatewayCloseIsLeakFreeAndExplicit gates the lifecycle: Close stops
// the cache janitor, later queries fail with ErrGatewayClosed, and no
// goroutine outlives the gateway.
func TestGatewayCloseIsLeakFreeAndExplicit(t *testing.T) {
	defer leaktest.Check(t)()
	var calls atomic.Int64
	g, err := New(stubBackend(&calls, nil), Config{
		Rate: 100, MaxSpeed: 5, MovementSlack: 1, // cache on: janitor goroutine alive
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := g.Do(Request{Pos: tuple.Point{X: 1, Y: 1}}); err != nil {
		t.Fatalf("Do before close: %v", err)
	}
	g.Close()
	g.Close() // idempotent
	if _, err := g.Do(Request{Pos: tuple.Point{X: 2, Y: 2}}); !errors.Is(err, ErrGatewayClosed) {
		t.Errorf("Do after close error = %v, want ErrGatewayClosed", err)
	}
}
