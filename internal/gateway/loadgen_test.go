package gateway

import (
	"sync/atomic"
	"testing"
	"time"

	"manetskyline/internal/leaktest"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
)

// TestLoadgenAgainstLiveServer drives the open-loop generator at a rate a
// permissive gateway fully absorbs: everything is accepted, latencies are
// measured, and — the leak gate — every request goroutine is gone when
// RunLoad returns.
func TestLoadgenAgainstLiveServer(t *testing.T) {
	defer leaktest.Check(t)()
	var calls atomic.Int64
	g, err := New(stubBackend(&calls, nil), Config{MaxSpeed: 5, MovementSlack: 2.5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()
	srv, err := NewServer(g, ServerConfig{ID: 9})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	rep, err := RunLoad(LoadConfig{
		Addr:     srv.Addr(),
		QPS:      100,
		Duration: 300 * time.Millisecond,
		Timeout:  2 * time.Second,
		Regions:  []tuple.Point{{X: 0, Y: 0}, {X: 1000, Y: 1000}},
		D:        100,
		ClientID: 1000,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Sent < 20 {
		t.Fatalf("open-loop clock fired only %d arrivals at 100 qps over 300ms", rep.Sent)
	}
	if rep.Accepted != rep.Sent || rep.Shedded != 0 || rep.Timeouts != 0 || rep.Errors != 0 {
		t.Errorf("unloaded gateway: %s — want everything accepted", rep)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Errorf("latency quantiles inconsistent: p50=%v p99=%v", rep.P50, rep.P99)
	}
	if rep.GoodputQPS <= 0 {
		t.Errorf("goodput = %v, want positive", rep.GoodputQPS)
	}
}

// TestLoadgenObservesExplicitSheds overdrives a tiny admission budget and
// checks the generator classifies rejects as sheds — with reasons — rather
// than timeouts or errors.
func TestLoadgenObservesExplicitSheds(t *testing.T) {
	defer leaktest.Check(t)()
	reg := telemetry.NewRegistry()
	var calls atomic.Int64
	g, err := New(stubBackend(&calls, nil), Config{
		Rate: 5, Burst: 1, QueueDepth: 1, Registry: reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()
	srv, err := NewServer(g, ServerConfig{ID: 9, ReqTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	// 16 distinct regions defeat coalescing/caching, so ~5 qps of budget
	// against 150 qps offered must shed most of the load — explicitly.
	regions := make([]tuple.Point, 16)
	for i := range regions {
		regions[i] = tuple.Point{X: float64(i) * 1000, Y: float64(i) * 1000}
	}
	rep, err := RunLoad(LoadConfig{
		Addr:     srv.Addr(),
		QPS:      150,
		Duration: 300 * time.Millisecond,
		Timeout:  2 * time.Second,
		Regions:  regions,
		ClientID: 1001,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Shedded == 0 {
		t.Fatalf("overdriven gateway shed nothing: %s", rep)
	}
	if rep.Timeouts != 0 {
		t.Errorf("%d silent timeouts under overload: %s — every refusal must be explicit", rep.Timeouts, rep)
	}
	if len(rep.ShedByReason) == 0 {
		t.Errorf("sheds carry no reasons: %+v", rep)
	}
	if rep.Accepted+rep.Shedded+rep.Errors != rep.Sent {
		t.Errorf("outcome accounting leaks requests: %s", rep)
	}
	if got := reg.Snapshot().Counters["gateway_shed_total"]; got == 0 {
		t.Errorf("gateway_shed_total = 0 after an overload run")
	}
}
