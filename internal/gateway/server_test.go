package gateway

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/leaktest"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
	"manetskyline/internal/wire"
)

// TestServerProtocol pins the front-door wire contract: a KindQuery frame
// gets exactly one reply — KindResult with the echoed key on success,
// KindReject with a reason and retry-after hint on shed.
func TestServerProtocol(t *testing.T) {
	defer leaktest.Check(t)()
	reg := telemetry.NewRegistry()
	var calls atomic.Int64
	g, err := New(stubBackend(&calls, nil), Config{
		Rate: 2, Burst: 1, QueueDepth: 1, Registry: reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()
	srv, err := NewServer(g, ServerConfig{ID: 42, ReqTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	// Query 1: the burst token admits it; the reply is a result frame
	// echoing the query key and carrying the backend skyline.
	q := core.Query{Org: 7, Cnt: 3, Pos: tuple.Point{X: 10, Y: 10}, D: 100}
	if err := wire.WriteFrame(conn, wire.EncodeQuery(q)); err != nil {
		t.Fatalf("write query: %v", err)
	}
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	res, err := wire.DecodeResult(msg)
	if err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if res.Key != (core.QueryKey{Org: 7, Cnt: 3}) || res.From != 42 || len(res.Tuples) != 1 {
		t.Errorf("result frame = %+v, want key 7/3 from 42 with 1 tuple", res)
	}

	// Query 2 in a DIFFERENT region (no cache/coalesce escape hatch) with
	// an empty bucket: the reply must be an explicit reject, not silence.
	q2 := core.Query{Org: 7, Cnt: 4, Pos: tuple.Point{X: 5000, Y: 5000}, D: 100}
	if err := wire.WriteFrame(conn, wire.EncodeQuery(q2)); err != nil {
		t.Fatalf("write query 2: %v", err)
	}
	msg, err = wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("read reply 2: %v", err)
	}
	if k, _ := wire.Peek(msg); k != wire.KindReject {
		t.Fatalf("over-rate reply kind = %v, want KindReject", k)
	}
	rej, err := wire.DecodeReject(msg)
	if err != nil {
		t.Fatalf("decode reject: %v", err)
	}
	if rej.Key != (core.QueryKey{Org: 7, Cnt: 4}) {
		t.Errorf("reject echoes key %+v, want 7/4", rej.Key)
	}
	if rej.Code != wire.RejectShedRate || rej.RetryAfterMs == 0 {
		t.Errorf("reject = %+v, want rate code with a retry-after hint", rej)
	}

	// Query 3 back in region 1: served from cache/coalesce-free path? No —
	// caching is off (no TTL configured), but the bucket has refilled a
	// token by the time the hint says so.
	time.Sleep(rej.RetryAfter() + 50*time.Millisecond)
	if err := wire.WriteFrame(conn, wire.EncodeQuery(core.Query{Org: 7, Cnt: 5, Pos: q.Pos, D: 100})); err != nil {
		t.Fatalf("write query 3: %v", err)
	}
	msg, err = wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("read reply 3: %v", err)
	}
	if k, _ := wire.Peek(msg); k != wire.KindResult {
		t.Errorf("post-retry-after reply kind = %v, want KindResult", k)
	}
	if got := reg.Snapshot().Counters["gateway_shed_total"]; got != 1 {
		t.Errorf("gateway_shed_total = %d, want 1", got)
	}
}

// TestServerSurvivesGarbageAndClosesClean: a non-query frame is skipped, a
// malformed query drops only that connection, and Close leaves no
// goroutines behind even with clients attached.
func TestServerSurvivesGarbageAndClosesClean(t *testing.T) {
	defer leaktest.Check(t)()
	var calls atomic.Int64
	g, err := New(stubBackend(&calls, nil), Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()
	srv, err := NewServer(g, ServerConfig{ID: 1})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	// A result frame is not something clients send; the server skips it
	// and still answers the query that follows on the same connection.
	if err := wire.WriteFrame(conn, wire.EncodeResult(wire.Result{Key: core.QueryKey{Org: 1, Cnt: 1}, From: 2})); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	if err := wire.WriteFrame(conn, wire.EncodeQuery(core.Query{Org: 1, Cnt: 2, D: 50})); err != nil {
		t.Fatalf("write query: %v", err)
	}
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	if k, _ := wire.Peek(msg); k != wire.KindResult {
		t.Errorf("reply after skipped frame = %v, want KindResult", k)
	}

	// Close with the client still connected: the conn is severed and all
	// server goroutines drain (the deferred leaktest gate enforces it).
	srv.Close()
	srv.Close() // idempotent
}
