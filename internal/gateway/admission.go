package gateway

import (
	"sync"
	"time"
)

// tokenBucket is a mutex-guarded token bucket with reservations: a caller
// may commit to a token that will exist `wait` from now, which is what
// makes admission deadline-aware — the bucket can say up front whether the
// wait fits the caller's deadline instead of making it find out by timeout.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64 // may go negative: committed reservations
	last   time.Time
}

// newTokenBucket starts full.
func newTokenBucket(rate, burst float64) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// refillLocked advances the bucket to now.
func (tb *tokenBucket) refillLocked(now time.Time) {
	if tb.last.IsZero() {
		tb.last = now
		return
	}
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens += dt * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
}

// reserve commits one token if it will exist within maxWait, returning how
// long the caller must sleep before proceeding. When the wait would exceed
// maxWait nothing is committed and the honest wait comes back as the
// retry-after hint with ok=false.
func (tb *tokenBucket) reserve(now time.Time, maxWait time.Duration) (time.Duration, bool) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refillLocked(now)
	need := 1 - tb.tokens
	if need <= 0 {
		tb.tokens--
		return 0, true
	}
	wait := time.Duration(need / tb.rate * float64(time.Second))
	if wait > maxWait {
		return wait, false
	}
	tb.tokens--
	return wait, true
}

// eta reports how long until one token is available, without committing —
// the retry-after hint for queue-full sheds.
func (tb *tokenBucket) eta(now time.Time) time.Duration {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refillLocked(now)
	need := 1 - tb.tokens
	if need <= 0 {
		return 0
	}
	return time.Duration(need / tb.rate * float64(time.Second))
}

// cancel returns a committed token (a reservation abandoned at shutdown).
func (tb *tokenBucket) cancel() {
	tb.mu.Lock()
	tb.tokens++
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.mu.Unlock()
}
