// Package gateway is the overload-hardened query front tier: it sits
// between clients and a tcp.Peer backend and makes the system degrade
// gracefully when offered load exceeds MANET capacity instead of melting
// into unbounded queues and silent deadline blowups.
//
// Four cooperating mechanisms:
//
//   - Single-flight coalescing: identical in-flight queries (same region,
//     constraint box, strategy) attach to one MANET execution and share its
//     result — the duplicate floods a naive front tier would re-issue are
//     suppressed at the gateway, which the IoMT monitoring literature
//     (Lai et al., arXiv:1904.10889) identifies as the key lever for
//     serving skylines from mobile fleets.
//   - A movement-aware TTL result cache keyed the same way: a skyline is
//     reusable until device movement could have changed it, so the TTL is
//     derived from the scenario speed bound (MovementSlack / MaxSpeed)
//     rather than guessed.
//   - Admission control and load shedding: a token bucket bounds the query
//     rate into the MANET, a bounded deadline-aware queue absorbs bursts,
//     and everything beyond that is rejected EARLY and EXPLICITLY with a
//     retry-after hint (wire.Reject on the front door) — never a silent
//     timeout.
//   - Per-neighbour circuit breakers live one layer down in internal/tcp
//     (Config.BreakerThreshold): a dead peer stops consuming the retry
//     budget, so admitted queries spend their deadline on peers that can
//     still answer.
//
// The package is deliberately backend-agnostic: Backend is a function, so
// tests exercise every overload path without sockets, and cmd/skypeer
// plugs in a live tcp.Peer.
package gateway

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"manetskyline/internal/tcp"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
	"manetskyline/internal/wire"
)

// Strategy selects the distributed forwarding strategy a request runs
// under. It is part of the coalescing/cache key: BF and SF answers are
// equivalent fault-free but differ under faults, so they must not share
// entries.
type Strategy uint8

// Strategies.
const (
	// BF is the paper's breadth-first flood (tcp.Peer.Query).
	BF Strategy = iota
	// SF is the sampling-filter strategy (tcp.Peer.QuerySF).
	SF
)

// String names the strategy.
func (s Strategy) String() string {
	if s == SF {
		return "SF"
	}
	return "BF"
}

// Request is one client query at the front door.
type Request struct {
	// Pos is the client's position (the query's region).
	Pos tuple.Point
	// D is the distance of interest (0 or +Inf ⇒ unconstrained).
	D float64
	// Strategy picks the forwarding strategy.
	Strategy Strategy
	// Deadline bounds the whole request including queueing; the zero value
	// means now + Config.DefaultDeadline.
	Deadline time.Time
}

// Source says how a response was produced.
type Source uint8

// Response sources.
const (
	// SourceLive: this request led its own MANET execution.
	SourceLive Source = iota
	// SourceCoalesced: the request attached to an identical in-flight
	// execution and shared its result.
	SourceCoalesced
	// SourceCache: the request was answered from a fresh cache entry.
	SourceCache
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceCoalesced:
		return "coalesced"
	case SourceCache:
		return "cache"
	}
	return "live"
}

// Response is a served query.
type Response struct {
	Skyline []tuple.Tuple
	// Results is how many peers contributed (from the underlying
	// execution; cached responses carry the value recorded at fill time).
	Results int
	// Complete reports whether the underlying execution reached its quorum.
	Complete bool
	// Source says whether the answer came from a live execution, a
	// coalesced one, or the cache.
	Source Source
	// Elapsed is this request's own wall time in the gateway.
	Elapsed time.Duration
}

// Backend executes one admitted query against the MANET.
type Backend func(req Request) (tcp.QueryResult, error)

// PeerBackend adapts a live tcp.Peer. peers returns the network size the
// quorum is computed against, sampled per query so a shrinking fleet
// (crashed peers whose leases decayed) lowers the quorum instead of making
// queries wait for the dead; a nil func or non-positive count falls back
// to fallback.
func PeerBackend(p *tcp.Peer, peers func() int, fallback int) Backend {
	count := func() int {
		if peers != nil {
			if n := peers(); n > 0 {
				return n
			}
		}
		return fallback
	}
	return func(req Request) (tcp.QueryResult, error) {
		d := req.D
		if d <= 0 {
			d = math.Inf(1)
		}
		if req.Strategy == SF {
			return p.QuerySF(d, count())
		}
		return p.Query(d, count())
	}
}

// DirectoryPeers counts live in-process directory entries — the peers()
// source for a gateway colocated with a tcp.Directory.
func DirectoryPeers(dir *tcp.Directory) func() int {
	return func() int { return len(dir.Snapshot()) }
}

// Config tunes a Gateway.
type Config struct {
	// Rate is the sustained query rate admitted into the MANET, in queries
	// per second (0 ⇒ unlimited: no token bucket, no queue).
	Rate float64
	// Burst is the token-bucket depth (0 ⇒ max(1, ceil(Rate))).
	Burst int
	// QueueDepth bounds how many admitted-but-waiting requests may sit in
	// the deadline-aware admission queue (0 ⇒ 64). Requests beyond it are
	// shed immediately with RejectShedQueue.
	QueueDepth int
	// DefaultDeadline is applied to requests without one (0 ⇒ 2s).
	DefaultDeadline time.Duration
	// CacheTTL caps how long a skyline result is served from cache
	// (0 ⇒ rely on the movement bound; if both are 0 the cache is off).
	CacheTTL time.Duration
	// MaxSpeed is the scenario speed bound in distance units per second.
	// With MovementSlack it derives the movement-aware TTL: a cached
	// skyline expires before any device can have moved far enough to
	// invalidate it (TTL = MovementSlack / MaxSpeed).
	MaxSpeed float64
	// MovementSlack is how much device movement the constraint boxes can
	// absorb before a cached answer may go stale (0 ⇒ 25 distance units
	// when MaxSpeed is set).
	MovementSlack float64
	// RegionCell quantizes request positions into coalescing/cache regions
	// (0 ⇒ 250 distance units).
	RegionCell float64
	// DGrain quantizes the distance of interest into constraint boxes
	// (0 ⇒ 50 distance units).
	DGrain float64
	// Registry receives gateway_* metrics (nil ⇒ disabled).
	Registry *telemetry.Registry
	// Logf, when non-nil, receives shed/breaker diagnostics.
	Logf func(format string, args ...any)
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.Burst == 0 && c.Rate > 0 {
		c.Burst = int(math.Ceil(c.Rate))
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MovementSlack == 0 && c.MaxSpeed > 0 {
		c.MovementSlack = 25
	}
	if c.RegionCell == 0 {
		c.RegionCell = 250
	}
	if c.DGrain == 0 {
		c.DGrain = 50
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rate < 0 || c.Burst < 0 || c.QueueDepth < 0 || c.DefaultDeadline < 0 ||
		c.CacheTTL < 0 || c.MaxSpeed < 0 || c.MovementSlack < 0 ||
		c.RegionCell < 0 || c.DGrain < 0 {
		return fmt.Errorf("gateway: negative tuning field")
	}
	return nil
}

// TTL returns the effective cache TTL: the movement-derived bound
// (MovementSlack / MaxSpeed) capped by CacheTTL when both are set, zero
// when caching is off entirely.
func (c Config) TTL() time.Duration {
	moveTTL := time.Duration(0)
	if c.MaxSpeed > 0 {
		moveTTL = time.Duration(c.MovementSlack / c.MaxSpeed * float64(time.Second))
	}
	switch {
	case moveTTL > 0 && c.CacheTTL > 0:
		if moveTTL < c.CacheTTL {
			return moveTTL
		}
		return c.CacheTTL
	case moveTTL > 0:
		return moveTTL
	default:
		return c.CacheTTL
	}
}

// ErrShedded is the sentinel every load-shed rejection wraps; match with
// errors.Is, and errors.As a *SheddedError for the reason and retry hint.
var ErrShedded = errors.New("gateway: query shedded")

// ErrGatewayClosed is returned for requests against a closed gateway.
var ErrGatewayClosed = errors.New("gateway: closed")

// SheddedError is an explicit load-shed rejection.
type SheddedError struct {
	// Code is the wire reject code (wire.RejectShed*).
	Code uint8
	// RetryAfter hints when a retry could be admitted (0 = unknown).
	RetryAfter time.Duration
}

// Error renders the rejection.
func (e *SheddedError) Error() string {
	return fmt.Sprintf("gateway: query shedded (%s, retry after %v)",
		wire.RejectCodeName(e.Code), e.RetryAfter)
}

// Is makes errors.Is(err, ErrShedded) true for every shed rejection.
func (e *SheddedError) Is(target error) bool { return target == ErrShedded }

// key identifies equivalent queries for coalescing and caching: the region
// (position quantized to RegionCell), the constraint box (distance of
// interest quantized to DGrain; unconstrained collapses to one box), and
// the strategy.
type key struct {
	cx, cy   int32
	dq       int32
	strategy Strategy
}

// String renders the key for logs.
func (k key) String() string {
	return fmt.Sprintf("(%d,%d)/d%d/%s", k.cx, k.cy, k.dq, k.strategy)
}

// flight is one in-progress MANET execution plus everyone waiting on it.
type flight struct {
	done chan struct{} // closed when res/err are set
	res  Response
	err  error
}

// Gateway is the front tier. Create with New, serve with Do, stop with
// Close.
type Gateway struct {
	cfg     Config
	backend Backend
	met     Metrics

	tb    *tokenBucket
	cache *resultCache

	mu      sync.Mutex
	flights map[key]*flight
	waiting int // requests inside the admission queue
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a gateway over the backend.
func New(backend Backend, cfg Config) (*Gateway, error) {
	if backend == nil {
		return nil, fmt.Errorf("gateway: nil backend")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:     cfg,
		backend: backend,
		met:     NewMetrics(cfg.Registry),
		flights: make(map[key]*flight),
		stop:    make(chan struct{}),
	}
	if cfg.Rate > 0 {
		g.tb = newTokenBucket(cfg.Rate, float64(cfg.Burst))
	}
	if ttl := cfg.TTL(); ttl > 0 {
		g.cache = newResultCache(ttl, g.met.CacheEntries)
		g.wg.Add(1)
		go g.cache.janitor(ttl, g.stop, &g.wg)
	}
	return g, nil
}

// Close stops the gateway: queued requests are shed with ErrGatewayClosed,
// cache goroutines exit, and in-flight executions are left to finish on
// their own callers' goroutines (a coalesced waiter still gets its leader's
// result). Close blocks until the gateway's goroutines are gone.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.mu.Unlock()
	close(g.stop)
	g.wg.Wait()
}

// CacheTTL reports the effective movement-aware cache TTL (0 = cache off).
func (g *Gateway) CacheTTL() time.Duration { return g.cfg.TTL() }

// keyOf quantizes a request.
func (g *Gateway) keyOf(req Request) key {
	d := req.D
	if d <= 0 || math.IsInf(d, 1) {
		d = -1 // all unconstrained queries share one box
	}
	return key{
		cx:       int32(math.Floor(req.Pos.X / g.cfg.RegionCell)),
		cy:       int32(math.Floor(req.Pos.Y / g.cfg.RegionCell)),
		dq:       int32(math.Ceil(d / g.cfg.DGrain)),
		strategy: req.Strategy,
	}
}

// logf forwards to Config.Logf when set.
func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

// Do serves one request: cache, then single-flight attach, then admission,
// then a live MANET execution. Every outcome is explicit — a Response, a
// *SheddedError (errors.Is ErrShedded) with a retry-after hint, or
// ErrGatewayClosed. Do never queues unboundedly and never returns a silent
// timeout: an expired deadline surfaces as RejectShedDeadline.
func (g *Gateway) Do(req Request) (Response, error) {
	start := time.Now()
	if req.Deadline.IsZero() {
		req.Deadline = start.Add(g.cfg.DefaultDeadline)
	}
	g.met.Requests.Inc()
	k := g.keyOf(req)

	g.mu.Lock()
	closed := g.closed
	g.mu.Unlock()
	if closed {
		return Response{}, ErrGatewayClosed
	}

	// 1. Cache.
	if g.cache == nil {
		g.met.CacheBypass.Inc()
	} else if res, ok, stale := g.cache.get(k, start); ok {
		g.met.CacheHits.Inc()
		res.Source = SourceCache
		res.Elapsed = time.Since(start)
		g.met.Latency.Observe(res.Elapsed.Seconds())
		return res, nil
	} else if stale {
		g.met.CacheStale.Inc()
	}

	// 2. Single-flight: attach to an identical in-flight execution.
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return Response{}, ErrGatewayClosed
	}
	if f := g.flights[k]; f != nil {
		g.mu.Unlock()
		g.met.Coalesced.Inc()
		return g.await(f, req, start)
	}
	f := &flight{done: make(chan struct{})}
	g.flights[k] = f
	g.mu.Unlock()

	// 3. Admission (leaders only — attaching above is free).
	if err := g.admit(req, start); err != nil {
		g.settle(k, f, Response{}, err)
		g.met.Shed.Inc()
		if se := (*SheddedError)(nil); errors.As(err, &se) {
			g.met.shedReason(se.Code).Inc()
			g.logf("gateway: shed %s query: %v", k, err)
		}
		return Response{}, err
	}

	// 4. Live execution.
	qr, err := g.backend(req)
	if err != nil {
		g.settle(k, f, Response{}, fmt.Errorf("gateway: backend: %w", err))
		g.met.BackendErrors.Inc()
		return Response{}, fmt.Errorf("gateway: backend: %w", err)
	}
	res := Response{
		Skyline:  qr.Skyline,
		Results:  qr.Results,
		Complete: qr.Complete,
		Source:   SourceLive,
		Elapsed:  time.Since(start),
	}
	if g.cache != nil {
		g.cache.put(k, res, time.Now())
	}
	g.settle(k, f, res, nil)
	g.met.Admitted.Inc()
	g.met.Latency.Observe(res.Elapsed.Seconds())
	return res, nil
}

// settle publishes a flight's outcome and removes it from the table.
func (g *Gateway) settle(k key, f *flight, res Response, err error) {
	f.res, f.err = res, err
	close(f.done)
	g.mu.Lock()
	if g.flights[k] == f {
		delete(g.flights, k)
	}
	g.mu.Unlock()
}

// await blocks a coalesced follower on its leader's flight, bounded by the
// follower's own deadline — a follower never waits longer than it was
// prepared to wait for a live execution.
func (g *Gateway) await(f *flight, req Request, start time.Time) (Response, error) {
	wait := time.Until(req.Deadline)
	if wait <= 0 {
		g.met.Shed.Inc()
		g.met.shedReason(wire.RejectShedDeadline).Inc()
		return Response{}, &SheddedError{Code: wire.RejectShedDeadline}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-f.done:
		if f.err != nil {
			// The leader was shed or failed; the follower inherits the
			// explicit outcome (already counted by the leader for itself,
			// so count the follower's shed separately).
			if se := (*SheddedError)(nil); errors.As(f.err, &se) {
				g.met.Shed.Inc()
				g.met.shedReason(se.Code).Inc()
			}
			return Response{}, f.err
		}
		res := f.res
		res.Source = SourceCoalesced
		res.Elapsed = time.Since(start)
		g.met.Latency.Observe(res.Elapsed.Seconds())
		return res, nil
	case <-timer.C:
		g.met.Shed.Inc()
		g.met.shedReason(wire.RejectShedDeadline).Inc()
		return Response{}, &SheddedError{Code: wire.RejectShedDeadline}
	case <-g.stop:
		return Response{}, ErrGatewayClosed
	}
}

// admit applies the token bucket and the bounded deadline-aware queue. It
// returns nil when the request may proceed, or a *SheddedError naming why
// not and when to retry.
func (g *Gateway) admit(req Request, now time.Time) error {
	if g.tb == nil {
		return nil
	}
	// Bounded queue: more waiters than QueueDepth is the unbounded-queue
	// failure mode this tier exists to prevent.
	g.mu.Lock()
	if g.waiting >= g.cfg.QueueDepth {
		g.mu.Unlock()
		return &SheddedError{Code: wire.RejectShedQueue, RetryAfter: g.tb.eta(now)}
	}
	g.waiting++
	g.met.QueueDepth.Set(int64(g.waiting))
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.waiting--
		g.met.QueueDepth.Set(int64(g.waiting))
		g.mu.Unlock()
	}()

	// Deadline-aware reservation: if the wait for a token would blow the
	// deadline, reject NOW with the honest wait as the retry hint instead
	// of letting the client discover it by timeout.
	maxWait := req.Deadline.Sub(now)
	wait, ok := g.tb.reserve(now, maxWait)
	if !ok {
		return &SheddedError{Code: wire.RejectShedRate, RetryAfter: wait}
	}
	if wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-g.stop:
			g.tb.cancel()
			return ErrGatewayClosed
		}
	}
	return nil
}
