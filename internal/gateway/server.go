package gateway

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/wire"
)

// ServerConfig tunes the gateway's TCP front door.
type ServerConfig struct {
	// Addr is the listen address ("" ⇒ 127.0.0.1:0).
	Addr string
	// ID stamps the From field of result frames (the gateway's identity in
	// the client's eyes).
	ID core.DeviceID
	// Strategy is the forwarding strategy requests run under.
	Strategy Strategy
	// ReqTimeout is each request's deadline from arrival (0 ⇒ the
	// gateway's DefaultDeadline).
	ReqTimeout time.Duration
	// Logf, when non-nil, receives per-connection diagnostics.
	Logf func(format string, args ...any)
}

// Server is the wire front door of a Gateway: clients send KindQuery
// frames and get back exactly one frame per query — KindResult on success
// or KindReject with a reason and retry-after hint on shed/failure. Every
// query gets an answer; "the gateway timed you out silently" is not an
// outcome this protocol can express.
type Server struct {
	g   *Gateway
	cfg ServerConfig
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts serving g on cfg.Addr.
func NewServer(g *Gateway, cfg ServerConfig) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("gateway: listen: %w", err)
	}
	s := &Server{g: g, cfg: cfg, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, severs live client connections, and waits for the
// per-connection goroutines to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// logf forwards to ServerConfig.Logf when set.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// acceptLoop owns the listener.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// serveConn handles one client connection: a sequence of query frames,
// each answered in order with a result or reject frame.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		msg, err := wire.ReadFrame(conn)
		if err != nil {
			return // EOF or severed
		}
		kind, err := wire.Peek(msg)
		if err != nil || kind != wire.KindQuery {
			s.logf("gateway: dropping non-query frame from %s", conn.RemoteAddr())
			continue
		}
		q, err := wire.DecodeQuery(msg)
		if err != nil {
			s.logf("gateway: bad query from %s: %v", conn.RemoteAddr(), err)
			return
		}
		if err := wire.WriteFrame(conn, s.handle(q)); err != nil {
			return
		}
	}
}

// handle runs one decoded query through the gateway and renders the reply
// frame.
func (s *Server) handle(q core.Query) []byte {
	req := Request{Pos: q.Pos, D: q.D, Strategy: s.cfg.Strategy}
	if s.cfg.ReqTimeout > 0 {
		req.Deadline = time.Now().Add(s.cfg.ReqTimeout)
	}
	key := core.QueryKey{Org: q.Org, Cnt: q.Cnt}
	res, err := s.g.Do(req)
	if err == nil {
		return wire.EncodeResult(wire.Result{Key: key, From: s.cfg.ID, Tuples: res.Skyline})
	}
	rej := wire.Reject{Key: key, Code: wire.RejectUnavailable}
	var se *SheddedError
	if errors.As(err, &se) {
		rej.Code = se.Code
		if ms := se.RetryAfter.Milliseconds(); ms > 0 {
			rej.RetryAfterMs = uint32(ms)
		} else if se.RetryAfter > 0 {
			rej.RetryAfterMs = 1 // sub-millisecond hint still beats "unknown"
		}
	}
	return wire.EncodeReject(rej)
}
