package gateway

import (
	"sync"
	"time"

	"manetskyline/internal/telemetry"
)

// resultCache is the movement-aware TTL cache: a skyline stays valid only
// until device movement could have changed it, so entries expire on the
// TTL Config.TTL derives from the scenario speed bound rather than being
// invalidated by hand.
type cacheEntry struct {
	res     Response
	expires time.Time
}

type resultCache struct {
	mu      sync.Mutex
	ttl     time.Duration
	entries map[key]cacheEntry
	gauge   *telemetry.Gauge
}

// newResultCache builds a cache with the given (positive) TTL.
func newResultCache(ttl time.Duration, gauge *telemetry.Gauge) *resultCache {
	return &resultCache{ttl: ttl, entries: make(map[key]cacheEntry), gauge: gauge}
}

// get returns a fresh entry (ok=true) or reports that one existed but had
// expired (stale=true); expired entries are evicted on the spot.
func (c *resultCache) get(k key, now time.Time) (res Response, ok, stale bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.entries[k]
	if !found {
		return Response{}, false, false
	}
	if now.After(e.expires) {
		delete(c.entries, k)
		c.gauge.Set(int64(len(c.entries)))
		return Response{}, false, true
	}
	return e.res, true, false
}

// put stores a served response under its key.
func (c *resultCache) put(k key, res Response, now time.Time) {
	c.mu.Lock()
	c.entries[k] = cacheEntry{res: res, expires: now.Add(c.ttl)}
	c.gauge.Set(int64(len(c.entries)))
	c.mu.Unlock()
}

// sweep evicts everything expired at now.
func (c *resultCache) sweep(now time.Time) {
	c.mu.Lock()
	for k, e := range c.entries {
		if now.After(e.expires) {
			delete(c.entries, k)
		}
	}
	c.gauge.Set(int64(len(c.entries)))
	c.mu.Unlock()
}

// janitor sweeps on a TTL-derived cadence until stop closes. Keys that are
// read again expire inline in get (and are counted stale); the janitor only
// exists so regions nobody queries anymore don't pin their last skyline
// forever, hence the deliberately lazy 10×TTL period.
func (c *resultCache) janitor(ttl time.Duration, stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	period := 10 * ttl
	if period < 100*time.Millisecond {
		period = 100 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			c.sweep(now)
		case <-stop:
			return
		}
	}
}
