package gateway

import (
	"fmt"

	"manetskyline/internal/telemetry"
	"manetskyline/internal/wire"
)

// Metrics is the gateway's telemetry surface. The zero value (all nil) is
// the disabled state; nil-safe increments make instrumentation
// unconditional.
type Metrics struct {
	// Requests counts every Do call; Admitted the ones that ran a live
	// MANET execution to completion.
	Requests *telemetry.Counter
	Admitted *telemetry.Counter
	// Coalesced counts requests that attached to an identical in-flight
	// execution instead of issuing their own flood.
	Coalesced *telemetry.Counter
	// CacheHits/CacheStale/CacheBypass dissect the movement-aware TTL
	// cache: fresh answers served, entries found but past their TTL, and
	// lookups skipped because the cache is disabled.
	CacheHits   *telemetry.Counter
	CacheStale  *telemetry.Counter
	CacheBypass *telemetry.Counter
	// Shed counts every explicit load-shed rejection; shedByReason splits
	// it by wire reject code (rate, queue, deadline, unavailable).
	Shed         *telemetry.Counter
	shedByReason [4]*telemetry.Counter
	// BackendErrors counts admitted queries whose MANET execution failed
	// (e.g. tcp.ErrUnreachable after total dead-letter).
	BackendErrors *telemetry.Counter
	// QueueDepth is the number of requests currently inside the admission
	// queue; CacheEntries the number of live cache entries.
	QueueDepth   *telemetry.Gauge
	CacheEntries *telemetry.Gauge
	// Latency observes end-to-end gateway seconds for served requests.
	Latency *telemetry.Histogram
}

// NewMetrics registers the gateway metrics in r (nil r ⇒ disabled).
func NewMetrics(r *telemetry.Registry) Metrics {
	m := Metrics{
		Requests:  r.Counter("gateway_requests_total", "queries presented to the gateway"),
		Admitted:  r.Counter("gateway_admitted_total", "queries that ran a live MANET execution"),
		Coalesced: r.Counter("gateway_coalesced_total", "queries coalesced onto an identical in-flight execution"),
		CacheHits: r.Counter("gateway_cache_hits_total", "queries answered from a fresh cache entry"),
		CacheStale: r.Counter("gateway_cache_stale_total",
			"cache lookups that found an entry past its movement-aware TTL"),
		CacheBypass: r.Counter("gateway_cache_bypass_total", "cache lookups skipped because caching is disabled"),
		Shed:        r.Counter("gateway_shed_total", "queries rejected explicitly by admission control"),
		BackendErrors: r.Counter("gateway_backend_errors_total",
			"admitted queries whose MANET execution returned an error"),
		QueueDepth:   r.Gauge("gateway_queue_depth", "requests currently waiting in the admission queue"),
		CacheEntries: r.Gauge("gateway_cache_entries", "live entries in the movement-aware result cache"),
		Latency: r.Histogram("gateway_latency_seconds",
			"end-to-end gateway latency of served requests", telemetry.LatencyBuckets()),
	}
	for code := range m.shedByReason {
		m.shedByReason[code] = r.CounterL("gateway_shed_reason_total",
			fmt.Sprintf("reason=%q", wire.RejectCodeName(uint8(code))),
			"queries rejected by admission control, split by reject code")
	}
	return m
}

// shedReason returns the per-reason shed counter for a wire reject code.
func (m *Metrics) shedReason(code uint8) *telemetry.Counter {
	if int(code) < len(m.shedByReason) {
		return m.shedByReason[code]
	}
	return nil
}
