package tcp

import (
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/telemetry"
)

// Resolver maps device IDs to addresses; Peer uses it to reach originators
// and neighbours. Directory is the in-process implementation;
// DirectoryClient resolves against a DirectoryServer over TCP, which is
// what separate skypeer processes use. Implementations may additionally
// support LeaseRegistrar, Heartbeater, and Invalidator.
type Resolver interface {
	// Register records a peer's address.
	Register(id core.DeviceID, addr string)
	// Lookup resolves a peer's address.
	Lookup(id core.DeviceID) (string, bool)
}

// dirRequest is the JSON request of the directory protocol (one request and
// one response per connection).
type dirRequest struct {
	Op   string `json:"op"` // "register", "lookup", "list", "heartbeat"
	ID   int    `json:"id,omitempty"`
	Addr string `json:"addr,omitempty"`
	// TTLMS leases the registration for this many milliseconds; zero
	// registers permanently (the pre-lease protocol, still accepted).
	TTLMS int64 `json:"ttl_ms,omitempty"`
}

// dirResponse is the JSON response.
type dirResponse struct {
	OK    bool              `json:"ok"`
	Error string            `json:"error,omitempty"`
	Addr  string            `json:"addr,omitempty"`
	Peers map[string]string `json:"peers,omitempty"`
}

// janitorInterval is how often the DirectoryServer sweeps decayed leases.
const janitorInterval = 250 * time.Millisecond

// DirectoryServer serves a Directory over TCP — the bootstrap/rendezvous
// component of a multi-process deployment. Leased registrations expire
// unless refreshed by heartbeat; a janitor goroutine evicts the dead.
type DirectoryServer struct {
	dir *Directory
	ln  net.Listener
	wg  sync.WaitGroup

	met Metrics

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// SetRegistry attaches telemetry to the server; call before clients connect.
// Lease states are exposed as tcp_dir_leases{state="live|suspect|down"}
// gauges, refreshed lazily at every exposition pass.
func (s *DirectoryServer) SetRegistry(r *telemetry.Registry) {
	s.met = NewMetrics(r)
	if r == nil {
		return
	}
	const help = "directory registrations by lease state"
	liveG := r.GaugeL("tcp_dir_leases", `state="live"`, help)
	suspectG := r.GaugeL("tcp_dir_leases", `state="suspect"`, help)
	downG := r.GaugeL("tcp_dir_leases", `state="down"`, help)
	r.OnCollect(func() {
		live, suspect, down := s.dir.StateCounts()
		liveG.Set(int64(live))
		suspectG.Set(int64(suspect))
		downG.Set(int64(down))
	})
}

// NewDirectoryServer starts serving on addr ("127.0.0.1:0" for an
// ephemeral port).
func NewDirectoryServer(addr string) (*DirectoryServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &DirectoryServer{dir: NewDirectory(), ln: ln, done: make(chan struct{})}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.janitor()
	return s, nil
}

// Addr returns the server's listen address.
func (s *DirectoryServer) Addr() string { return s.ln.Addr().String() }

// Directory exposes the server's backing directory (lease states for
// tests and operators).
func (s *DirectoryServer) Directory() *Directory { return s.dir }

// Close stops the server.
func (s *DirectoryServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.ln.Close()
	s.wg.Wait()
}

func (s *DirectoryServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// janitor periodically evicts registrations whose lease decayed to down.
func (s *DirectoryServer) janitor() {
	defer s.wg.Done()
	t := time.NewTicker(janitorInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if n := s.dir.Sweep(); n > 0 {
				s.met.LeasesExpired.Add(int64(n))
			}
		case <-s.done:
			return
		}
	}
}

func (s *DirectoryServer) serve(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	var req dirRequest
	if err := json.NewDecoder(conn).Decode(&req); err != nil {
		return
	}
	s.met.DirRequests.Inc()
	enc := json.NewEncoder(conn)
	switch req.Op {
	case "register":
		s.dir.RegisterLease(core.DeviceID(req.ID), req.Addr, time.Duration(req.TTLMS)*time.Millisecond)
		enc.Encode(dirResponse{OK: true})
	case "heartbeat":
		s.met.DirHeartbeats.Inc()
		if !s.dir.Heartbeat(core.DeviceID(req.ID)) {
			enc.Encode(dirResponse{OK: false, Error: "unknown peer"})
			return
		}
		enc.Encode(dirResponse{OK: true})
	case "lookup":
		addr, ok := s.dir.Lookup(core.DeviceID(req.ID))
		if !ok {
			enc.Encode(dirResponse{OK: false, Error: "unknown peer"})
			return
		}
		enc.Encode(dirResponse{OK: true, Addr: addr})
	case "list":
		snap := s.dir.Snapshot()
		peers := make(map[string]string, len(snap))
		for id, addr := range snap {
			peers[strconv.Itoa(int(id))] = addr
		}
		enc.Encode(dirResponse{OK: true, Peers: peers})
	default:
		enc.Encode(dirResponse{OK: false, Error: fmt.Sprintf("unknown op %q", req.Op)})
	}
}

// DirectoryClient resolves peers against a remote DirectoryServer.
type DirectoryClient struct {
	addr    string
	timeout time.Duration

	mu    sync.Mutex
	cache map[core.DeviceID]string
}

// NewDirectoryClient points at a DirectoryServer address.
func NewDirectoryClient(addr string) *DirectoryClient {
	return &DirectoryClient{
		addr:    addr,
		timeout: 2 * time.Second,
		cache:   make(map[core.DeviceID]string),
	}
}

// roundTrip performs one request against the server.
func (c *DirectoryClient) roundTrip(req dirRequest) (dirResponse, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return dirResponse{}, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(c.timeout))
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return dirResponse{}, err
	}
	var resp dirResponse
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return dirResponse{}, err
	}
	return resp, nil
}

// Register records this peer with the remote directory. Failures are
// surfaced via RegisterErr for callers that need them; the Resolver
// interface's Register stays fire-and-forget.
func (c *DirectoryClient) Register(id core.DeviceID, addr string) {
	c.RegisterErr(id, addr)
}

// RegisterErr is Register with an error result.
func (c *DirectoryClient) RegisterErr(id core.DeviceID, addr string) error {
	return c.RegisterLease(id, addr, 0)
}

// RegisterLease records this peer under a TTL lease (0 ⇒ permanent).
func (c *DirectoryClient) RegisterLease(id core.DeviceID, addr string, ttl time.Duration) error {
	resp, err := c.roundTrip(dirRequest{
		Op: "register", ID: int(id), Addr: addr, TTLMS: ttl.Milliseconds(),
	})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("tcp: directory rejected registration: %s", resp.Error)
	}
	return nil
}

// Heartbeat refreshes this peer's lease; false tells the caller to
// re-register (the server forgot the peer, or the request failed).
func (c *DirectoryClient) Heartbeat(id core.DeviceID) bool {
	resp, err := c.roundTrip(dirRequest{Op: "heartbeat", ID: int(id)})
	return err == nil && resp.OK
}

// Lookup resolves a peer, caching successful answers. The cache is evicted
// by Invalidate when the transport observes dial failures, so a peer that
// re-registered on a new address is re-resolved instead of pinned stale.
func (c *DirectoryClient) Lookup(id core.DeviceID) (string, bool) {
	c.mu.Lock()
	if addr, ok := c.cache[id]; ok {
		c.mu.Unlock()
		return addr, true
	}
	c.mu.Unlock()
	resp, err := c.roundTrip(dirRequest{Op: "lookup", ID: int(id)})
	if err != nil || !resp.OK {
		return "", false
	}
	c.mu.Lock()
	c.cache[id] = resp.Addr
	c.mu.Unlock()
	return resp.Addr, true
}

// Invalidate drops a cached address so the next Lookup asks the server.
func (c *DirectoryClient) Invalidate(id core.DeviceID) {
	c.mu.Lock()
	delete(c.cache, id)
	c.mu.Unlock()
}

// List returns every resolvable registered peer.
func (c *DirectoryClient) List() (map[core.DeviceID]string, error) {
	resp, err := c.roundTrip(dirRequest{Op: "list"})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("tcp: directory list failed: %s", resp.Error)
	}
	out := make(map[core.DeviceID]string, len(resp.Peers))
	for k, v := range resp.Peers {
		id, err := strconv.Atoi(k)
		if err != nil {
			return nil, fmt.Errorf("tcp: bad peer id %q in directory response", k)
		}
		out[core.DeviceID(id)] = v
	}
	return out, nil
}
