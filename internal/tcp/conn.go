package tcp

import (
	"net"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/wire"
)

// Invalidator is the optional Resolver extension the connection pool uses
// to evict a cached address after a dial failure, so the next lookup
// re-resolves against the authoritative directory (a restarted peer comes
// back on a new port).
type Invalidator interface {
	Invalidate(id core.DeviceID)
}

// outFrame is one queued message with its enqueue time; frames older than
// Config.RetryTimeout are dead-lettered instead of retried, since any query
// they belonged to has timed out anyway.
type outFrame struct {
	msg []byte
	enq time.Time
}

// peerConn is one supervised outbound link: a bounded send queue drained by
// a single writer goroutine that dials lazily, reconnects under capped
// exponential backoff, enforces write deadlines, retries failed frames
// until they expire, and reaps the socket when the link sits idle. It
// replaces the dial-per-message send of the original transport.
type peerConn struct {
	p  *Peer
	id core.DeviceID

	queue chan outFrame
}

// newPeerConn starts the writer goroutine; the caller holds p.mu and has
// already checked p.closed.
func newPeerConn(p *Peer, id core.DeviceID) *peerConn {
	pc := &peerConn{p: p, id: id, queue: make(chan outFrame, p.cfg.SendQueueLen)}
	p.wg.Add(1)
	go pc.run()
	return pc
}

// enqueue hands one frame to the writer. A full queue dead-letters the
// frame immediately: the peer is already far behind, and unbounded memory
// is worse than loss the protocol's quorum/timeout machinery absorbs.
func (pc *peerConn) enqueue(msg []byte) {
	select {
	case pc.queue <- outFrame{msg: msg, enq: time.Now()}:
	default:
		pc.p.met.DeadLetters.Inc()
		pc.p.logf("tcp: peer %d: send queue to %d full, frame dead-lettered", pc.p.dev.ID, pc.id)
	}
}

// run is the writer loop. It owns the socket exclusively.
func (pc *peerConn) run() {
	p := pc.p
	defer p.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	idle := time.NewTimer(p.cfg.IdleConnTimeout)
	defer idle.Stop()
	for {
		select {
		case f := <-pc.queue:
			conn = pc.deliver(conn, f)
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(p.cfg.IdleConnTimeout)
		case <-idle.C:
			if conn != nil {
				conn.Close()
				conn = nil
				p.met.ConnsReaped.Inc()
			}
			idle.Reset(p.cfg.IdleConnTimeout)
		case <-p.ctx.Done():
			pc.drain(conn)
			return
		}
	}
}

// deliver writes one frame, dialing and redialing as needed, until it is on
// the wire, the frame expires, or the peer shuts down. It returns the
// connection to keep for the next frame (nil when closed).
func (pc *peerConn) deliver(conn net.Conn, f outFrame) net.Conn {
	p := pc.p
	backoff := p.cfg.ReconnectBackoff
	for attempt := 0; ; attempt++ {
		if time.Since(f.enq) > p.cfg.RetryTimeout {
			p.met.DeadLetters.Inc()
			p.logf("tcp: peer %d: frame to %d expired after %d attempts", p.dev.ID, pc.id, attempt)
			return conn
		}
		if conn == nil {
			c, err := pc.dial()
			if err != nil {
				p.met.DialFailures.Inc()
				if inv, ok := p.dir.(Invalidator); ok {
					inv.Invalidate(pc.id)
				}
				if !pc.sleep(backoff) {
					return nil // shutting down
				}
				backoff *= 2
				if backoff > p.cfg.ReconnectBackoffMax {
					backoff = p.cfg.ReconnectBackoffMax
				}
				continue
			}
			conn = c
			if attempt > 0 {
				p.met.Reconnects.Inc()
			}
		}
		conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
		if err := wire.WriteFrame(conn, f.msg); err == nil {
			p.met.MessagesOut.Inc()
			p.met.BytesOut.Add(frameBytes(f.msg))
			return conn
		}
		conn.Close()
		conn = nil
		p.met.SendRetries.Inc()
	}
}

// dial resolves the peer through the directory and connects. A peer the
// directory no longer vouches for (lease expired, never registered) is a
// dial failure: the backoff loop keeps polling, so a re-registration is
// picked up as soon as the directory reflects it.
func (pc *peerConn) dial() (net.Conn, error) {
	addr, ok := pc.p.dir.Lookup(pc.id)
	if !ok {
		return nil, errUnresolved
	}
	pc.p.met.Dials.Inc()
	return net.DialTimeout("tcp", addr, pc.p.cfg.DialTimeout)
}

// sleep waits d or until shutdown; it reports false when shutting down.
func (pc *peerConn) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-pc.p.ctx.Done():
		return false
	}
}

// drain gives queued frames one best-effort flush within DrainTimeout so a
// graceful shutdown does not strand results already computed (e.g. replies
// to a query that arrived just before Close).
func (pc *peerConn) drain(conn net.Conn) {
	p := pc.p
	deadline := time.Now().Add(p.cfg.DrainTimeout)
	for {
		select {
		case f := <-pc.queue:
			if conn == nil {
				c, err := pc.dial()
				if err != nil {
					p.met.DeadLetters.Inc()
					continue
				}
				conn = c
			}
			conn.SetWriteDeadline(deadline)
			if err := wire.WriteFrame(conn, f.msg); err != nil {
				conn.Close()
				conn = nil
				p.met.DeadLetters.Inc()
				continue
			}
			p.met.MessagesOut.Inc()
			p.met.BytesOut.Add(frameBytes(f.msg))
		default:
			if conn != nil {
				conn.Close()
			}
			return
		}
	}
}
