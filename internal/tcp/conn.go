package tcp

import (
	"fmt"
	"net"
	"sort"
	"sync/atomic"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/wire"
)

// Invalidator is the optional Resolver extension the connection pool uses
// to evict a cached address after a dial failure, so the next lookup
// re-resolves against the authoritative directory (a restarted peer comes
// back on a new port).
type Invalidator interface {
	Invalidate(id core.DeviceID)
}

// outFrame is one queued message with its enqueue time and trace context;
// frames older than Config.RetryTimeout are dead-lettered instead of
// retried, since any query they belonged to has timed out anyway. fk, when
// non-nil, ties the frame to a query pending at this originator: a
// dead-lettered tagged frame fails that query's quorum slot immediately
// (Peer.failSlot) instead of letting the query idle until its deadline.
type outFrame struct {
	msg []byte
	tc  *wire.TraceContext
	fk  *core.QueryKey
	enq time.Time
}

// peerConn is one supervised outbound link: a bounded send queue drained by
// a single writer goroutine that dials lazily, reconnects under capped
// exponential backoff, enforces write deadlines, retries failed frames
// until they expire, and reaps the socket when the link sits idle. It
// replaces the dial-per-message send of the original transport.
type peerConn struct {
	p  *Peer
	id core.DeviceID

	queue chan outFrame

	// br is the link's circuit breaker (nil = disabled).
	br *breaker

	// reconnects counts link re-establishments, surfaced by Peer.LinkStats
	// and (with a registry) the per-link tcp_link_reconnects_total counter.
	reconnects atomic.Int64
	depth      *telemetry.Gauge
	linkRecon  *telemetry.Counter
	brState    *telemetry.Gauge
}

// newPeerConn starts the writer goroutine; the caller holds p.mu and has
// already checked p.closed.
func newPeerConn(p *Peer, id core.DeviceID) *peerConn {
	pc := &peerConn{
		p: p, id: id,
		queue: make(chan outFrame, p.cfg.SendQueueLen),
		br:    newBreaker(p.cfg.BreakerThreshold, p.cfg.BreakerCooldown),
	}
	if p.cfg.Registry != nil {
		// Cold path (once per link): per-neighbour labels make the pool's
		// internal state scrapeable without touching the hot send path.
		lbl := fmt.Sprintf(`from="%d",to="%d"`, p.dev.ID, id)
		pc.depth = p.cfg.Registry.GaugeL("tcp_send_queue_depth", lbl,
			"frames currently queued on this neighbour link")
		pc.linkRecon = p.cfg.Registry.CounterL("tcp_link_reconnects_total", lbl,
			"re-establishments of this neighbour link")
		if pc.br != nil {
			pc.brState = p.cfg.Registry.GaugeL("tcp_breaker_state", lbl,
				"circuit-breaker state of this link (0 closed, 1 open, 2 half-open)")
		}
	}
	p.wg.Add(1)
	go pc.run()
	return pc
}

// setBreakerGauge mirrors the breaker state into its per-link gauge.
func (pc *peerConn) setBreakerGauge() {
	if pc.brState != nil {
		s, _ := pc.br.snapshot()
		pc.brState.Set(int64(s))
	}
}

// enqueue hands one frame to the writer. A full queue dead-letters the
// frame immediately: the peer is already far behind, and unbounded memory
// is worse than loss the protocol's quorum/timeout machinery absorbs. An
// open circuit breaker drops the frame just as fast — a link the breaker
// has condemned must not accumulate work either. Both paths fail the
// frame's quorum slot when it carries one.
func (pc *peerConn) enqueue(msg []byte, tc *wire.TraceContext, fk *core.QueryKey) {
	if pc.br.fastFail(time.Now()) {
		pc.p.met.BreakerDrops.Inc()
		pc.p.flightEvent("breaker_drop", tc, "breaker to %d open, frame dropped", pc.id)
		pc.p.failSlot(fk, pc.id, "breaker open")
		return
	}
	select {
	case pc.queue <- outFrame{msg: msg, tc: tc, fk: fk, enq: time.Now()}:
		pc.depth.Set(int64(len(pc.queue)))
		pc.p.traceStage(tc, telemetry.StageEnqueue, pc.id, wire.FrameWireSize(len(msg), tc != nil))
	default:
		pc.p.met.DeadLetters.Inc()
		pc.p.flightEvent("dead_letter", tc, "send queue to %d full", pc.id)
		pc.p.logf("tcp: peer %d: send queue to %d full, frame dead-lettered", pc.p.dev.ID, pc.id)
		pc.p.failSlot(fk, pc.id, "send queue full")
	}
}

// run is the writer loop. It owns the socket exclusively.
func (pc *peerConn) run() {
	p := pc.p
	defer p.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	idle := time.NewTimer(p.cfg.IdleConnTimeout)
	defer idle.Stop()
	for {
		select {
		case f := <-pc.queue:
			pc.depth.Set(int64(len(pc.queue)))
			conn = pc.deliver(conn, f)
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(p.cfg.IdleConnTimeout)
		case <-idle.C:
			if conn != nil {
				conn.Close()
				conn = nil
				p.met.ConnsReaped.Inc()
			}
			idle.Reset(p.cfg.IdleConnTimeout)
		case <-p.ctx.Done():
			pc.drain(conn)
			return
		}
	}
}

// deliver writes one frame, dialing and redialing as needed, until it is on
// the wire, the frame expires, the link's breaker condemns it, or the peer
// shuts down. It returns the connection to keep for the next frame (nil
// when closed). A dead-lettered frame fails its quorum slot (when tagged)
// so the waiting query learns immediately instead of idling to deadline.
func (pc *peerConn) deliver(conn net.Conn, f outFrame) net.Conn {
	p := pc.p
	backoff := p.cfg.ReconnectBackoff
	for attempt := 0; ; attempt++ {
		if time.Since(f.enq) > p.cfg.RetryTimeout {
			p.met.DeadLetters.Inc()
			p.flightEvent("dead_letter", f.tc, "frame to %d expired after %d attempts", pc.id, attempt)
			p.logf("tcp: peer %d: frame to %d expired after %d attempts", p.dev.ID, pc.id, attempt)
			p.failSlot(f.fk, pc.id, "retry window exhausted")
			return conn
		}
		if conn == nil {
			if !pc.br.allow(time.Now()) {
				// Open breaker: drop the frame now rather than burning the
				// retry budget re-dialing a peer known to be dead.
				pc.setBreakerGauge()
				p.met.BreakerDrops.Inc()
				p.flightEvent("breaker_drop", f.tc, "breaker to %d open, frame dropped", pc.id)
				p.failSlot(f.fk, pc.id, "breaker open")
				return nil
			}
			pc.setBreakerGauge()
			c, err := pc.dial()
			if err != nil {
				p.met.DialFailures.Inc()
				p.flightEvent("dial_failure", f.tc, "dial %d: %v", pc.id, err)
				if pc.br.failure(time.Now()) {
					p.met.BreakerOpens.Inc()
					p.flightEvent("breaker_open", f.tc, "breaker to %d opened after %d consecutive dial failures", pc.id, p.cfg.BreakerThreshold)
					p.logf("tcp: peer %d: breaker to %d opened", p.dev.ID, pc.id)
				}
				pc.setBreakerGauge()
				if inv, ok := p.dir.(Invalidator); ok {
					inv.Invalidate(pc.id)
				}
				if !pc.sleep(backoff) {
					return nil // shutting down
				}
				backoff *= 2
				if backoff > p.cfg.ReconnectBackoffMax {
					backoff = p.cfg.ReconnectBackoffMax
				}
				continue
			}
			conn = c
			p.traceStage(f.tc, telemetry.StageDial, pc.id, 0)
			if attempt > 0 {
				p.met.Reconnects.Inc()
				pc.reconnects.Add(1)
				pc.linkRecon.Inc()
				p.flightEvent("reconnect", f.tc, "link to %d re-established after %d attempts", pc.id, attempt)
			}
		}
		conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
		if err := wire.WriteFrameCtx(conn, f.msg, f.tc); err == nil {
			p.met.MessagesOut.Inc()
			p.met.BytesOut.Add(frameBytes(f.msg, f.tc != nil))
			p.traceStage(f.tc, telemetry.StageWrite, pc.id, wire.FrameWireSize(len(f.msg), f.tc != nil))
			pc.br.success()
			pc.setBreakerGauge()
			return conn
		}
		conn.Close()
		conn = nil
		p.met.SendRetries.Inc()
	}
}

// dial resolves the peer through the directory and connects. A peer the
// directory no longer vouches for (lease expired, never registered) is a
// dial failure: the backoff loop keeps polling, so a re-registration is
// picked up as soon as the directory reflects it.
func (pc *peerConn) dial() (net.Conn, error) {
	addr, ok := pc.p.dir.Lookup(pc.id)
	if !ok {
		return nil, errUnresolved
	}
	pc.p.met.Dials.Inc()
	return net.DialTimeout("tcp", addr, pc.p.cfg.DialTimeout)
}

// sleep waits d or until shutdown; it reports false when shutting down.
func (pc *peerConn) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-pc.p.ctx.Done():
		return false
	}
}

// LinkStat is one neighbour link's live transport state, surfaced from the
// connection pool's internal fields.
type LinkStat struct {
	// To is the neighbour the link leads to.
	To core.DeviceID
	// QueueDepth is the number of frames waiting on the link's send queue.
	QueueDepth int
	// Reconnects counts re-establishments after at least one failure.
	Reconnects int64
}

// LinkStats reports every managed outbound link, sorted by neighbour ID.
func (p *Peer) LinkStats() []LinkStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]LinkStat, 0, len(p.conns))
	for id, pc := range p.conns {
		out = append(out, LinkStat{
			To: id, QueueDepth: len(pc.queue), Reconnects: pc.reconnects.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
	return out
}

// BreakerStats reports every managed link's circuit-breaker state, sorted
// by neighbour ID. Links without a breaker (Config.BreakerThreshold 0)
// report BreakerClosed.
func (p *Peer) BreakerStats() []BreakerStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]BreakerStat, 0, len(p.conns))
	for id, pc := range p.conns {
		s, fails := pc.br.snapshot()
		out = append(out, BreakerStat{To: id, State: s, ConsecFails: fails})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
	return out
}

// drain gives queued frames one best-effort flush within DrainTimeout so a
// graceful shutdown does not strand results already computed (e.g. replies
// to a query that arrived just before Close).
func (pc *peerConn) drain(conn net.Conn) {
	p := pc.p
	deadline := time.Now().Add(p.cfg.DrainTimeout)
	for {
		select {
		case f := <-pc.queue:
			if conn == nil {
				c, err := pc.dial()
				if err != nil {
					p.met.DeadLetters.Inc()
					p.failSlot(f.fk, pc.id, "undeliverable at shutdown")
					continue
				}
				conn = c
			}
			conn.SetWriteDeadline(deadline)
			if err := wire.WriteFrameCtx(conn, f.msg, f.tc); err != nil {
				conn.Close()
				conn = nil
				p.met.DeadLetters.Inc()
				p.failSlot(f.fk, pc.id, "undeliverable at shutdown")
				continue
			}
			p.met.MessagesOut.Inc()
			p.met.BytesOut.Add(frameBytes(f.msg, f.tc != nil))
			p.traceStage(f.tc, telemetry.StageWrite, pc.id, wire.FrameWireSize(len(f.msg), f.tc != nil))
		default:
			if conn != nil {
				conn.Close()
			}
			return
		}
	}
}
