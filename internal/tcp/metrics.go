package tcp

import (
	"manetskyline/internal/telemetry"
	"manetskyline/internal/wire"
)

// Metrics is the TCP runtime's telemetry surface. The zero value (all nil)
// is the disabled state; increments then cost one nil check. Several peers
// in one process may share a registry: registration dedupes by name, so
// they accumulate into the same counters.
type Metrics struct {
	// ConnsAccepted counts inbound connections; OpenConns tracks the ones
	// currently being served.
	ConnsAccepted *telemetry.Counter
	OpenConns     *telemetry.Gauge
	// Dials and DialFailures count outbound connection attempts; Reconnects
	// counts links re-established after at least one failure, ConnsReaped
	// counts idle outbound connections closed by the pool.
	Dials        *telemetry.Counter
	DialFailures *telemetry.Counter
	Reconnects   *telemetry.Counter
	ConnsReaped  *telemetry.Counter
	// SendRetries counts frames re-attempted after a write failure;
	// DeadLetters counts frames abandoned (queue full, retry window
	// exhausted, or unflushable at shutdown); SendsSuppressed counts sends
	// skipped because the directory no longer resolves the peer;
	// DeadLetterSlots counts quorum slots failed explicitly because a
	// query's tagged flood frame was abandoned (the tcp_deadletter_total
	// ledger behind the fail-fast query path).
	SendRetries     *telemetry.Counter
	DeadLetters     *telemetry.Counter
	SendsSuppressed *telemetry.Counter
	DeadLetterSlots *telemetry.Counter
	// BreakerOpens counts circuit-breaker open transitions; BreakerDrops
	// counts frames dropped because a link's breaker was open.
	BreakerOpens *telemetry.Counter
	BreakerDrops *telemetry.Counter
	// DecodeFailures counts inbound frames whose decode failed (the
	// connection is closed); FramesDropped counts well-framed messages of
	// unknown kind that were skipped; DupResults counts duplicate result
	// frames ignored by the quorum dedupe.
	DecodeFailures *telemetry.Counter
	FramesDropped  *telemetry.Counter
	DupResults     *telemetry.Counter
	// Heartbeats counts lease refreshes attempted by this peer;
	// HeartbeatFailures counts re-registrations that failed after a
	// rejected heartbeat.
	Heartbeats        *telemetry.Counter
	HeartbeatFailures *telemetry.Counter
	// MessagesIn/Out and BytesIn/Out count framed protocol messages and
	// their wire bytes (payload plus the 4-byte length prefix).
	MessagesIn  *telemetry.Counter
	MessagesOut *telemetry.Counter
	BytesIn     *telemetry.Counter
	BytesOut    *telemetry.Counter
	// QueriesIssued and QueriesCompleted count distributed queries
	// originated here; QueryLatency observes their end-to-end seconds.
	QueriesIssued    *telemetry.Counter
	QueriesCompleted *telemetry.Counter
	QueryLatency     *telemetry.Histogram
	// DirRequests counts directory protocol requests served; DirHeartbeats
	// the heartbeat subset; LeasesExpired the registrations the janitor
	// evicted after their lease decayed.
	DirRequests   *telemetry.Counter
	DirHeartbeats *telemetry.Counter
	LeasesExpired *telemetry.Counter
}

// NewMetrics registers the TCP metrics in r (nil r ⇒ disabled metrics).
func NewMetrics(r *telemetry.Registry) Metrics {
	return Metrics{
		ConnsAccepted: r.Counter("tcp_conns_accepted_total", "inbound connections accepted"),
		OpenConns:     r.Gauge("tcp_open_conns", "inbound connections currently being served"),
		Dials:         r.Counter("tcp_dials_total", "outbound connection attempts"),
		DialFailures:  r.Counter("tcp_dial_failures_total", "outbound connection attempts that failed"),
		Reconnects:    r.Counter("tcp_reconnects_total", "links re-established after at least one failure"),
		ConnsReaped:   r.Counter("tcp_conns_reaped_total", "idle outbound connections closed by the pool"),
		SendRetries:   r.Counter("tcp_send_retries_total", "frames re-attempted after a write failure"),
		DeadLetters:   r.Counter("tcp_dead_letters_total", "frames abandoned after queue overflow or retry exhaustion"),
		SendsSuppressed: r.Counter("tcp_sends_suppressed_total",
			"sends skipped because the directory no longer resolves the peer"),
		DeadLetterSlots: r.Counter("tcp_deadletter_total",
			"quorum slots failed explicitly after a query flood frame was dead-lettered"),
		BreakerOpens: r.Counter("tcp_breaker_opens_total",
			"circuit-breaker open transitions across all links"),
		BreakerDrops: r.Counter("tcp_breaker_drops_total",
			"frames dropped because the link's circuit breaker was open"),
		DecodeFailures: r.Counter("tcp_decode_failures_total", "inbound frames whose decode failed"),
		FramesDropped:  r.Counter("tcp_frames_dropped_total", "well-framed inbound messages of unknown kind skipped"),
		DupResults:     r.Counter("tcp_dup_results_total", "duplicate result frames ignored by the quorum dedupe"),
		Heartbeats:     r.Counter("tcp_heartbeats_total", "directory lease refreshes attempted"),
		HeartbeatFailures: r.Counter("tcp_heartbeat_failures_total",
			"lease re-registrations that failed after a rejected heartbeat"),
		MessagesIn:    r.Counter("tcp_messages_in_total", "framed protocol messages received"),
		MessagesOut:   r.Counter("tcp_messages_out_total", "framed protocol messages sent"),
		BytesIn:       r.Counter("tcp_bytes_in_total", "wire bytes received including frame headers"),
		BytesOut:      r.Counter("tcp_bytes_out_total", "wire bytes sent including frame headers"),
		QueriesIssued: r.Counter("tcp_queries_issued_total", "distributed queries originated by this peer"),
		QueriesCompleted: r.Counter("tcp_queries_completed_total",
			"originated queries whose quorum of results arrived in time"),
		QueryLatency: r.Histogram("tcp_query_latency_seconds",
			"end-to-end latency of originated queries", telemetry.LatencyBuckets()),
		DirRequests:   r.Counter("tcp_dir_requests_total", "directory protocol requests served"),
		DirHeartbeats: r.Counter("tcp_dir_heartbeats_total", "directory heartbeat requests served"),
		LeasesExpired: r.Counter("tcp_leases_expired_total", "registrations evicted after lease decay"),
	}
}

// frameBytes is the wire size of one framed message: the payload plus the
// 4-byte length prefix, plus the trace context when the frame carries one
// (see internal/wire) — so the byte ledger reflects tracing's real cost.
func frameBytes(msg []byte, traced bool) int64 {
	return int64(wire.FrameWireSize(len(msg), traced))
}
