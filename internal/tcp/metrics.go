package tcp

import "manetskyline/internal/telemetry"

// Metrics is the TCP runtime's telemetry surface. The zero value (all nil)
// is the disabled state; increments then cost one nil check. Several peers
// in one process may share a registry: registration dedupes by name, so
// they accumulate into the same counters.
type Metrics struct {
	// ConnsAccepted counts inbound connections; OpenConns tracks the ones
	// currently being served.
	ConnsAccepted *telemetry.Counter
	OpenConns     *telemetry.Gauge
	// Dials and DialFailures count outbound connection attempts.
	Dials        *telemetry.Counter
	DialFailures *telemetry.Counter
	// MessagesIn/Out and BytesIn/Out count framed protocol messages and
	// their wire bytes (payload plus the 4-byte length prefix).
	MessagesIn  *telemetry.Counter
	MessagesOut *telemetry.Counter
	BytesIn     *telemetry.Counter
	BytesOut    *telemetry.Counter
	// QueriesIssued and QueriesCompleted count distributed queries
	// originated here; QueryLatency observes their end-to-end seconds.
	QueriesIssued    *telemetry.Counter
	QueriesCompleted *telemetry.Counter
	QueryLatency     *telemetry.Histogram
	// DirRequests counts directory protocol requests served.
	DirRequests *telemetry.Counter
}

// NewMetrics registers the TCP metrics in r (nil r ⇒ disabled metrics).
func NewMetrics(r *telemetry.Registry) Metrics {
	return Metrics{
		ConnsAccepted: r.Counter("tcp_conns_accepted_total", "inbound connections accepted"),
		OpenConns:     r.Gauge("tcp_open_conns", "inbound connections currently being served"),
		Dials:         r.Counter("tcp_dials_total", "outbound connection attempts"),
		DialFailures:  r.Counter("tcp_dial_failures_total", "outbound connection attempts that failed"),
		MessagesIn:    r.Counter("tcp_messages_in_total", "framed protocol messages received"),
		MessagesOut:   r.Counter("tcp_messages_out_total", "framed protocol messages sent"),
		BytesIn:       r.Counter("tcp_bytes_in_total", "wire bytes received including frame headers"),
		BytesOut:      r.Counter("tcp_bytes_out_total", "wire bytes sent including frame headers"),
		QueriesIssued: r.Counter("tcp_queries_issued_total", "distributed queries originated by this peer"),
		QueriesCompleted: r.Counter("tcp_queries_completed_total",
			"originated queries whose quorum of results arrived in time"),
		QueryLatency: r.Histogram("tcp_query_latency_seconds",
			"end-to-end latency of originated queries", telemetry.LatencyBuckets()),
		DirRequests: r.Counter("tcp_dir_requests_total", "directory protocol requests served"),
	}
}

// frameBytes is the wire size of one framed message: the payload plus the
// 4-byte length prefix (see internal/wire).
func frameBytes(msg []byte) int64 { return int64(len(msg)) + 4 }
