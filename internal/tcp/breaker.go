package tcp

import (
	"sync"
	"time"

	"manetskyline/internal/core"
)

// BreakerState classifies a neighbour link's circuit breaker.
type BreakerState int32

// Breaker states. The gauge tcp_breaker_state{from,to} exports these values.
const (
	// BreakerClosed: the link is healthy; frames flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive dial failures crossed the threshold; frames
	// are dropped immediately (and their quorum slots failed) instead of
	// burning the retry budget against a dead peer.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and one probe frame is in
	// flight; its outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

// String names the state for logs and tests.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one neighbour link's circuit breaker: closed → open after
// Config.BreakerThreshold consecutive dial failures, open → half-open after
// Config.BreakerCooldown, half-open → closed on a successful delivery or
// back to open on a failed probe. A nil breaker (threshold 0) is disabled
// and always allows.
//
// The breaker exists so a dead peer costs one cooldown per probe instead of
// a full RetryTimeout per frame: queries fail their quorum slot immediately
// and complete on the surviving peers rather than idling on the dead one.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     BreakerState
	fails     int // consecutive dial failures
	openedAt  time.Time
}

// newBreaker returns a breaker, nil when the threshold disables it.
func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		return nil
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a delivery attempt may proceed now. On an open
// breaker whose cooldown elapsed it transitions to half-open and admits the
// caller as the single probe.
func (b *breaker) allow(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // half-open: one probe already in flight
		return false
	}
}

// fastFail reports whether frames should be dropped without a delivery
// attempt: the breaker is open and still cooling down.
func (b *breaker) fastFail(now time.Time) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerOpen && now.Sub(b.openedAt) < b.cooldown
}

// success records a delivered frame, closing the breaker.
func (b *breaker) success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = BreakerClosed
	b.fails = 0
	b.mu.Unlock()
}

// failure records one dial failure; it reports true when this failure
// opened (or re-opened) the breaker.
func (b *breaker) failure(now time.Time) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.fails >= b.threshold) {
		b.state = BreakerOpen
		b.openedAt = now
		return true
	}
	if b.state == BreakerOpen {
		// A late failure while open (e.g. a racing probe) refreshes the
		// cooldown so the link keeps backing off.
		b.openedAt = now
	}
	return false
}

// snapshot returns the current state and consecutive-failure count.
func (b *breaker) snapshot() (BreakerState, int) {
	if b == nil {
		return BreakerClosed, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.fails
}

// BreakerStat is one neighbour link's circuit-breaker state.
type BreakerStat struct {
	// To is the neighbour the link leads to.
	To core.DeviceID
	// State is the breaker's current state.
	State BreakerState
	// ConsecFails counts consecutive dial failures since the last success.
	ConsecFails int
}
