package tcp

import (
	"testing"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
	"manetskyline/internal/skyline"
	"manetskyline/internal/tuple"
)

func TestDirectoryServerRegisterLookupList(t *testing.T) {
	srv, err := NewDirectoryServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewDirectoryServer: %v", err)
	}
	defer srv.Close()

	c := NewDirectoryClient(srv.Addr())
	if _, ok := c.Lookup(7); ok {
		t.Errorf("lookup before registration should miss")
	}
	if err := c.RegisterErr(7, "127.0.0.1:1111"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := c.RegisterErr(8, "127.0.0.1:2222"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if addr, ok := c.Lookup(7); !ok || addr != "127.0.0.1:1111" {
		t.Errorf("Lookup(7) = %q %v", addr, ok)
	}
	// Cache hit path.
	if addr, ok := c.Lookup(7); !ok || addr != "127.0.0.1:1111" {
		t.Errorf("cached Lookup(7) = %q %v", addr, ok)
	}
	all, err := c.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(all) != 2 || all[8] != "127.0.0.1:2222" {
		t.Errorf("List = %v", all)
	}
}

func TestDirectoryClientAgainstDeadServer(t *testing.T) {
	c := NewDirectoryClient("127.0.0.1:1") // nothing listens there
	c.timeout = 200 * time.Millisecond
	if err := c.RegisterErr(1, "x"); err == nil {
		t.Errorf("register against dead server should error")
	}
	if _, ok := c.Lookup(1); ok {
		t.Errorf("lookup against dead server should miss")
	}
	if _, err := c.List(); err == nil {
		t.Errorf("list against dead server should error")
	}
}

// Full multi-process shape in one process: peers resolve each other through
// a DirectoryServer over TCP, and the distributed query still matches the
// centralized skyline.
func TestPeersThroughDirectoryServer(t *testing.T) {
	srv, err := NewDirectoryServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewDirectoryServer: %v", err)
	}
	defer srv.Close()

	cfg := gen.DefaultConfig(2000, 2, gen.Independent, 13)
	data := gen.Generate(cfg)
	parts := gen.GridPartition(data, 2, cfg.Space)
	peers := make([]*Peer, len(parts))
	for i, part := range parts {
		pos := gen.CellRect(i/2, i%2, 2, cfg.Space).Center()
		// Each peer gets its own client, as separate processes would.
		p, err := NewPeer(core.DeviceID(i), part, cfg.Schema(), core.Under, true,
			pos, NewDirectoryClient(srv.Addr()), DefaultConfig())
		if err != nil {
			t.Fatalf("NewPeer %d: %v", i, err)
		}
		defer p.Close()
		peers[i] = p
	}
	for i, p := range peers {
		for j := range peers {
			if i != j {
				p.AddNeighbor(core.DeviceID(j))
			}
		}
	}
	res, err := peers[0].Query(600, len(peers))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Complete {
		t.Fatalf("query through directory server incomplete: %d results", res.Results)
	}
	want := skyline.Constrained(data, peers[0].Pos(), 600)
	if !skyline.SetEqual(res.Skyline, want) {
		t.Errorf("got %d tuples, want %d", len(res.Skyline), len(want))
	}
}

// TestDirectoryLeaseStates walks one in-process lease through live →
// suspect → down and back via re-registration.
func TestDirectoryLeaseStates(t *testing.T) {
	d := NewDirectory()
	const ttl = 80 * time.Millisecond
	if err := d.RegisterLease(3, "127.0.0.1:1111", ttl); err != nil {
		t.Fatalf("RegisterLease: %v", err)
	}
	if st := d.State(3); st != LeaseLive {
		t.Fatalf("fresh lease state = %v, want live", st)
	}
	if _, ok := d.Lookup(3); !ok {
		t.Fatalf("live lease should resolve")
	}
	// Heartbeats keep it alive past the TTL.
	for i := 0; i < 4; i++ {
		time.Sleep(ttl / 2)
		if !d.Heartbeat(3) {
			t.Fatalf("heartbeat %d rejected", i)
		}
	}
	if st := d.State(3); st != LeaseLive {
		t.Fatalf("heartbeated lease state = %v, want live", st)
	}
	// Lapse: one TTL in, the entry is suspect but still resolvable.
	time.Sleep(ttl + ttl/4)
	if st := d.State(3); st != LeaseSuspect {
		t.Errorf("state after one TTL = %v, want suspect", st)
	}
	if _, ok := d.Lookup(3); !ok {
		t.Errorf("suspect lease should still resolve")
	}
	// Past the grace period the peer is down: invisible and heartbeats are
	// rejected, forcing a full re-registration.
	time.Sleep(ttl)
	if st := d.State(3); st != LeaseDown {
		t.Errorf("state after grace = %v, want down", st)
	}
	if _, ok := d.Lookup(3); ok {
		t.Errorf("down lease should not resolve")
	}
	if d.Heartbeat(3) {
		t.Errorf("heartbeat on a down lease should be rejected")
	}
	// The restarted peer re-registers on a new port.
	if err := d.RegisterLease(3, "127.0.0.1:2222", ttl); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if addr, ok := d.Lookup(3); !ok || addr != "127.0.0.1:2222" {
		t.Errorf("re-registered Lookup = %q %v, want new address", addr, ok)
	}
	if d.Sweep() != 0 {
		t.Errorf("nothing should be sweepable after re-registration")
	}
}

// TestDirectoryServerLeaseExpiryAndReRegistration runs the same lifecycle
// through the TCP directory protocol: a peer crashes, its lease lapses,
// Lookup stops returning it; it restarts on a new port and a heartbeat
// cycle refreshes the entry.
func TestDirectoryServerLeaseExpiryAndReRegistration(t *testing.T) {
	srv, err := NewDirectoryServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewDirectoryServer: %v", err)
	}
	defer srv.Close()
	const ttl = 100 * time.Millisecond

	c := NewDirectoryClient(srv.Addr())
	if err := c.RegisterLease(5, "127.0.0.1:1111", ttl); err != nil {
		t.Fatalf("RegisterLease: %v", err)
	}
	if !c.Heartbeat(5) {
		t.Fatalf("heartbeat on a live lease should succeed")
	}
	if addr, ok := c.Lookup(5); !ok || addr != "127.0.0.1:1111" {
		t.Fatalf("Lookup = %q %v", addr, ok)
	}

	// Crash: no more heartbeats. Past TTL+grace the server forgets the
	// peer; a fresh client (no cache) must miss, and the janitor must have
	// swept the entry out of list as well.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if st := srv.Directory().State(5); st == LeaseDown || st == LeaseUnknown {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never decayed, state = %v", srv.Directory().State(5))
		}
		time.Sleep(20 * time.Millisecond)
	}
	fresh := NewDirectoryClient(srv.Addr())
	if _, ok := fresh.Lookup(5); ok {
		t.Errorf("lookup after lease decay should miss")
	}
	if all, err := fresh.List(); err != nil || len(all) != 0 {
		t.Errorf("List after decay = %v %v, want empty", all, err)
	}
	if c.Heartbeat(5) {
		t.Errorf("heartbeat after decay should be rejected")
	}

	// Restart on a new port: re-register, and heartbeats hold the new
	// entry live across several TTLs.
	if err := c.RegisterLease(5, "127.0.0.1:2222", ttl); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	for i := 0; i < 4; i++ {
		time.Sleep(ttl / 2)
		if !c.Heartbeat(5) {
			t.Fatalf("heartbeat %d after restart rejected", i)
		}
	}
	if addr, ok := fresh.Lookup(5); !ok || addr != "127.0.0.1:2222" {
		t.Errorf("Lookup after restart = %q %v, want new address", addr, ok)
	}
}

// TestPeerLeaseCrashRestart exercises the full loop with live peers: a
// leased peer crashes, decays out of the directory (so the survivor's
// flood suppresses sends to it), then a replacement on a new port registers
// under the same ID and queries span both again.
func TestPeerLeaseCrashRestart(t *testing.T) {
	srv, err := NewDirectoryServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewDirectoryServer: %v", err)
	}
	defer srv.Close()

	cfg := DefaultConfig()
	cfg.QueryTimeout = time.Second
	cfg.LeaseTTL = 120 * time.Millisecond
	data := gen.Generate(gen.DefaultConfig(600, 2, gen.Independent, 17))
	half := len(data) / 2
	schema := tuple.NewSchema(2, 0, 1000)

	mk := func(id core.DeviceID, ts []tuple.Tuple) *Peer {
		p, err := NewPeer(id, ts, schema, core.Under, true,
			tuple.Point{X: 500, Y: 500}, NewDirectoryClient(srv.Addr()), cfg)
		if err != nil {
			t.Fatalf("NewPeer %d: %v", id, err)
		}
		return p
	}
	p0 := mk(0, data[:half])
	defer p0.Close()
	p1 := mk(1, data[half:])
	p0.AddNeighbor(1)
	p1.AddNeighbor(0)

	res, err := p0.Query(core.Unconstrained(), 2)
	if err != nil || !res.Complete {
		t.Fatalf("initial query: err=%v complete=%v", err, res.Complete)
	}
	oldAddr := p1.Addr()

	// Crash peer 1 and wait for its lease to decay out of the directory.
	p1.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if st := srv.Directory().State(1); st == LeaseDown || st == LeaseUnknown {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("crashed peer's lease never decayed")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Restart under the same ID: a different process would get a new port.
	p1b := mk(1, data[half:])
	defer p1b.Close()
	p1b.AddNeighbor(0)
	if p1b.Addr() == oldAddr {
		t.Logf("restarted peer reused %s (rare but harmless)", oldAddr)
	}
	// The survivor's cached address is stale; its pool invalidates it on
	// dial failure and re-resolves. Allow a couple of query attempts.
	ok := false
	for attempt := 0; attempt < 5 && !ok; attempt++ {
		res, err := p0.Query(core.Unconstrained(), 2)
		if err != nil {
			t.Fatalf("query after restart: %v", err)
		}
		ok = res.Complete
	}
	if !ok {
		t.Errorf("queries never completed against the restarted peer")
	}
	want := skyline.Constrained(data, p0.Pos(), core.Unconstrained())
	res, err = p0.Query(core.Unconstrained(), 2)
	if err != nil || !res.Complete {
		t.Fatalf("final query: err=%v complete=%v", err, res.Complete)
	}
	if !skyline.SetEqual(res.Skyline, want) {
		t.Errorf("restarted network skyline: got %d tuples, want %d", len(res.Skyline), len(want))
	}
}

func TestDirectoryServerBadRequests(t *testing.T) {
	srv, err := NewDirectoryServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewDirectoryServer: %v", err)
	}
	defer srv.Close()
	c := NewDirectoryClient(srv.Addr())
	resp, err := c.roundTrip(dirRequest{Op: "bogus"})
	if err != nil {
		t.Fatalf("roundTrip: %v", err)
	}
	if resp.OK {
		t.Errorf("bogus op should be rejected")
	}
	srv.Close()
	srv.Close() // idempotent
}
