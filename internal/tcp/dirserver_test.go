package tcp

import (
	"testing"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
	"manetskyline/internal/skyline"
)

func TestDirectoryServerRegisterLookupList(t *testing.T) {
	srv, err := NewDirectoryServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewDirectoryServer: %v", err)
	}
	defer srv.Close()

	c := NewDirectoryClient(srv.Addr())
	if _, ok := c.Lookup(7); ok {
		t.Errorf("lookup before registration should miss")
	}
	if err := c.RegisterErr(7, "127.0.0.1:1111"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := c.RegisterErr(8, "127.0.0.1:2222"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if addr, ok := c.Lookup(7); !ok || addr != "127.0.0.1:1111" {
		t.Errorf("Lookup(7) = %q %v", addr, ok)
	}
	// Cache hit path.
	if addr, ok := c.Lookup(7); !ok || addr != "127.0.0.1:1111" {
		t.Errorf("cached Lookup(7) = %q %v", addr, ok)
	}
	all, err := c.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(all) != 2 || all[8] != "127.0.0.1:2222" {
		t.Errorf("List = %v", all)
	}
}

func TestDirectoryClientAgainstDeadServer(t *testing.T) {
	c := NewDirectoryClient("127.0.0.1:1") // nothing listens there
	c.timeout = 200 * time.Millisecond
	if err := c.RegisterErr(1, "x"); err == nil {
		t.Errorf("register against dead server should error")
	}
	if _, ok := c.Lookup(1); ok {
		t.Errorf("lookup against dead server should miss")
	}
	if _, err := c.List(); err == nil {
		t.Errorf("list against dead server should error")
	}
}

// Full multi-process shape in one process: peers resolve each other through
// a DirectoryServer over TCP, and the distributed query still matches the
// centralized skyline.
func TestPeersThroughDirectoryServer(t *testing.T) {
	srv, err := NewDirectoryServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewDirectoryServer: %v", err)
	}
	defer srv.Close()

	cfg := gen.DefaultConfig(2000, 2, gen.Independent, 13)
	data := gen.Generate(cfg)
	parts := gen.GridPartition(data, 2, cfg.Space)
	peers := make([]*Peer, len(parts))
	for i, part := range parts {
		pos := gen.CellRect(i/2, i%2, 2, cfg.Space).Center()
		// Each peer gets its own client, as separate processes would.
		p, err := NewPeer(core.DeviceID(i), part, cfg.Schema(), core.Under, true,
			pos, NewDirectoryClient(srv.Addr()), DefaultConfig())
		if err != nil {
			t.Fatalf("NewPeer %d: %v", i, err)
		}
		defer p.Close()
		peers[i] = p
	}
	for i, p := range peers {
		for j := range peers {
			if i != j {
				p.AddNeighbor(core.DeviceID(j))
			}
		}
	}
	res, err := peers[0].Query(600, len(peers))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Complete {
		t.Fatalf("query through directory server incomplete: %d results", res.Results)
	}
	want := skyline.Constrained(data, peers[0].Pos(), 600)
	if !skyline.SetEqual(res.Skyline, want) {
		t.Errorf("got %d tuples, want %d", len(res.Skyline), len(want))
	}
}

func TestDirectoryServerBadRequests(t *testing.T) {
	srv, err := NewDirectoryServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewDirectoryServer: %v", err)
	}
	defer srv.Close()
	c := NewDirectoryClient(srv.Addr())
	resp, err := c.roundTrip(dirRequest{Op: "bogus"})
	if err != nil {
		t.Fatalf("roundTrip: %v", err)
	}
	if resp.OK {
		t.Errorf("bogus op should be rejected")
	}
	srv.Close()
	srv.Close() // idempotent
}
