package tcp

import (
	"fmt"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/wire"
)

// Cross-peer causal tracing. When Config.Spans is set, every frame a peer
// sends carries a wire.TraceContext — the query's (org, cnt) as trace ID,
// the TCP hop number, and the sending peer — and both ends record transport
// stages into their span logs:
//
//	sender:   enqueue → (dial) → write
//	receiver: decode → handle → (reply)
//
// Each peer only ever sees its own half of a hop; cmd/skytrace (via
// internal/trace) merges the per-peer logs into one causal timeline by
// pairing each write with the matching decode on the other side. With
// Config.Spans nil, no context is attached (frames stay on the v1 wire
// format, byte-identical to an untraced build) and every helper here is a
// single branch with zero allocations.

// nowSecs is the live runtime's span clock: Unix time in float64 seconds,
// comparable across peers on one host (the chaos soaks and localhost grids
// this repo runs) without clock-sync machinery.
func nowSecs() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// spanKey converts a protocol query key to a span key.
func spanKey(k core.QueryKey) telemetry.SpanKey {
	return telemetry.SpanKey{Org: int32(k.Org), Cnt: int32(k.Cnt)}
}

// ctxSpanKey converts a wire trace context to a span key.
func ctxSpanKey(tc *wire.TraceContext) telemetry.SpanKey {
	return telemetry.SpanKey{Org: tc.Org, Cnt: int32(tc.Cnt)}
}

// traceCtx builds the context frames of query k should carry at the given
// hop, or nil when tracing is disabled.
func (p *Peer) traceCtx(k core.QueryKey, hop uint8) *wire.TraceContext {
	if p.cfg.Spans == nil {
		return nil
	}
	return &wire.TraceContext{
		Org: int32(k.Org), Cnt: k.Cnt, Hop: hop, Parent: int32(p.dev.ID),
	}
}

// traceStage records one transport stage against the span tc identifies.
// The span is auto-opened on peers that did not originate the query. No-op
// (and allocation-free) when tracing is disabled or the frame is untraced.
func (p *Peer) traceStage(tc *wire.TraceContext, kind string, peer core.DeviceID, bytes int) {
	if p.cfg.Spans == nil || tc == nil {
		return
	}
	p.cfg.Spans.ObserveAuto(ctxSpanKey(tc), telemetry.Stage{
		T: nowSecs(), Kind: kind, Device: int32(p.dev.ID),
		Peer: int32(peer), Hops: int(tc.Hop), Bytes: bytes,
	})
}

// flightEvent records a failure-path event into the flight recorder when
// one is configured. The detail is formatted only past the nil gate, so
// disabled recorders do not pay for string building.
func (p *Peer) flightEvent(kind string, tc *wire.TraceContext, format string, args ...any) {
	if p.cfg.Flight == nil {
		return
	}
	ev := telemetry.FlightEvent{
		T: nowSecs(), Kind: kind, Peer: int32(p.dev.ID),
		Detail: fmt.Sprintf(format, args...),
	}
	if tc != nil {
		ev.Org, ev.Cnt = tc.Org, int32(tc.Cnt)
	}
	p.cfg.Flight.Record(ev)
}
