package tcp

import (
	"testing"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
	"manetskyline/internal/telemetry"
)

// benchPeers builds a 2×2 grid for query benchmarks. The query counter is a
// uint8, so callers rebuild the fleet before it wraps (the query log dedupes
// by key, and a reused key would strand the query).
func benchPeers(b *testing.B, traced bool, seed int64) ([]*Peer, func()) {
	b.Helper()
	const g = 2
	c := gen.DefaultConfig(400, 2, gen.Independent, seed)
	data := gen.Generate(c)
	parts := gen.GridPartition(data, g, c.Space)
	dir := NewDirectory()
	peers := make([]*Peer, len(parts))
	for i, part := range parts {
		cfg := DefaultConfig()
		if traced {
			cfg.Spans = telemetry.NewSpanLog()
		}
		pos := gen.CellRect(i/g, i%g, g, c.Space).Center()
		p, err := NewPeer(core.DeviceID(i), part, c.Schema(), core.Under, true, pos, dir, cfg)
		if err != nil {
			b.Fatalf("NewPeer %d: %v", i, err)
		}
		peers[i] = p
	}
	for r := 0; r < g; r++ {
		for col := 0; col < g; col++ {
			i := r*g + col
			if col < g-1 {
				peers[i].AddNeighbor(peers[i+1].ID())
				peers[i+1].AddNeighbor(peers[i].ID())
			}
			if r < g-1 {
				peers[i].AddNeighbor(peers[i+g].ID())
				peers[i+g].AddNeighbor(peers[i].ID())
			}
		}
	}
	return peers, func() {
		for _, p := range peers {
			p.Close()
		}
	}
}

// benchQueries measures end-to-end query latency over real sockets, rotating
// fleets before the uint8 query counter wraps.
func benchQueries(b *testing.B, traced bool) {
	const perFleet = 200
	var (
		peers   []*Peer
		cleanup func()
	)
	defer func() {
		if cleanup != nil {
			cleanup()
		}
	}()
	b.ReportAllocs()
	incomplete := 0
	for i := 0; i < b.N; i++ {
		if i%perFleet == 0 {
			b.StopTimer()
			if cleanup != nil {
				cleanup()
			}
			peers, cleanup = benchPeers(b, traced, int64(31+i))
			b.StartTimer()
		}
		res, err := peers[0].Query(core.Unconstrained(), len(peers))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete {
			incomplete++
		}
	}
	// The occasional straggler result under scheduler noise is fine; a
	// systematic failure to complete is not.
	if incomplete > b.N/20 {
		b.Fatalf("%d/%d queries incomplete", incomplete, b.N)
	}
}

// BenchmarkQueryUntraced is the baseline: Spans nil, frames on the v1 wire
// format, every tracing hook one branch.
func BenchmarkQueryUntraced(b *testing.B) { benchQueries(b, false) }

// BenchmarkQueryTraced runs the same fleet with per-peer span logs: v2
// frames (+10B per frame) and a span stage per enqueue/write/decode/handle/
// reply/result.
func BenchmarkQueryTraced(b *testing.B) { benchQueries(b, true) }
