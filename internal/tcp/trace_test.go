package tcp

import (
	"io"
	"testing"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/wire"
)

// TestTracingDisabledZeroAllocs pins the disabled tracing path at zero
// allocations: with Config.Spans and Config.Flight nil, every per-frame
// tracing hook is one branch, and a nil trace context keeps frame writes on
// the v1 format with no extra work. The CI allocation-gate step runs this
// by name.
func TestTracingDisabledZeroAllocs(t *testing.T) {
	p := &Peer{cfg: Config{}} // tracing and flight both disabled
	tc := &wire.TraceContext{Org: 1, Cnt: 2, Hop: 3, Parent: 4}
	msg := []byte("payload")
	cases := []struct {
		name string
		op   func()
	}{
		{"traceCtx disabled", func() {
			if p.traceCtx(core.QueryKey{Org: 1, Cnt: 2}, 1) != nil {
				t.Fatal("traceCtx must be nil with Spans unset")
			}
		}},
		{"traceStage nil ctx", func() { p.traceStage(nil, telemetry.StageWrite, 2, 40) }},
		{"traceStage disabled", func() { p.traceStage(tc, telemetry.StageWrite, 2, 40) }},
		{"flightEvent disabled", func() { p.flightEvent("dead_letter", tc, "to %d", 2) }},
	}
	for _, c := range cases {
		if avg := testing.AllocsPerRun(1000, c.op); avg != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", c.name, avg)
		}
	}
	// A nil-context frame write must cost exactly what the legacy v1 write
	// cost — the one header-escape allocation Go charges for writing a
	// stack buffer through an io.Writer interface, and nothing more.
	legacy := testing.AllocsPerRun(1000, func() { _ = wire.WriteFrame(io.Discard, msg) })
	nilCtx := testing.AllocsPerRun(1000, func() { _ = wire.WriteFrameCtx(io.Discard, msg, nil) })
	if nilCtx > legacy {
		t.Errorf("WriteFrameCtx(nil) allocates %.1f/op vs legacy %.1f/op", nilCtx, legacy)
	}
}

// tracedPeers builds a 0—1—2 line of peers, each with its own span log and
// a shared flight recorder, the way a live deployment would run them.
func tracedPeers(t *testing.T, flight *telemetry.FlightRecorder) ([]*Peer, []*telemetry.SpanLog, func()) {
	t.Helper()
	c := gen.DefaultConfig(300, 2, gen.Independent, 11)
	data := gen.Generate(c)
	parts := gen.GridPartition(data, 3, c.Space) // 9 cells; we use 3
	dir := NewDirectory()
	peers := make([]*Peer, 3)
	logs := make([]*telemetry.SpanLog, 3)
	for i := 0; i < 3; i++ {
		cfg := DefaultConfig()
		logs[i] = telemetry.NewSpanLog()
		cfg.Spans = logs[i]
		cfg.Flight = flight
		pos := gen.CellRect(i, i, 3, c.Space).Center()
		p, err := NewPeer(core.DeviceID(i), parts[i*3+i], c.Schema(), core.Under, true, pos, dir, cfg)
		if err != nil {
			t.Fatalf("NewPeer %d: %v", i, err)
		}
		peers[i] = p
	}
	peers[0].AddNeighbor(1)
	peers[1].AddNeighbor(0)
	peers[1].AddNeighbor(2)
	peers[2].AddNeighbor(1)
	return peers, logs, func() {
		for _, p := range peers {
			p.Close()
		}
	}
}

// stageCount tallies stages of one kind across a span.
func stageCount(sp *telemetry.Span, kind string) int {
	n := 0
	for _, st := range sp.Stages {
		if st.Kind == kind {
			n++
		}
	}
	return n
}

func findStage(sp *telemetry.Span, kind string) (telemetry.Stage, bool) {
	for _, st := range sp.Stages {
		if st.Kind == kind {
			return st, true
		}
	}
	return telemetry.Stage{}, false
}

// TestPerHopSpansEndToEnd drives one query across two real TCP hops and
// checks every peer recorded its half of each hop with consistent keys, hop
// numbers, parents, and byte counts — the raw material internal/trace
// merges into a causal timeline.
func TestPerHopSpansEndToEnd(t *testing.T) {
	peers, logs, cleanup := tracedPeers(t, nil)
	defer cleanup()
	res, err := peers[0].Query(core.Unconstrained(), 3)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Complete {
		t.Fatalf("query incomplete: %d results", res.Results)
	}

	// Originator: issue, enqueue+write of the query, two results, complete.
	osp := logs[0].Spans()
	if len(osp) != 1 {
		t.Fatalf("originator spans = %d, want 1", len(osp))
	}
	sp0 := osp[0]
	if sp0.Org != 0 || !sp0.Done {
		t.Fatalf("originator span = %+v", sp0)
	}
	if n := stageCount(sp0, telemetry.StageWrite); n < 1 {
		t.Errorf("originator write stages = %d, want ≥ 1", n)
	}
	if n := stageCount(sp0, telemetry.StageResult); n != 2 {
		t.Errorf("originator result stages = %d, want 2", n)
	}
	wst, ok := findStage(sp0, telemetry.StageWrite)
	if !ok || wst.Bytes <= wire.TraceContextSize {
		t.Errorf("originator write stage lacks wire bytes: %+v", wst)
	}
	if wst.Hops != 1 || wst.Peer != 1 {
		t.Errorf("originator write = %+v, want hop 1 to peer 1", wst)
	}

	// Relay (peer 1): auto-opened span with decode(hop 1, parent 0),
	// handle, reply, and a hop-2 forward write to peer 2.
	rsp := logs[1].Spans()
	if len(rsp) != 1 {
		t.Fatalf("relay spans = %d, want 1", len(rsp))
	}
	sp1 := rsp[0]
	if sp1.Org != 0 || sp1.Cnt != sp0.Cnt {
		t.Fatalf("relay span keyed %d/%d, want originator key %d/%d", sp1.Org, sp1.Cnt, sp0.Org, sp0.Cnt)
	}
	dst, ok := findStage(sp1, telemetry.StageDecode)
	if !ok || dst.Hops != 1 || dst.Peer != 0 {
		t.Errorf("relay decode = %+v (ok=%v), want hop 1 from peer 0", dst, ok)
	}
	if _, ok := findStage(sp1, telemetry.StageHandle); !ok {
		t.Error("relay recorded no handle stage")
	}
	if _, ok := findStage(sp1, telemetry.StageReply); !ok {
		t.Error("relay recorded no reply stage")
	}
	fwd := telemetry.Stage{}
	for _, st := range sp1.Stages {
		if st.Kind == telemetry.StageWrite && st.Peer == 2 {
			fwd = st
		}
	}
	if fwd.Hops != 2 {
		t.Errorf("relay forward to peer 2 = %+v, want hop 2", fwd)
	}

	// Far peer (peer 2): decode at hop 2 with parent 1.
	fsp := logs[2].Spans()
	if len(fsp) != 1 {
		t.Fatalf("far spans = %d, want 1", len(fsp))
	}
	dst2, ok := findStage(fsp[0], telemetry.StageDecode)
	if !ok || dst2.Hops != 2 || dst2.Peer != 1 {
		t.Errorf("far decode = %+v (ok=%v), want hop 2 from peer 1", dst2, ok)
	}

	// Causality within the shared clock: the relay decoded after the
	// originator wrote.
	if dst.T < wst.T {
		t.Errorf("relay decode at %.6f before originator write at %.6f", dst.T, wst.T)
	}
}

// TestTracedBytesLedger checks the byte counters account the 10-byte trace
// context: what one peer counts out, its neighbour counts in.
func TestTracedBytesLedger(t *testing.T) {
	c := gen.DefaultConfig(200, 2, gen.Independent, 13)
	data := gen.Generate(c)
	parts := gen.GridPartition(data, 2, c.Space)
	dir := NewDirectory()
	regs := make([]*telemetry.Registry, 2)
	peers := make([]*Peer, 2)
	for i := 0; i < 2; i++ {
		cfg := DefaultConfig()
		regs[i] = telemetry.NewRegistry()
		cfg.Registry = regs[i]
		cfg.Spans = telemetry.NewSpanLog()
		p, err := NewPeer(core.DeviceID(i), parts[i], c.Schema(), core.Under, true,
			gen.CellRect(i, i, 2, c.Space).Center(), dir, cfg)
		if err != nil {
			t.Fatalf("NewPeer: %v", err)
		}
		peers[i] = p
	}
	defer peers[1].Close()
	defer peers[0].Close()
	peers[0].AddNeighbor(1)
	peers[1].AddNeighbor(0)
	if _, err := peers[0].Query(core.Unconstrained(), 2); err != nil {
		t.Fatal(err)
	}
	// Give the reply frame's counters a moment to settle.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if regs[1].Bytes().Layers["tcp"].Received > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	out0 := regs[0].Bytes().Layers["tcp"].Sent
	in1 := regs[1].Bytes().Layers["tcp"].Received
	if out0 == 0 || in1 == 0 {
		t.Fatalf("byte ledger empty: out0=%d in1=%d", out0, in1)
	}
	if out0 != in1 {
		t.Errorf("peer 0 sent %d bytes but peer 1 received %d", out0, in1)
	}
	// Traced frames carry the context: the wire total must exceed payload
	// + 4-byte headers by exactly TraceContextSize per message.
	msgs := int64(0)
	for k, v := range regs[0].Snapshot().Counters {
		if k == "tcp_messages_out_total" {
			msgs = v
		}
	}
	if msgs == 0 {
		t.Fatal("no messages counted")
	}
	// Each traced frame's accounted size includes the 10-byte context; the
	// cheapest check without re-decoding is that bytes/message exceeds the
	// legacy minimum frame overhead.
	if out0 < msgs*(4+wire.TraceContextSize) {
		t.Errorf("accounted bytes %d too small for %d traced frames", out0, msgs)
	}
}

// TestLinkStatsAndGauges checks the conn pool's internal state surfaces
// both through Peer.LinkStats and as labelled registry gauges.
func TestLinkStatsAndGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig()
	cfg.Registry = reg
	peers, _, cleanup := buildPeers(t, cfg, 500, 2, 2, 21)
	defer cleanup()
	if _, err := peers[0].Query(core.Unconstrained(), len(peers)); err != nil {
		t.Fatal(err)
	}
	stats := peers[0].LinkStats()
	if len(stats) == 0 {
		t.Fatal("originator has no managed links after a query")
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].To <= stats[i-1].To {
			t.Errorf("LinkStats not sorted: %v", stats)
		}
	}
	snap := reg.Snapshot()
	foundDepth := false
	for k := range snap.Gauges {
		if len(k) >= len("tcp_send_queue_depth") && k[:len("tcp_send_queue_depth")] == "tcp_send_queue_depth" {
			foundDepth = true
		}
	}
	if !foundDepth {
		t.Errorf("no tcp_send_queue_depth gauge registered: %v", snap.Gauges)
	}
}

// TestDirLeaseGauges checks the directory server's lease-state gauges track
// live → suspect decay through the exposition hook.
func TestDirLeaseGauges(t *testing.T) {
	srv, err := NewDirectoryServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg := telemetry.NewRegistry()
	srv.SetRegistry(reg)
	srv.Directory().RegisterLease(1, "127.0.0.1:1111", 300*time.Millisecond)
	srv.Directory().Register(2, "127.0.0.1:2222") // permanent ⇒ always live
	snap := reg.Snapshot()
	if got := snap.Gauges[`tcp_dir_leases{state="live"}`]; got != 2 {
		t.Errorf("live leases = %d, want 2", got)
	}
	time.Sleep(400 * time.Millisecond) // lease lapses into suspect (grace = one TTL)
	snap = reg.Snapshot()
	if got := snap.Gauges[`tcp_dir_leases{state="suspect"}`]; got != 1 {
		t.Errorf("suspect leases = %d, want 1 (snapshot %v)", got, snap.Gauges)
	}
	if got := snap.Gauges[`tcp_dir_leases{state="live"}`]; got != 1 {
		t.Errorf("live leases after decay = %d, want 1", got)
	}
}

// TestUntracedPeersInteroperate runs a traced originator against an
// untraced relay: the traced peer's frames carry contexts the untraced
// build ignores... except the untraced build here is the same binary with
// Spans nil, so what this actually pins is config-level mixing: a fleet
// where only some peers trace still completes queries.
func TestUntracedPeersInteroperate(t *testing.T) {
	c := gen.DefaultConfig(200, 2, gen.Independent, 17)
	data := gen.Generate(c)
	parts := gen.GridPartition(data, 2, c.Space)
	dir := NewDirectory()
	tracedCfg := DefaultConfig()
	tracedCfg.Spans = telemetry.NewSpanLog()
	p0, err := NewPeer(0, parts[0], c.Schema(), core.Under, true,
		gen.CellRect(0, 0, 2, c.Space).Center(), dir, tracedCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	p1, err := NewPeer(1, parts[1], c.Schema(), core.Under, true,
		gen.CellRect(1, 1, 2, c.Space).Center(), dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	p0.AddNeighbor(1)
	p1.AddNeighbor(0)
	res, err := p0.Query(core.Unconstrained(), 2)
	if err != nil || !res.Complete {
		t.Fatalf("mixed-fleet query failed: %v complete=%v", err, res.Complete)
	}
	// The untraced relay replied with a v1 frame; the traced originator
	// still recorded its own stages and completed its span.
	sp := tracedCfg.Spans.Spans()
	if len(sp) != 1 || !sp[0].Done {
		t.Fatalf("traced originator span = %+v", sp)
	}
}
