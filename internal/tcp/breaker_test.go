package tcp

import (
	"errors"
	"testing"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
	"manetskyline/internal/leaktest"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
)

// TestBreakerTransitions unit-tests the state machine directly: closed
// until the threshold of consecutive failures, open through the cooldown,
// one half-open probe afterwards, and both probe outcomes.
func TestBreakerTransitions(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(2, 100*time.Millisecond)

	if !b.allow(now) || b.fastFail(now) {
		t.Fatalf("new breaker must be closed and allowing")
	}
	if b.failure(now) {
		t.Fatalf("first failure must not open a threshold-2 breaker")
	}
	if !b.failure(now) {
		t.Fatalf("second consecutive failure must open the breaker")
	}
	if s, fails := b.snapshot(); s != BreakerOpen || fails != 2 {
		t.Fatalf("after opening: state=%v fails=%d, want open/2", s, fails)
	}
	if b.allow(now.Add(50 * time.Millisecond)) {
		t.Fatalf("open breaker allowed a delivery inside the cooldown")
	}
	if !b.fastFail(now.Add(50 * time.Millisecond)) {
		t.Fatalf("open breaker inside cooldown must fast-fail")
	}

	// Cooldown elapsed: exactly one probe is admitted.
	probeAt := now.Add(150 * time.Millisecond)
	if !b.allow(probeAt) {
		t.Fatalf("cooldown elapsed but probe refused")
	}
	if s, _ := b.snapshot(); s != BreakerHalfOpen {
		t.Fatalf("state after admitting probe = %v, want half-open", s)
	}
	if b.allow(probeAt) {
		t.Fatalf("second concurrent probe admitted in half-open")
	}

	// A failed probe re-opens with a fresh cooldown.
	if !b.failure(probeAt) {
		t.Fatalf("failed half-open probe must re-open the breaker")
	}
	if b.allow(probeAt.Add(50 * time.Millisecond)) {
		t.Fatalf("re-opened breaker ignored its fresh cooldown")
	}

	// A successful probe closes and resets the failure count.
	if !b.allow(probeAt.Add(200 * time.Millisecond)) {
		t.Fatalf("second probe refused after cooldown")
	}
	b.success()
	if s, fails := b.snapshot(); s != BreakerClosed || fails != 0 {
		t.Fatalf("after successful probe: state=%v fails=%d, want closed/0", s, fails)
	}

	// Disabled breaker (nil) always allows.
	var nb *breaker
	if !nb.allow(now) || nb.fastFail(now) || nb.failure(now) {
		t.Fatalf("nil breaker must be inert")
	}
	nb.success()
}

// TestBreakerOpensUnderDialFailuresAndRecovers drives the breaker through
// a live peer: scripted dial failures (a registered address that refuses
// connections) open it, frames then fail fast instead of burning the retry
// budget, and once a real peer takes over the address the half-open probe
// closes it again.
func TestBreakerOpensUnderDialFailuresAndRecovers(t *testing.T) {
	defer leaktest.Check(t)()
	reg := telemetry.NewRegistry()
	gcfg := gen.DefaultConfig(100, 2, gen.Independent, 5)
	data := gen.Generate(gcfg)
	half := len(data) / 2

	dir := NewDirectory()
	dir.Register(1, deadAddr(t))
	cfg := DefaultConfig()
	cfg.Registry = reg
	cfg.QueryTimeout = 2 * time.Second
	cfg.RetryTimeout = 400 * time.Millisecond
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 300 * time.Millisecond
	p0, err := NewPeer(0, data[:half], gcfg.Schema(), core.Under, true, tuple.Point{X: 500, Y: 500}, dir, cfg)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	defer p0.Close()
	p0.AddNeighbor(1)

	// Query 1: two dial failures (25ms + 50ms backoff) open the breaker,
	// which then condemns the frame — the query fails fast and explicitly.
	if _, err := p0.Query(core.Unconstrained(), 2); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("query 1 error = %v, want ErrUnreachable", err)
	}
	waitFor(t, "breaker open", func() bool {
		st := p0.BreakerStats()
		return len(st) == 1 && st[0].State == BreakerOpen
	})
	snap := reg.Snapshot()
	if snap.Counters["tcp_breaker_opens_total"] == 0 {
		t.Errorf("tcp_breaker_opens_total = 0 after scripted dial failures")
	}

	// Query 2 inside the cooldown: the frame is dropped at enqueue, no
	// dials are burned, and the query still fails explicitly and fast.
	dialsBefore := snap.Counters["tcp_dials_total"]
	start := time.Now()
	if _, err := p0.Query(core.Unconstrained(), 2); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("query 2 error = %v, want ErrUnreachable", err)
	}
	if elapsed := time.Since(start); elapsed > cfg.BreakerCooldown {
		t.Errorf("query 2 took %v; an open breaker must fail it before the cooldown elapses", elapsed)
	}
	snap = reg.Snapshot()
	if snap.Counters["tcp_breaker_drops_total"] == 0 {
		t.Errorf("tcp_breaker_drops_total = 0; the open breaker should have dropped the frame")
	}
	if got := snap.Counters["tcp_dials_total"]; got != dialsBefore {
		t.Errorf("open breaker still dialed: %d -> %d", dialsBefore, got)
	}

	// Bring up a real peer under id 1 (its registration replaces the dead
	// address), let the cooldown elapse, and the next query's half-open
	// probe must close the breaker and complete normally.
	p1, err := NewPeer(1, data[half:], gcfg.Schema(), core.Under, true, tuple.Point{X: 500, Y: 500}, dir, cfg)
	if err != nil {
		t.Fatalf("NewPeer 1: %v", err)
	}
	defer p1.Close()
	p1.AddNeighbor(0)
	time.Sleep(cfg.BreakerCooldown + 50*time.Millisecond)

	res, err := p0.Query(core.Unconstrained(), 2)
	if err != nil {
		t.Fatalf("query 3 after recovery: %v", err)
	}
	if !res.Complete || res.Results != 1 {
		t.Errorf("query 3: Complete=%v Results=%d, want complete/1", res.Complete, res.Results)
	}
	st := p0.BreakerStats()
	if len(st) != 1 || st[0].State != BreakerClosed || st[0].ConsecFails != 0 {
		t.Errorf("breaker after successful probe = %+v, want closed/0", st)
	}
}

// waitFor polls cond for up to 2 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
