package tcp

import (
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/skyline"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
	"manetskyline/internal/wire"
)

// This file runs the SF (sampling-filter) strategy over real sockets, the
// live-runtime counterpart of internal/manet's simulated SF. The subprotocol
// travels as wire.FilterSet frames, one kind with a phase byte:
//
//	phase 0: the originator asks its direct neighbours (one hop — the
//	         sampling round stays off the flood budget) for seeded samples
//	         of their constrained local skylines.
//	phase 1: each neighbour replies with its sample; the peer keeps its
//	         full local skyline for the collect phase.
//	phase 2: after SFSampleWait the originator selects SFFilterK filters by
//	         greedy dominating-region coverage, quantizes them, and floods
//	         them with the query spec — SF's one full flood. A peer that
//	         missed the sampling round answers from this frame alone.
//	phase 3: every peer returns only the tuples surviving the filter set.
//
// Peers built before this kind existed drop the frame at Peek (counted in
// tcp_frames_dropped_total) and keep serving — mixed-version grids degrade,
// they do not crash.

// sfOrigQuery is the originator's phase state for one in-flight SF query.
type sfOrigQuery struct {
	bare core.Query
}

// sfLocalState caches a non-originator peer's full local skyline for one SF
// query, computed once whether the sampling round or the filter flood
// arrives first.
type sfLocalState struct {
	skyline    []tuple.Tuple
	sampleSent bool
	replied    bool
}

// sfSeedTCP derives the filter-selection seed from the query key, the same
// formula the simulator and the multi-filter extension use.
func sfSeedTCP(key core.QueryKey) int64 {
	return int64(key.Cnt) + int64(key.Org)<<8
}

// sfQuerySpec rebuilds the bare query a FilterSet frame describes.
func sfQuerySpec(m wire.FilterSet) core.Query {
	return core.Query{Org: m.Key.Org, Cnt: m.Key.Cnt, Pos: m.Pos, D: m.D}
}

// QuerySF originates a distributed constrained skyline query under the SF
// strategy: a one-hop sampling round, a filter-set flood, and a survivors
// collection, completing at the same quorum contract as Query. Fault-free,
// the result equals Query's exactly; on the wire the flood carries k
// quantized filters instead of each hop's best filter, and the replies
// shrink to survivor sets.
func (p *Peer) QuerySF(d float64, totalPeers int) (QueryResult, error) {
	start := time.Now()
	q, res := p.dev.Originate(p.pos, d)
	bare := q
	bare.Filter, bare.FilterVDR, bare.Extra = nil, 0, nil
	key := bare.Key()
	if p.cfg.Spans != nil {
		p.cfg.Spans.Begin(spanKey(key), nowSecs())
	}
	want := int(float64(totalPeers-1)*p.cfg.Quorum + 0.999999)
	if want < 0 {
		want = 0
	}
	pq := &pendingQuery{
		merged: res.Skyline,
		from:   make(map[core.DeviceID]bool),
		want:   want,
		done:   make(chan struct{}),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return QueryResult{}, ErrClosed
	}
	p.pending[key] = pq
	p.sfOrig[key] = &sfOrigQuery{bare: bare}
	p.sfSeen[key] = true // drop echoes of our own filter flood early
	neighbors := append([]core.DeviceID(nil), p.neighbors...)
	p.mu.Unlock()

	complete := want == 0
	if !complete {
		// Phase 0: one-hop sample request. No re-flood — SF only needs a
		// representative neighbourhood sample to pick filters from.
		req := wire.EncodeFilterSet(wire.FilterSet{
			Key: key, Phase: wire.SFPhaseSampleRequest,
			Pos: bare.Pos, D: bare.D, SampleK: uint16(p.cfg.SFSampleK),
		})
		qtc := p.traceCtx(key, 1)
		for _, nb := range neighbors {
			p.send(nb, req, qtc)
		}

		// Collect samples, then flood the selected filter set.
		deadline := time.NewTimer(p.cfg.QueryTimeout)
		defer deadline.Stop()
		sampleTimer := time.NewTimer(p.cfg.SFSampleWait)
		defer sampleTimer.Stop()
		select {
		case <-sampleTimer.C:
		case <-pq.done: // peer closed underneath us
		case <-deadline.C:
		}

		p.mu.Lock()
		hi := core.VDRBounds(p.dev.Mode, p.dev.Schema, p.dev.Rel, p.dev.OverFactor)
		selected := skyline.SelectFilterSet(pq.merged, hi, p.cfg.SFFilterK, 0, sfSeedTCP(key))
		// Ship what every peer will actually prune against: conservatively
		// quantized attribute codes (rounded toward worse — exactness holds).
		filters := core.QuantizeFilters(selected, p.dev.Schema)
		p.mu.Unlock()
		if p.cfg.Spans != nil {
			p.cfg.Spans.ObserveAuto(spanKey(key), telemetry.Stage{
				T: nowSecs(), Kind: telemetry.StageFilterSet,
				Device: int32(p.dev.ID), Tuples: len(filters),
			})
		}
		flood := wire.EncodeFilterSet(wire.FilterSet{
			Key: key, Phase: wire.SFPhaseFilterSet,
			Pos: bare.Pos, D: bare.D, Tuples: filters,
		})
		ftc := p.traceCtx(key, 1)
		for _, nb := range neighbors {
			p.send(nb, flood, ftc)
		}
		select {
		case <-pq.done:
		case <-deadline.C:
		}
	}

	p.mu.Lock()
	complete = complete || pq.results >= pq.want
	out := QueryResult{
		Skyline:  append([]tuple.Tuple(nil), pq.merged...),
		Results:  pq.results,
		Complete: complete,
		Elapsed:  time.Since(start),
	}
	delete(p.pending, key)
	delete(p.sfOrig, key)
	p.mu.Unlock()
	p.met.QueriesIssued.Inc()
	p.met.QueryLatency.Observe(out.Elapsed.Seconds())
	if complete {
		p.met.QueriesCompleted.Inc()
	}
	if p.cfg.Spans != nil {
		if !complete {
			p.cfg.Spans.MarkPartial(spanKey(key))
		}
		p.cfg.Spans.Complete(spanKey(key), nowSecs(), len(out.Skyline))
	}
	return out, nil
}

// handleFilterSet dispatches one SF subprotocol frame by phase.
func (p *Peer) handleFilterSet(m wire.FilterSet, tc *wire.TraceContext) {
	switch m.Phase {
	case wire.SFPhaseSampleRequest:
		p.sfHandleSampleRequest(m, tc)
	case wire.SFPhaseSampleReply:
		p.sfHandleSampleReply(m, tc)
	case wire.SFPhaseFilterSet:
		p.sfHandleFilterFlood(m, tc)
	case wire.SFPhaseSurvivors:
		// Survivors follow the same originator-side contract as BF results:
		// per-sender dedupe, merge, quorum.
		if tc != nil {
			p.traceStage(tc, telemetry.StageResult, m.From, 0)
		}
		p.handleResult(wire.Result{Key: m.Key, From: m.From, Tuples: m.Tuples}, nil)
	}
}

// sfLocalFor returns this peer's cached SF state for the query, computing
// the full constrained local skyline on first demand. It returns nil for
// the originator (its query log already holds the key) and for the losing
// side of a concurrent first-arrival race — the quorum absorbs both.
func (p *Peer) sfLocalFor(q core.Query) *sfLocalState {
	key := q.Key()
	p.mu.Lock()
	if st := p.sfLocal[key]; st != nil {
		p.mu.Unlock()
		return st
	}
	p.mu.Unlock()
	if !p.dev.FirstTime(key) {
		return nil
	}
	res := p.dev.Process(q) // bare query: the full constrained local skyline
	st := &sfLocalState{skyline: res.Skyline}
	p.mu.Lock()
	// A peer holds one in-flight query per originator (the query log's
	// contract), so drop state of this originator's previous queries.
	for k := range p.sfLocal {
		if k.Org == key.Org && k != key {
			delete(p.sfLocal, k)
		}
	}
	for k := range p.sfSeen {
		if k.Org == key.Org && k != key {
			delete(p.sfSeen, k)
		}
	}
	p.sfLocal[key] = st
	p.mu.Unlock()
	return st
}

// sfHandleSampleRequest answers the one-hop sampling round: compute (and
// keep) the full local skyline, return a seeded deterministic sample of it.
func (p *Peer) sfHandleSampleRequest(m wire.FilterSet, tc *wire.TraceContext) {
	if tc != nil {
		p.traceStage(tc, telemetry.StageHandle, core.DeviceID(tc.Parent), 0)
	}
	st := p.sfLocalFor(sfQuerySpec(m))
	if st == nil {
		return
	}
	p.mu.Lock()
	if st.sampleSent {
		p.mu.Unlock()
		return
	}
	st.sampleSent = true
	p.mu.Unlock()
	sample := core.SampleTuples(st.skyline, int(m.SampleK), core.SampleSeed(m.Key, p.dev.ID))
	reply := wire.EncodeFilterSet(wire.FilterSet{
		Key: m.Key, Phase: wire.SFPhaseSampleReply, From: p.dev.ID, Tuples: sample,
	})
	rtc := p.traceCtx(m.Key, 1)
	p.traceStage(rtc, telemetry.StageReply, m.Key.Org, wire.FrameWireSize(len(reply), rtc != nil))
	p.send(m.Key.Org, reply, rtc)
}

// sfHandleSampleReply merges one peer's sample at the originator. Samples
// improve the final result but do not count toward the quorum; survivors
// deliberately re-include sampled tuples, so a lost sample loses nothing.
func (p *Peer) sfHandleSampleReply(m wire.FilterSet, tc *wire.TraceContext) {
	if tc != nil {
		p.traceStage(tc, telemetry.StageSample, m.From, 0)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sfOrig[m.Key] == nil {
		return
	}
	if pq := p.pending[m.Key]; pq != nil {
		pq.merged = core.Merge(pq.merged, m.Tuples)
	}
}

// sfHandleFilterFlood runs a peer's side of the collect phase: forward the
// flood once, prune the stored (or freshly computed) local skyline with the
// filter set, and return the survivors to the originator.
func (p *Peer) sfHandleFilterFlood(m wire.FilterSet, tc *wire.TraceContext) {
	p.mu.Lock()
	seen := p.sfSeen[m.Key]
	p.sfSeen[m.Key] = true
	neighbors := append([]core.DeviceID(nil), p.neighbors...)
	p.mu.Unlock()
	if seen {
		return
	}
	hop := uint8(1)
	if tc != nil {
		hop = tc.Hop
		p.traceStage(tc, telemetry.StageHandle, core.DeviceID(tc.Parent), 0)
	}
	fwd := wire.EncodeFilterSet(m)
	ftc := p.traceCtx(m.Key, hop+1)
	for _, nb := range neighbors {
		if nb != m.Key.Org {
			p.send(nb, fwd, ftc)
		}
	}
	st := p.sfLocalFor(sfQuerySpec(m))
	if st == nil {
		return
	}
	p.mu.Lock()
	if st.replied {
		p.mu.Unlock()
		return
	}
	st.replied = true
	p.mu.Unlock()
	surv := core.Survivors(st.skyline, m.Tuples)
	reply := wire.EncodeFilterSet(wire.FilterSet{
		Key: m.Key, Phase: wire.SFPhaseSurvivors, From: p.dev.ID, Tuples: surv,
	})
	rtc := p.traceCtx(m.Key, hop)
	p.traceStage(rtc, telemetry.StageReply, m.Key.Org, wire.FrameWireSize(len(reply), rtc != nil))
	p.send(m.Key.Org, reply, rtc)
}
