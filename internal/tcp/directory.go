package tcp

import (
	"sync"
	"time"

	"manetskyline/internal/core"
)

// LeaseRegistrar is the Resolver extension for TTL-leased registration.
// A leased entry must be refreshed by heartbeat before the TTL lapses or
// it decays: first to suspect (still resolvable, in case the peer only
// missed a beat), then to down, at which point Lookup stops returning it
// and the flood fan-out prunes the peer.
type LeaseRegistrar interface {
	RegisterLease(id core.DeviceID, addr string, ttl time.Duration) error
}

// Heartbeater is the Resolver extension peers use to refresh their lease.
// It reports false when the directory no longer knows the peer, which
// tells the caller to re-register in full.
type Heartbeater interface {
	Heartbeat(id core.DeviceID) bool
}

// LeaseState classifies a directory entry's liveness.
type LeaseState int

// Lease states. Permanent (TTL-less) entries are always LeaseLive.
const (
	// LeaseUnknown: no entry.
	LeaseUnknown LeaseState = iota
	// LeaseLive: within the TTL (or registered without one).
	LeaseLive
	// LeaseSuspect: TTL lapsed less than one grace period (= one TTL) ago;
	// still resolvable, since a single missed heartbeat is routine in an ad
	// hoc network.
	LeaseSuspect
	// LeaseDown: lapsed beyond grace; invisible to Lookup.
	LeaseDown
)

// String names the state for logs and tests.
func (s LeaseState) String() string {
	switch s {
	case LeaseLive:
		return "live"
	case LeaseSuspect:
		return "suspect"
	case LeaseDown:
		return "down"
	}
	return "unknown"
}

// dirEntry is one registration. A zero ttl means permanent.
type dirEntry struct {
	addr    string
	ttl     time.Duration
	expires time.Time
}

// state classifies the entry at time now.
func (e dirEntry) state(now time.Time) LeaseState {
	if e.ttl <= 0 || now.Before(e.expires) {
		return LeaseLive
	}
	if now.Before(e.expires.Add(e.ttl)) {
		return LeaseSuspect
	}
	return LeaseDown
}

// Directory is the in-process Resolver: a map all peers of one process
// share, with optional TTL leases. Multi-process deployments use
// DirectoryClient against a DirectoryServer instead.
type Directory struct {
	mu    sync.RWMutex
	addrs map[core.DeviceID]dirEntry
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{addrs: make(map[core.DeviceID]dirEntry)}
}

// Register records a peer's address permanently.
func (d *Directory) Register(id core.DeviceID, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addrs[id] = dirEntry{addr: addr}
}

// RegisterLease records a peer's address under a TTL lease; a non-positive
// ttl registers permanently.
func (d *Directory) RegisterLease(id core.DeviceID, addr string, ttl time.Duration) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := dirEntry{addr: addr, ttl: ttl}
	if ttl > 0 {
		e.expires = time.Now().Add(ttl)
	}
	d.addrs[id] = e
	return nil
}

// Heartbeat refreshes a leased entry; it reports false when the directory
// has no usable entry (never registered, or already down), telling the
// peer to re-register.
func (d *Directory) Heartbeat(id core.DeviceID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.addrs[id]
	if !ok || e.state(time.Now()) == LeaseDown {
		return false
	}
	if e.ttl > 0 {
		e.expires = time.Now().Add(e.ttl)
		d.addrs[id] = e
	}
	return true
}

// Lookup resolves a peer's address. Entries whose lease has decayed to
// down are invisible (and lazily removed).
func (d *Directory) Lookup(id core.DeviceID) (string, bool) {
	d.mu.RLock()
	e, ok := d.addrs[id]
	d.mu.RUnlock()
	if !ok {
		return "", false
	}
	if e.state(time.Now()) == LeaseDown {
		d.mu.Lock()
		// Re-check under the write lock: the peer may have re-registered.
		if cur, ok := d.addrs[id]; ok && cur.state(time.Now()) == LeaseDown {
			delete(d.addrs, id)
		}
		d.mu.Unlock()
		return "", false
	}
	return e.addr, true
}

// State reports the liveness of a peer's registration.
func (d *Directory) State(id core.DeviceID) LeaseState {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.addrs[id]
	if !ok {
		return LeaseUnknown
	}
	return e.state(time.Now())
}

// Sweep removes entries that have decayed to down and returns how many it
// evicted. The DirectoryServer's janitor calls it periodically; in-process
// directories also evict lazily in Lookup.
func (d *Directory) Sweep() int {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for id, e := range d.addrs {
		if e.state(now) == LeaseDown {
			delete(d.addrs, id)
			n++
		}
	}
	return n
}

// StateCounts tallies current registrations by lease state. Down entries
// still counted here are ones the janitor has not yet swept.
func (d *Directory) StateCounts() (live, suspect, down int) {
	now := time.Now()
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, e := range d.addrs {
		switch e.state(now) {
		case LeaseLive:
			live++
		case LeaseSuspect:
			suspect++
		case LeaseDown:
			down++
		}
	}
	return live, suspect, down
}

// Snapshot returns the resolvable (live or suspect) peers.
func (d *Directory) Snapshot() map[core.DeviceID]string {
	now := time.Now()
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[core.DeviceID]string, len(d.addrs))
	for id, e := range d.addrs {
		if e.state(now) != LeaseDown {
			out[id] = e.addr
		}
	}
	return out
}
