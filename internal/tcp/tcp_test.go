package tcp

import (
	"sync"
	"testing"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
	"manetskyline/internal/skyline"
	"manetskyline/internal/tuple"
)

// buildPeers starts a g×g network of TCP peers over a fresh dataset, linked
// by grid adjacency.
func buildPeers(t *testing.T, cfg Config, n, dim, g int, seed int64) ([]*Peer, []tuple.Tuple, func()) {
	t.Helper()
	c := gen.DefaultConfig(n, dim, gen.Independent, seed)
	data := gen.Generate(c)
	parts := gen.GridPartition(data, g, c.Space)
	dir := NewDirectory()
	peers := make([]*Peer, len(parts))
	for i, part := range parts {
		pos := gen.CellRect(i/g, i%g, g, c.Space).Center()
		p, err := NewPeer(core.DeviceID(i), part, c.Schema(), core.Under, true, pos, dir, cfg)
		if err != nil {
			t.Fatalf("NewPeer %d: %v", i, err)
		}
		peers[i] = p
	}
	for r := 0; r < g; r++ {
		for col := 0; col < g; col++ {
			i := r*g + col
			if col < g-1 {
				peers[i].AddNeighbor(peers[i+1].ID())
				peers[i+1].AddNeighbor(peers[i].ID())
			}
			if r < g-1 {
				peers[i].AddNeighbor(peers[i+g].ID())
				peers[i+g].AddNeighbor(peers[i].ID())
			}
		}
	}
	cleanup := func() {
		for _, p := range peers {
			p.Close()
		}
	}
	return peers, data, cleanup
}

func TestQueryOverRealSockets(t *testing.T) {
	peers, data, cleanup := buildPeers(t, DefaultConfig(), 3000, 2, 3, 5)
	defer cleanup()
	for _, org := range []int{0, 4, 8} {
		res, err := peers[org].Query(500, len(peers))
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		if !res.Complete {
			t.Fatalf("org %d: incomplete (%d results)", org, res.Results)
		}
		want := skyline.Constrained(data, peers[org].Pos(), 500)
		if !skyline.SetEqual(res.Skyline, want) {
			t.Errorf("org %d: got %d tuples, want %d", org, len(res.Skyline), len(want))
		}
	}
}

func TestConcurrentQueriesOverSockets(t *testing.T) {
	peers, data, cleanup := buildPeers(t, DefaultConfig(), 2000, 3, 2, 7)
	defer cleanup()
	var wg sync.WaitGroup
	errs := make(chan string, len(peers))
	for _, p := range peers {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := p.Query(600, len(peers))
			if err != nil || !res.Complete {
				errs <- "incomplete or failed"
				return
			}
			want := skyline.Constrained(data, p.Pos(), 600)
			if !skyline.SetEqual(res.Skyline, want) {
				errs <- "wrong result"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestDeadNeighborToleratedViaTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryTimeout = 300 * time.Millisecond
	peers, _, cleanup := buildPeers(t, cfg, 1000, 2, 2, 9)
	defer cleanup()
	// Kill one corner peer; queries from the opposite corner lose it (and
	// possibly nothing else — the grid has alternate routes).
	peers[3].Close()
	res, err := peers[0].Query(core.Unconstrained(), len(peers))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Results < 2 {
		t.Errorf("live peers should still respond, got %d results", res.Results)
	}
	if res.Complete {
		t.Errorf("quorum 1.0 with a dead peer should not complete")
	}
}

func TestCloseIsIdempotentAndQueryAfterCloseErrors(t *testing.T) {
	dir := NewDirectory()
	p, err := NewPeer(1, nil, tuple.NewSchema(2, 0, 10), core.Exact, true, tuple.Point{}, dir, DefaultConfig())
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	p.Close()
	p.Close()
	if _, err := p.Query(10, 1); err != ErrClosed {
		t.Errorf("Query after Close = %v, want ErrClosed", err)
	}
}

func TestDirectory(t *testing.T) {
	d := NewDirectory()
	if _, ok := d.Lookup(5); ok {
		t.Errorf("empty directory should miss")
	}
	d.Register(5, "127.0.0.1:1234")
	if a, ok := d.Lookup(5); !ok || a != "127.0.0.1:1234" {
		t.Errorf("Lookup = %v %v", a, ok)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []Config{
		{QueryTimeout: 0, Quorum: 1, DialTimeout: 1},
		{QueryTimeout: 1, Quorum: 0, DialTimeout: 1},
		{QueryTimeout: 1, Quorum: 2, DialTimeout: 1},
		{QueryTimeout: 1, Quorum: 1, DialTimeout: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestSinglePeerQuery(t *testing.T) {
	dir := NewDirectory()
	data := gen.Generate(gen.DefaultConfig(500, 2, gen.Independent, 3))
	p, err := NewPeer(0, data, tuple.NewSchema(2, 1, 1000), core.Under, true,
		tuple.Point{X: 500, Y: 500}, dir, DefaultConfig())
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	defer p.Close()
	res, err := p.Query(300, 1)
	if err != nil || !res.Complete {
		t.Fatalf("solo query: %v %v", err, res.Complete)
	}
	want := skyline.Constrained(data, p.Pos(), 300)
	if !skyline.SetEqual(res.Skyline, want) {
		t.Errorf("solo query wrong: %d vs %d", len(res.Skyline), len(want))
	}
}
