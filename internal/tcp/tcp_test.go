package tcp

import (
	"net"
	"sync"
	"testing"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
	"manetskyline/internal/leaktest"
	"manetskyline/internal/skyline"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
	"manetskyline/internal/wire"
)

// buildPeers starts a g×g network of TCP peers over a fresh dataset, linked
// by grid adjacency.
func buildPeers(t *testing.T, cfg Config, n, dim, g int, seed int64) ([]*Peer, []tuple.Tuple, func()) {
	t.Helper()
	c := gen.DefaultConfig(n, dim, gen.Independent, seed)
	data := gen.Generate(c)
	parts := gen.GridPartition(data, g, c.Space)
	dir := NewDirectory()
	peers := make([]*Peer, len(parts))
	for i, part := range parts {
		pos := gen.CellRect(i/g, i%g, g, c.Space).Center()
		p, err := NewPeer(core.DeviceID(i), part, c.Schema(), core.Under, true, pos, dir, cfg)
		if err != nil {
			t.Fatalf("NewPeer %d: %v", i, err)
		}
		peers[i] = p
	}
	for r := 0; r < g; r++ {
		for col := 0; col < g; col++ {
			i := r*g + col
			if col < g-1 {
				peers[i].AddNeighbor(peers[i+1].ID())
				peers[i+1].AddNeighbor(peers[i].ID())
			}
			if r < g-1 {
				peers[i].AddNeighbor(peers[i+g].ID())
				peers[i+g].AddNeighbor(peers[i].ID())
			}
		}
	}
	cleanup := func() {
		for _, p := range peers {
			p.Close()
		}
	}
	return peers, data, cleanup
}

func TestQueryOverRealSockets(t *testing.T) {
	peers, data, cleanup := buildPeers(t, DefaultConfig(), 3000, 2, 3, 5)
	defer cleanup()
	for _, org := range []int{0, 4, 8} {
		res, err := peers[org].Query(500, len(peers))
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		if !res.Complete {
			t.Fatalf("org %d: incomplete (%d results)", org, res.Results)
		}
		want := skyline.Constrained(data, peers[org].Pos(), 500)
		if !skyline.SetEqual(res.Skyline, want) {
			t.Errorf("org %d: got %d tuples, want %d", org, len(res.Skyline), len(want))
		}
	}
}

func TestConcurrentQueriesOverSockets(t *testing.T) {
	peers, data, cleanup := buildPeers(t, DefaultConfig(), 2000, 3, 2, 7)
	defer cleanup()
	var wg sync.WaitGroup
	errs := make(chan string, len(peers))
	for _, p := range peers {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := p.Query(600, len(peers))
			if err != nil || !res.Complete {
				errs <- "incomplete or failed"
				return
			}
			want := skyline.Constrained(data, p.Pos(), 600)
			if !skyline.SetEqual(res.Skyline, want) {
				errs <- "wrong result"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestDeadNeighborToleratedViaTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryTimeout = 300 * time.Millisecond
	peers, _, cleanup := buildPeers(t, cfg, 1000, 2, 2, 9)
	defer cleanup()
	// Kill one corner peer; queries from the opposite corner lose it (and
	// possibly nothing else — the grid has alternate routes).
	peers[3].Close()
	res, err := peers[0].Query(core.Unconstrained(), len(peers))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Results < 2 {
		t.Errorf("live peers should still respond, got %d results", res.Results)
	}
	if res.Complete {
		t.Errorf("quorum 1.0 with a dead peer should not complete")
	}
}

func TestCloseIsIdempotentAndQueryAfterCloseErrors(t *testing.T) {
	dir := NewDirectory()
	p, err := NewPeer(1, nil, tuple.NewSchema(2, 0, 10), core.Exact, true, tuple.Point{}, dir, DefaultConfig())
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	p.Close()
	p.Close()
	if _, err := p.Query(10, 1); err != ErrClosed {
		t.Errorf("Query after Close = %v, want ErrClosed", err)
	}
}

func TestDirectory(t *testing.T) {
	d := NewDirectory()
	if _, ok := d.Lookup(5); ok {
		t.Errorf("empty directory should miss")
	}
	d.Register(5, "127.0.0.1:1234")
	if a, ok := d.Lookup(5); !ok || a != "127.0.0.1:1234" {
		t.Errorf("Lookup = %v %v", a, ok)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []Config{
		{QueryTimeout: 0, Quorum: 1, DialTimeout: 1},
		{QueryTimeout: 1, Quorum: 0, DialTimeout: 1},
		{QueryTimeout: 1, Quorum: 2, DialTimeout: 1},
		{QueryTimeout: 1, Quorum: 1, DialTimeout: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

// TestDuplicateResultFrameDoesNotCompleteQuorum replays a duplicated Result
// frame at the originator: the quorum must count unique senders, not
// messages, or a retried/duplicated reply completes a query with devices
// missing (the bug this pins down).
func TestDuplicateResultFrameDoesNotCompleteQuorum(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig()
	cfg.QueryTimeout = 600 * time.Millisecond
	cfg.Registry = reg
	dir := NewDirectory()
	p, err := NewPeer(0, nil, tuple.NewSchema(2, 0, 10), core.Under, true, tuple.Point{}, dir, cfg)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	defer p.Close()

	// want = 2 results for totalPeers = 3; the peer has no neighbours, the
	// test injects replies over a raw socket.
	resCh := make(chan QueryResult, 1)
	go func() {
		r, err := p.Query(core.Unconstrained(), 3)
		if err != nil {
			t.Errorf("Query: %v", err)
		}
		resCh <- r
	}()
	time.Sleep(50 * time.Millisecond) // let the pending query register

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// The peer's first query is (Org 0, Cnt 1). Send the same sender's
	// result three times: it must count once.
	dup := wire.EncodeResult(wire.Result{
		Key: core.QueryKey{Org: 0, Cnt: 1}, From: 7,
		Tuples: []tuple.Tuple{{X: 1, Y: 1, Attrs: []float64{1, 1}}},
	})
	for i := 0; i < 3; i++ {
		if err := wire.WriteFrame(conn, dup); err != nil {
			t.Fatalf("write dup %d: %v", i, err)
		}
	}

	res := <-resCh
	if res.Complete {
		t.Errorf("duplicated result frames completed a 2-result quorum")
	}
	if res.Results != 1 {
		t.Errorf("unique results = %d, want 1", res.Results)
	}
	if got := reg.Snapshot().Counters["tcp_dup_results_total"]; got != 2 {
		t.Errorf("tcp_dup_results_total = %d, want 2", got)
	}
}

// TestDistinctSendersCompleteQuorumDespiteDuplicates is the positive half:
// duplicates are ignored, distinct senders still complete the query.
func TestDistinctSendersCompleteQuorumDespiteDuplicates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryTimeout = 2 * time.Second
	dir := NewDirectory()
	p, err := NewPeer(0, nil, tuple.NewSchema(2, 0, 10), core.Under, true, tuple.Point{}, dir, cfg)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	defer p.Close()

	resCh := make(chan QueryResult, 1)
	go func() {
		r, _ := p.Query(core.Unconstrained(), 3)
		resCh <- r
	}()
	time.Sleep(50 * time.Millisecond)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	key := core.QueryKey{Org: 0, Cnt: 1}
	for _, from := range []core.DeviceID{7, 7, 8} {
		f := wire.EncodeResult(wire.Result{Key: key, From: from})
		if err := wire.WriteFrame(conn, f); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	res := <-resCh
	if !res.Complete || res.Results != 2 {
		t.Errorf("Complete=%v Results=%d, want true 2", res.Complete, res.Results)
	}
}

// TestCorruptedFrameCountedNotSwallowed sends a truncated query body and an
// unknown-kind frame: both must be visible in the tcp_decode_failures /
// tcp_frames_dropped counters instead of vanishing silently.
func TestCorruptedFrameCountedNotSwallowed(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig()
	cfg.Registry = reg
	var logged []string
	var logMu sync.Mutex
	cfg.Logf = func(format string, args ...any) {
		logMu.Lock()
		logged = append(logged, format)
		logMu.Unlock()
	}
	dir := NewDirectory()
	p, err := NewPeer(0, nil, tuple.NewSchema(2, 0, 10), core.Under, true, tuple.Point{}, dir, cfg)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	defer p.Close()

	// Unknown kind: frame skipped, connection stays up.
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, []byte{0xEE, 1, 2, 3}); err != nil {
		t.Fatalf("write unknown kind: %v", err)
	}
	// Corrupted query: kind byte says query, body truncated → decode fails
	// and the peer closes the connection.
	if err := wire.WriteFrame(conn, []byte{byte(wire.KindQuery), 0x01}); err != nil {
		t.Fatalf("write corrupt frame: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		snap := reg.Snapshot()
		if snap.Counters["tcp_decode_failures_total"] >= 1 &&
			snap.Counters["tcp_frames_dropped_total"] >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["tcp_decode_failures_total"]; got != 1 {
		t.Errorf("tcp_decode_failures_total = %d, want 1", got)
	}
	if got := snap.Counters["tcp_frames_dropped_total"]; got != 1 {
		t.Errorf("tcp_frames_dropped_total = %d, want 1", got)
	}
	// The close reason was logged, not swallowed.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := wire.ReadFrame(conn); err == nil {
		t.Errorf("peer should close the connection after a decode failure")
	}
	logMu.Lock()
	defer logMu.Unlock()
	if len(logged) == 0 {
		t.Errorf("decode failure should be logged via Config.Logf")
	}
}

// TestPeerCloseLeaksNothing is the goroutine-leak gate over the supervised
// runtime: accept/serve/writer/heartbeat loops must all exit on Close,
// including with frames still queued to an unreachable neighbour.
func TestPeerCloseLeaksNothing(t *testing.T) {
	defer leaktest.Check(t)()
	cfg := DefaultConfig()
	cfg.QueryTimeout = 300 * time.Millisecond
	cfg.LeaseTTL = 200 * time.Millisecond
	peers, _, cleanup := buildPeers(t, cfg, 800, 2, 2, 21)
	// A neighbour that is registered but unreachable keeps a writer in its
	// dial-backoff loop until Close.
	dead := core.DeviceID(99)
	peers[0].dir.Register(dead, "127.0.0.1:1")
	peers[0].AddNeighbor(dead)
	if _, err := peers[0].Query(400, len(peers)); err != nil {
		t.Fatalf("Query: %v", err)
	}
	cleanup()
}

func TestSinglePeerQuery(t *testing.T) {
	dir := NewDirectory()
	data := gen.Generate(gen.DefaultConfig(500, 2, gen.Independent, 3))
	p, err := NewPeer(0, data, tuple.NewSchema(2, 1, 1000), core.Under, true,
		tuple.Point{X: 500, Y: 500}, dir, DefaultConfig())
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	defer p.Close()
	res, err := p.Query(300, 1)
	if err != nil || !res.Complete {
		t.Fatalf("solo query: %v %v", err, res.Complete)
	}
	want := skyline.Constrained(data, p.Pos(), 300)
	if !skyline.SetEqual(res.Skyline, want) {
		t.Errorf("solo query wrong: %d vs %d", len(res.Skyline), len(want))
	}
}
