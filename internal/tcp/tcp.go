// Package tcp runs the distributed skyline protocol over real TCP sockets
// using the binary wire format (internal/wire). Every peer owns a listener;
// queries flood the configured neighbour links and results return directly
// to the originator, whose address is resolved through a shared directory
// (the rendezvous a real deployment would provide via its bootstrap layer).
//
// This is the strongest form of the paper's real-device validation this
// reproduction can offer: the exact protocol logic of internal/core,
// serialized byte-for-byte, crossing genuine OS sockets between concurrent
// peers.
package tcp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
	"manetskyline/internal/wire"
)

// Directory is the in-process Resolver: a map all peers of one process
// share. Multi-process deployments use DirectoryClient against a
// DirectoryServer instead.
type Directory struct {
	mu    sync.RWMutex
	addrs map[core.DeviceID]string
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{addrs: make(map[core.DeviceID]string)}
}

// Register records a peer's address.
func (d *Directory) Register(id core.DeviceID, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addrs[id] = addr
}

// Lookup resolves a peer's address.
func (d *Directory) Lookup(id core.DeviceID) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	a, ok := d.addrs[id]
	return a, ok
}

// Config tunes a peer.
type Config struct {
	// QueryTimeout bounds how long Query waits for results.
	QueryTimeout time.Duration
	// Quorum is the fraction of other peers whose results complete a query.
	Quorum float64
	// DialTimeout bounds outgoing connection attempts.
	DialTimeout time.Duration
	// Registry, when non-nil, receives live tcp_* and core_* metrics from
	// this peer (exposed over /metrics by cmd/skypeer).
	Registry *telemetry.Registry
}

// DefaultConfig returns settings suitable for localhost demos and tests.
func DefaultConfig() Config {
	return Config{
		QueryTimeout: 3 * time.Second,
		Quorum:       1.0,
		DialTimeout:  time.Second,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.QueryTimeout <= 0 || c.DialTimeout <= 0 {
		return fmt.Errorf("tcp: non-positive timeout")
	}
	if c.Quorum <= 0 || c.Quorum > 1 {
		return fmt.Errorf("tcp: quorum %g outside (0,1]", c.Quorum)
	}
	return nil
}

// Peer is one TCP-connected device.
type Peer struct {
	cfg Config
	dev *core.Device
	pos tuple.Point
	dir Resolver
	ln  net.Listener

	mu        sync.Mutex
	neighbors []core.DeviceID
	pending   map[core.QueryKey]*pendingQuery
	closed    bool

	met Metrics

	wg sync.WaitGroup
}

type pendingQuery struct {
	merged  []tuple.Tuple
	results int
	want    int
	done    chan struct{}
	closed  bool
}

// NewPeer starts a peer listening on 127.0.0.1 (an ephemeral port),
// registers it in the directory, and begins serving.
func NewPeer(id core.DeviceID, ts []tuple.Tuple, schema tuple.Schema,
	mode core.Estimation, dynamic bool, pos tuple.Point,
	dir Resolver, cfg Config) (*Peer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Peer{
		cfg:     cfg,
		dev:     core.NewDevice(id, ts, schema, mode, dynamic),
		pos:     pos,
		dir:     dir,
		ln:      ln,
		pending: make(map[core.QueryKey]*pendingQuery),
		met:     NewMetrics(cfg.Registry),
	}
	p.dev.Met = core.NewMetrics(cfg.Registry, mode)
	dir.Register(id, ln.Addr().String())
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// ID returns the peer's device ID.
func (p *Peer) ID() core.DeviceID { return p.dev.ID }

// Addr returns the peer's listen address.
func (p *Peer) Addr() string { return p.ln.Addr().String() }

// Pos returns the peer's position.
func (p *Peer) Pos() tuple.Point { return p.pos }

// SetNumFilters configures how many filtering tuples this peer attaches
// when originating queries (§7 multi-filter extension).
func (p *Peer) SetNumFilters(k int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dev.NumFilters = k
}

// AddNeighbor declares a one-directional ad hoc link; call on both peers
// for a bidirectional link.
func (p *Peer) AddNeighbor(id core.DeviceID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, nb := range p.neighbors {
		if nb == id {
			return
		}
	}
	p.neighbors = append(p.neighbors, id)
}

// Close stops the listener and waits for in-flight handlers.
func (p *Peer) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.wg.Wait()
}

func (p *Peer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.met.ConnsAccepted.Inc()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serve(conn)
		}()
	}
}

// serve handles one inbound connection: a stream of framed messages.
func (p *Peer) serve(conn net.Conn) {
	defer conn.Close()
	p.met.OpenConns.Inc()
	defer p.met.OpenConns.Dec()
	for {
		msg, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		p.met.MessagesIn.Inc()
		p.met.BytesIn.Add(frameBytes(msg))
		kind, err := wire.Peek(msg)
		if err != nil {
			return
		}
		switch kind {
		case wire.KindQuery:
			q, err := wire.DecodeQuery(msg)
			if err != nil {
				return
			}
			p.handleQuery(q)
		case wire.KindResult:
			r, err := wire.DecodeResult(msg)
			if err != nil {
				return
			}
			p.handleResult(r)
		}
	}
}

// send dials the peer with the given ID and writes one framed message.
// Failures are silent: an unreachable neighbour is normal in an ad hoc
// network and the protocol's quorum/timeout machinery absorbs it.
func (p *Peer) send(to core.DeviceID, msg []byte) {
	addr, ok := p.dir.Lookup(to)
	if !ok {
		return
	}
	p.met.Dials.Inc()
	conn, err := net.DialTimeout("tcp", addr, p.cfg.DialTimeout)
	if err != nil {
		p.met.DialFailures.Inc()
		return
	}
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(p.cfg.DialTimeout))
	if wire.WriteFrame(conn, msg) == nil {
		p.met.MessagesOut.Inc()
		p.met.BytesOut.Add(frameBytes(msg))
	}
}

// handleQuery runs the remote side of the flood: process once, return the
// reduced skyline to the originator, keep flooding with the possibly
// upgraded filter.
func (p *Peer) handleQuery(q core.Query) {
	if !p.dev.FirstTime(q.Key()) {
		return
	}
	res := p.dev.Process(q)
	p.send(q.Org, wire.EncodeResult(wire.Result{
		Key: q.Key(), From: p.dev.ID, Tuples: res.Skyline,
	}))
	fwd := wire.EncodeQuery(core.Forwardable(q, res))
	p.mu.Lock()
	neighbors := append([]core.DeviceID(nil), p.neighbors...)
	p.mu.Unlock()
	for _, nb := range neighbors {
		if nb != q.Org {
			p.send(nb, fwd)
		}
	}
}

// handleResult merges one device's reply at the originator.
func (p *Peer) handleResult(r wire.Result) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pq := p.pending[r.Key]
	if pq == nil {
		return
	}
	pq.merged = core.Merge(pq.merged, r.Tuples)
	pq.results++
	if !pq.closed && pq.results >= pq.want {
		pq.closed = true
		close(pq.done)
	}
}

// QueryResult reports a distributed query's outcome.
type QueryResult struct {
	Skyline  []tuple.Tuple
	Results  int
	Complete bool
	Elapsed  time.Duration
}

// ErrClosed is returned when querying a closed peer.
var ErrClosed = errors.New("tcp: peer closed")

// Query originates a distributed constrained skyline query at this peer,
// floods it over the neighbour links, and blocks until the quorum of other
// peers responded or the timeout elapsed. totalPeers is the network size
// the quorum is computed against.
func (p *Peer) Query(d float64, totalPeers int) (QueryResult, error) {
	start := time.Now()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return QueryResult{}, ErrClosed
	}
	p.mu.Unlock()

	q, res := p.dev.Originate(p.pos, d)
	want := int(float64(totalPeers-1)*p.cfg.Quorum + 0.999999)
	if want < 0 {
		want = 0
	}
	pq := &pendingQuery{merged: res.Skyline, want: want, done: make(chan struct{})}
	p.mu.Lock()
	p.pending[q.Key()] = pq
	neighbors := append([]core.DeviceID(nil), p.neighbors...)
	p.mu.Unlock()

	complete := want == 0
	if !complete {
		enc := wire.EncodeQuery(q)
		for _, nb := range neighbors {
			p.send(nb, enc)
		}
		timer := time.NewTimer(p.cfg.QueryTimeout)
		defer timer.Stop()
		select {
		case <-pq.done:
			complete = true
		case <-timer.C:
		}
	}

	p.mu.Lock()
	out := QueryResult{
		Skyline:  append([]tuple.Tuple(nil), pq.merged...),
		Results:  pq.results,
		Complete: complete,
		Elapsed:  time.Since(start),
	}
	delete(p.pending, q.Key())
	p.mu.Unlock()
	p.met.QueriesIssued.Inc()
	p.met.QueryLatency.Observe(out.Elapsed.Seconds())
	if complete {
		p.met.QueriesCompleted.Inc()
	}
	return out, nil
}
