// Package tcp runs the distributed skyline protocol over real TCP sockets
// using the binary wire format (internal/wire). Every peer owns a listener;
// queries flood the configured neighbour links and results return directly
// to the originator, whose address is resolved through a shared directory
// (the rendezvous a real deployment would provide via its bootstrap layer).
//
// The transport is supervised and self-healing: every neighbour link is a
// managed connection with a bounded send queue, reconnect under capped
// exponential backoff, read/write deadlines, retry with dead-letter
// accounting, and idle reaping. The directory can grant TTL leases that
// peers keep alive by heartbeat, so crashed peers expire out of the flood
// fan-out instead of black-holing traffic forever.
//
// This is the strongest form of the paper's real-device validation this
// reproduction can offer: the exact protocol logic of internal/core,
// serialized byte-for-byte, crossing genuine OS sockets between concurrent
// peers — and surviving the churn internal/chaos injects underneath it.
package tcp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
	"manetskyline/internal/wire"
)

// Config tunes a peer.
type Config struct {
	// QueryTimeout bounds how long Query waits for results.
	QueryTimeout time.Duration
	// Quorum is the fraction of other peers whose results complete a query.
	Quorum float64
	// SFSampleK is QuerySF's per-peer sample budget (0 ⇒ 2).
	SFSampleK int
	// SFFilterK is QuerySF's broadcast filter-set size (0 ⇒ 2).
	SFFilterK int
	// SFSampleWait is how long QuerySF collects neighbour samples before
	// selecting and flooding the filter set (0 ⇒ 150ms). It spends part of
	// the QueryTimeout budget, so keep it well below it.
	SFSampleWait time.Duration
	// DialTimeout bounds outgoing connection attempts.
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write on an established connection
	// (0 ⇒ DialTimeout).
	WriteTimeout time.Duration
	// ReadIdleTimeout closes an inbound connection that stays silent this
	// long (0 ⇒ 2 minutes).
	ReadIdleTimeout time.Duration
	// SendQueueLen bounds each neighbour link's send queue; a full queue
	// dead-letters new frames (0 ⇒ 128).
	SendQueueLen int
	// RetryTimeout bounds how long a queued frame is retried across
	// reconnects before it is dead-lettered (0 ⇒ QueryTimeout).
	RetryTimeout time.Duration
	// ReconnectBackoff is the delay before the first redial of a failed
	// link; each further attempt doubles it up to ReconnectBackoffMax
	// (0 ⇒ 25ms, capped at 1s).
	ReconnectBackoff    time.Duration
	ReconnectBackoffMax time.Duration
	// IdleConnTimeout reaps an outbound connection with nothing to send
	// (0 ⇒ 30s).
	IdleConnTimeout time.Duration
	// DrainTimeout bounds the best-effort flush of queued frames during
	// Close (0 ⇒ 200ms).
	DrainTimeout time.Duration
	// BreakerThreshold arms a per-neighbour circuit breaker: this many
	// consecutive dial failures open it, after which frames to the peer are
	// dropped immediately (failing their quorum slot) instead of burning
	// the retry budget. 0 disables breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting one
	// half-open probe through (0 ⇒ 2s when breakers are armed).
	BreakerCooldown time.Duration
	// LeaseTTL, when positive, registers the peer with a directory lease of
	// this duration and starts a heartbeat loop that keeps it alive; an
	// expired lease makes the peer invisible to Lookup, pruning it from
	// every other peer's flood fan-out. Zero keeps the original permanent
	// registration.
	LeaseTTL time.Duration
	// HeartbeatInterval is the lease refresh period (0 ⇒ LeaseTTL/3).
	HeartbeatInterval time.Duration
	// Registry, when non-nil, receives live tcp_* and core_* metrics from
	// this peer (exposed over /metrics by cmd/skypeer).
	Registry *telemetry.Registry
	// Spans, when non-nil, enables cross-peer causal tracing: every frame
	// this peer sends carries a wire.TraceContext and both ends of every
	// hop record transport stages (enqueue → dial → write, decode → handle
	// → reply) into this log, exposed at /trace.jsonl and merged across
	// peers by cmd/skytrace. Nil keeps frames on the v1 wire format and the
	// tracing path at zero allocations.
	Spans *telemetry.SpanLog
	// Flight, when non-nil, records failure-path events (dead letters,
	// decode failures, dial failures, reconnects, heartbeat failures) into
	// a flight-recorder ring for post-mortem dumps.
	Flight *telemetry.FlightRecorder
	// Logf, when non-nil, receives transport diagnostics (dropped frames,
	// decode failures, dead letters) that are otherwise only counted.
	Logf func(format string, args ...any)
}

// DefaultConfig returns settings suitable for localhost demos and tests.
func DefaultConfig() Config {
	return Config{
		QueryTimeout: 3 * time.Second,
		Quorum:       1.0,
		DialTimeout:  time.Second,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.QueryTimeout <= 0 || c.DialTimeout <= 0 {
		return fmt.Errorf("tcp: non-positive timeout")
	}
	if c.Quorum <= 0 || c.Quorum > 1 {
		return fmt.Errorf("tcp: quorum %g outside (0,1]", c.Quorum)
	}
	if c.WriteTimeout < 0 || c.ReadIdleTimeout < 0 || c.RetryTimeout < 0 ||
		c.ReconnectBackoff < 0 || c.ReconnectBackoffMax < 0 ||
		c.IdleConnTimeout < 0 || c.DrainTimeout < 0 ||
		c.LeaseTTL < 0 || c.HeartbeatInterval < 0 || c.SendQueueLen < 0 ||
		c.BreakerThreshold < 0 || c.BreakerCooldown < 0 {
		return fmt.Errorf("tcp: negative transport tuning field")
	}
	if c.SFSampleK < 0 || c.SFFilterK < 0 || c.SFSampleWait < 0 {
		return fmt.Errorf("tcp: negative SF tuning field")
	}
	return nil
}

// withDefaults fills the zero values of the transport tuning fields, so a
// Config carrying only the original three knobs behaves sensibly.
func (c Config) withDefaults() Config {
	if c.WriteTimeout == 0 {
		c.WriteTimeout = c.DialTimeout
	}
	if c.ReadIdleTimeout == 0 {
		c.ReadIdleTimeout = 2 * time.Minute
	}
	if c.SendQueueLen == 0 {
		c.SendQueueLen = 128
	}
	if c.RetryTimeout == 0 {
		c.RetryTimeout = c.QueryTimeout
	}
	if c.ReconnectBackoff == 0 {
		c.ReconnectBackoff = 25 * time.Millisecond
	}
	if c.ReconnectBackoffMax == 0 {
		c.ReconnectBackoffMax = time.Second
	}
	if c.IdleConnTimeout == 0 {
		c.IdleConnTimeout = 30 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 200 * time.Millisecond
	}
	if c.HeartbeatInterval == 0 && c.LeaseTTL > 0 {
		c.HeartbeatInterval = c.LeaseTTL / 3
	}
	if c.BreakerCooldown == 0 && c.BreakerThreshold > 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.SFSampleK == 0 {
		c.SFSampleK = 2
	}
	if c.SFFilterK == 0 {
		c.SFFilterK = 2
	}
	if c.SFSampleWait == 0 {
		c.SFSampleWait = 150 * time.Millisecond
	}
	return c
}

// errUnresolved marks a dial attempt against a peer the directory does not
// (or no longer does) vouch for.
var errUnresolved = errors.New("tcp: peer not in directory")

// Peer is one TCP-connected device.
type Peer struct {
	cfg Config
	dev *core.Device
	pos tuple.Point
	dir Resolver
	ln  net.Listener

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	neighbors []core.DeviceID
	pending   map[core.QueryKey]*pendingQuery
	sfOrig    map[core.QueryKey]*sfOrigQuery
	sfLocal   map[core.QueryKey]*sfLocalState
	sfSeen    map[core.QueryKey]bool
	conns     map[core.DeviceID]*peerConn
	inbound   map[net.Conn]struct{}
	closed    bool

	met Metrics

	wg sync.WaitGroup
}

type pendingQuery struct {
	merged  []tuple.Tuple
	from    map[core.DeviceID]bool
	results int
	want    int
	done    chan struct{}
	closed  bool
	// sent is how many initial flood frames the originator issued; failed
	// tracks neighbours whose tagged frame dead-lettered (queue overflow,
	// retry exhaustion, open breaker, or unresolvable peer). When every
	// flood frame failed and nothing answered, no result can ever arrive:
	// the query wakes immediately with deadErr instead of idling to its
	// deadline.
	sent    int
	failed  map[core.DeviceID]bool
	deadErr error
}

// NewPeer starts a peer listening on 127.0.0.1 (an ephemeral port),
// registers it in the directory (with a lease when Config.LeaseTTL is set),
// and begins serving.
func NewPeer(id core.DeviceID, ts []tuple.Tuple, schema tuple.Schema,
	mode core.Estimation, dynamic bool, pos tuple.Point,
	dir Resolver, cfg Config) (*Peer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Peer{
		cfg:     cfg,
		dev:     core.NewDevice(id, ts, schema, mode, dynamic),
		pos:     pos,
		dir:     dir,
		ln:      ln,
		ctx:     ctx,
		cancel:  cancel,
		pending: make(map[core.QueryKey]*pendingQuery),
		sfOrig:  make(map[core.QueryKey]*sfOrigQuery),
		sfLocal: make(map[core.QueryKey]*sfLocalState),
		sfSeen:  make(map[core.QueryKey]bool),
		conns:   make(map[core.DeviceID]*peerConn),
		inbound: make(map[net.Conn]struct{}),
		met:     NewMetrics(cfg.Registry),
	}
	p.dev.Met = core.NewMetrics(cfg.Registry, mode)
	if err := p.register(); err != nil {
		cancel()
		ln.Close()
		return nil, err
	}
	p.wg.Add(1)
	go p.acceptLoop()
	if cfg.LeaseTTL > 0 {
		p.wg.Add(1)
		go p.heartbeatLoop()
	}
	return p, nil
}

// register performs the initial directory registration, leased when
// configured and the resolver supports leases.
func (p *Peer) register() error {
	addr := p.ln.Addr().String()
	if p.cfg.LeaseTTL > 0 {
		if lr, ok := p.dir.(LeaseRegistrar); ok {
			return lr.RegisterLease(p.dev.ID, addr, p.cfg.LeaseTTL)
		}
	}
	p.dir.Register(p.dev.ID, addr)
	return nil
}

// heartbeatLoop keeps the directory lease alive. A heartbeat the directory
// rejects (it forgot us — restart, sweep, or server loss) falls back to a
// full re-registration.
func (p *Peer) heartbeatLoop() {
	defer p.wg.Done()
	hb, hasHB := p.dir.(Heartbeater)
	t := time.NewTicker(p.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.met.Heartbeats.Inc()
			if hasHB && hb.Heartbeat(p.dev.ID) {
				continue
			}
			if err := p.register(); err != nil {
				p.met.HeartbeatFailures.Inc()
				p.flightEvent("heartbeat_failure", nil, "lease re-registration failed: %v", err)
				p.logf("tcp: peer %d: lease re-registration failed: %v", p.dev.ID, err)
			}
		case <-p.ctx.Done():
			return
		}
	}
}

// logf forwards to Config.Logf when set.
func (p *Peer) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// ID returns the peer's device ID.
func (p *Peer) ID() core.DeviceID { return p.dev.ID }

// Addr returns the peer's listen address.
func (p *Peer) Addr() string { return p.ln.Addr().String() }

// Pos returns the peer's position.
func (p *Peer) Pos() tuple.Point { return p.pos }

// SetNumFilters configures how many filtering tuples this peer attaches
// when originating queries (§7 multi-filter extension).
func (p *Peer) SetNumFilters(k int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dev.NumFilters = k
}

// AddNeighbor declares a one-directional ad hoc link; call on both peers
// for a bidirectional link.
func (p *Peer) AddNeighbor(id core.DeviceID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, nb := range p.neighbors {
		if nb == id {
			return
		}
	}
	p.neighbors = append(p.neighbors, id)
}

// Close shuts the peer down gracefully: pending queries complete
// immediately with whatever merged so far, queued outbound frames get one
// best-effort flush within DrainTimeout, and every listener, connection,
// and goroutine (accept, serve, writer, heartbeat) is torn down before
// Close returns.
func (p *Peer) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, pq := range p.pending {
		if !pq.closed {
			pq.closed = true
			close(pq.done)
		}
	}
	inbound := make([]net.Conn, 0, len(p.inbound))
	for c := range p.inbound {
		inbound = append(inbound, c)
	}
	p.mu.Unlock()

	p.cancel()
	p.ln.Close()
	for _, c := range inbound {
		c.Close()
	}
	p.wg.Wait()
}

func (p *Peer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.met.ConnsAccepted.Inc()
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.inbound[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serve(conn)
			p.mu.Lock()
			delete(p.inbound, conn)
			p.mu.Unlock()
		}()
	}
}

// serve handles one inbound connection: a stream of framed messages with a
// per-frame read deadline. Malformed frames are counted and logged, never
// silently swallowed: a failed decode closes the connection (the stream can
// no longer be trusted), an unknown kind skips just that frame.
func (p *Peer) serve(conn net.Conn) {
	defer conn.Close()
	p.met.OpenConns.Inc()
	defer p.met.OpenConns.Dec()
	for {
		conn.SetReadDeadline(time.Now().Add(p.cfg.ReadIdleTimeout))
		msg, ctx, traced, err := wire.ReadFrameCtx(conn)
		if err != nil {
			return // EOF, idle timeout, or shutdown
		}
		wireSize := wire.FrameWireSize(len(msg), traced)
		p.met.MessagesIn.Inc()
		p.met.BytesIn.Add(int64(wireSize))
		var tc *wire.TraceContext
		if traced {
			tc = &ctx
			p.traceStage(tc, telemetry.StageDecode, core.DeviceID(tc.Parent), wireSize)
		}
		kind, err := wire.Peek(msg)
		if err != nil {
			// The frame itself parsed; an unrecognized kind is skippable
			// (framing stays intact), not a reason to kill the stream.
			p.met.FramesDropped.Inc()
			p.logf("tcp: peer %d: dropping unknown frame from %s: %v", p.dev.ID, conn.RemoteAddr(), err)
			continue
		}
		switch kind {
		case wire.KindQuery:
			q, err := wire.DecodeQuery(msg)
			if err != nil {
				p.met.DecodeFailures.Inc()
				p.flightEvent("decode_failure", tc, "bad query frame from %s: %v", conn.RemoteAddr(), err)
				p.logf("tcp: peer %d: closing %s: bad query frame: %v", p.dev.ID, conn.RemoteAddr(), err)
				return
			}
			p.handleQuery(q, tc)
		case wire.KindResult:
			r, err := wire.DecodeResult(msg)
			if err != nil {
				p.met.DecodeFailures.Inc()
				p.flightEvent("decode_failure", tc, "bad result frame from %s: %v", conn.RemoteAddr(), err)
				p.logf("tcp: peer %d: closing %s: bad result frame: %v", p.dev.ID, conn.RemoteAddr(), err)
				return
			}
			p.handleResult(r, tc)
		case wire.KindFilterSet:
			m, err := wire.DecodeFilterSet(msg)
			if err != nil {
				p.met.DecodeFailures.Inc()
				p.flightEvent("decode_failure", tc, "bad filter-set frame from %s: %v", conn.RemoteAddr(), err)
				p.logf("tcp: peer %d: closing %s: bad filter-set frame: %v", p.dev.ID, conn.RemoteAddr(), err)
				return
			}
			p.handleFilterSet(m, tc)
		default:
			// A kind this peer recognizes but has no protocol role for —
			// e.g. a gateway reject frame reaching a plain peer. Skip it
			// like an unknown kind: counted, logged, connection kept.
			p.met.FramesDropped.Inc()
			p.logf("tcp: peer %d: dropping unhandled frame kind %d from %s", p.dev.ID, kind, conn.RemoteAddr())
		}
	}
}

// send queues one framed message (with its trace context, nil when tracing
// is off) for the managed link to the peer with the given ID. A peer the
// directory has expired (lease lapsed) is skipped outright — the
// liveness-aware fan-out that stops traffic to the dead. Enqueued frames
// survive transient dial/write failures: the link's writer retries under
// backoff until the frame exceeds RetryTimeout.
func (p *Peer) send(to core.DeviceID, msg []byte, tc *wire.TraceContext) {
	p.sendTagged(to, msg, tc, nil)
}

// sendTagged is send with an optional query-key tag: a tagged frame that
// can never be delivered (peer unresolvable, queue overflow, retry window
// exhausted, breaker open) fails that query's quorum slot immediately via
// failSlot, so the originator learns instead of idling to its deadline.
func (p *Peer) sendTagged(to core.DeviceID, msg []byte, tc *wire.TraceContext, fk *core.QueryKey) {
	if _, ok := p.dir.Lookup(to); !ok {
		p.met.SendsSuppressed.Inc()
		p.failSlot(fk, to, "peer not in directory")
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	pc := p.conns[to]
	if pc == nil {
		pc = newPeerConn(p, to)
		p.conns[to] = pc
	}
	p.mu.Unlock()
	pc.enqueue(msg, tc, fk)
}

// ErrUnreachable reports a query whose every initial flood frame
// dead-lettered before any result arrived: no peer ever heard the query,
// so waiting out the deadline could not have produced anything. The
// QueryResult returned alongside carries the originator's local skyline.
var ErrUnreachable = errors.New("tcp: query flood dead-lettered to every neighbour")

// failSlot records that the tagged flood frame for query key fk to
// neighbour to was abandoned for the given cause. When every flood frame
// has failed and no result has arrived, the pending query is woken with an
// explicit ErrUnreachable instead of idling until its deadline. A nil fk
// (untagged frame) is a no-op.
func (p *Peer) failSlot(fk *core.QueryKey, to core.DeviceID, cause string) {
	if fk == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pq := p.pending[*fk]
	if pq == nil || pq.closed || pq.failed[to] {
		return
	}
	pq.failed[to] = true
	p.met.DeadLetterSlots.Inc()
	if pq.deadErr == nil {
		pq.deadErr = fmt.Errorf("%w (first: peer %d, %s)", ErrUnreachable, to, cause)
	}
	if pq.sent > 0 && len(pq.failed) >= pq.sent && pq.results == 0 {
		pq.closed = true
		close(pq.done)
	}
}

// handleQuery runs the remote side of the flood: process once, return the
// reduced skyline to the originator, keep flooding with the possibly
// upgraded filter. tc is the inbound frame's trace context (nil when
// untraced); replies reuse its hop number, forwards increment it.
func (p *Peer) handleQuery(q core.Query, tc *wire.TraceContext) {
	if !p.dev.FirstTime(q.Key()) {
		return
	}
	hop := uint8(1)
	if tc != nil {
		hop = tc.Hop
		p.traceStage(tc, telemetry.StageHandle, core.DeviceID(tc.Parent), 0)
	}
	res := p.dev.Process(q)
	reply := wire.EncodeResult(wire.Result{
		Key: q.Key(), From: p.dev.ID, Tuples: res.Skyline,
	})
	rtc := p.traceCtx(q.Key(), hop)
	p.traceStage(rtc, telemetry.StageReply, q.Org, wire.FrameWireSize(len(reply), rtc != nil))
	p.send(q.Org, reply, rtc)
	fwd := wire.EncodeQuery(core.Forwardable(q, res))
	ftc := p.traceCtx(q.Key(), hop+1)
	p.mu.Lock()
	neighbors := append([]core.DeviceID(nil), p.neighbors...)
	p.mu.Unlock()
	for _, nb := range neighbors {
		if nb != q.Org {
			p.send(nb, fwd, ftc)
		}
	}
}

// handleResult merges one device's reply at the originator. Results are
// deduplicated by sender: a retried or chaos-duplicated frame must not
// count twice toward the quorum (it would complete a query early with
// devices missing).
func (p *Peer) handleResult(r wire.Result, tc *wire.TraceContext) {
	if tc != nil {
		p.traceStage(tc, telemetry.StageResult, core.DeviceID(r.From), 0)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pq := p.pending[r.Key]
	if pq == nil {
		return
	}
	if pq.from[r.From] {
		p.met.DupResults.Inc()
		return
	}
	// A peer whose direct flood frame dead-lettered can still answer — the
	// flood reaches it through other neighbours. Un-fail its slot so the
	// unreachability accounting stays honest.
	delete(pq.failed, r.From)
	pq.from[r.From] = true
	pq.merged = core.Merge(pq.merged, r.Tuples)
	pq.results++
	if !pq.closed && pq.results >= pq.want {
		pq.closed = true
		close(pq.done)
	}
}

// QueryResult reports a distributed query's outcome.
type QueryResult struct {
	Skyline  []tuple.Tuple
	Results  int
	Complete bool
	Elapsed  time.Duration
}

// ErrClosed is returned when querying a closed peer.
var ErrClosed = errors.New("tcp: peer closed")

// Query originates a distributed constrained skyline query at this peer,
// floods it over the neighbour links, and blocks until the quorum of other
// peers responded or the timeout elapsed. totalPeers is the network size
// the quorum is computed against. Closing the peer releases a blocked
// Query immediately with the results merged so far.
func (p *Peer) Query(d float64, totalPeers int) (QueryResult, error) {
	start := time.Now()
	q, res := p.dev.Originate(p.pos, d)
	if p.cfg.Spans != nil {
		p.cfg.Spans.Begin(spanKey(q.Key()), nowSecs())
	}
	want := int(float64(totalPeers-1)*p.cfg.Quorum + 0.999999)
	if want < 0 {
		want = 0
	}
	pq := &pendingQuery{
		merged: res.Skyline,
		from:   make(map[core.DeviceID]bool),
		failed: make(map[core.DeviceID]bool),
		want:   want,
		done:   make(chan struct{}),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return QueryResult{}, ErrClosed
	}
	p.pending[q.Key()] = pq
	neighbors := append([]core.DeviceID(nil), p.neighbors...)
	p.mu.Unlock()

	complete := want == 0
	if !complete {
		key := q.Key()
		enc := wire.EncodeQuery(q)
		qtc := p.traceCtx(key, 1)
		for _, nb := range neighbors {
			p.sendTagged(nb, enc, qtc, &key)
		}
		// Arm the unreachability check only after every flood frame is
		// tagged out, so a fast failSlot during the loop cannot fire early.
		p.mu.Lock()
		pq.sent = len(neighbors)
		if !pq.closed && pq.sent > 0 && len(pq.failed) >= pq.sent && pq.results == 0 {
			pq.closed = true
			close(pq.done)
		}
		p.mu.Unlock()
		timer := time.NewTimer(p.cfg.QueryTimeout)
		defer timer.Stop()
		select {
		case <-pq.done:
		case <-timer.C:
		}
	}

	p.mu.Lock()
	complete = complete || pq.results >= pq.want
	var qerr error
	if !complete && pq.results == 0 && pq.deadErr != nil &&
		pq.sent > 0 && len(pq.failed) >= pq.sent {
		qerr = pq.deadErr
	}
	out := QueryResult{
		Skyline:  append([]tuple.Tuple(nil), pq.merged...),
		Results:  pq.results,
		Complete: complete,
		Elapsed:  time.Since(start),
	}
	delete(p.pending, q.Key())
	p.mu.Unlock()
	p.met.QueriesIssued.Inc()
	p.met.QueryLatency.Observe(out.Elapsed.Seconds())
	if complete {
		p.met.QueriesCompleted.Inc()
	}
	if p.cfg.Spans != nil {
		if !complete {
			p.cfg.Spans.MarkPartial(spanKey(q.Key()))
		}
		p.cfg.Spans.Complete(spanKey(q.Key()), nowSecs(), len(out.Skyline))
	}
	return out, qerr
}
