package tcp

import (
	"net"
	"testing"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/skyline"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
	"manetskyline/internal/wire"
)

// TestQuerySFOverRealSockets runs the SF strategy across a 3×3 grid of real
// TCP peers: fault-free, the sampled-filter protocol must return exactly the
// centralized constrained skyline, same as Query.
func TestQuerySFOverRealSockets(t *testing.T) {
	peers, data, cleanup := buildPeers(t, DefaultConfig(), 3000, 2, 3, 5)
	defer cleanup()
	for _, org := range []int{0, 4, 8} {
		res, err := peers[org].QuerySF(500, len(peers))
		if err != nil {
			t.Fatalf("QuerySF: %v", err)
		}
		if !res.Complete {
			t.Fatalf("org %d: incomplete (%d results)", org, res.Results)
		}
		want := skyline.Constrained(data, peers[org].Pos(), 500)
		if !skyline.SetEqual(res.Skyline, want) {
			t.Errorf("org %d: got %d tuples, want %d", org, len(res.Skyline), len(want))
		}
	}
}

// TestQuerySFMatchesQueryAcrossPeers interleaves BF and SF queries from
// different originators on one grid: both strategies must agree with the
// centralized answer, and the per-originator query log must keep them from
// interfering.
func TestQuerySFMatchesQueryAcrossPeers(t *testing.T) {
	peers, data, cleanup := buildPeers(t, DefaultConfig(), 2000, 3, 2, 7)
	defer cleanup()
	for i, p := range peers {
		var res QueryResult
		var err error
		if i%2 == 0 {
			res, err = p.QuerySF(600, len(peers))
		} else {
			res, err = p.Query(600, len(peers))
		}
		if err != nil || !res.Complete {
			t.Fatalf("peer %d: err=%v complete=%v", i, err, res.Complete)
		}
		want := skyline.Constrained(data, p.Pos(), 600)
		if !skyline.SetEqual(res.Skyline, want) {
			t.Errorf("peer %d: got %d tuples, want %d", i, len(res.Skyline), len(want))
		}
	}
}

// TestMixedVersionFrameRejectedNotCrashed pins the forward-compatibility
// contract a pre-SF peer relies on when an SF-era neighbour floods it: an
// unknown message kind is dropped (counted in tcp_frames_dropped_total)
// while the connection keeps serving frames the peer does understand —
// mixed-version grids degrade, they do not crash or wedge.
func TestMixedVersionFrameRejectedNotCrashed(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig()
	cfg.QueryTimeout = 2 * time.Second
	cfg.Registry = reg
	dir := NewDirectory()
	p, err := NewPeer(0, nil, tuple.NewSchema(2, 0, 10), core.Under, true, tuple.Point{}, dir, cfg)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	defer p.Close()

	resCh := make(chan QueryResult, 1)
	go func() {
		r, _ := p.Query(core.Unconstrained(), 2)
		resCh <- r
	}()
	time.Sleep(50 * time.Millisecond)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// A frame of a kind this build does not know — the position a pre-SF
	// peer is in when a KindFilterSet frame arrives. It must be skipped, not
	// kill the stream: the valid result that follows on the SAME connection
	// must still complete the quorum.
	future := append([]byte{byte(wire.KindFilterSet) + 1}, 1, 2, 3, 4)
	if err := wire.WriteFrame(conn, future); err != nil {
		t.Fatalf("write future-kind frame: %v", err)
	}
	ok := wire.EncodeResult(wire.Result{Key: core.QueryKey{Org: 0, Cnt: 1}, From: 9})
	if err := wire.WriteFrame(conn, ok); err != nil {
		t.Fatalf("write result: %v", err)
	}
	res := <-resCh
	if !res.Complete || res.Results != 1 {
		t.Errorf("connection wedged after unknown kind: Complete=%v Results=%d", res.Complete, res.Results)
	}
	if got := reg.Snapshot().Counters["tcp_frames_dropped_total"]; got != 1 {
		t.Errorf("tcp_frames_dropped_total = %d, want 1", got)
	}
}

// TestMalformedFilterSetClosesConnection sends a well-framed KindFilterSet
// message with a hostile body: the decode failure must be counted and close
// the connection (the stream can no longer be trusted), never panic.
func TestMalformedFilterSetClosesConnection(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig()
	cfg.Registry = reg
	dir := NewDirectory()
	p, err := NewPeer(0, nil, tuple.NewSchema(2, 0, 10), core.Under, true, tuple.Point{}, dir, cfg)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, []byte{byte(wire.KindFilterSet), 0x01}); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := wire.ReadFrame(conn); err == nil {
		t.Errorf("peer should close the connection after a filter-set decode failure")
	}
	if got := reg.Snapshot().Counters["tcp_decode_failures_total"]; got != 1 {
		t.Errorf("tcp_decode_failures_total = %d, want 1", got)
	}
}

// TestSFConfigValidate covers the new SF tuning fields.
func TestSFConfigValidate(t *testing.T) {
	good := DefaultConfig()
	good.SFSampleK, good.SFFilterK, good.SFSampleWait = 4, 3, 50*time.Millisecond
	if err := good.Validate(); err != nil {
		t.Fatalf("valid SF config rejected: %v", err)
	}
	for i, mut := range []func(*Config){
		func(c *Config) { c.SFSampleK = -1 },
		func(c *Config) { c.SFFilterK = -1 },
		func(c *Config) { c.SFSampleWait = -time.Second },
	} {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d should be invalid", i)
		}
	}
}

// TestSinglePeerQuerySF: quorum zero completes locally, like Query.
func TestSinglePeerQuerySF(t *testing.T) {
	dir := NewDirectory()
	p, err := NewPeer(0, nil, tuple.NewSchema(2, 0, 10), core.Under, true, tuple.Point{}, dir, DefaultConfig())
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	defer p.Close()
	res, err := p.QuerySF(300, 1)
	if err != nil || !res.Complete {
		t.Fatalf("solo SF query: %v %v", err, res.Complete)
	}
}
