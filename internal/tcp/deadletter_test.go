package tcp

import (
	"errors"
	"net"
	"testing"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
	"manetskyline/internal/leaktest"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
	"manetskyline/internal/wire"
)

// deadAddr returns a localhost address that refuses connections: the port
// of a listener that was opened and immediately closed.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDeadLetterFailsQuorumSlotImmediately is the regression test for the
// silent dead-letter drop: a query whose only flood frame exhausts
// RetryTimeout used to idle until the full QueryTimeout even though no
// result could ever arrive. It must now wake as soon as the frame is
// dead-lettered, return an explicit ErrUnreachable, and count the failed
// slot in tcp_deadletter_total.
func TestDeadLetterFailsQuorumSlotImmediately(t *testing.T) {
	defer leaktest.Check(t)()
	reg := telemetry.NewRegistry()
	gcfg := gen.DefaultConfig(100, 2, gen.Independent, 7)
	data := gen.Generate(gcfg)

	dir := NewDirectory()
	dir.Register(1, deadAddr(t)) // resolvable but refusing: dial fails, frame retries
	cfg := DefaultConfig()
	cfg.Registry = reg
	cfg.QueryTimeout = 5 * time.Second
	cfg.RetryTimeout = 150 * time.Millisecond
	p0, err := NewPeer(0, data, gcfg.Schema(), core.Under, true, tuple.Point{X: 500, Y: 500}, dir, cfg)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	defer p0.Close()
	p0.AddNeighbor(1)

	start := time.Now()
	res, err := p0.Query(core.Unconstrained(), 2)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Query error = %v, want ErrUnreachable", err)
	}
	if res.Complete || res.Results != 0 {
		t.Errorf("unreachable query: Complete=%v Results=%d, want incomplete/0", res.Complete, res.Results)
	}
	if len(res.Skyline) == 0 {
		t.Errorf("unreachable query lost the local skyline")
	}
	// Well before the 5s deadline: the dead-letter at ~150ms must wake it.
	if elapsed > 2*time.Second {
		t.Errorf("query idled %v after dead-letter; want prompt failure", elapsed)
	}
	if got := reg.Snapshot().Counters["tcp_deadletter_total"]; got != 1 {
		t.Errorf("tcp_deadletter_total = %d, want 1", got)
	}
}

// TestUnresolvableNeighborFailsSlotWithoutDialing covers the fastest
// dead-letter path: a neighbour the directory cannot resolve fails the
// quorum slot at send time, so the query returns immediately.
func TestUnresolvableNeighborFailsSlotWithoutDialing(t *testing.T) {
	defer leaktest.Check(t)()
	reg := telemetry.NewRegistry()
	dir := NewDirectory()
	cfg := DefaultConfig()
	cfg.Registry = reg
	cfg.QueryTimeout = 5 * time.Second
	p0, err := NewPeer(0, nil, tuple.NewSchema(2, 0, 10), core.Under, true, tuple.Point{}, dir, cfg)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	defer p0.Close()
	p0.AddNeighbor(7) // never registered

	start := time.Now()
	_, err = p0.Query(core.Unconstrained(), 2)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Query error = %v, want ErrUnreachable", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("query took %v; an unresolvable flood should fail instantly", elapsed)
	}
	if got := reg.Snapshot().Counters["tcp_deadletter_total"]; got != 1 {
		t.Errorf("tcp_deadletter_total = %d, want 1", got)
	}
}

// TestDeadLetterDoesNotFireWithLiveNeighbors pins the conservative side of
// the fail-fast: when only one of two flood frames dead-letters, results
// from the live neighbour must still complete the quorum the normal way.
func TestDeadLetterDoesNotFireWithLiveNeighbors(t *testing.T) {
	defer leaktest.Check(t)()
	gcfg := gen.DefaultConfig(200, 2, gen.Independent, 11)
	data := gen.Generate(gcfg)
	half := len(data) / 2

	dir := NewDirectory()
	dir.Register(2, deadAddr(t))
	cfg := DefaultConfig()
	cfg.QueryTimeout = 3 * time.Second
	cfg.RetryTimeout = 100 * time.Millisecond
	cfg.Quorum = 0.5 // one of the two other peers suffices
	p0, err := NewPeer(0, data[:half], gcfg.Schema(), core.Under, true, tuple.Point{X: 500, Y: 500}, dir, cfg)
	if err != nil {
		t.Fatalf("NewPeer 0: %v", err)
	}
	defer p0.Close()
	p1, err := NewPeer(1, data[half:], gcfg.Schema(), core.Under, true, tuple.Point{X: 500, Y: 500}, dir, cfg)
	if err != nil {
		t.Fatalf("NewPeer 1: %v", err)
	}
	defer p1.Close()
	p0.AddNeighbor(1)
	p0.AddNeighbor(2) // dead

	res, err := p0.Query(core.Unconstrained(), 3)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Complete || res.Results != 1 {
		t.Errorf("query with one live neighbour: Complete=%v Results=%d, want complete/1", res.Complete, res.Results)
	}
}

// TestRejectFrameDroppedNotCrashed pins the mixed-version contract for the
// gateway's reject frame: a plain (pre-gateway) peer that receives a
// KindReject frame skips it — counted in tcp_frames_dropped_total — while
// the connection keeps serving frames the peer does understand.
func TestRejectFrameDroppedNotCrashed(t *testing.T) {
	defer leaktest.Check(t)()
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig()
	cfg.QueryTimeout = 2 * time.Second
	cfg.Registry = reg
	dir := NewDirectory()
	p, err := NewPeer(0, nil, tuple.NewSchema(2, 0, 10), core.Under, true, tuple.Point{}, dir, cfg)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	defer p.Close()

	resCh := make(chan QueryResult, 1)
	go func() {
		r, _ := p.Query(core.Unconstrained(), 2)
		resCh <- r
	}()
	time.Sleep(50 * time.Millisecond)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// The position a pre-gateway peer is in when a gateway reject frame
	// arrives: the kind parses but the peer has no protocol role for it.
	// It must be skipped, not kill the stream — the valid result that
	// follows on the SAME connection must still complete the quorum.
	rej := wire.EncodeReject(wire.Reject{
		Key: core.QueryKey{Org: 0, Cnt: 1}, Code: wire.RejectShedRate, RetryAfterMs: 25,
	})
	if err := wire.WriteFrame(conn, rej); err != nil {
		t.Fatalf("write reject frame: %v", err)
	}
	ok := wire.EncodeResult(wire.Result{Key: core.QueryKey{Org: 0, Cnt: 1}, From: 9})
	if err := wire.WriteFrame(conn, ok); err != nil {
		t.Fatalf("write result: %v", err)
	}
	res := <-resCh
	if !res.Complete || res.Results != 1 {
		t.Errorf("connection wedged after reject frame: Complete=%v Results=%d", res.Complete, res.Results)
	}
	if got := reg.Snapshot().Counters["tcp_frames_dropped_total"]; got != 1 {
		t.Errorf("tcp_frames_dropped_total = %d, want 1", got)
	}
}
