package gen

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"manetskyline/internal/tuple"
)

func TestGenerateDeterministic(t *testing.T) {
	c := DefaultConfig(500, 3, Independent, 99)
	a, b := Generate(c), Generate(c)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed should reproduce the same dataset")
	}
	c2 := c
	c2.Seed = 100
	if reflect.DeepEqual(a, Generate(c2)) {
		t.Fatalf("different seeds should differ")
	}
}

func TestGenerateBoundsAndShape(t *testing.T) {
	for _, dist := range []Distribution{Independent, AntiCorrelated, Correlated} {
		c := DefaultConfig(2000, 4, dist, 5)
		ts := Generate(c)
		if len(ts) != c.N {
			t.Fatalf("%v: got %d tuples, want %d", dist, len(ts), c.N)
		}
		for _, tp := range ts {
			if tp.X < 0 || tp.X > c.Space || tp.Y < 0 || tp.Y > c.Space {
				t.Fatalf("%v: position %v outside spatial domain", dist, tp.Pos())
			}
			if tp.Dim() != c.Dim {
				t.Fatalf("%v: dimensionality %d, want %d", dist, tp.Dim(), c.Dim)
			}
			for i, v := range tp.Attrs {
				if v < c.AttrMin-1e-9 || v > c.AttrMax+1e-9 {
					t.Fatalf("%v: attr %d value %v outside [%v,%v]", dist, i, v, c.AttrMin, c.AttrMax)
				}
			}
		}
	}
}

func TestGenerateQuantization(t *testing.T) {
	c := HandheldConfig(1000, 2, Independent, 1)
	ts := Generate(c)
	distinct := map[float64]bool{}
	for _, tp := range ts {
		for _, v := range tp.Attrs {
			// Every value must be a multiple of 0.1 within rounding error.
			k := v / 0.1
			if math.Abs(k-math.Round(k)) > 1e-9 {
				t.Fatalf("value %v is not on the 0.1 grid", v)
			}
			distinct[math.Round(k)] = true
		}
	}
	if len(distinct) > c.Distinct {
		t.Fatalf("got %d distinct values, want at most %d", len(distinct), c.Distinct)
	}
	// With 2000 draws over 100 values, expect to see most of the domain.
	if len(distinct) < 90 {
		t.Fatalf("only %d distinct values seen; generator looks degenerate", len(distinct))
	}
}

// Anti-correlated data must produce much larger skylines than independent
// data at the same cardinality — the defining property that the paper's AC
// experiments rely on.
func TestAntiCorrelatedIsAntiCorrelated(t *testing.T) {
	n, dim := 5000, 2
	in := Generate(DefaultConfig(n, dim, Independent, 7))
	ac := Generate(DefaultConfig(n, dim, AntiCorrelated, 7))
	co := Generate(DefaultConfig(n, dim, Correlated, 7))
	skySize := func(ts []tuple.Tuple) int {
		var sky []tuple.Tuple
	next:
		for _, cand := range ts {
			for _, s := range sky {
				if s.Dominates(cand) {
					continue next
				}
			}
			keep := sky[:0]
			for _, s := range sky {
				if !cand.Dominates(s) {
					keep = append(keep, s)
				}
			}
			sky = append(keep, cand)
		}
		return len(sky)
	}
	sIN, sAC, sCO := skySize(in), skySize(ac), skySize(co)
	t.Logf("skyline sizes: IN=%d AC=%d CO=%d", sIN, sAC, sCO)
	if sAC <= 2*sIN {
		t.Errorf("anti-correlated skyline (%d) should far exceed independent (%d)", sAC, sIN)
	}
	if sCO > sIN {
		t.Errorf("correlated skyline (%d) should not exceed independent (%d)", sCO, sIN)
	}
}

func TestAntiCorrelatedSumConcentration(t *testing.T) {
	c := DefaultConfig(3000, 3, AntiCorrelated, 21)
	c.Distinct = 0 // raw values
	ts := Generate(c)
	span := c.AttrMax - c.AttrMin
	var mean, m2 float64
	for i, tp := range ts {
		sum := 0.0
		for _, v := range tp.Attrs {
			sum += (v - c.AttrMin) / span
		}
		sum /= float64(c.Dim) // normalized mean coordinate
		delta := sum - mean
		mean += delta / float64(i+1)
		m2 += delta * (sum - mean)
	}
	sd := math.Sqrt(m2 / float64(len(ts)))
	if math.Abs(mean-0.5) > 0.05 {
		t.Errorf("normalized AC coordinate mean %v, want ≈0.5", mean)
	}
	// Vector means concentrate near the plane: spread well below uniform's
	// per-axis sd (0.29/√3 ≈ 0.17 for the mean of 3 independents).
	if sd > 0.15 {
		t.Errorf("AC plane spread sd=%v, want < 0.15", sd)
	}
}

func TestGridPartition(t *testing.T) {
	c := DefaultConfig(3000, 2, Independent, 13)
	ts := Generate(c)
	g := 5
	cells := GridPartition(ts, g, c.Space)
	if len(cells) != g*g {
		t.Fatalf("got %d cells, want %d", len(cells), g*g)
	}
	total := 0
	for i, cell := range cells {
		row, col := i/g, i%g
		rect := CellRect(row, col, g, c.Space)
		for _, tp := range cell {
			if !rect.Contains(tp.Pos()) {
				t.Fatalf("tuple %v assigned to cell (%d,%d) with rect %+v", tp.Pos(), row, col, rect)
			}
		}
		total += len(cell)
	}
	if total != len(ts) {
		t.Fatalf("partition lost tuples: %d vs %d", total, len(ts))
	}
}

func TestGridPartitionBoundaries(t *testing.T) {
	ts := []tuple.Tuple{
		{X: 0, Y: 0, Attrs: []float64{1}},
		{X: 1000, Y: 1000, Attrs: []float64{1}}, // top-right corner
		{X: 500, Y: 500, Attrs: []float64{1}},   // interior cell boundary
	}
	cells := GridPartition(ts, 2, 1000)
	if len(cells[0]) != 1 {
		t.Errorf("origin should land in cell 0")
	}
	if len(cells[3]) != 2 {
		t.Errorf("corner and midpoint should land in last cell, got %d", len(cells[3]))
	}
}

func TestOverlapPartition(t *testing.T) {
	c := DefaultConfig(5000, 2, Independent, 17)
	ts := Generate(c)
	cells := OverlapPartition(ts, 4, c.Space, 0.3, 99)
	total := 0
	for _, cell := range cells {
		total += len(cell)
	}
	if total <= len(ts) {
		t.Errorf("overlap partition should duplicate some tuples: %d vs %d", total, len(ts))
	}
	if total > 2*len(ts) {
		t.Errorf("overlap partition duplicated too much: %d vs %d", total, len(ts))
	}
	// Zero overlap must be identical to plain partitioning.
	a := GridPartition(ts, 4, c.Space)
	b := OverlapPartition(ts, 4, c.Space, 0, 99)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("zero-overlap partition should equal grid partition")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ts := Generate(DefaultConfig(200, 3, AntiCorrelated, 31))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ts); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !reflect.DeepEqual(ts, back) {
		t.Fatalf("CSV round trip altered data")
	}
}

func TestCSVEmptyAndMalformed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatalf("WriteCSV(nil): %v", err)
	}
	if ts, err := ReadCSV(&buf); err != nil || len(ts) != 0 {
		t.Fatalf("empty round trip: %v %v", ts, err)
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1,2\n")); err == nil {
		t.Errorf("bad header should be rejected")
	}
	if _, err := ReadCSV(bytes.NewBufferString("x,y,p1\n1,2,notanumber\n")); err == nil {
		t.Errorf("non-numeric field should be rejected")
	}
}

func TestSchemaMatchesConfig(t *testing.T) {
	c := DefaultConfig(10, 4, Independent, 1)
	s := c.Schema()
	if s.Dim() != 4 || s.Min[0] != c.AttrMin || s.Max[3] != c.AttrMax {
		t.Errorf("schema %+v does not match config", s)
	}
}

func TestDistributionString(t *testing.T) {
	if Independent.String() != "IN" || AntiCorrelated.String() != "AC" || Correlated.String() != "CO" {
		t.Errorf("unexpected distribution names")
	}
	if Distribution(99).String() == "" {
		t.Errorf("unknown distribution should still render")
	}
}

func TestGeneratePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("negative N", func() { Generate(Config{N: -1, Dim: 2, AttrMax: 1}) })
	mustPanic("zero dim", func() { Generate(Config{N: 1, Dim: 0, AttrMax: 1}) })
	mustPanic("inverted range", func() { Generate(Config{N: 1, Dim: 1, AttrMin: 2, AttrMax: 1}) })
	mustPanic("bad distribution", func() {
		Generate(Config{N: 1, Dim: 1, AttrMax: 1, Dist: Distribution(42)})
	})
	mustPanic("bad grid", func() { GridPartition(nil, 0, 100) })
}
