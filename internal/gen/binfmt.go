package gen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"manetskyline/internal/tuple"
)

// Binary dataset format, for moving the paper-scale relations (100K-1M
// tuples) around faster and smaller than CSV:
//
//	magic "MSKY" version:uint8 dim:uint16 count:uint64
//	then count × (x:float64 y:float64 attrs:float64^dim), little-endian.
const (
	binMagic   = "MSKY"
	binVersion = 1
)

// maxBinCount bounds declared cardinality on read (corrupt-header guard).
const maxBinCount = 1 << 30

// WriteBin writes tuples in the binary dataset format. All tuples must
// share one dimensionality.
func WriteBin(w io.Writer, ts []tuple.Tuple) error {
	bw := bufio.NewWriter(w)
	dim := 0
	if len(ts) > 0 {
		dim = ts[0].Dim()
	}
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binVersion); err != nil {
		return err
	}
	var hdr [10]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(dim))
	binary.LittleEndian.PutUint64(hdr[2:], uint64(len(ts)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	writeF := func(v float64) error {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, err := bw.Write(buf[:])
		return err
	}
	for i, t := range ts {
		if t.Dim() != dim {
			return fmt.Errorf("gen: tuple %d has %d attributes, want %d", i, t.Dim(), dim)
		}
		if err := writeF(t.X); err != nil {
			return err
		}
		if err := writeF(t.Y); err != nil {
			return err
		}
		for _, v := range t.Attrs {
			if err := writeF(v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBin parses a dataset written by WriteBin.
func ReadBin(r io.Reader) ([]tuple.Tuple, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+1+10)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("gen: bad binary header: %w", err)
	}
	if string(head[:4]) != binMagic {
		return nil, fmt.Errorf("gen: bad magic %q", head[:4])
	}
	if head[4] != binVersion {
		return nil, fmt.Errorf("gen: unsupported version %d", head[4])
	}
	dim := int(binary.LittleEndian.Uint16(head[5:]))
	count := binary.LittleEndian.Uint64(head[7:])
	if count > maxBinCount {
		return nil, fmt.Errorf("gen: header claims %d tuples", count)
	}
	row := make([]byte, (2+dim)*8)
	out := make([]tuple.Tuple, 0, count)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, row); err != nil {
			return nil, fmt.Errorf("gen: truncated at tuple %d: %w", i, err)
		}
		t := tuple.Tuple{
			X:     math.Float64frombits(binary.LittleEndian.Uint64(row)),
			Y:     math.Float64frombits(binary.LittleEndian.Uint64(row[8:])),
			Attrs: make([]float64, dim),
		}
		for j := 0; j < dim; j++ {
			t.Attrs[j] = math.Float64frombits(binary.LittleEndian.Uint64(row[16+8*j:]))
		}
		out = append(out, t)
	}
	// Trailing bytes indicate corruption or a concatenated stream misuse.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("gen: trailing bytes after %d tuples", count)
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}
