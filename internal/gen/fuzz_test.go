package gen

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV: arbitrary input must never panic, and everything the parser
// accepts must survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteCSV(&seed, Generate(DefaultConfig(5, 3, Independent, 1)))
	f.Add(seed.String())
	f.Add("x,y,p1\n1,2,3\n")
	f.Add("x,y\n")
	f.Add("")
	f.Add("x,y,p1\n1,2\n")
	f.Fuzz(func(t *testing.T, s string) {
		ts, err := ReadCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ts); err != nil {
			t.Fatalf("accepted data failed to re-encode: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-encoded data failed to parse: %v", err)
		}
		if len(back) != len(ts) {
			t.Fatalf("round trip changed cardinality: %d vs %d", len(back), len(ts))
		}
	})
}
