package gen

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"manetskyline/internal/tuple"
)

// WriteCSV writes tuples as CSV rows "x,y,p1,...,pn" with a header line.
func WriteCSV(w io.Writer, ts []tuple.Tuple) error {
	cw := csv.NewWriter(w)
	if len(ts) == 0 {
		cw.Flush()
		return cw.Error()
	}
	header := []string{"x", "y"}
	for i := 0; i < ts[0].Dim(); i++ {
		header = append(header, fmt.Sprintf("p%d", i+1))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, t := range ts {
		if t.Dim() != ts[0].Dim() {
			return fmt.Errorf("gen: mixed dimensionality %d vs %d", t.Dim(), ts[0].Dim())
		}
		row[0] = strconv.FormatFloat(t.X, 'g', -1, 64)
		row[1] = strconv.FormatFloat(t.Y, 'g', -1, 64)
		for i, v := range t.Attrs {
			row[2+i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses tuples written by WriteCSV. The first line must be a
// header; its width fixes the dimensionality.
func ReadCSV(r io.Reader) ([]tuple.Tuple, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err == io.EOF {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(header) < 2 || header[0] != "x" || header[1] != "y" {
		return nil, fmt.Errorf("gen: malformed CSV header %v", header)
	}
	dim := len(header) - 2
	var out []tuple.Tuple
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if len(rec) != dim+2 {
			return nil, fmt.Errorf("gen: line %d has %d fields, want %d", line, len(rec), dim+2)
		}
		t := tuple.Tuple{Attrs: make([]float64, dim)}
		if t.X, err = strconv.ParseFloat(rec[0], 64); err != nil {
			return nil, fmt.Errorf("gen: line %d x: %v", line, err)
		}
		if t.Y, err = strconv.ParseFloat(rec[1], 64); err != nil {
			return nil, fmt.Errorf("gen: line %d y: %v", line, err)
		}
		for i := 0; i < dim; i++ {
			if t.Attrs[i], err = strconv.ParseFloat(rec[2+i], 64); err != nil {
				return nil, fmt.Errorf("gen: line %d p%d: %v", line, i+1, err)
			}
		}
		out = append(out, t)
	}
}
