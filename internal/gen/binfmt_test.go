package gen

import (
	"bytes"
	"reflect"
	"testing"

	"manetskyline/internal/tuple"
)

func TestBinRoundTrip(t *testing.T) {
	ts := Generate(DefaultConfig(1000, 4, AntiCorrelated, 3))
	var buf bytes.Buffer
	if err := WriteBin(&buf, ts); err != nil {
		t.Fatalf("WriteBin: %v", err)
	}
	back, err := ReadBin(&buf)
	if err != nil {
		t.Fatalf("ReadBin: %v", err)
	}
	if !reflect.DeepEqual(ts, back) {
		t.Fatalf("binary round trip altered data")
	}
}

func TestBinEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBin(&buf, nil); err != nil {
		t.Fatalf("WriteBin(nil): %v", err)
	}
	back, err := ReadBin(&buf)
	if err != nil || len(back) != 0 {
		t.Fatalf("empty round trip: %v %v", back, err)
	}
}

func TestBinSmallerThanCSV(t *testing.T) {
	ts := Generate(DefaultConfig(5000, 3, Independent, 7))
	var bin, csv bytes.Buffer
	if err := WriteBin(&bin, ts); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csv, ts); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= csv.Len() {
		t.Errorf("binary (%d) should be smaller than CSV (%d)", bin.Len(), csv.Len())
	}
}

func TestBinRejectsCorruption(t *testing.T) {
	ts := Generate(DefaultConfig(10, 2, Independent, 1))
	var buf bytes.Buffer
	if err := WriteBin(&buf, ts); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	for n := 0; n < len(good); n += 7 {
		if _, err := ReadBin(bytes.NewReader(good[:n])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	bad := append(append([]byte{}, good...), 0)
	if _, err := ReadBin(bytes.NewReader(bad)); err == nil {
		t.Errorf("trailing byte accepted")
	}
	wrongMagic := append([]byte{}, good...)
	wrongMagic[0] = 'X'
	if _, err := ReadBin(bytes.NewReader(wrongMagic)); err == nil {
		t.Errorf("wrong magic accepted")
	}
	wrongVer := append([]byte{}, good...)
	wrongVer[4] = 99
	if _, err := ReadBin(bytes.NewReader(wrongVer)); err == nil {
		t.Errorf("wrong version accepted")
	}
	hostile := append([]byte{}, good[:15]...)
	for i := 7; i < 15; i++ {
		hostile[i] = 0xFF
	}
	if _, err := ReadBin(bytes.NewReader(hostile)); err == nil {
		t.Errorf("hostile count accepted")
	}
}

func TestBinMixedDimRejected(t *testing.T) {
	var buf bytes.Buffer
	bad := []tuple.Tuple{{Attrs: []float64{1, 2}}, {Attrs: []float64{1}}}
	if err := WriteBin(&buf, bad); err == nil {
		t.Errorf("mixed dimensionality should be rejected")
	}
}
