// Package gen produces the synthetic workloads of the paper's evaluation:
// tuples with uniformly distributed spatial positions in a square domain and
// non-spatial attributes drawn from the standard skyline-benchmark
// distributions (independent, correlated, anti-correlated) introduced by
// Börzsönyi et al., plus the uniform-grid partitioner that splits a global
// relation into the per-device local relations of §5.2.1.
//
// All generation is deterministic for a given seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"manetskyline/internal/tuple"
)

// Distribution selects how non-spatial attribute vectors are drawn.
type Distribution int

const (
	// Independent draws every attribute uniformly and independently; the
	// paper's "IN" datasets.
	Independent Distribution = iota
	// AntiCorrelated draws vectors near the hyperplane Σp_i ≈ const so that
	// a tuple good in one dimension tends to be bad in the others; the
	// paper's "AC" datasets. Skylines are large under this distribution.
	AntiCorrelated
	// Correlated draws vectors clustered around the main diagonal, producing
	// very small skylines. The paper does not evaluate on correlated data;
	// it is included for completeness of the generator substrate.
	Correlated
)

// String names the distribution the way the paper's figures do.
func (d Distribution) String() string {
	switch d {
	case Independent:
		return "IN"
	case AntiCorrelated:
		return "AC"
	case Correlated:
		return "CO"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Config describes one synthetic global relation.
type Config struct {
	// N is the number of tuples in the global relation.
	N int
	// Dim is the number of non-spatial attributes (the paper uses 2-5).
	Dim int
	// Dist selects the attribute distribution.
	Dist Distribution
	// Space is the spatial extent; positions are uniform in
	// [0,Space]×[0,Space]. The paper uses 1000×1000.
	Space float64
	// AttrMin and AttrMax bound every attribute value. The paper uses
	// [0, 1000] integers in the simulation and the domain {0.0..9.9} on the
	// handheld tests.
	AttrMin, AttrMax float64
	// Distinct, when > 0, quantizes each attribute to that many equally
	// spaced distinct values across [AttrMin, AttrMax]. The paper's
	// handheld datasets use 100 distinct values so a byte ID suffices.
	Distinct int
	// Seed makes the dataset reproducible.
	Seed int64
}

// DefaultConfig returns the simulation-experiment defaults from Table 6:
// integer-quantized attributes in [1,1000] over a 1000×1000 space.
func DefaultConfig(n, dim int, dist Distribution, seed int64) Config {
	return Config{
		N: n, Dim: dim, Dist: dist,
		Space:   1000,
		AttrMin: 1, AttrMax: 1000,
		Distinct: 1000,
		Seed:     seed,
	}
}

// HandheldConfig returns the local-optimization-experiment defaults of §5.1:
// attributes on the 100-value grid {0.0, 0.1, ..., 9.9}.
func HandheldConfig(n, dim int, dist Distribution, seed int64) Config {
	return Config{
		N: n, Dim: dim, Dist: dist,
		Space:   1000,
		AttrMin: 0, AttrMax: 9.9,
		Distinct: 100,
		Seed:     seed,
	}
}

// Schema returns the tuple schema matching the configuration, with exact
// global bounds — what a device with full domain knowledge would use for
// exact VDR computation.
func (c Config) Schema() tuple.Schema {
	return tuple.NewSchema(c.Dim, c.AttrMin, c.AttrMax)
}

// Generate materializes the global relation described by c.
func Generate(c Config) []tuple.Tuple {
	if c.N < 0 {
		panic(fmt.Sprintf("gen: negative cardinality %d", c.N))
	}
	if c.Dim <= 0 {
		panic(fmt.Sprintf("gen: non-positive dimensionality %d", c.Dim))
	}
	if c.AttrMax < c.AttrMin {
		panic(fmt.Sprintf("gen: attribute range [%g,%g] is inverted", c.AttrMin, c.AttrMax))
	}
	r := rand.New(rand.NewSource(c.Seed))
	out := make([]tuple.Tuple, c.N)
	for i := range out {
		out[i] = tuple.Tuple{
			X:     r.Float64() * c.Space,
			Y:     r.Float64() * c.Space,
			Attrs: attrVector(r, c),
		}
	}
	return out
}

// attrVector draws one attribute vector in [0,1]^dim according to the
// distribution and then maps it onto [AttrMin, AttrMax] with optional
// quantization.
func attrVector(r *rand.Rand, c Config) []float64 {
	v := make([]float64, c.Dim)
	switch c.Dist {
	case Independent:
		for i := range v {
			v[i] = r.Float64()
		}
	case AntiCorrelated:
		antiCorrelated(r, v)
	case Correlated:
		correlated(r, v)
	default:
		panic(fmt.Sprintf("gen: unknown distribution %d", int(c.Dist)))
	}
	for i := range v {
		v[i] = c.AttrMin + v[i]*(c.AttrMax-c.AttrMin)
		if c.Distinct > 1 {
			step := (c.AttrMax - c.AttrMin) / float64(c.Distinct-1)
			k := math.Round((v[i] - c.AttrMin) / step)
			v[i] = c.AttrMin + k*step
		} else if c.Distinct == 1 {
			v[i] = c.AttrMin
		}
	}
	return v
}

// antiPlaneSD controls how tightly anti-correlated points concentrate around
// the Σv_i = dim/2 plane. A thin band keeps points mutually incomparable
// (large skylines); a thick band lets low-sum points dominate the rest.
const antiPlaneSD = 0.02

// truncNorm draws from N(mu, sd) truncated to [0,1].
func truncNorm(r *rand.Rand, mu, sd float64) float64 {
	for {
		v := mu + r.NormFloat64()*sd
		if v >= 0 && v <= 1 {
			return v
		}
	}
}

// antiCorrelated fills v following the classic Börzsönyi generator: pick a
// plane offset from a truncated normal centred at 0.5, start every
// coordinate at that offset, then apply random pairwise transfers between
// adjacent dimensions. The transfers keep the coordinate sum constant, so
// every point lies on a plane Σv_i = dim·offset — a point good in one
// dimension is correspondingly bad in another, which is what makes skylines
// large under this distribution.
func antiCorrelated(r *rand.Rand, v []float64) {
	dim := len(v)
retry:
	for attempt := 0; ; attempt++ {
		plane := truncNorm(r, 0.5, antiPlaneSD)
		l := plane
		if l > 0.5 {
			l = 1 - plane
		}
		for i := range v {
			v[i] = plane
		}
		for i := 0; i < dim-1; i++ {
			h := (r.Float64()*2 - 1) * l
			v[i] += h
			v[i+1] -= h
		}
		// Transfers on 3+ dimensions can push a middle coordinate outside
		// [0,1]; redraw in that case (clamping would distort the plane).
		for _, x := range v {
			if x < 0 || x > 1 {
				if attempt < 64 {
					continue retry
				}
				for i := range v {
					v[i] = clamp01(v[i])
				}
				return
			}
		}
		return
	}
}

// correlated fills v with positively correlated coordinates: a common level
// drawn from a truncated normal plus a small per-coordinate jitter. Points
// hug the main diagonal, so a handful of low-level points dominate nearly
// everything and skylines are tiny.
func correlated(r *rand.Rand, v []float64) {
	level := truncNorm(r, 0.5, 0.25)
	l := level
	if l > 0.5 {
		l = 1 - level
	}
	for i := range v {
		v[i] = clamp01(level + r.NormFloat64()*l/6)
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// GridPartition splits a global relation into g×g local relations by a
// uniform grid over [0,space]×[0,space], exactly as §5.2.1 assigns each
// device the tuples of one grid cell. Cell (row r, column c) is element
// r*g+c of the result. Every tuple lands in exactly one cell; points on the
// top or right boundary belong to the last cell in that direction.
func GridPartition(ts []tuple.Tuple, g int, space float64) [][]tuple.Tuple {
	if g <= 0 {
		panic(fmt.Sprintf("gen: non-positive grid size %d", g))
	}
	cells := make([][]tuple.Tuple, g*g)
	cw := space / float64(g)
	for _, t := range ts {
		col := cellIndex(t.X, cw, g)
		row := cellIndex(t.Y, cw, g)
		idx := row*g + col
		cells[idx] = append(cells[idx], t)
	}
	return cells
}

// CellRect returns the rectangle of grid cell (row, col) in a g×g grid over
// [0,space]².
func CellRect(row, col, g int, space float64) tuple.Rect {
	cw := space / float64(g)
	return tuple.Rect{
		MinX: float64(col) * cw, MaxX: float64(col+1) * cw,
		MinY: float64(row) * cw, MaxY: float64(row+1) * cw,
	}
}

func cellIndex(v, cw float64, g int) int {
	i := int(v / cw)
	if i >= g {
		i = g - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// OverlapPartition is GridPartition with duplication: each tuple is also
// copied into neighbouring cells with the given probability, modelling the
// paper's observation that local relations on different devices may overlap
// (R_i ∩ R_j ≠ ∅), which forces duplicate elimination during assembly.
func OverlapPartition(ts []tuple.Tuple, g int, space float64, overlap float64, seed int64) [][]tuple.Tuple {
	cells := GridPartition(ts, g, space)
	if overlap <= 0 {
		return cells
	}
	r := rand.New(rand.NewSource(seed))
	cw := space / float64(g)
	for _, t := range ts {
		if r.Float64() >= overlap {
			continue
		}
		col := cellIndex(t.X, cw, g)
		row := cellIndex(t.Y, cw, g)
		// Copy into one random 4-neighbour cell that exists.
		dirs := [][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}}
		d := dirs[r.Intn(len(dirs))]
		nr, nc := row+d[0], col+d[1]
		if nr < 0 || nr >= g || nc < 0 || nc >= g {
			continue
		}
		idx := nr*g + nc
		cells[idx] = append(cells[idx], t)
	}
	return cells
}
