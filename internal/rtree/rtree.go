// Package rtree provides an n-dimensional, STR bulk-loaded R-tree over
// points. It is the index substrate for the Branch-and-Bound Skyline
// algorithm (Papadias et al., SIGMOD 2003) that the paper's related-work
// section cites as the state-of-the-art centralized method — implemented
// here as an additional baseline for the benchmark suite.
//
// The tree is static: it is bulk-loaded once with Sort-Tile-Recursive
// packing and then queried. That matches its role (an index the querying
// algorithm descends) and keeps the structure simple and cache-friendly.
package rtree

import (
	"fmt"
	"math"
	"sort"
)

// MBR is an n-dimensional minimum bounding rectangle.
type MBR struct {
	Min, Max []float64
}

// NewMBR returns an empty MBR of the given dimensionality that absorbs
// points via Extend.
func NewMBR(dim int) MBR {
	m := MBR{Min: make([]float64, dim), Max: make([]float64, dim)}
	for i := 0; i < dim; i++ {
		m.Min[i] = math.Inf(1)
		m.Max[i] = math.Inf(-1)
	}
	return m
}

// PointMBR returns the degenerate MBR of one point.
func PointMBR(p []float64) MBR {
	return MBR{Min: append([]float64(nil), p...), Max: append([]float64(nil), p...)}
}

// Extend grows the MBR to cover p.
func (m *MBR) Extend(p []float64) {
	for i, v := range p {
		if v < m.Min[i] {
			m.Min[i] = v
		}
		if v > m.Max[i] {
			m.Max[i] = v
		}
	}
}

// ExtendMBR grows the MBR to cover another MBR.
func (m *MBR) ExtendMBR(o MBR) {
	m.Extend(o.Min)
	m.Extend(o.Max)
}

// MinSum returns the L1 distance from the origin to the MBR's lower-left
// corner — the BBS priority (a lower bound on any contained point's
// attribute sum).
func (m MBR) MinSum() float64 {
	s := 0.0
	for _, v := range m.Min {
		s += v
	}
	return s
}

// Dim returns the dimensionality.
func (m MBR) Dim() int { return len(m.Min) }

// Entry is a leaf payload: a point plus the caller's identifier.
type Entry struct {
	Point []float64
	Item  int
}

// Node is an R-tree node: either internal (Children) or leaf (Entries).
type Node struct {
	Box      MBR
	Children []*Node
	Entries  []Entry
}

// Leaf reports whether the node holds entries.
func (n *Node) Leaf() bool { return len(n.Children) == 0 }

// Tree is a bulk-loaded, read-only R-tree.
type Tree struct {
	root   *Node
	dim    int
	count  int
	fanout int
	height int
}

// DefaultFanout is the node capacity used when Build is given fanout ≤ 1.
const DefaultFanout = 32

// Build bulk-loads a tree over the given points with Sort-Tile-Recursive
// packing. Items are identified by their index in the input slice. All
// points must share one dimensionality. An empty input yields an empty
// tree whose Root is nil.
func Build(points [][]float64, fanout int) *Tree {
	if fanout <= 1 {
		fanout = DefaultFanout
	}
	t := &Tree{fanout: fanout, count: len(points)}
	if len(points) == 0 {
		return t
	}
	t.dim = len(points[0])
	entries := make([]Entry, len(points))
	for i, p := range points {
		if len(p) != t.dim {
			panic(fmt.Sprintf("rtree: point %d has dim %d, want %d", i, len(p), t.dim))
		}
		entries[i] = Entry{Point: p, Item: i}
	}
	leaves := packLeaves(entries, t.dim, fanout)
	t.height = 1
	level := leaves
	for len(level) > 1 {
		level = packNodes(level, t.dim, fanout)
		t.height++
	}
	t.root = level[0]
	return t
}

// Root returns the root node (nil for an empty tree).
func (t *Tree) Root() *Node { return t.root }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.count }

// Dim returns the dimensionality (0 for an empty tree).
func (t *Tree) Dim() int { return t.dim }

// Height returns the number of node levels.
func (t *Tree) Height() int { return t.height }

// packLeaves tiles entries into leaf nodes via STR: sort by the first
// dimension, cut into slabs, sort each slab by the next dimension, recurse.
func packLeaves(entries []Entry, dim, fanout int) []*Node {
	strSortEntries(entries, dim, fanout, 0)
	var leaves []*Node
	for i := 0; i < len(entries); i += fanout {
		end := i + fanout
		if end > len(entries) {
			end = len(entries)
		}
		n := &Node{Box: NewMBR(dim), Entries: append([]Entry(nil), entries[i:end]...)}
		for _, e := range n.Entries {
			n.Box.Extend(e.Point)
		}
		leaves = append(leaves, n)
	}
	return leaves
}

// strSortEntries recursively applies the STR tiling order.
func strSortEntries(entries []Entry, dim, fanout, axis int) {
	if axis >= dim || len(entries) <= fanout {
		return
	}
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].Point[axis] < entries[j].Point[axis]
	})
	// Number of slabs along this axis: ceil((n/fanout)^(1/(dim-axis))).
	pages := int(math.Ceil(float64(len(entries)) / float64(fanout)))
	slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(dim-axis))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := int(math.Ceil(float64(len(entries)) / float64(slabs)))
	for i := 0; i < len(entries); i += slabSize {
		end := i + slabSize
		if end > len(entries) {
			end = len(entries)
		}
		strSortEntries(entries[i:end], dim, fanout, axis+1)
	}
}

// packNodes groups one level of nodes into parents, ordered by their boxes'
// centers along the first dimension (sufficient for a packed static tree).
func packNodes(level []*Node, dim, fanout int) []*Node {
	sort.SliceStable(level, func(i, j int) bool {
		return level[i].Box.Min[0]+level[i].Box.Max[0] < level[j].Box.Min[0]+level[j].Box.Max[0]
	})
	var parents []*Node
	for i := 0; i < len(level); i += fanout {
		end := i + fanout
		if end > len(level) {
			end = len(level)
		}
		p := &Node{Box: NewMBR(dim), Children: append([]*Node(nil), level[i:end]...)}
		for _, c := range p.Children {
			p.Box.ExtendMBR(c.Box)
		}
		parents = append(parents, p)
	}
	return parents
}
