package rtree

import (
	"math"
	"math/rand"
	"testing"
)

func randPoints(r *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = r.Float64() * 1000
		}
		pts[i] = p
	}
	return pts
}

// collect walks the tree gathering every stored item.
func collect(n *Node, items map[int][]float64) {
	if n == nil {
		return
	}
	if n.Leaf() {
		for _, e := range n.Entries {
			items[e.Item] = e.Point
		}
		return
	}
	for _, c := range n.Children {
		collect(c, items)
	}
}

func TestBuildContainsAllPoints(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 31, 32, 33, 1000} {
		for _, dim := range []int{1, 2, 4} {
			pts := randPoints(r, n, dim)
			tree := Build(pts, 32)
			if tree.Len() != n {
				t.Fatalf("n=%d dim=%d: Len = %d", n, dim, tree.Len())
			}
			items := map[int][]float64{}
			collect(tree.Root(), items)
			if len(items) != n {
				t.Fatalf("n=%d dim=%d: tree holds %d items", n, dim, len(items))
			}
			for i, p := range items {
				for j := range p {
					if p[j] != pts[i][j] {
						t.Fatalf("item %d corrupted", i)
					}
				}
			}
		}
	}
}

// Every node's box must contain all its descendants.
func checkBoxes(t *testing.T, n *Node) {
	t.Helper()
	if n.Leaf() {
		for _, e := range n.Entries {
			for j, v := range e.Point {
				if v < n.Box.Min[j]-1e-12 || v > n.Box.Max[j]+1e-12 {
					t.Fatalf("leaf box does not contain point")
				}
			}
		}
		return
	}
	for _, c := range n.Children {
		for j := range c.Box.Min {
			if c.Box.Min[j] < n.Box.Min[j]-1e-12 || c.Box.Max[j] > n.Box.Max[j]+1e-12 {
				t.Fatalf("child box escapes parent box")
			}
		}
		checkBoxes(t, c)
	}
}

func TestBoundingInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tree := Build(randPoints(r, 5000, 3), 16)
	checkBoxes(t, tree.Root())
}

func TestFanoutRespected(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tree := Build(randPoints(r, 2000, 2), 8)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf() {
			if len(n.Entries) > 8 {
				t.Fatalf("leaf holds %d entries, fanout 8", len(n.Entries))
			}
			return
		}
		if len(n.Children) > 8 {
			t.Fatalf("node holds %d children, fanout 8", len(n.Children))
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Root())
	if tree.Height() < 3 {
		t.Errorf("2000 points at fanout 8 should need ≥3 levels, got %d", tree.Height())
	}
}

func TestMinSum(t *testing.T) {
	m := MBR{Min: []float64{2, 3}, Max: []float64{5, 7}}
	if got := m.MinSum(); got != 5 {
		t.Errorf("MinSum = %v, want 5", got)
	}
	if got := PointMBR([]float64{1, 1}).MinSum(); got != 2 {
		t.Errorf("point MinSum = %v", got)
	}
}

// MinSum must lower-bound the attribute sum of every contained point — the
// property BBS's best-first order depends on.
func TestMinSumLowerBound(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 3000, 3)
	tree := Build(pts, 32)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf() {
			for _, e := range n.Entries {
				s := 0.0
				for _, v := range e.Point {
					s += v
				}
				if n.Box.MinSum() > s+1e-9 {
					t.Fatalf("MinSum %v exceeds contained point sum %v", n.Box.MinSum(), s)
				}
			}
			return
		}
		for _, c := range n.Children {
			if n.Box.MinSum() > c.Box.MinSum()+1e-9 {
				t.Fatalf("parent MinSum exceeds child MinSum")
			}
			walk(c)
		}
	}
	walk(tree.Root())
}

func TestEmptyTree(t *testing.T) {
	tree := Build(nil, 0)
	if tree.Root() != nil || tree.Len() != 0 || tree.Dim() != 0 {
		t.Errorf("empty tree malformed")
	}
}

func TestMixedDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("mixed dims should panic")
		}
	}()
	Build([][]float64{{1, 2}, {1}}, 4)
}

func TestNewMBRAbsorbs(t *testing.T) {
	m := NewMBR(2)
	if !math.IsInf(m.Min[0], 1) {
		t.Fatalf("fresh MBR should be empty")
	}
	m.Extend([]float64{3, 4})
	m.Extend([]float64{1, 9})
	if m.Min[0] != 1 || m.Min[1] != 4 || m.Max[0] != 3 || m.Max[1] != 9 {
		t.Errorf("extend wrong: %+v", m)
	}
}
