// Package aodv implements the Ad hoc On-demand Distance Vector routing
// protocol the paper's simulations use (Table 7): reactive route discovery
// by flooding route requests (RREQ), route replies (RREP) travelling back
// along reverse paths, per-destination sequence numbers for freshness,
// route lifetimes, local repair on link breaks, and route error reports
// (RERR).
//
// The network owns every node's radio handler and demultiplexes control
// packets, routed data, and one-hop application broadcasts. Applications
// (internal/manet) send routed unicasts with Send and neighbourhood
// broadcasts with BroadcastLocal, and receive through the callbacks they
// register when adding a node.
package aodv

import (
	"fmt"

	"manetskyline/internal/mobility"
	"manetskyline/internal/radio"
	"manetskyline/internal/sim"
)

// Config tunes protocol constants; the defaults follow the AODV RFC's
// spirit scaled to the paper's 2-hour pedestrian-speed scenarios.
type Config struct {
	// TTL bounds RREQ flooding (maximum hop count).
	TTL int
	// RouteLifetime is how long an unused route stays valid (seconds).
	RouteLifetime float64
	// DiscoveryTimeout is how long a node waits for an RREP before
	// retrying (seconds).
	DiscoveryTimeout float64
	// DiscoveryRetries is how many times discovery is retried before the
	// pending packets are dropped.
	DiscoveryRetries int
	// SeenLifetime is how long (orig, rreqID) pairs are remembered.
	SeenLifetime float64
}

// DefaultConfig returns the simulation defaults.
func DefaultConfig() Config {
	return Config{
		TTL:              32,
		RouteLifetime:    15,
		DiscoveryTimeout: 1.0,
		DiscoveryRetries: 2,
		SeenLifetime:     30,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.TTL <= 0 {
		return fmt.Errorf("aodv: non-positive TTL %d", c.TTL)
	}
	if c.RouteLifetime <= 0 || c.DiscoveryTimeout <= 0 || c.SeenLifetime <= 0 {
		return fmt.Errorf("aodv: non-positive timing constants")
	}
	if c.DiscoveryRetries < 0 {
		return fmt.Errorf("aodv: negative retries")
	}
	return nil
}

// DataHandler receives routed application payloads; src is the node that
// originated the unicast and hops is the number of radio links the packet
// traversed end to end (1 for a direct neighbour delivery).
type DataHandler func(src radio.NodeID, hops int, payload radio.Payload)

// LocalHandler receives one-hop application broadcasts; from is the
// neighbour that transmitted.
type LocalHandler func(from radio.NodeID, payload radio.Payload)

// Counters aggregates protocol activity across the network.
type Counters struct {
	RREQSent      int
	RREPSent      int
	RERRSent      int
	DataForwarded int // hop-level data transmissions
	DataDelivered int // end-to-end deliveries
	DataDropped   int // gave up (no route after retries, TTL, or break)
}

// Network is a set of AODV nodes sharing one radio medium.
type Network struct {
	eng   *sim.Engine
	med   *radio.Medium
	cfg   Config
	nodes []*node

	// Counters is exported for metric collection.
	Counters Counters

	// met is the optional telemetry surface (zero value = disabled).
	met Metrics

	// ForwardHook, when set, is called with the application payload for
	// every hop-level data transmission; the manet layer uses it to
	// attribute per-query message counts (Figure 12) to overlapping
	// queries.
	ForwardHook func(payload radio.Payload)
}

// New creates an AODV network on the given engine and medium. The medium
// must be empty: the network owns all radio handlers.
func New(eng *sim.Engine, med *radio.Medium, cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if med.NumNodes() != 0 {
		panic("aodv: medium already has nodes")
	}
	return &Network{eng: eng, med: med, cfg: cfg}
}

// AddNode registers a node with its mobility model and application
// handlers (either may be nil if unused) and returns its ID.
func (n *Network) AddNode(mob mobility.Model, onData DataHandler, onLocal LocalHandler) radio.NodeID {
	nd := &node{
		net:     n,
		routes:  make(map[radio.NodeID]*route),
		seen:    make(map[seenKey]float64),
		pending: make(map[radio.NodeID]*discovery),
		onData:  onData,
		onLocal: onLocal,
	}
	nd.id = n.med.AddNode(mob, nd.receive)
	n.nodes = append(n.nodes, nd)
	return nd.id
}

// Send routes payload from src to dst, discovering a route if necessary.
// Delivery is best-effort: packets may be dropped after failed discovery
// retries or on unrepairable link breaks; the application must use its own
// timeouts.
func (n *Network) Send(src, dst radio.NodeID, payload radio.Payload) {
	if src == dst {
		panic("aodv: self-addressed send")
	}
	n.nodes[src].sendData(&dataPkt{Src: src, Dst: dst, Inner: payload})
}

// BroadcastLocal transmits payload to src's current one-hop neighbourhood
// and returns the number of addressed receivers.
func (n *Network) BroadcastLocal(src radio.NodeID, payload radio.Payload) int {
	return n.med.Broadcast(src, &localPkt{Inner: payload})
}

// BroadcastLocalRouted is BroadcastLocal with the RREQ trick applied to
// application floods: the frame additionally carries the flood's originator
// and the hop distance from it, and every receiver installs a reverse route
// toward the originator through the transmitting neighbour. A query flood
// then doubles as route discovery for the replies it solicits — at 30k
// devices this replaces ~30k per-device RREQ storms with the flood the
// application was sending anyway. Costs 8 extra header bytes per frame.
func (n *Network) BroadcastLocalRouted(src, orig radio.NodeID, hops int, payload radio.Payload) int {
	return n.med.Broadcast(src, &localRoutedPkt{Orig: orig, Hops: hops, Inner: payload})
}

// HasRoute reports whether src currently holds a valid route to dst
// (useful for tests and diagnostics).
func (n *Network) HasRoute(src, dst radio.NodeID) bool {
	r, ok := n.nodes[src].routes[dst]
	return ok && r.valid && r.expires > n.eng.Now()
}

// --- wire format -----------------------------------------------------------

type rreqPkt struct {
	Orig    radio.NodeID
	OrigSeq uint32
	ID      uint32
	Dst     radio.NodeID
	DstSeq  uint32
	Hops    int
}

func (*rreqPkt) SizeBytes() int { return 24 }

type rrepPkt struct {
	Orig   radio.NodeID // the requester the reply travels to
	Dst    radio.NodeID // the destination the route leads to
	DstSeq uint32
	Hops   int
}

func (*rrepPkt) SizeBytes() int { return 20 }

type rerrPkt struct {
	Dst    radio.NodeID // unreachable destination
	DstSeq uint32
}

func (*rerrPkt) SizeBytes() int { return 12 }

type dataPkt struct {
	Src   radio.NodeID
	Dst   radio.NodeID
	Hops  int
	Inner radio.Payload
}

func (d *dataPkt) SizeBytes() int { return 16 + d.Inner.SizeBytes() }

type localPkt struct {
	Inner radio.Payload
}

func (l *localPkt) SizeBytes() int { return 4 + l.Inner.SizeBytes() }

// localRoutedPkt is a one-hop broadcast that also advertises a reverse
// route: Orig issued the flood, Hops links away from this transmission's
// receivers.
type localRoutedPkt struct {
	Orig  radio.NodeID
	Hops  int
	Inner radio.Payload
}

func (l *localRoutedPkt) SizeBytes() int { return 12 + l.Inner.SizeBytes() }

// --- node state ------------------------------------------------------------

type route struct {
	nextHop radio.NodeID
	seq     uint32
	hops    int
	expires float64
	valid   bool
}

type seenKey struct {
	orig radio.NodeID
	id   uint32
}

type discovery struct {
	packets []*dataPkt
	retries int
	active  bool
}

type node struct {
	net     *Network
	id      radio.NodeID
	seqNo   uint32
	rreqID  uint32
	routes  map[radio.NodeID]*route
	seen    map[seenKey]float64
	pending map[radio.NodeID]*discovery
	onData  DataHandler
	onLocal LocalHandler
}

func (nd *node) now() float64 { return nd.net.eng.Now() }

// touchRoute installs or refreshes a route.
func (nd *node) touchRoute(dst, nextHop radio.NodeID, seq uint32, hops int) {
	r, ok := nd.routes[dst]
	now := nd.now()
	fresher := !ok || !r.valid || r.expires <= now ||
		seq > r.seq || (seq == r.seq && hops < r.hops)
	if fresher {
		nd.routes[dst] = &route{
			nextHop: nextHop, seq: seq, hops: hops,
			expires: now + nd.net.cfg.RouteLifetime, valid: true,
		}
		return
	}
	if r.nextHop == nextHop {
		r.expires = now + nd.net.cfg.RouteLifetime
	}
}

// validRoute returns the current route to dst, or nil.
func (nd *node) validRoute(dst radio.NodeID) *route {
	r, ok := nd.routes[dst]
	if !ok || !r.valid || r.expires <= nd.now() {
		return nil
	}
	return r
}

// invalidateVia marks every route through the broken neighbour invalid.
func (nd *node) invalidateVia(neighbor radio.NodeID) []radio.NodeID {
	var lost []radio.NodeID
	for dst, r := range nd.routes {
		if r.valid && r.nextHop == neighbor {
			r.valid = false
			lost = append(lost, dst)
		}
	}
	return lost
}

// receive is the radio handler: demultiplex by packet type.
func (nd *node) receive(from radio.NodeID, p radio.Payload) {
	// Every heard frame proves a live link to the neighbour.
	nd.touchRoute(from, from, 0, 1)
	switch pkt := p.(type) {
	case *rreqPkt:
		nd.handleRREQ(from, pkt)
	case *rrepPkt:
		nd.handleRREP(from, pkt)
	case *rerrPkt:
		nd.handleRERR(from, pkt)
	case *dataPkt:
		nd.handleData(pkt)
	case *localPkt:
		if nd.onLocal != nil {
			nd.onLocal(from, pkt.Inner)
		}
	case *localRoutedPkt:
		// Install the reverse route before the application reacts, so a
		// result sent from inside the handler already finds it. Sequence 0
		// never displaces a fresher discovered route.
		if pkt.Orig != nd.id {
			nd.touchRoute(pkt.Orig, from, 0, pkt.Hops)
		}
		if nd.onLocal != nil {
			nd.onLocal(from, pkt.Inner)
		}
	default:
		panic(fmt.Sprintf("aodv: unknown packet type %T", p))
	}
}

func (nd *node) handleRREQ(from radio.NodeID, q *rreqPkt) {
	key := seenKey{orig: q.Orig, id: q.ID}
	if exp, ok := nd.seen[key]; ok && exp > nd.now() {
		return
	}
	nd.seen[key] = nd.now() + nd.net.cfg.SeenLifetime

	if q.Orig == nd.id {
		return // own flood came back
	}
	// Reverse route toward the requester.
	nd.touchRoute(q.Orig, from, q.OrigSeq, q.Hops+1)

	if q.Dst == nd.id {
		// Destination replies; bump own sequence number to at least the
		// requested freshness.
		if q.DstSeq > nd.seqNo {
			nd.seqNo = q.DstSeq
		}
		nd.seqNo++
		nd.sendRREP(&rrepPkt{Orig: q.Orig, Dst: nd.id, DstSeq: nd.seqNo, Hops: 0})
		return
	}
	// Intermediate node with a fresh-enough route replies on the
	// destination's behalf.
	if r := nd.validRoute(q.Dst); r != nil && r.seq >= q.DstSeq {
		nd.sendRREP(&rrepPkt{Orig: q.Orig, Dst: q.Dst, DstSeq: r.seq, Hops: r.hops})
		return
	}
	// Otherwise keep flooding.
	if q.Hops+1 >= nd.net.cfg.TTL {
		return
	}
	fwd := *q
	fwd.Hops++
	nd.net.Counters.RREQSent++
	nd.net.met.RREQSent.Inc()
	nd.net.met.ControlBytes.Add(rreqBytes)
	nd.net.med.Broadcast(nd.id, &fwd)
}

// sendRREP forwards a route reply one hop toward its requester.
func (nd *node) sendRREP(p *rrepPkt) {
	r := nd.validRoute(p.Orig)
	if r == nil {
		return // reverse route evaporated; discovery will time out
	}
	nd.net.Counters.RREPSent++
	nd.net.met.RREPSent.Inc()
	nd.net.met.ControlBytes.Add(rrepBytes)
	nd.net.med.Unicast(nd.id, r.nextHop, p)
}

func (nd *node) handleRREP(from radio.NodeID, p *rrepPkt) {
	// Forward route to the destination through the neighbour that sent us
	// the reply.
	nd.touchRoute(p.Dst, from, p.DstSeq, p.Hops+1)
	if p.Orig == nd.id {
		nd.routeEstablished(p.Dst)
		return
	}
	fwd := *p
	fwd.Hops++
	nd.sendRREP(&fwd)
}

func (nd *node) handleRERR(from radio.NodeID, p *rerrPkt) {
	r, ok := nd.routes[p.Dst]
	if ok && r.valid && r.nextHop == from {
		r.valid = false
	}
}

func (nd *node) handleData(p *dataPkt) {
	if p.Dst == nd.id {
		nd.net.Counters.DataDelivered++
		nd.net.met.DataDelivered.Inc()
		if nd.onData != nil {
			// Hops counts forwards before this delivery, so the number of
			// links traversed is Hops+1.
			nd.onData(p.Src, p.Hops+1, p.Inner)
		}
		return
	}
	if p.Hops >= nd.net.cfg.TTL {
		nd.net.Counters.DataDropped++
		nd.net.met.DataDropped.Inc()
		return
	}
	fwd := *p
	fwd.Hops++
	nd.sendData(&fwd)
}

// sendData forwards a data packet toward its destination, running route
// discovery or local repair as needed.
func (nd *node) sendData(p *dataPkt) {
	r := nd.validRoute(p.Dst)
	if r == nil {
		nd.queueForDiscovery(p)
		return
	}
	nd.net.Counters.DataForwarded++
	if nd.net.med.Unicast(nd.id, r.nextHop, p) {
		r.expires = nd.now() + nd.net.cfg.RouteLifetime
		nd.net.met.DataForwarded.Inc()
		if nd.net.ForwardHook != nil {
			nd.net.ForwardHook(p.Inner)
		}
		return
	}
	// Link break: invalidate, tell upstream, and attempt local repair.
	nd.net.Counters.DataForwarded-- // transmission did not happen
	nd.net.met.RouteFailures.Inc()
	for _, lost := range nd.invalidateVia(r.nextHop) {
		if p.Src != nd.id {
			nd.sendRERRToward(p.Src, lost)
		}
	}
	nd.queueForDiscovery(p)
}

// sendRERRToward reports an unreachable destination back toward a source.
func (nd *node) sendRERRToward(src, lostDst radio.NodeID) {
	r := nd.validRoute(src)
	if r == nil {
		return
	}
	lr := nd.routes[lostDst]
	var seq uint32
	if lr != nil {
		seq = lr.seq + 1
	}
	nd.net.Counters.RERRSent++
	nd.net.met.RERRSent.Inc()
	nd.net.met.ControlBytes.Add(rerrBytes)
	nd.net.med.Unicast(nd.id, r.nextHop, &rerrPkt{Dst: lostDst, DstSeq: seq})
}

// queueForDiscovery buffers a packet and kicks off route discovery.
func (nd *node) queueForDiscovery(p *dataPkt) {
	d, ok := nd.pending[p.Dst]
	if !ok {
		d = &discovery{}
		nd.pending[p.Dst] = d
	}
	d.packets = append(d.packets, p)
	if !d.active {
		d.active = true
		d.retries = 0
		nd.startDiscovery(p.Dst)
	}
}

func (nd *node) startDiscovery(dst radio.NodeID) {
	nd.rreqID++
	nd.seqNo++
	var dstSeq uint32
	if r, ok := nd.routes[dst]; ok {
		dstSeq = r.seq
	}
	id := nd.rreqID
	nd.net.Counters.RREQSent++
	nd.net.met.RouteDiscoveries.Inc()
	nd.net.met.RREQSent.Inc()
	nd.net.met.ControlBytes.Add(rreqBytes)
	nd.net.med.Broadcast(nd.id, &rreqPkt{
		Orig: nd.id, OrigSeq: nd.seqNo, ID: id, Dst: dst, DstSeq: dstSeq,
	})
	nd.net.eng.Schedule(nd.net.cfg.DiscoveryTimeout, func() {
		nd.discoveryTimeout(dst)
	})
}

func (nd *node) discoveryTimeout(dst radio.NodeID) {
	d, ok := nd.pending[dst]
	if !ok || !d.active {
		return
	}
	if nd.validRoute(dst) != nil {
		nd.routeEstablished(dst)
		return
	}
	if d.retries < nd.net.cfg.DiscoveryRetries {
		d.retries++
		nd.startDiscovery(dst)
		return
	}
	// Give up: drop the buffered packets.
	nd.net.Counters.DataDropped += len(d.packets)
	nd.net.met.DataDropped.Add(int64(len(d.packets)))
	delete(nd.pending, dst)
}

// routeEstablished flushes packets buffered for dst.
func (nd *node) routeEstablished(dst radio.NodeID) {
	d, ok := nd.pending[dst]
	if !ok {
		return
	}
	pkts := d.packets
	delete(nd.pending, dst)
	for _, p := range pkts {
		nd.sendData(p)
	}
}
