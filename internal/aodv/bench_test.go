package aodv

import (
	"testing"

	"manetskyline/internal/mobility"
	"manetskyline/internal/radio"
	"manetskyline/internal/sim"
	"manetskyline/internal/tuple"
)

type benchPayload struct{}

func (benchPayload) SizeBytes() int { return 64 }

// BenchmarkRREQFlood measures one full route discovery across a 7×7 static
// multi-hop grid: the RREQ flood wave (every node rebroadcasts once), the
// RREP travelling back, and the data packet following the route. Each
// iteration waits out the route and seen-table lifetimes so discovery
// starts cold every time.
func BenchmarkRREQFlood(b *testing.B) {
	eng := sim.NewEngine(1)
	med := radio.New(eng, radio.DefaultConfig())
	net := New(eng, med, DefaultConfig())
	const side = 7
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			net.AddNode(mobility.Static(tuple.Point{X: float64(c) * 150, Y: float64(r) * 150}), nil, nil)
		}
	}
	src, dst := radio.NodeID(0), radio.NodeID(side*side-1)
	send := func() { net.Send(src, dst, benchPayload{}) }
	send()
	eng.RunAll() // warm up: first discovery + delivery
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 60 s later both the route (15 s lifetime) and the RREQ dedup
		// entries (30 s) have expired, so this is a cold flood again.
		eng.Schedule(60, send)
		eng.RunAll()
	}
	b.StopTimer()
	if net.Counters.RREQSent == 0 || net.Counters.DataDelivered == 0 {
		b.Fatalf("flood did not happen: %+v", net.Counters)
	}
}
