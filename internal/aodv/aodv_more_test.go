package aodv

import (
	"testing"

	"manetskyline/internal/mobility"
	"manetskyline/internal/radio"
	"manetskyline/internal/sim"
	"manetskyline/internal/tuple"
)

func TestRouteExpiry(t *testing.T) {
	w := build(t, tuple.Point{X: 0}, tuple.Point{X: 200}, tuple.Point{X: 400})
	w.net.Send(0, 2, msg(1))
	w.eng.RunAll()
	if !w.net.HasRoute(0, 2) {
		t.Fatalf("route should exist after delivery")
	}
	// Advance past the route lifetime with no traffic.
	w.eng.Schedule(DefaultConfig().RouteLifetime+1, func() {})
	w.eng.RunAll()
	if w.net.HasRoute(0, 2) {
		t.Fatalf("route should have expired")
	}
	// Traffic after expiry triggers rediscovery and still delivers.
	rreqs := w.net.Counters.RREQSent
	w.net.Send(0, 2, msg(2))
	w.eng.RunAll()
	if len(w.got[2]) != 2 {
		t.Fatalf("post-expiry packet lost: %+v", w.net.Counters)
	}
	if w.net.Counters.RREQSent == rreqs {
		t.Errorf("expired route should force a new discovery")
	}
}

func TestRouteRefreshOnUse(t *testing.T) {
	w := build(t, tuple.Point{X: 0}, tuple.Point{X: 200})
	w.net.Send(0, 1, msg(1))
	w.eng.RunAll()
	half := DefaultConfig().RouteLifetime / 2
	// Keep the route warm by sending every half-lifetime.
	for i := 0; i < 6; i++ {
		w.eng.Schedule(half*float64(i+1), func() { w.net.Send(0, 1, msg(2)) })
	}
	w.eng.RunAll()
	if len(w.got[1]) != 7 {
		t.Fatalf("deliveries = %d, want 7", len(w.got[1]))
	}
	// All traffic was direct: a single initial discovery suffices.
	if w.net.Counters.RREQSent > 1 {
		t.Errorf("refreshed route should not be rediscovered: %d RREQs", w.net.Counters.RREQSent)
	}
}

func TestIntermediateNodeRepliesFromCache(t *testing.T) {
	// Chain 0—1—2. After 0↔2 traffic, node 1 holds a fresh route to 2.
	// When node 3 (in range of 0 and 1 only) then asks for 2, node 1 may
	// answer from cache; either way discovery must converge and deliver.
	w := build(t,
		tuple.Point{X: 0}, tuple.Point{X: 200}, tuple.Point{X: 400},
		tuple.Point{X: 100, Y: 200})
	w.net.Send(0, 2, msg(1))
	w.eng.RunAll()
	w.net.Send(3, 2, msg(2))
	w.eng.RunAll()
	if len(w.got[2]) != 2 {
		t.Fatalf("cached-route reply path failed: %+v", w.net.Counters)
	}
}

func TestRERRInvalidatesUpstreamRoute(t *testing.T) {
	// 0—1—2 where 2 teleports away; after a failed forward, node 1 sends
	// an RERR back to 0, whose route must become invalid.
	eng := sim.NewEngine(7)
	med := radio.New(eng, radio.DefaultConfig())
	net := New(eng, med, DefaultConfig())
	net.AddNode(mobility.Static(tuple.Point{X: 0}), nil, nil)
	net.AddNode(mobility.Static(tuple.Point{X: 300}), nil, nil)
	net.AddNode(teleporter{a: tuple.Point{X: 600}, b: tuple.Point{X: 9000}, jump: 5}, nil, nil)
	net.Send(0, 2, msg(1))
	eng.Run(4)
	if !net.HasRoute(0, 2) {
		t.Fatalf("route should exist before the break")
	}
	eng.Run(10) // node 2 gone
	net.Send(0, 2, msg(2))
	eng.RunAll()
	if net.Counters.RERRSent == 0 {
		t.Errorf("link break behind a relay should emit an RERR")
	}
	if net.HasRoute(0, 2) {
		t.Errorf("source route should be invalidated after RERR")
	}
	if net.Counters.DataDropped == 0 {
		t.Errorf("undeliverable packet should be counted dropped")
	}
}

func TestTTLBoundsFlood(t *testing.T) {
	// A long chain beyond the TTL: discovery cannot reach the far end.
	cfg := DefaultConfig()
	cfg.TTL = 3
	eng := sim.NewEngine(1)
	med := radio.New(eng, radio.DefaultConfig())
	net := New(eng, med, cfg)
	got := 0
	for i := 0; i < 7; i++ {
		i := i
		net.AddNode(mobility.Static(tuple.Point{X: float64(i) * 300}), func(radio.NodeID, int, radio.Payload) {
			if i == 6 {
				got++
			}
		}, nil)
	}
	net.Send(0, 6, msg(1))
	eng.RunAll()
	if got != 0 {
		t.Fatalf("6-hop destination must be unreachable with TTL 3")
	}
	if net.Counters.DataDropped != 1 {
		t.Errorf("packet should be dropped after failed discovery")
	}
}
