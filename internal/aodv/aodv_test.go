package aodv

import (
	"testing"

	"manetskyline/internal/mobility"
	"manetskyline/internal/radio"
	"manetskyline/internal/sim"
	"manetskyline/internal/tuple"
)

type msg int

func (m msg) SizeBytes() int { return 64 }

type delivery struct {
	src radio.NodeID
	pay radio.Payload
	at  float64
}

type world struct {
	eng *sim.Engine
	med *radio.Medium
	net *Network
	got map[radio.NodeID][]delivery
}

func build(t *testing.T, positions ...tuple.Point) *world {
	t.Helper()
	w := &world{
		eng: sim.NewEngine(7),
		got: map[radio.NodeID][]delivery{},
	}
	w.med = radio.New(w.eng, radio.DefaultConfig())
	w.net = New(w.eng, w.med, DefaultConfig())
	for _, p := range positions {
		w.addStatic(p)
	}
	return w
}

func (w *world) addStatic(p tuple.Point) radio.NodeID {
	return w.addMobile(mobility.Static(p))
}

func (w *world) addMobile(m mobility.Model) radio.NodeID {
	var id radio.NodeID
	id = w.net.AddNode(m,
		func(src radio.NodeID, hops int, pay radio.Payload) {
			w.got[id] = append(w.got[id], delivery{src: src, pay: pay, at: w.eng.Now()})
		},
		nil)
	return id
}

func TestDirectNeighborDelivery(t *testing.T) {
	w := build(t, tuple.Point{X: 0}, tuple.Point{X: 100})
	w.net.Send(0, 1, msg(1))
	w.eng.RunAll()
	if len(w.got[1]) != 1 || w.got[1][0].src != 0 || w.got[1][0].pay.(msg) != 1 {
		t.Fatalf("delivery failed: %+v", w.got[1])
	}
	if w.net.Counters.DataDelivered != 1 {
		t.Errorf("counters %+v", w.net.Counters)
	}
}

func TestMultiHopChainDiscoveryAndDelivery(t *testing.T) {
	// 0—1—2—3—4 spaced 200 m apart with 250 m range: only adjacent nodes
	// hear each other, so 0→4 needs a 4-hop route.
	w := build(t,
		tuple.Point{X: 0}, tuple.Point{X: 200}, tuple.Point{X: 400},
		tuple.Point{X: 600}, tuple.Point{X: 800})
	w.net.Send(0, 4, msg(42))
	w.eng.RunAll()
	if len(w.got[4]) != 1 {
		t.Fatalf("end-to-end delivery failed: %+v / counters %+v", w.got, w.net.Counters)
	}
	if w.got[4][0].src != 0 {
		t.Errorf("src = %d, want 0", w.got[4][0].src)
	}
	if !w.net.HasRoute(0, 4) {
		t.Errorf("source should hold a route to 4 after discovery")
	}
	if w.net.Counters.RREQSent == 0 || w.net.Counters.RREPSent == 0 {
		t.Errorf("discovery should emit RREQs and RREPs: %+v", w.net.Counters)
	}
	// Four hop-level transmissions carried the packet.
	if w.net.Counters.DataForwarded != 4 {
		t.Errorf("DataForwarded = %d, want 4", w.net.Counters.DataForwarded)
	}
}

func TestSecondSendUsesCachedRoute(t *testing.T) {
	w := build(t, tuple.Point{X: 0}, tuple.Point{X: 200}, tuple.Point{X: 400})
	w.net.Send(0, 2, msg(1))
	w.eng.RunAll()
	rreqs := w.net.Counters.RREQSent
	w.net.Send(0, 2, msg(2))
	w.eng.RunAll()
	if len(w.got[2]) != 2 {
		t.Fatalf("both packets should arrive: %+v", w.got[2])
	}
	if w.net.Counters.RREQSent != rreqs {
		t.Errorf("cached route should avoid new discovery: %d → %d RREQs",
			rreqs, w.net.Counters.RREQSent)
	}
}

func TestUnreachableDestinationDropsAfterRetries(t *testing.T) {
	w := build(t, tuple.Point{X: 0}, tuple.Point{X: 100}, tuple.Point{X: 5000})
	w.net.Send(0, 2, msg(9))
	w.eng.RunAll()
	if len(w.got[2]) != 0 {
		t.Fatalf("isolated node must not receive")
	}
	if w.net.Counters.DataDropped != 1 {
		t.Errorf("DataDropped = %d, want 1", w.net.Counters.DataDropped)
	}
	// Initial attempt + DiscoveryRetries retries, each flood rebroadcast
	// once by the reachable neighbour 1.
	want := 2 * (1 + DefaultConfig().DiscoveryRetries)
	if w.net.Counters.RREQSent != want {
		t.Errorf("RREQSent = %d, want %d", w.net.Counters.RREQSent, want)
	}
}

// teleporter stands still at a, then jumps to b at time jump.
type teleporter struct {
	a, b tuple.Point
	jump float64
}

func (tp teleporter) Pos(t float64) tuple.Point {
	if t < tp.jump {
		return tp.a
	}
	return tp.b
}

func TestLinkBreakLocalRepair(t *testing.T) {
	// Chain 0—1—2 where relay 1 vanishes after the first delivery; node 3
	// sits as an alternative relay. The second packet must be repaired
	// through 3.
	w := build(t, tuple.Point{X: 0, Y: 0})
	w.addMobile(teleporter{a: tuple.Point{X: 200}, b: tuple.Point{X: 5000}, jump: 10})
	w.addStatic(tuple.Point{X: 400})
	w.addStatic(tuple.Point{X: 200, Y: 100}) // alt relay in range of 0 and 2
	w.net.Send(0, 2, msg(1))
	w.eng.Run(5)
	if len(w.got[2]) != 1 {
		t.Fatalf("first packet should arrive via relay 1: %+v", w.net.Counters)
	}
	// After the teleport, send again (old route through 1 is broken).
	w.eng.Run(30)
	w.net.Send(0, 2, msg(2))
	w.eng.RunAll()
	if len(w.got[2]) != 2 {
		t.Fatalf("second packet should arrive via repair: %+v, counters %+v",
			w.got[2], w.net.Counters)
	}
}

func TestBroadcastLocal(t *testing.T) {
	w := build(t, tuple.Point{X: 0}, tuple.Point{X: 100}, tuple.Point{X: 200}, tuple.Point{X: 900})
	heard := map[radio.NodeID][]radio.NodeID{}
	eng := sim.NewEngine(3)
	med := radio.New(eng, radio.DefaultConfig())
	net := New(eng, med, DefaultConfig())
	for i, p := range []tuple.Point{{X: 0}, {X: 100}, {X: 200}, {X: 900}} {
		id := radio.NodeID(i)
		net.AddNode(mobility.Static(p), nil, func(from radio.NodeID, pay radio.Payload) {
			heard[id] = append(heard[id], from)
		})
	}
	n := net.BroadcastLocal(0, msg(5))
	if n != 2 {
		t.Fatalf("addressed %d, want 2", n)
	}
	eng.RunAll()
	if len(heard[1]) != 1 || len(heard[2]) != 1 || len(heard[3]) != 0 {
		t.Errorf("heard: %+v", heard)
	}
	_ = w
}

func TestSelfSendPanics(t *testing.T) {
	w := build(t, tuple.Point{X: 0})
	defer func() {
		if recover() == nil {
			t.Errorf("self-send should panic")
		}
	}()
	w.net.Send(0, 0, msg(1))
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{TTL: 0, RouteLifetime: 1, DiscoveryTimeout: 1, SeenLifetime: 1},
		{TTL: 1, RouteLifetime: 0, DiscoveryTimeout: 1, SeenLifetime: 1},
		{TTL: 1, RouteLifetime: 1, DiscoveryTimeout: 1, SeenLifetime: 1, DiscoveryRetries: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Counters {
		eng := sim.NewEngine(11)
		med := radio.New(eng, radio.DefaultConfig())
		net := New(eng, med, DefaultConfig())
		cfg := mobility.DefaultConfig()
		for i := 0; i < 12; i++ {
			net.AddNode(mobility.NewWaypoint(cfg, int64(i)), nil, nil)
		}
		for i := 0; i < 10; i++ {
			src := radio.NodeID(i)
			dst := radio.NodeID((i + 5) % 12)
			at := float64(i * 20)
			eng.At(at, func() { net.Send(src, dst, msg(i)) })
		}
		eng.Run(600)
		return net.Counters
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different counter sets:\n%+v\n%+v", a, b)
	}
}

func TestMediumMustBeEmpty(t *testing.T) {
	eng := sim.NewEngine(1)
	med := radio.New(eng, radio.DefaultConfig())
	med.AddNode(mobility.Static(tuple.Point{}), func(radio.NodeID, radio.Payload) {})
	defer func() {
		if recover() == nil {
			t.Errorf("non-empty medium should panic")
		}
	}()
	New(eng, med, DefaultConfig())
}

func TestGridConnectivityManyNodes(t *testing.T) {
	// A 4×4 grid with 200 m spacing is fully connected via multi-hop; every
	// corner-to-corner send must succeed.
	var pts []tuple.Point
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			pts = append(pts, tuple.Point{X: float64(c) * 200, Y: float64(r) * 200})
		}
	}
	w := build(t, pts...)
	w.net.Send(0, 15, msg(1))
	w.net.Send(15, 0, msg(2))
	w.net.Send(3, 12, msg(3))
	w.eng.RunAll()
	if len(w.got[15]) != 1 || len(w.got[0]) != 1 || len(w.got[12]) != 1 {
		t.Fatalf("corner routes failed: 15=%d 0=%d 12=%d counters=%+v",
			len(w.got[15]), len(w.got[0]), len(w.got[12]), w.net.Counters)
	}
}
