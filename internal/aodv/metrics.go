package aodv

import "manetskyline/internal/telemetry"

// Metrics is the routing layer's telemetry surface. The zero value (all
// nil) is the disabled state; increments then cost one nil check. The
// legacy Counters struct remains the simulator's per-run accounting.
type Metrics struct {
	// RouteDiscoveries counts discovery rounds started (initial attempts
	// and retries alike).
	RouteDiscoveries *telemetry.Counter
	// RREQSent, RREPSent, and RERRSent count control transmissions.
	RREQSent *telemetry.Counter
	RREPSent *telemetry.Counter
	RERRSent *telemetry.Counter
	// RouteFailures counts link breaks detected while forwarding data
	// (each triggers invalidation and local repair).
	RouteFailures *telemetry.Counter
	// DataForwarded, DataDelivered, and DataDropped count hop-level data
	// transmissions, end-to-end deliveries, and give-ups.
	DataForwarded *telemetry.Counter
	DataDelivered *telemetry.Counter
	DataDropped   *telemetry.Counter
	// ControlBytes counts the on-air bytes of control transmissions, using
	// the AODV header sizes (RREQ 24B, RREP 20B, RERR 12B per RFC 3561).
	// It feeds the per-layer bytes-on-air ledger (telemetry.BytesReport).
	ControlBytes *telemetry.Counter
}

// AODV control packet wire sizes (RFC 3561 message formats).
const (
	rreqBytes = 24
	rrepBytes = 20
	rerrBytes = 12
)

// NewMetrics registers the routing metrics in r (nil r ⇒ disabled metrics).
func NewMetrics(r *telemetry.Registry) Metrics {
	return Metrics{
		RouteDiscoveries: r.Counter("aodv_route_discoveries_total", "route discovery rounds started"),
		RREQSent:         r.Counter("aodv_rreq_sent_total", "route requests transmitted"),
		RREPSent:         r.Counter("aodv_rrep_sent_total", "route replies transmitted"),
		RERRSent:         r.Counter("aodv_rerr_sent_total", "route errors transmitted"),
		RouteFailures:    r.Counter("aodv_route_failures_total", "link breaks detected while forwarding data"),
		DataForwarded:    r.Counter("aodv_data_forwarded_total", "hop-level data transmissions"),
		DataDelivered:    r.Counter("aodv_data_delivered_total", "end-to-end data deliveries"),
		DataDropped:      r.Counter("aodv_data_dropped_total", "data packets given up on (no route, TTL, or break)"),
		ControlBytes:     r.Counter("aodv_control_bytes_sent_total", "on-air bytes of RREQ/RREP/RERR control transmissions"),
	}
}

// SetMetrics attaches telemetry to the network; call before the simulation
// starts. The zero Metrics value detaches it.
func (n *Network) SetMetrics(met Metrics) { n.met = met }
