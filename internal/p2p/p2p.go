// Package p2p is the live counterpart of the discrete-event simulator: every
// peer is a goroutine with an inbox, the transport is in-memory channels
// with configurable latency, jitter, and loss, and the distributed skyline
// protocol is the same core logic (local skylines, filtering tuples with
// dynamic updates, duplicate-query suppression, merge assembly) running
// under real concurrency.
//
// The paper validated its local optimizations on physical handhelds; this
// runtime is the reproduction's analogue — it exercises identical protocol
// code outside the simulator's single-threaded determinism, and it is what
// the example applications drive.
package p2p

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/localsky"
	"manetskyline/internal/tuple"
)

// Config tunes the in-memory transport.
type Config struct {
	// Latency is the one-hop message delay.
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// Loss is an independent per-message drop probability.
	Loss float64
	// QueryTimeout bounds how long an originator waits for results.
	QueryTimeout time.Duration
	// Quorum is the fraction of other peers whose results complete a query
	// (1.0 demands everyone reachable).
	Quorum float64
	// Seed drives transport randomness.
	Seed int64
}

// DefaultConfig returns fast settings suitable for tests and examples.
func DefaultConfig() Config {
	return Config{
		Latency:      2 * time.Millisecond,
		Jitter:       time.Millisecond,
		Loss:         0,
		QueryTimeout: 2 * time.Second,
		Quorum:       1.0,
		Seed:         1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Latency < 0 || c.Jitter < 0 {
		return fmt.Errorf("p2p: negative latency or jitter")
	}
	if c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("p2p: loss %g outside [0,1)", c.Loss)
	}
	if c.QueryTimeout <= 0 {
		return fmt.Errorf("p2p: non-positive query timeout")
	}
	if c.Quorum <= 0 || c.Quorum > 1 {
		return fmt.Errorf("p2p: quorum %g outside (0,1]", c.Quorum)
	}
	return nil
}

// Network is a set of live peers joined by explicit links.
type Network struct {
	cfg Config

	mu     sync.Mutex
	peers  map[core.DeviceID]*Peer
	links  map[core.DeviceID]map[core.DeviceID]bool
	rng    *rand.Rand
	closed bool
	wg     sync.WaitGroup
}

// NewNetwork creates an empty network.
func NewNetwork(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Network{
		cfg:   cfg,
		peers: make(map[core.DeviceID]*Peer),
		links: make(map[core.DeviceID]map[core.DeviceID]bool),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// AddPeer creates and starts a peer goroutine over the given local relation.
func (n *Network) AddPeer(id core.DeviceID, ts []tuple.Tuple, schema tuple.Schema,
	mode core.Estimation, dynamic bool, pos tuple.Point) *Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		panic("p2p: network closed")
	}
	if _, dup := n.peers[id]; dup {
		panic(fmt.Sprintf("p2p: duplicate peer id %d", id))
	}
	p := &Peer{
		net:     n,
		dev:     core.NewDevice(id, ts, schema, mode, dynamic),
		pos:     pos,
		inbox:   make(chan envelope, 256),
		quit:    make(chan struct{}),
		pending: make(map[core.QueryKey]*pendingQuery),
	}
	n.peers[id] = p
	n.links[id] = make(map[core.DeviceID]bool)
	n.wg.Add(1)
	go p.loop()
	return p
}

// Link joins two peers bidirectionally.
func (n *Network) Link(a, b core.DeviceID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if a == b {
		panic("p2p: self link")
	}
	n.links[a][b] = true
	n.links[b][a] = true
}

// FullMesh links every pair of peers.
func (n *Network) FullMesh() {
	n.mu.Lock()
	ids := make([]core.DeviceID, 0, len(n.peers))
	for id := range n.peers {
		ids = append(ids, id)
	}
	n.mu.Unlock()
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			n.Link(a, b)
		}
	}
}

// LinkByRange links every pair of peers whose positions lie within r.
func (n *Network) LinkByRange(r float64) {
	n.mu.Lock()
	type pp struct {
		id  core.DeviceID
		pos tuple.Point
	}
	var all []pp
	for id, p := range n.peers {
		all = append(all, pp{id, p.pos})
	}
	n.mu.Unlock()
	for i, a := range all {
		for _, b := range all[i+1:] {
			if a.pos.WithinDist(b.pos, r) {
				n.Link(a.id, b.id)
			}
		}
	}
}

// Peers returns the peer count.
func (n *Network) Peers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.peers)
}

// Neighbors returns a peer's linked neighbours in ID order.
func (n *Network) Neighbors(id core.DeviceID) []core.DeviceID {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []core.DeviceID
	for nb := range n.links[id] {
		out = append(out, nb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Close stops all peers and waits for their goroutines.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	peers := make([]*Peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	for _, p := range peers {
		close(p.quit)
	}
	n.wg.Wait()
}

// send delivers an envelope to dst with simulated latency and loss. It is
// safe to call from any goroutine.
func (n *Network) send(dst core.DeviceID, env envelope) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	p, ok := n.peers[dst]
	if !ok {
		n.mu.Unlock()
		return
	}
	delay := n.cfg.Latency
	if n.cfg.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}
	drop := n.cfg.Loss > 0 && n.rng.Float64() < n.cfg.Loss
	n.mu.Unlock()
	if drop {
		return
	}
	time.AfterFunc(delay, func() {
		select {
		case p.inbox <- env:
		case <-p.quit:
		default: // inbox full: drop, as a saturated radio would
		}
	})
}

// linked reports whether two peers are neighbours.
func (n *Network) linked(a, b core.DeviceID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.links[a][b]
}

// --- peer -------------------------------------------------------------------

// envelope is one in-flight message.
type envelope struct {
	from core.DeviceID
	msg  any
}

// queryMsg floods a query; resultMsg returns a local skyline to the
// originator.
type queryMsg struct {
	q core.Query
}

type resultMsg struct {
	key    core.QueryKey
	from   core.DeviceID
	tuples []tuple.Tuple
}

// pendingQuery is the originator's collection state.
type pendingQuery struct {
	merged   []tuple.Tuple
	results  int
	want     int
	done     chan struct{}
	closed   bool
	progress ProgressFunc
}

// ProgressFunc observes a query's partial result each time another peer's
// reply has been merged. The slice is a copy the callback may keep; it is
// invoked from the originator's peer goroutine, so it must not block on the
// query itself.
type ProgressFunc func(partial []tuple.Tuple, results int)

// Peer is one live device.
type Peer struct {
	net   *Network
	dev   *core.Device
	pos   tuple.Point
	inbox chan envelope
	quit  chan struct{}

	mu      sync.Mutex
	pending map[core.QueryKey]*pendingQuery
}

// ID returns the peer's device ID.
func (p *Peer) ID() core.DeviceID { return p.dev.ID }

// Pos returns the peer's position.
func (p *Peer) Pos() tuple.Point { return p.pos }

// loop is the peer goroutine: handle messages until the network closes.
func (p *Peer) loop() {
	defer p.net.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case env := <-p.inbox:
			p.handle(env)
		}
	}
}

func (p *Peer) handle(env envelope) {
	switch m := env.msg.(type) {
	case *queryMsg:
		p.handleQuery(m.q)
	case *resultMsg:
		p.handleResult(m)
	}
}

// handleQuery runs the remote side of the BF protocol: process once, reply
// to the originator, keep flooding with the possibly upgraded filter.
func (p *Peer) handleQuery(q core.Query) {
	if !p.dev.Log.FirstTime(q.Key()) {
		return
	}
	res := p.dev.Process(q)
	p.net.send(q.Org, envelope{from: p.dev.ID, msg: &resultMsg{
		key: q.Key(), from: p.dev.ID, tuples: res.Skyline,
	}})
	fwd := core.Forwardable(q, res)
	for _, nb := range p.net.Neighbors(p.dev.ID) {
		if nb != q.Org && nb != p.dev.ID {
			p.net.send(nb, envelope{from: p.dev.ID, msg: &queryMsg{q: fwd}})
		}
	}
}

// handleResult merges one result at the originator.
func (p *Peer) handleResult(m *resultMsg) {
	p.mu.Lock()
	pq := p.pending[m.key]
	if pq == nil {
		p.mu.Unlock()
		return
	}
	pq.merged = core.Merge(pq.merged, m.tuples)
	pq.results++
	var snapshot []tuple.Tuple
	progress := pq.progress
	results := pq.results
	if progress != nil {
		snapshot = append([]tuple.Tuple(nil), pq.merged...)
	}
	if !pq.closed && pq.results >= pq.want {
		pq.closed = true
		close(pq.done)
	}
	p.mu.Unlock()
	if progress != nil {
		progress(snapshot, results)
	}
}

// QueryResult reports a distributed query's outcome.
type QueryResult struct {
	// Skyline is the merged final result.
	Skyline []tuple.Tuple
	// Results is how many peers responded.
	Results int
	// Complete reports whether the quorum was reached before the timeout.
	Complete bool
	// Elapsed is the wall-clock query duration.
	Elapsed time.Duration
}

// ErrNoPeers is returned when a query is issued into an empty network.
var ErrNoPeers = errors.New("p2p: no peers to query")

// Query originates a distributed constrained skyline query at this peer:
// the local skyline seeds the result and the filtering tuple, the query
// floods the link graph, and results merge as they arrive. It blocks until
// the configured quorum of other peers responded or the query timeout
// elapsed.
func (p *Peer) Query(d float64) (QueryResult, error) {
	return p.QueryProgressive(d, nil)
}

// QueryProgressive is Query with a progress callback: onUpdate fires after
// each merged reply with a snapshot of the partial skyline, giving the
// caller the progressive behaviour skyline users expect (early answers
// refine, never retract incorrectly — merged tuples only leave when a
// better arrival dominates them).
func (p *Peer) QueryProgressive(d float64, onUpdate ProgressFunc) (QueryResult, error) {
	start := time.Now()
	n := p.net.Peers()
	if n == 0 {
		return QueryResult{}, ErrNoPeers
	}
	q, res := p.dev.Originate(p.pos, d)

	want := int(float64(n-1)*p.net.cfg.Quorum + 0.999999)
	pq := &pendingQuery{
		merged: res.Skyline, want: want,
		done: make(chan struct{}), progress: onUpdate,
	}
	p.mu.Lock()
	p.pending[q.Key()] = pq
	p.mu.Unlock()

	if want == 0 {
		p.mu.Lock()
		out := QueryResult{Skyline: pq.merged, Complete: true, Elapsed: time.Since(start)}
		delete(p.pending, q.Key())
		p.mu.Unlock()
		return out, nil
	}

	for _, nb := range p.net.Neighbors(p.dev.ID) {
		p.net.send(nb, envelope{from: p.dev.ID, msg: &queryMsg{q: q}})
	}

	timer := time.NewTimer(p.net.cfg.QueryTimeout)
	defer timer.Stop()
	complete := false
	select {
	case <-pq.done:
		complete = true
	case <-timer.C:
	case <-p.quit:
	}

	p.mu.Lock()
	out := QueryResult{
		Skyline:  append([]tuple.Tuple(nil), pq.merged...),
		Results:  pq.results,
		Complete: complete,
		Elapsed:  time.Since(start),
	}
	delete(p.pending, q.Key())
	p.mu.Unlock()
	return out, nil
}

// LocalSkyline evaluates the peer's own constrained skyline without any
// communication — what the device can answer from its own data.
func (p *Peer) LocalSkyline(d float64) []tuple.Tuple {
	res := localsky.HybridSkyline(p.dev.Rel, localsky.Query{Pos: p.pos, D: d}, nil, nil)
	return res.Skyline
}
