package p2p

import (
	"sync"
	"testing"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
	"manetskyline/internal/skyline"
	"manetskyline/internal/tuple"
)

// buildNetwork partitions a fresh dataset over g×g peers positioned at
// their cell centres.
func buildNetwork(t *testing.T, cfg Config, n, dim, g int, dist gen.Distribution, seed int64) (*Network, []*Peer, []tuple.Tuple) {
	t.Helper()
	c := gen.DefaultConfig(n, dim, dist, seed)
	data := gen.Generate(c)
	parts := gen.GridPartition(data, g, c.Space)
	net := NewNetwork(cfg)
	peers := make([]*Peer, len(parts))
	for i, part := range parts {
		pos := gen.CellRect(i/g, i%g, g, c.Space).Center()
		peers[i] = net.AddPeer(core.DeviceID(i), part, c.Schema(), core.Under, true, pos)
	}
	return net, peers, data
}

func TestQueryMatchesCentralizedFullMesh(t *testing.T) {
	net, peers, data := buildNetwork(t, DefaultConfig(), 4000, 2, 3, gen.Independent, 5)
	defer net.Close()
	net.FullMesh()
	for _, d := range []float64{100, 250, 500} {
		for _, p := range []*Peer{peers[0], peers[4], peers[8]} {
			res, err := p.Query(d)
			if err != nil {
				t.Fatalf("Query: %v", err)
			}
			if !res.Complete {
				t.Fatalf("query d=%v at %d incomplete (%d results)", d, p.ID(), res.Results)
			}
			want := skyline.Constrained(data, p.Pos(), d)
			if !skyline.SetEqual(res.Skyline, want) {
				t.Errorf("d=%v org=%d: got %d tuples, want %d", d, p.ID(), len(res.Skyline), len(want))
			}
		}
	}
}

func TestQueryOverMultiHopTopology(t *testing.T) {
	net, peers, data := buildNetwork(t, DefaultConfig(), 3000, 2, 3, gen.AntiCorrelated, 9)
	defer net.Close()
	// Grid adjacency only: corner-to-corner queries need 4 hops.
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			id := core.DeviceID(r*3 + c)
			if c < 2 {
				net.Link(id, id+1)
			}
			if r < 2 {
				net.Link(id, id+3)
			}
		}
	}
	res, err := peers[0].Query(800)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Complete {
		t.Fatalf("multi-hop query incomplete: %d results", res.Results)
	}
	want := skyline.Constrained(data, peers[0].Pos(), 800)
	if !skyline.SetEqual(res.Skyline, want) {
		t.Errorf("got %d tuples, want %d", len(res.Skyline), len(want))
	}
}

func TestConcurrentQueries(t *testing.T) {
	net, peers, data := buildNetwork(t, DefaultConfig(), 3000, 2, 3, gen.Independent, 13)
	defer net.Close()
	net.FullMesh()
	var wg sync.WaitGroup
	errs := make(chan string, len(peers))
	for _, p := range peers {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := p.Query(400)
			if err != nil {
				errs <- err.Error()
				return
			}
			if !res.Complete {
				errs <- "incomplete"
				return
			}
			want := skyline.Constrained(data, p.Pos(), 400)
			if !skyline.SetEqual(res.Skyline, want) {
				errs <- "wrong result"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("concurrent query failed: %s", e)
	}
}

func TestRepeatedQueriesFromSamePeer(t *testing.T) {
	net, peers, data := buildNetwork(t, DefaultConfig(), 2000, 3, 2, gen.Independent, 3)
	defer net.Close()
	net.FullMesh()
	for i := 0; i < 5; i++ {
		res, err := peers[1].Query(300)
		if err != nil || !res.Complete {
			t.Fatalf("round %d: err=%v complete=%v", i, err, res.Complete)
		}
		want := skyline.Constrained(data, peers[1].Pos(), 300)
		if !skyline.SetEqual(res.Skyline, want) {
			t.Fatalf("round %d: wrong result", i)
		}
	}
}

func TestPartitionedNetworkTimesOut(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryTimeout = 100 * time.Millisecond
	net, peers, _ := buildNetwork(t, cfg, 1000, 2, 2, gen.Independent, 7)
	defer net.Close()
	// Only link peers 0-1; peers 2,3 are unreachable.
	net.Link(0, 1)
	res, err := peers[0].Query(core.Unconstrained())
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Complete {
		t.Errorf("partitioned query should not complete at quorum 1.0")
	}
	if res.Results != 1 {
		t.Errorf("results = %d, want 1 (only peer 1 reachable)", res.Results)
	}
}

func TestQuorumBelowOne(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Quorum = 0.3
	cfg.QueryTimeout = 2 * time.Second
	net, peers, _ := buildNetwork(t, cfg, 1000, 2, 2, gen.Independent, 7)
	defer net.Close()
	net.Link(0, 1) // 1 of 3 others ⇒ 33% ≥ quorum… want = ceil(0.3*3) = 1
	res, err := peers[0].Query(core.Unconstrained())
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Complete {
		t.Errorf("one result should satisfy a 0.3 quorum of 3 peers")
	}
}

func TestLossyTransportStillCorrectEnough(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Loss = 0.2
	cfg.Quorum = 0.5
	cfg.QueryTimeout = 3 * time.Second
	net, peers, _ := buildNetwork(t, cfg, 2000, 2, 3, gen.Independent, 11)
	defer net.Close()
	net.FullMesh()
	res, err := peers[4].Query(500)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// With 20% loss and a full mesh, at least the quorum should arrive.
	if !res.Complete {
		t.Logf("lossy query incomplete with %d results (acceptable but noteworthy)", res.Results)
	}
	// Whatever arrived must be internally consistent: mutually non-dominated.
	for i, a := range res.Skyline {
		for j, b := range res.Skyline {
			if i != j && a.Dominates(b) {
				t.Fatalf("result contains dominated tuple %v < %v", b, a)
			}
		}
	}
}

func TestEmptyPeerRelations(t *testing.T) {
	net := NewNetwork(DefaultConfig())
	defer net.Close()
	schema := tuple.NewSchema(2, 0, 1000)
	a := net.AddPeer(0, nil, schema, core.Under, true, tuple.Point{})
	net.AddPeer(1, nil, schema, core.Under, true, tuple.Point{X: 10})
	net.FullMesh()
	res, err := a.Query(100)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Skyline) != 0 {
		t.Errorf("empty relations should yield empty skyline: %v", res.Skyline)
	}
}

func TestLocalSkyline(t *testing.T) {
	net, peers, _ := buildNetwork(t, DefaultConfig(), 2000, 2, 2, gen.Independent, 3)
	defer net.Close()
	local := peers[0].LocalSkyline(400)
	for i, a := range local {
		for j, b := range local {
			if i != j && a.Dominates(b) {
				t.Fatalf("local skyline contains dominated tuple")
			}
		}
		if !peers[0].Pos().WithinDist(a.Pos(), 400) {
			t.Fatalf("local skyline leaked out-of-range tuple")
		}
	}
}

func TestNetworkGuards(t *testing.T) {
	net := NewNetwork(DefaultConfig())
	schema := tuple.NewSchema(1, 0, 1)
	net.AddPeer(0, nil, schema, core.Exact, true, tuple.Point{})
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("duplicate peer should panic")
			}
		}()
		net.AddPeer(0, nil, schema, core.Exact, true, tuple.Point{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("self link should panic")
			}
		}()
		net.Link(0, 0)
	}()
	net.Close()
	net.Close() // idempotent
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("adding to closed network should panic")
			}
		}()
		net.AddPeer(1, nil, schema, core.Exact, true, tuple.Point{})
	}()
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []Config{
		{Latency: -1, QueryTimeout: 1, Quorum: 1},
		{Loss: 1, QueryTimeout: 1, Quorum: 1},
		{QueryTimeout: 0, Quorum: 1},
		{QueryTimeout: 1, Quorum: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestLinkByRange(t *testing.T) {
	net := NewNetwork(DefaultConfig())
	defer net.Close()
	schema := tuple.NewSchema(1, 0, 1)
	net.AddPeer(0, nil, schema, core.Exact, true, tuple.Point{X: 0})
	net.AddPeer(1, nil, schema, core.Exact, true, tuple.Point{X: 100})
	net.AddPeer(2, nil, schema, core.Exact, true, tuple.Point{X: 300})
	net.LinkByRange(150)
	if !net.linked(0, 1) || net.linked(0, 2) {
		t.Errorf("range linking wrong: 0-1 %v, 0-2 %v", net.linked(0, 1), net.linked(0, 2))
	}
	if nb := net.Neighbors(1); len(nb) != 0 && nb[0] != 0 {
		t.Errorf("Neighbors(1) = %v", nb)
	}
}

func TestQueryProgressive(t *testing.T) {
	net, peers, data := buildNetwork(t, DefaultConfig(), 2000, 2, 3, gen.Independent, 21)
	defer net.Close()
	net.FullMesh()

	var mu sync.Mutex
	var snapshots [][]tuple.Tuple
	var counts []int
	res, err := peers[4].QueryProgressive(500, func(partial []tuple.Tuple, results int) {
		mu.Lock()
		defer mu.Unlock()
		snapshots = append(snapshots, partial)
		counts = append(counts, results)
	})
	if err != nil || !res.Complete {
		t.Fatalf("progressive query failed: %v %v", err, res.Complete)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snapshots) != 8 {
		t.Fatalf("got %d progress updates, want 8 (one per peer)", len(snapshots))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[i-1]+1 {
			t.Errorf("result counts not incremental: %v", counts)
		}
	}
	// Every snapshot must be internally consistent (mutually non-dominated),
	// and the last snapshot equals the final answer.
	for si, snap := range snapshots {
		for i, a := range snap {
			for j, b := range snap {
				if i != j && a.Dominates(b) {
					t.Fatalf("snapshot %d contains dominated tuple", si)
				}
			}
		}
	}
	if !skyline.SetEqual(snapshots[len(snapshots)-1], res.Skyline) {
		t.Errorf("final snapshot differs from returned result")
	}
	want := skyline.Constrained(data, peers[4].Pos(), 500)
	if !skyline.SetEqual(res.Skyline, want) {
		t.Errorf("progressive result differs from centralized")
	}
}
