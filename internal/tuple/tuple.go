// Package tuple defines the fundamental data model shared by every layer of
// the system: spatially located tuples with smaller-is-better non-spatial
// attributes, dominance between tuples, Euclidean distance predicates, and
// minimum bounding rectangles.
//
// The model follows the paper's schema ⟨x, y, p_1, ..., p_n⟩: every tuple
// carries a geographic position (X, Y) that is never part of the skyline
// dominance test, plus n non-spatial attributes that are. Throughout the
// system, smaller attribute values are preferred, matching the paper's
// running example (lower price, lower = better rating).
package tuple

import (
	"fmt"
	"math"
	"strings"
)

// Tuple is one site: a geographic position plus non-spatial attributes.
// Attribute values participate in dominance; the position participates only
// in the query's spatial range predicate and in duplicate elimination.
type Tuple struct {
	// X, Y locate the site in the global spatial domain.
	X, Y float64
	// Attrs are the non-spatial attributes p_1..p_n, smaller is better.
	Attrs []float64
}

// Dim returns the number of non-spatial attributes.
func (t Tuple) Dim() int { return len(t.Attrs) }

// Pos returns the tuple's position as a Point.
func (t Tuple) Pos() Point { return Point{t.X, t.Y} }

// Clone returns a deep copy of t; the attribute slice is not shared.
func (t Tuple) Clone() Tuple {
	c := t
	c.Attrs = append([]float64(nil), t.Attrs...)
	return c
}

// SamePlace reports whether two tuples describe the same geographic site.
// The paper assumes no two distinct sites share a location, so duplicate
// elimination during assembly compares (x, y) only (§4.3).
func (t Tuple) SamePlace(u Tuple) bool { return t.X == u.X && t.Y == u.Y }

// Equal reports whether two tuples are identical in position and attributes.
func (t Tuple) Equal(u Tuple) bool {
	if !t.SamePlace(u) || len(t.Attrs) != len(u.Attrs) {
		return false
	}
	for i := range t.Attrs {
		if t.Attrs[i] != u.Attrs[i] {
			return false
		}
	}
	return true
}

// Dominates reports whether t dominates u: t is no worse than u on every
// attribute and strictly better on at least one. Smaller is better.
// Tuples of differing dimensionality never dominate one another.
func (t Tuple) Dominates(u Tuple) bool {
	if len(t.Attrs) != len(u.Attrs) {
		return false
	}
	better := false
	for i, v := range t.Attrs {
		switch {
		case v > u.Attrs[i]:
			return false
		case v < u.Attrs[i]:
			better = true
		}
	}
	return better
}

// DominatesOrEqual reports whether t dominates u or has exactly equal
// attribute values. It is the pruning test used when a filtering tuple is
// applied: a remote tuple whose attributes equal the filter's would be
// removed as a duplicate or dominated entry at assembly anyway, so
// transmitting it is wasted bandwidth unless it is the very same site.
func (t Tuple) DominatesOrEqual(u Tuple) bool {
	if len(t.Attrs) != len(u.Attrs) {
		return false
	}
	for i, v := range t.Attrs {
		if v > u.Attrs[i] {
			return false
		}
	}
	return true
}

// String renders the tuple for logs and test failures.
func (t Tuple) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%.1f,%.1f)[", t.X, t.Y)
	for i, v := range t.Attrs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteByte(']')
	return b.String()
}

// Point is a location in the 2-D spatial domain.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// DistSq returns the squared Euclidean distance between p and q. Range
// predicates compare squared distances to avoid the square root in the
// per-tuple hot loop.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// WithinDist reports whether q lies within distance d of p (inclusive).
func (p Point) WithinDist(q Point, d float64) bool {
	return p.DistSq(q) <= d*d
}

// String renders the point.
func (p Point) String() string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle, used for minimum bounding rectangles of
// local relations and for grid cells of the spatial partitioning.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns a rectangle that contains nothing and absorbs points via
// Extend.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Extend grows the rectangle to include p.
func (r Rect) Extend(p Point) Rect {
	if p.X < r.MinX {
		r.MinX = p.X
	}
	if p.Y < r.MinY {
		r.MinY = p.Y
	}
	if p.X > r.MaxX {
		r.MaxX = p.X
	}
	if p.Y > r.MaxY {
		r.MaxY = p.Y
	}
	return r
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// MinDist returns the minimum Euclidean distance from p to any point of r;
// zero when p is inside r. This is the mindist(pos, MBR) pre-check of the
// Figure 4 algorithm: a device whose MBR is farther than the query distance
// can skip local processing entirely.
func (r Rect) MinDist(p Point) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	var dx, dy float64
	switch {
	case p.X < r.MinX:
		dx = r.MinX - p.X
	case p.X > r.MaxX:
		dx = p.X - r.MaxX
	}
	switch {
	case p.Y < r.MinY:
		dy = r.MinY - p.Y
	case p.Y > r.MaxY:
		dy = p.Y - r.MaxY
	}
	return math.Hypot(dx, dy)
}

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// BoundingRect returns the MBR of a set of tuples.
func BoundingRect(ts []Tuple) Rect {
	r := EmptyRect()
	for _, t := range ts {
		r = r.Extend(t.Pos())
	}
	return r
}

// Schema describes a relation's non-spatial attributes and, when known, the
// global value bounds of each attribute. The bounds drive exact VDR
// computation; devices that do not know them fall back to the estimated
// dominating regions of §3.3.
type Schema struct {
	// Names are optional attribute labels, used for display only.
	Names []string
	// Min and Max are the global lower/upper bounds per attribute.
	Min, Max []float64
}

// NewSchema builds a schema with n attributes all bounded by [lo, hi].
func NewSchema(n int, lo, hi float64) Schema {
	s := Schema{
		Names: make([]string, n),
		Min:   make([]float64, n),
		Max:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		s.Names[i] = fmt.Sprintf("p%d", i+1)
		s.Min[i] = lo
		s.Max[i] = hi
	}
	return s
}

// Dim returns the number of non-spatial attributes in the schema.
func (s Schema) Dim() int { return len(s.Max) }

// Validate checks internal consistency of the schema.
func (s Schema) Validate() error {
	if len(s.Min) != len(s.Max) {
		return fmt.Errorf("tuple: schema has %d min bounds but %d max bounds", len(s.Min), len(s.Max))
	}
	if len(s.Names) != 0 && len(s.Names) != len(s.Max) {
		return fmt.Errorf("tuple: schema has %d names but %d attributes", len(s.Names), len(s.Max))
	}
	for i := range s.Min {
		if s.Min[i] > s.Max[i] {
			return fmt.Errorf("tuple: schema attribute %d has min %g > max %g", i, s.Min[i], s.Max[i])
		}
	}
	return nil
}
