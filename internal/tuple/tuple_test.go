package tuple

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func tp(x, y float64, attrs ...float64) Tuple {
	return Tuple{X: x, Y: y, Attrs: attrs}
}

func TestDominatesBasic(t *testing.T) {
	cases := []struct {
		name string
		a, b Tuple
		want bool
	}{
		{"strictly better both dims", tp(0, 0, 1, 1), tp(0, 0, 2, 2), true},
		{"better one equal other", tp(0, 0, 1, 2), tp(0, 0, 2, 2), true},
		{"equal tuples never dominate", tp(0, 0, 1, 2), tp(0, 0, 1, 2), false},
		{"worse one dim", tp(0, 0, 1, 3), tp(0, 0, 2, 2), false},
		{"dominated direction", tp(0, 0, 2, 2), tp(0, 0, 1, 1), false},
		{"dimension mismatch", tp(0, 0, 1), tp(0, 0, 1, 1), false},
		{"single dim strict", tp(0, 0, 1), tp(0, 0, 2), true},
		{"single dim equal", tp(0, 0, 1), tp(0, 0, 1), false},
	}
	for _, c := range cases {
		if got := c.a.Dominates(c.b); got != c.want {
			t.Errorf("%s: %v Dominates %v = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestDominatesPaperHotelExample(t *testing.T) {
	// Table 2/3 of the paper: h21 (60,3) dominates h14 (80,4) and h16 (100,3).
	h21 := tp(0, 0, 60, 3)
	h14 := tp(0, 0, 80, 4)
	h16 := tp(0, 0, 100, 3)
	h11 := tp(0, 0, 20, 7)
	if !h21.Dominates(h14) {
		t.Errorf("h21 should dominate h14")
	}
	if !h21.Dominates(h16) {
		t.Errorf("h21 should dominate h16")
	}
	if h21.Dominates(h11) {
		t.Errorf("h21 should not dominate h11 (h11 is cheaper)")
	}
}

func TestDominatesOrEqual(t *testing.T) {
	a := tp(0, 0, 1, 2)
	b := tp(5, 5, 1, 2)
	if !a.DominatesOrEqual(b) {
		t.Errorf("equal attribute vectors should satisfy DominatesOrEqual")
	}
	if a.Dominates(b) {
		t.Errorf("equal attribute vectors must not strictly dominate")
	}
	if a.DominatesOrEqual(tp(0, 0, 1)) {
		t.Errorf("dimension mismatch must not satisfy DominatesOrEqual")
	}
}

func randTuple(r *rand.Rand, dim int) Tuple {
	attrs := make([]float64, dim)
	for i := range attrs {
		attrs[i] = math.Floor(r.Float64()*10) / 2
	}
	return Tuple{X: r.Float64() * 100, Y: r.Float64() * 100, Attrs: attrs}
}

// Dominance must be a strict partial order. Coarse value grids make
// coincidences (and therefore meaningful checks) likely.
func TestDominanceIsStrictPartialOrder(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		dim := 1 + r.Intn(4)
		a, b, c := randTuple(r, dim), randTuple(r, dim), randTuple(r, dim)
		if a.Dominates(a) {
			t.Fatalf("irreflexivity violated: %v dominates itself", a)
		}
		if a.Dominates(b) && b.Dominates(a) {
			t.Fatalf("antisymmetry violated: %v and %v dominate each other", a, b)
		}
		if a.Dominates(b) && b.Dominates(c) && !a.Dominates(c) {
			t.Fatalf("transitivity violated: %v > %v > %v but not %v > %v", a, b, c, a, c)
		}
	}
}

func TestDominatesQuickOrderIso(t *testing.T) {
	// Dominance must be invariant under adding a constant to both tuples on
	// the same attribute (translation invariance).
	f := func(av, bv [3]float64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		shift = math.Mod(shift, 1000)
		a := tp(0, 0, av[0], av[1], av[2])
		b := tp(0, 0, bv[0], bv[1], bv[2])
		as := tp(0, 0, av[0]+shift, av[1]+shift, av[2]+shift)
		bs := tp(0, 0, bv[0]+shift, bv[1]+shift, bv[2]+shift)
		return a.Dominates(b) == as.Dominates(bs)
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := tp(1, 2, 3, 4)
	b := a.Clone()
	b.Attrs[0] = 99
	if a.Attrs[0] != 3 {
		t.Errorf("Clone shares attribute storage with original")
	}
	if !a.Clone().Equal(a) {
		t.Errorf("Clone should equal original")
	}
}

func TestSamePlaceAndEqual(t *testing.T) {
	a := tp(1, 2, 3)
	b := tp(1, 2, 4)
	if !a.SamePlace(b) {
		t.Errorf("same coordinates should be SamePlace")
	}
	if a.Equal(b) {
		t.Errorf("different attributes should not be Equal")
	}
	if !a.Equal(tp(1, 2, 3)) {
		t.Errorf("identical tuples should be Equal")
	}
	if a.Equal(tp(1, 2)) {
		t.Errorf("different dimensionality should not be Equal")
	}
}

func TestPointDistances(t *testing.T) {
	p, q := Point{0, 0}, Point{3, 4}
	if got := p.Dist(q); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := p.DistSq(q); got != 25 {
		t.Errorf("DistSq = %v, want 25", got)
	}
	if !p.WithinDist(q, 5) {
		t.Errorf("distance-5 point should be within inclusive range 5")
	}
	if p.WithinDist(q, 4.999) {
		t.Errorf("distance-5 point should not be within range 4.999")
	}
}

func TestWithinDistMatchesDist(t *testing.T) {
	f := func(px, py, qx, qy, d float64) bool {
		if math.IsNaN(px) || math.IsNaN(py) || math.IsNaN(qx) || math.IsNaN(qy) || math.IsNaN(d) {
			return true
		}
		px, py = math.Mod(px, 1e6), math.Mod(py, 1e6)
		qx, qy = math.Mod(qx, 1e6), math.Mod(qy, 1e6)
		d = math.Abs(math.Mod(d, 1e6))
		p, q := Point{px, py}, Point{qx, qy}
		// Allow disagreement only within floating-point slack of the boundary.
		if math.Abs(p.Dist(q)-d) < 1e-9*(1+d) {
			return true
		}
		return p.WithinDist(q, d) == (p.Dist(q) <= d)
	}
	cfg := &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRectExtendContains(t *testing.T) {
	r := EmptyRect()
	if !r.IsEmpty() {
		t.Fatalf("EmptyRect should be empty")
	}
	pts := []Point{{1, 1}, {5, 2}, {3, 8}}
	for _, p := range pts {
		r = r.Extend(p)
	}
	if r.IsEmpty() {
		t.Fatalf("rect with points should not be empty")
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("rect should contain %v", p)
		}
	}
	if r.MinX != 1 || r.MinY != 1 || r.MaxX != 5 || r.MaxY != 8 {
		t.Errorf("unexpected bounds: %+v", r)
	}
	if r.Contains(Point{0, 0}) {
		t.Errorf("rect should not contain (0,0)")
	}
}

func TestRectMinDist(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{5, 5}, 0},      // inside
		{Point{0, 0}, 0},      // corner
		{Point{15, 5}, 5},     // right of
		{Point{5, -3}, 3},     // below
		{Point{13, 14}, 5},    // diagonal 3-4-5
		{Point{-6, -8}, 10},   // diagonal 6-8-10
		{Point{10, 10.5}, .5}, // just above corner
	}
	for _, c := range cases {
		if got := r.MinDist(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinDist(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(EmptyRect().MinDist(Point{0, 0}), 1) {
		t.Errorf("MinDist of empty rect should be +Inf")
	}
}

// MinDist must lower-bound the distance from the query point to every point
// inside the rectangle — the property that makes the MBR pre-check safe.
func TestMinDistLowerBoundsInteriorDistances(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		rect := Rect{
			MinX: r.Float64() * 100, MinY: r.Float64() * 100,
		}
		rect.MaxX = rect.MinX + r.Float64()*100
		rect.MaxY = rect.MinY + r.Float64()*100
		q := Point{r.Float64()*400 - 100, r.Float64()*400 - 100}
		inside := Point{
			rect.MinX + r.Float64()*(rect.MaxX-rect.MinX),
			rect.MinY + r.Float64()*(rect.MaxY-rect.MinY),
		}
		if md, d := rect.MinDist(q), q.Dist(inside); md > d+1e-9 {
			t.Fatalf("MinDist %v exceeds distance %v to interior point %v of %+v from %v",
				md, d, inside, rect, q)
		}
	}
}

func TestBoundingRect(t *testing.T) {
	ts := []Tuple{tp(1, 5, 0), tp(4, 2, 0), tp(3, 3, 0)}
	r := BoundingRect(ts)
	want := Rect{MinX: 1, MinY: 2, MaxX: 4, MaxY: 5}
	if r != want {
		t.Errorf("BoundingRect = %+v, want %+v", r, want)
	}
	if !BoundingRect(nil).IsEmpty() {
		t.Errorf("BoundingRect of no tuples should be empty")
	}
}

func TestRectCenter(t *testing.T) {
	r := Rect{MinX: 0, MinY: 2, MaxX: 10, MaxY: 4}
	if c := r.Center(); c != (Point{5, 3}) {
		t.Errorf("Center = %v, want (5,3)", c)
	}
}

func TestSchema(t *testing.T) {
	s := NewSchema(3, 0, 1000)
	if s.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", s.Dim())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	bad := s
	bad.Min = bad.Min[:2]
	if err := bad.Validate(); err == nil {
		t.Errorf("mismatched min/max lengths should fail validation")
	}
	bad2 := NewSchema(2, 0, 1000)
	bad2.Min[1] = 2000
	if err := bad2.Validate(); err == nil {
		t.Errorf("min > max should fail validation")
	}
	bad3 := NewSchema(2, 0, 1)
	bad3.Names = []string{"only-one"}
	if err := bad3.Validate(); err == nil {
		t.Errorf("wrong name count should fail validation")
	}
}

func TestTupleString(t *testing.T) {
	s := tp(1, 2, 3, 4.5).String()
	if s != "(1.0,2.0)[3 4.5]" {
		t.Errorf("String = %q", s)
	}
}
