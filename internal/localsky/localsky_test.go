package localsky

import (
	"math"
	"math/rand"
	"testing"

	"manetskyline/internal/gen"
	"manetskyline/internal/skyline"
	"manetskyline/internal/storage"
	"manetskyline/internal/tuple"
)

func tp(x, y float64, attrs ...float64) tuple.Tuple {
	return tuple.Tuple{X: x, Y: y, Attrs: attrs}
}

// vdrExact builds the exact VDR function for bounds hi.
func vdrExact(hi ...float64) VDRFunc {
	return func(t tuple.Tuple) float64 {
		v := 1.0
		for j := range t.Attrs {
			v *= hi[j] - t.Attrs[j]
		}
		return v
	}
}

func unconstrained() Query { return Query{D: math.Inf(1)} }

func hotelsR1() []tuple.Tuple {
	return []tuple.Tuple{
		tp(1, 1, 20, 7), tp(1, 2, 40, 5), tp(1, 3, 80, 7),
		tp(1, 4, 80, 4), tp(1, 5, 100, 7), tp(1, 6, 100, 3),
	}
}

func TestHybridSkylineNoFilterPaperExample(t *testing.T) {
	rel := storage.NewHybrid(hotelsR1())
	res := HybridSkyline(rel, unconstrained(), nil, vdrExact(200, 10))
	want := []tuple.Tuple{tp(1, 1, 20, 7), tp(1, 2, 40, 5), tp(1, 4, 80, 4), tp(1, 6, 100, 3)}
	if !skyline.SetEqual(res.Skyline, want) {
		t.Fatalf("skyline = %v, want %v", res.Skyline, want)
	}
	if res.Unreduced != 4 {
		t.Errorf("Unreduced = %d, want 4", res.Unreduced)
	}
	// Max-VDR tuple of SK1: VDR(h11)=(200-20)(10-7)=540, h12=(160)(5)=800,
	// h14=(120)(6)=720, h16=(100)(7)=700 → h12.
	if res.Filter == nil || !res.Filter.Equal(tp(1, 2, 40, 5)) {
		t.Errorf("picked filter %v, want h12", res.Filter)
	}
	if res.FilterVDR != 800 {
		t.Errorf("FilterVDR = %v, want 800", res.FilterVDR)
	}
}

func TestHybridSkylineWithPaperFilter(t *testing.T) {
	// §3.2: filtering tuple h21=(60,3) eliminates h14 and h16 from SK_1.
	rel := storage.NewHybrid(hotelsR1())
	flt := tp(2, 1, 60, 3)
	res := HybridSkyline(rel, unconstrained(), &flt, vdrExact(200, 10))
	want := []tuple.Tuple{tp(1, 1, 20, 7), tp(1, 2, 40, 5)}
	if !skyline.SetEqual(res.Skyline, want) {
		t.Fatalf("reduced skyline = %v, want %v", res.Skyline, want)
	}
	if res.Unreduced != 4 {
		t.Errorf("Unreduced = %d, want 4", res.Unreduced)
	}
	// VDR(h21) = 140*7 = 980; local best is h12 with 800 → filter unchanged.
	if !res.Filter.Equal(flt) {
		t.Errorf("filter should remain h21, got %v", res.Filter)
	}
}

func TestDynamicFilterUpdatePaperExample(t *testing.T) {
	// §3.4: originator M4 picks h41; on M3, h31=(60,3) has larger VDR and
	// replaces it.
	r3 := storage.NewHybrid([]tuple.Tuple{
		tp(3, 1, 60, 3), tp(3, 2, 80, 5), tp(3, 3, 120, 4),
	})
	h41 := tp(4, 1, 80, 2)
	vdr := vdrExact(200, 10)
	// VDR(h41) = 120*8 = 960; VDR(h31) = 140*7 = 980 > 960.
	res := HybridSkyline(r3, unconstrained(), &h41, vdr)
	if res.Filter == nil || !res.Filter.Equal(tp(3, 1, 60, 3)) {
		t.Fatalf("dynamic update should pick h31, got %v", res.Filter)
	}
	if res.FilterVDR != 980 {
		t.Errorf("FilterVDR = %v, want 980", res.FilterVDR)
	}
}

func TestHybridAgainstGroundTruthRandom(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		dist := gen.Distribution(r.Intn(3))
		dim := 2 + r.Intn(3)
		c := gen.HandheldConfig(300, dim, dist, int64(trial))
		data := gen.Generate(c)
		rel := storage.NewHybrid(data)
		pos := tuple.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000}
		d := 100 + r.Float64()*600
		res := HybridSkyline(rel, Query{Pos: pos, D: d}, nil, nil)
		want := skyline.Constrained(data, pos, d)
		if !skyline.SetEqual(res.Skyline, want) {
			t.Fatalf("trial %d: hybrid constrained skyline %d tuples, want %d",
				trial, len(res.Skyline), len(want))
		}
		if res.Unreduced != len(want) {
			t.Errorf("trial %d: Unreduced = %d, want %d", trial, res.Unreduced, len(want))
		}
	}
}

func TestBNLMatchesHybridAllModels(t *testing.T) {
	data := gen.Generate(gen.HandheldConfig(400, 3, gen.AntiCorrelated, 9))
	pos := tuple.Point{X: 500, Y: 500}
	q := Query{Pos: pos, D: 400}
	want := HybridSkyline(storage.NewHybrid(data), q, nil, nil).Skyline
	for _, rel := range []storage.Relation{
		storage.NewFlat(data), storage.NewDomain(data), storage.NewRing(data),
	} {
		got := BNLSkyline(rel, q, nil, nil).Skyline
		if !skyline.SetEqual(want, got) {
			t.Errorf("%s: BNL result differs from hybrid (%d vs %d)",
				rel.Model(), len(got), len(want))
		}
	}
}

// Filtering must never remove a tuple of the true final skyline: the safety
// property of §3.2/§3.3 ("neither over- nor under-estimation affects the
// correctness of query results").
func TestFilterSafety(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		c := gen.HandheldConfig(250, 2+r.Intn(2), gen.Distribution(r.Intn(3)), int64(100+trial))
		dataA := gen.Generate(c)
		cB := c
		cB.Seed += 5000
		dataB := gen.Generate(cB)

		// Device A is the originator: pick a filter from its local skyline.
		relA := storage.NewHybrid(dataA)
		vdr := vdrExact(9.9, 9.9, 9.9, 9.9, 9.9)
		resA := HybridSkyline(relA, unconstrained(), nil, vdr)
		flt := resA.Filter

		relB := storage.NewHybrid(dataB)
		resB := HybridSkyline(relB, unconstrained(), flt, vdr)

		// Assemble and compare against centralized ground truth.
		merged := append(append([]tuple.Tuple{}, resA.Skyline...), resB.Skyline...)
		got := skyline.SFS(merged)
		all := append(append([]tuple.Tuple{}, dataA...), dataB...)
		want := skyline.SFS(all)
		if !skyline.SetEqual(got, want) {
			t.Fatalf("trial %d: filtered distributed result differs from centralized skyline (%d vs %d)",
				trial, len(got), len(want))
		}
	}
}

func TestMBRSkip(t *testing.T) {
	// All data near the origin; query far away.
	data := gen.Generate(gen.HandheldConfig(100, 2, gen.Independent, 1))
	for i := range data {
		data[i].X = math.Mod(data[i].X, 50)
		data[i].Y = math.Mod(data[i].Y, 50)
	}
	rel := storage.NewHybrid(data)
	res := HybridSkyline(rel, Query{Pos: tuple.Point{X: 900, Y: 900}, D: 100}, nil, nil)
	if !res.Stats.SkippedMBR {
		t.Errorf("expected MBR skip")
	}
	if len(res.Skyline) != 0 || res.Stats.Scanned != 0 {
		t.Errorf("MBR skip should not scan: %+v", res.Stats)
	}
	// Flat path too.
	fres := BNLSkyline(storage.NewFlat(data), Query{Pos: tuple.Point{X: 900, Y: 900}, D: 100}, nil, nil)
	if !fres.Stats.SkippedMBR {
		t.Errorf("expected MBR skip on flat BNL")
	}
}

func TestFilterDominatesWholeRelationSkip(t *testing.T) {
	data := []tuple.Tuple{tp(0, 0, 5, 5), tp(1, 1, 6, 7), tp(2, 2, 5, 9)}
	rel := storage.NewHybrid(data)
	flt := tp(9, 9, 4, 5) // ≤ all local minima (5,5), strictly better on p1
	res := HybridSkyline(rel, unconstrained(), &flt, nil)
	if !res.Stats.SkippedFilter {
		t.Fatalf("filter dominating the whole relation should skip, stats %+v", res.Stats)
	}
	if len(res.Skyline) != 0 || res.Stats.Scanned != 0 {
		t.Errorf("skip should not scan")
	}
}

func TestFilterEqualToLocalMinimaDoesNotSkip(t *testing.T) {
	// Regression for the paper's unsound all-≤ skip: a local site with the
	// exact filter vector must survive.
	data := []tuple.Tuple{tp(0, 0, 5, 5), tp(1, 1, 6, 7)}
	rel := storage.NewHybrid(data)
	flt := tp(9, 9, 5, 5) // equal to the best local tuple, different site
	res := HybridSkyline(rel, unconstrained(), &flt, nil)
	if res.Stats.SkippedFilter {
		t.Fatalf("equal-vector filter must not skip the relation")
	}
	if len(res.Skyline) != 1 || !res.Skyline[0].Equal(data[0]) {
		t.Fatalf("local site tying the filter must survive, got %v", res.Skyline)
	}
}

func TestSpatialConstraintExcludesFarTuples(t *testing.T) {
	data := []tuple.Tuple{
		tp(0, 0, 9, 9),     // in range, bad attrs — only in-range tuple
		tp(500, 500, 1, 1), // excellent but out of range
	}
	rel := storage.NewHybrid(data)
	res := HybridSkyline(rel, Query{Pos: tuple.Point{}, D: 10}, nil, nil)
	if len(res.Skyline) != 1 || !res.Skyline[0].Equal(data[0]) {
		t.Fatalf("got %v, want only the in-range tuple", res.Skyline)
	}
}

func TestStatsCounting(t *testing.T) {
	data := gen.Generate(gen.HandheldConfig(200, 2, gen.Independent, 3))
	rel := storage.NewHybrid(data)
	res := HybridSkyline(rel, unconstrained(), nil, nil)
	if res.Stats.Scanned != 200 {
		t.Errorf("Scanned = %d, want 200", res.Stats.Scanned)
	}
	if res.Stats.InRange != 200 {
		t.Errorf("InRange = %d, want 200 (unconstrained)", res.Stats.InRange)
	}
	if res.Stats.DistChecks != 0 {
		t.Errorf("unconstrained query should not do distance checks")
	}
	if res.Stats.IDCmp == 0 {
		t.Errorf("hybrid scan should count ID comparisons")
	}
	if res.Stats.ValCmp != 0 {
		t.Errorf("no filter and no flat scan: ValCmp = %d", res.Stats.ValCmp)
	}

	q := Query{Pos: tuple.Point{X: 500, Y: 500}, D: 300}
	res2 := HybridSkyline(rel, q, nil, nil)
	if res2.Stats.DistChecks != 200 {
		t.Errorf("DistChecks = %d, want 200", res2.Stats.DistChecks)
	}
	if res2.Stats.InRange >= 200 {
		t.Errorf("some tuples should be out of range")
	}

	fres := BNLSkyline(storage.NewFlat(data), unconstrained(), nil, nil)
	if fres.Stats.ValCmp == 0 {
		t.Errorf("flat BNL should count value comparisons")
	}
	// Hybrid + presort should need fewer comparisons than flat BNL.
	if res.Stats.IDCmp >= fres.Stats.ValCmp {
		t.Logf("note: IDCmp %d vs flat ValCmp %d", res.Stats.IDCmp, fres.Stats.ValCmp)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Scanned: 1, InRange: 2, IDCmp: 3, ValCmp: 4, DistChecks: 5}
	b := Stats{Scanned: 10, SkippedMBR: true}
	a.Add(b)
	if a.Scanned != 11 || !a.SkippedMBR || a.SkippedFilter {
		t.Errorf("Add result %+v", a)
	}
}

func TestEmptyRelation(t *testing.T) {
	rel := storage.NewHybrid(nil)
	res := HybridSkyline(rel, unconstrained(), nil, nil)
	if len(res.Skyline) != 0 || res.Unreduced != 0 {
		t.Errorf("empty relation should yield empty result")
	}
	flt := tp(0, 0, 1, 1)
	res2 := HybridSkyline(rel, unconstrained(), &flt, nil)
	if res2.Filter == nil || !res2.Filter.Equal(flt) {
		t.Errorf("filter should pass through an empty relation")
	}
}

func TestDimensionMismatchedFilterIgnoredSafely(t *testing.T) {
	rel := storage.NewHybrid(hotelsR1())
	flt := tp(0, 0, 1) // 1-D filter against 2-D relation
	res := HybridSkyline(rel, unconstrained(), &flt, nil)
	// A mismatched filter can neither skip the relation nor prune tuples.
	if res.Stats.SkippedFilter {
		t.Errorf("mismatched filter must not skip")
	}
	if res.Unreduced != 4 || len(res.Skyline) != 4 {
		t.Errorf("mismatched filter must not prune: %d/%d", len(res.Skyline), res.Unreduced)
	}
}
