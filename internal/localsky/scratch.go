package localsky

import (
	"sync"

	"manetskyline/internal/tuple"
)

// Scratch holds the reusable working memory of one skyline evaluation: the
// decoded-ID buffer, the accepted-slot slice, and the backing storage for
// materialized result tuples. A query over n tuples decodes n·dim IDs; with
// a Scratch that buffer (and everything else on the hot path) is reused, so
// steady-state evaluation performs zero heap allocations.
//
// A Scratch is owned by one evaluation at a time. Results produced with a
// Scratch alias its buffers: Result.Skyline (and the Attrs of its tuples)
// are valid only until the Scratch is used again or returned to the pool.
// Callers that retain results must copy them first (see CloneTuples);
// Result.Filter is always safe to retain.
type Scratch struct {
	ids    []uint32
	sky    []int
	tuples []tuple.Tuple
	attrs  []float64
}

// scratchPool recycles evaluation buffers across queries. Devices process
// one query at a time but many devices evaluate concurrently under the
// parallel bench harness, which is exactly the sharing pattern sync.Pool
// handles: each worker reuses a warm Scratch without cross-goroutine
// coordination.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch borrows a Scratch from the shared pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a Scratch to the shared pool. The caller must not use
// it, or any un-copied Result produced with it, afterwards.
func PutScratch(sc *Scratch) {
	if sc != nil {
		scratchPool.Put(sc)
	}
}

// CloneTuples compacts ts into fresh heap storage: one tuple slice plus one
// shared attribute backing array, detached from any Scratch. It returns nil
// for an empty input.
func CloneTuples(ts []tuple.Tuple) []tuple.Tuple {
	if len(ts) == 0 {
		return nil
	}
	total := 0
	for _, t := range ts {
		total += len(t.Attrs)
	}
	backing := make([]float64, 0, total)
	out := make([]tuple.Tuple, len(ts))
	for i, t := range ts {
		start := len(backing)
		backing = append(backing, t.Attrs...)
		out[i] = tuple.Tuple{X: t.X, Y: t.Y, Attrs: backing[start:len(backing):len(backing)]}
	}
	return out
}
