package localsky

import (
	"testing"

	"manetskyline/internal/gen"
	"manetskyline/internal/storage"
	"manetskyline/internal/tuple"
)

// benchRel builds a deterministic hybrid relation for the hot-path
// benchmarks: the handheld-profile dataset of Figure 5.
func benchRel(n, dim int, dist gen.Distribution) (*storage.Hybrid, []tuple.Tuple) {
	data := gen.Generate(gen.HandheldConfig(n, dim, dist, 1))
	return storage.NewHybrid(data), data
}

// equalResults compares two evaluation results field by field; scratch and
// non-scratch paths must be observationally identical.
func equalResults(t *testing.T, want, got Result) {
	t.Helper()
	if got.Unreduced != want.Unreduced {
		t.Errorf("Unreduced = %d, want %d", got.Unreduced, want.Unreduced)
	}
	if got.Stats != want.Stats {
		t.Errorf("Stats = %+v, want %+v", got.Stats, want.Stats)
	}
	if len(got.Skyline) != len(want.Skyline) {
		t.Fatalf("skyline size = %d, want %d", len(got.Skyline), len(want.Skyline))
	}
	for i := range want.Skyline {
		if !want.Skyline[i].Equal(got.Skyline[i]) {
			t.Errorf("skyline[%d] = %v, want %v", i, got.Skyline[i], want.Skyline[i])
		}
	}
	if got.FilterVDR != want.FilterVDR {
		t.Errorf("FilterVDR = %v, want %v", got.FilterVDR, want.FilterVDR)
	}
	switch {
	case (want.Filter == nil) != (got.Filter == nil):
		t.Errorf("Filter presence mismatch: %v vs %v", want.Filter, got.Filter)
	case want.Filter != nil && !want.Filter.Equal(*got.Filter):
		t.Errorf("Filter = %v, want %v", *got.Filter, *want.Filter)
	}
}

func TestHybridSkylineScratchMatchesPlain(t *testing.T) {
	for _, dim := range []int{2, 4} {
		rel, _ := benchRel(3000, dim, gen.Independent)
		hi := make([]float64, dim)
		for j := range hi {
			hi[j] = rel.AttrMax(j) + 1
		}
		flt := rel.Tuple(rel.Len() / 2)
		queries := []struct {
			name string
			q    Query
			flt  *tuple.Tuple
			vdr  VDRFunc
		}{
			{"unconstrained", unconstrained(), nil, nil},
			{"constrained", Query{Pos: tuple.Point{X: 500, Y: 500}, D: 250}, nil, nil},
			{"spatial-index", Query{Pos: tuple.Point{X: 500, Y: 500}, D: 100, SpatialIndex: true}, nil, nil},
			{"with-filter", unconstrained(), &flt, nil},
			{"with-vdr", unconstrained(), nil, vdrExact(hi...)},
			{"filter-and-vdr", Query{Pos: tuple.Point{X: 500, Y: 500}, D: 400}, &flt, vdrExact(hi...)},
		}
		sc := GetScratch()
		for _, tc := range queries {
			want := HybridSkyline(rel, tc.q, tc.flt, tc.vdr)
			got := HybridSkylineScratch(rel, tc.q, tc.flt, tc.vdr, sc)
			t.Run(tc.name, func(t *testing.T) { equalResults(t, want, got) })
		}
		PutScratch(sc)
	}
}

func TestBNLSkylineScratchMatchesPlain(t *testing.T) {
	_, data := benchRel(2000, 2, gen.AntiCorrelated)
	rel := storage.NewFlat(data)
	flt := rel.Tuple(7)
	sc := GetScratch()
	defer PutScratch(sc)
	for _, q := range []Query{unconstrained(), {Pos: tuple.Point{X: 500, Y: 500}, D: 300}} {
		want := BNLSkyline(rel, q, &flt, vdrExact(101, 101))
		got := BNLSkylineScratch(rel, q, &flt, vdrExact(101, 101), sc)
		equalResults(t, want, got)
	}
}

// TestHybridSkylineScratchZeroAllocs pins the steady-state hot path at zero
// heap allocations: after one warm-up call sizes every scratch buffer, each
// further evaluation must allocate nothing.
func TestHybridSkylineScratchZeroAllocs(t *testing.T) {
	for _, dim := range []int{2, 4} {
		rel, _ := benchRel(2000, dim, gen.Independent)
		sc := GetScratch()
		q := unconstrained()
		HybridSkylineScratch(rel, q, nil, nil, sc) // warm up buffers
		allocs := testing.AllocsPerRun(20, func() {
			HybridSkylineScratch(rel, q, nil, nil, sc)
		})
		if allocs != 0 {
			t.Errorf("dim=%d: HybridSkylineScratch allocated %.1f objects/op, want 0", dim, allocs)
		}
		// The constrained sequential scan (no spatial index) must stay
		// allocation-free too.
		cq := Query{Pos: tuple.Point{X: 500, Y: 500}, D: 300}
		HybridSkylineScratch(rel, cq, nil, nil, sc)
		allocs = testing.AllocsPerRun(20, func() {
			HybridSkylineScratch(rel, cq, nil, nil, sc)
		})
		if allocs != 0 {
			t.Errorf("dim=%d: constrained scan allocated %.1f objects/op, want 0", dim, allocs)
		}
		PutScratch(sc)
	}
}

func benchmarkHybrid(b *testing.B, n, dim int, dist gen.Distribution, sc *Scratch) {
	rel, _ := benchRel(n, dim, dist)
	q := unconstrained()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HybridSkylineScratch(rel, q, nil, nil, sc)
	}
}

// BenchmarkHybridSkyline is the per-call-allocation baseline; compare with
// BenchmarkHybridSkylineScratch via -benchmem to see the hot-path win.
func BenchmarkHybridSkyline(b *testing.B) {
	for _, c := range []struct {
		name string
		n    int
		dim  int
		dist gen.Distribution
	}{
		{"IN-10k-2d", 10000, 2, gen.Independent},
		{"AC-10k-2d", 10000, 2, gen.AntiCorrelated},
		{"IN-10k-4d", 10000, 4, gen.Independent},
	} {
		b.Run(c.name, func(b *testing.B) { benchmarkHybrid(b, c.n, c.dim, c.dist, nil) })
	}
}

// BenchmarkHybridSkylineScratch must report 0 allocs/op.
func BenchmarkHybridSkylineScratch(b *testing.B) {
	for _, c := range []struct {
		name string
		n    int
		dim  int
		dist gen.Distribution
	}{
		{"IN-10k-2d", 10000, 2, gen.Independent},
		{"AC-10k-2d", 10000, 2, gen.AntiCorrelated},
		{"IN-10k-4d", 10000, 4, gen.Independent},
	} {
		b.Run(c.name, func(b *testing.B) {
			sc := GetScratch()
			defer PutScratch(sc)
			benchmarkHybrid(b, c.n, c.dim, c.dist, sc)
		})
	}
}

func BenchmarkBNLSkyline(b *testing.B) {
	_, data := benchRel(10000, 2, gen.Independent)
	rel := storage.NewFlat(data)
	q := unconstrained()
	sc := GetScratch()
	defer PutScratch(sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BNLSkylineScratch(rel, q, nil, nil, sc)
	}
}
