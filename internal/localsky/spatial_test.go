package localsky

import (
	"math/rand"
	"testing"

	"manetskyline/internal/gen"
	"manetskyline/internal/skyline"
	"manetskyline/internal/storage"
	"manetskyline/internal/tuple"
)

// The spatial index must never change the answer, only the work done.
func TestSpatialIndexSameResultLessWork(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 25; trial++ {
		c := gen.DefaultConfig(4000, 2+r.Intn(2), gen.Distribution(r.Intn(3)), int64(trial))
		data := gen.Generate(c)
		rel := storage.NewHybrid(data)
		pos := tuple.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000}
		d := 50 + r.Float64()*300

		plain := HybridSkyline(rel, Query{Pos: pos, D: d}, nil, nil)
		indexed := HybridSkyline(rel, Query{Pos: pos, D: d, SpatialIndex: true}, nil, nil)

		if !skyline.SetEqual(plain.Skyline, indexed.Skyline) {
			t.Fatalf("trial %d: spatial index changed the result (%d vs %d)",
				trial, len(indexed.Skyline), len(plain.Skyline))
		}
		if indexed.Unreduced != plain.Unreduced {
			t.Fatalf("trial %d: Unreduced differs", trial)
		}
		if indexed.Stats.Scanned > plain.Stats.Scanned {
			t.Errorf("trial %d: index scanned more (%d) than plain (%d)",
				trial, indexed.Stats.Scanned, plain.Stats.Scanned)
		}
	}
}

func TestSpatialIndexSelectiveRangeScansFewTuples(t *testing.T) {
	data := gen.Generate(gen.DefaultConfig(20000, 2, gen.Independent, 7))
	rel := storage.NewHybrid(data)
	q := Query{Pos: tuple.Point{X: 500, Y: 500}, D: 50, SpatialIndex: true}
	res := HybridSkyline(rel, q, nil, nil)
	// A 50 m disc covers ~0.8% of the space; the grid should visit well
	// under a quarter of the relation.
	if res.Stats.Scanned > rel.Len()/4 {
		t.Errorf("index scanned %d of %d tuples for a tiny range", res.Stats.Scanned, rel.Len())
	}
	want := skyline.Constrained(data, q.Pos, q.D)
	if !skyline.SetEqual(res.Skyline, want) {
		t.Errorf("indexed result wrong")
	}
}

func TestSpatialIndexUnconstrainedFallsBack(t *testing.T) {
	data := gen.Generate(gen.DefaultConfig(1000, 2, gen.Independent, 9))
	rel := storage.NewHybrid(data)
	res := HybridSkyline(rel, Query{D: unconstrained().D, SpatialIndex: true}, nil, nil)
	if res.Stats.Scanned != rel.Len() {
		t.Errorf("unconstrained query should scan everything")
	}
}

func TestRangeCandidatesSuperset(t *testing.T) {
	data := gen.Generate(gen.DefaultConfig(3000, 2, gen.Independent, 5))
	rel := storage.NewHybrid(data)
	pos := tuple.Point{X: 300, Y: 700}
	const d = 120
	cand, ok := rel.RangeCandidates(pos, d)
	if !ok {
		t.Skip("range not selective at this configuration")
	}
	in := map[int32]bool{}
	for _, i := range cand {
		in[i] = true
	}
	for i := 0; i < rel.Len(); i++ {
		if pos.WithinDist(rel.Pos(i), d) && !in[int32(i)] {
			t.Fatalf("in-range tuple %d missing from candidates", i)
		}
	}
	// Ascending order is what preserves the SFS lex property.
	for i := 1; i < len(cand); i++ {
		if cand[i] <= cand[i-1] {
			t.Fatalf("candidates not strictly ascending at %d", i)
		}
	}
}

func TestRangeCandidatesEmptyRelation(t *testing.T) {
	rel := storage.NewHybrid(nil)
	if _, ok := rel.RangeCandidates(tuple.Point{}, 10); ok {
		t.Errorf("empty relation should fall back to scan")
	}
}
