// Package localsky implements local skyline query processing on a single
// mobile device: the paper's Figure 4 algorithm over hybrid storage
// (ID-based sort-filter-skyline with spatial range checking, MBR and
// filter-dominance pre-checks, filter application, and dynamic filter
// pick-up) and a block-nested-loop evaluator over any storage model as the
// flat-storage baseline of §5.1.
//
// Both evaluators record work counters so the MANET simulator can convert
// local processing into simulated time on a 200 MHz-class device
// (internal/device) the same way the paper added estimated local costs to
// simulated communication delays (§5.2.3).
package localsky

import (
	"math"

	"manetskyline/internal/storage"
	"manetskyline/internal/tuple"
)

// Query is the device-local view of Q_ds: the originator position and the
// distance of interest. A non-positive or infinite D disables the spatial
// constraint, which is how the static pre-tests of §5.2.2-I run.
type Query struct {
	Pos tuple.Point
	D   float64
	// SpatialIndex enables the hybrid relation's spatial bucket grid for
	// the range predicate — an optimization beyond the paper's Figure 4,
	// which distance-checks every tuple sequentially. Off by default for
	// fidelity; the `spatialindex` ablation quantifies it.
	SpatialIndex bool
}

// unconstrained reports whether the query has no effective spatial bound.
func (q Query) unconstrained() bool {
	return q.D <= 0 || math.IsInf(q.D, 1)
}

// inRange applies the spatial predicate.
func (q Query) inRange(p tuple.Point) bool {
	return q.unconstrained() || q.Pos.WithinDist(p, q.D)
}

// VDRFunc scores a tuple's pruning potential: the volume of its dominating
// region under whichever estimation mode the caller selected (§3.2-3.3).
// A nil VDRFunc disables dynamic filter pick-up.
type VDRFunc func(tuple.Tuple) float64

// Stats counts the work one local evaluation performed; the device cost
// model turns these into simulated seconds.
type Stats struct {
	// Scanned is the number of tuples visited by the scan.
	Scanned int
	// InRange is the number of tuples that passed the spatial predicate.
	InRange int
	// IDCmp is the number of integer ID comparisons (hybrid evaluator).
	IDCmp int
	// ValCmp is the number of raw attribute-value comparisons.
	ValCmp int
	// DistChecks is the number of spatial distance evaluations.
	DistChecks int
	// SkippedMBR is set when the MBR pre-check rejected the whole relation.
	SkippedMBR bool
	// SkippedFilter is set when the filter-dominates-relation pre-check
	// rejected the whole relation in O(n) attribute comparisons.
	SkippedFilter bool
}

// Add accumulates counters.
func (s *Stats) Add(o Stats) {
	s.Scanned += o.Scanned
	s.InRange += o.InRange
	s.IDCmp += o.IDCmp
	s.ValCmp += o.ValCmp
	s.DistChecks += o.DistChecks
	s.SkippedMBR = s.SkippedMBR || o.SkippedMBR
	s.SkippedFilter = s.SkippedFilter || o.SkippedFilter
}

// Result is the outcome of one local skyline evaluation.
type Result struct {
	// Skyline is SK'_i: the local skyline after filter pruning, the tuples
	// that would be transmitted back toward the originator.
	Skyline []tuple.Tuple
	// Unreduced is |SK_i|: the local skyline size before filter pruning;
	// the denominator contribution of the data reduction rate (Formula 1).
	Unreduced int
	// Filter is the filtering tuple to forward: the input filter, or a
	// local tuple with a strictly larger VDR when dynamic pick-up found one.
	Filter *tuple.Tuple
	// FilterVDR is the VDR score of Filter (0 when Filter is nil).
	FilterVDR float64
	// Stats holds the work counters.
	Stats Stats
}

// HybridSkyline runs the paper's Figure 4 algorithm against hybrid storage.
//
// Deviations from the figure's pseudo-code, both required for correctness:
//
//   - The whole-relation skip fires only when the filter strictly improves
//     on some attribute's local minimum l_j (all flt_j ≤ l_j and one
//     strict). The figure skips on all flt_j ≤ l_j alone, which would drop
//     a local site whose attribute vector exactly equals the filter's —
//     such a site is a legitimate member of the final skyline.
//   - Dominance during the scan and filter pruning use the standard
//     definition (no worse everywhere, better somewhere) rather than the
//     figure's all-strictly-better test, which under integer domains both
//     misses prunable tuples and, in the scan, would admit dominated ones.
//
// The filter tuple must satisfy the query's spatial constraint (it is always
// drawn from some device's constrained local skyline), which is what makes
// pruning with it safe.
func HybridSkyline(rel *storage.Hybrid, q Query, flt *tuple.Tuple, vdr VDRFunc) Result {
	res := Result{Filter: flt}
	if flt != nil && vdr != nil {
		res.FilterVDR = vdr(*flt)
	}

	// MBR pre-check: the device's data is entirely out of range.
	if !q.unconstrained() && rel.MBR().MinDist(q.Pos) > q.D {
		res.Stats.SkippedMBR = true
		return res
	}

	// Filter pre-check: the best conceivable local tuple (l_1..l_n) is
	// strictly dominated by the filter, so no local tuple can survive.
	if flt != nil && rel.Len() > 0 && flt.Dim() == rel.Dim() {
		domAll := true
		strict := false
		for j := 0; j < rel.Dim(); j++ {
			res.Stats.ValCmp++
			lj := rel.AttrMin(j)
			if flt.Attrs[j] > lj {
				domAll = false
				break
			}
			if flt.Attrs[j] < lj {
				strict = true
			}
		}
		if domAll && strict {
			res.Stats.SkippedFilter = true
			return res
		}
	}

	// ID-based SFS scan. The relation is lexicographically sorted by ID
	// vector, so accepted tuples are never evicted. IDs are decoded once
	// into a flat row-major array; the dominance loop then runs over plain
	// integers — the in-register form the paper's byte IDs take on a real
	// device. Because the presort makes every accepted tuple ≤ the
	// candidate on the sorted attribute, that attribute only contributes a
	// strictness check (the Figure 4 comparison skip).
	dim := rel.Dim()
	sa := rel.SortAttr()

	// Candidate enumeration: the paper's sequential scan, or the spatial
	// bucket grid when the caller opted in and the range is selective. The
	// grid yields indices in ascending order, preserving the lex-order
	// property the SFS scan needs, and only the candidates are ID-decoded.
	var order []int32
	if q.SpatialIndex && !q.unconstrained() {
		if cand, ok := rel.RangeCandidates(q.Pos, q.D); ok {
			order = cand
		}
	}
	var ids []uint32
	count := rel.Len()
	if order != nil {
		count = len(order)
		ids = rel.DecodeIDsFor(order)
	} else {
		ids = rel.DecodeIDs()
	}
	origIdx := func(slot int) int {
		if order != nil {
			return int(order[slot])
		}
		return slot
	}

	var sky []int // slots of accepted skyline tuples
	for s := 0; s < count; s++ {
		res.Stats.Scanned++
		if !q.unconstrained() {
			res.Stats.DistChecks++
			if !q.inRange(rel.Pos(origIdx(s))) {
				continue
			}
		}
		res.Stats.InRange++
		row := ids[s*dim : (s+1)*dim]
		dominated := false
		for _, k := range sky {
			krow := ids[k*dim : (k+1)*dim]
			leqAll := true
			strict := false
			for j := 0; j < dim; j++ {
				if j == sa {
					continue
				}
				res.Stats.IDCmp++
				a, b := krow[j], row[j]
				if a > b {
					leqAll = false
					break
				}
				if a < b {
					strict = true
				}
			}
			if leqAll && !strict {
				// Full tie on the other attributes: dominance now hinges on
				// the sorted attribute, the one comparison the presort
				// usually makes unnecessary.
				res.Stats.IDCmp++
				strict = krow[sa] < row[sa]
			}
			if leqAll && strict {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, s)
		}
	}
	res.Unreduced = len(sky)

	// Filter application and max-VDR pick-up in one pass over SK_i.
	var bestLocal *tuple.Tuple
	bestVDR := math.Inf(-1)
	for _, k := range sky {
		t := rel.Tuple(origIdx(k))
		if flt != nil {
			res.Stats.ValCmp += dim
			if flt.Dominates(t) {
				continue
			}
		}
		res.Skyline = append(res.Skyline, t)
		if vdr != nil {
			if v := vdr(t); v > bestVDR {
				bestVDR = v
				tt := t
				bestLocal = &tt
			}
		}
	}

	// Dynamic filter update (§3.4): adopt the local tuple when it prunes
	// harder than the current filter.
	if bestLocal != nil && (flt == nil || bestVDR > res.FilterVDR) {
		res.Filter = bestLocal
		res.FilterVDR = bestVDR
	}
	return res
}

// BNLSkyline evaluates the same local query with block-nested-loop over any
// storage model — the unindexed, unsorted baseline the paper runs on flat
// storage. Every dominance test dereferences and compares raw attribute
// values, which is precisely the cost hybrid storage avoids.
func BNLSkyline(rel storage.Relation, q Query, flt *tuple.Tuple, vdr VDRFunc) Result {
	res := Result{Filter: flt}
	if flt != nil && vdr != nil {
		res.FilterVDR = vdr(*flt)
	}
	if !q.unconstrained() && rel.MBR().MinDist(q.Pos) > q.D {
		res.Stats.SkippedMBR = true
		return res
	}

	// Flat storage exposes its rows directly (raw float comparisons, no
	// indirection); domain and ring storage pay their per-access pointer
	// chase or ring walk through Value on every comparison, which is
	// exactly the cost the §4.1 ablation quantifies.
	dim := rel.Dim()
	value := rel.Value
	if f, ok := rel.(*storage.Flat); ok {
		rows := f.Rows()
		value = func(i, j int) float64 { return rows[i][j] }
	}
	dominates := func(a, b int) bool {
		better := false
		for j := 0; j < dim; j++ {
			res.Stats.ValCmp++
			av, bv := value(a, j), value(b, j)
			if av > bv {
				return false
			}
			if av < bv {
				better = true
			}
		}
		return better
	}

	var window []int
next:
	for i := 0; i < rel.Len(); i++ {
		res.Stats.Scanned++
		if !q.unconstrained() {
			res.Stats.DistChecks++
			if !q.inRange(rel.Pos(i)) {
				continue
			}
		}
		res.Stats.InRange++
		for _, w := range window {
			if dominates(w, i) {
				continue next
			}
		}
		keep := window[:0]
		for _, w := range window {
			if !dominates(i, w) {
				keep = append(keep, w)
			}
		}
		window = append(keep, i)
	}
	res.Unreduced = len(window)

	var bestLocal *tuple.Tuple
	bestVDR := math.Inf(-1)
	for _, w := range window {
		t := rel.Tuple(w)
		if flt != nil {
			res.Stats.ValCmp += dim
			if flt.Dominates(t) {
				continue
			}
		}
		res.Skyline = append(res.Skyline, t)
		if vdr != nil {
			if v := vdr(t); v > bestVDR {
				bestVDR = v
				tt := t
				bestLocal = &tt
			}
		}
	}
	if bestLocal != nil && (flt == nil || bestVDR > res.FilterVDR) {
		res.Filter = bestLocal
		res.FilterVDR = bestVDR
	}
	return res
}
