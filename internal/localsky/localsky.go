// Package localsky implements local skyline query processing on a single
// mobile device: the paper's Figure 4 algorithm over hybrid storage
// (ID-based sort-filter-skyline with spatial range checking, MBR and
// filter-dominance pre-checks, filter application, and dynamic filter
// pick-up) and a block-nested-loop evaluator over any storage model as the
// flat-storage baseline of §5.1.
//
// Both evaluators record work counters so the MANET simulator can convert
// local processing into simulated time on a 200 MHz-class device
// (internal/device) the same way the paper added estimated local costs to
// simulated communication delays (§5.2.3).
package localsky

import (
	"math"

	"manetskyline/internal/storage"
	"manetskyline/internal/tuple"
)

// Query is the device-local view of Q_ds: the originator position and the
// distance of interest. A non-positive or infinite D disables the spatial
// constraint, which is how the static pre-tests of §5.2.2-I run.
type Query struct {
	Pos tuple.Point
	D   float64
	// SpatialIndex enables the hybrid relation's spatial bucket grid for
	// the range predicate — an optimization beyond the paper's Figure 4,
	// which distance-checks every tuple sequentially. Off by default for
	// fidelity; the `spatialindex` ablation quantifies it.
	SpatialIndex bool
}

// unconstrained reports whether the query has no effective spatial bound.
func (q Query) unconstrained() bool {
	return q.D <= 0 || math.IsInf(q.D, 1)
}

// inRange applies the spatial predicate.
func (q Query) inRange(p tuple.Point) bool {
	return q.unconstrained() || q.Pos.WithinDist(p, q.D)
}

// VDRFunc scores a tuple's pruning potential: the volume of its dominating
// region under whichever estimation mode the caller selected (§3.2-3.3).
// A nil VDRFunc disables dynamic filter pick-up.
type VDRFunc func(tuple.Tuple) float64

// Stats counts the work one local evaluation performed; the device cost
// model turns these into simulated seconds.
type Stats struct {
	// Scanned is the number of tuples visited by the scan.
	Scanned int
	// InRange is the number of tuples that passed the spatial predicate.
	InRange int
	// IDCmp is the number of integer ID comparisons (hybrid evaluator).
	IDCmp int
	// ValCmp is the number of raw attribute-value comparisons.
	ValCmp int
	// DistChecks is the number of spatial distance evaluations.
	DistChecks int
	// SkippedMBR is set when the MBR pre-check rejected the whole relation.
	SkippedMBR bool
	// SkippedFilter is set when the filter-dominates-relation pre-check
	// rejected the whole relation in O(n) attribute comparisons.
	SkippedFilter bool
}

// Add accumulates counters.
func (s *Stats) Add(o Stats) {
	s.Scanned += o.Scanned
	s.InRange += o.InRange
	s.IDCmp += o.IDCmp
	s.ValCmp += o.ValCmp
	s.DistChecks += o.DistChecks
	s.SkippedMBR = s.SkippedMBR || o.SkippedMBR
	s.SkippedFilter = s.SkippedFilter || o.SkippedFilter
}

// Result is the outcome of one local skyline evaluation.
type Result struct {
	// Skyline is SK'_i: the local skyline after filter pruning, the tuples
	// that would be transmitted back toward the originator.
	Skyline []tuple.Tuple
	// Unreduced is |SK_i|: the local skyline size before filter pruning;
	// the denominator contribution of the data reduction rate (Formula 1).
	Unreduced int
	// Filter is the filtering tuple to forward: the input filter, or a
	// local tuple with a strictly larger VDR when dynamic pick-up found one.
	Filter *tuple.Tuple
	// FilterVDR is the VDR score of Filter (0 when Filter is nil).
	FilterVDR float64
	// Stats holds the work counters.
	Stats Stats
}

// HybridSkyline runs the paper's Figure 4 algorithm against hybrid storage.
//
// Deviations from the figure's pseudo-code, both required for correctness:
//
//   - The whole-relation skip fires only when the filter strictly improves
//     on some attribute's local minimum l_j (all flt_j ≤ l_j and one
//     strict). The figure skips on all flt_j ≤ l_j alone, which would drop
//     a local site whose attribute vector exactly equals the filter's —
//     such a site is a legitimate member of the final skyline.
//   - Dominance during the scan and filter pruning use the standard
//     definition (no worse everywhere, better somewhere) rather than the
//     figure's all-strictly-better test, which under integer domains both
//     misses prunable tuples and, in the scan, would admit dominated ones.
//
// The filter tuple must satisfy the query's spatial constraint (it is always
// drawn from some device's constrained local skyline), which is what makes
// pruning with it safe.
func HybridSkyline(rel *storage.Hybrid, q Query, flt *tuple.Tuple, vdr VDRFunc) Result {
	return HybridSkylineScratch(rel, q, flt, vdr, nil)
}

// HybridSkylineScratch is HybridSkyline evaluating through the given
// Scratch, which eliminates every steady-state heap allocation on the
// non-spatial-index path: the decoded-ID buffer, the accepted-slot slice,
// and the result tuples (including their attribute storage) all live in sc
// and are reused across calls. The returned Result.Skyline aliases sc and
// is valid only until sc's next use; Result.Filter is always detached and
// safe to retain. A nil sc falls back to per-call allocation, which is
// exactly HybridSkyline.
func HybridSkylineScratch(rel *storage.Hybrid, q Query, flt *tuple.Tuple, vdr VDRFunc, sc *Scratch) Result {
	res := Result{Filter: flt}
	if flt != nil && vdr != nil {
		res.FilterVDR = vdr(*flt)
	}

	// MBR pre-check: the device's data is entirely out of range.
	if !q.unconstrained() && rel.MBR().MinDist(q.Pos) > q.D {
		res.Stats.SkippedMBR = true
		return res
	}

	// Filter pre-check: the best conceivable local tuple (l_1..l_n) is
	// strictly dominated by the filter, so no local tuple can survive.
	if flt != nil && rel.Len() > 0 && flt.Dim() == rel.Dim() {
		domAll := true
		strict := false
		for j := 0; j < rel.Dim(); j++ {
			res.Stats.ValCmp++
			lj := rel.AttrMin(j)
			if flt.Attrs[j] > lj {
				domAll = false
				break
			}
			if flt.Attrs[j] < lj {
				strict = true
			}
		}
		if domAll && strict {
			res.Stats.SkippedFilter = true
			return res
		}
	}

	// ID-based SFS scan. The relation is lexicographically sorted by ID
	// vector, so accepted tuples are never evicted. IDs are decoded once
	// into a flat row-major array; the dominance loop then runs over plain
	// integers — the in-register form the paper's byte IDs take on a real
	// device. Because the presort makes every accepted tuple ≤ the
	// candidate on the sorted attribute, that attribute only contributes a
	// strictness check (the Figure 4 comparison skip).
	dim := rel.Dim()
	sa := rel.SortAttr()

	// Candidate enumeration: the paper's sequential scan, or the spatial
	// bucket grid when the caller opted in and the range is selective. The
	// grid yields indices in ascending order, preserving the lex-order
	// property the SFS scan needs, and only the candidates are ID-decoded.
	var order []int32
	if q.SpatialIndex && !q.unconstrained() {
		if cand, ok := rel.RangeCandidates(q.Pos, q.D); ok {
			order = cand
		}
	}
	var ids []uint32
	count := rel.Len()
	if order != nil {
		count = len(order)
		if sc != nil {
			sc.ids = rel.DecodeIDsForInto(sc.ids, order)
			ids = sc.ids
		} else {
			ids = rel.DecodeIDsFor(order)
		}
	} else if sc != nil {
		sc.ids = rel.DecodeIDsInto(sc.ids)
		ids = sc.ids
	} else {
		ids = rel.DecodeIDs()
	}

	var sky []int // slots of accepted skyline tuples
	if sc != nil {
		sky = sc.sky[:0]
	}
	constrained := !q.unconstrained()
	scanned, inRange, distChecks, idCmp := 0, 0, 0, 0
	for s := 0; s < count; s++ {
		scanned++
		if constrained {
			i := s
			if order != nil {
				i = int(order[s])
			}
			distChecks++
			if !q.inRange(rel.Pos(i)) {
				continue
			}
		}
		inRange++
		var dominated bool
		var cmp int
		if dim == 2 {
			dominated, cmp = dominated2(ids, sky, s, sa)
		} else {
			dominated, cmp = dominatedN(ids, sky, s, dim, sa)
		}
		idCmp += cmp
		if !dominated {
			sky = append(sky, s)
		}
	}
	if sc != nil {
		sc.sky = sky
	}
	res.Stats.Scanned += scanned
	res.Stats.InRange += inRange
	res.Stats.DistChecks += distChecks
	res.Stats.IDCmp += idCmp
	res.Unreduced = len(sky)

	// Filter application and max-VDR pick-up in one pass over SK_i. With a
	// Scratch, survivors are materialized into one pre-sized backing array
	// (pre-sizing keeps earlier tuples' Attrs slices valid as it fills).
	var out []tuple.Tuple
	var attrs []float64
	if sc != nil {
		out = sc.tuples[:0]
		if need := len(sky) * dim; cap(sc.attrs) < need {
			sc.attrs = make([]float64, 0, need)
		}
		attrs = sc.attrs[:0]
	}
	bestSlot := -1
	bestVDR := math.Inf(-1)
	for _, k := range sky {
		i := k
		if order != nil {
			i = int(order[k])
		}
		var t tuple.Tuple
		if sc != nil {
			start := len(attrs)
			attrs = rel.AppendAttrs(attrs, i)
			t = tuple.Tuple{X: rel.Pos(i).X, Y: rel.Pos(i).Y, Attrs: attrs[start:len(attrs):len(attrs)]}
		} else {
			t = rel.Tuple(i)
		}
		if flt != nil {
			res.Stats.ValCmp += dim
			if flt.Dominates(t) {
				if sc != nil {
					attrs = attrs[:len(attrs)-dim]
				}
				continue
			}
		}
		out = append(out, t)
		if vdr != nil {
			if v := vdr(t); v > bestVDR {
				bestVDR = v
				bestSlot = i
			}
		}
	}
	if sc != nil {
		sc.tuples = out
		sc.attrs = attrs
	}
	res.Skyline = out

	// Dynamic filter update (§3.4): adopt the local tuple when it prunes
	// harder than the current filter. The picked tuple is re-materialized
	// on the heap so the filter outlives any Scratch reuse (it travels in
	// forwarded queries).
	if bestSlot >= 0 && (flt == nil || bestVDR > res.FilterVDR) {
		t := rel.Tuple(bestSlot)
		res.Filter = &t
		res.FilterVDR = bestVDR
	}
	return res
}

// dominated2 is the dominance kernel for the dominant dim==2 case: with a
// single attribute besides the sort key, the generic per-attribute loop
// collapses to one comparison plus the sorted-attribute tie-break. It
// returns whether slot s is dominated by any accepted slot and how many ID
// comparisons that took (identical to the generic kernel's count, so the
// device cost model sees the same work).
func dominated2(ids []uint32, sky []int, s, sa int) (bool, int) {
	j := 1 - sa
	b := ids[2*s+j]
	bs := ids[2*s+sa]
	cmp := 0
	for _, k := range sky {
		cmp++
		a := ids[2*k+j]
		if a > b {
			continue // not ≤ on the free attribute: k cannot dominate s
		}
		if a < b {
			return true, cmp // ≤ everywhere (presort) and strictly better
		}
		// Full tie on the free attribute: dominance hinges on the sorted
		// attribute, the one comparison the presort usually skips.
		cmp++
		if ids[2*k+sa] < bs {
			return true, cmp
		}
	}
	return false, cmp
}

// dominatedN is the general dominance kernel over the flat row-major ID
// array, preserving the Figure 4 comparison skip on the sorted attribute.
func dominatedN(ids []uint32, sky []int, s, dim, sa int) (bool, int) {
	row := ids[s*dim : (s+1)*dim]
	cmp := 0
	for _, k := range sky {
		krow := ids[k*dim : (k+1)*dim]
		leqAll := true
		strict := false
		for j := 0; j < dim; j++ {
			if j == sa {
				continue
			}
			cmp++
			a, b := krow[j], row[j]
			if a > b {
				leqAll = false
				break
			}
			if a < b {
				strict = true
			}
		}
		if leqAll && !strict {
			// Full tie on the other attributes: dominance now hinges on
			// the sorted attribute, the one comparison the presort
			// usually makes unnecessary.
			cmp++
			strict = krow[sa] < row[sa]
		}
		if leqAll && strict {
			return true, cmp
		}
	}
	return false, cmp
}

// BNLSkyline evaluates the same local query with block-nested-loop over any
// storage model — the unindexed, unsorted baseline the paper runs on flat
// storage. Every dominance test dereferences and compares raw attribute
// values, which is precisely the cost hybrid storage avoids.
func BNLSkyline(rel storage.Relation, q Query, flt *tuple.Tuple, vdr VDRFunc) Result {
	return BNLSkylineScratch(rel, q, flt, vdr, nil)
}

// BNLSkylineScratch is BNLSkyline with the window and result buffers drawn
// from sc under the same aliasing contract as HybridSkylineScratch. BNL's
// dominance tests still dereference raw values through the storage model —
// that indirection is the baseline's point — so only the bookkeeping, not
// the comparisons, changes with a Scratch.
func BNLSkylineScratch(rel storage.Relation, q Query, flt *tuple.Tuple, vdr VDRFunc, sc *Scratch) Result {
	res := Result{Filter: flt}
	if flt != nil && vdr != nil {
		res.FilterVDR = vdr(*flt)
	}
	if !q.unconstrained() && rel.MBR().MinDist(q.Pos) > q.D {
		res.Stats.SkippedMBR = true
		return res
	}

	// Flat storage exposes its rows directly (raw float comparisons, no
	// indirection); domain and ring storage pay their per-access pointer
	// chase or ring walk through Value on every comparison, which is
	// exactly the cost the §4.1 ablation quantifies.
	dim := rel.Dim()
	value := rel.Value
	if f, ok := rel.(*storage.Flat); ok {
		rows := f.Rows()
		value = func(i, j int) float64 { return rows[i][j] }
	}
	dominates := func(a, b int) bool {
		better := false
		for j := 0; j < dim; j++ {
			res.Stats.ValCmp++
			av, bv := value(a, j), value(b, j)
			if av > bv {
				return false
			}
			if av < bv {
				better = true
			}
		}
		return better
	}

	var window []int
	if sc != nil {
		window = sc.sky[:0]
	}
next:
	for i := 0; i < rel.Len(); i++ {
		res.Stats.Scanned++
		if !q.unconstrained() {
			res.Stats.DistChecks++
			if !q.inRange(rel.Pos(i)) {
				continue
			}
		}
		res.Stats.InRange++
		for _, w := range window {
			if dominates(w, i) {
				continue next
			}
		}
		keep := window[:0]
		for _, w := range window {
			if !dominates(i, w) {
				keep = append(keep, w)
			}
		}
		window = append(keep, i)
	}
	if sc != nil {
		sc.sky = window
	}
	res.Unreduced = len(window)

	var out []tuple.Tuple
	var attrs []float64
	if sc != nil {
		out = sc.tuples[:0]
		if need := len(window) * dim; cap(sc.attrs) < need {
			sc.attrs = make([]float64, 0, need)
		}
		attrs = sc.attrs[:0]
	}
	bestIdx := -1
	bestVDR := math.Inf(-1)
	for _, w := range window {
		var t tuple.Tuple
		if sc != nil {
			start := len(attrs)
			for j := 0; j < dim; j++ {
				attrs = append(attrs, value(w, j))
			}
			p := rel.Pos(w)
			t = tuple.Tuple{X: p.X, Y: p.Y, Attrs: attrs[start:len(attrs):len(attrs)]}
		} else {
			t = rel.Tuple(w)
		}
		if flt != nil {
			res.Stats.ValCmp += dim
			if flt.Dominates(t) {
				if sc != nil {
					attrs = attrs[:len(attrs)-dim]
				}
				continue
			}
		}
		out = append(out, t)
		if vdr != nil {
			if v := vdr(t); v > bestVDR {
				bestVDR = v
				bestIdx = w
			}
		}
	}
	if sc != nil {
		sc.tuples = out
		sc.attrs = attrs
	}
	res.Skyline = out
	if bestIdx >= 0 && (flt == nil || bestVDR > res.FilterVDR) {
		t := rel.Tuple(bestIdx)
		res.Filter = &t
		res.FilterVDR = bestVDR
	}
	return res
}
