package stats

import (
	"math"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Errorf("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Errorf("single sample should have 0 stddev")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Errorf("empty Min/Max should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Errorf("interpolated median = %v, want 1.5", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Errorf("empty percentile should be 0")
	}
	// Input must not be mutated.
	xs2 := []float64{3, 1, 2}
	Percentile(xs2, 50)
	if xs2[0] != 3 || xs2[1] != 1 || xs2[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", xs2)
	}
}
