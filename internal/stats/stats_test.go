package stats

import (
	"math"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Errorf("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Errorf("single sample should have 0 stddev")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestSum(t *testing.T) {
	if Sum(nil) != 0 {
		t.Errorf("Sum(nil) != 0")
	}
	if got := Sum([]float64{1.5, 2.5, -1}); got != 3 {
		t.Errorf("Sum = %v, want 3", got)
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Errorf("Median(nil) != 0")
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd Median = %v, want 3", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %v, want 2.5", got)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d, want %d", w.N(), len(xs))
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-12 {
		t.Errorf("Mean = %v, want %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.StdDev()-StdDev(xs)) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", w.StdDev(), StdDev(xs))
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Errorf("zero value not neutral: %+v", w)
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Errorf("single sample: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestWelfordStability(t *testing.T) {
	// Large offset: the naive sum-of-squares loses all precision here.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 1e9 + float64(i%2) // values 1e9 and 1e9+1, variance 0.25
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if math.Abs(w.Variance()-0.25) > 1e-6 {
		t.Errorf("Variance = %v, want 0.25", w.Variance())
	}
}

func TestWelfordMerge(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9, 1, 12}
	var a, b, all Welford
	for i, x := range xs {
		if i < 3 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		all.Add(x)
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-12 || math.Abs(a.Variance()-all.Variance()) > 1e-12 {
		t.Errorf("merged mean/var = %v/%v, want %v/%v",
			a.Mean(), a.Variance(), all.Mean(), all.Variance())
	}
	// Merging into or from an empty accumulator is the identity.
	var empty Welford
	empty.Merge(a)
	if empty.N() != a.N() || empty.Mean() != a.Mean() {
		t.Errorf("empty.Merge(a) should copy a")
	}
	before := a
	a.Merge(Welford{})
	if a != before {
		t.Errorf("a.Merge(empty) should be a no-op")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Errorf("empty Min/Max should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Errorf("interpolated median = %v, want 1.5", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Errorf("empty percentile should be 0")
	}
	// Input must not be mutated.
	xs2 := []float64{3, 1, 2}
	Percentile(xs2, 50)
	if xs2[0] != 3 || xs2[1] != 1 || xs2[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", xs2)
	}
}
