// Package stats provides the small statistical helpers the benchmark
// harness uses to aggregate per-query metrics.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the smallest value, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks; 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
