// Package stats provides the small statistical helpers the benchmark
// harness uses to aggregate per-query metrics.
package stats

import (
	"math"
	"sort"
)

// Sum returns the total of the values (0 for an empty slice).
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Median returns the 50th percentile, or 0 for an empty slice.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the smallest value, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks; 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Welford accumulates mean and variance in one streaming pass using
// Welford's online algorithm, which stays numerically stable where the
// naive sum-of-squares cancels catastrophically. The zero value is ready to
// use; it needs O(1) space, so aggregating layers (telemetry consumers,
// long sweeps) can fold in samples without retaining them.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any sample).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance, or 0 for fewer than two
// samples (matching StdDev).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge folds another accumulator into this one (Chan et al.'s parallel
// update), so per-shard accumulators combine exactly.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}
