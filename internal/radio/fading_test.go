package radio

import (
	"testing"

	"manetskyline/internal/mobility"
	"manetskyline/internal/sim"
	"manetskyline/internal/tuple"
)

// fadeRate sends n frames over a link of the given length and returns the
// delivered fraction.
func fadeRate(t *testing.T, cfg Config, dist float64, n int) float64 {
	t.Helper()
	eng := sim.NewEngine(7)
	m := New(eng, cfg)
	got := 0
	m.AddNode(mobility.Static(tuple.Point{}), func(NodeID, Payload) {})
	m.AddNode(mobility.Static(tuple.Point{X: dist}), func(NodeID, Payload) { got++ })
	for i := 0; i < n; i++ {
		m.Unicast(0, 1, fakePayload(10))
	}
	eng.RunAll()
	return float64(got) / float64(n)
}

func TestFadeMarginGrayZone(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FadeMargin = 0.2 // gray zone from 304 m to 380 m
	const n = 600

	if r := fadeRate(t, cfg, 100, n); r != 1 {
		t.Errorf("well inside range should be lossless, got %.2f", r)
	}
	if r := fadeRate(t, cfg, 300, n); r != 1 {
		t.Errorf("just inside the gray zone edge should be lossless, got %.2f", r)
	}
	mid := fadeRate(t, cfg, 342, n) // middle of the gray zone: ~50%
	if mid < 0.3 || mid > 0.7 {
		t.Errorf("mid-gray-zone delivery = %.2f, want ≈0.5", mid)
	}
	near := fadeRate(t, cfg, 310, n)
	far := fadeRate(t, cfg, 375, n)
	if near <= far {
		t.Errorf("delivery should fall with distance in the gray zone: %.2f vs %.2f", near, far)
	}
	if r := fadeRate(t, cfg, 379, n); r > 0.15 {
		t.Errorf("at the very edge delivery should be near zero, got %.2f", r)
	}
}

func TestZeroFadeMarginIsUnitDisk(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.FadeMargin != 0 {
		t.Fatalf("default must stay deterministic")
	}
	if r := fadeRate(t, cfg, cfg.Range-0.5, 50); r != 1 {
		t.Errorf("unit disk: in-range must always deliver, got %.2f", r)
	}
}

func TestFadeMarginValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FadeMargin = 1.5
	if cfg.Validate() == nil {
		t.Errorf("fade margin > 1 should be invalid")
	}
	cfg.FadeMargin = -0.1
	if cfg.Validate() == nil {
		t.Errorf("negative fade margin should be invalid")
	}
	cfg.FadeMargin = 1
	if err := cfg.Validate(); err != nil {
		t.Errorf("fade margin 1 should be valid: %v", err)
	}
}

// The MANET layer must keep working over a fading radio (timeouts and
// retries absorb gray-zone losses).
func TestFadingCountsDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FadeMargin = 0.5
	eng := sim.NewEngine(3)
	m := New(eng, cfg)
	m.AddNode(mobility.Static(tuple.Point{}), func(NodeID, Payload) {})
	m.AddNode(mobility.Static(tuple.Point{X: cfg.Range * 0.9}), func(NodeID, Payload) {})
	for i := 0; i < 200; i++ {
		m.Unicast(0, 1, fakePayload(10))
	}
	eng.RunAll()
	if m.Counters.DroppedRange == 0 {
		t.Errorf("gray-zone drops should be counted as range drops")
	}
	if m.Counters.Receptions == 0 {
		t.Errorf("some frames should still get through at 90%% range")
	}
}
