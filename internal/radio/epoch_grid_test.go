package radio

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"

	"manetskyline/internal/mobility"
	"manetskyline/internal/sim"
	"manetskyline/internal/tuple"
)

// linearModel moves in a straight line forever: position is an exact
// function of time, so boundary crossings happen at precisely computable
// instants.
type linearModel struct{ x0, y0, vx, vy float64 }

func (m linearModel) Pos(t float64) tuple.Point {
	return tuple.Point{X: m.x0 + m.vx*t, Y: m.y0 + m.vy*t}
}

// teleportModel holds a mutable position: the churn test reassigns it
// between ticks to model nodes that jump arbitrarily far with no speed
// bound.
type teleportModel struct{ p tuple.Point }

func (m *teleportModel) Pos(float64) tuple.Point { return m.p }

// TestEpochGridMatchesBruteForce is the property test for the epoch grid
// under a declared speed bound: random waypoint motion, probe times chosen
// so that most probes land *between* rebuilds — exercising stale buckets,
// the expanded probe ring, and incremental cell migration — and every
// probe must still return exactly the brute-force neighbor set, same IDs,
// same order.
func TestEpochGridMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		nodes int
		rng   float64
	}{
		{9, 380}, {49, 380},
		{9, 100}, {49, 100}, {100, 100}, {100, 60},
	} {
		t.Run(fmt.Sprintf("nodes=%d/range=%g", tc.nodes, tc.rng), func(t *testing.T) {
			eng := sim.NewEngine(3)
			cfg := DefaultConfig()
			cfg.Range = tc.rng
			mcfg := mobility.DefaultConfig()
			cfg.MaxSpeed = mcfg.SpeedMax // bounded-motion epoch mode
			med := New(eng, cfg)
			for i := 0; i < tc.nodes; i++ {
				med.AddNode(mobility.NewWaypoint(mcfg, int64(i+1)), func(NodeID, Payload) {})
			}
			r := rand.New(rand.NewSource(17))
			now := 0.0
			rebuilds := 0
			lastEpoch := -1.0
			for step := 0; step < 120; step++ {
				// Small steps relative to side/maxSpeed keep several probe
				// instants inside each epoch window.
				now += r.Float64() * 2
				eng.Run(now)
				for id := NodeID(0); id < NodeID(tc.nodes); id++ {
					got := med.Neighbors(id)
					want := bruteNeighbors(med, id)
					if !slices.Equal(got, want) {
						t.Fatalf("t=%g node %d: grid %v != brute force %v",
							now, id, got, want)
					}
				}
				if med.grid.epoch != lastEpoch {
					lastEpoch = med.grid.epoch
					rebuilds++
				}
			}
			// The point of the epoch grid: far fewer rebuilds than probe
			// timesteps. If this fires, the grid fell back to per-timestep
			// rebuilds and the test stopped exercising stale buckets.
			if rebuilds >= 120 {
				t.Fatalf("epoch grid rebuilt on every timestep (%d rebuilds)", rebuilds)
			}
		})
	}
}

// TestEpochGridBoundaryCrossing pins incremental cell migration exactly at
// cell boundaries: nodes ride straight lines that cross fine-cell edges at
// known instants, and the probe set is checked just before, at, and just
// after each crossing.
func TestEpochGridBoundaryCrossing(t *testing.T) {
	eng := sim.NewEngine(5)
	cfg := DefaultConfig()
	cfg.Range = 100
	cfg.MaxSpeed = 10
	med := New(eng, cfg)
	// Node 0 starts just left of the x=100 cell edge and drifts right at
	// 1 m/s: it crosses at t=5. The others sit still on both sides.
	med.AddNode(linearModel{x0: 95, y0: 50, vx: 1}, func(NodeID, Payload) {})
	med.AddNode(linearModel{x0: 30, y0: 50}, func(NodeID, Payload) {})
	med.AddNode(linearModel{x0: 180, y0: 50}, func(NodeID, Payload) {})
	med.AddNode(linearModel{x0: 205, y0: 150, vy: -1}, func(NodeID, Payload) {}) // crosses y=100 at t=50
	for _, now := range []float64{0, 4.5, 5, 5.5, 20, 49.5, 50, 50.5, 80} {
		eng.Run(now)
		for id := NodeID(0); id < 4; id++ {
			got := med.Neighbors(id)
			want := bruteNeighbors(med, id)
			if !slices.Equal(got, want) {
				t.Fatalf("t=%g node %d: grid %v != brute force %v", now, id, got, want)
			}
		}
	}
}

// TestEpochGridChurnTeleport is the churn test: every tick, 10% of the
// nodes teleport to a uniformly random point — motion with no speed bound,
// which is exactly the case MaxSpeed=0 (unknown) must stay exact for by
// rebuilding whenever the clock moves.
func TestEpochGridChurnTeleport(t *testing.T) {
	const (
		nodes = 200
		space = 2000.0
		ticks = 50
	)
	eng := sim.NewEngine(9)
	cfg := DefaultConfig()
	cfg.Range = 150
	cfg.MaxSpeed = 0 // unknown motion: teleports allowed
	med := New(eng, cfg)
	r := rand.New(rand.NewSource(23))
	models := make([]*teleportModel, nodes)
	for i := range models {
		models[i] = &teleportModel{p: tuple.Point{X: r.Float64() * space, Y: r.Float64() * space}}
		med.AddNode(models[i], func(NodeID, Payload) {})
	}
	for tick := 1; tick <= ticks; tick++ {
		// Teleport 10% of the fleet, then advance the clock so the medium
		// sees the new positions as a fresh timestep.
		for k := 0; k < nodes/10; k++ {
			m := models[r.Intn(nodes)]
			m.p = tuple.Point{X: r.Float64() * space, Y: r.Float64() * space}
		}
		eng.Run(float64(tick))
		for id := NodeID(0); id < nodes; id++ {
			got := med.Neighbors(id)
			want := bruteNeighbors(med, id)
			if !slices.Equal(got, want) {
				t.Fatalf("tick %d node %d: grid %v != brute force %v", tick, id, got, want)
			}
		}
	}
}

// TestEpochGridStatic checks the static declaration (MaxSpeed < 0): the
// grid is built exactly once, and probes at later times still match brute
// force because static positions never invalidate it.
func TestEpochGridStatic(t *testing.T) {
	eng := sim.NewEngine(11)
	cfg := DefaultConfig()
	cfg.Range = 120
	cfg.MaxSpeed = -1
	med := New(eng, cfg)
	r := rand.New(rand.NewSource(31))
	const nodes = 100
	for i := 0; i < nodes; i++ {
		med.AddNode(mobility.Static{X: r.Float64() * 1000, Y: r.Float64() * 1000},
			func(NodeID, Payload) {})
	}
	var firstEpoch float64 = math.NaN()
	for _, now := range []float64{0, 10, 100, 1000, 5000} {
		eng.Run(now)
		for id := NodeID(0); id < nodes; id++ {
			got := med.Neighbors(id)
			want := bruteNeighbors(med, id)
			if !slices.Equal(got, want) {
				t.Fatalf("t=%g node %d: grid %v != brute force %v", now, id, got, want)
			}
		}
		if math.IsNaN(firstEpoch) {
			firstEpoch = med.grid.epoch
		} else if med.grid.epoch != firstEpoch {
			t.Fatalf("static grid rebuilt: epoch %g -> %g", firstEpoch, med.grid.epoch)
		}
	}
}
