package radio

import (
	"fmt"
	"testing"

	"manetskyline/internal/mobility"
	"manetskyline/internal/sim"
)

// benchMedium builds a medium with m random-waypoint nodes mid-trajectory,
// the configuration the Figure 8-12 sweeps stress (9-100 devices moving in
// the 1 km² field).
func benchMedium(m int) (*sim.Engine, *Medium) {
	eng := sim.NewEngine(7)
	med := New(eng, DefaultConfig())
	cfg := mobility.DefaultConfig()
	for i := 0; i < m; i++ {
		med.AddNode(mobility.NewWaypoint(cfg, int64(i+1)), func(NodeID, Payload) {})
	}
	eng.Run(100) // advance the clock so every node is mid-trajectory
	return eng, med
}

var benchNeighborSink []NodeID

// BenchmarkNeighborsGrid measures one neighbor-set query at the paper's
// three network sizes; the AODV RREQ flood and the BF query flood issue one
// of these per rebroadcast, so this is the simulation's dominant inner loop.
func BenchmarkNeighborsGrid(b *testing.B) {
	for _, m := range []int{9, 49, 100} {
		b.Run(fmt.Sprintf("nodes=%d", m), func(b *testing.B) {
			_, med := benchMedium(m)
			buf := make([]NodeID, 0, m)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchNeighborSink = med.NeighborsInto(NodeID(i%m), buf[:0])
			}
		})
	}
}

type benchPayload int

func (p benchPayload) SizeBytes() int { return int(p) }

// BenchmarkBroadcast measures a full broadcast (neighbor set + transmit
// accounting + delivery events) plus the engine work to drain it.
func BenchmarkBroadcast(b *testing.B) {
	for _, m := range []int{9, 100} {
		b.Run(fmt.Sprintf("nodes=%d", m), func(b *testing.B) {
			eng, med := benchMedium(m)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				med.Broadcast(NodeID(i%m), benchPayload(64))
				eng.RunAll()
			}
		})
	}
}
