package radio

import "manetskyline/internal/telemetry"

// Metrics is the medium's telemetry surface. The zero value (all nil) is
// the disabled state: every increment is a nil-check no-op, keeping the
// transmit and neighbor-query hot paths allocation-free and branch-cheap
// (see the telemetry package contract). The legacy Counters struct remains
// the simulator's per-run accounting; Metrics feeds the shared registry a
// live deployment or an instrumented sweep exposes.
type Metrics struct {
	// Broadcasts and Unicasts count transmit calls by kind; FramesSent is
	// their sum (kept separate so dashboards need no arithmetic).
	Broadcasts *telemetry.Counter
	Unicasts   *telemetry.Counter
	FramesSent *telemetry.Counter
	// BytesSent counts transmitted bytes including headers.
	BytesSent *telemetry.Counter
	// Deliveries counts successful receptions; DropsRange and DropsLoss
	// count the two loss processes.
	Deliveries *telemetry.Counter
	DropsRange *telemetry.Counter
	DropsLoss  *telemetry.Counter
	// DropsFault counts frames removed by an attached fault injector.
	DropsFault *telemetry.Counter
	// DropsQueue counts frames dropped at a receiver's bounded link queue
	// (per-link transmit modeling, Config.LinkQueue).
	DropsQueue *telemetry.Counter
	// NeighborQueries and NeighborScanned expose the spatial-grid query
	// cost: probes issued and candidate nodes distance-checked.
	NeighborQueries *telemetry.Counter
	NeighborScanned *telemetry.Counter
}

// NewMetrics registers the medium's metrics in r (nil r ⇒ disabled metrics).
func NewMetrics(r *telemetry.Registry) Metrics {
	return Metrics{
		Broadcasts:      r.Counter("radio_broadcasts_total", "broadcast transmissions"),
		Unicasts:        r.Counter("radio_unicasts_total", "unicast transmissions"),
		FramesSent:      r.Counter("radio_frames_sent_total", "frames transmitted (broadcast or unicast)"),
		BytesSent:       r.Counter("radio_bytes_sent_total", "bytes transmitted including headers"),
		Deliveries:      r.Counter("radio_deliveries_total", "frames successfully delivered to a receiver"),
		DropsRange:      r.Counter("radio_drops_range_total", "frames lost to range/fading at delivery time"),
		DropsLoss:       r.Counter("radio_drops_loss_total", "frames lost to the independent loss process"),
		DropsFault:      r.Counter("radio_drops_fault_total", "frames removed by the fault injector"),
		DropsQueue:      r.Counter("radio_drops_queue_total", "frames dropped at a bounded per-link send queue"),
		NeighborQueries: r.Counter("radio_neighbor_queries_total", "neighbor-set probes against the spatial grid"),
		NeighborScanned: r.Counter("radio_neighbor_scanned_total", "candidate nodes distance-checked by neighbor probes"),
	}
}

// SetMetrics attaches telemetry to the medium; call before the simulation
// (or traffic) starts. The zero Metrics value detaches it.
func (m *Medium) SetMetrics(met Metrics) { m.met = met }
