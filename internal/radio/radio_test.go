package radio

import (
	"testing"

	"manetskyline/internal/mobility"
	"manetskyline/internal/sim"
	"manetskyline/internal/tuple"
)

type fakePayload int

func (f fakePayload) SizeBytes() int { return int(f) }

type capture struct {
	from []NodeID
	data []Payload
	at   []float64
}

func setup(t *testing.T, cfg Config, positions ...tuple.Point) (*sim.Engine, *Medium, []*capture) {
	t.Helper()
	eng := sim.NewEngine(1)
	m := New(eng, cfg)
	caps := make([]*capture, len(positions))
	for i, p := range positions {
		c := &capture{}
		caps[i] = c
		m.AddNode(mobility.Static(p), func(from NodeID, pl Payload) {
			c.from = append(c.from, from)
			c.data = append(c.data, pl)
			c.at = append(c.at, eng.Now())
		})
	}
	return eng, m, caps
}

func TestUnicastDelivery(t *testing.T) {
	eng, m, caps := setup(t, DefaultConfig(), tuple.Point{X: 0}, tuple.Point{X: 100})
	if !m.Unicast(0, 1, fakePayload(100)) {
		t.Fatalf("in-range unicast should send")
	}
	eng.RunAll()
	if len(caps[1].from) != 1 || caps[1].from[0] != 0 {
		t.Fatalf("receiver did not get the frame: %+v", caps[1])
	}
	// Delivery time = (100+48)*8/2e6 + 0.002.
	want := float64(148*8)/2e6 + 0.002
	if got := caps[1].at[0]; got < want-1e-12 || got > want+1e-12 {
		t.Errorf("delivery at %v, want %v", got, want)
	}
	if m.Counters.FramesSent != 1 || m.Counters.Receptions != 1 {
		t.Errorf("counters %+v", m.Counters)
	}
}

func TestUnicastOutOfRange(t *testing.T) {
	eng, m, caps := setup(t, DefaultConfig(), tuple.Point{X: 0}, tuple.Point{X: 500})
	if m.Unicast(0, 1, fakePayload(10)) {
		t.Fatalf("out-of-range unicast should fail immediately")
	}
	eng.RunAll()
	if len(caps[1].from) != 0 {
		t.Errorf("no delivery expected")
	}
	if m.Counters.FramesSent != 0 {
		t.Errorf("failed send must not count as a transmission")
	}
}

func TestTransmissionSerialization(t *testing.T) {
	// Two back-to-back frames from the same node: the second waits for the
	// first's airtime.
	eng, m, caps := setup(t, DefaultConfig(), tuple.Point{X: 0}, tuple.Point{X: 100})
	m.Unicast(0, 1, fakePayload(2000-48)) // exactly 2000 bytes on air
	m.Unicast(0, 1, fakePayload(2000-48))
	eng.RunAll()
	if len(caps[1].at) != 2 {
		t.Fatalf("want 2 deliveries, got %d", len(caps[1].at))
	}
	air := float64(2000*8) / 2e6 // 8 ms
	if d := caps[1].at[1] - caps[1].at[0]; d < air-1e-9 {
		t.Errorf("second frame arrived %v after first, want ≥ %v (serialized)", d, air)
	}
}

func TestBroadcast(t *testing.T) {
	eng, m, caps := setup(t, DefaultConfig(),
		tuple.Point{X: 0},   // sender
		tuple.Point{X: 100}, // in range
		tuple.Point{X: 200}, // in range
		tuple.Point{X: 900}, // out of range
	)
	n := m.Broadcast(0, fakePayload(50))
	if n != 2 {
		t.Fatalf("broadcast addressed %d receivers, want 2", n)
	}
	eng.RunAll()
	if len(caps[1].from) != 1 || len(caps[2].from) != 1 || len(caps[3].from) != 0 {
		t.Errorf("deliveries: %d %d %d", len(caps[1].from), len(caps[2].from), len(caps[3].from))
	}
	if m.Counters.FramesSent != 1 {
		t.Errorf("broadcast is one transmission, counted %d", m.Counters.FramesSent)
	}
	if m.Counters.Receptions != 2 {
		t.Errorf("receptions = %d, want 2", m.Counters.Receptions)
	}
}

func TestDropWhenReceiverMovesAway(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.Overhead = 10 // absurdly slow frame so the receiver can escape
	m := New(eng, cfg)
	got := 0
	m.AddNode(mobility.Static(tuple.Point{X: 0}), func(NodeID, Payload) {})
	// Receiver races away at 100 m/s starting at origin-adjacent position.
	m.AddNode(runner{}, func(NodeID, Payload) { got++ })
	if !m.Unicast(0, 1, fakePayload(10)) {
		t.Fatalf("receiver in range at send time")
	}
	eng.RunAll()
	if got != 0 {
		t.Errorf("frame should be dropped after receiver escaped")
	}
	if m.Counters.DroppedRange != 1 {
		t.Errorf("DroppedRange = %d", m.Counters.DroppedRange)
	}
}

// runner moves +100 m/s along x starting at (200,0).
type runner struct{}

func (runner) Pos(t float64) tuple.Point { return tuple.Point{X: 200 + 100*t} }

func TestRandomLoss(t *testing.T) {
	eng := sim.NewEngine(3)
	cfg := DefaultConfig()
	cfg.Loss = 0.5
	m := New(eng, cfg)
	got := 0
	m.AddNode(mobility.Static(tuple.Point{X: 0}), func(NodeID, Payload) {})
	m.AddNode(mobility.Static(tuple.Point{X: 50}), func(NodeID, Payload) { got++ })
	const n = 400
	for i := 0; i < n; i++ {
		m.Unicast(0, 1, fakePayload(10))
	}
	eng.RunAll()
	if got == 0 || got == n {
		t.Fatalf("with 50%% loss, deliveries = %d of %d", got, n)
	}
	if got < n/4 || got > 3*n/4 {
		t.Errorf("deliveries %d wildly off expected ~%d", got, n/2)
	}
	if m.Counters.DroppedLoss != n-got {
		t.Errorf("DroppedLoss = %d, want %d", m.Counters.DroppedLoss, n-got)
	}
}

func TestNeighborsAndInRange(t *testing.T) {
	r := DefaultConfig().Range
	_, m, _ := setup(t, DefaultConfig(),
		tuple.Point{X: 0}, tuple.Point{X: r}, tuple.Point{X: r + 1}, tuple.Point{X: 100})
	nb := m.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 3 {
		t.Errorf("Neighbors(0) = %v, want [1 3]", nb)
	}
	if !m.InRange(0, 1) {
		t.Errorf("boundary distance should be in range (inclusive)")
	}
	if m.InRange(0, 2) {
		t.Errorf("range+1 m should be out of range")
	}
	if m.InRange(0, 0) {
		t.Errorf("a node is not its own neighbor")
	}
}

func TestSelfUnicastPanics(t *testing.T) {
	_, m, _ := setup(t, DefaultConfig(), tuple.Point{X: 0})
	defer func() {
		if recover() == nil {
			t.Errorf("self-addressed unicast should panic")
		}
	}()
	m.Unicast(0, 0, fakePayload(1))
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []Config{
		{Range: 0, Bandwidth: 1},
		{Range: 1, Bandwidth: 0},
		{Range: 1, Bandwidth: 1, Overhead: -1},
		{Range: 1, Bandwidth: 1, Loss: 1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestNilHandlerPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	m := New(eng, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Errorf("nil handler should panic")
		}
	}()
	m.AddNode(mobility.Static(tuple.Point{}), nil)
}
