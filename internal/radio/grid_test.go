package radio

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"manetskyline/internal/mobility"
	"manetskyline/internal/sim"
)

// bruteNeighbors is the reference O(m) neighbor scan the grid must match
// exactly: every other node within range, in ascending ID order.
func bruteNeighbors(med *Medium, id NodeID) []NodeID {
	var out []NodeID
	p := med.PosOf(id)
	for other := NodeID(0); other < NodeID(med.NumNodes()); other++ {
		if other == id {
			continue
		}
		if p.WithinDist(med.PosOf(other), med.Config().Range) {
			out = append(out, other)
		}
	}
	return out
}

// TestNeighborsGridMatchesBruteForce drives random waypoint motion to random
// times and checks, at each instant and for every node, that the grid probe
// returns exactly the brute-force neighbor set — same IDs, same order. The
// small range exercises the sparse 3×3 probe (many occupied cells); the
// default 380 m range exercises the dense full-coverage scan.
func TestNeighborsGridMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		nodes int
		rng   float64
	}{
		{9, 380}, {49, 380}, {100, 380},
		{9, 100}, {49, 100}, {100, 100},
	} {
		t.Run(fmt.Sprintf("nodes=%d/range=%g", tc.nodes, tc.rng), func(t *testing.T) {
			eng := sim.NewEngine(3)
			cfg := DefaultConfig()
			cfg.Range = tc.rng
			med := New(eng, cfg)
			mcfg := mobility.DefaultConfig()
			for i := 0; i < tc.nodes; i++ {
				med.AddNode(mobility.NewWaypoint(mcfg, int64(i+1)), func(NodeID, Payload) {})
			}
			r := rand.New(rand.NewSource(17))
			now := 0.0
			for step := 0; step < 40; step++ {
				now += r.Float64() * 40
				eng.Run(now)
				for id := NodeID(0); id < NodeID(tc.nodes); id++ {
					got := med.Neighbors(id)
					want := bruteNeighbors(med, id)
					if !slices.Equal(got, want) {
						t.Fatalf("t=%g node %d: grid %v != brute force %v",
							now, id, got, want)
					}
				}
			}
		})
	}
}

// TestNeighborsIntoZeroAllocs pins the steady-state neighbor query and
// broadcast paths at zero heap allocations, in the style of the localsky
// TestHybridSkylineScratchZeroAllocs gate: one warm-up call sizes every
// buffer, then each further operation must allocate nothing.
func TestNeighborsIntoZeroAllocs(t *testing.T) {
	eng, med := benchMedium(100)
	buf := med.NeighborsInto(0, nil) // warm up buffers
	allocs := testing.AllocsPerRun(20, func() {
		buf = med.NeighborsInto(0, buf[:0])
	})
	if allocs != 0 {
		t.Errorf("NeighborsInto allocated %.1f objects/op, want 0", allocs)
	}

	p := benchPayload(64)
	med.Broadcast(0, p)
	eng.RunAll() // warm up the delivery pool and event queue
	allocs = testing.AllocsPerRun(20, func() {
		med.Broadcast(0, p)
		eng.RunAll()
	})
	if allocs != 0 {
		t.Errorf("Broadcast+deliver allocated %.1f objects/op, want 0", allocs)
	}
}
