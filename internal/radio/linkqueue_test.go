package radio

import (
	"math"
	"testing"

	"manetskyline/internal/sim"
)

// linkQueueMedium builds a star: one receiver at the origin-ish center and
// three senders on a circle inside its range but out of range of each
// other, so every broadcast is heard only by the center node.
func linkQueueMedium(t *testing.T, queue int) (*sim.Engine, *Medium, *[]float64) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.Range = 100
	cfg.LinkQueue = queue
	med := New(eng, cfg)
	var rx []float64
	med.AddNode(mobilityAt(500, 500), func(NodeID, Payload) { rx = append(rx, eng.Now()) })
	for i := 0; i < 3; i++ {
		a := 2 * math.Pi * float64(i) / 3
		med.AddNode(mobilityAt(500+90*math.Cos(a), 500+90*math.Sin(a)), func(NodeID, Payload) {
			t.Fatalf("senders must be out of range of each other")
		})
	}
	return eng, med, &rx
}

func mobilityAt(x, y float64) linearModel { return linearModel{x0: x, y0: y} }

// TestLinkQueueSerializesReceiver checks per-link transmit modeling:
// simultaneous frames addressed to one receiver arrive back-to-back,
// separated by the frame airtime, instead of landing at the same instant
// as the legacy shared-channel model allows.
func TestLinkQueueSerializesReceiver(t *testing.T) {
	eng, med, rx := linkQueueMedium(t, 8)
	p := benchPayload(64)
	airtime := float64(64+med.Config().HeaderBytes) * 8 / med.Config().Bandwidth
	nominal := airtime + med.Config().Overhead
	for s := NodeID(1); s <= 3; s++ {
		if n := med.Broadcast(s, p); n != 1 {
			t.Fatalf("sender %d addressed %d receivers, want 1", s, n)
		}
	}
	eng.RunAll()
	want := []float64{nominal, nominal + airtime, nominal + 2*airtime}
	if len(*rx) != 3 {
		t.Fatalf("got %d receptions, want 3", len(*rx))
	}
	for i, at := range *rx {
		if math.Abs(at-want[i]) > 1e-12 {
			t.Errorf("reception %d at t=%g, want %g", i, at, want[i])
		}
	}
	if med.Counters.DroppedQueue != 0 {
		t.Errorf("DroppedQueue = %d, want 0", med.Counters.DroppedQueue)
	}
}

// TestLinkQueueBoundedDrop checks the bounded send queue: with capacity 1
// airtime, the third simultaneous frame would queue 2 airtimes behind the
// receiver's busy horizon and must be dropped and counted.
func TestLinkQueueBoundedDrop(t *testing.T) {
	eng, med, rx := linkQueueMedium(t, 1)
	p := benchPayload(64)
	for s := NodeID(1); s <= 3; s++ {
		med.Broadcast(s, p)
	}
	eng.RunAll()
	if len(*rx) != 2 {
		t.Fatalf("got %d receptions, want 2 (third dropped at the queue)", len(*rx))
	}
	if med.Counters.DroppedQueue != 1 {
		t.Errorf("DroppedQueue = %d, want 1", med.Counters.DroppedQueue)
	}
	if med.Counters.Receptions != 2 {
		t.Errorf("Receptions = %d, want 2", med.Counters.Receptions)
	}
	// Every in-flight slot must have been recycled with its payload
	// released — the refcounted free list is what keeps a 30k-node flood
	// from retaining frames.
	if len(med.freeSlots) != len(med.inflight) {
		t.Errorf("leaked slots: %d free of %d", len(med.freeSlots), len(med.inflight))
	}
	for i := range med.inflight {
		if med.inflight[i].p != nil {
			t.Errorf("slot %d retains payload", i)
		}
	}
}

// TestLegacySlotRecycling pins the same no-leak invariant for the default
// shared-event delivery path.
func TestLegacySlotRecycling(t *testing.T) {
	eng, med, rx := linkQueueMedium(t, 0)
	p := benchPayload(64)
	for round := 0; round < 4; round++ {
		for s := NodeID(1); s <= 3; s++ {
			med.Broadcast(s, p)
		}
		eng.RunAll()
	}
	if len(*rx) != 12 {
		t.Fatalf("got %d receptions, want 12", len(*rx))
	}
	if len(med.freeSlots) != len(med.inflight) {
		t.Errorf("leaked slots: %d free of %d", len(med.freeSlots), len(med.inflight))
	}
	for i := range med.inflight {
		if med.inflight[i].p != nil {
			t.Errorf("slot %d retains payload", i)
		}
	}
}
