// Package radio models the wireless medium of the MANET simulation: a
// unit-disk 802.11-style broadcast channel in the spirit of the SWANS radio
// layer. Nodes hear each other within a fixed transmission range; frames
// take size/bandwidth transmission time plus a fixed per-frame overhead;
// each node serializes its own transmissions (a half-duplex radio); frames
// are lost when the receiver moves out of range mid-flight or by an
// independent loss probability that models contention and fading.
package radio

import (
	"fmt"
	"math/rand"

	"manetskyline/internal/mobility"
	"manetskyline/internal/sim"
	"manetskyline/internal/tuple"
)

// NodeID identifies a radio node; IDs are dense and start at zero.
type NodeID int

// Payload is any message carried in a frame; only its serialized size
// matters to the medium.
type Payload interface {
	// SizeBytes returns the payload's wire size.
	SizeBytes() int
}

// Handler receives delivered frames.
type Handler func(from NodeID, p Payload)

// Config parameterizes the medium.
type Config struct {
	// Range is the transmission radius in meters (802.11b outdoors ≈ 250).
	Range float64
	// Bandwidth is the channel rate in bits per second (802.11b ≈ 2 Mb/s,
	// the figure the paper cites when contrasting P2P links with cellular).
	Bandwidth float64
	// Overhead is the fixed per-frame latency in seconds: MAC contention,
	// preamble, propagation.
	Overhead float64
	// HeaderBytes is added to every payload (MAC + network headers).
	HeaderBytes int
	// Loss is an independent per-frame loss probability.
	Loss float64
	// FadeMargin models fading at the cell edge: reception probability
	// falls linearly from 1 at (1−FadeMargin)·Range to 0 at Range, instead
	// of the unit disk's hard cut. Zero keeps the deterministic unit disk.
	// Neighbour discovery still uses the full Range (a faded link exists,
	// it is just unreliable) — the gray-zone effect real 802.11 radios
	// exhibit.
	FadeMargin float64
}

// DefaultConfig returns 802.11b-like settings. The 380 m range matches the
// default free-space/two-ray radio of JiST/SWANS, the simulator the paper
// used; 250 m (the ns-2 convention) leaves 9-device networks in a 1 km²
// field partitioned almost all the time.
func DefaultConfig() Config {
	return Config{
		Range:       380,
		Bandwidth:   2e6,
		Overhead:    0.002,
		HeaderBytes: 48,
		Loss:        0,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Range <= 0 {
		return fmt.Errorf("radio: non-positive range %g", c.Range)
	}
	if c.Bandwidth <= 0 {
		return fmt.Errorf("radio: non-positive bandwidth %g", c.Bandwidth)
	}
	if c.Overhead < 0 {
		return fmt.Errorf("radio: negative overhead %g", c.Overhead)
	}
	if c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("radio: loss probability %g outside [0,1)", c.Loss)
	}
	if c.FadeMargin < 0 || c.FadeMargin > 1 {
		return fmt.Errorf("radio: fade margin %g outside [0,1]", c.FadeMargin)
	}
	return nil
}

// Counters aggregates medium activity. The query-message counts of the
// paper's Figure 12 are derived from these by the manet layer.
type Counters struct {
	// FramesSent counts transmissions (a broadcast is one transmission).
	FramesSent int
	// Receptions counts successful frame deliveries.
	Receptions int
	// DroppedRange counts frames lost because the receiver left range
	// between send and delivery.
	DroppedRange int
	// DroppedLoss counts frames lost to the random loss process.
	DroppedLoss int
	// BytesSent counts transmitted bytes including headers.
	BytesSent int
}

// Medium is the shared wireless channel.
type Medium struct {
	eng   *sim.Engine
	cfg   Config
	nodes []*node
	rng   *rand.Rand

	// Counters is exported for metric collection; reset between scenarios
	// if per-run deltas are needed.
	Counters Counters
}

type node struct {
	id        NodeID
	mob       mobility.Model
	handler   Handler
	busyUntil float64
}

// New creates an empty medium on the given engine.
func New(eng *sim.Engine, cfg Config) *Medium {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Medium{
		eng: eng,
		cfg: cfg,
		rng: rand.New(rand.NewSource(eng.RNG().Int63())),
	}
}

// AddNode registers a node with its mobility model and frame handler and
// returns its ID.
func (m *Medium) AddNode(mob mobility.Model, h Handler) NodeID {
	if h == nil {
		panic("radio: nil handler")
	}
	id := NodeID(len(m.nodes))
	m.nodes = append(m.nodes, &node{id: id, mob: mob, handler: h})
	return id
}

// NumNodes returns the number of registered nodes.
func (m *Medium) NumNodes() int { return len(m.nodes) }

// PosOf returns a node's current position.
func (m *Medium) PosOf(id NodeID) tuple.Point {
	return m.nodes[id].mob.Pos(m.eng.Now())
}

// InRange reports whether two nodes can currently hear each other.
func (m *Medium) InRange(a, b NodeID) bool {
	if a == b {
		return false
	}
	return m.PosOf(a).WithinDist(m.PosOf(b), m.cfg.Range)
}

// Neighbors returns the nodes currently within range of id, in ID order.
func (m *Medium) Neighbors(id NodeID) []NodeID {
	var out []NodeID
	p := m.PosOf(id)
	for _, n := range m.nodes {
		if n.id == id {
			continue
		}
		if p.WithinDist(n.mob.Pos(m.eng.Now()), m.cfg.Range) {
			out = append(out, n.id)
		}
	}
	return out
}

// txDelay computes the serialized transmission start and airtime for one
// frame from the given node, advancing the node's busy horizon.
func (m *Medium) txDelay(from *node, sizeBytes int) (start, airtime float64) {
	bits := float64(sizeBytes+m.cfg.HeaderBytes) * 8
	airtime = bits / m.cfg.Bandwidth
	start = m.eng.Now()
	if from.busyUntil > start {
		start = from.busyUntil
	}
	from.busyUntil = start + airtime
	return start, airtime
}

// Unicast queues one frame from -> to. It returns false without
// transmitting when the receiver is out of range at send time — the
// immediate link-break feedback AODV relies on. Delivery happens after
// queueing, airtime, and overhead, unless the receiver moved out of range
// meanwhile or the loss process discards the frame.
func (m *Medium) Unicast(from, to NodeID, p Payload) bool {
	if from == to {
		panic("radio: self-addressed frame")
	}
	if !m.InRange(from, to) {
		return false
	}
	src, dst := m.nodes[from], m.nodes[to]
	start, airtime := m.txDelay(src, p.SizeBytes())
	m.Counters.FramesSent++
	m.Counters.BytesSent += p.SizeBytes() + m.cfg.HeaderBytes
	deliverAt := start + airtime + m.cfg.Overhead
	m.eng.At(deliverAt, func() {
		if !m.received(from, to) {
			return
		}
		m.Counters.Receptions++
		dst.handler(from, p)
	})
	return true
}

// received decides, at delivery time, whether a frame from → to arrives:
// hard range cut, then edge fading, then the independent loss process.
func (m *Medium) received(from, to NodeID) bool {
	d := m.PosOf(from).Dist(m.PosOf(to))
	if d > m.cfg.Range {
		m.Counters.DroppedRange++
		return false
	}
	if m.cfg.FadeMargin > 0 {
		edge := m.cfg.Range * (1 - m.cfg.FadeMargin)
		if d > edge {
			pRecv := (m.cfg.Range - d) / (m.cfg.Range - edge)
			if m.rng.Float64() >= pRecv {
				m.Counters.DroppedRange++
				return false
			}
		}
	}
	if m.cfg.Loss > 0 && m.rng.Float64() < m.cfg.Loss {
		m.Counters.DroppedLoss++
		return false
	}
	return true
}

// Broadcast transmits one frame to every node currently in range and
// returns how many receivers were addressed. The transmission is a single
// busy period on the sender's radio; each addressed receiver independently
// suffers range and loss drops at delivery time.
func (m *Medium) Broadcast(from NodeID, p Payload) int {
	src := m.nodes[from]
	targets := m.Neighbors(from)
	start, airtime := m.txDelay(src, p.SizeBytes())
	m.Counters.FramesSent++
	m.Counters.BytesSent += p.SizeBytes() + m.cfg.HeaderBytes
	deliverAt := start + airtime + m.cfg.Overhead
	for _, to := range targets {
		to := to
		m.eng.At(deliverAt, func() {
			if !m.received(from, to) {
				return
			}
			m.Counters.Receptions++
			m.nodes[to].handler(from, p)
		})
	}
	return len(targets)
}

// Config returns the medium configuration.
func (m *Medium) Config() Config { return m.cfg }
