// Package radio models the wireless medium of the MANET simulation: a
// unit-disk 802.11-style broadcast channel in the spirit of the SWANS radio
// layer. Nodes hear each other within a fixed transmission range; frames
// take size/bandwidth transmission time plus a fixed per-frame overhead;
// each node serializes its own transmissions (a half-duplex radio); frames
// are lost when the receiver moves out of range mid-flight or by an
// independent loss probability that models contention and fading.
//
// Node state is struct-of-arrays: positions, busy horizons, handlers, and
// grid cells live in flat slices indexed by NodeID rather than per-node
// heap objects, so a 100k-node medium is a handful of large allocations
// the garbage collector scans in O(arrays), not O(nodes).
//
// Spatial queries run on an epoch-rebuilt two-level grid (see grid.go)
// whose probes are exact: a neighbor query touches only the cells a true
// neighbor could occupy given the configured speed bound. In-flight frames
// are free-listed delivery records referenced from compact scheduler
// events (sim.Kind), so a 50k-receiver flood schedules fixed-size value
// events instead of materializing closures per hop.
package radio

import (
	"fmt"
	"math/rand"
	"slices"

	"manetskyline/internal/mobility"
	"manetskyline/internal/sim"
	"manetskyline/internal/tuple"
)

// NodeID identifies a radio node; IDs are dense and start at zero.
type NodeID int

// Payload is any message carried in a frame; only its serialized size
// matters to the medium.
type Payload interface {
	// SizeBytes returns the payload's wire size.
	SizeBytes() int
}

// Handler receives delivered frames.
type Handler func(from NodeID, p Payload)

// FaultInjector is the hook surface for scripted fault schedules
// (internal/faults). Implementations must be deterministic functions of
// their own seeded state: they are consulted on the transmit and delivery
// paths but must never draw from the medium's random source, so a medium
// without an injector runs byte-identically to one with a nil injector.
type FaultInjector interface {
	// NodeDown reports whether the node is silenced (crashed or paused) at
	// time now: it neither transmits nor receives.
	NodeDown(id NodeID, now float64) bool
	// CutLink decides at delivery time whether the frame from → to is
	// removed by the schedule (downed receiver, link/region loss windows,
	// partitions).
	CutLink(from, to NodeID, now float64, fromPos, toPos tuple.Point) bool
	// TxEffects perturbs one transmission: extraDelay postpones the nominal
	// delivery and each dupDelays entry schedules one duplicate copy that
	// many seconds after it. The slice may be reused across calls.
	TxEffects(from NodeID, now float64) (extraDelay float64, dupDelays []float64)
}

// Config parameterizes the medium.
type Config struct {
	// Range is the transmission radius in meters (802.11b outdoors ≈ 250).
	Range float64
	// Bandwidth is the channel rate in bits per second (802.11b ≈ 2 Mb/s,
	// the figure the paper cites when contrasting P2P links with cellular).
	Bandwidth float64
	// Overhead is the fixed per-frame latency in seconds: MAC contention,
	// preamble, propagation.
	Overhead float64
	// HeaderBytes is added to every payload (MAC + network headers).
	HeaderBytes int
	// Loss is an independent per-frame loss probability.
	Loss float64
	// FadeMargin models fading at the cell edge: reception probability
	// falls linearly from 1 at (1−FadeMargin)·Range to 0 at Range, instead
	// of the unit disk's hard cut. Zero keeps the deterministic unit disk.
	// Neighbour discovery still uses the full Range (a faded link exists,
	// it is just unreliable) — the gray-zone effect real 802.11 radios
	// exhibit.
	FadeMargin float64
	// MaxSpeed declares the fastest any node moves, enabling epoch-based
	// grid maintenance: 0 (the zero value) means unknown — the grid
	// rebuilds whenever the clock moves, exact for arbitrary motion
	// including teleports; > 0 is a bound in m/s — the grid rebuilds only
	// when accumulated drift could exceed one cell and probes expand their
	// ring to stay exact; < 0 declares all nodes static — the grid is
	// built once and never again. Neighbor sets are identical in every
	// mode; only the maintenance cost differs.
	MaxSpeed float64
	// LinkQueue, when positive, switches broadcast delivery to per-link
	// transmit modeling: each receiver gets its own delivery event gated by
	// a per-receiver busy horizon, and a frame whose queueing delay at a
	// receiver would exceed LinkQueue airtimes is dropped (DroppedQueue) —
	// the bounded send-queue behavior of real link layers. Zero keeps the
	// legacy shared delivery event with no receiver-side contention.
	LinkQueue int
}

// DefaultConfig returns 802.11b-like settings. The 380 m range matches the
// default free-space/two-ray radio of JiST/SWANS, the simulator the paper
// used; 250 m (the ns-2 convention) leaves 9-device networks in a 1 km²
// field partitioned almost all the time.
func DefaultConfig() Config {
	return Config{
		Range:       380,
		Bandwidth:   2e6,
		Overhead:    0.002,
		HeaderBytes: 48,
		Loss:        0,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Range <= 0 {
		return fmt.Errorf("radio: non-positive range %g", c.Range)
	}
	if c.Bandwidth <= 0 {
		return fmt.Errorf("radio: non-positive bandwidth %g", c.Bandwidth)
	}
	if c.Overhead < 0 {
		return fmt.Errorf("radio: negative overhead %g", c.Overhead)
	}
	if c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("radio: loss probability %g outside [0,1)", c.Loss)
	}
	if c.FadeMargin < 0 || c.FadeMargin > 1 {
		return fmt.Errorf("radio: fade margin %g outside [0,1]", c.FadeMargin)
	}
	if c.LinkQueue < 0 {
		return fmt.Errorf("radio: negative link queue %d", c.LinkQueue)
	}
	return nil
}

// Counters aggregates medium activity. The query-message counts of the
// paper's Figure 12 are derived from these by the manet layer.
type Counters struct {
	// FramesSent counts transmissions (a broadcast is one transmission).
	FramesSent int
	// Receptions counts successful frame deliveries.
	Receptions int
	// DroppedRange counts frames lost because the receiver left range
	// between send and delivery.
	DroppedRange int
	// DroppedLoss counts frames lost to the random loss process.
	DroppedLoss int
	// DroppedFault counts frames removed by an attached fault injector
	// (outages, severed links, partitions).
	DroppedFault int
	// DroppedQueue counts frames dropped at a receiver's bounded link
	// queue (LinkQueue mode only).
	DroppedQueue int
	// DupedFrames counts duplicate deliveries a fault injector scheduled.
	DupedFrames int
	// BytesSent counts transmitted bytes including headers.
	BytesSent int
}

// Medium is the shared wireless channel.
type Medium struct {
	eng *sim.Engine
	cfg Config
	rng *rand.Rand

	// Node state, struct-of-arrays indexed by NodeID.
	mobs      []mobility.Model
	handlers  []Handler
	busyUntil []float64 // transmit serialization horizon per sender
	posAt     []float64 // engine time of the position memo; -1 = never
	posX      []float64
	posY      []float64
	rxBusy    []float64 // receive horizon per receiver (LinkQueue mode)
	nodeCell  []int32   // fine grid cell per node, maintained by grid.go

	grid    grid
	scratch []int32 // candidate buffer for grid probes

	// In-flight frames are free-listed records referenced by slot index
	// from compact scheduler events, so steady-state transmission
	// allocates nothing and the event queue carries no pointers.
	deliverKind sim.Kind // a = slot: deliver to every captured receiver
	linkKind    sim.Kind // a = slot, b = receiver: per-link delivery
	inflight    []delivery
	freeSlots   []uint32

	// Counters is exported for metric collection; reset between scenarios
	// if per-run deltas are needed.
	Counters Counters

	// met is the optional telemetry surface (zero value = disabled).
	met Metrics

	// faults is the optional fault injector (nil = fault-free medium).
	faults FaultInjector
}

// delivery is one in-flight frame: the captured receiver list plus, in
// LinkQueue mode, a reference count of per-link events still to fire.
type delivery struct {
	from NodeID
	refs int32
	to   []NodeID
	p    Payload
}

// New creates an empty medium on the given engine.
func New(eng *sim.Engine, cfg Config) *Medium {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Medium{
		eng: eng,
		cfg: cfg,
		rng: rand.New(rand.NewSource(eng.RNG().Int63())),
	}
	m.grid.side = cfg.Range
	m.grid.maxSpeed = cfg.MaxSpeed
	m.deliverKind = eng.RegisterKind(m.runDelivery)
	m.linkKind = eng.RegisterKind(m.runLinkDelivery)
	return m
}

// AddNode registers a node with its mobility model and frame handler and
// returns its ID.
func (m *Medium) AddNode(mob mobility.Model, h Handler) NodeID {
	if h == nil {
		panic("radio: nil handler")
	}
	id := NodeID(len(m.mobs))
	m.mobs = append(m.mobs, mob)
	m.handlers = append(m.handlers, h)
	m.busyUntil = append(m.busyUntil, 0)
	m.posAt = append(m.posAt, -1)
	m.posX = append(m.posX, 0)
	m.posY = append(m.posY, 0)
	m.rxBusy = append(m.rxBusy, 0)
	m.grid.built = false
	return id
}

// NumNodes returns the number of registered nodes.
func (m *Medium) NumNodes() int { return len(m.mobs) }

// posOfIdx returns node i's memoized position at time now, refreshing the
// memo (and migrating the node's grid cell under a declared speed bound)
// when the clock has moved since the last refresh.
func (m *Medium) posOfIdx(i int32, now float64) tuple.Point {
	if m.posAt[i] != now {
		p := m.mobs[i].Pos(now)
		m.posX[i], m.posY[i] = p.X, p.Y
		m.posAt[i] = now
		if m.grid.built && m.grid.maxSpeed != 0 {
			m.gridMigrate(i, p.X, p.Y)
		}
	}
	return tuple.Point{X: m.posX[i], Y: m.posY[i]}
}

// PosOf returns a node's current position.
func (m *Medium) PosOf(id NodeID) tuple.Point {
	return m.posOfIdx(int32(id), m.eng.Now())
}

// InRange reports whether two nodes can currently hear each other.
func (m *Medium) InRange(a, b NodeID) bool {
	if a == b {
		return false
	}
	now := m.eng.Now()
	return m.posOfIdx(int32(a), now).WithinDist(m.posOfIdx(int32(b), now), m.cfg.Range)
}

// Neighbors returns the nodes currently within range of id, in ID order.
func (m *Medium) Neighbors(id NodeID) []NodeID {
	return m.NeighborsInto(id, nil)
}

// NeighborsInto appends the nodes currently within range of id to buf[:0],
// in ID order, and returns the result. Passing a reused buffer makes the
// query allocation-free: only the grid cells a true neighbor could occupy
// are probed (see grid.go for the staleness ring). When the probe covers
// every occupied cell — the norm at the paper's geometry, where Range is a
// large fraction of the field — it degenerates to a direct scan over the
// memoized positions, with no gather or re-sort.
func (m *Medium) NeighborsInto(id NodeID, buf []NodeID) []NodeID {
	buf = buf[:0]
	m.met.NeighborQueries.Inc()
	now := m.eng.Now()
	m.gridEnsure(now)
	p := m.posOfIdx(int32(id), now)
	// Under a positive speed bound, grid entries may be up to
	// maxSpeed·(now−epoch) stale; expanding the probe ring by that much
	// keeps the result exact (candidates are re-checked at true positions).
	radius := m.cfg.Range
	if ms := m.grid.maxSpeed; ms > 0 {
		radius += ms * (now - m.grid.epoch)
	}
	cand, full := m.gridGather(p, radius)
	if full {
		// Full coverage: every node is a candidate, already in ID order.
		m.met.NeighborScanned.Add(int64(len(m.mobs) - 1))
		for i := range m.mobs {
			if NodeID(i) == id {
				continue
			}
			if p.WithinDist(m.posOfIdx(int32(i), now), m.cfg.Range) {
				buf = append(buf, NodeID(i))
			}
		}
		return buf
	}
	// Cells are visited in block order, so candidates must be re-sorted to
	// restore the global ID order the brute-force scan produced.
	m.met.NeighborScanned.Add(int64(len(cand)))
	slices.Sort(cand)
	for _, ni := range cand {
		if NodeID(ni) == id {
			continue
		}
		if p.WithinDist(m.posOfIdx(ni, now), m.cfg.Range) {
			buf = append(buf, NodeID(ni))
		}
	}
	m.scratch = cand[:0]
	return buf
}

// txDelay computes the serialized transmission start and airtime for one
// frame from the given node, advancing the node's busy horizon.
func (m *Medium) txDelay(from NodeID, sizeBytes int) (start, airtime float64) {
	bits := float64(sizeBytes+m.cfg.HeaderBytes) * 8
	airtime = bits / m.cfg.Bandwidth
	start = m.eng.Now()
	if bu := m.busyUntil[from]; bu > start {
		start = bu
	}
	m.busyUntil[from] = start + airtime
	return start, airtime
}

// getSlot pops a free delivery slot (or grows the pool).
func (m *Medium) getSlot() uint32 {
	if n := len(m.freeSlots); n > 0 {
		s := m.freeSlots[n-1]
		m.freeSlots = m.freeSlots[:n-1]
		return s
	}
	m.inflight = append(m.inflight, delivery{})
	return uint32(len(m.inflight) - 1)
}

// putSlot recycles a delivery slot, releasing its payload reference.
func (m *Medium) putSlot(s uint32) {
	m.inflight[s].p = nil
	m.freeSlots = append(m.freeSlots, s)
}

// runDelivery fires a shared delivery event: the frame reaches every
// captured receiver in ID order — the exact per-receiver order the former
// one-event-per-receiver scheme produced, so RNG draws are unchanged.
func (m *Medium) runDelivery(slot uint32, _ uint64) {
	d := &m.inflight[slot]
	from, p, to := d.from, d.p, d.to
	// Handlers may transmit, growing m.inflight: use the captured locals,
	// not d, past this point.
	for _, rcv := range to {
		if !m.received(from, rcv) {
			continue
		}
		m.Counters.Receptions++
		m.met.Deliveries.Inc()
		m.handlers[rcv](from, p)
	}
	m.putSlot(slot)
}

// runLinkDelivery fires one per-link delivery event (LinkQueue mode): the
// frame reaches the single receiver packed in b, and the slot is recycled
// when its last per-link event has fired.
func (m *Medium) runLinkDelivery(slot uint32, b uint64) {
	d := &m.inflight[slot]
	from, p := d.from, d.p
	d.refs--
	last := d.refs == 0
	rcv := NodeID(b)
	if m.received(from, rcv) {
		m.Counters.Receptions++
		m.met.Deliveries.Inc()
		m.handlers[rcv](from, p) // may grow m.inflight; d is stale after
	}
	if last {
		m.putSlot(slot)
	}
}

// SetFaults attaches a fault injector to the medium; nil detaches it. The
// injector is consulted only when non-nil, so the fault-free fast path is
// untouched.
func (m *Medium) SetFaults(f FaultInjector) { m.faults = f }

// scheduleDelivery queues the slot's frame at its nominal delivery time,
// applying any fault-injected reordering delay and duplicate copies first
// (duplicates are scheduled before the original, preserving the event
// sequence order of the previous implementation).
func (m *Medium) scheduleDelivery(slot uint32, nominal, airtime float64) {
	at := nominal
	if m.faults != nil {
		extra, dups := m.faults.TxEffects(m.inflight[slot].from, m.eng.Now())
		at += extra
		for _, dd := range dups {
			c := m.getSlot()
			src := &m.inflight[slot] // re-take: getSlot may have grown the pool
			cp := &m.inflight[c]
			cp.from = src.from
			cp.to = append(cp.to[:0], src.to...)
			cp.p = src.p
			m.Counters.DupedFrames++
			m.sendFrame(c, at+dd, airtime)
		}
	}
	m.sendFrame(slot, at, airtime)
}

// sendFrame schedules the slot's delivery event(s). With LinkQueue off,
// one shared compact event walks the receiver list at delivery time. With
// LinkQueue on, each receiver gets its own event serialized behind that
// receiver's busy horizon, and frames that would queue longer than
// LinkQueue airtimes are dropped — explicit per-link transmit modeling.
func (m *Medium) sendFrame(slot uint32, at, airtime float64) {
	if m.cfg.LinkQueue <= 0 {
		m.eng.AtKind(at, m.deliverKind, slot, 0)
		return
	}
	d := &m.inflight[slot]
	capTime := float64(m.cfg.LinkQueue) * airtime
	queued := int32(0)
	for _, rcv := range d.to {
		arr := at
		if rb := m.rxBusy[rcv]; rb > arr {
			arr = rb
		}
		// Compare horizons, not differences: (at+airtime)−at need not equal
		// airtime in floating point, but both horizons below are built from
		// the same additions, so a queue of exactly LinkQueue frames is
		// admitted bit-reliably.
		if arr > at+capTime {
			m.Counters.DroppedQueue++
			m.met.DropsQueue.Inc()
			continue
		}
		m.rxBusy[rcv] = arr + airtime
		m.eng.AtKind(arr, m.linkKind, slot, uint64(rcv))
		queued++
	}
	d.refs = queued
	if queued == 0 {
		m.putSlot(slot)
	}
}

// Unicast queues one frame from -> to. It returns false without
// transmitting when the receiver is out of range at send time — the
// immediate link-break feedback AODV relies on. Delivery happens after
// queueing, airtime, and overhead, unless the receiver moved out of range
// meanwhile or the loss process discards the frame.
func (m *Medium) Unicast(from, to NodeID, p Payload) bool {
	if from == to {
		panic("radio: self-addressed frame")
	}
	if m.faults != nil && m.faults.NodeDown(from, m.eng.Now()) {
		return false
	}
	if !m.InRange(from, to) {
		return false
	}
	start, airtime := m.txDelay(from, p.SizeBytes())
	m.Counters.FramesSent++
	m.Counters.BytesSent += p.SizeBytes() + m.cfg.HeaderBytes
	m.met.Unicasts.Inc()
	m.met.FramesSent.Inc()
	m.met.BytesSent.Add(int64(p.SizeBytes() + m.cfg.HeaderBytes))
	slot := m.getSlot()
	d := &m.inflight[slot]
	d.from = from
	d.to = append(d.to[:0], to)
	d.p = p
	m.scheduleDelivery(slot, start+airtime+m.cfg.Overhead, airtime)
	return true
}

// received decides, at delivery time, whether a frame from → to arrives:
// hard range cut, then edge fading, then the independent loss process.
func (m *Medium) received(from, to NodeID) bool {
	if m.faults != nil &&
		m.faults.CutLink(from, to, m.eng.Now(), m.PosOf(from), m.PosOf(to)) {
		m.Counters.DroppedFault++
		m.met.DropsFault.Inc()
		return false
	}
	d := m.PosOf(from).Dist(m.PosOf(to))
	if d > m.cfg.Range {
		m.Counters.DroppedRange++
		m.met.DropsRange.Inc()
		return false
	}
	if m.cfg.FadeMargin > 0 {
		edge := m.cfg.Range * (1 - m.cfg.FadeMargin)
		if d > edge {
			pRecv := (m.cfg.Range - d) / (m.cfg.Range - edge)
			if m.rng.Float64() >= pRecv {
				m.Counters.DroppedRange++
				m.met.DropsRange.Inc()
				return false
			}
		}
	}
	if m.cfg.Loss > 0 && m.rng.Float64() < m.cfg.Loss {
		m.Counters.DroppedLoss++
		m.met.DropsLoss.Inc()
		return false
	}
	return true
}

// Broadcast transmits one frame to every node currently in range and
// returns how many receivers were addressed. The transmission is a single
// busy period on the sender's radio; each addressed receiver independently
// suffers range and loss drops at delivery time.
func (m *Medium) Broadcast(from NodeID, p Payload) int {
	if m.faults != nil && m.faults.NodeDown(from, m.eng.Now()) {
		return 0
	}
	slot := m.getSlot()
	d := &m.inflight[slot]
	d.to = m.NeighborsInto(from, d.to)
	start, airtime := m.txDelay(from, p.SizeBytes())
	m.Counters.FramesSent++
	m.Counters.BytesSent += p.SizeBytes() + m.cfg.HeaderBytes
	m.met.Broadcasts.Inc()
	m.met.FramesSent.Inc()
	m.met.BytesSent.Add(int64(p.SizeBytes() + m.cfg.HeaderBytes))
	nrecv := len(d.to)
	if nrecv == 0 {
		m.putSlot(slot)
		return 0
	}
	d.from = from
	d.p = p
	m.scheduleDelivery(slot, start+airtime+m.cfg.Overhead, airtime)
	return nrecv
}

// Config returns the medium configuration.
func (m *Medium) Config() Config { return m.cfg }
