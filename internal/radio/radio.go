// Package radio models the wireless medium of the MANET simulation: a
// unit-disk 802.11-style broadcast channel in the spirit of the SWANS radio
// layer. Nodes hear each other within a fixed transmission range; frames
// take size/bandwidth transmission time plus a fixed per-frame overhead;
// each node serializes its own transmissions (a half-duplex radio); frames
// are lost when the receiver moves out of range mid-flight or by an
// independent loss probability that models contention and fading.
//
// Spatial queries run on a uniform hash grid with cell side equal to the
// transmission range: a neighbor query probes only the 3×3 cell block
// around the asking node instead of scanning every node. Node positions and
// grid cells are lazily refreshed once per engine timestep (positions are a
// pure function of simulated time, so every event at the same instant sees
// the same memoized positions). Broadcast delivery is a single pooled event
// that iterates its captured receiver list, keeping the steady-state
// transmit path allocation-free.
package radio

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"manetskyline/internal/mobility"
	"manetskyline/internal/sim"
	"manetskyline/internal/tuple"
)

// NodeID identifies a radio node; IDs are dense and start at zero.
type NodeID int

// Payload is any message carried in a frame; only its serialized size
// matters to the medium.
type Payload interface {
	// SizeBytes returns the payload's wire size.
	SizeBytes() int
}

// Handler receives delivered frames.
type Handler func(from NodeID, p Payload)

// FaultInjector is the hook surface for scripted fault schedules
// (internal/faults). Implementations must be deterministic functions of
// their own seeded state: they are consulted on the transmit and delivery
// paths but must never draw from the medium's random source, so a medium
// without an injector runs byte-identically to one with a nil injector.
type FaultInjector interface {
	// NodeDown reports whether the node is silenced (crashed or paused) at
	// time now: it neither transmits nor receives.
	NodeDown(id NodeID, now float64) bool
	// CutLink decides at delivery time whether the frame from → to is
	// removed by the schedule (downed receiver, link/region loss windows,
	// partitions).
	CutLink(from, to NodeID, now float64, fromPos, toPos tuple.Point) bool
	// TxEffects perturbs one transmission: extraDelay postpones the nominal
	// delivery and each dupDelays entry schedules one duplicate copy that
	// many seconds after it. The slice may be reused across calls.
	TxEffects(from NodeID, now float64) (extraDelay float64, dupDelays []float64)
}

// Config parameterizes the medium.
type Config struct {
	// Range is the transmission radius in meters (802.11b outdoors ≈ 250).
	Range float64
	// Bandwidth is the channel rate in bits per second (802.11b ≈ 2 Mb/s,
	// the figure the paper cites when contrasting P2P links with cellular).
	Bandwidth float64
	// Overhead is the fixed per-frame latency in seconds: MAC contention,
	// preamble, propagation.
	Overhead float64
	// HeaderBytes is added to every payload (MAC + network headers).
	HeaderBytes int
	// Loss is an independent per-frame loss probability.
	Loss float64
	// FadeMargin models fading at the cell edge: reception probability
	// falls linearly from 1 at (1−FadeMargin)·Range to 0 at Range, instead
	// of the unit disk's hard cut. Zero keeps the deterministic unit disk.
	// Neighbour discovery still uses the full Range (a faded link exists,
	// it is just unreliable) — the gray-zone effect real 802.11 radios
	// exhibit.
	FadeMargin float64
}

// DefaultConfig returns 802.11b-like settings. The 380 m range matches the
// default free-space/two-ray radio of JiST/SWANS, the simulator the paper
// used; 250 m (the ns-2 convention) leaves 9-device networks in a 1 km²
// field partitioned almost all the time.
func DefaultConfig() Config {
	return Config{
		Range:       380,
		Bandwidth:   2e6,
		Overhead:    0.002,
		HeaderBytes: 48,
		Loss:        0,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Range <= 0 {
		return fmt.Errorf("radio: non-positive range %g", c.Range)
	}
	if c.Bandwidth <= 0 {
		return fmt.Errorf("radio: non-positive bandwidth %g", c.Bandwidth)
	}
	if c.Overhead < 0 {
		return fmt.Errorf("radio: negative overhead %g", c.Overhead)
	}
	if c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("radio: loss probability %g outside [0,1)", c.Loss)
	}
	if c.FadeMargin < 0 || c.FadeMargin > 1 {
		return fmt.Errorf("radio: fade margin %g outside [0,1]", c.FadeMargin)
	}
	return nil
}

// Counters aggregates medium activity. The query-message counts of the
// paper's Figure 12 are derived from these by the manet layer.
type Counters struct {
	// FramesSent counts transmissions (a broadcast is one transmission).
	FramesSent int
	// Receptions counts successful frame deliveries.
	Receptions int
	// DroppedRange counts frames lost because the receiver left range
	// between send and delivery.
	DroppedRange int
	// DroppedLoss counts frames lost to the random loss process.
	DroppedLoss int
	// DroppedFault counts frames removed by an attached fault injector
	// (outages, severed links, partitions).
	DroppedFault int
	// DupedFrames counts duplicate deliveries a fault injector scheduled.
	DupedFrames int
	// BytesSent counts transmitted bytes including headers.
	BytesSent int
}

// Medium is the shared wireless channel.
type Medium struct {
	eng   *sim.Engine
	cfg   Config
	nodes []node
	rng   *rand.Rand

	// Spatial grid over node positions, cell side = Range. A neighbor
	// query probes the 3×3 block around the asking node's cell; cells are
	// rebuilt lazily at most once per engine timestep. The grid is a dense
	// array over the occupied cell bounding box — node fields are bounded
	// (mobility spaces are), so this stays small and avoids hashing.
	cells    []cell
	gridMin  cellKey // cell coordinate of cells[0]
	gridW    int32   // columns in the dense array
	gridH    int32   // rows in the dense array
	gridTime float64
	gridOK   bool
	scratch  []NodeID // candidate buffer for grid probes

	// free is the pool of delivery events; a delivery returns itself here
	// after it runs, so steady-state transmission allocates nothing.
	free []*delivery

	// Counters is exported for metric collection; reset between scenarios
	// if per-run deltas are needed.
	Counters Counters

	// met is the optional telemetry surface (zero value = disabled).
	met Metrics

	// faults is the optional fault injector (nil = fault-free medium).
	faults FaultInjector
}

type node struct {
	id        NodeID
	mob       mobility.Model
	handler   Handler
	busyUntil float64

	// Per-timestep position memo: positions are a pure function of the
	// engine clock, so one event never recomputes the same node's position.
	posAt float64
	posOK bool
	pos   tuple.Point
	cell  cellKey // grid cell at the memoized position
}

type cellKey struct{ cx, cy int32 }

type cell struct{ ids []NodeID }

// New creates an empty medium on the given engine.
func New(eng *sim.Engine, cfg Config) *Medium {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Medium{
		eng: eng,
		cfg: cfg,
		rng: rand.New(rand.NewSource(eng.RNG().Int63())),
	}
}

// AddNode registers a node with its mobility model and frame handler and
// returns its ID.
func (m *Medium) AddNode(mob mobility.Model, h Handler) NodeID {
	if h == nil {
		panic("radio: nil handler")
	}
	id := NodeID(len(m.nodes))
	m.nodes = append(m.nodes, node{id: id, mob: mob, handler: h})
	m.gridOK = false
	return id
}

// NumNodes returns the number of registered nodes.
func (m *Medium) NumNodes() int { return len(m.nodes) }

// posOf returns n's memoized position at the current engine time.
func (m *Medium) posOf(n *node) tuple.Point {
	now := m.eng.Now()
	if !n.posOK || n.posAt != now {
		n.pos = n.mob.Pos(now)
		n.posAt = now
		n.posOK = true
	}
	return n.pos
}

// PosOf returns a node's current position.
func (m *Medium) PosOf(id NodeID) tuple.Point {
	return m.posOf(&m.nodes[id])
}

// InRange reports whether two nodes can currently hear each other.
func (m *Medium) InRange(a, b NodeID) bool {
	if a == b {
		return false
	}
	return m.posOf(&m.nodes[a]).WithinDist(m.posOf(&m.nodes[b]), m.cfg.Range)
}

// cellOf maps a position to its grid cell (cell side = Range).
func (m *Medium) cellOf(p tuple.Point) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / m.cfg.Range)),
		cy: int32(math.Floor(p.Y / m.cfg.Range)),
	}
}

// refreshGrid rebuilds the spatial index for the current engine timestep if
// it is stale: one pass memoizes every node's position and cell and tracks
// the occupied cell bounding box, a second pass buckets the nodes. Nodes are
// inserted in ID order, so every cell's list is ID-sorted; buckets keep
// their capacity across rebuilds.
func (m *Medium) refreshGrid() {
	now := m.eng.Now()
	if m.gridOK && m.gridTime == now {
		return
	}
	if len(m.nodes) == 0 {
		m.gridW, m.gridH = 0, 0
		m.gridTime = now
		m.gridOK = true
		return
	}
	min := m.cellOf(m.posOf(&m.nodes[0]))
	max := min
	m.nodes[0].cell = min
	for i := 1; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		k := m.cellOf(m.posOf(n))
		n.cell = k
		if k.cx < min.cx {
			min.cx = k.cx
		} else if k.cx > max.cx {
			max.cx = k.cx
		}
		if k.cy < min.cy {
			min.cy = k.cy
		} else if k.cy > max.cy {
			max.cy = k.cy
		}
	}
	m.gridMin = min
	m.gridW = max.cx - min.cx + 1
	m.gridH = max.cy - min.cy + 1
	size := int(m.gridW) * int(m.gridH)
	for len(m.cells) < size {
		m.cells = append(m.cells, cell{})
	}
	for i := 0; i < size; i++ {
		m.cells[i].ids = m.cells[i].ids[:0]
	}
	for i := range m.nodes {
		k := m.nodes[i].cell
		idx := int(k.cy-min.cy)*int(m.gridW) + int(k.cx-min.cx)
		m.cells[idx].ids = append(m.cells[idx].ids, NodeID(i))
	}
	m.gridTime = now
	m.gridOK = true
}

// Neighbors returns the nodes currently within range of id, in ID order.
func (m *Medium) Neighbors(id NodeID) []NodeID {
	return m.NeighborsInto(id, nil)
}

// NeighborsInto appends the nodes currently within range of id to buf[:0],
// in ID order, and returns the result. Passing a reused buffer makes the
// query allocation-free: only the 3×3 cell block around id is probed. When
// the block covers every occupied cell — the norm at the paper's geometry,
// where Range is a large fraction of the field — the probe degenerates to a
// direct scan over the memoized positions, with no gather or re-sort.
func (m *Medium) NeighborsInto(id NodeID, buf []NodeID) []NodeID {
	buf = buf[:0]
	m.met.NeighborQueries.Inc()
	m.refreshGrid()
	self := &m.nodes[id]
	p := self.pos // memoized by refreshGrid
	ck := self.cell
	// Clip the 3×3 block to the occupied bounding box (local coordinates).
	bx0, bx1 := ck.cx-1-m.gridMin.cx, ck.cx+1-m.gridMin.cx
	by0, by1 := ck.cy-1-m.gridMin.cy, ck.cy+1-m.gridMin.cy
	if bx0 < 0 {
		bx0 = 0
	}
	if by0 < 0 {
		by0 = 0
	}
	if bx1 >= m.gridW {
		bx1 = m.gridW - 1
	}
	if by1 >= m.gridH {
		by1 = m.gridH - 1
	}
	if bx0 == 0 && by0 == 0 && bx1 == m.gridW-1 && by1 == m.gridH-1 {
		// Full coverage: every node is a candidate, already in ID order.
		m.met.NeighborScanned.Add(int64(len(m.nodes) - 1))
		for i := range m.nodes {
			n := &m.nodes[i]
			if n.id != id && p.WithinDist(n.pos, m.cfg.Range) {
				buf = append(buf, n.id)
			}
		}
		return buf
	}
	cand := m.scratch[:0]
	for cy := by0; cy <= by1; cy++ {
		row := int(cy) * int(m.gridW)
		for cx := bx0; cx <= bx1; cx++ {
			cand = append(cand, m.cells[row+int(cx)].ids...)
		}
	}
	// Cells are visited in block order, so candidates must be re-sorted to
	// restore the global ID order the brute-force scan produced.
	m.met.NeighborScanned.Add(int64(len(cand)))
	slices.Sort(cand)
	for _, nid := range cand {
		if nid == id {
			continue
		}
		if p.WithinDist(m.nodes[nid].pos, m.cfg.Range) {
			buf = append(buf, nid)
		}
	}
	m.scratch = cand[:0]
	return buf
}

// txDelay computes the serialized transmission start and airtime for one
// frame from the given node, advancing the node's busy horizon.
func (m *Medium) txDelay(from *node, sizeBytes int) (start, airtime float64) {
	bits := float64(sizeBytes+m.cfg.HeaderBytes) * 8
	airtime = bits / m.cfg.Bandwidth
	start = m.eng.Now()
	if from.busyUntil > start {
		start = from.busyUntil
	}
	from.busyUntil = start + airtime
	return start, airtime
}

// delivery is a pooled in-flight frame: one scheduled event that, at
// delivery time, applies the range/fade/loss processes to each addressed
// receiver in ID order — the exact per-receiver order the former
// one-event-per-receiver scheme produced, so RNG draws are unchanged.
type delivery struct {
	m    *Medium
	from NodeID
	to   []NodeID
	p    Payload
}

// Run delivers the frame to every captured receiver and recycles itself.
func (d *delivery) Run() {
	m := d.m
	for _, to := range d.to {
		if !m.received(d.from, to) {
			continue
		}
		m.Counters.Receptions++
		m.met.Deliveries.Inc()
		m.nodes[to].handler(d.from, d.p)
	}
	d.p = nil
	m.free = append(m.free, d)
}

// getDelivery pops a pooled delivery (or makes one).
func (m *Medium) getDelivery() *delivery {
	if n := len(m.free); n > 0 {
		d := m.free[n-1]
		m.free = m.free[:n-1]
		return d
	}
	return &delivery{m: m}
}

// SetFaults attaches a fault injector to the medium; nil detaches it. The
// injector is consulted only when non-nil, so the fault-free fast path is
// untouched.
func (m *Medium) SetFaults(f FaultInjector) { m.faults = f }

// scheduleDelivery queues d at its nominal delivery time, applying any
// fault-injected reordering delay and duplicate copies first.
func (m *Medium) scheduleDelivery(d *delivery, nominal float64) {
	at := nominal
	if m.faults != nil {
		extra, dups := m.faults.TxEffects(d.from, m.eng.Now())
		at += extra
		for _, dd := range dups {
			c := m.getDelivery()
			c.from = d.from
			c.to = append(c.to[:0], d.to...)
			c.p = d.p
			m.Counters.DupedFrames++
			m.eng.AtRunner(at+dd, c)
		}
	}
	m.eng.AtRunner(at, d)
}

// Unicast queues one frame from -> to. It returns false without
// transmitting when the receiver is out of range at send time — the
// immediate link-break feedback AODV relies on. Delivery happens after
// queueing, airtime, and overhead, unless the receiver moved out of range
// meanwhile or the loss process discards the frame.
func (m *Medium) Unicast(from, to NodeID, p Payload) bool {
	if from == to {
		panic("radio: self-addressed frame")
	}
	if m.faults != nil && m.faults.NodeDown(from, m.eng.Now()) {
		return false
	}
	if !m.InRange(from, to) {
		return false
	}
	src := &m.nodes[from]
	start, airtime := m.txDelay(src, p.SizeBytes())
	m.Counters.FramesSent++
	m.Counters.BytesSent += p.SizeBytes() + m.cfg.HeaderBytes
	m.met.Unicasts.Inc()
	m.met.FramesSent.Inc()
	m.met.BytesSent.Add(int64(p.SizeBytes() + m.cfg.HeaderBytes))
	d := m.getDelivery()
	d.from = from
	d.to = append(d.to[:0], to)
	d.p = p
	m.scheduleDelivery(d, start+airtime+m.cfg.Overhead)
	return true
}

// received decides, at delivery time, whether a frame from → to arrives:
// hard range cut, then edge fading, then the independent loss process.
func (m *Medium) received(from, to NodeID) bool {
	if m.faults != nil &&
		m.faults.CutLink(from, to, m.eng.Now(), m.PosOf(from), m.PosOf(to)) {
		m.Counters.DroppedFault++
		m.met.DropsFault.Inc()
		return false
	}
	d := m.PosOf(from).Dist(m.PosOf(to))
	if d > m.cfg.Range {
		m.Counters.DroppedRange++
		m.met.DropsRange.Inc()
		return false
	}
	if m.cfg.FadeMargin > 0 {
		edge := m.cfg.Range * (1 - m.cfg.FadeMargin)
		if d > edge {
			pRecv := (m.cfg.Range - d) / (m.cfg.Range - edge)
			if m.rng.Float64() >= pRecv {
				m.Counters.DroppedRange++
				m.met.DropsRange.Inc()
				return false
			}
		}
	}
	if m.cfg.Loss > 0 && m.rng.Float64() < m.cfg.Loss {
		m.Counters.DroppedLoss++
		m.met.DropsLoss.Inc()
		return false
	}
	return true
}

// Broadcast transmits one frame to every node currently in range and
// returns how many receivers were addressed. The transmission is a single
// busy period on the sender's radio; each addressed receiver independently
// suffers range and loss drops at delivery time. All receivers share one
// delivery event that walks the captured neighbor list in ID order.
func (m *Medium) Broadcast(from NodeID, p Payload) int {
	if m.faults != nil && m.faults.NodeDown(from, m.eng.Now()) {
		return 0
	}
	d := m.getDelivery()
	d.to = m.NeighborsInto(from, d.to)
	src := &m.nodes[from]
	start, airtime := m.txDelay(src, p.SizeBytes())
	m.Counters.FramesSent++
	m.Counters.BytesSent += p.SizeBytes() + m.cfg.HeaderBytes
	m.met.Broadcasts.Inc()
	m.met.FramesSent.Inc()
	m.met.BytesSent.Add(int64(p.SizeBytes() + m.cfg.HeaderBytes))
	if len(d.to) == 0 {
		m.free = append(m.free, d)
		return 0
	}
	d.from = from
	d.p = p
	m.scheduleDelivery(d, start+airtime+m.cfg.Overhead)
	return len(d.to)
}

// Config returns the medium configuration.
func (m *Medium) Config() Config { return m.cfg }
