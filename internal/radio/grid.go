package radio

import "manetskyline/internal/tuple"

// The spatial index is a two-level uniform grid over node positions with
// cell side equal to the transmission range.
//
// Fine level: a dense array of ID-sorted node buckets over the occupied
// cell bounding box (node fields are bounded, so the box stays small and
// avoids hashing). Coarse level: 8×8 blocks of fine cells with occupancy
// counts, so probes over large rings skip empty regions in one comparison
// per block instead of touching 64 empty buckets.
//
// Unlike the earlier design — which rebuilt the whole index whenever the
// engine clock moved — the grid is rebuilt on *epochs* and tolerates stale
// entries in between, using the physical speed bound of the mobility model:
//
//   - Every node's bucket reflects its position at some time t_i in
//     [epoch, now]: nodes migrate buckets incrementally whenever their
//     memoized position is refreshed (and a full rebuild refreshes all).
//   - A node within Range of the probe point now sits in a bucket at most
//     Range + MaxSpeed·(now−epoch) away from it, so probing all cells
//     intersecting that expanded ring finds every true neighbor — the probe
//     stays *exact*, never approximate.
//   - When the expansion exceeds one cell side, the grid rebuilds (O(n),
//     amortized over the epoch instead of per event).
//
// With MaxSpeed unknown (zero), the grid degenerates to the legacy
// rebuild-on-every-timestep behavior, which is exact for arbitrary motion —
// including the teleporting churn the tests inject. A negative MaxSpeed
// declares all nodes static: the grid is built once and never rebuilt.
const coarseShift = 3 // coarse block = 8×8 fine cells

type grid struct {
	side     float64 // fine cell side (= Range)
	maxSpeed float64 // speed bound: 0 unknown, <0 static, >0 bound in m/s
	built    bool
	overflow bool    // a refresh landed outside the box; rebuild on next probe
	epoch    float64 // time of the last full rebuild

	minX, minY int32 // fine-cell coordinate of cells[0]
	w, h       int32 // fine grid dimensions
	cw         int32 // coarse grid columns
	cells      [][]int32
	coarse     []int32
}

// cellCoord maps a position to fine-cell coordinates.
func (g *grid) cellCoord(x, y float64) (int32, int32) {
	return int32(floorDiv(x, g.side)), int32(floorDiv(y, g.side))
}

// floorDiv is math.Floor(v/side) without the import noise.
func floorDiv(v, side float64) float64 {
	q := v / side
	f := float64(int64(q))
	if q < f {
		f--
	}
	return f
}

// flatIdx converts fine-cell coordinates to a dense index, or -1 when the
// cell lies outside the current box.
func (g *grid) flatIdx(cx, cy int32) int32 {
	lx, ly := cx-g.minX, cy-g.minY
	if lx < 0 || ly < 0 || lx >= g.w || ly >= g.h {
		return -1
	}
	return ly*g.w + lx
}

// gridEnsure brings the index up to date for a probe at time now: it
// rebuilds when the grid is missing, a node escaped the box, the node set
// grew, or the staleness ring has expanded past one cell side. A rebuild
// memoizes every node's position at now, so epoch == now afterwards.
func (m *Medium) gridEnsure(now float64) {
	g := &m.grid
	rebuild := !g.built || g.overflow || len(m.nodeCell) != len(m.mobs)
	if !rebuild {
		switch {
		case g.maxSpeed == 0: // unknown motion: legacy per-timestep rebuild
			rebuild = g.epoch != now
		case g.maxSpeed > 0: // bounded motion: rebuild when drift exceeds a cell
			rebuild = (now-g.epoch)*g.maxSpeed > g.side
		}
		// maxSpeed < 0: static field, the first build stays exact forever.
	}
	if rebuild {
		m.gridRebuild(now)
	}
}

// gridRebuild reindexes every node at time now. Buckets keep their capacity
// across rebuilds, and nodes are inserted in ID order so every bucket stays
// ID-sorted without a sort pass.
func (m *Medium) gridRebuild(now float64) {
	g := &m.grid
	g.side = m.cfg.Range
	g.built = false // disable incremental migration while we reindex
	g.overflow = false
	n := len(m.mobs)
	if cap(m.nodeCell) < n {
		m.nodeCell = make([]int32, n)
	}
	m.nodeCell = m.nodeCell[:n]
	if n == 0 {
		g.w, g.h = 0, 0
		g.epoch = now
		g.built = true
		return
	}
	// Pass 1: memoize positions, track the occupied cell bounding box.
	p := m.posOfIdx(0, now)
	minX, minY := g.cellCoord(p.X, p.Y)
	maxX, maxY := minX, minY
	for i := 1; i < n; i++ {
		q := m.posOfIdx(int32(i), now)
		cx, cy := g.cellCoord(q.X, q.Y)
		if cx < minX {
			minX = cx
		} else if cx > maxX {
			maxX = cx
		}
		if cy < minY {
			minY = cy
		} else if cy > maxY {
			maxY = cy
		}
	}
	// Margin cells absorb drift between rebuilds so incremental migration
	// rarely escapes the box (escape just forces an early rebuild).
	var margin int32
	if g.maxSpeed > 0 {
		margin = 2
	}
	g.minX, g.minY = minX-margin, minY-margin
	g.w = maxX - minX + 1 + 2*margin
	g.h = maxY - minY + 1 + 2*margin
	size := int(g.w) * int(g.h)
	for len(g.cells) < size {
		g.cells = append(g.cells, nil)
	}
	for i := 0; i < size; i++ {
		g.cells[i] = g.cells[i][:0]
	}
	g.cw = (g.w + (1 << coarseShift) - 1) >> coarseShift
	ch := (g.h + (1 << coarseShift) - 1) >> coarseShift
	csize := int(g.cw) * int(ch)
	for len(g.coarse) < csize {
		g.coarse = append(g.coarse, 0)
	}
	for i := 0; i < csize; i++ {
		g.coarse[i] = 0
	}
	// Pass 2: bucket the nodes in ID order.
	for i := 0; i < n; i++ {
		cx, cy := g.cellCoord(m.posX[i], m.posY[i])
		idx := g.flatIdx(cx, cy)
		m.nodeCell[i] = idx
		g.cells[idx] = append(g.cells[idx], int32(i))
		g.coarse[g.coarseIdx(idx)]++
	}
	g.epoch = now
	g.built = true
}

// coarseIdx maps a fine flat index to its coarse block index.
func (g *grid) coarseIdx(fine int32) int32 {
	lx, ly := fine%g.w, fine/g.w
	return (ly>>coarseShift)*g.cw + (lx >> coarseShift)
}

// gridMigrate moves node i to the fine cell containing (x, y) when its
// refreshed position crossed a cell boundary. A destination outside the box
// leaves the node in its old bucket — still exact, since the probe ring
// covers any position the node held since the epoch — and flags the grid
// for rebuild on the next probe.
func (m *Medium) gridMigrate(i int32, x, y float64) {
	g := &m.grid
	cx, cy := g.cellCoord(x, y)
	idx := g.flatIdx(cx, cy)
	old := m.nodeCell[i]
	if idx == old {
		return
	}
	if idx < 0 {
		g.overflow = true
		return
	}
	// Remove from the old bucket (ID-sorted: binary search).
	b := g.cells[old]
	lo, hi := 0, len(b)
	for lo < hi {
		mid := (lo + hi) / 2
		if b[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	copy(b[lo:], b[lo+1:])
	g.cells[old] = b[:len(b)-1]
	g.coarse[g.coarseIdx(old)]--
	// Sorted insert into the new bucket.
	nb := g.cells[idx]
	lo, hi = 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		if nb[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	nb = append(nb, 0)
	copy(nb[lo+1:], nb[lo:])
	nb[lo] = i
	g.cells[idx] = nb
	g.coarse[g.coarseIdx(idx)]++
	m.nodeCell[i] = idx
}

// gridGather collects the node indices of every bucket intersecting the
// disk of the given radius around p into m.scratch, or reports full=true
// when the probe covers the whole occupied box (the caller then scans all
// nodes directly, in ID order, with no gather or re-sort). Coarse blocks
// with zero occupancy are skipped wholesale, and fine cells entirely
// outside the disk are pruned by rectangle distance.
func (m *Medium) gridGather(p tuple.Point, radius float64) (cand []int32, full bool) {
	g := &m.grid
	cx0, cy0 := g.cellCoord(p.X-radius, p.Y-radius)
	cx1, cy1 := g.cellCoord(p.X+radius, p.Y+radius)
	bx0, by0 := cx0-g.minX, cy0-g.minY
	bx1, by1 := cx1-g.minX, cy1-g.minY
	if bx0 < 0 {
		bx0 = 0
	}
	if by0 < 0 {
		by0 = 0
	}
	if bx1 >= g.w {
		bx1 = g.w - 1
	}
	if by1 >= g.h {
		by1 = g.h - 1
	}
	if bx0 == 0 && by0 == 0 && bx1 == g.w-1 && by1 == g.h-1 {
		return nil, true
	}
	cand = m.scratch[:0]
	r2 := radius * radius
	for by := by0; by <= by1; by++ {
		// Cell rows are grouped by coarse block row; skip empty blocks.
		crow := (by >> coarseShift) * g.cw
		y0 := float64(g.minY+by) * g.side
		dy := 0.0
		if p.Y < y0 {
			dy = y0 - p.Y
		} else if p.Y > y0+g.side {
			dy = p.Y - (y0 + g.side)
		}
		row := by * g.w
		for bx := bx0; bx <= bx1; {
			cb := crow + (bx >> coarseShift)
			if g.coarse[cb] == 0 {
				// Jump to the first cell of the next coarse block.
				bx = (bx>>coarseShift + 1) << coarseShift
				continue
			}
			x0 := float64(g.minX+bx) * g.side
			dx := 0.0
			if p.X < x0 {
				dx = x0 - p.X
			} else if p.X > x0+g.side {
				dx = p.X - (x0 + g.side)
			}
			if dx*dx+dy*dy <= r2 {
				cand = append(cand, g.cells[row+bx]...)
			}
			bx++
		}
	}
	m.scratch = cand
	return cand, false
}
