package core

import (
	"manetskyline/internal/localsky"
	"manetskyline/internal/storage"
	"manetskyline/internal/tuple"
)

// Device couples one mobile device's local relation with its protocol
// state: the duplicate-suppression log, its belief about global attribute
// bounds, and its dominating-region estimation mode. The same Device type
// backs the static executor, the MANET simulator, and the live peer
// runtime.
type Device struct {
	// ID identifies the device.
	ID DeviceID
	// Rel is the device's local relation R_i in hybrid storage.
	Rel *storage.Hybrid
	// Log suppresses duplicate query processing.
	Log *QueryLog
	// Schema carries the globally agreed attribute bounds; only consulted
	// under the Exact and Over estimation modes.
	Schema tuple.Schema
	// Mode selects the dominating-region estimation (§3.3).
	Mode Estimation
	// OverFactor scales global bounds for Over estimation (0 ⇒ default).
	OverFactor float64
	// Dynamic enables the hop-by-hop filter update of §3.4 ("DF" in the
	// figures); when false the originator's filter is used unchanged
	// ("SF").
	Dynamic bool
	// NumFilters selects how many filtering tuples this device attaches
	// when originating (§7 multi-filter extension); 0 and 1 both mean the
	// paper's single-filter scheme.
	NumFilters int
	// Met is the device's telemetry surface; the zero value disables it.
	Met Metrics

	nextCnt uint8
}

// NewDevice builds a device over the given tuples.
func NewDevice(id DeviceID, ts []tuple.Tuple, schema tuple.Schema, mode Estimation, dynamic bool) *Device {
	return &Device{
		ID:      id,
		Rel:     storage.NewHybrid(ts),
		Log:     NewQueryLog(),
		Schema:  schema,
		Mode:    mode,
		Dynamic: dynamic,
	}
}

// VDRFunc returns the device's tuple-scoring function under its estimation
// mode and local knowledge.
func (d *Device) VDRFunc() localsky.VDRFunc {
	return VDRFunc(d.Mode, d.Schema, d.Rel, d.OverFactor)
}

// NewQuery mints a fresh query originating at this device, incrementing the
// byte counter of §3.4.
func (d *Device) NewQuery(pos tuple.Point, dist float64) Query {
	d.nextCnt++
	return Query{Org: d.ID, Cnt: d.nextCnt, Pos: pos, D: dist}
}

// Originate runs the originator's side of query issue: the local skyline
// SK_org is computed, the max-VDR filtering tuple is selected from it, and
// the query to broadcast is returned together with the initial partial
// result (§3.1-3.2). With NumFilters > 1, additional filters chosen by
// greedy dominating-region coverage travel in Query.Extra.
func (d *Device) Originate(pos tuple.Point, dist float64) (Query, localsky.Result) {
	q := d.NewQuery(pos, dist)
	d.Log.FirstTime(q.Key())
	sc := localsky.GetScratch()
	res := localsky.HybridSkylineScratch(d.Rel, localsky.Query{Pos: q.Pos, D: q.D}, nil, d.VDRFunc(), sc)
	res.Skyline = localsky.CloneTuples(res.Skyline)
	localsky.PutScratch(sc)
	q = q.WithFilter(res.Filter, res.FilterVDR)
	if d.NumFilters > 1 && len(res.Skyline) > 1 {
		hi := VDRBounds(d.Mode, d.Schema, d.Rel, d.OverFactor)
		filters := SelectFilters(res.Skyline, hi, d.NumFilters, 0, int64(q.Cnt)+int64(d.ID)<<8)
		// filters[0] is the max-VDR tuple, already the primary.
		if len(filters) > 1 {
			q.Extra = filters[1:]
		}
	}
	d.observeOriginate(res.Unreduced)
	return q, res
}

// Process runs one remote device's side of query handling: the Figure 4
// local skyline with the query's filtering tuple. The returned result's
// Filter field carries the filter this device should forward — the possibly
// updated one under the dynamic strategy, the incoming one otherwise.
//
// Result.Unreduced is always the true |SK_i| (Formula 1 needs it): when the
// filter pre-check skips the scan entirely, a shadow unfiltered evaluation
// supplies the size for accounting. Result.Stats reflects only the work the
// protocol actually performed.
func (d *Device) Process(q Query) localsky.Result {
	sc := localsky.GetScratch()
	res := localsky.HybridSkylineScratch(d.Rel, localsky.Query{Pos: q.Pos, D: q.D}, q.Filter, d.VDRFunc(), sc)
	if res.Stats.SkippedFilter {
		// The skipped scan produced no skyline, so reusing sc for the
		// shadow evaluation clobbers nothing.
		stats := res.Stats
		shadow := localsky.HybridSkylineScratch(d.Rel, localsky.Query{Pos: q.Pos, D: q.D}, nil, nil, sc)
		res.Unreduced = shadow.Unreduced
		res.Stats = stats
	}
	// Callers retain and merge results, so detach the skyline from the
	// scratch before recycling it; the filter is already detached.
	res.Skyline = localsky.CloneTuples(res.Skyline)
	localsky.PutScratch(sc)
	if len(q.Extra) > 0 {
		res.Skyline = ApplyFilters(res.Skyline, q.Extra)
	}
	if !d.Dynamic {
		res.Filter = q.Filter
		res.FilterVDR = q.FilterVDR
	}
	d.observeProcess(res.Unreduced, res.Unreduced-len(res.Skyline), FilterReplaced(q, res))
	return res
}

// FilterReplaced reports whether processing q produced a dynamic filter
// upgrade (§3.4): the result forwards a filter whose VDR strictly beats the
// one the query arrived with.
func FilterReplaced(q Query, res localsky.Result) bool {
	return res.Filter != nil && res.FilterVDR > q.FilterVDR
}

// Forwardable returns the query to send onward from this device after
// Process produced res: under the dynamic strategy the filter may have been
// upgraded.
func Forwardable(q Query, res localsky.Result) Query {
	return q.WithFilter(res.Filter, res.FilterVDR)
}

// DRRAccumulator accumulates the sums of Formula 1 over the non-originator
// devices a query reached.
type DRRAccumulator struct {
	// Reduced is Σ |SK'_i|.
	Reduced int
	// Unreduced is Σ |SK_i|.
	Unreduced int
	// Devices is the number of non-originator devices that processed the
	// query.
	Devices int
	// Filters is the total number of filtering tuples shipped to those
	// devices — Formula 1's per-device cost term, which the multi-filter
	// extension raises from one to k.
	Filters int
}

// Observe records one non-originator device's outcome under the paper's
// single-filter scheme (one filtering tuple shipped).
func (a *DRRAccumulator) Observe(res localsky.Result) {
	a.ObserveFilters(res, 1)
}

// ObserveFilters records one non-originator device's outcome for a query
// that shipped the given number of filtering tuples.
func (a *DRRAccumulator) ObserveFilters(res localsky.Result, filters int) {
	a.Reduced += len(res.Skyline)
	a.Unreduced += res.Unreduced
	a.Devices++
	a.Filters += filters
}

// Add merges another accumulator.
func (a *DRRAccumulator) Add(o DRRAccumulator) {
	a.Reduced += o.Reduced
	a.Unreduced += o.Unreduced
	a.Devices += o.Devices
	a.Filters += o.Filters
}

// DRR evaluates Formula 1: Σ(|SK_i| − |SK'_i| − k) / Σ|SK_i|, where k is
// the number of filtering tuples each device received (1 in the paper). It
// returns 0 when no tuples were at stake.
func (a DRRAccumulator) DRR() float64 {
	if a.Unreduced == 0 {
		return 0
	}
	return float64(a.Unreduced-a.Reduced-a.Filters) / float64(a.Unreduced)
}
