// Package core implements the paper's primary contribution: distributed
// constrained skyline query processing for mobile ad hoc networks.
//
// It provides the query specification Q_ds = (id, cnt, pos_org, d) with its
// piggy-backed filtering tuple (§3.2), the exact and estimated dominating
// region computations used to choose filtering tuples (§3.3), the dynamic
// filter update of §3.4, the per-device duplicate-query log (§3.4), result
// assembly with duplicate elimination (§4.3), the data-reduction-rate
// accounting of Formula 1, and the static-grid executor used for the
// pre-tests of §5.2.2-I. The MANET simulator (internal/manet) and the live
// peer runtime (internal/p2p) both drive their devices through this package.
package core

import (
	"fmt"
	"math"
	"sync"

	"manetskyline/internal/tuple"
)

// DeviceID identifies a mobile device.
type DeviceID int

// Query is the distributed skyline query specification forwarded between
// devices: Q_ds = (id, cnt, pos_org, d) extended with the filtering tuple
// that travels with it. The zero Filter (nil) means no filtering tuple has
// been chosen yet.
type Query struct {
	// Org identifies the originating device M_org.
	Org DeviceID
	// Cnt is the originator-local query counter used for duplicate
	// suppression; the paper encodes it as one byte that wraps (§3.4).
	Cnt uint8
	// Pos is the originator's position when the query was issued.
	Pos tuple.Point
	// D is the distance of interest; +Inf or non-positive disables the
	// spatial constraint (used by the static pre-tests).
	D float64
	// Filter is the current primary filtering tuple, updated hop by hop
	// under the dynamic strategy.
	Filter *tuple.Tuple
	// FilterVDR is the pruning-potential score of Filter under the
	// originator's estimation mode, carried so that downstream devices can
	// compare their local candidates against it.
	FilterVDR float64
	// Extra carries additional filtering tuples under the multi-filter
	// extension (§7): chosen once at the originator by greedy
	// dominating-region coverage and applied by every device after its
	// local skyline; only the primary filter participates in dynamic
	// updates.
	Extra []tuple.Tuple
}

// NumFilters returns how many filtering tuples the query carries.
func (q Query) NumFilters() int {
	n := len(q.Extra)
	if q.Filter != nil {
		n++
	}
	return n
}

// Key returns the (id, cnt) pair that identifies a query instance.
func (q Query) Key() QueryKey { return QueryKey{Org: q.Org, Cnt: q.Cnt} }

// WithFilter returns a copy of q carrying the given filtering tuple.
func (q Query) WithFilter(flt *tuple.Tuple, vdr float64) Query {
	q.Filter = flt
	q.FilterVDR = vdr
	return q
}

// String renders the query for logs.
func (q Query) String() string {
	return fmt.Sprintf("Q(org=%d cnt=%d pos=%v d=%g)", q.Org, q.Cnt, q.Pos, q.D)
}

// QueryKey identifies one query instance for duplicate suppression.
type QueryKey struct {
	Org DeviceID
	Cnt uint8
}

// QueryLog is the per-device duplicate-suppression table of §3.4: a hash
// table mapping originator id to the last seen query counter. Space is O(m)
// in the number of devices; the check is O(1). It is safe for concurrent
// use because the live peer runtime consults it from multiple goroutines.
//
// Counters are single bytes that wrap around (the paper resets them at
// regular intervals); the log therefore treats a counter as "new" when it
// differs from the last seen value, matching the paper's assumption that a
// device only ever has one query in flight and cares only about its latest.
type QueryLog struct {
	mu   sync.Mutex
	last map[DeviceID]uint8
	seen map[DeviceID]bool
}

// NewQueryLog returns an empty log.
func NewQueryLog() *QueryLog {
	return &QueryLog{last: make(map[DeviceID]uint8), seen: make(map[DeviceID]bool)}
}

// FirstTime records the query and reports whether this device had NOT
// already processed it: true exactly once per (id, cnt).
func (l *QueryLog) FirstTime(k QueryKey) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seen[k.Org] && l.last[k.Org] == k.Cnt {
		return false
	}
	l.seen[k.Org] = true
	l.last[k.Org] = k.Cnt
	return true
}

// Processed reports whether the query was already handled, without
// recording anything.
func (l *QueryLog) Processed(k QueryKey) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seen[k.Org] && l.last[k.Org] == k.Cnt
}

// Reset clears the log, modelling the paper's periodic counter reset.
func (l *QueryLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.last = make(map[DeviceID]uint8)
	l.seen = make(map[DeviceID]bool)
}

// Len returns the number of originators tracked (the O(m) space bound).
func (l *QueryLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.seen)
}

// Unconstrained is the distance value that disables the spatial predicate.
func Unconstrained() float64 { return math.Inf(1) }
