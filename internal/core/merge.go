package core

import (
	"manetskyline/internal/tuple"
)

// Merge performs the assembly step of §4.3 at the query originator (and, in
// depth-first forwarding, at every device on the return path): it folds one
// incoming reduced local skyline SK'_i into the current partial result.
//
// Both tasks of §4.3 happen in the nested loop: duplicate elimination —
// tuples at the same (x, y) location are the same site, possibly received
// from overlapping local relations — and removal of non-qualifying tuples in
// either direction of dominance. The result is a correct skyline of the
// union of the inputs whenever both inputs were skylines themselves; the
// paper's assumption that no two distinct sites share a location makes the
// (x, y) duplicate test sufficient.
//
// current is modified in place and must not be reused afterwards.
func Merge(current, incoming []tuple.Tuple) []tuple.Tuple {
nextIncoming:
	for _, in := range incoming {
		// Drop the incoming tuple if it is a duplicate of, or dominated by,
		// anything already merged.
		for _, cur := range current {
			if in.SamePlace(cur) || cur.Dominates(in) {
				continue nextIncoming
			}
		}
		// It survives: evict everything it dominates, then add it.
		keep := current[:0]
		for _, cur := range current {
			if !in.Dominates(cur) {
				keep = append(keep, cur)
			}
		}
		current = append(keep, in)
	}
	return current
}

// MergeAll folds many result sets into one skyline.
func MergeAll(results ...[]tuple.Tuple) []tuple.Tuple {
	var out []tuple.Tuple
	for _, r := range results {
		out = Merge(out, r)
	}
	return out
}
