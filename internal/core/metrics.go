package core

import "manetskyline/internal/telemetry"

// Metrics is the query-processing telemetry surface shared by every runtime
// that drives devices through this package (the MANET simulator and the TCP
// peer alike). The zero value (all nil) is the disabled state; increments
// then cost one nil check, keeping Originate/Process allocation-free.
type Metrics struct {
	// QueriesOriginated and QueriesProcessed count local skyline
	// evaluations by role; QueriesSuppressed counts duplicate deliveries
	// the §3.4 query log rejected.
	QueriesOriginated *telemetry.Counter
	QueriesProcessed  *telemetry.Counter
	QueriesSuppressed *telemetry.Counter
	// TuplesPruned counts tuples removed from local skylines by the
	// query's filtering tuple(s), labelled by the estimation mode that
	// scored the filters (EXT, OVE, or UNE).
	TuplesPruned *telemetry.Counter
	// FilterReplacements counts §3.4 dynamic filter upgrades: a device
	// found a local tuple with a strictly larger VDR than the incoming
	// filter's.
	FilterReplacements *telemetry.Counter
	// LocalSkylineSize observes |SK_i| (the unreduced local skyline) at
	// every evaluation.
	LocalSkylineSize *telemetry.Histogram
}

// NewMetrics registers the core metrics in r (nil r ⇒ disabled metrics).
// mode labels the prune counter with the estimation mode in play.
func NewMetrics(r *telemetry.Registry, mode Estimation) Metrics {
	return Metrics{
		QueriesOriginated: r.Counter("core_queries_originated_total", "queries issued by local devices"),
		QueriesProcessed:  r.Counter("core_queries_processed_total", "remote queries evaluated against the local relation"),
		QueriesSuppressed: r.Counter("core_queries_suppressed_total", "duplicate query deliveries rejected by the query log"),
		TuplesPruned: r.CounterL("core_tuples_pruned_total",
			`mode="`+mode.String()+`"`, "local skyline tuples removed by filtering tuples"),
		FilterReplacements: r.Counter("core_filter_replacements_total", "dynamic filter upgrades performed while forwarding"),
		LocalSkylineSize: r.Histogram("core_local_skyline_size",
			"unreduced local skyline sizes |SK_i|", telemetry.SizeBuckets()),
	}
}

// FirstTime wraps the query log's duplicate check, counting suppressions.
func (d *Device) FirstTime(k QueryKey) bool {
	if d.Log.FirstTime(k) {
		return true
	}
	d.Met.QueriesSuppressed.Inc()
	return false
}

// observeOriginate folds one Originate call into the metrics.
func (d *Device) observeOriginate(unreduced int) {
	d.Met.QueriesOriginated.Inc()
	d.Met.LocalSkylineSize.Observe(float64(unreduced))
}

// observeProcess folds one Process call into the metrics. pruned is
// |SK_i| − |SK'_i| after all of the query's filters applied; replaced
// reports a dynamic filter upgrade.
func (d *Device) observeProcess(unreduced, pruned int, replaced bool) {
	d.Met.QueriesProcessed.Inc()
	d.Met.LocalSkylineSize.Observe(float64(unreduced))
	if pruned > 0 {
		d.Met.TuplesPruned.Add(int64(pruned))
	}
	if replaced {
		d.Met.FilterReplacements.Inc()
	}
}
