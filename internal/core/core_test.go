package core

import (
	"math"
	"testing"

	"manetskyline/internal/gen"
	"manetskyline/internal/skyline"
	"manetskyline/internal/storage"
	"manetskyline/internal/tuple"
)

func tp(x, y float64, attrs ...float64) tuple.Tuple {
	return tuple.Tuple{X: x, Y: y, Attrs: attrs}
}

func TestVDRPaperExample(t *testing.T) {
	// §3.2: bounds (200, 10); VDR(h21)=980, VDR(h22)=880, VDR(h23)=720.
	hi := []float64{200, 10}
	cases := []struct {
		tpl  tuple.Tuple
		want float64
	}{
		{tp(0, 0, 60, 3), 980},
		{tp(0, 0, 90, 2), 880},
		{tp(0, 0, 120, 1), 720},
	}
	for _, c := range cases {
		if got := VDR(c.tpl, hi); got != c.want {
			t.Errorf("VDR(%v) = %v, want %v", c.tpl, got, c.want)
		}
	}
}

func TestVDRClampsAtZero(t *testing.T) {
	if got := VDR(tp(0, 0, 300, 5), []float64{200, 10}); got != 0 {
		t.Errorf("tuple above bound should have zero VDR, got %v", got)
	}
	if got := VDR(tp(0, 0, 200, 5), []float64{200, 10}); got != 0 {
		t.Errorf("tuple at bound should have zero VDR, got %v", got)
	}
}

func TestSelectFilterPaperExample(t *testing.T) {
	sky := []tuple.Tuple{tp(2, 1, 60, 3), tp(2, 2, 90, 2), tp(2, 3, 120, 1)}
	hi := []float64{200, 10}
	flt, v := SelectFilter(sky, func(t tuple.Tuple) float64 { return VDR(t, hi) })
	if flt == nil || !flt.Equal(tp(2, 1, 60, 3)) {
		t.Fatalf("filter = %v, want h21", flt)
	}
	if v != 980 {
		t.Errorf("VDR = %v, want 980", v)
	}
	if f, _ := SelectFilter(nil, func(tuple.Tuple) float64 { return 0 }); f != nil {
		t.Errorf("empty skyline should yield nil filter")
	}
}

func TestVDRBoundsModes(t *testing.T) {
	schema := tuple.NewSchema(2, 0, 1000)
	data := []tuple.Tuple{tp(0, 0, 100, 200), tp(1, 1, 300, 50)}
	rel := storage.NewHybrid(data)

	ext := VDRBounds(Exact, schema, rel, 0)
	if ext[0] != 1000 || ext[1] != 1000 {
		t.Errorf("Exact bounds = %v", ext)
	}
	ove := VDRBounds(Over, schema, rel, 0)
	if ove[0] <= 1000 || ove[1] <= 1000 {
		t.Errorf("Over bounds must exceed global bounds: %v", ove)
	}
	ove3 := VDRBounds(Over, schema, rel, 3)
	if ove3[0] != 3000 {
		t.Errorf("Over factor 3 bounds = %v", ove3)
	}
	une := VDRBounds(Under, schema, rel, 0)
	if une[0] != 300 || une[1] != 200 {
		t.Errorf("Under bounds should be local maxima: %v", une)
	}
	// Empty relation falls back to the schema bounds.
	empty := VDRBounds(Under, schema, storage.NewHybrid(nil), 0)
	if empty[0] != 1000 {
		t.Errorf("Under with empty relation = %v", empty)
	}
}

func TestVDRBoundsUnknownModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("unknown mode should panic")
		}
	}()
	VDRBounds(Estimation(9), tuple.NewSchema(1, 0, 1), nil, 0)
}

func TestEstimationString(t *testing.T) {
	if Exact.String() != "EXT" || Over.String() != "OVE" || Under.String() != "UNE" {
		t.Errorf("unexpected mode names")
	}
	if Estimation(7).String() == "" {
		t.Errorf("unknown mode should render")
	}
}

func TestQueryLog(t *testing.T) {
	l := NewQueryLog()
	k := QueryKey{Org: 3, Cnt: 1}
	if l.Processed(k) {
		t.Errorf("fresh log should not report processed")
	}
	if !l.FirstTime(k) {
		t.Errorf("first arrival should be new")
	}
	if l.FirstTime(k) {
		t.Errorf("second arrival must be suppressed")
	}
	if !l.Processed(k) {
		t.Errorf("query should be recorded")
	}
	// A later query from the same device replaces the stored counter.
	k2 := QueryKey{Org: 3, Cnt: 2}
	if !l.FirstTime(k2) {
		t.Errorf("new counter should be accepted")
	}
	// The byte counter wraps: cnt 1 after 255 queries is again "new".
	if !l.FirstTime(QueryKey{Org: 3, Cnt: 1}) {
		t.Errorf("wrapped counter should be accepted after replacement")
	}
	if l.Len() != 1 {
		t.Errorf("one originator tracked, got %d", l.Len())
	}
	l.Reset()
	if l.Len() != 0 || l.Processed(k) {
		t.Errorf("reset should clear the log")
	}
}

func TestQueryCounterIncrementsAndWraps(t *testing.T) {
	d := NewDevice(1, nil, tuple.NewSchema(2, 0, 10), Exact, true)
	q1 := d.NewQuery(tuple.Point{}, 10)
	q2 := d.NewQuery(tuple.Point{}, 10)
	if q2.Cnt != q1.Cnt+1 {
		t.Errorf("counter should increment: %d then %d", q1.Cnt, q2.Cnt)
	}
	for i := 0; i < 256; i++ {
		d.NewQuery(tuple.Point{}, 10)
	}
	q3 := d.NewQuery(tuple.Point{}, 10)
	if q3.Cnt != q2.Cnt+1 { // uint8 arithmetic wraps mod 256
		t.Errorf("byte counter should wrap: %d vs %d", q3.Cnt, q2.Cnt)
	}
}

func TestMergeBasics(t *testing.T) {
	cur := []tuple.Tuple{tp(0, 0, 5, 5)}
	cur = Merge(cur, []tuple.Tuple{tp(1, 1, 2, 9)})
	if len(cur) != 2 {
		t.Fatalf("incomparable tuples should coexist: %v", cur)
	}
	cur = Merge(cur, []tuple.Tuple{tp(2, 2, 3, 4)})
	// (3,4) dominates (5,5) but not (2,9).
	want := []tuple.Tuple{tp(1, 1, 2, 9), tp(2, 2, 3, 4)}
	if !skyline.SetEqual(cur, want) {
		t.Fatalf("Merge = %v, want %v", cur, want)
	}
	// Dominated incoming is dropped.
	cur = Merge(cur, []tuple.Tuple{tp(3, 3, 9, 9)})
	if !skyline.SetEqual(cur, want) {
		t.Fatalf("dominated incoming should be dropped: %v", cur)
	}
}

func TestMergeDuplicateElimination(t *testing.T) {
	a := tp(5, 5, 2, 2)
	cur := Merge(nil, []tuple.Tuple{a})
	cur = Merge(cur, []tuple.Tuple{a}) // same site from another device
	if len(cur) != 1 {
		t.Fatalf("duplicate site should be eliminated: %v", cur)
	}
	// Distinct sites with equal vectors both stay.
	cur = Merge(cur, []tuple.Tuple{tp(6, 6, 2, 2)})
	if len(cur) != 2 {
		t.Fatalf("equal-vector distinct sites should coexist: %v", cur)
	}
}

func TestMergeMatchesCentralizedSkyline(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		data := gen.Generate(gen.DefaultConfig(900, 3, gen.Distribution(seed%3), seed))
		parts := gen.GridPartition(data, 3, 1000)
		var cur []tuple.Tuple
		for _, p := range parts {
			cur = Merge(cur, skyline.SFS(p))
		}
		want := skyline.SFS(data)
		if !skyline.SetEqual(cur, want) {
			t.Fatalf("seed %d: merged result (%d) differs from centralized (%d)",
				seed, len(cur), len(want))
		}
	}
}

// Merge must be order-insensitive: any permutation of the incoming result
// sets yields the same final skyline.
func TestMergeOrderInsensitive(t *testing.T) {
	data := gen.Generate(gen.DefaultConfig(600, 2, gen.AntiCorrelated, 3))
	parts := gen.GridPartition(data, 3, 1000)
	skys := make([][]tuple.Tuple, len(parts))
	for i, p := range parts {
		skys[i] = skyline.SFS(p)
	}
	forward := MergeAll(skys...)
	var reversedIn [][]tuple.Tuple
	for i := len(skys) - 1; i >= 0; i-- {
		reversedIn = append(reversedIn, skys[i])
	}
	backward := MergeAll(reversedIn...)
	if !skyline.SetEqual(forward, backward) {
		t.Fatalf("merge order changed the result: %d vs %d", len(forward), len(backward))
	}
	// Idempotence: merging the final result into itself changes nothing.
	again := Merge(append([]tuple.Tuple(nil), forward...), forward)
	if !skyline.SetEqual(again, forward) {
		t.Fatalf("merge is not idempotent")
	}
}

func TestDRRAccumulator(t *testing.T) {
	var acc DRRAccumulator
	if acc.DRR() != 0 {
		t.Errorf("empty accumulator DRR = %v", acc.DRR())
	}
	// Paper's §3.2 example: SK_1 has 4 tuples, filter removes 2, so SK'_1
	// has 2; one device, one filter shipped: DRR = (4-2-1)/4 = 0.25.
	acc.Reduced = 2
	acc.Unreduced = 4
	acc.Devices = 1
	acc.Filters = 1
	if got := acc.DRR(); got != 0.25 {
		t.Errorf("DRR = %v, want 0.25", got)
	}
	var b DRRAccumulator
	b.Add(acc)
	b.Add(acc)
	if b.Unreduced != 8 || b.Reduced != 4 || b.Devices != 2 || b.Filters != 2 {
		t.Errorf("Add result %+v", b)
	}
}

func TestDeviceOriginateAndProcessPaperScenario(t *testing.T) {
	// Tables 2-5 of §3: M4 originates; M3 relays to M1 with dynamic update.
	schema := tuple.Schema{Min: []float64{0, 0}, Max: []float64{200, 10}}
	r1 := []tuple.Tuple{
		tp(10, 10, 20, 7), tp(10, 11, 40, 5), tp(10, 12, 80, 7),
		tp(10, 13, 80, 4), tp(10, 14, 100, 7), tp(10, 15, 100, 3),
	}
	r3 := []tuple.Tuple{tp(30, 30, 60, 3), tp(30, 31, 80, 5), tp(30, 32, 120, 4)}
	r4 := []tuple.Tuple{tp(40, 40, 80, 2), tp(40, 41, 120, 1), tp(40, 42, 140, 2)}

	m1 := NewDevice(1, r1, schema, Exact, true)
	m3 := NewDevice(3, r3, schema, Exact, true)
	m4 := NewDevice(4, r4, schema, Exact, true)

	q, res4 := m4.Originate(tuple.Point{X: 40, Y: 40}, Unconstrained())
	// SK_4 = {h41, h42}; VDR(h41)=(200-80)(10-2)=960, VDR(h42)=(80)(9)=720.
	if q.Filter == nil || !q.Filter.Equal(tp(40, 40, 80, 2)) {
		t.Fatalf("originator filter = %v, want h41", q.Filter)
	}
	if len(res4.Skyline) != 2 {
		t.Fatalf("SK_4 = %v", res4.Skyline)
	}

	// M3 processes: h31 has VDR 980 > 960 and replaces the filter.
	res3 := m3.Process(q)
	q3 := Forwardable(q, res3)
	if q3.Filter == nil || !q3.Filter.Equal(tp(30, 30, 60, 3)) {
		t.Fatalf("dynamic filter after M3 = %v, want h31", q3.Filter)
	}

	// M1 with h31 prunes h14 and h16 (paper's §3.4 walk-through).
	res1 := m1.Process(q3)
	want1 := []tuple.Tuple{tp(10, 10, 20, 7), tp(10, 11, 40, 5)}
	if !skyline.SetEqual(res1.Skyline, want1) {
		t.Fatalf("SK'_1 = %v, want %v", res1.Skyline, want1)
	}
	if res1.Unreduced != 4 {
		t.Errorf("|SK_1| = %d, want 4", res1.Unreduced)
	}

	// Without the dynamic update (SF), h41=(80,2) reaches M1 unchanged. The
	// paper's walk-through says it eliminates only h16, because Figure 4
	// prunes with an all-strictly-better test that spares the price tie of
	// h14=(80,4). This reproduction uses standard dominance (no worse
	// everywhere, better somewhere), under which h41 legitimately prunes
	// h14 as well — a strictly safe improvement (see localsky doc).
	m1sf := NewDevice(1, r1, schema, Exact, false)
	m3sf := NewDevice(3, r3, schema, Exact, false)
	res3sf := m3sf.Process(q)
	qsf := Forwardable(q, res3sf)
	if !qsf.Filter.Equal(tp(40, 40, 80, 2)) {
		t.Fatalf("SF must not change the filter: %v", qsf.Filter)
	}
	res1sf := m1sf.Process(qsf)
	wantSF := []tuple.Tuple{tp(10, 10, 20, 7), tp(10, 11, 40, 5)}
	if !skyline.SetEqual(res1sf.Skyline, wantSF) {
		t.Fatalf("SF at M1 = %v, want h11 and h12", res1sf.Skyline)
	}

	// Assemble the dynamic run and compare with ground truth.
	final := MergeAll(res4.Skyline, res3.Skyline, res1.Skyline)
	all := append(append(append([]tuple.Tuple{}, r1...), r3...), r4...)
	if !skyline.SetEqual(final, skyline.SFS(all)) {
		t.Fatalf("assembled result differs from centralized skyline: %v", final)
	}
}

func TestProcessShadowUnreducedOnSkip(t *testing.T) {
	schema := tuple.NewSchema(2, 0, 100)
	data := []tuple.Tuple{tp(0, 0, 50, 50), tp(1, 1, 60, 70)}
	d := NewDevice(1, data, schema, Exact, true)
	flt := tp(9, 9, 1, 1)
	q := Query{Org: 2, Cnt: 1, D: Unconstrained(), Filter: &flt, FilterVDR: VDR(flt, schema.Max)}
	res := d.Process(q)
	if !res.Stats.SkippedFilter {
		t.Fatalf("filter should skip the whole relation")
	}
	if res.Unreduced != 1 {
		t.Errorf("shadow unreduced = %d, want 1 (the true |SK_i|)", res.Unreduced)
	}
	if len(res.Skyline) != 0 {
		t.Errorf("skip should transmit nothing")
	}
}

func staticDevices(t *testing.T, n, dim, g int, dist gen.Distribution, mode Estimation, dynamic bool, seed int64) []*Device {
	t.Helper()
	c := gen.DefaultConfig(n, dim, dist, seed)
	data := gen.Generate(c)
	parts := gen.GridPartition(data, g, c.Space)
	devs := make([]*Device, len(parts))
	for i, p := range parts {
		devs[i] = NewDevice(DeviceID(i), p, c.Schema(), mode, dynamic)
	}
	return devs
}

func TestRunStaticCorrectAllModes(t *testing.T) {
	c := gen.DefaultConfig(2000, 2, gen.Independent, 11)
	data := gen.Generate(c)
	want := skyline.SFS(data)
	for _, mode := range []Estimation{Exact, Over, Under} {
		for _, dynamic := range []bool{false, true} {
			parts := gen.GridPartition(data, 4, c.Space)
			devs := make([]*Device, len(parts))
			for i, p := range parts {
				devs[i] = NewDevice(DeviceID(i), p, c.Schema(), mode, dynamic)
			}
			out := RunStatic(devs, 4, 5)
			if !skyline.SetEqual(out.Skyline, want) {
				t.Errorf("mode=%v dynamic=%v: result (%d) differs from centralized (%d)",
					mode, dynamic, len(out.Skyline), len(want))
			}
			if out.Acc.Devices != 15 {
				t.Errorf("mode=%v dynamic=%v: %d devices visited, want 15", mode, dynamic, out.Acc.Devices)
			}
		}
	}
}

func TestRunStaticDRRPositiveOnIndependentData(t *testing.T) {
	devs := staticDevices(t, 20000, 2, 5, gen.Independent, Exact, true, 7)
	out := RunStatic(devs, 5, 12)
	if out.DRR() <= 0 {
		t.Errorf("DRR = %v; filtering should pay off on independent data", out.DRR())
	}
	t.Logf("static DRR (IN, 20K, 5x5, DF/EXT) = %.3f", out.DRR())
}

func TestRunStaticDynamicBeatsOrMatchesSingleOnAverage(t *testing.T) {
	sum := func(dynamic bool) float64 {
		devs := staticDevices(t, 10000, 2, 4, gen.Independent, Under, dynamic, 13)
		outs := RunStaticAll(devs, 4)
		total := 0.0
		for _, o := range outs {
			total += o.DRR()
		}
		return total / float64(len(outs))
	}
	sf, df := sum(false), sum(true)
	t.Logf("avg DRR: SF=%.3f DF=%.3f", sf, df)
	if df < sf-0.05 {
		t.Errorf("dynamic filtering (%.3f) should not be materially worse than single (%.3f)", df, sf)
	}
}

func TestRunStaticAllResetsLogs(t *testing.T) {
	devs := staticDevices(t, 1000, 2, 3, gen.Independent, Exact, true, 5)
	outs := RunStaticAll(devs, 3)
	if len(outs) != 9 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	for i, o := range outs {
		if o.Acc.Devices != 8 {
			t.Errorf("originator %d reached %d devices, want 8", i, o.Acc.Devices)
		}
	}
}

func TestRunStaticPanics(t *testing.T) {
	devs := staticDevices(t, 100, 2, 2, gen.Independent, Exact, true, 1)
	for name, f := range map[string]func(){
		"wrong grid":     func() { RunStatic(devs, 3, 0) },
		"bad originator": func() { RunStatic(devs, 2, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSelectFiltersExtension(t *testing.T) {
	// An anti-correlated skyline needs several filters for good coverage.
	data := gen.Generate(gen.DefaultConfig(3000, 2, gen.AntiCorrelated, 3))
	sky := skyline.SFS(data)
	if len(sky) < 10 {
		t.Skipf("skyline too small (%d) for a meaningful multi-filter test", len(sky))
	}
	hi := []float64{1000, 1000}
	one := SelectFilters(sky, hi, 1, 0, 42)
	if len(one) != 1 {
		t.Fatalf("k=1 should return one filter")
	}
	single, _ := SelectFilter(sky, func(t tuple.Tuple) float64 { return VDR(t, hi) })
	if !one[0].Equal(*single) {
		t.Errorf("k=1 should match SelectFilter")
	}
	three := SelectFilters(sky, hi, 3, 0, 42)
	if len(three) != 3 {
		t.Fatalf("k=3 returned %d filters", len(three))
	}

	// Multi-filter pruning must strictly improve (or tie) single-filter
	// pruning on every local skyline, since filters only add prune power.
	parts := gen.GridPartition(data, 3, 1000)
	var locals [][]tuple.Tuple
	for _, p := range parts {
		locals = append(locals, skyline.SFS(p))
	}
	acc1 := MultiFilterReduction(locals, one)
	acc3 := MultiFilterReduction(locals, three)
	if acc3.Reduced > acc1.Reduced {
		t.Errorf("3 filters kept %d tuples, 1 filter kept %d — more filters must prune at least as much",
			acc3.Reduced, acc1.Reduced)
	}
	t.Logf("reduction: 1 filter %d→%d, 3 filters →%d (DRR %.3f vs %.3f)",
		acc1.Unreduced, acc1.Reduced, acc3.Reduced, acc1.DRR(), acc3.DRR())

	if got := SelectFilters(nil, hi, 2, 0, 1); got != nil {
		t.Errorf("empty skyline should yield no filters")
	}
	if got := SelectFilters(sky, hi, 0, 0, 1); got != nil {
		t.Errorf("k=0 should yield no filters")
	}
}

func TestApplyFiltersSafety(t *testing.T) {
	data := gen.Generate(gen.DefaultConfig(2000, 3, gen.Independent, 21))
	global := skyline.SFS(data)
	parts := gen.GridPartition(data, 3, 1000)
	hi := []float64{1000, 1000, 1000}
	filters := SelectFilters(global, hi, 4, 0, 9)
	for _, p := range parts {
		local := skyline.SFS(p)
		pruned := ApplyFilters(append([]tuple.Tuple(nil), local...), filters)
		// No pruned-away tuple may belong to the global skyline.
		for _, g := range global {
			inLocal := skyline.Contains(local, g)
			inPruned := skyline.Contains(pruned, g)
			if inLocal && !inPruned {
				t.Fatalf("filter removed global skyline tuple %v", g)
			}
		}
	}
}

func TestQueryString(t *testing.T) {
	q := Query{Org: 7, Cnt: 3, Pos: tuple.Point{X: 1, Y: 2}, D: 100}
	if q.String() == "" {
		t.Errorf("String should render")
	}
	if Unconstrained() != math.Inf(1) {
		t.Errorf("Unconstrained should be +Inf")
	}
}

func TestMultiFilterProtocolCorrectAndAccounted(t *testing.T) {
	c := gen.DefaultConfig(4000, 2, gen.AntiCorrelated, 19)
	data := gen.Generate(c)
	parts := gen.GridPartition(data, 3, c.Space)
	want := skyline.SFS(data)

	run := func(k int) (StaticOutcome, int) {
		devs := make([]*Device, len(parts))
		for i, p := range parts {
			devs[i] = NewDevice(DeviceID(i), p, c.Schema(), Under, true)
			devs[i].NumFilters = k
		}
		out := RunStatic(devs, 3, 4)
		return out, out.Acc.Filters
	}

	single, f1 := run(1)
	multi, f3 := run(3)
	if !skyline.SetEqual(single.Skyline, want) || !skyline.SetEqual(multi.Skyline, want) {
		t.Fatalf("multi-filter protocol changed the result")
	}
	// Eight remote devices: 8 filters shipped at k=1; up to 24 at k=3
	// (fewer only if the originator's skyline is smaller than k).
	if f1 != 8 {
		t.Errorf("k=1 shipped %d filters, want 8", f1)
	}
	if f3 <= f1 {
		t.Errorf("k=3 should ship more filters than k=1: %d vs %d", f3, f1)
	}
	// More filters must prune at least as hard.
	if multi.Acc.Reduced > single.Acc.Reduced {
		t.Errorf("k=3 transmitted more tuples (%d) than k=1 (%d)",
			multi.Acc.Reduced, single.Acc.Reduced)
	}
	t.Logf("k=1: reduced %d→%d DRR %.3f; k=3: →%d DRR %.3f",
		single.Acc.Unreduced, single.Acc.Reduced, single.DRR(),
		multi.Acc.Reduced, multi.DRR())
}

func TestQueryNumFilters(t *testing.T) {
	q := Query{}
	if q.NumFilters() != 0 {
		t.Errorf("empty query has %d filters", q.NumFilters())
	}
	flt := tp(0, 0, 1, 1)
	q.Filter = &flt
	q.Extra = []tuple.Tuple{tp(1, 1, 2, 2), tp(2, 2, 3, 3)}
	if q.NumFilters() != 3 {
		t.Errorf("NumFilters = %d, want 3", q.NumFilters())
	}
}
