package core

import (
	"fmt"

	"manetskyline/internal/localsky"
	"manetskyline/internal/storage"
	"manetskyline/internal/tuple"
)

// Estimation selects how a device computes the volume of a tuple's
// dominating region when scoring filtering-tuple candidates (§3.2-3.3).
type Estimation int

const (
	// Exact computes VDR_j = Π(b_k - p_jk) from the known global domain
	// bounds b_k ("EXT" in the figures).
	Exact Estimation = iota
	// Over uses pre-specified bounds max_k larger than any global bound
	// ("OVE"): VDR_o = Π(max_k - p_jk). Devices need no global knowledge.
	Over
	// Under uses the device-local maxima h_k ("UNE"):
	// VDR_u = Π(h_k - p_jk). Devices need no global knowledge either.
	Under
)

// String names the estimation mode the way the paper's figures do.
func (e Estimation) String() string {
	switch e {
	case Exact:
		return "EXT"
	case Over:
		return "OVE"
	case Under:
		return "UNE"
	default:
		return fmt.Sprintf("Estimation(%d)", int(e))
	}
}

// DefaultOverFactor scales the global upper bounds to obtain the
// pre-specified over-estimation bounds max_k. Any factor > 1 satisfies the
// paper's "larger than the global domain upper bound".
const DefaultOverFactor = 2.0

// VDR computes Π_k (hi_k - p_k), the volume of the dominating region of t
// against upper bounds hi. Negative factors (a tuple above the assumed
// bound, possible under under-estimation) clamp to zero: such a tuple has
// no credited pruning volume.
func VDR(t tuple.Tuple, hi []float64) float64 {
	v := 1.0
	for k, p := range t.Attrs {
		f := hi[k] - p
		if f <= 0 {
			return 0
		}
		v *= f
	}
	return v
}

// VDRBounds returns the upper bounds a device should use under the given
// estimation mode. schema carries the global bounds (consulted only for
// Exact and Over); rel supplies the local maxima for Under; overFactor > 1
// scales the global bounds for Over (DefaultOverFactor when zero).
func VDRBounds(mode Estimation, schema tuple.Schema, rel storage.Relation, overFactor float64) []float64 {
	dim := schema.Dim()
	hi := make([]float64, dim)
	switch mode {
	case Exact:
		copy(hi, schema.Max)
	case Over:
		if overFactor <= 1 {
			overFactor = DefaultOverFactor
		}
		for k := range hi {
			hi[k] = schema.Max[k] * overFactor
			if hi[k] <= schema.Max[k] { // non-positive bound: still exceed it
				hi[k] = schema.Max[k] + 1
			}
		}
	case Under:
		for k := range hi {
			if rel != nil && rel.Len() > 0 {
				hi[k] = rel.AttrMax(k)
			} else {
				hi[k] = schema.Max[k]
			}
		}
	default:
		panic(fmt.Sprintf("core: unknown estimation mode %d", int(mode)))
	}
	return hi
}

// VDRFunc builds the localsky scoring function for the given mode.
func VDRFunc(mode Estimation, schema tuple.Schema, rel storage.Relation, overFactor float64) localsky.VDRFunc {
	hi := VDRBounds(mode, schema, rel, overFactor)
	return func(t tuple.Tuple) float64 { return VDR(t, hi) }
}

// SelectFilter picks the tuple with the maximum VDR from a local skyline —
// the originator's filtering-tuple choice of §3.2. It returns nil for an
// empty skyline.
func SelectFilter(sky []tuple.Tuple, vdr localsky.VDRFunc) (*tuple.Tuple, float64) {
	var best *tuple.Tuple
	bestV := 0.0
	for i := range sky {
		if v := vdr(sky[i]); best == nil || v > bestV {
			best = &sky[i]
			bestV = v
		}
	}
	if best == nil {
		return nil, 0
	}
	t := best.Clone()
	return &t, bestV
}
