package core

import (
	"math"
	"math/rand"

	"manetskyline/internal/skyline"
	"manetskyline/internal/tuple"
)

// This file implements the paper's first future-work direction (§7):
// "generalize the filtering idea, using more than one filtering tuple.
// Important questions include how many, and which, tuples should be used as
// filters, to achieve the best data reduction rate."
//
// The greedy volume-of-dominated-region selection itself lives in
// internal/skyline (SelectFilterSet), where both this multi-filter extension
// and the sampling-based SF strategy draw from it. The SF-specific
// primitives — seeded deterministic tuple sampling and survivor computation
// against a received filter set — live here, on the local-skyline path every
// runtime (simulator and live TCP peers) shares.

// SelectFilters picks up to k filtering tuples from a local skyline,
// maximizing the (sampled) union volume of their dominating regions under
// the upper bounds hi. The first pick is always the max-VDR tuple, so k=1
// degenerates to SelectFilter. samples controls the Monte Carlo precision
// (0 ⇒ 2048); seed makes the estimate deterministic.
func SelectFilters(sky []tuple.Tuple, hi []float64, k, samples int, seed int64) []tuple.Tuple {
	return skyline.SelectFilterSet(sky, hi, k, samples, seed)
}

// ApplyFilters prunes a reduced local skyline with a set of filtering
// tuples: a tuple is dropped when any filter strictly dominates it. The
// same safety argument as for a single filter applies — every filter is a
// real in-range site, so anything it dominates cannot be in the final
// skyline.
func ApplyFilters(sky []tuple.Tuple, filters []tuple.Tuple) []tuple.Tuple {
	if len(filters) == 0 {
		return sky
	}
	out := sky[:0]
next:
	for _, t := range sky {
		for _, f := range filters {
			if f.Dominates(t) {
				continue next
			}
		}
		out = append(out, t)
	}
	return out
}

// SampleSeed derives the deterministic per-device sampling seed of the SF
// strategy: every runtime (simulator, live peers) must draw the same sample
// for the same (query, device) pair so traces and results are reproducible.
func SampleSeed(key QueryKey, id DeviceID) int64 {
	return int64(key.Org)<<24 ^ int64(key.Cnt)<<16 ^ int64(id) ^ 0x5f3a
}

// SampleTuples draws a seeded deterministic sample of up to k tuples from a
// local skyline — the tuples a device volunteers during the SF strategy's
// sampling round. The sample preserves skyline order (it is a subsequence),
// so byte-identical traces follow from the seed alone. k >= len(sky)
// returns sky itself.
func SampleTuples(sky []tuple.Tuple, k int, seed int64) []tuple.Tuple {
	if k <= 0 {
		return nil
	}
	if k >= len(sky) {
		return sky
	}
	r := rand.New(rand.NewSource(seed))
	idx := r.Perm(len(sky))[:k]
	pick := make([]bool, len(sky))
	for _, i := range idx {
		pick[i] = true
	}
	out := make([]tuple.Tuple, 0, k)
	for i, t := range sky {
		if pick[i] {
			out = append(out, t)
		}
	}
	return out
}

// QuantizeFilters maps each filter's attributes onto a 16-bit fixed-point
// grid over the schema's global bounds, rounding UP (toward worse, in the
// smaller-is-better convention). The SF filter flood ships only the 2-byte
// codes — a fraction of a float64 per attribute — and because the decoded
// vector is coordinate-wise no better than the original tuple, anything the
// quantized filter dominates is also dominated by the real tuple: pruning
// stays conservative and the exactness argument survives quantization
// unchanged. Positions are preserved in the returned tuples but never ship
// (filters prune by dominance alone). A value outside the schema bounds is
// kept verbatim rather than clamped, so conservativeness never breaks.
func QuantizeFilters(filters []tuple.Tuple, schema tuple.Schema) []tuple.Tuple {
	const levels = 1 << 16
	out := make([]tuple.Tuple, 0, len(filters))
	for _, f := range filters {
		q := f.Clone()
		for i, v := range q.Attrs {
			if i >= len(schema.Min) || i >= len(schema.Max) {
				continue
			}
			lo, hi := schema.Min[i], schema.Max[i]
			span := hi - lo
			if span <= 0 || v < lo || v > hi {
				continue
			}
			code := math.Ceil((v - lo) / span * (levels - 1))
			vq := lo + code/(levels-1)*span
			for vq < v && code < levels-1 { // float round-off guard
				code++
				vq = lo + code/(levels-1)*span
			}
			if vq >= v {
				q.Attrs[i] = vq
			}
		}
		out = append(out, q)
	}
	return out
}

// Survivors computes the tuples a device returns in the SF strategy's
// collect phase: its full constrained local skyline pruned by the broadcast
// filter set. Every filter is a real in-range tuple the originator
// collected, so anything a filter dominates cannot be in the final skyline —
// the same safety argument as the single-filter scheme. Tuples the device
// already volunteered in the sampling round are deliberately re-included
// when they survive: the sample message may have been lost, and the
// originator's Merge deduplicates by site, so re-sending costs a few tuples
// while subtracting would silently lose them under loss. Unlike
// ApplyFilters, the input is left intact.
func Survivors(sky, filters []tuple.Tuple) []tuple.Tuple {
	out := make([]tuple.Tuple, 0, len(sky))
next:
	for _, t := range sky {
		for _, f := range filters {
			if f.Dominates(t) {
				continue next
			}
		}
		out = append(out, t)
	}
	return out
}

// MultiFilterReduction evaluates, for analysis and the ablation bench, how
// many tuples of each unreduced local skyline a k-filter set removes. It
// returns Formula 1's sums with the per-device cost set to k transmitted
// filter tuples instead of 1.
func MultiFilterReduction(localSkylines [][]tuple.Tuple, filters []tuple.Tuple) DRRAccumulator {
	var acc DRRAccumulator
	for _, sk := range localSkylines {
		reduced := ApplyFilters(append([]tuple.Tuple(nil), sk...), filters)
		acc.Reduced += len(reduced)
		acc.Unreduced += len(sk)
		acc.Devices += len(filters) // k tuples shipped per device
	}
	return acc
}
