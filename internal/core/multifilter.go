package core

import (
	"math/rand"

	"manetskyline/internal/tuple"
)

// This file implements the paper's first future-work direction (§7):
// "generalize the filtering idea, using more than one filtering tuple.
// Important questions include how many, and which, tuples should be used as
// filters, to achieve the best data reduction rate."
//
// A single max-VDR tuple covers one corner of the data space; tuples far
// from it survive pruning even when other local-skyline tuples would have
// removed them. SelectFilters therefore picks k tuples greedily by marginal
// coverage: the union volume of the chosen dominating regions, estimated by
// Monte Carlo sampling over the bounding box, which handles the
// overlapping-hyper-rectangle union that has no cheap closed form.

// SelectFilters picks up to k filtering tuples from a local skyline,
// maximizing the (sampled) union volume of their dominating regions under
// the upper bounds hi. The first pick is always the max-VDR tuple, so k=1
// degenerates to SelectFilter. samples controls the Monte Carlo precision
// (0 ⇒ 2048); seed makes the estimate deterministic.
func SelectFilters(sky []tuple.Tuple, hi []float64, k, samples int, seed int64) []tuple.Tuple {
	if k <= 0 || len(sky) == 0 {
		return nil
	}
	if k > len(sky) {
		k = len(sky)
	}
	if samples <= 0 {
		samples = 2048
	}
	dim := len(hi)

	// Sample points uniformly in [min attr seen, hi]^dim — the region where
	// candidate dominating regions live.
	lo := make([]float64, dim)
	copy(lo, sky[0].Attrs)
	for _, t := range sky {
		for j, v := range t.Attrs {
			if v < lo[j] {
				lo[j] = v
			}
		}
	}
	r := rand.New(rand.NewSource(seed))
	pts := make([][]float64, samples)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = lo[j] + r.Float64()*(hi[j]-lo[j])
		}
		pts[i] = p
	}

	covered := make([]bool, samples)
	chosen := make([]tuple.Tuple, 0, k)
	used := make([]bool, len(sky))

	// First pick: exact max-VDR for parity with the single-filter scheme.
	first, _ := SelectFilter(sky, func(t tuple.Tuple) float64 { return VDR(t, hi) })
	for i := range sky {
		if sky[i].Equal(*first) {
			used[i] = true
			break
		}
	}
	chosen = append(chosen, *first)
	markCovered(covered, pts, *first)

	for len(chosen) < k {
		bestGain := 0
		bestIdx := -1
		for i := range sky {
			if used[i] {
				continue
			}
			gain := 0
			for s, p := range pts {
				if !covered[s] && inDominatingRegion(sky[i], p) {
					gain++
				}
			}
			if gain > bestGain {
				bestGain = gain
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break // no remaining tuple adds coverage
		}
		used[bestIdx] = true
		chosen = append(chosen, sky[bestIdx].Clone())
		markCovered(covered, pts, sky[bestIdx])
	}
	return chosen
}

func markCovered(covered []bool, pts [][]float64, t tuple.Tuple) {
	for s, p := range pts {
		if !covered[s] && inDominatingRegion(t, p) {
			covered[s] = true
		}
	}
}

// inDominatingRegion reports whether point p lies strictly inside t's
// dominating region (t better on every coordinate).
func inDominatingRegion(t tuple.Tuple, p []float64) bool {
	for j, v := range t.Attrs {
		if v >= p[j] {
			return false
		}
	}
	return true
}

// ApplyFilters prunes a reduced local skyline with a set of filtering
// tuples: a tuple is dropped when any filter strictly dominates it. The
// same safety argument as for a single filter applies — every filter is a
// real in-range site, so anything it dominates cannot be in the final
// skyline.
func ApplyFilters(sky []tuple.Tuple, filters []tuple.Tuple) []tuple.Tuple {
	if len(filters) == 0 {
		return sky
	}
	out := sky[:0]
next:
	for _, t := range sky {
		for _, f := range filters {
			if f.Dominates(t) {
				continue next
			}
		}
		out = append(out, t)
	}
	return out
}

// MultiFilterReduction evaluates, for analysis and the ablation bench, how
// many tuples of each unreduced local skyline a k-filter set removes. It
// returns Formula 1's sums with the per-device cost set to k transmitted
// filter tuples instead of 1.
func MultiFilterReduction(localSkylines [][]tuple.Tuple, filters []tuple.Tuple) DRRAccumulator {
	var acc DRRAccumulator
	for _, sk := range localSkylines {
		reduced := ApplyFilters(append([]tuple.Tuple(nil), sk...), filters)
		acc.Reduced += len(reduced)
		acc.Unreduced += len(sk)
		acc.Devices += len(filters) // k tuples shipped per device
	}
	return acc
}
