package core

import (
	"fmt"

	"manetskyline/internal/localsky"
	"manetskyline/internal/tuple"
)

// StaticOutcome reports one query's execution in the static setting of the
// pre-tests (§5.2.2-I): no mobility, recursive forwarding from the
// originator to its outer grid neighbours, distance constraint ignored.
type StaticOutcome struct {
	// Skyline is the assembled final result SK.
	Skyline []tuple.Tuple
	// Acc holds the Formula 1 sums over the m−1 non-originator devices.
	Acc DRRAccumulator
	// Stats aggregates the local-processing work across all devices.
	Stats localsky.Stats
}

// DRR is the query's data reduction rate.
func (o StaticOutcome) DRR() float64 { return o.Acc.DRR() }

// StaticOptions tunes the static executor.
type StaticOptions struct {
	// SkipAssembly disables merging the final skyline at the originator.
	// The DRR pre-tests of §5.2.2-I only measure reduction sums; on
	// anti-correlated high-dimensional data the assembled skyline is huge
	// and the merge dominates the experiment's cost without affecting it.
	SkipAssembly bool
}

// RunStatic executes one distributed skyline query over a g×g grid of
// devices in the static setting. devices must have length g*g, laid out
// row-major as produced by gen.GridPartition; org indexes the originator.
//
// Forwarding follows the paper's pre-test description: the query spreads
// recursively from the originator to its outer neighbours (breadth-first
// over 4-neighbour grid adjacency), every device processes it exactly once,
// and under the dynamic strategy each device forwards its own possibly
// upgraded filter to the neighbours it discovers.
func RunStatic(devices []*Device, g int, org DeviceID) StaticOutcome {
	return RunStaticOpt(devices, g, org, StaticOptions{})
}

// RunStaticOpt is RunStatic with options.
func RunStaticOpt(devices []*Device, g int, org DeviceID, opt StaticOptions) StaticOutcome {
	if len(devices) != g*g {
		panic(fmt.Sprintf("core: %d devices for a %d×%d grid", len(devices), g, g))
	}
	if int(org) < 0 || int(org) >= len(devices) {
		panic(fmt.Sprintf("core: originator %d out of range", org))
	}

	orgDev := devices[org]
	pos := orgDev.Rel.MBR().Center()
	q, orgRes := orgDev.Originate(pos, Unconstrained())

	out := StaticOutcome{Skyline: orgRes.Skyline}
	out.Stats.Add(orgRes.Stats)

	// BFS over the grid; each queue entry carries the query as forwarded by
	// the device that discovered it (whose filter may have been upgraded).
	type hop struct {
		dev DeviceID
		q   Query
	}
	visited := make([]bool, len(devices))
	visited[org] = true
	queue := []hop{}
	enqueueNeighbors := func(from DeviceID, fq Query) {
		r, c := int(from)/g, int(from)%g
		for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
			nr, nc := r+d[0], c+d[1]
			if nr < 0 || nr >= g || nc < 0 || nc >= g {
				continue
			}
			id := DeviceID(nr*g + nc)
			if !visited[id] {
				visited[id] = true
				queue = append(queue, hop{dev: id, q: fq})
			}
		}
	}
	enqueueNeighbors(org, q)

	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		dev := devices[h.dev]
		if !dev.Log.FirstTime(h.q.Key()) {
			continue
		}
		res := dev.Process(h.q)
		out.Acc.ObserveFilters(res, h.q.NumFilters())
		out.Stats.Add(res.Stats)
		if !opt.SkipAssembly {
			out.Skyline = Merge(out.Skyline, res.Skyline)
		}
		enqueueNeighbors(h.dev, Forwardable(h.q, res))
	}
	return out
}

// RunStaticAll runs the pre-test protocol once per originator (the paper's
// m×m-query experiments average over every device originating) and returns
// the outcomes in originator order. Device query logs are reset between
// runs so each query is fresh.
func RunStaticAll(devices []*Device, g int) []StaticOutcome {
	return RunStaticAllOpt(devices, g, StaticOptions{})
}

// RunStaticAllOpt is RunStaticAll with options.
func RunStaticAllOpt(devices []*Device, g int, opt StaticOptions) []StaticOutcome {
	outs := make([]StaticOutcome, len(devices))
	for org := range devices {
		for _, d := range devices {
			d.Log.Reset()
		}
		outs[org] = RunStaticOpt(devices, g, DeviceID(org), opt)
	}
	return outs
}
