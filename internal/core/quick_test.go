package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"manetskyline/internal/skyline"
	"manetskyline/internal/tuple"
)

// tupleSet is a quick-generatable bag of small-domain tuples. Coarse
// domains force ties, duplicates, and dominations — the hard cases.
type tupleSet []tuple.Tuple

// Generate implements quick.Generator.
func (tupleSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size*4 + 1)
	dim := 1 + r.Intn(3)
	ts := make(tupleSet, n)
	for i := range ts {
		attrs := make([]float64, dim)
		for j := range attrs {
			attrs[j] = float64(r.Intn(8))
		}
		ts[i] = tuple.Tuple{
			X:     float64(r.Intn(30)),
			Y:     float64(r.Intn(30)),
			Attrs: attrs,
		}
	}
	return reflect.ValueOf(ts)
}

// sameDim keeps only tuples matching the first tuple's dimensionality and
// deduplicates sites (the system's standing assumption: one site, one
// attribute vector).
func (ts tupleSet) normalize() []tuple.Tuple {
	if len(ts) == 0 {
		return nil
	}
	dim := ts[0].Dim()
	seen := map[[2]float64]bool{}
	var out []tuple.Tuple
	for _, t := range ts {
		if t.Dim() != dim {
			continue
		}
		k := [2]float64{t.X, t.Y}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	return out
}

// Merging the skylines of any two partitions must equal the skyline of the
// union — the §3.1 correctness basis, under arbitrary inputs.
func TestQuickMergeEqualsUnionSkyline(t *testing.T) {
	f := func(raw tupleSet, cut uint8) bool {
		ts := raw.normalize()
		if len(ts) == 0 {
			return true
		}
		c := int(cut) % (len(ts) + 1)
		a, b := ts[:c], ts[c:]
		merged := Merge(append([]tuple.Tuple(nil), skyline.SFS(a)...), skyline.SFS(b))
		return skyline.SetEqual(merged, skyline.SFS(ts))
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Merge must be idempotent and produce a mutually non-dominated,
// site-unique result.
func TestQuickMergeResultIsSkyline(t *testing.T) {
	f := func(raw tupleSet) bool {
		ts := raw.normalize()
		out := Merge(nil, skyline.SFS(ts))
		for i, a := range out {
			for j, b := range out {
				if i == j {
					continue
				}
				if a.Dominates(b) || a.SamePlace(b) {
					return false
				}
			}
		}
		again := Merge(append([]tuple.Tuple(nil), out...), out)
		return skyline.SetEqual(again, out)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Pruning any skyline with any filter drawn from the same global relation
// must never change the merged final result — §3.2/§3.3 safety under
// arbitrary inputs.
func TestQuickFilterSafety(t *testing.T) {
	f := func(raw tupleSet, cut, pick uint8) bool {
		ts := raw.normalize()
		if len(ts) < 2 {
			return true
		}
		c := 1 + int(cut)%(len(ts)-1)
		a, b := ts[:c], ts[c:]
		skyA, skyB := skyline.SFS(a), skyline.SFS(b)
		// Filter: any tuple of skyA (as the originator would pick).
		flt := skyA[int(pick)%len(skyA)]
		pruned := ApplyFilters(append([]tuple.Tuple(nil), skyB...), []tuple.Tuple{flt})
		merged := Merge(append([]tuple.Tuple(nil), skyA...), pruned)
		return skyline.SetEqual(merged, skyline.SFS(ts))
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// VDR is monotone: a tuple that dominates another has at least as large a
// dominating region under any common bounds.
func TestQuickVDRMonotone(t *testing.T) {
	f := func(av, bv [3]uint8, hi [3]uint8) bool {
		a := tuple.Tuple{Attrs: []float64{float64(av[0]), float64(av[1]), float64(av[2])}}
		b := tuple.Tuple{Attrs: []float64{float64(bv[0]), float64(bv[1]), float64(bv[2])}}
		bounds := []float64{float64(hi[0]) + 256, float64(hi[1]) + 256, float64(hi[2]) + 256}
		if !a.Dominates(b) {
			return true
		}
		return VDR(a, bounds) >= VDR(b, bounds)
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// The query log accepts each (org, cnt) exactly once regardless of arrival
// pattern, as long as counters don't interleave (the paper's one-query-in-
// flight assumption).
func TestQuickQueryLogExactlyOnce(t *testing.T) {
	f := func(orgs []uint8) bool {
		l := NewQueryLog()
		type key = QueryKey
		accepted := map[key]int{}
		cnt := map[DeviceID]uint8{}
		for _, o := range orgs {
			org := DeviceID(o % 8)
			cnt[org]++
			k := key{Org: org, Cnt: cnt[org]}
			for i := 0; i < 3; i++ { // duplicate deliveries
				if l.FirstTime(k) {
					accepted[k]++
				}
			}
		}
		for _, n := range accepted {
			if n != 1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Static execution must agree with the centralized constrained skyline for
// arbitrary (small) random relations, all modes, both strategies.
func TestQuickStaticEqualsCentralized(t *testing.T) {
	f := func(raw tupleSet, mode uint8, dynamic bool) bool {
		ts := raw.normalize()
		if len(ts) == 0 {
			return true
		}
		dim := ts[0].Dim()
		schema := tuple.NewSchema(dim, 0, 8)
		// Spread across a 2×2 grid by site position scaled to [0,1000).
		g := 2
		parts := make([][]tuple.Tuple, g*g)
		for _, tp := range ts {
			col := int(tp.X) * g / 30
			row := int(tp.Y) * g / 30
			if col >= g {
				col = g - 1
			}
			if row >= g {
				row = g - 1
			}
			parts[row*g+col] = append(parts[row*g+col], tp)
		}
		devs := make([]*Device, g*g)
		for i, p := range parts {
			devs[i] = NewDevice(DeviceID(i), p, schema, Estimation(mode%3), dynamic)
		}
		out := RunStatic(devs, g, 0)
		return skyline.SetEqual(out.Skyline, skyline.SFS(ts))
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(10))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// DRR is bounded: it can never exceed 1, and equals at most
// (unreduced - devices)/unreduced.
func TestQuickDRRBounds(t *testing.T) {
	f := func(red, unred, dev uint16) bool {
		acc := DRRAccumulator{
			Reduced:   int(red % 500),
			Unreduced: int(unred % 500),
			Devices:   int(dev % 50),
		}
		if acc.Reduced > acc.Unreduced {
			acc.Reduced = acc.Unreduced // reduction can't add tuples
		}
		d := acc.DRR()
		return d <= 1 && !math.IsNaN(d) && !math.IsInf(d, 0)
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
