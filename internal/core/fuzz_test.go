package core

import (
	"testing"

	"manetskyline/internal/skyline"
	"manetskyline/internal/tuple"
)

// fuzzTuple builds a tuple from raw fuzz bytes: the site comes from the
// index (keeping sites unique within one fuzz case) and the attributes from
// a coarse projection of the bytes, which forces ties and dominations.
func fuzzTuple(idx int, dim int, raw []byte) tuple.Tuple {
	attrs := make([]float64, dim)
	for i := range attrs {
		if len(raw) > 0 {
			attrs[i] = float64(raw[(idx*dim+i)%len(raw)] % 16)
		}
	}
	return tuple.Tuple{X: float64(idx), Y: float64(idx % 7), Attrs: attrs}
}

// FuzzDominates fuzzes the dominance relation and the merge operator with
// arbitrary attribute bytes: dominance must be a strict partial order
// (irreflexive, antisymmetric, transitive), consistent with
// DominatesOrEqual, and Merge must be idempotent over its own output.
func FuzzDominates(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(2))
	f.Add([]byte{0, 0, 0, 0}, uint8(1))
	f.Add([]byte{9, 1, 1, 9, 5, 5, 3, 3}, uint8(3))
	f.Add([]byte{15, 0, 15, 0}, uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, dimRaw uint8) {
		dim := 1 + int(dimRaw%4)
		n := 3 + len(raw)%6
		ts := make([]tuple.Tuple, n)
		for i := range ts {
			ts[i] = fuzzTuple(i, dim, raw)
		}
		for _, a := range ts {
			if a.Dominates(a) {
				t.Fatalf("dominance is not irreflexive: %v", a)
			}
			for _, b := range ts {
				if a.Dominates(b) {
					if b.Dominates(a) {
						t.Fatalf("dominance is not antisymmetric: %v <-> %v", a, b)
					}
					if !a.DominatesOrEqual(b) {
						t.Fatalf("Dominates without DominatesOrEqual: %v vs %v", a, b)
					}
					for _, c := range ts {
						if b.Dominates(c) && !a.Dominates(c) {
							t.Fatalf("dominance is not transitive: %v > %v > %v", a, b, c)
						}
					}
				}
			}
		}
		// Merge idempotence: merging a skyline with itself changes nothing,
		// and the merged set is mutually non-dominated and site-unique.
		sky := skyline.SFS(ts)
		again := Merge(append([]tuple.Tuple(nil), sky...), sky)
		if !skyline.SetEqual(again, sky) {
			t.Fatalf("merge is not idempotent: %d tuples became %d", len(sky), len(again))
		}
		for i, a := range again {
			for j, b := range again {
				if i != j && (a.Dominates(b) || a.SamePlace(b)) {
					t.Fatalf("merged set contains dominated or duplicate tuple: %v vs %v", a, b)
				}
			}
		}
	})
}
