package manet

import "testing"

// TestScaleKnobs runs a moderate scenario with every scale gate open —
// capped originators, struct-of-arrays mobility, and route-installing
// floods — and checks the system still answers queries.
func TestScaleKnobs(t *testing.T) {
	p := DefaultParams()
	p.Grid = 6
	p.GlobalN = 3000
	p.SimTime = 1200
	p.MinQueries, p.MaxQueries = 1, 1
	p.Originators = 5
	p.CompactMobility = true
	p.FloodRoutes = true
	p.QueryDeadline = 300
	p.Seed = 4

	out := Run(p)
	if len(out.Queries) == 0 {
		t.Fatal("no queries issued")
	}
	if len(out.Queries) > p.Originators {
		t.Fatalf("%d queries from %d originators", len(out.Queries), p.Originators)
	}
	done := 0
	for _, q := range out.Queries {
		if q.Done {
			done++
		}
	}
	if done == 0 {
		t.Fatalf("none of %d queries completed", len(out.Queries))
	}
	if out.Radio.FramesSent == 0 || out.Aodv.DataDelivered == 0 {
		t.Fatalf("substrate idle: radio=%+v aodv=%+v", out.Radio, out.Aodv)
	}
}

// TestScaleKnobsValidation pins the Originators bounds check.
func TestScaleKnobsValidation(t *testing.T) {
	p := DefaultParams()
	p.Originators = -1
	if err := p.Validate(); err == nil {
		t.Error("negative originators should fail validation")
	}
	p.Originators = p.NumDevices() + 1
	if err := p.Validate(); err == nil {
		t.Error("originators above device count should fail validation")
	}
	p.Originators = p.NumDevices()
	if err := p.Validate(); err != nil {
		t.Errorf("originators == device count should validate: %v", err)
	}
}

// TestFloodRoutesInstallReverseRoutes checks the piggybacked route
// installation end to end: under FloodRoutes, a BF flood must leave the
// non-originator devices holding routes back to the originator.
func TestFloodRoutesInstallReverseRoutes(t *testing.T) {
	p := DefaultParams()
	p.Grid = 3
	p.GlobalN = 500
	p.SimTime = 600
	p.MinQueries, p.MaxQueries = 1, 1
	p.Originators = 1
	p.FloodRoutes = true
	p.Static = true
	p.Radio.Range = 600 // multi-hop over the 1000m field
	p.Seed = 2

	out := Run(p)
	if len(out.Queries) != 1 {
		t.Fatalf("want 1 query, got %d", len(out.Queries))
	}
	if !out.Queries[0].Done {
		t.Fatal("query did not complete")
	}
	// With the flood installing reverse routes, result returns need no
	// discovery from the responding devices.
	if out.Aodv.DataDelivered == 0 {
		t.Fatal("no results delivered")
	}
}
