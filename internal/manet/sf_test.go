package manet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"manetskyline/internal/core"
	"manetskyline/internal/faults"
	"manetskyline/internal/gen"
	"manetskyline/internal/skyline"
	"manetskyline/internal/telemetry"
)

// TestSFDistributedEqualsCentralizedStatic is the SF end-to-end correctness
// invariant: in a static, fully connected, loss-free network, every
// completed sampling-filter query must return exactly the centralized
// constrained skyline, under every estimation mode.
func TestSFDistributedEqualsCentralizedStatic(t *testing.T) {
	for _, mode := range []core.Estimation{core.Exact, core.Over, core.Under} {
		p := smallParams(SamplingFilter)
		p.Mode = mode
		p.BFQuorum = 1.0 // demand every device's survivors for exactness
		out := Run(p)
		if len(out.Queries) == 0 {
			t.Fatalf("%v: no queries issued", mode)
		}
		checked := 0
		for _, q := range out.Queries {
			if !q.Done {
				continue
			}
			checked++
			orgStart := gen.CellRect(int(q.Org)/p.Grid, int(q.Org)%p.Grid, p.Grid, p.Space).Center()
			want := groundTruth(out, q, orgStart, p.QueryDist)
			if !skyline.SetEqual(q.Skyline, want) {
				t.Errorf("%v query %v: result %d tuples, centralized %d",
					mode, q.Key, len(q.Skyline), len(want))
			}
		}
		if checked == 0 {
			t.Errorf("%v: no SF queries completed", mode)
		}
	}
}

// TestQuickCrossStrategyDifferential is the cross-strategy differential
// harness: on random fault-free scenarios, BF, DF, and SF must each return
// exactly the centralized constrained skyline for every completed query —
// and therefore agree with each other on every query key they both
// completed, which the test also checks directly.
func TestQuickCrossStrategyDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized differential sweep is not short")
	}
	f := func(seed uint16, nRaw uint16, distRaw uint8) bool {
		skylines := make(map[Forwarding]map[core.QueryKey]*QueryMetrics)
		for _, strategy := range allStrategies {
			p := DefaultParams()
			p.Grid = 3
			p.GlobalN = 300 + int(nRaw%1200)
			p.Dist = gen.Distribution(distRaw % 3)
			p.Strategy = strategy
			p.SimTime = 3600
			p.MinQueries, p.MaxQueries = 1, 1
			p.BFQuorum = 1.0
			p.Static = true
			p.KeepSkylines = true
			p.Radio.Range = 2000
			p.Seed = int64(seed) + 1
			out := Run(p)
			byKey := make(map[core.QueryKey]*QueryMetrics)
			for _, q := range out.Queries {
				if !q.Done {
					continue
				}
				byKey[q.Key] = q
				orgStart := gen.CellRect(int(q.Org)/p.Grid, int(q.Org)%p.Grid, p.Grid, p.Space).Center()
				want := groundTruth(out, q, orgStart, p.QueryDist)
				if !skyline.SetEqual(q.Skyline, want) {
					t.Logf("%v seed=%d query %v: %d tuples vs centralized %d",
						strategy, seed, q.Key, len(q.Skyline), len(want))
					return false
				}
			}
			if len(byKey) == 0 {
				t.Logf("%v seed=%d: no queries completed", strategy, seed)
				return false
			}
			skylines[strategy] = byKey
		}
		// Strategies agree with each other wherever they completed the same
		// query (the schedule is seed-identical; busy windows may differ).
		for key, sfq := range skylines[SamplingFilter] {
			for _, other := range []Forwarding{BreadthFirst, DepthFirst} {
				if oq, ok := skylines[other][key]; ok {
					if !skyline.SetEqual(sfq.Skyline, oq.Skyline) {
						t.Logf("seed=%d query %v: SF %d tuples, %v %d tuples",
							seed, key, len(sfq.Skyline), other, len(oq.Skyline))
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 4, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestSFUnderFaultPlans runs SF against the builtin fault plans: whatever
// comes back must be internally consistent (in-range, mutually
// non-dominated — the "result ⊆ candidate set" half of correctness that
// survives message loss), and with the retry policy mean recall must stay
// above a conservative floor.
func TestSFUnderFaultPlans(t *testing.T) {
	for _, plan := range []string{"crash", "partition", "chaos"} {
		t.Run(plan, func(t *testing.T) {
			p := DefaultParams()
			p.Grid = 3
			p.GlobalN = 3000
			p.Strategy = SamplingFilter
			p.SimTime = 3600
			p.MinQueries, p.MaxQueries = 1, 1
			p.Static = true
			p.Radio.Range = 2000
			p.QueryRetries = 3
			p.RetryBackoff = 10
			p.RetryBackoffMax = 60
			p.QueryDeadline = 900
			p.Recall = true
			p.Seed = 23
			fp, err := faults.Named(plan, p.NumDevices(), p.SimTime)
			if err != nil {
				t.Fatal(err)
			}
			p.Faults = fp
			out := Run(p)
			if len(out.Queries) == 0 {
				t.Fatalf("no queries issued")
			}
			for _, q := range out.Queries {
				for i, a := range q.Skyline {
					for j, b := range q.Skyline {
						if i != j && a.Dominates(b) {
							t.Fatalf("result contains dominated tuple")
						}
					}
					if !q.Pos.WithinDist(a.Pos(), q.D) {
						t.Fatalf("result leaked out-of-range tuple")
					}
				}
			}
			r, ok := out.MeanRecall()
			if !ok {
				t.Fatalf("recall not computed")
			}
			t.Logf("SF under %q: completion %.0f%%, recall %.3f", plan, out.CompletionRate()*100, r)
			if r < 0.5 {
				t.Errorf("mean recall %.3f below the 0.5 fault floor", r)
			}
		})
	}
}

// TestRecallFloorSF is the SF CI recall gate, matching the DF gate: on the
// pinned 5%-loss scenario with the retry policy, mean recall must stay at
// or above 0.9.
func TestRecallFloorSF(t *testing.T) {
	p := DefaultParams()
	p.Grid = 3
	p.GlobalN = 3000
	p.Strategy = SamplingFilter
	p.SimTime = 3600
	p.MinQueries, p.MaxQueries = 1, 1
	p.Static = true
	p.Radio.Range = 2000
	p.Radio.Loss = 0.05
	p.QueryRetries = 3
	p.RetryBackoff = 10
	p.RetryBackoffMax = 60
	p.Recall = true
	p.Seed = 21
	out := Run(p)
	r, ok := out.MeanRecall()
	if !ok {
		t.Fatalf("recall not computed")
	}
	t.Logf("SF at 5%% loss: mean recall %.3f over %d queries (completion %.0f%%)",
		r, len(out.Queries), out.CompletionRate()*100)
	if r < 0.9 {
		t.Errorf("mean recall %.3f below the 0.9 floor", r)
	}
}

// TestSFBytesBeatBF is the communication-optimality claim on the benchmark
// scenario (the paper's 10×10 mobile grid): SF must put fewer query-layer
// bytes on the air than BF. In a multi-hop network BF's cost is dominated
// by shipping every device's reduced skyline home; SF's extra flood round
// buys a filter set strong enough that mostly-empty survivor messages
// travel instead.
func TestSFBytesBeatBF(t *testing.T) {
	bytesFor := func(strategy Forwarding) int64 {
		p := benchScenarioParams(strategy)
		p.Metrics = telemetry.NewRegistry()
		Run(p)
		return p.Metrics.Counter("manet_query_bytes_sent_total", "").Value()
	}
	bf, sf := bytesFor(BreadthFirst), bytesFor(SamplingFilter)
	t.Logf("query bytes on air: BF=%d SF=%d (%.1f%%)", bf, sf, 100*float64(sf)/float64(bf))
	if sf >= bf {
		t.Errorf("SF put %d query bytes on air, BF only %d", sf, bf)
	}
}
