package manet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// sfGoldenParams is the SF variant of the tiny deterministic golden
// scenario: same 4 static devices and seed, sampling-filter forwarding.
func sfGoldenParams() Params {
	p := goldenParams()
	p.Strategy = SamplingFilter
	return p
}

// TestSFTraceGolden pins the JSONL trace of a small deterministic SF run
// byte-for-byte: the sampling round, the filter-set broadcast, and the
// survivor collection must replay identically from the seed alone.
// Regenerate with: go test ./internal/manet -run SFTraceGolden -update
func TestSFTraceGolden(t *testing.T) {
	run := func() *bytes.Buffer {
		var buf bytes.Buffer
		p := sfGoldenParams()
		p.Trace = &buf
		Run(p)
		return &buf
	}
	buf := run()

	path := filepath.Join("testdata", "sf_small.trace.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("SF trace diverged from golden %s\n(re-run with -update if the change is intended)\ngot %d bytes, want %d",
			path, buf.Len(), len(want))
	}

	// Seed determinism: a second run of the same params replays the exact
	// same trace (filter selection, sampling, and scheduling draw only from
	// seeded state).
	if again := run(); !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("two SF runs with the same seed produced different traces")
	}

	// The trace must actually narrate the SF protocol: both phases appear.
	events := map[string]int{}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	for dec.More() {
		var ev TraceEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		events[ev.Event]++
	}
	for _, kind := range []string{"issue", "sample", "filter-set", "result", "complete"} {
		if events[kind] == 0 {
			t.Errorf("SF golden trace has no %q events", kind)
		}
	}
}

// Pinned digests of the BF golden scenarios' traces. Unlike the golden
// files, these constants cannot be regenerated with -update: if SF-era
// changes ever perturb BF behavior, this test fails until the constants are
// edited deliberately. (To recompute after an intended protocol change, run
// the test and copy the digests from the failure message.)
const (
	bfGoldenTraceSHA256 = "41c1557e8fe890fc9cd02a96e05303f46b9f8df750435d0a8c9fd610e5eab9ef"
	bfFaultGoldenSHA256 = "20f0690416b363e6ffd966314f5ab01e6ff67c6227294d92dc00c6b7a3d9340c"
)

// TestBFGoldensUnchangedBySF re-runs the two BF golden scenarios fresh and
// compares their trace digests against constants pinned in source. This is
// the guard satellite of the SF work: adding a third strategy must leave
// every BF run byte-identical, and because the expectation is a source
// constant rather than a testdata file, a blanket `-update` cannot silently
// absorb a regression.
func TestBFGoldensUnchangedBySF(t *testing.T) {
	digest := func(p Params) string {
		var buf bytes.Buffer
		p.Trace = &buf
		Run(p)
		sum := sha256.Sum256(buf.Bytes())
		return hex.EncodeToString(sum[:])
	}
	if got := digest(goldenParams()); got != bfGoldenTraceSHA256 {
		t.Errorf("BF small golden trace digest changed:\n got %s\nwant %s", got, bfGoldenTraceSHA256)
	}
	if got := digest(faultGoldenParams()); got != bfFaultGoldenSHA256 {
		t.Errorf("BF crash+partition golden trace digest changed:\n got %s\nwant %s", got, bfFaultGoldenSHA256)
	}
}
