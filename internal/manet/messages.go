package manet

import (
	"manetskyline/internal/core"
	"manetskyline/internal/tuple"
)

// tupleBytes is the wire size of one tuple: two float64 coordinates plus
// one float64 per attribute (the paper's devices would ship narrower types;
// the constant factor only scales transfer delays uniformly).
func tupleBytes(dim int) int { return 16 + 8*dim }

// querySize is the wire size of a query specification: id, cnt, position,
// and distance, plus every filtering tuple it carries.
func querySize(q core.Query) int {
	s := 24
	if q.Filter != nil {
		s += tupleBytes(q.Filter.Dim()) + 8 // tuple + carried VDR score
	}
	for _, t := range q.Extra {
		s += tupleBytes(t.Dim())
	}
	return s
}

// queryMsg disseminates a query under breadth-first forwarding (one-hop
// broadcast, rebroadcast by every first-time receiver).
type queryMsg struct {
	Q core.Query
	// Hops is the flood depth: 1 at the originator's broadcast, +1 per
	// rebroadcast. It is simulator bookkeeping for traces and spans, not
	// protocol payload, and is deliberately excluded from SizeBytes so
	// airtime, timing, and goldens are unchanged by instrumentation.
	Hops int
}

func (m *queryMsg) SizeBytes() int { return querySize(m.Q) }

// resultMsg returns one device's reduced local skyline to the originator
// under breadth-first forwarding (multi-hop unicast).
type resultMsg struct {
	Key    core.QueryKey
	From   core.DeviceID
	Tuples []tuple.Tuple
}

func (m *resultMsg) SizeBytes() int {
	dim := 0
	if len(m.Tuples) > 0 {
		dim = m.Tuples[0].Dim()
	}
	return 16 + len(m.Tuples)*tupleBytes(dim)
}

// dfQueryMsg hands the query to one neighbour under depth-first forwarding.
type dfQueryMsg struct {
	Q core.Query
}

func (m *dfQueryMsg) SizeBytes() int { return querySize(m.Q) }

// dfAckMsg acknowledges a depth-first hand-off: Accept=false means the
// neighbour already processed this query ("try someone else").
type dfAckMsg struct {
	Key    core.QueryKey
	Accept bool
}

func (m *dfAckMsg) SizeBytes() int { return 8 }

// dfResultMsg returns a completed subtree's merged result (and the best
// filter it discovered) to the depth-first parent.
type dfResultMsg struct {
	Key       core.QueryKey
	Tuples    []tuple.Tuple
	Filter    *tuple.Tuple
	FilterVDR float64
}

func (m *dfResultMsg) SizeBytes() int {
	dim := 0
	if len(m.Tuples) > 0 {
		dim = m.Tuples[0].Dim()
	}
	s := 24 + len(m.Tuples)*tupleBytes(dim)
	if m.Filter != nil {
		s += tupleBytes(m.Filter.Dim()) + 8
	}
	return s
}

// queryKeyOf extracts the query key from any manet protocol payload, for
// per-query message attribution; ok is false for non-manet payloads.
func queryKeyOf(p any) (core.QueryKey, bool) {
	switch m := p.(type) {
	case *queryMsg:
		return m.Q.Key(), true
	case *resultMsg:
		return m.Key, true
	case *dfQueryMsg:
		return m.Q.Key(), true
	case *dfAckMsg:
		return m.Key, true
	case *dfResultMsg:
		return m.Key, true
	default:
		return core.QueryKey{}, false
	}
}
