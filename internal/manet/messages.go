package manet

import (
	"manetskyline/internal/core"
	"manetskyline/internal/tuple"
)

// tupleBytes is the wire size of one tuple: two float64 coordinates plus
// one float64 per attribute (the paper's devices would ship narrower types;
// the constant factor only scales transfer delays uniformly).
func tupleBytes(dim int) int { return 16 + 8*dim }

// querySize is the wire size of a query specification: id, cnt, position,
// and distance, plus every filtering tuple it carries.
func querySize(q core.Query) int {
	s := 24
	if q.Filter != nil {
		s += tupleBytes(q.Filter.Dim()) + 8 // tuple + carried VDR score
	}
	for _, t := range q.Extra {
		s += tupleBytes(t.Dim())
	}
	return s
}

// queryMsg disseminates a query under breadth-first forwarding (one-hop
// broadcast, rebroadcast by every first-time receiver).
type queryMsg struct {
	Q core.Query
	// Hops is the flood depth: 1 at the originator's broadcast, +1 per
	// rebroadcast. It is simulator bookkeeping for traces and spans, not
	// protocol payload, and is deliberately excluded from SizeBytes so
	// airtime, timing, and goldens are unchanged by instrumentation.
	Hops int
}

func (m *queryMsg) SizeBytes() int { return querySize(m.Q) }

// resultMsg returns one device's reduced local skyline to the originator
// under breadth-first forwarding (multi-hop unicast).
type resultMsg struct {
	Key    core.QueryKey
	From   core.DeviceID
	Tuples []tuple.Tuple
}

func (m *resultMsg) SizeBytes() int {
	dim := 0
	if len(m.Tuples) > 0 {
		dim = m.Tuples[0].Dim()
	}
	return 16 + len(m.Tuples)*tupleBytes(dim)
}

// dfQueryMsg hands the query to one neighbour under depth-first forwarding.
type dfQueryMsg struct {
	Q core.Query
}

func (m *dfQueryMsg) SizeBytes() int { return querySize(m.Q) }

// dfAckMsg acknowledges a depth-first hand-off: Accept=false means the
// neighbour already processed this query ("try someone else").
type dfAckMsg struct {
	Key    core.QueryKey
	Accept bool
}

func (m *dfAckMsg) SizeBytes() int { return 8 }

// dfResultMsg returns a completed subtree's merged result (and the best
// filter it discovered) to the depth-first parent.
type dfResultMsg struct {
	Key       core.QueryKey
	Tuples    []tuple.Tuple
	Filter    *tuple.Tuple
	FilterVDR float64
}

func (m *dfResultMsg) SizeBytes() int {
	dim := 0
	if len(m.Tuples) > 0 {
		dim = m.Tuples[0].Dim()
	}
	s := 24 + len(m.Tuples)*tupleBytes(dim)
	if m.Filter != nil {
		s += tupleBytes(m.Filter.Dim()) + 8
	}
	return s
}

// sfQueryMsg broadcasts the SF sampling round: a bare query (no filter —
// every receiver computes its full local skyline for the later collect
// phase) plus the per-device sample budget. The sampling round is
// TTL-limited (default one hop): SF only needs a representative
// neighbourhood sample to pick filters from, so it does not pay for a full
// flood here — devices beyond the TTL first hear of the query from the
// filter flood, which carries the full spec for exactly that reason.
type sfQueryMsg struct {
	Q       core.Query
	SampleK int
	// TTL is the remaining hop budget: receivers rebroadcast only while
	// TTL > 1.
	TTL int
	// Hops is simulator bookkeeping like queryMsg.Hops, excluded from
	// SizeBytes.
	Hops int
}

func (m *sfQueryMsg) SizeBytes() int { return querySize(m.Q) + 3 }

// sfSampleMsg returns one device's seeded skyline sample to the SF
// originator (multi-hop unicast).
type sfSampleMsg struct {
	Key    core.QueryKey
	From   core.DeviceID
	Tuples []tuple.Tuple
}

func (m *sfSampleMsg) SizeBytes() int {
	dim := 0
	if len(m.Tuples) > 0 {
		dim = m.Tuples[0].Dim()
	}
	return 16 + len(m.Tuples)*tupleBytes(dim)
}

// sfFilterMsg is SF's one full flood, opening the collect phase: the query
// spec (a device outside the sampling TTL answers from this message alone)
// together with the selected filter set. Filters prune by dominance only —
// their positions are never read — and travel as 16-bit fixed-point
// attribute codes over the schema's global bounds (core.QuantizeFilters):
// 2·dim bytes per filter instead of tupleBytes(dim). That keeps the flood
// payload below BF's query+filter+VDR scale, which is what lets SF come
// out ahead on a flood-dominated dense network.
type sfFilterMsg struct {
	Q       core.Query
	Filters []tuple.Tuple
	Hops    int
}

func (m *sfFilterMsg) SizeBytes() int {
	s := querySize(m.Q) + 2
	dim := 0
	if len(m.Filters) > 0 {
		dim = m.Filters[0].Dim()
	}
	return s + len(m.Filters)*2*dim
}

// sfResultMsg returns one device's surviving tuples — its local skyline
// pruned by the filter set, minus the sample it already sent — to the SF
// originator.
type sfResultMsg struct {
	Key    core.QueryKey
	From   core.DeviceID
	Tuples []tuple.Tuple
}

func (m *sfResultMsg) SizeBytes() int {
	dim := 0
	if len(m.Tuples) > 0 {
		dim = m.Tuples[0].Dim()
	}
	return 16 + len(m.Tuples)*tupleBytes(dim)
}

// queryKeyOf extracts the query key from any manet protocol payload, for
// per-query message attribution; ok is false for non-manet payloads.
func queryKeyOf(p any) (core.QueryKey, bool) {
	switch m := p.(type) {
	case *queryMsg:
		return m.Q.Key(), true
	case *resultMsg:
		return m.Key, true
	case *dfQueryMsg:
		return m.Q.Key(), true
	case *dfAckMsg:
		return m.Key, true
	case *dfResultMsg:
		return m.Key, true
	case *sfQueryMsg:
		return m.Q.Key(), true
	case *sfSampleMsg:
		return m.Key, true
	case *sfFilterMsg:
		return m.Q.Key(), true
	case *sfResultMsg:
		return m.Key, true
	default:
		return core.QueryKey{}, false
	}
}
