package manet

import (
	"encoding/json"
	"io"

	"manetskyline/internal/core"
)

// TraceEvent is one line of the simulation's JSONL event trace, enabled by
// Params.Trace. Events narrate the protocol at query granularity: issue,
// local processing, result arrival, completion, and relation hand-offs.
type TraceEvent struct {
	// T is the simulated time in seconds.
	T float64 `json:"t"`
	// Event is the event type: "issue", "process", "result", "complete",
	// "transfer".
	Event string `json:"event"`
	// Device is the device the event happened on.
	Device core.DeviceID `json:"device"`
	// Org and Cnt identify the query (absent for transfers).
	Org core.DeviceID `json:"org,omitempty"`
	Cnt uint8         `json:"cnt,omitempty"`
	// Tuples counts tuples involved (result sizes, transfer sizes).
	Tuples int `json:"tuples,omitempty"`
	// To is the receiving device of a transfer.
	To core.DeviceID `json:"to,omitempty"`
}

// trace emits one event when tracing is enabled. Encoding errors disable
// further tracing rather than disturbing the simulation.
func (sc *scenario) trace(ev TraceEvent) {
	if sc.traceEnc == nil {
		return
	}
	ev.T = sc.eng.Now()
	if err := sc.traceEnc.Encode(ev); err != nil {
		sc.traceEnc = nil
	}
}

// initTrace sets up the encoder.
func (sc *scenario) initTrace(w io.Writer) {
	if w != nil {
		sc.traceEnc = json.NewEncoder(w)
	}
}
