package manet

import (
	"encoding/json"
	"io"

	"manetskyline/internal/core"
)

// TraceEvent is one line of the simulation's JSONL event trace, enabled by
// Params.Trace. Events narrate the protocol at query granularity: issue,
// local processing, filter upgrades, result arrival, completion, and
// relation hand-offs.
//
// Org and Cnt are always emitted: device 0 originates queries and the
// one-byte counter wraps, so 0 is a legitimate value for both and omitempty
// would silently drop it (transfer events are not tied to a query and carry
// zeros).
type TraceEvent struct {
	// T is the simulated time in seconds.
	T float64 `json:"t"`
	// Event is the event type: "issue", "process", "filter-update",
	// "result", "retry", "complete", "transfer", "fault", and, under the
	// SF strategy, "sample" (a device's sample arrived at the originator)
	// and "filter-set" (the originator flooded its selected filter set).
	Event string `json:"event"`
	// Device is the device the event happened on.
	Device core.DeviceID `json:"device"`
	// Org and Cnt identify the query.
	Org core.DeviceID `json:"org"`
	Cnt uint8         `json:"cnt"`
	// Tuples counts tuples involved (result sizes, transfer sizes).
	Tuples int `json:"tuples,omitempty"`
	// Hops is the network distance the triggering message travelled:
	// flood depth for BF process events, route length for results.
	Hops int `json:"hops,omitempty"`
	// Pruned counts local skyline tuples the query's filter(s) removed.
	Pruned int `json:"pruned,omitempty"`
	// To is the receiving device of a transfer (nil otherwise; a pointer
	// so a hand-off to device 0 still serializes).
	To *core.DeviceID `json:"to,omitempty"`
	// Partial marks a complete event forced by the query deadline before
	// the normal completion condition was met.
	Partial bool `json:"partial,omitempty"`
	// Fault names the schedule boundary of a fault event, e.g.
	// "outage-start" or "partition-end" (see faults.Event).
	Fault string `json:"fault,omitempty"`
}

// trace emits one event when tracing is enabled. Encoding errors disable
// further tracing rather than disturbing the simulation.
func (sc *scenario) trace(ev TraceEvent) {
	if sc.traceEnc == nil {
		return
	}
	ev.T = sc.eng.Now()
	if err := sc.traceEnc.Encode(ev); err != nil {
		sc.traceEnc = nil
	}
}

// initTrace sets up the encoder.
func (sc *scenario) initTrace(w io.Writer) {
	if w != nil {
		sc.traceEnc = json.NewEncoder(w)
	}
}
