package manet

import (
	"encoding/json"
	"math"
	"sort"

	"manetskyline/internal/aodv"
	"manetskyline/internal/core"
	"manetskyline/internal/faults"
	"manetskyline/internal/gen"
	"manetskyline/internal/mobility"
	"manetskyline/internal/radio"
	"manetskyline/internal/sim"
	"manetskyline/internal/skyline"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
)

// QueryMetrics records one query's life in the simulation.
type QueryMetrics struct {
	// Key identifies the query; Org is its originator.
	Key core.QueryKey
	Org core.DeviceID
	// Pos and D are the query's spatial predicate (originator position at
	// issue time and distance of interest), kept so ground truth can be
	// recomputed.
	Pos tuple.Point
	D   float64
	// Issued is the simulated issue time.
	Issued float64
	// Done reports whether the query completed (BF: the quorum of results
	// arrived; DF: the originator exhausted its neighbours).
	Done bool
	// ResponseTime is the paper's §5.2.3 metric, valid when Done.
	ResponseTime float64
	// Results counts result messages the originator received (BF).
	Results int
	// Acc holds the Formula 1 sums over the devices that processed the
	// query with in-range data.
	Acc core.DRRAccumulator
	// Messages counts hop-level protocol transmissions attributed to this
	// query (query forwards, acks, and result hops).
	Messages int
	// ResultTuples is the final merged skyline size at the originator.
	ResultTuples int
	// Skyline is the final merged result (only with Params.KeepSkylines).
	Skyline []tuple.Tuple
	// Partial marks a query finalized by Params.QueryDeadline before its
	// normal completion condition.
	Partial bool
	// Retries counts originator re-issues under the retry policy.
	Retries int
	// Recall and Precision compare the query's result against the
	// centralized constrained skyline of the union of all device relations;
	// TruthTuples is that oracle's size. Set only with Params.Recall.
	Recall      float64
	Precision   float64
	TruthTuples int
}

// DRR is the query's data reduction rate.
func (m *QueryMetrics) DRR() float64 { return m.Acc.DRR() }

// Outcome aggregates one scenario run.
type Outcome struct {
	// Queries lists per-query metrics in issue order.
	Queries []*QueryMetrics
	// Radio and Aodv expose substrate counters (routing overhead etc.).
	Radio radio.Counters
	Aodv  aodv.Counters
	// SkippedIssues counts issue opportunities dropped because the device
	// still had a query in progress (§5.2.1).
	SkippedIssues int
	// Events is the number of simulation events executed.
	Events uint64
	// Transfers counts relation hand-offs under Params.Redistribute.
	Transfers int
	// DeviceTuples holds every device's local relation (as of simulation
	// end, after any redistribution), for verification; the union equals
	// the global relation regardless of hand-offs.
	DeviceTuples [][]tuple.Tuple
	// Spans holds per-query timelines when Params.Spans was set.
	Spans []*telemetry.Span
	// Faults holds the injector's drop/duplication tallies when a fault
	// plan was attached.
	Faults faults.Stats
	// RecallComputed reports that Params.Recall populated the per-query
	// Recall/Precision fields.
	RecallComputed bool
}

// PooledDRR evaluates Formula 1 over all queries' pooled sums.
func (o *Outcome) PooledDRR() float64 {
	var acc core.DRRAccumulator
	for _, q := range o.Queries {
		acc.Add(q.Acc)
	}
	return acc.DRR()
}

// MeanResponseTime averages response times over completed queries; ok is
// false when none completed.
func (o *Outcome) MeanResponseTime() (mean float64, ok bool) {
	n := 0
	for _, q := range o.Queries {
		if q.Done {
			mean += q.ResponseTime
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return mean / float64(n), true
}

// MeanMessages averages per-query message counts.
func (o *Outcome) MeanMessages() float64 {
	if len(o.Queries) == 0 {
		return 0
	}
	total := 0
	for _, q := range o.Queries {
		total += q.Messages
	}
	return float64(total) / float64(len(o.Queries))
}

// CompletionRate is the fraction of issued queries that completed.
func (o *Outcome) CompletionRate() float64 {
	if len(o.Queries) == 0 {
		return 0
	}
	done := 0
	for _, q := range o.Queries {
		if q.Done {
			done++
		}
	}
	return float64(done) / float64(len(o.Queries))
}

// MeanRecall averages per-query recall against the centralized oracle; ok
// is false when recall was not computed or no queries were issued.
func (o *Outcome) MeanRecall() (mean float64, ok bool) {
	if !o.RecallComputed || len(o.Queries) == 0 {
		return 0, false
	}
	for _, q := range o.Queries {
		mean += q.Recall
	}
	return mean / float64(len(o.Queries)), true
}

// MeanPrecision averages per-query precision against the centralized
// oracle; ok is false when recall accounting was off or no queries ran.
func (o *Outcome) MeanPrecision() (mean float64, ok bool) {
	if !o.RecallComputed || len(o.Queries) == 0 {
		return 0, false
	}
	for _, q := range o.Queries {
		mean += q.Precision
	}
	return mean / float64(len(o.Queries)), true
}

// scenario wires the substrates together for one run.
type scenario struct {
	p   Params
	eng *sim.Engine
	med *radio.Medium
	net *aodv.Network
	// nodes is a value slice sized once at build: device bookkeeping lives
	// in one contiguous allocation indexed by NodeID instead of m separate
	// heap objects, which is what lets 30k-device scenarios fit in cache
	// and the GC skip per-node tracing.
	nodes   []node
	metrics map[core.QueryKey]*QueryMetrics
	order   []core.QueryKey
	skipped int
	redist  redistributionState
	inj     *faults.Injector

	traceEnc *json.Encoder
	met      simMetrics
	spans    *telemetry.SpanLog
}

// spanKey converts a query key to the telemetry span key.
func spanKey(k core.QueryKey) telemetry.SpanKey {
	return telemetry.SpanKey{Org: int32(k.Org), Cnt: int32(k.Cnt)}
}

// Run executes one scenario and returns its outcome.
func Run(p Params) *Outcome {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if p.Recall {
		p.KeepSkylines = true
	}
	sc := build(p)
	sc.eng.Run(p.SimTime)

	out := &Outcome{
		Radio:         sc.med.Counters,
		Aodv:          sc.net.Counters,
		SkippedIssues: sc.skipped,
		Events:        sc.eng.Executed(),
		Transfers:     sc.redist.transfers,
	}
	for _, k := range sc.order {
		out.Queries = append(out.Queries, sc.metrics[k])
	}
	for i := range sc.nodes {
		out.DeviceTuples = append(out.DeviceTuples, sc.nodes[i].tuples)
	}
	out.Spans = sc.spans.Spans()
	if sc.inj != nil {
		out.Faults = sc.inj.Stats
	}
	if p.Recall {
		sc.computeRecall(out)
	}
	return out
}

// build constructs the devices, network, and query schedule.
func build(p Params) *scenario {
	eng := sim.NewEngine(p.Seed)
	// Declare the mobility speed bound to the radio's spatial grid unless
	// the caller pinned one: static scenarios build the grid once, mobile
	// ones rebuild only when accumulated drift could change a cell. Neighbor
	// sets are exact in every mode, so this never perturbs a run.
	rcfg := p.Radio
	if rcfg.MaxSpeed == 0 {
		if p.Static {
			rcfg.MaxSpeed = -1
		} else {
			rcfg.MaxSpeed = p.Mobility.SpeedMax
		}
	}
	med := radio.New(eng, rcfg)
	net := aodv.New(eng, med, p.Aodv)
	sc := &scenario{
		p:       p,
		eng:     eng,
		med:     med,
		net:     net,
		metrics: make(map[core.QueryKey]*QueryMetrics),
		spans:   p.Spans,
	}
	sc.initTrace(p.Trace)
	// Fault schedule: the injector draws from its own RNG and every hook is
	// gated on its presence, so fault-free runs stay byte-identical.
	if p.Faults != nil && !p.Faults.Empty() {
		inj := faults.NewInjector(p.Faults, p.Seed)
		med.SetFaults(inj)
		sc.inj = inj
		inj.Schedule(eng, func(ev faults.Event) {
			sc.trace(TraceEvent{Event: "fault", Fault: ev.Kind,
				Device: core.DeviceID(ev.Node)})
		})
	}
	// Live telemetry: attach every layer's surface to the shared registry.
	// Instrumentation only reads simulation state — it never draws from the
	// RNG or alters message sizes — so instrumented runs stay bit-identical.
	var devMet core.Metrics
	if p.Metrics != nil {
		med.SetMetrics(radio.NewMetrics(p.Metrics))
		net.SetMetrics(aodv.NewMetrics(p.Metrics))
		devMet = core.NewMetrics(p.Metrics, p.Mode)
		sc.met = newSimMetrics(p.Metrics)
	}
	// Hop-level message attribution: query hand-offs and result returns
	// count toward Figure 12's metric; the ack/nack control chatter of this
	// implementation's DF failure handling does not (the paper's protocol
	// has no acks).
	net.ForwardHook = func(payload radio.Payload) {
		if _, isAck := payload.(*dfAckMsg); isAck {
			return
		}
		if k, ok := queryKeyOf(payload); ok {
			if m := sc.metrics[k]; m != nil {
				m.Messages++
			}
			sc.met.QueryMessages.Inc()
			sc.met.QueryBytes.Add(int64(payload.SizeBytes()))
		}
	}

	// Dataset and partitioning.
	dcfg := gen.DefaultConfig(p.GlobalN, p.Dim, p.Dist, p.Seed)
	dcfg.Space = p.Space
	data := gen.Generate(dcfg)
	parts := gen.OverlapPartition(data, p.Grid, p.Space, p.Overlap, p.Seed+1)
	schema := dcfg.Schema()

	var field *mobility.Field
	if p.CompactMobility && !p.Static {
		field = mobility.NewField(p.Mobility)
	}
	rng := eng.RNG()
	sc.nodes = make([]node, len(parts))
	for i, part := range parts {
		dev := core.NewDevice(core.DeviceID(i), part, schema, p.Mode, p.Dynamic)
		dev.OverFactor = p.OverFactor
		dev.NumFilters = p.NumFilters
		dev.Met = devMet

		row, col := i/p.Grid, i%p.Grid
		var start tuple.Point
		if p.StartAtCells {
			start = gen.CellRect(row, col, p.Grid, p.Space).Center()
		} else {
			start = tuple.Point{X: rng.Float64() * p.Space, Y: rng.Float64() * p.Space}
		}
		var mob mobility.Model
		switch {
		case p.Static:
			mob = mobility.Static(start)
		case field != nil:
			field.Add(start, p.Seed+int64(i)*7919)
			mob = field.Model(i)
		default:
			mob = mobility.NewWaypointAt(p.Mobility, start, p.Seed+int64(i)*7919)
		}

		n := &sc.nodes[i]
		n.sc = sc
		n.dev = dev
		n.tuples = part
		n.id = net.AddNode(mob, n.onData, n.onLocal)
	}

	if p.Redistribute {
		sc.scheduleRedistribution()
	}

	// Query schedule: each device issues Min..Max queries at random times
	// in the first 90% of the simulation, skipping issues while a query is
	// in progress. Params.Originators caps how many devices draw schedules
	// at all — the scale sweeps' way of measuring a handful of queries over
	// a 30k-device substrate.
	issuers := len(sc.nodes)
	if p.Originators > 0 && p.Originators < issuers {
		issuers = p.Originators
	}
	for ni := 0; ni < issuers; ni++ {
		n := &sc.nodes[ni]
		k := p.MinQueries
		if p.MaxQueries > p.MinQueries {
			k += rng.Intn(p.MaxQueries - p.MinQueries + 1)
		}
		times := make([]float64, k)
		for i := range times {
			times[i] = rng.Float64() * p.SimTime * 0.9
		}
		sort.Float64s(times)
		for _, t := range times {
			eng.At(t, n.maybeIssue)
		}
	}
	return sc
}

// newMetrics registers a fresh query.
func (sc *scenario) newMetrics(q core.Query) *QueryMetrics {
	m := &QueryMetrics{Key: q.Key(), Org: q.Org, Pos: q.Pos, D: q.D, Issued: sc.eng.Now()}
	sc.metrics[q.Key()] = m
	sc.order = append(sc.order, q.Key())
	return m
}

// observe records one non-originator device's processing outcome for
// Formula 1. Only devices that actually held in-range data participate:
// devices rejected by the MBR pre-check, and devices whose constrained
// local skyline was empty, contribute nothing to the reduction sums —
// counting their shipped filter as pure cost would push the rate negative
// for small query distances, which is not what the paper's Figures 8-9
// measure.
func (sc *scenario) observe(key core.QueryKey, res processOutcome) {
	m := sc.metrics[key]
	if m == nil || res.skippedMBR || res.unreduced == 0 {
		return
	}
	m.Acc.Reduced += res.reducedLen
	m.Acc.Unreduced += res.unreduced
	m.Acc.Devices++
	m.Acc.Filters += res.filters
}

// countQueryMessages attributes query-forwarding messages to a query; a
// breadth-first broadcast counts once per addressed receiver (every
// reception consumes air time and receiver energy), matching the paper's
// Figure 12 semantics where flooding's cost grows with network density.
// sizeBytes is the per-transmission payload size feeding the bytes ledger.
func (sc *scenario) countQueryMessages(key core.QueryKey, n, sizeBytes int) {
	if m := sc.metrics[key]; m != nil {
		m.Messages += n
	}
	sc.met.QueryMessages.Add(int64(n))
	sc.met.QueryBytes.Add(int64(n) * int64(sizeBytes))
}

// quorum computes the BF completion threshold: the paper's 80% of the other
// devices.
func (sc *scenario) quorum() int {
	others := len(sc.nodes) - 1
	if others <= 0 {
		return 0
	}
	return int(math.Ceil(sc.p.BFQuorum * float64(others)))
}

// processOutcome is the slice of localsky.Result the metrics need.
type processOutcome struct {
	reducedLen int
	unreduced  int
	filters    int
	skippedMBR bool
}

// computeRecall runs the centralized oracle after the simulation: for every
// query, the constrained skyline of the (deduplicated) union of all device
// relations is the ground truth, and the query's merged result is scored
// against it. A distributed result tuple matches a truth tuple when they
// describe the same site with identical attributes; recall is the matched
// fraction of the truth and precision the matched fraction of the result.
// Partitioning overlap duplicates tuples across devices, so the union is
// deduplicated by site before the oracle runs.
func (sc *scenario) computeRecall(out *Outcome) {
	type site [2]float64
	seen := make(map[site]bool)
	var union []tuple.Tuple
	for _, part := range out.DeviceTuples {
		for _, t := range part {
			s := site{t.X, t.Y}
			if !seen[s] {
				seen[s] = true
				union = append(union, t)
			}
		}
	}
	for _, qm := range out.Queries {
		truth := skyline.Constrained(union, qm.Pos, qm.D)
		qm.TruthTuples = len(truth)
		bysite := make(map[site]tuple.Tuple, len(truth))
		for _, t := range truth {
			bysite[site{t.X, t.Y}] = t
		}
		matched := 0
		for _, t := range qm.Skyline {
			if u, ok := bysite[site{t.X, t.Y}]; ok && u.Equal(t) {
				matched++
			}
		}
		if len(truth) == 0 {
			qm.Recall = 1
		} else {
			qm.Recall = float64(matched) / float64(len(truth))
		}
		if len(qm.Skyline) == 0 {
			qm.Precision = 1
		} else {
			qm.Precision = float64(matched) / float64(len(qm.Skyline))
		}
		sc.met.Recall.Observe(qm.Recall)
	}
	// Annotate spans so per-query timelines carry their oracle score.
	for _, sp := range out.Spans {
		k := core.QueryKey{Org: core.DeviceID(sp.Org), Cnt: uint8(sp.Cnt)}
		if qm := sc.metrics[k]; qm != nil {
			r := qm.Recall
			sp.Recall = &r
		}
	}
	out.RecallComputed = true
}
