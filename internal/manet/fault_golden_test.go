package manet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"manetskyline/internal/faults"
)

// faultGoldenParams is the pinned crash+partition replay scenario: a static
// multi-hop 3×3 grid where the fault plan crashes two devices and splits the
// network in half mid-run, with the retry/deadline policy and the recall
// oracle enabled.
func faultGoldenParams() Params {
	p := DefaultParams()
	p.Grid = 3
	p.GlobalN = 900
	p.SimTime = 1800
	p.MinQueries, p.MaxQueries = 1, 1
	p.Static = true
	p.Radio.Range = 600 // multi-hop: partitions and crashes actually bite
	p.QueryRetries = 2
	p.RetryBackoff = 10
	p.RetryBackoffMax = 60
	p.QueryDeadline = 600
	p.Recall = true
	p.Seed = 11
	plan, err := faults.Named("crash+partition", p.NumDevices(), p.SimTime)
	if err != nil {
		panic(err)
	}
	p.Faults = plan
	return p
}

// faultSummary is the pinned per-run recall accounting.
type faultSummary struct {
	Queries []faultQuerySummary `json:"queries"`
	Faults  faults.Stats        `json:"faults"`
}

type faultQuerySummary struct {
	Org     int     `json:"org"`
	Cnt     int     `json:"cnt"`
	Done    bool    `json:"done"`
	Partial bool    `json:"partial,omitempty"`
	Retries int     `json:"retries,omitempty"`
	Tuples  int     `json:"tuples"`
	Truth   int     `json:"truth"`
	Recall  float64 `json:"recall"`
}

// TestFaultGoldenCrashPartition pins a faulty run end to end: the JSONL
// trace (protocol events interleaved with fault boundary events) and the
// recall summary must replay byte-for-byte. Regenerate with:
// go test ./internal/manet -run FaultGolden -update
func TestFaultGoldenCrashPartition(t *testing.T) {
	var buf bytes.Buffer
	p := faultGoldenParams()
	p.Trace = &buf
	out := Run(p)

	sum := faultSummary{Faults: out.Faults}
	for _, q := range out.Queries {
		sum.Queries = append(sum.Queries, faultQuerySummary{
			Org: int(q.Org), Cnt: int(q.Key.Cnt), Done: q.Done,
			Partial: q.Partial, Retries: q.Retries,
			Tuples: q.ResultTuples, Truth: q.TruthTuples, Recall: q.Recall,
		})
	}
	var sumBuf bytes.Buffer
	enc := json.NewEncoder(&sumBuf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		t.Fatal(err)
	}

	tracePath := filepath.Join("testdata", "fault_crash_partition.trace.jsonl")
	sumPath := filepath.Join("testdata", "fault_crash_partition.summary.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(sumPath, sumBuf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantTrace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), wantTrace) {
		t.Fatalf("fault trace diverged from golden %s\ngot %d bytes, want %d",
			tracePath, buf.Len(), len(wantTrace))
	}
	wantSum, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(sumBuf.Bytes(), wantSum) {
		t.Fatalf("fault summary diverged from golden %s\ngot:\n%s\nwant:\n%s",
			sumPath, sumBuf.String(), wantSum)
	}

	// The plan must actually have perturbed the run, or the golden pins
	// nothing interesting.
	if out.Faults.OutageDrops == 0 && out.Faults.PartitionDrops == 0 {
		t.Errorf("crash+partition plan dropped nothing: %+v", out.Faults)
	}
	hasFaultEvent := false
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	for dec.More() {
		var ev TraceEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		if ev.Event == "fault" {
			hasFaultEvent = true
		}
	}
	if !hasFaultEvent {
		t.Errorf("trace contains no fault boundary events")
	}
}

// TestFaultGoldenDeterministic re-runs the pinned scenario and demands
// identical traces — the schedule and the injector RNG must be fully
// reproducible regardless of host or worker.
func TestFaultGoldenDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	pa := faultGoldenParams()
	pa.Trace = &a
	Run(pa)
	pb := faultGoldenParams()
	pb.Trace = &b
	Run(pb)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("faulty runs diverged: %d vs %d trace bytes", a.Len(), b.Len())
	}
}

// TestFaultFreePlanIsByteIdentical pins the tentpole's no-perturbation
// contract directly: attaching a nil or empty plan leaves the trace
// byte-identical to a run with no fault wiring at all.
func TestFaultFreePlanIsByteIdentical(t *testing.T) {
	var plain, empty bytes.Buffer
	p1 := goldenParams()
	p1.Trace = &plain
	Run(p1)

	p2 := goldenParams()
	p2.Faults = &faults.Plan{Name: "empty"}
	p2.Trace = &empty
	Run(p2)

	if !bytes.Equal(plain.Bytes(), empty.Bytes()) {
		t.Fatalf("empty fault plan perturbed the run: %d vs %d trace bytes",
			plain.Len(), empty.Len())
	}
}

// TestRecallFloorDF is the CI recall gate: on the pinned 5%-loss scenario,
// depth-first forwarding with the retry policy must keep mean recall at or
// above 0.9.
func TestRecallFloorDF(t *testing.T) {
	p := DefaultParams()
	p.Grid = 3
	p.GlobalN = 3000
	p.Strategy = DepthFirst
	p.SimTime = 3600
	p.MinQueries, p.MaxQueries = 1, 1
	p.Static = true
	p.Radio.Range = 2000
	p.Radio.Loss = 0.05
	p.QueryRetries = 3
	p.RetryBackoff = 10
	p.RetryBackoffMax = 60
	p.Recall = true
	p.Seed = 21
	out := Run(p)
	r, ok := out.MeanRecall()
	if !ok {
		t.Fatalf("recall not computed")
	}
	t.Logf("DF at 5%% loss: mean recall %.3f over %d queries (completion %.0f%%)",
		r, len(out.Queries), out.CompletionRate()*100)
	if r < 0.9 {
		t.Errorf("mean recall %.3f below the 0.9 floor", r)
	}
}
