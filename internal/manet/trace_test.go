package manet

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTraceEmitsCoherentEvents(t *testing.T) {
	var buf bytes.Buffer
	p := smallParams(BreadthFirst)
	p.Trace = &buf
	out := Run(p)

	var events []TraceEvent
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var ev TraceEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("trace is not valid JSONL: %v", err)
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatalf("no trace events emitted")
	}

	// Times are non-decreasing; every event type is known; issues match the
	// outcome's query count.
	issues, completes := 0, 0
	prev := -1.0
	for i, ev := range events {
		if ev.T < prev {
			t.Fatalf("event %d goes back in time: %v after %v", i, ev.T, prev)
		}
		prev = ev.T
		switch ev.Event {
		case "issue":
			issues++
		case "complete":
			completes++
		case "process", "result", "transfer":
		default:
			t.Fatalf("unknown event type %q", ev.Event)
		}
	}
	if issues != len(out.Queries) {
		t.Errorf("trace has %d issues, outcome has %d queries", issues, len(out.Queries))
	}
	done := 0
	for _, q := range out.Queries {
		if q.Done {
			done++
		}
	}
	if completes != done {
		t.Errorf("trace has %d completes, outcome has %d done", completes, done)
	}
	// Every complete must follow its query's issue.
	seen := map[[2]int]bool{}
	for _, ev := range events {
		k := [2]int{int(ev.Org), int(ev.Cnt)}
		switch ev.Event {
		case "issue":
			seen[k] = true
		case "complete":
			if !seen[k] {
				t.Fatalf("complete before issue for %v", k)
			}
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	p := smallParams(DepthFirst)
	out := Run(p) // must not panic without a writer
	if len(out.Queries) == 0 {
		t.Fatalf("sanity: queries should run")
	}
}
