package manet

import (
	"bytes"
	"encoding/json"
	"testing"

	"manetskyline/internal/core"
)

func TestTraceEmitsCoherentEvents(t *testing.T) {
	var buf bytes.Buffer
	p := smallParams(BreadthFirst)
	p.Trace = &buf
	out := Run(p)

	var events []TraceEvent
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var ev TraceEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("trace is not valid JSONL: %v", err)
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatalf("no trace events emitted")
	}

	// Times are non-decreasing; every event type is known; issues match the
	// outcome's query count.
	issues, completes := 0, 0
	prev := -1.0
	for i, ev := range events {
		if ev.T < prev {
			t.Fatalf("event %d goes back in time: %v after %v", i, ev.T, prev)
		}
		prev = ev.T
		switch ev.Event {
		case "issue":
			issues++
		case "complete":
			completes++
		case "process", "filter-update", "result", "transfer":
		default:
			t.Fatalf("unknown event type %q", ev.Event)
		}
	}
	if issues != len(out.Queries) {
		t.Errorf("trace has %d issues, outcome has %d queries", issues, len(out.Queries))
	}
	done := 0
	for _, q := range out.Queries {
		if q.Done {
			done++
		}
	}
	if completes != done {
		t.Errorf("trace has %d completes, outcome has %d done", completes, done)
	}
	// Every complete must follow its query's issue.
	seen := map[[2]int]bool{}
	for _, ev := range events {
		k := [2]int{int(ev.Org), int(ev.Cnt)}
		switch ev.Event {
		case "issue":
			seen[k] = true
		case "complete":
			if !seen[k] {
				t.Fatalf("complete before issue for %v", k)
			}
		}
	}
}

// TestTraceEventKeepsZeroValues pins the fix for a real bug: Org and Cnt
// carried omitempty, so events for queries originated by device 0 — and any
// query whose one-byte counter wrapped back to 0 — serialized without their
// identifying fields and could not be correlated. Both must always be
// emitted; the optional transfer destination stays omittable via a pointer
// so a hand-off TO device 0 still serializes.
func TestTraceEventKeepsZeroValues(t *testing.T) {
	ev := TraceEvent{Event: "process", Device: 0, Org: 0, Cnt: 0}
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"device":0`, `"org":0`, `"cnt":0`} {
		if !bytes.Contains(b, []byte(field)) {
			t.Errorf("marshalled event %s is missing %s", b, field)
		}
	}
	if bytes.Contains(b, []byte(`"to"`)) {
		t.Errorf("nil transfer destination should be omitted: %s", b)
	}

	to := core.DeviceID(0)
	ev = TraceEvent{Event: "transfer", Device: 3, To: &to, Tuples: 7}
	if b, err = json.Marshal(ev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"to":0`)) {
		t.Errorf("transfer to device 0 lost its destination: %s", b)
	}

	// Round-trip: zero identifiers survive decode.
	var back TraceEvent
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.To == nil || *back.To != 0 {
		t.Errorf("round-trip lost To: %+v", back)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	p := smallParams(DepthFirst)
	out := Run(p) // must not panic without a writer
	if len(out.Queries) == 0 {
		t.Fatalf("sanity: queries should run")
	}
}
