package manet

import (
	"testing"

	"manetskyline/internal/skyline"
	"manetskyline/internal/tuple"
)

// collectUnion gathers all tuples across devices, deduplicated by site.
func collectUnion(out *Outcome) []tuple.Tuple {
	seen := map[[2]float64]bool{}
	var all []tuple.Tuple
	for _, ts := range out.DeviceTuples {
		for _, t := range ts {
			k := [2]float64{t.X, t.Y}
			if !seen[k] {
				seen[k] = true
				all = append(all, t)
			}
		}
	}
	return all
}

func TestRedistributionPreservesGlobalRelation(t *testing.T) {
	base := DefaultParams()
	base.Grid = 4
	base.GlobalN = 6000
	base.SimTime = 3600
	base.MinQueries, base.MaxQueries = 1, 1
	base.Seed = 11

	off := Run(base)
	on := base
	on.Redistribute = true
	on.RedistributePeriod = 300
	outOn := Run(on)

	t.Logf("transfers performed: %d", outOn.Transfers)
	if outOn.Transfers == 0 {
		t.Skip("no hand-offs triggered at this seed; invariant vacuous")
	}
	a, b := collectUnion(off), collectUnion(outOn)
	if len(a) != len(b) {
		t.Fatalf("redistribution changed the global relation: %d vs %d sites", len(a), len(b))
	}
	if !skyline.SetEqual(skyline.SFS(a), skyline.SFS(b)) {
		t.Fatalf("redistribution changed the global skyline")
	}
}

func TestRedistributionStaticNoOp(t *testing.T) {
	// Motionless devices start at their data's cell centres: nobody is ever
	// markedly closer to another's data, so no transfers happen.
	p := DefaultParams()
	p.Grid = 3
	p.GlobalN = 2000
	p.SimTime = 3600
	p.MinQueries, p.MaxQueries = 1, 1
	p.Static = true
	p.Redistribute = true
	p.RedistributePeriod = 200
	out := Run(p)
	if out.Transfers != 0 {
		t.Errorf("static devices should not hand off data, got %d transfers", out.Transfers)
	}
}

func TestRedistributionMobileRunsAndCompletes(t *testing.T) {
	p := DefaultParams()
	p.Grid = 5
	p.GlobalN = 10000
	p.SimTime = 7200
	p.MinQueries, p.MaxQueries = 1, 2
	p.Redistribute = true
	p.Seed = 23
	out := Run(p)
	if out.CompletionRate() == 0 {
		t.Errorf("no queries completed with redistribution enabled")
	}
	t.Logf("with redistribution: %d transfers, completion %.0f%%, DRR %.3f",
		out.Transfers, out.CompletionRate()*100, out.PooledDRR())
}
