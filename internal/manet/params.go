// Package manet assembles the full simulated system of §5.2: mobile devices
// holding grid-partitioned local relations in hybrid storage, moving under
// random waypoint, communicating over a unit-disk radio with AODV routing,
// and processing distributed constrained skyline queries with either
// breadth-first or depth-first forwarding. Local processing consumes
// simulated time according to the handheld cost model, reproducing the
// paper's methodology of adding estimated device costs to simulated
// communication delays (§5.2.3).
package manet

import (
	"fmt"
	"io"

	"manetskyline/internal/aodv"
	"manetskyline/internal/core"
	"manetskyline/internal/device"
	"manetskyline/internal/faults"
	"manetskyline/internal/gen"
	"manetskyline/internal/mobility"
	"manetskyline/internal/radio"
	"manetskyline/internal/telemetry"
)

// Forwarding selects the query dissemination strategy of §5.2.1.
type Forwarding int

const (
	// BreadthFirst floods the query: the originator broadcasts to its
	// neighbours; every device processes, unicasts its result back to the
	// originator (multi-hop via AODV), and rebroadcasts.
	BreadthFirst Forwarding = iota
	// DepthFirst serializes the query: each device forwards to one
	// neighbour at a time; results merge along the reverse path.
	DepthFirst
	// SamplingFilter is the sampling-based multi-round strategy beyond the
	// paper (Zhang & Zhang, arXiv:1611.00423): the originator floods a
	// sample request, every device returns a small seeded sample of its
	// constrained local skyline, the originator selects a k-tuple filter
	// set by greedy dominating-region coverage and floods it, and devices
	// return only the tuples that survive the filter set (minus what they
	// already sampled). Fault-free, the merged result is the exact
	// constrained skyline; the collect phase ships far fewer tuples than a
	// BF flood.
	SamplingFilter
)

// String names the strategy the way the paper's figures do ("SF" follows
// the sampling-filter literature; the paper's figures use SF for "static
// filter", which this codebase calls dynamic=false).
func (f Forwarding) String() string {
	switch f {
	case BreadthFirst:
		return "BF"
	case DepthFirst:
		return "DF"
	case SamplingFilter:
		return "SF"
	default:
		return fmt.Sprintf("Forwarding(%d)", int(f))
	}
}

// Params configures one simulated scenario.
type Params struct {
	// Grid is g: the spatial domain is partitioned into g×g cells, one
	// device per cell (m = g²).
	Grid int
	// GlobalN is the cardinality of the global relation.
	GlobalN int
	// Dim is the number of non-spatial attributes.
	Dim int
	// Dist is the attribute distribution.
	Dist gen.Distribution
	// Space is the side of the square spatial domain (1000 in the paper).
	Space float64
	// Overlap optionally duplicates a fraction of tuples into a
	// neighbouring cell, exercising duplicate elimination.
	Overlap float64

	// QueryDist is the distance of interest d (100/250/500 in the paper).
	QueryDist float64
	// Mode is the dominating-region estimation; the paper's simulations
	// use under-estimation (§5.2.2-II).
	Mode core.Estimation
	// OverFactor configures Over estimation (0 ⇒ default).
	OverFactor float64
	// Dynamic enables hop-by-hop filter updates (the paper's simulations
	// always update "if possible").
	Dynamic bool
	// NumFilters attaches k filtering tuples per query (§7 multi-filter
	// extension); 0 and 1 mean the paper's single filter.
	NumFilters int
	// Strategy selects BF, DF, or SF forwarding.
	Strategy Forwarding

	// FilterK is the SF filter-set size: how many high-pruning-power tuples
	// the originator selects from the collected sample and broadcasts in
	// the collect phase (0 ⇒ 2). Only the SamplingFilter strategy reads
	// it. The default is deliberately small: every extra filter rides the
	// full flood, costing 8·dim bytes per reception, while its marginal
	// pruning gain fades fast — on dense networks large k loses more on
	// the flood than it saves on survivors.
	FilterK int
	// SampleK is how many local-skyline tuples each device volunteers
	// during the SF sampling round (0 ⇒ 2).
	SampleK int
	// SampleTTL is the hop budget of the SF sampling broadcast (0 ⇒ 1):
	// how far the sample request travels before the filter flood takes
	// over query dissemination. One hop samples the originator's
	// neighbourhood, which is enough to pick filters from while keeping
	// the sampling round off the flood budget.
	SampleTTL int
	// SampleWait is how long (simulated seconds) the SF originator collects
	// samples before selecting the filter set and flooding it (0 ⇒ 30).
	SampleWait float64

	// SimTime is the simulated duration in seconds (2 h in the paper).
	SimTime float64
	// MinQueries and MaxQueries bound how many queries each device issues
	// at random times (1-5 in the paper).
	MinQueries, MaxQueries int
	// BFQuorum is the fraction of other devices whose results define BF
	// response time (0.8 in the paper).
	BFQuorum float64
	// AckTimeout is how long a DF device waits for a neighbour to
	// acknowledge a forwarded query before trying the next neighbour.
	AckTimeout float64
	// SubtreeTimeout is how long a DF device waits for an accepted child's
	// subtree result before giving up on it.
	SubtreeTimeout float64

	// QueryRetries enables graceful degradation under loss: an originator
	// whose query has not completed re-issues it up to this many times (BF
	// re-floods the query; DF restarts the traversal over the untried
	// neighbourhood), with capped exponential backoff. 0 disables retries —
	// the paper's fire-and-forget behaviour.
	QueryRetries int
	// RetryBackoff is the delay before the first re-issue; each further
	// attempt doubles it up to RetryBackoffMax.
	RetryBackoff float64
	// RetryBackoffMax caps the exponential backoff (0 ⇒ uncapped).
	RetryBackoffMax float64
	// QueryDeadline, when positive, finalizes any still-open query that
	// many simulated seconds after issue: the originator keeps whatever it
	// merged so far and the query is flagged Partial. 0 keeps queries open
	// until their normal completion condition (or simulation end).
	QueryDeadline float64

	// Faults attaches a scripted fault schedule (internal/faults) to the
	// run: timed link/region loss, node outage churn, partitions, and frame
	// duplication/reordering, all injected deterministically. nil (or an
	// empty plan) leaves the run byte-identical to a fault-free one.
	Faults *faults.Plan
	// Recall enables the centralized-oracle accounting layer: after the
	// run, every query's result is compared against the constrained skyline
	// of the union of all device relations, and per-query recall/precision
	// land in QueryMetrics, Outcome aggregates, and telemetry spans.
	// Implies KeepSkylines.
	Recall bool

	// Radio, Mobility, Aodv, and Cost configure the substrates.
	Radio    radio.Config
	Mobility mobility.Config
	Aodv     aodv.Config
	Cost     device.CostModel

	// Redistribute enables the paper's §7 future-work extension: devices
	// that drift away from the region their data describes periodically
	// hand their relation to a device currently closer to that region, so
	// spatially constrained queries keep finding the relevant data within
	// few network hops despite mobility.
	Redistribute bool
	// RedistributePeriod is the hand-off check interval in seconds
	// (0 ⇒ 600).
	RedistributePeriod float64

	// Originators, when positive, restricts query issuance to the first
	// Originators devices instead of all of them. Large-scale sweeps use
	// this to measure per-query cost at 30k+ devices without scheduling
	// 30k simultaneous floods; 0 (the default) keeps the paper's
	// every-device-issues behavior and the legacy RNG draw order.
	Originators int
	// CompactMobility swaps per-device Waypoint trajectories for the
	// struct-of-arrays mobility.Field backend (~88 B/node instead of
	// ~5 KB/node). Field trajectories are statistically equivalent but NOT
	// bit-compatible with Waypoint — leave this off where golden traces
	// apply.
	CompactMobility bool
	// FloodRoutes piggybacks reverse-route installation on BF query
	// floods: every device that hears the flood learns a route toward the
	// originator (the RREQ trick applied to application broadcasts), so
	// result returns skip AODV discovery. At 30k devices this is the
	// difference between one flood and one flood plus ~30k RREQ storms.
	// The flood frame grows by 8 bytes, so this is off by default to keep
	// golden traces byte-identical.
	FloodRoutes bool

	// StartAtCells starts each device at the centre of its data's grid
	// cell instead of a uniform random point.
	StartAtCells bool
	// Static disables movement entirely (devices stay at their starting
	// points); used by correctness tests.
	Static bool
	// KeepSkylines retains each query's final merged skyline in the
	// metrics, for verification.
	KeepSkylines bool

	// Trace, when non-nil, receives a JSONL event trace of the run
	// (see TraceEvent).
	Trace io.Writer

	// Metrics, when non-nil, receives live counters from every layer of
	// the stack (radio_*, aodv_*, core_*, manet_*). Instrumentation is
	// allocation-free and never disturbs the simulation's randomness, so
	// runs are bit-identical with and without it.
	Metrics *telemetry.Registry
	// Spans, when non-nil, collects per-query issue→process→result
	// timelines (see telemetry.SpanLog); Outcome.Spans exposes them.
	Spans *telemetry.SpanLog

	// Seed drives all randomness.
	Seed int64
}

// DefaultParams returns a scenario matching the paper's Tables 6 and 7 at a
// moderate scale: 5×5 devices, 50K tuples, 2 attributes, independent data,
// d = 250, under-estimated dynamic filtering, BF forwarding, 2 simulated
// hours.
func DefaultParams() Params {
	return Params{
		Grid:    5,
		GlobalN: 50000,
		Dim:     2,
		Dist:    gen.Independent,
		Space:   1000,

		QueryDist: 250,
		Mode:      core.Under,
		Dynamic:   true,
		Strategy:  BreadthFirst,

		SimTime:        7200,
		MinQueries:     1,
		MaxQueries:     5,
		BFQuorum:       0.8,
		AckTimeout:     5,
		SubtreeTimeout: 300,

		// Retry/deadline defaults are tuned but disabled (QueryRetries=0,
		// QueryDeadline=0) so default runs match the paper's protocol.
		RetryBackoff:    15,
		RetryBackoffMax: 120,

		Radio:    radio.DefaultConfig(),
		Mobility: mobility.DefaultConfig(),
		Aodv:     aodv.DefaultConfig(),
		Cost:     device.Handheld200MHz(),

		StartAtCells: true,
		Seed:         1,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Grid <= 0 {
		return fmt.Errorf("manet: non-positive grid %d", p.Grid)
	}
	if p.GlobalN < 0 || p.Dim <= 0 {
		return fmt.Errorf("manet: bad dataset shape n=%d dim=%d", p.GlobalN, p.Dim)
	}
	if p.Space <= 0 {
		return fmt.Errorf("manet: non-positive space %g", p.Space)
	}
	if p.SimTime <= 0 {
		return fmt.Errorf("manet: non-positive sim time %g", p.SimTime)
	}
	if p.MinQueries < 0 || p.MaxQueries < p.MinQueries {
		return fmt.Errorf("manet: bad query count range [%d,%d]", p.MinQueries, p.MaxQueries)
	}
	if p.BFQuorum <= 0 || p.BFQuorum > 1 {
		return fmt.Errorf("manet: BF quorum %g outside (0,1]", p.BFQuorum)
	}
	if p.AckTimeout <= 0 || p.SubtreeTimeout <= 0 {
		return fmt.Errorf("manet: non-positive DF timeouts")
	}
	if p.Strategy != BreadthFirst && p.Strategy != DepthFirst && p.Strategy != SamplingFilter {
		return fmt.Errorf("manet: unknown forwarding strategy %d", int(p.Strategy))
	}
	if p.FilterK < 0 || p.SampleK < 0 || p.SampleTTL < 0 || p.SampleWait < 0 {
		return fmt.Errorf("manet: negative SF tuning field")
	}
	if p.QueryRetries < 0 {
		return fmt.Errorf("manet: negative query retries %d", p.QueryRetries)
	}
	if p.QueryRetries > 0 && p.RetryBackoff <= 0 {
		return fmt.Errorf("manet: retries enabled with non-positive backoff %g", p.RetryBackoff)
	}
	if p.QueryDeadline < 0 {
		return fmt.Errorf("manet: negative query deadline %g", p.QueryDeadline)
	}
	if p.Originators < 0 || p.Originators > p.NumDevices() {
		return fmt.Errorf("manet: originators %d outside [0,%d]", p.Originators, p.NumDevices())
	}
	if err := p.Faults.Validate(p.NumDevices()); err != nil {
		return err
	}
	if err := p.Radio.Validate(); err != nil {
		return err
	}
	if err := p.Aodv.Validate(); err != nil {
		return err
	}
	if err := p.Cost.Validate(); err != nil {
		return err
	}
	if !p.Static {
		if err := p.Mobility.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// NumDevices returns m = Grid².
func (p Params) NumDevices() int { return p.Grid * p.Grid }

// filterK, sampleK, sampleTTL, and sampleWait return the SF knobs with
// their defaults applied.
func (p Params) filterK() int {
	if p.FilterK > 0 {
		return p.FilterK
	}
	return 2
}

func (p Params) sampleTTL() int {
	if p.SampleTTL > 0 {
		return p.SampleTTL
	}
	return 1
}

func (p Params) sampleK() int {
	if p.SampleK > 0 {
		return p.SampleK
	}
	return 2
}

func (p Params) sampleWait() float64 {
	if p.SampleWait > 0 {
		return p.SampleWait
	}
	return 30
}

// retryDelay is the capped exponential backoff before re-issue number
// attempt+1 (attempt is 0-based).
func (p Params) retryDelay(attempt int) float64 {
	d := p.RetryBackoff
	for i := 0; i < attempt && (p.RetryBackoffMax <= 0 || d < p.RetryBackoffMax); i++ {
		d *= 2
	}
	if p.RetryBackoffMax > 0 && d > p.RetryBackoffMax {
		d = p.RetryBackoffMax
	}
	return d
}
