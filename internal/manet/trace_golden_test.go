package manet

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"manetskyline/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenParams is a tiny deterministic scenario small enough that its whole
// trace fits comfortably in testdata: 4 static devices, one query each.
func goldenParams() Params {
	p := DefaultParams()
	p.Grid = 2
	p.GlobalN = 400
	p.SimTime = 600
	p.MinQueries, p.MaxQueries = 1, 1
	p.Static = true
	p.Radio.Range = 2000
	p.Seed = 7
	return p
}

// TestTelemetryDoesNotPerturbRun pins the instrumentation contract: a run
// with the full telemetry stack attached is bit-identical to one without.
// Metrics and spans only read simulation state — they never draw from the
// RNG, change event scheduling, or alter message sizes.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	plain := Run(goldenParams())

	p := goldenParams()
	p.Metrics = telemetry.NewRegistry()
	p.Spans = telemetry.NewSpanLog()
	instr := Run(p)

	if instr.Events != plain.Events {
		t.Fatalf("event count changed: %d with telemetry, %d without", instr.Events, plain.Events)
	}
	if len(instr.Queries) != len(plain.Queries) {
		t.Fatalf("query count changed: %d vs %d", len(instr.Queries), len(plain.Queries))
	}
	for i, q := range instr.Queries {
		wq := plain.Queries[i]
		if q.Key != wq.Key || q.Done != wq.Done || q.ResponseTime != wq.ResponseTime ||
			q.Messages != wq.Messages || q.ResultTuples != wq.ResultTuples {
			t.Errorf("query %d diverged: %+v vs %+v", i, q, wq)
		}
	}
	if instr.Radio != plain.Radio {
		t.Errorf("radio counters diverged: %+v vs %+v", instr.Radio, plain.Radio)
	}
	if instr.Aodv != plain.Aodv {
		t.Errorf("aodv counters diverged: %+v vs %+v", instr.Aodv, plain.Aodv)
	}
}

// TestTraceGolden pins the JSONL trace of a small deterministic run
// byte-for-byte, so any change to event ordering, timing, or encoding shows
// up in review. Regenerate with: go test ./internal/manet -run TraceGolden -update
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	p := goldenParams()
	p.Trace = &buf
	p.Spans = telemetry.NewSpanLog()
	out := Run(p)

	path := filepath.Join("testdata", "trace_small.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace diverged from golden %s\n(re-run with -update if the change is intended)\ngot %d bytes, want %d",
			path, buf.Len(), len(want))
	}

	// Span completeness against the same run: every issued query has a span,
	// its stages are in lifecycle order, and completed spans end properly.
	spans := out.Spans
	if len(spans) != len(out.Queries) {
		t.Fatalf("%d spans for %d queries", len(spans), len(out.Queries))
	}
	for _, sp := range spans {
		if len(sp.Stages) < 2 {
			t.Fatalf("span (%d,%d) has only %d stages", sp.Org, sp.Cnt, len(sp.Stages))
		}
		if sp.Stages[0].Kind != telemetry.StageIssue {
			t.Errorf("span (%d,%d) does not start with issue: %q", sp.Org, sp.Cnt, sp.Stages[0].Kind)
		}
		prev := -1.0
		for i, st := range sp.Stages {
			if st.T < prev {
				t.Errorf("span (%d,%d) stage %d goes back in time", sp.Org, sp.Cnt, i)
			}
			prev = st.T
		}
		if !sp.Done {
			continue
		}
		last := sp.Stages[len(sp.Stages)-1]
		if last.Kind != telemetry.StageComplete {
			t.Errorf("completed span (%d,%d) does not end with complete: %q", sp.Org, sp.Cnt, last.Kind)
		}
		if sp.Duration() < 0 {
			t.Errorf("span (%d,%d) has negative duration", sp.Org, sp.Cnt)
		}
		if sp.Devices == 0 {
			t.Errorf("completed span (%d,%d) reached no devices", sp.Org, sp.Cnt)
		}
	}

	// The trace and the spans narrate the same run: per-query event counts
	// match the span aggregates.
	type counts struct{ process, results, completes int }
	perKey := map[[2]int]*counts{}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	for dec.More() {
		var ev TraceEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		k := [2]int{int(ev.Org), int(ev.Cnt)}
		if perKey[k] == nil {
			perKey[k] = &counts{}
		}
		switch ev.Event {
		case "process":
			perKey[k].process++
		case "result":
			perKey[k].results++
		case "complete":
			perKey[k].completes++
		}
	}
	for _, sp := range spans {
		k := [2]int{int(sp.Org), int(sp.Cnt)}
		c := perKey[k]
		if c == nil {
			t.Fatalf("span (%d,%d) has no trace events", sp.Org, sp.Cnt)
		}
		if c.process != sp.Devices {
			t.Errorf("span (%d,%d): %d process events vs %d span devices", sp.Org, sp.Cnt, c.process, sp.Devices)
		}
		if c.results != sp.Results {
			t.Errorf("span (%d,%d): %d result events vs %d span results", sp.Org, sp.Cnt, c.results, sp.Results)
		}
	}
}
