package manet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
	"manetskyline/internal/skyline"
)

// allStrategies is the shared strategy table every cross-strategy sweep in
// this package iterates: the paper's BF and DF plus the sampling-filter
// extension. Adding a strategy here opts it into the equivalence sweep, the
// recall-oracle property, and the lossy/fading fault sweeps.
var allStrategies = []Forwarding{BreadthFirst, DepthFirst, SamplingFilter}

// sweepCombo is one protocol configuration of the equivalence sweep.
type sweepCombo struct {
	mode     core.Estimation
	strategy Forwarding
	dynamic  bool
}

// sweepCombos enumerates every estimation mode × forwarding strategy ×
// filter strategy (static vs dynamic filter) combination. SF strips the
// travelling filter entirely, so the dynamic-filter axis is meaningless for
// it and only the static variant is enumerated.
func sweepCombos() []sweepCombo {
	var out []sweepCombo
	for _, mode := range []core.Estimation{core.Exact, core.Over, core.Under} {
		for _, strategy := range allStrategies {
			for _, dynamic := range []bool{false, true} {
				if dynamic && strategy == SamplingFilter {
					continue
				}
				out = append(out, sweepCombo{mode, strategy, dynamic})
			}
		}
	}
	return out
}

// TestQuickDistributedEqualsCentralizedSweep extends the fixed-seed
// equivalence test into a randomized property: on arbitrary small static
// fully-connected scenarios, every completed query's distributed result must
// equal the centralized constrained skyline under every estimation mode,
// both forwarding strategies, and both filter strategies.
func TestQuickDistributedEqualsCentralizedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized scenario sweep is not short")
	}
	combos := sweepCombos()
	f := func(seed uint16, nRaw uint16, overlapRaw, distRaw uint8) bool {
		for _, c := range combos {
			p := DefaultParams()
			p.Grid = 3
			p.GlobalN = 300 + int(nRaw%1200)
			p.Dist = gen.Distribution(distRaw % 3)
			p.Overlap = float64(overlapRaw%5) / 10 // 0..0.4
			p.Mode = c.mode
			p.Dynamic = c.dynamic
			p.Strategy = c.strategy
			p.SimTime = 3600
			p.MinQueries, p.MaxQueries = 1, 1
			p.BFQuorum = 1.0
			p.Static = true
			p.KeepSkylines = true
			p.Radio.Range = 2000
			p.Seed = int64(seed) + 1
			out := Run(p)
			checked := 0
			for _, q := range out.Queries {
				if !q.Done {
					continue
				}
				checked++
				orgStart := gen.CellRect(int(q.Org)/p.Grid, int(q.Org)%p.Grid, p.Grid, p.Space).Center()
				want := groundTruth(out, q, orgStart, p.QueryDist)
				if !skyline.SetEqual(q.Skyline, want) {
					t.Logf("%v/%v/dynamic=%v seed=%d: query %v got %d tuples, centralized %d",
						c.strategy, c.mode, c.dynamic, seed, q.Key, len(q.Skyline), len(want))
					return false
				}
			}
			if checked == 0 {
				t.Logf("%v/%v/dynamic=%v seed=%d: no queries completed", c.strategy, c.mode, c.dynamic, seed)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 5, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRecallOracleSelfConsistent checks the recall accounting layer on
// loss-free runs: when nothing can be lost, the oracle must agree with the
// protocol — recall and precision are exactly 1 for completed queries —
// under every forwarding strategy.
func TestQuickRecallOracleSelfConsistent(t *testing.T) {
	for _, strategy := range allStrategies {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			f := func(seed uint16) bool {
				p := smallParams(strategy)
				p.BFQuorum = 1.0
				p.Recall = true
				p.Seed = int64(seed) + 1
				out := Run(p)
				if !out.RecallComputed {
					return false
				}
				for _, q := range out.Queries {
					if !q.Done || q.Partial {
						continue
					}
					if q.Recall != 1 || q.Precision != 1 {
						t.Logf("seed=%d query %v: recall=%v precision=%v (truth %d, result %d)",
							seed, q.Key, q.Recall, q.Precision, q.TruthTuples, q.ResultTuples)
						return false
					}
				}
				return true
			}
			cfg := &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(13))}
			if err := quick.Check(f, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}
