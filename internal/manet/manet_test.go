package manet

import (
	"testing"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
	"manetskyline/internal/skyline"
	"manetskyline/internal/tuple"
)

// smallParams returns a fast, fully connected, static scenario for
// correctness tests: 3×3 devices in a 1000² space with 2 km radio range so
// every device hears every other.
func smallParams(strategy Forwarding) Params {
	p := DefaultParams()
	p.Grid = 3
	p.GlobalN = 3000
	p.Strategy = strategy
	p.SimTime = 3600
	p.MinQueries, p.MaxQueries = 1, 2
	p.Static = true
	p.KeepSkylines = true
	p.Radio.Range = 2000
	p.Seed = 42
	return p
}

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := DefaultParams()
	bad.Grid = 0
	if bad.Validate() == nil {
		t.Errorf("zero grid should be invalid")
	}
	bad2 := DefaultParams()
	bad2.BFQuorum = 1.5
	if bad2.Validate() == nil {
		t.Errorf("quorum > 1 should be invalid")
	}
	bad3 := DefaultParams()
	bad3.MaxQueries = 0
	if bad3.Validate() == nil {
		t.Errorf("max < min queries should be invalid")
	}
}

func TestForwardingString(t *testing.T) {
	if BreadthFirst.String() != "BF" || DepthFirst.String() != "DF" || SamplingFilter.String() != "SF" {
		t.Errorf("unexpected names")
	}
	if Forwarding(9).String() == "" {
		t.Errorf("unknown strategy should render")
	}
}

// groundTruth computes the centralized constrained skyline over the union
// of all device relations for one query.
func groundTruth(out *Outcome, q *QueryMetrics, pos tuple.Point, d float64) []tuple.Tuple {
	var all []tuple.Tuple
	for _, ts := range out.DeviceTuples {
		all = append(all, ts...)
	}
	// Duplicates from overlap partitioning collapse by site.
	var dedup []tuple.Tuple
	seen := map[[2]float64]bool{}
	for _, tp := range all {
		k := [2]float64{tp.X, tp.Y}
		if !seen[k] {
			seen[k] = true
			dedup = append(dedup, tp)
		}
	}
	return skyline.Constrained(dedup, pos, d)
}

// In a static, fully connected, loss-free network, every completed query's
// result must equal the centralized constrained skyline — for both
// forwarding strategies and all estimation modes. This is the end-to-end
// correctness invariant of the whole system.
func TestDistributedEqualsCentralizedStatic(t *testing.T) {
	for _, strategy := range []Forwarding{BreadthFirst, DepthFirst} {
		for _, mode := range []core.Estimation{core.Exact, core.Over, core.Under} {
			p := smallParams(strategy)
			p.Mode = mode
			p.BFQuorum = 1.0 // demand every device's result for exactness
			out := Run(p)
			if len(out.Queries) == 0 {
				t.Fatalf("%v/%v: no queries issued", strategy, mode)
			}
			checked := 0
			for _, q := range out.Queries {
				if !q.Done {
					continue
				}
				checked++
				orgStart := gen.CellRect(int(q.Org)/p.Grid, int(q.Org)%p.Grid, p.Grid, p.Space).Center()
				want := groundTruth(out, q, orgStart, p.QueryDist)
				if !skyline.SetEqual(q.Skyline, want) {
					t.Errorf("%v/%v query %v: result %d tuples, centralized %d",
						strategy, mode, q.Key, len(q.Skyline), len(want))
				}
			}
			if checked == 0 {
				t.Errorf("%v/%v: no queries completed", strategy, mode)
			}
		}
	}
}

func TestOverlapPartitionDuplicatesHandled(t *testing.T) {
	p := smallParams(BreadthFirst)
	p.Overlap = 0.4
	p.BFQuorum = 1.0
	out := Run(p)
	for _, q := range out.Queries {
		if !q.Done {
			continue
		}
		orgStart := gen.CellRect(int(q.Org)/p.Grid, int(q.Org)%p.Grid, p.Grid, p.Space).Center()
		want := groundTruth(out, q, orgStart, p.QueryDist)
		if !skyline.SetEqual(q.Skyline, want) {
			t.Fatalf("query %v with overlap: result %d, want %d", q.Key, len(q.Skyline), len(want))
		}
		// No duplicate sites may survive in the final skyline.
		seen := map[[2]float64]bool{}
		for _, tp := range q.Skyline {
			k := [2]float64{tp.X, tp.Y}
			if seen[k] {
				t.Fatalf("duplicate site %v in final skyline", tp.Pos())
			}
			seen[k] = true
		}
	}
}

func TestQueriesPerDeviceBounds(t *testing.T) {
	p := smallParams(BreadthFirst)
	p.MinQueries, p.MaxQueries = 2, 5
	out := Run(p)
	perDevice := map[core.DeviceID]int{}
	for _, q := range out.Queries {
		perDevice[q.Org]++
	}
	for dev, n := range perDevice {
		if n > 5 {
			t.Errorf("device %d issued %d queries, max 5", dev, n)
		}
	}
	// Issues + skips must equal planned issues (2..5 each).
	total := len(out.Queries) + out.SkippedIssues
	if total < 2*p.NumDevices() || total > 5*p.NumDevices() {
		t.Errorf("planned issues %d outside [%d,%d]", total, 2*p.NumDevices(), 5*p.NumDevices())
	}
}

func TestBFResponseTimeQuorum(t *testing.T) {
	p := smallParams(BreadthFirst)
	out := Run(p)
	for _, q := range out.Queries {
		if q.Done {
			if q.ResponseTime <= 0 {
				t.Errorf("completed query %v has response time %v", q.Key, q.ResponseTime)
			}
			if q.Results < out.quorumOf(p) {
				t.Errorf("query %v done with %d results, quorum %d", q.Key, q.Results, out.quorumOf(p))
			}
		}
	}
}

// quorumOf recomputes the BF quorum for assertions.
func (o *Outcome) quorumOf(p Params) int {
	others := p.NumDevices() - 1
	q := int(float64(others)*p.BFQuorum + 0.999999)
	return q
}

func TestDFCompletesAndVisitsDevices(t *testing.T) {
	p := smallParams(DepthFirst)
	out := Run(p)
	done := 0
	for _, q := range out.Queries {
		if q.Done {
			done++
			// In a fully connected static 9-device network, DF must visit
			// all 8 other devices (they all have in-range data: d=250 from
			// a cell centre still overlaps neighbours' cells... not
			// necessarily all; at least one).
			if q.Acc.Devices == 0 {
				t.Errorf("query %v completed without visiting any device", q.Key)
			}
		}
	}
	if done == 0 {
		t.Fatalf("no DF queries completed")
	}
}

func TestMessagesCounted(t *testing.T) {
	for _, strategy := range []Forwarding{BreadthFirst, DepthFirst} {
		p := smallParams(strategy)
		out := Run(p)
		total := 0
		for _, q := range out.Queries {
			total += q.Messages
		}
		if total == 0 {
			t.Errorf("%v: no messages attributed to queries", strategy)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	p := smallParams(BreadthFirst)
	a, b := Run(p), Run(p)
	if len(a.Queries) != len(b.Queries) {
		t.Fatalf("query counts differ: %d vs %d", len(a.Queries), len(b.Queries))
	}
	for i := range a.Queries {
		qa, qb := a.Queries[i], b.Queries[i]
		if qa.Key != qb.Key || qa.Issued != qb.Issued ||
			qa.Done != qb.Done || qa.ResponseTime != qb.ResponseTime ||
			qa.Messages != qb.Messages || qa.Acc != qb.Acc {
			t.Fatalf("query %d diverged:\n%+v\n%+v", i, qa, qb)
		}
	}
	if a.Radio != b.Radio || a.Aodv != b.Aodv {
		t.Errorf("substrate counters diverged")
	}
}

func TestMobileScenarioRuns(t *testing.T) {
	p := DefaultParams()
	p.Grid = 4
	p.GlobalN = 8000
	p.SimTime = 1800
	p.MinQueries, p.MaxQueries = 1, 1
	p.Seed = 7
	out := Run(p)
	if len(out.Queries) == 0 {
		t.Fatalf("no queries issued")
	}
	if out.Events == 0 {
		t.Fatalf("no events executed")
	}
	// With movement some queries may not complete; the rate must still be
	// meaningful.
	t.Logf("mobile: %d queries, completion %.2f, pooled DRR %.3f, mean msgs %.1f",
		len(out.Queries), out.CompletionRate(), out.PooledDRR(), out.MeanMessages())
	if out.CompletionRate() == 0 {
		t.Errorf("no queries completed in a 4×4 mobile scenario")
	}
}

func TestDFvsBFResponseTime(t *testing.T) {
	// The paper's headline simulation finding (Figures 10-11): BF
	// completes faster than DF thanks to parallelism.
	var rt [2]float64
	for i, strategy := range []Forwarding{BreadthFirst, DepthFirst} {
		p := DefaultParams()
		p.Grid = 4
		p.GlobalN = 16000
		p.Strategy = strategy
		p.SimTime = 7200
		p.MinQueries, p.MaxQueries = 1, 2
		p.Static = true
		p.Radio.Range = 400 // multi-hop grid
		p.Seed = 3
		out := Run(p)
		mean, ok := out.MeanResponseTime()
		if !ok {
			t.Fatalf("%v: no completed queries", strategy)
		}
		rt[i] = mean
	}
	t.Logf("response time: BF=%.3fs DF=%.3fs", rt[0], rt[1])
	if rt[0] >= rt[1] {
		t.Errorf("BF (%.3fs) should beat DF (%.3fs)", rt[0], rt[1])
	}
}

func TestOutcomeAggregates(t *testing.T) {
	out := &Outcome{}
	if _, ok := out.MeanResponseTime(); ok {
		t.Errorf("no queries: MeanResponseTime should report not-ok")
	}
	if out.MeanMessages() != 0 || out.CompletionRate() != 0 || out.PooledDRR() != 0 {
		t.Errorf("empty outcome aggregates should be zero")
	}
	out.Queries = []*QueryMetrics{
		{Done: true, ResponseTime: 2, Messages: 10},
		{Done: false, Messages: 20},
	}
	if m, ok := out.MeanResponseTime(); !ok || m != 2 {
		t.Errorf("MeanResponseTime = %v %v", m, ok)
	}
	if out.MeanMessages() != 15 {
		t.Errorf("MeanMessages = %v", out.MeanMessages())
	}
	if out.CompletionRate() != 0.5 {
		t.Errorf("CompletionRate = %v", out.CompletionRate())
	}
}
