package manet

import (
	"manetskyline/internal/storage"
)

// This file implements the paper's second future-work direction (§7):
// "extend the current strategies to retain good performance while
// incorporating the redistribution of local relations due to device
// mobility."
//
// The scheme is deliberately simple: every RedistributePeriod seconds, each
// device that still holds data compares its own distance to the centre of
// its data's bounding rectangle with every other device's distance. When
// some other device is both markedly closer to the data's region (less than
// half this device's distance) and currently within radio range, the
// relation is handed over in one bulk transfer. The hand-off is applied
// atomically in simulation state — the union of all local relations is
// invariant — while the transfer itself is charged to the radio medium at
// its true byte size, so bandwidth and message accounting see it.

// xferMsg is the bulk relation hand-off frame (accounting only; the state
// change is applied atomically by the scheduler).
type xferMsg struct {
	count, dim int
}

func (m *xferMsg) SizeBytes() int { return 16 + m.count*tupleBytes(m.dim) }

// Transfers counts completed hand-offs (exposed through Outcome).
type redistributionState struct {
	transfers int
}

// scheduleRedistribution arms the periodic hand-off check.
func (sc *scenario) scheduleRedistribution() {
	period := sc.p.RedistributePeriod
	if period <= 0 {
		period = 600
	}
	var tick func()
	tick = func() {
		sc.redistributeOnce()
		if sc.eng.Now()+period < sc.p.SimTime {
			sc.eng.Schedule(period, tick)
		}
	}
	sc.eng.Schedule(period, tick)
}

// redistributeOnce performs at most one hand-off per holding device.
func (sc *scenario) redistributeOnce() {
	for ni := range sc.nodes {
		n := &sc.nodes[ni]
		if len(n.tuples) == 0 {
			continue
		}
		center := n.dev.Rel.MBR().Center()
		own := sc.med.PosOf(n.id).Dist(center)
		best := n
		bestDist := own
		for mi := range sc.nodes {
			if mi == ni {
				continue
			}
			m := &sc.nodes[mi]
			if d := sc.med.PosOf(m.id).Dist(center); d < bestDist {
				best = m
				bestDist = d
			}
		}
		// Hand off only for a clear win, to a reachable device.
		if best == n || bestDist > own/2 || !sc.med.InRange(n.id, best.id) {
			continue
		}
		// Charge the hand-off to the network at its true byte size (one
		// in-range hop); nodes ignore the frame itself because the state
		// change below is applied atomically.
		sc.net.Send(n.id, best.id, &xferMsg{count: len(n.tuples), dim: sc.p.Dim})
		moved := n.tuples
		n.tuples = nil
		n.dev.Rel = storage.NewHybrid(nil)
		best.tuples = append(best.tuples, moved...)
		best.dev.Rel = storage.NewHybrid(best.tuples)
		sc.redist.transfers++
		sc.met.Transfers.Inc()
		to := best.dev.ID
		sc.trace(TraceEvent{Event: "transfer", Device: n.dev.ID,
			To: &to, Tuples: len(best.tuples)})
	}
}
