package manet

import (
	"testing"

	"manetskyline/internal/telemetry"
)

// benchScenarioParams is the end-to-end benchmark scenario: the paper's
// largest network (10×10 grid = 100 devices) moving under random waypoint,
// at reduced cardinality and duration so one run stays benchmark-sized.
func benchScenarioParams(strategy Forwarding) Params {
	p := DefaultParams()
	p.Grid = 10
	p.GlobalN = 10000
	p.Strategy = strategy
	p.SimTime = 600
	p.MinQueries, p.MaxQueries = 1, 1
	p.Seed = 11
	return p
}

var benchOutcomeSink *Outcome

// BenchmarkScenarioSmall runs one complete mobile MANET scenario at 100
// devices end to end: dataset generation, the discrete-event run with AODV
// routing and BF query floods, and metric collection. This is the unit of
// work the Figure 8-12 sweeps fan out per data point.
func BenchmarkScenarioSmall(b *testing.B) {
	for _, strategy := range allStrategies {
		b.Run(strategy.String(), func(b *testing.B) {
			p := benchScenarioParams(strategy)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchOutcomeSink = Run(p)
			}
		})
	}
}

// BenchmarkScenarioSmallTelemetry is the same scenario with the full
// telemetry stack attached (registry across all layers plus span
// collection), quantifying the enabled-path overhead that EXPERIMENTS.md
// reports against the disabled baseline above.
func BenchmarkScenarioSmallTelemetry(b *testing.B) {
	for _, strategy := range allStrategies {
		b.Run(strategy.String(), func(b *testing.B) {
			p := benchScenarioParams(strategy)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Metrics = telemetry.NewRegistry()
				p.Spans = telemetry.NewSpanLog()
				benchOutcomeSink = Run(p)
			}
		})
	}
}
