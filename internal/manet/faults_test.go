package manet

import (
	"testing"
)

// Lossy-radio scenarios: the protocol must stay live (no panics, queries
// still progress via timeouts) and whatever it returns must be internally
// consistent even when frames vanish.
func TestLossyRadioBothStrategies(t *testing.T) {
	for _, strategy := range []Forwarding{BreadthFirst, DepthFirst} {
		for _, loss := range []float64{0.05, 0.2} {
			p := DefaultParams()
			p.Grid = 4
			p.GlobalN = 6000
			p.Strategy = strategy
			p.SimTime = 3600
			p.MinQueries, p.MaxQueries = 1, 1
			p.Radio.Loss = loss
			p.KeepSkylines = true
			p.Recall = true
			// Every (strategy, loss) pair gets its own seed: deriving the seed
			// from loss alone made BF and DF replay the same stream.
			p.Seed = int64(1000*loss) + int64(strategy)*7919 + 1
			out := Run(p)
			if len(out.Queries) == 0 {
				t.Fatalf("%v loss=%v: no queries issued", strategy, loss)
			}
			if out.Radio.DroppedLoss == 0 {
				t.Errorf("%v loss=%v: loss process never fired", strategy, loss)
			}
			for _, q := range out.Queries {
				for i, a := range q.Skyline {
					for j, b := range q.Skyline {
						if i != j && a.Dominates(b) {
							t.Fatalf("%v loss=%v: result contains dominated tuple", strategy, loss)
						}
					}
					if !q.Pos.WithinDist(a.Pos(), q.D) {
						t.Fatalf("%v loss=%v: result leaked out-of-range tuple", strategy, loss)
					}
				}
			}
			// Even at 20% loss a mobile network recovers some answers: recall
			// must be positive, and the oracle must actually have run.
			r, ok := out.MeanRecall()
			if !ok {
				t.Fatalf("%v loss=%v: recall not computed", strategy, loss)
			}
			if r <= 0 {
				t.Errorf("%v loss=%v: mean recall %v, want > 0", strategy, loss, r)
			}
			t.Logf("%v loss=%.0f%%: completion %.0f%%, recall %.3f, %d frames lost",
				strategy, loss*100, out.CompletionRate()*100, r, out.Radio.DroppedLoss)
		}
	}
}

// A single-device network: every query completes instantly against local
// data only.
func TestSingleDeviceNetwork(t *testing.T) {
	p := DefaultParams()
	p.Grid = 1
	p.GlobalN = 2000
	p.SimTime = 1200
	p.MinQueries, p.MaxQueries = 2, 2
	p.Static = true
	p.KeepSkylines = true
	out := Run(p)
	if len(out.Queries) == 0 {
		t.Fatalf("no queries issued")
	}
	for _, q := range out.Queries {
		if !q.Done {
			t.Errorf("single-device query should complete immediately")
		}
		if q.Acc.Devices != 0 {
			t.Errorf("no remote devices exist; Acc.Devices = %d", q.Acc.Devices)
		}
	}
}

// Devices that hold no data (empty grid cells) must still relay and answer.
func TestEmptyCellsStillRelay(t *testing.T) {
	p := DefaultParams()
	p.Grid = 5
	p.GlobalN = 60 // ~2 tuples per cell; some cells certainly empty
	p.SimTime = 3600
	p.MinQueries, p.MaxQueries = 1, 1
	p.Static = true
	p.Radio.Range = 2000
	p.BFQuorum = 1.0
	p.Seed = 5
	out := Run(p)
	done := 0
	for _, q := range out.Queries {
		if q.Done {
			done++
		}
	}
	if done == 0 {
		t.Fatalf("queries should complete even with empty relations")
	}
}

// The DF ack and subtree timeouts must unblock an originator whose chosen
// neighbour becomes unreachable mid-query. With a tiny subtree timeout the
// query may return partial results but must always terminate.
func TestDFTimeoutsTerminate(t *testing.T) {
	p := DefaultParams()
	p.Grid = 4
	p.GlobalN = 4000
	p.Strategy = DepthFirst
	p.SimTime = 7200
	p.MinQueries, p.MaxQueries = 1, 1
	p.AckTimeout = 2
	p.SubtreeTimeout = 20
	p.Radio.Loss = 0.3 // heavy loss: many DF control messages vanish
	p.Seed = 9
	out := Run(p)
	if out.CompletionRate() == 0 {
		t.Errorf("DF should terminate via timeouts even under 30%% loss")
	}
}

// A fading radio (gray-zone losses at the cell edge) must degrade — not
// break — both strategies.
func TestFadingRadio(t *testing.T) {
	for _, strategy := range []Forwarding{BreadthFirst, DepthFirst} {
		p := DefaultParams()
		p.Grid = 4
		p.GlobalN = 6000
		p.Strategy = strategy
		p.SimTime = 3600
		p.MinQueries, p.MaxQueries = 1, 1
		p.Radio.FadeMargin = 0.3
		p.Seed = 31
		out := Run(p)
		if len(out.Queries) == 0 {
			t.Fatalf("%v: no queries issued", strategy)
		}
		t.Logf("%v fading: completion %.0f%%, %d gray-zone drops",
			strategy, out.CompletionRate()*100, out.Radio.DroppedRange)
	}
}

// Dimension sweep: every supported dimensionality runs end to end.
func TestAllDimensionalities(t *testing.T) {
	for dim := 2; dim <= 5; dim++ {
		p := DefaultParams()
		p.Grid = 3
		p.GlobalN = 3000
		p.Dim = dim
		p.SimTime = 1800
		p.MinQueries, p.MaxQueries = 1, 1
		p.Static = true
		p.Radio.Range = 2000
		out := Run(p)
		if out.CompletionRate() == 0 {
			t.Errorf("dim=%d: no queries completed", dim)
		}
	}
}
