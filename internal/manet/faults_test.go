package manet

import (
	"testing"
)

// Lossy-radio scenarios: the protocol must stay live (no panics, queries
// still progress via timeouts) and whatever it returns must be internally
// consistent even when frames vanish. Table-driven over every forwarding
// strategy so a new strategy is covered by adding it to allStrategies.
func TestLossyRadioBothStrategies(t *testing.T) {
	for _, strategy := range allStrategies {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			for _, loss := range []float64{0.05, 0.2} {
				p := DefaultParams()
				p.Grid = 4
				p.GlobalN = 6000
				p.Strategy = strategy
				p.SimTime = 3600
				p.MinQueries, p.MaxQueries = 1, 1
				p.Radio.Loss = loss
				p.KeepSkylines = true
				p.Recall = true
				// Every (strategy, loss) pair gets its own seed: deriving the seed
				// from loss alone made BF and DF replay the same stream.
				p.Seed = int64(1000*loss) + int64(strategy)*7919 + 1
				out := Run(p)
				if len(out.Queries) == 0 {
					t.Fatalf("loss=%v: no queries issued", loss)
				}
				if out.Radio.DroppedLoss == 0 {
					t.Errorf("loss=%v: loss process never fired", loss)
				}
				for _, q := range out.Queries {
					for i, a := range q.Skyline {
						for j, b := range q.Skyline {
							if i != j && a.Dominates(b) {
								t.Fatalf("loss=%v: result contains dominated tuple", loss)
							}
						}
						if !q.Pos.WithinDist(a.Pos(), q.D) {
							t.Fatalf("loss=%v: result leaked out-of-range tuple", loss)
						}
					}
				}
				// Even at 20% loss a mobile network recovers some answers: recall
				// must be positive, and the oracle must actually have run.
				r, ok := out.MeanRecall()
				if !ok {
					t.Fatalf("loss=%v: recall not computed", loss)
				}
				if r <= 0 {
					t.Errorf("loss=%v: mean recall %v, want > 0", loss, r)
				}
				t.Logf("loss=%.0f%%: completion %.0f%%, recall %.3f, %d frames lost",
					loss*100, out.CompletionRate()*100, r, out.Radio.DroppedLoss)
			}
		})
	}
}

// A single-device network: every query completes instantly against local
// data only.
func TestSingleDeviceNetwork(t *testing.T) {
	p := DefaultParams()
	p.Grid = 1
	p.GlobalN = 2000
	p.SimTime = 1200
	p.MinQueries, p.MaxQueries = 2, 2
	p.Static = true
	p.KeepSkylines = true
	out := Run(p)
	if len(out.Queries) == 0 {
		t.Fatalf("no queries issued")
	}
	for _, q := range out.Queries {
		if !q.Done {
			t.Errorf("single-device query should complete immediately")
		}
		if q.Acc.Devices != 0 {
			t.Errorf("no remote devices exist; Acc.Devices = %d", q.Acc.Devices)
		}
	}
}

// Devices that hold no data (empty grid cells) must still relay and answer.
func TestEmptyCellsStillRelay(t *testing.T) {
	p := DefaultParams()
	p.Grid = 5
	p.GlobalN = 60 // ~2 tuples per cell; some cells certainly empty
	p.SimTime = 3600
	p.MinQueries, p.MaxQueries = 1, 1
	p.Static = true
	p.Radio.Range = 2000
	p.BFQuorum = 1.0
	p.Seed = 5
	out := Run(p)
	done := 0
	for _, q := range out.Queries {
		if q.Done {
			done++
		}
	}
	if done == 0 {
		t.Fatalf("queries should complete even with empty relations")
	}
}

// The DF ack and subtree timeouts must unblock an originator whose chosen
// neighbour becomes unreachable mid-query. With a tiny subtree timeout the
// query may return partial results but must always terminate.
func TestDFTimeoutsTerminate(t *testing.T) {
	p := DefaultParams()
	p.Grid = 4
	p.GlobalN = 4000
	p.Strategy = DepthFirst
	p.SimTime = 7200
	p.MinQueries, p.MaxQueries = 1, 1
	p.AckTimeout = 2
	p.SubtreeTimeout = 20
	p.Radio.Loss = 0.3 // heavy loss: many DF control messages vanish
	p.Seed = 9
	out := Run(p)
	if out.CompletionRate() == 0 {
		t.Errorf("DF should terminate via timeouts even under 30%% loss")
	}
}

// A fading radio (gray-zone losses at the cell edge) must degrade — not
// break — any strategy.
func TestFadingRadio(t *testing.T) {
	for _, strategy := range allStrategies {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			p := DefaultParams()
			p.Grid = 4
			p.GlobalN = 6000
			p.Strategy = strategy
			p.SimTime = 3600
			p.MinQueries, p.MaxQueries = 1, 1
			p.Radio.FadeMargin = 0.3
			p.Seed = 31
			out := Run(p)
			if len(out.Queries) == 0 {
				t.Fatalf("no queries issued")
			}
			t.Logf("fading: completion %.0f%%, %d gray-zone drops",
				out.CompletionRate()*100, out.Radio.DroppedRange)
		})
	}
}

// Dimension sweep: every supported dimensionality runs end to end.
func TestAllDimensionalities(t *testing.T) {
	for dim := 2; dim <= 5; dim++ {
		p := DefaultParams()
		p.Grid = 3
		p.GlobalN = 3000
		p.Dim = dim
		p.SimTime = 1800
		p.MinQueries, p.MaxQueries = 1, 1
		p.Static = true
		p.Radio.Range = 2000
		out := Run(p)
		if out.CompletionRate() == 0 {
			t.Errorf("dim=%d: no queries completed", dim)
		}
	}
}
