package manet

import (
	"manetskyline/internal/core"
	"manetskyline/internal/localsky"
	"manetskyline/internal/radio"
	"manetskyline/internal/skyline"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
)

// This file implements the SF (sampling-filter) strategy, the
// communication-optimal third forwarding mode beside the paper's BF and DF
// (Zhang & Zhang, arXiv:1611.00423): instead of shipping every device's
// reduced local skyline to the originator, SF spends one cheap sampling
// round to learn a strong filter set first.
//
//	phase 0 (sample):  the originator broadcasts a bare query with a small
//	                   TTL (default one hop — the sampling round stays off
//	                   the flood budget); every receiver computes its full
//	                   constrained local skyline and returns a seeded
//	                   deterministic sample of it.
//	phase 1 (collect): after SampleWait, the originator selects FilterK
//	                   tuples from everything collected so far by greedy
//	                   dominating-region coverage (internal/skyline) and
//	                   floods them together with the query spec — SF's one
//	                   full flood, which both disseminates the query to
//	                   devices beyond the sampling TTL and arms them with
//	                   the filter set. Devices return only the tuples that
//	                   survive it.
//
// Every filter is a real in-range tuple the originator holds, so fault-free
// the merged result is exactly the centralized constrained skyline, while
// on the wire SF replaces BF's (query + own filter + VDR score) flood with
// a (query + k attribute-only filters) flood and shrinks the returned
// results to near-empty survivor messages.

// sfOrigState is the originator's state for one SF query.
type sfOrigState struct {
	q      core.Query // bare query: no filter travels with SF floods
	merged []tuple.Tuple
	// filters is the broadcast filter set, fixed when phase flips to 1.
	filters []tuple.Tuple
	quorum  int
	// phase is 0 while sampling, 1 while collecting survivors.
	phase    int
	attempts int
}

// sfDevState is a non-originator device's state for one SF query: the full
// local skyline computed in the sampling round, kept for the collect phase.
type sfDevState struct {
	skyline   []tuple.Tuple
	unreduced int
	sampled   int  // tuples volunteered in the sampling round
	replied   bool // survivors already sent (collect-phase dedup)
}

// sfSeed derives the filter-selection seed from the query key, mirroring
// the multi-filter extension's per-query determinism.
func sfSeed(key core.QueryKey) int64 {
	return int64(key.Cnt) + int64(key.Org)<<8
}

// sfBare strips the filtering tuples Originate attached: SF floods carry no
// filter (devices must compute their full local skylines for the collect
// phase to prune against the stronger sampled filter set).
func sfBare(q core.Query) core.Query {
	q.Filter = nil
	q.FilterVDR = 0
	q.Extra = nil
	return q
}

// sfFlood broadcasts one hop of an SF flood, installing reverse routes when
// FloodRoutes is on (same contract as bfFlood).
func (n *node) sfFlood(org core.DeviceID, hops int, payload radio.Payload) int {
	if n.sc.p.FloodRoutes {
		return n.sc.net.BroadcastLocalRouted(n.id, radio.NodeID(org), hops, payload)
	}
	return n.sc.net.BroadcastLocal(n.id, payload)
}

// sfStart runs the originator's side of SF query issue: broadcast the
// TTL-limited sample request and arm the sample-collection deadline.
func (n *node) sfStart(q core.Query, res localsky.Result) {
	if n.sf == nil {
		n.sf = make(map[core.QueryKey]*sfOrigState)
	}
	bare := sfBare(q)
	key := bare.Key()
	st := &sfOrigState{q: bare, merged: res.Skyline, quorum: n.sc.quorum()}
	n.sf[key] = st
	if qm := n.sc.metrics[key]; qm != nil && qm.Done {
		return // the deadline fired during local processing
	}
	if st.quorum == 0 {
		n.finishQuery(key, st.merged)
		return
	}
	first := &sfQueryMsg{Q: bare, SampleK: n.sc.p.sampleK(), TTL: n.sc.p.sampleTTL(), Hops: 1}
	n.sc.countQueryMessages(key, n.sfFlood(bare.Org, first.Hops, first), first.SizeBytes())
	n.sc.eng.Schedule(n.sc.p.sampleWait(), func() { n.sfBroadcastFilters(key, st) })
	n.sfScheduleRetry(key, st)
}

// sfScheduleRetry arms the next re-flood under the retry policy: whichever
// phase the query is in when the backoff elapses is flooded again, reaching
// devices the original flood missed (devices that saw it dedup as usual).
func (n *node) sfScheduleRetry(key core.QueryKey, st *sfOrigState) {
	if st.attempts >= n.sc.p.QueryRetries {
		return
	}
	n.sc.eng.Schedule(n.sc.p.retryDelay(st.attempts), func() {
		qm := n.sc.metrics[key]
		if qm == nil || qm.Done {
			return
		}
		st.attempts++
		n.recordRetry(key, st.attempts)
		if st.phase == 0 {
			refl := &sfQueryMsg{Q: st.q, SampleK: n.sc.p.sampleK(), TTL: n.sc.p.sampleTTL(), Hops: 1}
			n.sc.countQueryMessages(key, n.sfFlood(st.q.Org, refl.Hops, refl), refl.SizeBytes())
		} else {
			refl := &sfFilterMsg{Q: st.q, Filters: st.filters, Hops: 1}
			n.sc.countQueryMessages(key, n.sfFlood(st.q.Org, refl.Hops, refl), refl.SizeBytes())
		}
		n.sfScheduleRetry(key, st)
	})
}

// sfBroadcastFilters flips the originator into the collect phase: select
// the filter set from everything sampled so far and flood it.
func (n *node) sfBroadcastFilters(key core.QueryKey, st *sfOrigState) {
	qm := n.sc.metrics[key]
	if qm == nil || qm.Done || st.phase != 0 {
		return
	}
	st.phase = 1
	hi := core.VDRBounds(n.dev.Mode, n.dev.Schema, n.dev.Rel, n.dev.OverFactor)
	selected := skyline.SelectFilterSet(st.merged, hi, n.sc.p.filterK(), 0, sfSeed(key))
	// The flood ships 16-bit fixed-point attribute codes; quantizing here
	// means the pruning every device performs matches what actually
	// travelled (conservative: rounded toward worse, exactness preserved).
	st.filters = core.QuantizeFilters(selected, n.dev.Schema)
	n.sc.trace(TraceEvent{Event: "filter-set", Device: n.dev.ID,
		Org: key.Org, Cnt: key.Cnt, Tuples: len(st.filters)})
	n.sc.spans.Observe(spanKey(key), telemetry.Stage{
		T: n.sc.eng.Now(), Kind: telemetry.StageFilterSet,
		Device: int32(n.dev.ID), Tuples: len(st.filters),
	})
	msg := &sfFilterMsg{Q: st.q, Filters: st.filters, Hops: 1}
	n.sc.countQueryMessages(key, n.sfFlood(st.q.Org, msg.Hops, msg), msg.SizeBytes())
}

// sfHandleQuery runs a first-time receiver's side of the sampling round:
// compute the full local skyline, keep it for the collect phase, return a
// seeded sample, and rebroadcast while TTL remains. The rebroadcast happens
// before the processing delay so the sampling wave is not serialized by
// per-device CPU cost.
func (n *node) sfHandleQuery(msg *sfQueryMsg) {
	q := msg.Q
	key := q.Key()
	if !n.dev.FirstTime(key) {
		return
	}
	if msg.TTL > 1 {
		fwd := &sfQueryMsg{Q: q, SampleK: msg.SampleK, TTL: msg.TTL - 1, Hops: msg.Hops + 1}
		n.sc.countQueryMessages(key, n.sfFlood(q.Org, fwd.Hops, fwd), fwd.SizeBytes())
	}
	res := n.dev.Process(q) // bare query: the full constrained local skyline
	n.sc.eng.Schedule(n.sc.p.Cost.Time(res.Stats), func() {
		n.observeProcess(q, res, msg.Hops)
		if n.sfDev == nil {
			n.sfDev = make(map[core.QueryKey]*sfDevState)
		}
		sample := core.SampleTuples(res.Skyline, msg.SampleK, core.SampleSeed(key, n.dev.ID))
		n.sfDev[key] = &sfDevState{
			skyline: res.Skyline, unreduced: res.Unreduced, sampled: len(sample),
		}
		n.sc.net.Send(n.id, radio.NodeID(q.Org), &sfSampleMsg{
			Key: key, From: n.dev.ID, Tuples: sample,
		})
	})
}

// sfHandleSample merges one device's sample at the originator. Samples that
// arrive after the phase flip still improve the final result; they simply
// no longer influence filter selection.
func (n *node) sfHandleSample(m *sfSampleMsg, hops int) {
	st := n.sf[m.Key]
	if st == nil {
		return
	}
	st.merged = core.Merge(st.merged, m.Tuples)
	n.sc.trace(TraceEvent{Event: "sample", Device: n.dev.ID,
		Org: m.Key.Org, Cnt: m.Key.Cnt, Tuples: len(m.Tuples), Hops: hops})
	n.sc.spans.Observe(spanKey(m.Key), telemetry.Stage{
		T: n.sc.eng.Now(), Kind: telemetry.StageSample,
		Device: int32(m.From), Tuples: len(m.Tuples), Hops: hops,
	})
}

// sfHandleFilter runs a device's side of the collect phase: prune the
// stored skyline with the filter set, return the survivors, keep flooding.
// A device that missed the sampling round processes the query fresh — the
// filter flood carries the full query spec for exactly this case. The
// re-flood happens at acceptance, before any processing delay, so the
// flood wave is not serialized by per-device CPU cost.
func (n *node) sfHandleFilter(msg *sfFilterMsg) {
	key := msg.Q.Key()
	ds := n.sfDev[key]
	if ds != nil {
		if ds.replied {
			return
		}
		n.sfRefloodFilter(key, msg)
		n.sfSendSurvivors(key, ds, msg)
		return
	}
	if !n.dev.FirstTime(key) {
		return // originator, or a duplicate while the first copy processes
	}
	n.sfRefloodFilter(key, msg)
	res := n.dev.Process(msg.Q)
	n.sc.eng.Schedule(n.sc.p.Cost.Time(res.Stats), func() {
		n.observeProcess(msg.Q, res, msg.Hops)
		late := &sfDevState{skyline: res.Skyline, unreduced: res.Unreduced}
		if n.sfDev == nil {
			n.sfDev = make(map[core.QueryKey]*sfDevState)
		}
		n.sfDev[key] = late
		n.sfSendSurvivors(key, late, msg)
	})
}

// sfRefloodFilter forwards the filter flood one hop.
func (n *node) sfRefloodFilter(key core.QueryKey, msg *sfFilterMsg) {
	fwd := &sfFilterMsg{Q: msg.Q, Filters: msg.Filters, Hops: msg.Hops + 1}
	n.sc.countQueryMessages(key, n.sfFlood(key.Org, fwd.Hops, fwd), fwd.SizeBytes())
}

// sfSendSurvivors computes and returns one device's surviving tuples.
func (n *node) sfSendSurvivors(key core.QueryKey, ds *sfDevState, msg *sfFilterMsg) {
	ds.replied = true
	surv := core.Survivors(ds.skyline, msg.Filters)
	// Formula 1 accounting: the tuples this device shipped are its sample
	// plus the survivors, against the filter set it received.
	n.sc.observe(key, processOutcome{
		reducedLen: len(surv) + ds.sampled,
		unreduced:  ds.unreduced,
		filters:    len(msg.Filters),
	})
	n.sc.net.Send(n.id, radio.NodeID(key.Org), &sfResultMsg{
		Key: key, From: n.dev.ID, Tuples: surv,
	})
}

// sfHandleResult merges one device's survivors at the originator and
// completes the query at quorum.
func (n *node) sfHandleResult(m *sfResultMsg, hops int) {
	st := n.sf[m.Key]
	if st == nil {
		return
	}
	st.merged = core.Merge(st.merged, m.Tuples)
	qm := n.sc.metrics[m.Key]
	if qm == nil {
		return
	}
	qm.Results++
	qm.ResultTuples = len(st.merged)
	n.sc.trace(TraceEvent{Event: "result", Device: n.dev.ID,
		Org: m.Key.Org, Cnt: m.Key.Cnt, Tuples: len(m.Tuples), Hops: hops})
	n.sc.spans.Observe(spanKey(m.Key), telemetry.Stage{
		T: n.sc.eng.Now(), Kind: telemetry.StageResult,
		Device: int32(m.From), Tuples: len(m.Tuples), Hops: hops,
	})
	if n.sc.p.KeepSkylines {
		qm.Skyline = append([]tuple.Tuple(nil), st.merged...)
	}
	if !qm.Done && qm.Results >= st.quorum {
		n.finishQuery(m.Key, st.merged)
	}
}
