package manet

import (
	"manetskyline/internal/core"
	"manetskyline/internal/localsky"
	"manetskyline/internal/radio"
	"manetskyline/internal/telemetry"
	"manetskyline/internal/tuple"
)

// node is one simulated mobile device: protocol state machine over the
// AODV/radio substrate, local processing through the core.Device, and CPU
// time consumption through the cost model.
type node struct {
	sc     *scenario
	id     radio.NodeID
	dev    *core.Device
	tuples []tuple.Tuple // the device's raw local relation, for verification

	// busy marks a query in progress as originator (§5.2.1: a device does
	// not issue a new query while one is outstanding).
	busy bool

	// nbBuf is the reused neighbor buffer for DF forwarding decisions.
	nbBuf []radio.NodeID

	bf    map[core.QueryKey]*bfOrigState
	df    map[core.QueryKey]*dfState
	sf    map[core.QueryKey]*sfOrigState
	sfDev map[core.QueryKey]*sfDevState
}

// bfOrigState is the originator's collection state for one BF query.
type bfOrigState struct {
	q        core.Query
	merged   []tuple.Tuple
	quorum   int
	attempts int
}

// dfState is a device's per-query state under depth-first forwarding.
type dfState struct {
	q      core.Query
	parent radio.NodeID // -1 at the originator
	tried  map[radio.NodeID]bool
	merged []tuple.Tuple
	flt    *tuple.Tuple
	fltVDR float64

	waitingAck   bool
	waitingChild radio.NodeID // -1 when none
	gen          int          // invalidates stale timers
	done         bool

	attempts     int
	retryPending bool // a traversal restart is scheduled (gen changes during
	// the resumed walk, so a generation guard cannot protect the retry timer)
}

// bfFlood broadcasts one hop of a BF query flood. With Params.FloodRoutes,
// the flood frame carries the originator and hop count so receivers install
// reverse routes for their result returns (see aodv.BroadcastLocalRouted);
// otherwise it is a plain local broadcast, as in the paper.
func (n *node) bfFlood(msg *queryMsg) int {
	if n.sc.p.FloodRoutes {
		return n.sc.net.BroadcastLocalRouted(n.id, radio.NodeID(msg.Q.Org), msg.Hops, msg)
	}
	return n.sc.net.BroadcastLocal(n.id, msg)
}

// maybeIssue fires at a scheduled issue time; a device with a query in
// progress skips the opportunity.
func (n *node) maybeIssue() {
	if n.busy {
		n.sc.skipped++
		n.sc.met.QueriesSkipped.Inc()
		return
	}
	// A crashed or paused device cannot originate.
	if n.sc.inj != nil && n.sc.inj.NodeDown(n.id, n.sc.eng.Now()) {
		n.sc.skipped++
		n.sc.met.QueriesSkipped.Inc()
		return
	}
	n.busy = true
	pos := n.sc.med.PosOf(n.id)
	q, res := n.dev.Originate(pos, n.sc.p.QueryDist)
	n.sc.newMetrics(q)
	n.sc.met.QueriesIssued.Inc()
	if d := n.sc.p.QueryDeadline; d > 0 {
		key := q.Key()
		n.sc.eng.Schedule(d, func() { n.deadlineExpire(key) })
	}
	n.sc.spans.Begin(spanKey(q.Key()), n.sc.eng.Now())
	n.sc.trace(TraceEvent{Event: "issue", Device: n.dev.ID, Org: q.Org, Cnt: q.Cnt})
	// Local processing consumes simulated device time before anything is
	// transmitted.
	n.sc.eng.Schedule(n.sc.p.Cost.Time(res.Stats), func() {
		switch n.sc.p.Strategy {
		case BreadthFirst:
			n.bfStart(q, res)
		case DepthFirst:
			n.dfStart(q, res)
		case SamplingFilter:
			n.sfStart(q, res)
		}
	})
}

// finishQuery closes out an originator's query.
func (n *node) finishQuery(key core.QueryKey, merged []tuple.Tuple) {
	m := n.sc.metrics[key]
	if m == nil || m.Done {
		return
	}
	m.Done = true
	m.ResponseTime = n.sc.eng.Now() - m.Issued
	m.ResultTuples = len(merged)
	n.sc.met.QueriesCompleted.Inc()
	n.sc.met.ResponseTime.Observe(m.ResponseTime)
	if m.Partial {
		n.sc.spans.MarkPartial(spanKey(key))
	}
	n.sc.spans.Complete(spanKey(key), n.sc.eng.Now(), len(merged))
	n.sc.trace(TraceEvent{Event: "complete", Device: n.dev.ID,
		Org: key.Org, Cnt: key.Cnt, Tuples: len(merged), Partial: m.Partial})
	if n.sc.p.KeepSkylines {
		m.Skyline = append([]tuple.Tuple(nil), merged...)
	}
	n.busy = false
}

// deadlineExpire finalizes a still-open query when its deadline fires: the
// originator keeps whatever it merged so far and the result is flagged
// partial. Queries that already completed are untouched.
func (n *node) deadlineExpire(key core.QueryKey) {
	m := n.sc.metrics[key]
	if m == nil || m.Done {
		return
	}
	m.Partial = true
	n.sc.met.QueriesPartial.Inc()
	var merged []tuple.Tuple
	if st := n.bf[key]; st != nil {
		merged = st.merged
	} else if st := n.df[key]; st != nil {
		merged = st.merged
		st.done = true
		st.gen++ // invalidate ack/subtree timers of the abandoned traversal
	} else if st := n.sf[key]; st != nil {
		merged = st.merged
	}
	n.finishQuery(key, merged)
}

// recordRetry accounts one originator re-issue across the metric surfaces.
func (n *node) recordRetry(key core.QueryKey, attempt int) {
	if m := n.sc.metrics[key]; m != nil {
		m.Retries = attempt
	}
	n.sc.met.QueryRetries.Inc()
	n.sc.trace(TraceEvent{Event: "retry", Device: n.dev.ID,
		Org: key.Org, Cnt: key.Cnt})
	n.sc.spans.Observe(spanKey(key), telemetry.Stage{
		T: n.sc.eng.Now(), Kind: telemetry.StageRetry, Device: int32(n.dev.ID),
	})
}

// --- breadth-first ----------------------------------------------------------

func (n *node) bfStart(q core.Query, res localsky.Result) {
	if n.bf == nil {
		n.bf = make(map[core.QueryKey]*bfOrigState)
	}
	st := &bfOrigState{q: q, merged: res.Skyline, quorum: n.sc.quorum()}
	n.bf[q.Key()] = st
	if qm := n.sc.metrics[q.Key()]; qm != nil && qm.Done {
		return // the deadline fired during local processing
	}
	if st.quorum == 0 {
		n.finishQuery(q.Key(), st.merged)
		return
	}
	first := &queryMsg{Q: q, Hops: 1}
	n.sc.countQueryMessages(q.Key(), n.bfFlood(first), first.SizeBytes())
	n.bfScheduleRetry(q.Key(), st)
}

// bfScheduleRetry arms the next re-flood under the retry policy: if the
// query is still open when the backoff elapses, the originator floods the
// query again. Devices that saw the first flood ignore the repeat (QueryLog
// dedup), so a re-flood only reaches devices the original missed.
func (n *node) bfScheduleRetry(key core.QueryKey, st *bfOrigState) {
	if st.attempts >= n.sc.p.QueryRetries {
		return
	}
	n.sc.eng.Schedule(n.sc.p.retryDelay(st.attempts), func() {
		qm := n.sc.metrics[key]
		if qm == nil || qm.Done {
			return
		}
		st.attempts++
		n.recordRetry(key, st.attempts)
		refl := &queryMsg{Q: st.q, Hops: 1}
		n.sc.countQueryMessages(key, n.bfFlood(refl), refl.SizeBytes())
		n.bfScheduleRetry(key, st)
	})
}

// bfHandleQuery runs a first-time receiver's side of the flood.
func (n *node) bfHandleQuery(msg *queryMsg) {
	q := msg.Q
	if !n.dev.FirstTime(q.Key()) {
		return
	}
	res := n.dev.Process(q)
	n.sc.eng.Schedule(n.sc.p.Cost.Time(res.Stats), func() {
		n.sc.observe(q.Key(), processOutcome{
			reducedLen: len(res.Skyline),
			unreduced:  res.Unreduced,
			filters:    q.NumFilters(),
			skippedMBR: res.Stats.SkippedMBR,
		})
		n.observeProcess(q, res, msg.Hops)
		// Result back to the originator (multi-hop), even when empty: the
		// paper's devices always return a correct, short message.
		n.sc.net.Send(n.id, radio.NodeID(q.Org), &resultMsg{
			Key: q.Key(), From: n.dev.ID, Tuples: res.Skyline,
		})
		// Keep flooding with the (possibly upgraded) filter.
		fwd := &queryMsg{Q: core.Forwardable(q, res), Hops: msg.Hops + 1}
		n.sc.countQueryMessages(q.Key(), n.bfFlood(fwd), fwd.SizeBytes())
	})
}

// observeProcess emits the process (and, on a §3.4 dynamic upgrade, the
// filter-update) trace events and span stages for one Process outcome.
// hops is the flood depth (BF) or route length (DF) of the triggering
// message.
func (n *node) observeProcess(q core.Query, res localsky.Result, hops int) {
	key := q.Key()
	pruned := res.Unreduced - len(res.Skyline)
	n.sc.trace(TraceEvent{Event: "process", Device: n.dev.ID,
		Org: key.Org, Cnt: key.Cnt, Tuples: len(res.Skyline),
		Hops: hops, Pruned: pruned})
	n.sc.spans.Observe(spanKey(key), telemetry.Stage{
		T: n.sc.eng.Now(), Kind: telemetry.StageProcess,
		Device: int32(n.dev.ID), Tuples: len(res.Skyline),
		Hops: hops, Pruned: pruned,
	})
	if n.dev.Dynamic && core.FilterReplaced(q, res) {
		n.sc.trace(TraceEvent{Event: "filter-update", Device: n.dev.ID,
			Org: key.Org, Cnt: key.Cnt, Hops: hops})
		n.sc.spans.Observe(spanKey(key), telemetry.Stage{
			T: n.sc.eng.Now(), Kind: telemetry.StageFilterUpdate,
			Device: int32(n.dev.ID), Hops: hops,
		})
	}
}

// bfHandleResult merges one device's result at the originator. hops is the
// route length the result travelled.
func (n *node) bfHandleResult(m *resultMsg, hops int) {
	st := n.bf[m.Key]
	if st == nil {
		return
	}
	st.merged = core.Merge(st.merged, m.Tuples)
	qm := n.sc.metrics[m.Key]
	if qm == nil {
		return
	}
	qm.Results++
	qm.ResultTuples = len(st.merged)
	n.sc.trace(TraceEvent{Event: "result", Device: n.dev.ID,
		Org: m.Key.Org, Cnt: m.Key.Cnt, Tuples: len(m.Tuples), Hops: hops})
	n.sc.spans.Observe(spanKey(m.Key), telemetry.Stage{
		T: n.sc.eng.Now(), Kind: telemetry.StageResult,
		Device: int32(m.From), Tuples: len(m.Tuples), Hops: hops,
	})
	if n.sc.p.KeepSkylines {
		qm.Skyline = append([]tuple.Tuple(nil), st.merged...)
	}
	if !qm.Done && qm.Results >= st.quorum {
		n.finishQuery(m.Key, st.merged)
	}
}

// --- depth-first ------------------------------------------------------------

func (n *node) dfStart(q core.Query, res localsky.Result) {
	st := &dfState{
		q:            q,
		parent:       -1,
		tried:        map[radio.NodeID]bool{},
		merged:       res.Skyline,
		flt:          q.Filter,
		fltVDR:       q.FilterVDR,
		waitingChild: -1,
	}
	n.putDF(q.Key(), st)
	if qm := n.sc.metrics[q.Key()]; qm != nil && qm.Done {
		st.done = true // the deadline fired during local processing
		return
	}
	n.dfTryNext(st)
}

func (n *node) putDF(key core.QueryKey, st *dfState) {
	if n.df == nil {
		n.df = make(map[core.QueryKey]*dfState)
	}
	n.df[key] = st
}

// dfTryNext hands the query to the next untried neighbour, or returns the
// merged subtree result when none remain.
func (n *node) dfTryNext(st *dfState) {
	if st.done || st.waitingAck || st.waitingChild >= 0 {
		return
	}
	// NeighborsInto returns IDs in ascending order, which is the traversal
	// order DF wants, and reusing the buffer keeps the per-hop decision
	// allocation-free.
	neighbors := n.sc.med.NeighborsInto(n.id, n.nbBuf)
	n.nbBuf = neighbors[:0]
	next := radio.NodeID(-1)
	for _, nb := range neighbors {
		if !st.tried[nb] {
			next = nb
			break
		}
	}
	if next < 0 {
		n.dfFinish(st)
		return
	}
	st.tried[next] = true
	st.waitingAck = true
	st.gen++
	g := st.gen
	n.sc.net.Send(n.id, next, &dfQueryMsg{Q: st.q.WithFilter(st.flt, st.fltVDR)})
	n.sc.eng.Schedule(n.sc.p.AckTimeout, func() {
		if st.gen == g && st.waitingAck && !st.done {
			st.waitingAck = false
			n.dfTryNext(st)
		}
	})
}

// dfFinish returns the merged result up the reverse path (or completes the
// query at the originator). An originator with retry budget left restarts
// the traversal instead of completing: mobility and recovered nodes may have
// changed the reachable neighbourhood since the exhausted walk began.
func (n *node) dfFinish(st *dfState) {
	key := st.q.Key()
	if st.parent < 0 {
		qm := n.sc.metrics[key]
		if qm != nil && !qm.Done && st.attempts < n.sc.p.QueryRetries && !st.retryPending {
			st.attempts++
			st.retryPending = true
			n.sc.eng.Schedule(n.sc.p.retryDelay(st.attempts-1), func() {
				if st.done || !st.retryPending {
					return
				}
				st.retryPending = false
				if m := n.sc.metrics[key]; m == nil || m.Done {
					return
				}
				n.recordRetry(key, st.attempts)
				clear(st.tried)
				n.dfTryNext(st)
			})
			return
		}
		if st.retryPending {
			// A straggler result re-entered the walk while a restart is
			// scheduled; let the restart decide.
			return
		}
		st.done = true
		n.finishQuery(key, st.merged)
		return
	}
	st.done = true
	n.sc.net.Send(n.id, st.parent, &dfResultMsg{
		Key: key, Tuples: st.merged, Filter: st.flt, FilterVDR: st.fltVDR,
	})
}

// dfHandleQuery runs one receiver's side of a DF hand-off. hops is the
// route length the hand-off travelled (usually 1: DF targets neighbours).
func (n *node) dfHandleQuery(from radio.NodeID, hops int, m *dfQueryMsg) {
	key := m.Q.Key()
	if !n.dev.FirstTime(key) {
		n.sc.net.Send(n.id, from, &dfAckMsg{Key: key, Accept: false})
		return
	}
	n.sc.net.Send(n.id, from, &dfAckMsg{Key: key, Accept: true})
	st := &dfState{
		q:            m.Q,
		parent:       from,
		tried:        map[radio.NodeID]bool{from: true},
		waitingChild: -1,
	}
	n.putDF(key, st)
	res := n.dev.Process(m.Q)
	n.sc.eng.Schedule(n.sc.p.Cost.Time(res.Stats), func() {
		n.sc.observe(key, processOutcome{
			reducedLen: len(res.Skyline),
			unreduced:  res.Unreduced,
			filters:    m.Q.NumFilters(),
			skippedMBR: res.Stats.SkippedMBR,
		})
		n.observeProcess(m.Q, res, hops)
		st.merged = res.Skyline
		st.flt = res.Filter
		st.fltVDR = res.FilterVDR
		n.dfTryNext(st)
	})
}

// dfHandleAck resolves a pending hand-off: accepted children get a subtree
// timer; refusals move on immediately.
func (n *node) dfHandleAck(from radio.NodeID, m *dfAckMsg) {
	st := n.df[m.Key]
	if st == nil || st.done || !st.waitingAck {
		return
	}
	st.waitingAck = false
	st.gen++
	if !m.Accept {
		n.dfTryNext(st)
		return
	}
	st.waitingChild = from
	g := st.gen
	n.sc.eng.Schedule(n.sc.p.SubtreeTimeout, func() {
		if st.gen == g && st.waitingChild == from && !st.done {
			st.waitingChild = -1
			n.dfTryNext(st)
		}
	})
}

// dfHandleResult merges a child's subtree result and continues with the
// remaining neighbours. hops is the route length the result travelled.
func (n *node) dfHandleResult(from radio.NodeID, hops int, m *dfResultMsg) {
	st := n.df[m.Key]
	if st == nil {
		return
	}
	st.merged = core.Merge(st.merged, m.Tuples)
	if st.parent < 0 {
		// Subtree results reaching the originator are DF's result arrivals.
		n.sc.trace(TraceEvent{Event: "result", Device: n.dev.ID,
			Org: m.Key.Org, Cnt: m.Key.Cnt, Tuples: len(m.Tuples), Hops: hops})
		n.sc.spans.Observe(spanKey(m.Key), telemetry.Stage{
			T: n.sc.eng.Now(), Kind: telemetry.StageResult,
			Device: int32(from), Tuples: len(m.Tuples), Hops: hops,
		})
	}
	// Adopt the child's filter when it prunes harder (the backtracking
	// counterpart of the §3.4 dynamic update).
	if n.dev.Dynamic && m.Filter != nil && (st.flt == nil || m.FilterVDR > st.fltVDR) {
		st.flt = m.Filter
		st.fltVDR = m.FilterVDR
	}
	if st.done {
		// A straggler subtree returned after this node already reported:
		// at the originator the late data still improves the final answer;
		// elsewhere it is lost, as in any best-effort MANET protocol.
		if st.parent < 0 {
			if qm := n.sc.metrics[m.Key]; qm != nil {
				qm.ResultTuples = len(st.merged)
				if n.sc.p.KeepSkylines {
					qm.Skyline = append([]tuple.Tuple(nil), st.merged...)
				}
			}
		}
		return
	}
	if st.waitingChild == from {
		st.waitingChild = -1
		st.gen++
	}
	n.dfTryNext(st)
}

// --- dispatch ---------------------------------------------------------------

// onData receives routed unicasts (results, DF control traffic). hops is
// the number of links the payload traversed, supplied by the routing layer.
func (n *node) onData(src radio.NodeID, hops int, payload radio.Payload) {
	switch m := payload.(type) {
	case *resultMsg:
		n.bfHandleResult(m, hops)
	case *dfQueryMsg:
		n.dfHandleQuery(src, hops, m)
	case *dfAckMsg:
		n.dfHandleAck(src, m)
	case *dfResultMsg:
		n.dfHandleResult(src, hops, m)
	case *sfSampleMsg:
		n.sfHandleSample(m, hops)
	case *sfResultMsg:
		n.sfHandleResult(m, hops)
	}
}

// onLocal receives one-hop broadcasts (the BF flood and both SF floods).
func (n *node) onLocal(from radio.NodeID, payload radio.Payload) {
	switch m := payload.(type) {
	case *queryMsg:
		n.bfHandleQuery(m)
	case *sfQueryMsg:
		n.sfHandleQuery(m)
	case *sfFilterMsg:
		n.sfHandleFilter(m)
	}
}
