package manet

import "manetskyline/internal/telemetry"

// simMetrics is the scenario-level telemetry surface, registered next to
// the substrate metrics (radio_*, aodv_*, core_*) when Params.Metrics is
// set. The zero value is the disabled state; increments cost one nil check.
type simMetrics struct {
	// QueriesIssued counts queries actually issued; QueriesSkipped counts
	// issue opportunities dropped because the device was busy (§5.2.1).
	QueriesIssued  *telemetry.Counter
	QueriesSkipped *telemetry.Counter
	// QueriesCompleted counts originators reaching their completion
	// condition (BF quorum or DF neighbour exhaustion).
	QueriesCompleted *telemetry.Counter
	// QueryMessages counts hop-level protocol transmissions attributed to
	// queries (the Figure 12 metric); QueryBytes counts their payload bytes
	// for the per-layer bytes-on-air ledger (telemetry.BytesReport).
	QueryMessages *telemetry.Counter
	QueryBytes    *telemetry.Counter
	// Transfers counts §7 relation hand-offs.
	Transfers *telemetry.Counter
	// QueryRetries counts originator re-issues under the retry policy;
	// QueriesPartial counts queries finalized by their deadline.
	QueryRetries   *telemetry.Counter
	QueriesPartial *telemetry.Counter
	// ResponseTime observes completed queries' response times in
	// simulated seconds (the Figure 8 metric).
	ResponseTime *telemetry.Histogram
	// Recall observes per-query recall against the centralized oracle when
	// Params.Recall is enabled.
	Recall *telemetry.Histogram
}

// responseTimeBuckets spans the simulator's observed range: sub-second DF
// hand-offs on tiny grids up to multi-minute BF floods on dense ones.
func responseTimeBuckets() []float64 {
	return []float64{0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600, 1200}
}

// newSimMetrics registers the scenario metrics in r (nil r ⇒ disabled).
func newSimMetrics(r *telemetry.Registry) simMetrics {
	return simMetrics{
		QueriesIssued:    r.Counter("manet_queries_issued_total", "skyline queries issued by devices"),
		QueriesSkipped:   r.Counter("manet_queries_skipped_total", "issue opportunities skipped while a query was in progress"),
		QueriesCompleted: r.Counter("manet_queries_completed_total", "queries that reached their completion condition"),
		QueryMessages:    r.Counter("manet_query_messages_total", "hop-level protocol transmissions attributed to queries"),
		QueryBytes:       r.Counter("manet_query_bytes_sent_total", "payload bytes of query-attributed transmissions"),
		Transfers:        r.Counter("manet_transfers_total", "relation hand-offs between devices"),
		QueryRetries:     r.Counter("manet_query_retries_total", "originator query re-issues under the retry policy"),
		QueriesPartial:   r.Counter("manet_queries_partial_total", "queries finalized by their deadline with partial results"),
		ResponseTime: r.Histogram("manet_response_time_seconds",
			"completed query response times in simulated seconds", responseTimeBuckets()),
		Recall: r.Histogram("manet_query_recall",
			"per-query recall against the centralized constrained-skyline oracle",
			[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}),
	}
}
