// Package trace merges per-peer span logs from the live TCP runtime into
// causal per-query timelines. Every peer records only its own half of each
// network hop (the sender's write, the receiver's decode — see
// internal/tcp's tracing and telemetry.Stage); this package joins those
// halves across peers into Hop records with per-hop latency, reconstructs
// the flood tree, and finds the critical path that determined the query's
// end-to-end latency. cmd/skytrace is its CLI front end.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"manetskyline/internal/telemetry"
)

// Hop is one frame's journey across one TCP link, joined from the sender's
// write stage and the receiver's decode stage.
type Hop struct {
	// From and To are the sending and receiving devices.
	From int32 `json:"from"`
	To   int32 `json:"to"`
	// Kind is "query" for flood frames and "result" for replies to the
	// originator (inferred from direction: frames to the originator carry
	// results, every other frame forwards the query).
	Kind string `json:"kind"`
	// Num is the TCP hop number the frame carried (1 at the originator).
	Num int `json:"num"`
	// SendT and RecvT are the write and decode timestamps; Latency is
	// their difference. Lost hops (no matching decode) have RecvT 0.
	SendT   float64 `json:"send_t"`
	RecvT   float64 `json:"recv_t,omitempty"`
	Latency float64 `json:"latency,omitempty"`
	// Bytes is the frame's on-wire size.
	Bytes int `json:"bytes"`
	// Lost marks a write that never matched a decode: the frame (or the
	// peer that should have decoded it) died en route.
	Lost bool `json:"lost,omitempty"`
}

// PathStep is one link of a timeline's critical path.
type PathStep struct {
	Hop
	// ArriveT is when this step's frame was decoded (SendT for lost).
	ArriveT float64 `json:"arrive_t"`
}

// Timeline is one query's merged causal record across every peer that saw
// it.
type Timeline struct {
	Org int32 `json:"org"`
	Cnt int32 `json:"cnt"`
	// Start/End/Done/Partial/ResultTuples come from the originator's span.
	Start        float64 `json:"start"`
	End          float64 `json:"end"`
	Done         bool    `json:"done"`
	Partial      bool    `json:"partial,omitempty"`
	ResultTuples int     `json:"result_tuples"`
	// Devices is the number of distinct devices that recorded stages.
	Devices int `json:"devices"`
	// Stages is every stage from every peer, time-ordered.
	Stages []telemetry.Stage `json:"stages"`
	// Hops is every cross-peer hop, ordered by send time.
	Hops []Hop `json:"hops"`
	// Critical is the hop chain that produced the last result to arrive
	// before the query ended — the path that set the query's latency.
	Critical []PathStep `json:"critical,omitempty"`
}

// Duration is End-Start for completed timelines.
func (tl *Timeline) Duration() float64 {
	if !tl.Done {
		return 0
	}
	return tl.End - tl.Start
}

// ReadSpansJSONL decodes one peer's /trace.jsonl dump.
func ReadSpansJSONL(r io.Reader) ([]*telemetry.Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var out []*telemetry.Span
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		sp := &telemetry.Span{}
		if err := json.Unmarshal(sc.Bytes(), sp); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// stageRank orders same-timestamp stages causally for deterministic merges.
var stageRank = map[string]int{
	telemetry.StageIssue:    0,
	telemetry.StageEnqueue:  1,
	telemetry.StageDial:     2,
	telemetry.StageWrite:    3,
	telemetry.StageDecode:   4,
	telemetry.StageHandle:   5,
	telemetry.StageProcess:  6,
	telemetry.StageReply:    7,
	telemetry.StageResult:   8,
	telemetry.StageRetry:    9,
	telemetry.StageComplete: 10,
}

// Merge joins spans collected from many peers into one Timeline per query,
// ordered by (org, cnt). Spans with the same key are concatenated: the
// originator's span contributes the issue/complete bracket, every other
// peer's auto-opened span contributes its transport stages.
func Merge(spans []*telemetry.Span) []*Timeline {
	byKey := map[[2]int32]*Timeline{}
	var order [][2]int32
	for _, sp := range spans {
		if sp == nil {
			continue
		}
		k := [2]int32{sp.Org, sp.Cnt}
		tl := byKey[k]
		if tl == nil {
			tl = &Timeline{Org: sp.Org, Cnt: sp.Cnt}
			byKey[k] = tl
			order = append(order, k)
		}
		tl.Stages = append(tl.Stages, sp.Stages...)
		// The originator's span is the one holding the issue stage; it
		// carries the authoritative bracket.
		for _, st := range sp.Stages {
			if st.Kind == telemetry.StageIssue {
				tl.Start = sp.Start
				tl.End = sp.End
				tl.Done = sp.Done
				tl.Partial = sp.Partial
				tl.ResultTuples = sp.ResultTuples
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i][0] != order[j][0] {
			return order[i][0] < order[j][0]
		}
		return order[i][1] < order[j][1]
	})
	out := make([]*Timeline, 0, len(order))
	for _, k := range order {
		tl := byKey[k]
		finish(tl)
		out = append(out, tl)
	}
	return out
}

// finish sorts a timeline's stages, joins hops, and derives aggregates.
func finish(tl *Timeline) {
	sort.SliceStable(tl.Stages, func(i, j int) bool {
		a, b := tl.Stages[i], tl.Stages[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		return stageRank[a.Kind] < stageRank[b.Kind]
	})
	devs := map[int32]bool{}
	for _, st := range tl.Stages {
		devs[st.Device] = true
	}
	tl.Devices = len(devs)
	tl.Hops = joinHops(tl)
	tl.Critical = criticalPath(tl)
}

// joinHops pairs write stages with decode stages per (from, to) link. One
// TCP link delivers frames in order, so the k-th write on a link matches
// the k-th decode on the same link — queue semantics, no frame IDs needed.
func joinHops(tl *Timeline) []Hop {
	type link struct{ from, to int32 }
	writes := map[link][]telemetry.Stage{}
	decodes := map[link][]telemetry.Stage{}
	for _, st := range tl.Stages {
		switch st.Kind {
		case telemetry.StageWrite:
			l := link{from: st.Device, to: st.Peer}
			writes[l] = append(writes[l], st)
		case telemetry.StageDecode:
			l := link{from: st.Peer, to: st.Device}
			decodes[l] = append(decodes[l], st)
		}
	}
	var hops []Hop
	for l, ws := range writes {
		ds := decodes[l]
		for i, w := range ws {
			h := Hop{
				From: l.from, To: l.to, Num: w.Hops, SendT: w.T, Bytes: w.Bytes,
				Kind: "query",
			}
			if l.to == tl.Org {
				h.Kind = "result"
			}
			if i < len(ds) {
				h.RecvT = ds[i].T
				h.Latency = h.RecvT - h.SendT
			} else {
				h.Lost = true
			}
			hops = append(hops, h)
		}
	}
	sort.SliceStable(hops, func(i, j int) bool {
		a, b := hops[i], hops[j]
		if a.SendT != b.SendT {
			return a.SendT < b.SendT
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return hops
}

// criticalPath reconstructs the hop chain behind the last result that
// arrived within the query window: the query's flood path to that device,
// plus its reply hop. This is the path whose latency the originator felt.
func criticalPath(tl *Timeline) []PathStep {
	// Last result hop that arrived (End == 0 means the originator span is
	// missing; fall back to the last arrival overall).
	var last *Hop
	for i := range tl.Hops {
		h := &tl.Hops[i]
		if h.Kind != "result" || h.Lost {
			continue
		}
		if tl.Done && tl.End > 0 && h.RecvT > tl.End {
			continue
		}
		if last == nil || h.RecvT > last.RecvT {
			last = h
		}
	}
	if last == nil {
		return nil
	}
	// firstQuery[d] is the query hop that first delivered the flood to d —
	// the tree edge along which d joined the query.
	firstQuery := map[int32]Hop{}
	for _, h := range tl.Hops {
		if h.Kind != "query" || h.Lost {
			continue
		}
		if prev, ok := firstQuery[h.To]; !ok || h.RecvT < prev.RecvT {
			firstQuery[h.To] = h
		}
	}
	// Walk back from the replying device to the originator.
	var chain []PathStep
	for at := last.From; at != tl.Org; {
		h, ok := firstQuery[at]
		if !ok {
			break // incomplete records (peer died before dumping)
		}
		chain = append(chain, PathStep{Hop: h, ArriveT: h.RecvT})
		if h.From == at { // defensive: malformed self-loop
			break
		}
		at = h.From
		if len(chain) > len(tl.Hops) {
			break // cycle guard
		}
	}
	// Reverse into origin→device order, then append the reply hop.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	chain = append(chain, PathStep{Hop: *last, ArriveT: last.RecvT})
	return chain
}
