package trace

import (
	"fmt"
	"io"

	"manetskyline/internal/stats"
)

// WriteReport renders merged timelines as a deterministic human-readable
// report: one block per query with its hop table, per-hop latency
// percentiles, and the critical path. Times are printed relative to each
// query's start so reports are readable (and goldens stable) regardless of
// the absolute clock.
func WriteReport(w io.Writer, tls []*Timeline) error {
	for i, tl := range tls {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := writeTimeline(w, tl); err != nil {
			return err
		}
	}
	return nil
}

func writeTimeline(w io.Writer, tl *Timeline) error {
	status := "incomplete"
	switch {
	case tl.Done && tl.Partial:
		status = "partial"
	case tl.Done:
		status = "complete"
	}
	dur := ""
	if tl.Done {
		dur = fmt.Sprintf(" in %s", ms(tl.Duration()))
	}
	if _, err := fmt.Fprintf(w, "query %d/%d: %s%s, %d devices, %d hops, %d result tuples\n",
		tl.Org, tl.Cnt, status, dur, tl.Devices, len(tl.Hops), tl.ResultTuples); err != nil {
		return err
	}
	base := tl.Start
	if base == 0 && len(tl.Hops) > 0 {
		base = tl.Hops[0].SendT
	}
	var lats []float64
	for _, h := range tl.Hops {
		if !h.Lost {
			lats = append(lats, h.Latency)
		}
		lost := ""
		if h.Lost {
			lost = "  LOST"
		}
		lat := "      -"
		if !h.Lost {
			lat = fmt.Sprintf("%7s", ms(h.Latency))
		}
		if _, err := fmt.Fprintf(w, "  hop %2d %-6s %3d -> %-3d  sent +%s  lat %s  %dB%s\n",
			h.Num, h.Kind, h.From, h.To, ms(h.SendT-base), lat, h.Bytes, lost); err != nil {
			return err
		}
	}
	if len(lats) > 0 {
		if _, err := fmt.Fprintf(w, "  per-hop latency: p50 %s  p95 %s  max %s\n",
			ms(stats.Percentile(lats, 50)), ms(stats.Percentile(lats, 95)),
			ms(stats.Percentile(lats, 100))); err != nil {
			return err
		}
	}
	if len(tl.Critical) > 0 {
		total := tl.Critical[len(tl.Critical)-1].ArriveT - base
		if _, err := fmt.Fprintf(w, "  critical path (%s):", ms(total)); err != nil {
			return err
		}
		for i, st := range tl.Critical {
			sep := " "
			if i > 0 {
				sep = " -> "
			}
			if _, err := fmt.Fprintf(w, "%s%d-%d(+%s)", sep, st.From, st.To, ms(st.ArriveT-base)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// ms renders a duration in seconds as fixed-point milliseconds.
func ms(secs float64) string {
	return fmt.Sprintf("%.2fms", secs*1e3)
}
