package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"manetskyline/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// threePeerSpans builds the per-peer span logs of one query flooding a
// 0—1—2 line: deterministic timestamps, every stage both ends of every hop
// would record. This is the synthetic equivalent of three /trace.jsonl
// dumps.
func threePeerSpans() []*telemetry.Span {
	k := telemetry.SpanKey{Org: 0, Cnt: 1}
	org := telemetry.NewSpanLog()
	org.Begin(k, 0)
	org.Observe(k, telemetry.Stage{T: 0.0001, Kind: telemetry.StageEnqueue, Device: 0, Peer: 1, Hops: 1, Bytes: 54})
	org.Observe(k, telemetry.Stage{T: 0.0005, Kind: telemetry.StageWrite, Device: 0, Peer: 1, Hops: 1, Bytes: 54})
	org.Observe(k, telemetry.Stage{T: 0.0050, Kind: telemetry.StageDecode, Device: 0, Peer: 1, Hops: 1, Bytes: 80})
	org.Observe(k, telemetry.Stage{T: 0.0051, Kind: telemetry.StageResult, Device: 0, Peer: 1})
	org.Observe(k, telemetry.Stage{T: 0.0090, Kind: telemetry.StageDecode, Device: 0, Peer: 2, Hops: 2, Bytes: 90})
	org.Observe(k, telemetry.Stage{T: 0.0091, Kind: telemetry.StageResult, Device: 0, Peer: 2})
	org.Complete(k, 0.0095, 12)

	relay := telemetry.NewSpanLog()
	relay.ObserveAuto(k, telemetry.Stage{T: 0.0020, Kind: telemetry.StageDecode, Device: 1, Peer: 0, Hops: 1, Bytes: 54})
	relay.ObserveAuto(k, telemetry.Stage{T: 0.0021, Kind: telemetry.StageHandle, Device: 1, Peer: 0, Hops: 1})
	relay.ObserveAuto(k, telemetry.Stage{T: 0.0025, Kind: telemetry.StageReply, Device: 1, Peer: 0, Hops: 1, Bytes: 80})
	relay.ObserveAuto(k, telemetry.Stage{T: 0.0030, Kind: telemetry.StageWrite, Device: 1, Peer: 0, Hops: 1, Bytes: 80})
	relay.ObserveAuto(k, telemetry.Stage{T: 0.0032, Kind: telemetry.StageWrite, Device: 1, Peer: 2, Hops: 2, Bytes: 60})

	far := telemetry.NewSpanLog()
	far.ObserveAuto(k, telemetry.Stage{T: 0.0062, Kind: telemetry.StageDecode, Device: 2, Peer: 1, Hops: 2, Bytes: 60})
	far.ObserveAuto(k, telemetry.Stage{T: 0.0063, Kind: telemetry.StageHandle, Device: 2, Peer: 1, Hops: 2})
	far.ObserveAuto(k, telemetry.Stage{T: 0.0070, Kind: telemetry.StageWrite, Device: 2, Peer: 0, Hops: 2, Bytes: 90})

	var spans []*telemetry.Span
	spans = append(spans, org.Spans()...)
	spans = append(spans, relay.Spans()...)
	spans = append(spans, far.Spans()...)
	return spans
}

func TestMergeJoinsHops(t *testing.T) {
	tls := Merge(threePeerSpans())
	if len(tls) != 1 {
		t.Fatalf("timelines = %d, want 1", len(tls))
	}
	tl := tls[0]
	if tl.Org != 0 || tl.Cnt != 1 || !tl.Done || tl.ResultTuples != 12 {
		t.Fatalf("timeline header = %+v", tl)
	}
	if tl.Devices != 3 {
		t.Errorf("devices = %d, want 3", tl.Devices)
	}
	if len(tl.Hops) != 4 {
		t.Fatalf("hops = %d, want 4: %+v", len(tl.Hops), tl.Hops)
	}
	// Hops in send order: 0→1 query, 1→0 result, 1→2 query, 2→0 result.
	type want struct {
		from, to int32
		kind     string
		lat      float64
	}
	wants := []want{
		{0, 1, "query", 0.0015},
		{1, 0, "result", 0.0020},
		{1, 2, "query", 0.0030},
		{2, 0, "result", 0.0020},
	}
	for i, wnt := range wants {
		h := tl.Hops[i]
		if h.From != wnt.from || h.To != wnt.to || h.Kind != wnt.kind || h.Lost {
			t.Errorf("hop %d = %+v, want %+v", i, h, wnt)
		}
		if diff := h.Latency - wnt.lat; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("hop %d latency = %g, want %g", i, h.Latency, wnt.lat)
		}
	}
	// Critical path: flood 0→1→2, reply 2→0.
	if len(tl.Critical) != 3 {
		t.Fatalf("critical path = %+v, want 3 steps", tl.Critical)
	}
	cp := tl.Critical
	if cp[0].From != 0 || cp[0].To != 1 || cp[1].From != 1 || cp[1].To != 2 ||
		cp[2].From != 2 || cp[2].To != 0 || cp[2].Kind != "result" {
		t.Errorf("critical path = %+v", cp)
	}
}

func TestMergeLostHop(t *testing.T) {
	k := telemetry.SpanKey{Org: 3, Cnt: 0}
	l := telemetry.NewSpanLog()
	l.Begin(k, 0)
	l.Observe(k, telemetry.Stage{T: 0.001, Kind: telemetry.StageWrite, Device: 3, Peer: 4, Hops: 1, Bytes: 40})
	tls := Merge(l.Spans())
	if len(tls) != 1 || len(tls[0].Hops) != 1 {
		t.Fatalf("timelines = %+v", tls)
	}
	h := tls[0].Hops[0]
	if !h.Lost || h.RecvT != 0 {
		t.Errorf("unmatched write should be a lost hop: %+v", h)
	}
	if tls[0].Critical != nil {
		t.Errorf("no result arrived, critical path should be empty: %+v", tls[0].Critical)
	}
}

func TestReadSpansJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	log := telemetry.NewSpanLog()
	log.Begin(telemetry.SpanKey{Org: 9, Cnt: 2}, 1.5)
	log.Complete(telemetry.SpanKey{Org: 9, Cnt: 2}, 2.5, 3)
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpansJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Org != 9 || got[0].End != 2.5 || !got[0].Done {
		t.Fatalf("round trip = %+v", got[0])
	}
}

// TestMergedReportGolden pins the merged skytrace report byte-for-byte:
// the three-peer scenario above must always render the same timeline,
// hop table, and critical path. Regenerate with -update.
func TestMergedReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, Merge(threePeerSpans())); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "merged_report.golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("merged report drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
