package bench

import (
	"fmt"

	"manetskyline/internal/manet"
	"manetskyline/internal/skyline"
	"manetskyline/internal/stats"
	"manetskyline/internal/tuple"
)

// AblationRedistribution evaluates the §7 mobility extension: with devices
// roaming under random waypoint, how much of the true constrained skyline
// do completed queries recover (recall), with and without periodic
// relation hand-offs to devices closer to the data's region?
func AblationRedistribution(sc Scale) []*Table {
	p := sc.params()
	t := &Table{
		ID: "ablation-redistribution",
		Title: fmt.Sprintf("relation redistribution under mobility (%d tuples, %d×%d grid, d=250, BF)",
			p.SimCard, p.SimGrid, p.SimGrid),
		Columns: []string{"redistribute", "recall", "completion", "respTime", "transfers"},
	}
	// The off/on scenarios are independent seeded runs; evaluate both on
	// the worker pool and emit rows in the fixed off-then-on order.
	type outcome struct {
		recall, completion, resp float64
		transfers                int
	}
	outcomes := make([]outcome, 2)
	forEach(2, func(i int) {
		redist := i == 1
		mp := manet.DefaultParams()
		mp.Grid = p.SimGrid
		mp.GlobalN = p.SimCard
		mp.Dim = 2
		mp.QueryDist = 250
		mp.SimTime = p.SimTime
		mp.MinQueries, mp.MaxQueries = p.MinQueries, p.MaxQueries
		mp.Seed = p.Seed
		mp.KeepSkylines = true
		mp.Redistribute = redist
		out := manet.Run(mp)

		// Ground truth is the constrained skyline over the (invariant)
		// global relation.
		var global []tuple.Tuple
		seen := map[[2]float64]bool{}
		for _, ts := range out.DeviceTuples {
			for _, tp := range ts {
				k := [2]float64{tp.X, tp.Y}
				if !seen[k] {
					seen[k] = true
					global = append(global, tp)
				}
			}
		}
		var recalls []float64
		for _, q := range out.Queries {
			if !q.Done {
				continue
			}
			truth := skyline.Constrained(global, q.Pos, q.D)
			if len(truth) == 0 {
				continue
			}
			hit := 0
			for _, want := range truth {
				if skyline.Contains(q.Skyline, want) {
					hit++
				}
			}
			recalls = append(recalls, float64(hit)/float64(len(truth)))
		}
		resp, _ := out.MeanResponseTime()
		outcomes[i] = outcome{stats.Mean(recalls), out.CompletionRate(), resp, out.Transfers}
	})
	for i, label := range []string{"off", "on"} {
		o := outcomes[i]
		t.AddRow(label, o.recall, o.completion, o.resp, o.transfers)
	}
	return []*Table{t}
}
