package bench

import (
	"fmt"

	"manetskyline/internal/manet"
	"manetskyline/internal/telemetry"
)

// The three-strategies head-to-head: BF, DF, and SF on the same mobile
// scenario, comparing what each strategy actually costs on the air. Unlike
// the Figure 8-12 sweeps (which predate SF and stay byte-identical to the
// paper's BF/DF series), this experiment exists to answer the SF question
// directly: does the sampling round pay for itself?

// strategyContenders is the comparison order of every head-to-head table.
var strategyContenders = []manet.Forwarding{
	manet.BreadthFirst, manet.DepthFirst, manet.SamplingFilter,
}

// strategyScenario is the shared scenario of one head-to-head row set: the
// paper's largest network (10×10 grid at default scale) under random
// waypoint mobility, one query per device.
func strategyScenario(sc Scale, strategy manet.Forwarding) manet.Params {
	p := manet.DefaultParams()
	p.Strategy = strategy
	p.MinQueries, p.MaxQueries = 1, 1
	p.Seed = 11
	switch sc {
	case Small:
		p.Grid = 5
		p.GlobalN = 4000
		p.SimTime = 300
	case Paper:
		p.Grid = 10
		p.GlobalN = 50000
		p.SimTime = 1200
	default:
		p.Grid = 10
		p.GlobalN = 10000
		p.SimTime = 600
	}
	return p
}

type strategyPoint struct {
	queryBytes int64
	queries    int
	msgs       float64
	resp       float64
	respOK     bool
	done       float64
	recall     float64
	recallOK   bool
}

func runStrategyPoint(p manet.Params) strategyPoint {
	p.Metrics = telemetry.NewRegistry()
	out := manet.Run(p)
	resp, respOK := out.MeanResponseTime()
	pt := strategyPoint{
		queryBytes: p.Metrics.Counter("manet_query_bytes_sent_total", "").Value(),
		queries:    len(out.Queries),
		msgs:       out.MeanMessages(),
		resp:       resp,
		respOK:     respOK,
		done:       out.CompletionRate(),
	}
	if out.RecallComputed {
		pt.recall, pt.recallOK = out.MeanRecall()
	}
	return pt
}

// Strategies runs the head-to-head: a fault-free cost table (bytes on air,
// messages, latency) and a 5% frame-loss robustness table (recall against
// the centralized oracle, with the retry policy of the recall gates).
func Strategies(sc Scale) []*Table {
	type job struct {
		lossy bool
		pt    strategyPoint
	}
	jobs := make([]job, 0, 2*len(strategyContenders))
	for _, lossy := range []bool{false, true} {
		for range strategyContenders {
			jobs = append(jobs, job{lossy: lossy})
		}
	}
	forEach(len(jobs), func(i int) {
		strategy := strategyContenders[i%len(strategyContenders)]
		p := strategyScenario(sc, strategy)
		if jobs[i].lossy {
			p.Radio.Loss = 0.05
			p.Recall = true
			p.QueryRetries = 3
			p.RetryBackoff = 10
			p.RetryBackoffMax = 60
		}
		jobs[i].pt = runStrategyPoint(p)
	})

	ref := strategyScenario(sc, manet.BreadthFirst)
	cost := &Table{
		ID: "strategies-cost",
		Title: fmt.Sprintf("three strategies head-to-head: fault-free cost (%d devices, %d tuples, %gs, mobile)",
			ref.NumDevices(), ref.GlobalN, ref.SimTime),
		Columns: []string{"strategy", "query bytes on air", "bytes/query", "msgs/query", "resp (s)", "completion"},
	}
	loss := &Table{
		ID: "strategies-loss",
		Title: fmt.Sprintf("three strategies head-to-head: 5%% frame loss, 3 retries (%d devices, %d tuples)",
			ref.NumDevices(), ref.GlobalN),
		Columns: []string{"strategy", "mean recall", "completion", "query bytes on air"},
	}
	for i, strategy := range strategyContenders {
		pt := jobs[i].pt
		perQuery := int64(0)
		if pt.queries > 0 {
			perQuery = pt.queryBytes / int64(pt.queries)
		}
		resp := any("n/a")
		if pt.respOK {
			resp = pt.resp
		}
		cost.AddRow(strategy.String(), pt.queryBytes, perQuery, pt.msgs, resp, pt.done)

		lp := jobs[len(strategyContenders)+i].pt
		rec := any("n/a")
		if lp.recallOK {
			rec = lp.recall
		}
		loss.AddRow(strategy.String(), rec, lp.done, lp.queryBytes)
	}
	return []*Table{cost, loss}
}
