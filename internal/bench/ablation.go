package bench

import (
	"fmt"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
	"manetskyline/internal/localsky"
	"manetskyline/internal/storage"
	"manetskyline/internal/tuple"
)

// AblationStorage quantifies the §4.1 storage-model arguments the paper
// makes only in prose: local skyline evaluation time and memory footprint
// across flat, hybrid, domain, and ring storage. Hybrid should win on time
// (ID comparisons + presort) while staying close to domain storage's size;
// ring pays its value-walk on every comparison.
//
// This ablation (like AblationSpatialIndex and AblationBaselines) measures
// host wall time, so its points deliberately stay serial rather than using
// the worker pool: co-running the timed sections would contaminate them.
func AblationStorage(sc Scale) []*Table {
	p := sc.params()
	n := p.F5DimCard
	t := &Table{
		ID:      "ablation-storage",
		Title:   fmt.Sprintf("storage models: skyline time (host ms) and size (KiB) at %d tuples, 2 attrs", n),
		Columns: []string{"model", "time-IN", "time-AC", "KiB"},
	}
	for _, model := range []string{"flat", "hybrid", "domain", "ring"} {
		var timeMS [2]float64
		var kib float64
		for di, dist := range []gen.Distribution{gen.Independent, gen.AntiCorrelated} {
			data := gen.Generate(gen.HandheldConfig(n, 2, dist, p.Seed))
			var rel storage.Relation
			switch model {
			case "flat":
				rel = storage.NewFlat(data)
			case "hybrid":
				rel = storage.NewHybrid(data)
			case "domain":
				rel = storage.NewDomain(data)
			case "ring":
				rel = storage.NewRing(data)
			}
			t0 := time.Now()
			if h, ok := rel.(*storage.Hybrid); ok {
				localsky.HybridSkyline(h, localsky.Query{}, nil, nil)
			} else {
				localsky.BNLSkyline(rel, localsky.Query{}, nil, nil)
			}
			timeMS[di] = time.Since(t0).Seconds() * 1e3
			kib = float64(rel.MemBytes()) / 1024
		}
		t.AddRow(model, timeMS[0], timeMS[1], kib)
	}
	return []*Table{t}
}

// AblationMultiFilter evaluates the paper's §7 future-work idea with the
// live protocol: devices originate queries carrying k filtering tuples
// chosen by greedy dominating-region coverage, Formula 1 charges k shipped
// tuples per device, and the static pre-test measures the resulting data
// reduction rate for k = 1..5.
func AblationMultiFilter(sc Scale) []*Table {
	p := sc.params()
	t := &Table{
		ID:      "ablation-multifilter",
		Title:   fmt.Sprintf("multi-filter extension: protocol DRR vs. filter count (%d tuples, %d×%d grid, 2 attrs)", p.StaticCard, p.StaticGrid, p.StaticGrid),
		Columns: []string{"filters", "DRR-IN", "DRR-AC"},
	}
	drrFor := func(dist gen.Distribution, k int) float64 {
		cfg := gen.DefaultConfig(p.StaticCard, 2, dist, p.Seed)
		data := gen.Generate(cfg)
		parts := gen.GridPartition(data, p.StaticGrid, cfg.Space)
		devs := make([]*core.Device, len(parts))
		for i, part := range parts {
			devs[i] = core.NewDevice(core.DeviceID(i), part, cfg.Schema(), core.Under, true)
			devs[i].NumFilters = k
		}
		outs := core.RunStaticAllOpt(devs, p.StaticGrid, core.StaticOptions{SkipAssembly: true})
		var acc core.DRRAccumulator
		for _, o := range outs {
			acc.Add(o.Acc)
		}
		return acc.DRR()
	}
	// Ten independent (k × distribution) protocol runs, fanned out over the
	// worker pool and collected positionally.
	ks := []int{1, 2, 3, 4, 5}
	drrs := make([][2]float64, len(ks))
	forEach(2*len(ks), func(i int) {
		ki, di := i/2, i%2
		dist := gen.Independent
		if di == 1 {
			dist = gen.AntiCorrelated
		}
		drrs[ki][di] = drrFor(dist, ks[ki])
	})
	for i, k := range ks {
		t.AddRow(k, drrs[i][0], drrs[i][1])
	}
	return []*Table{t}
}

// AblationSpatialIndex quantifies the beyond-the-paper spatial bucket grid:
// local constrained-skyline time with the Figure 4 sequential scan versus
// the grid-backed candidate enumeration, across query distances. The gain
// is largest for selective ranges and vanishes (by design: the index falls
// back to the scan) when the range covers the whole relation.
func AblationSpatialIndex(sc Scale) []*Table {
	p := sc.params()
	n := p.F5DimCard
	data := gen.Generate(gen.DefaultConfig(n, 2, gen.Independent, p.Seed))
	rel := storage.NewHybrid(data)
	center := tuple.Point{X: 500, Y: 500}
	t := &Table{
		ID:      "ablation-spatialindex",
		Title:   fmt.Sprintf("spatial bucket grid vs. sequential scan (%d tuples, 2 attrs, host µs)", n),
		Columns: []string{"distance", "scan-us", "index-us", "scan-visited", "index-visited"},
	}
	for _, d := range []float64{50, 100, 250, 500, 1500} {
		t0 := time.Now()
		plain := localsky.HybridSkyline(rel, localsky.Query{Pos: center, D: d}, nil, nil)
		scanUS := float64(time.Since(t0).Microseconds())
		t0 = time.Now()
		idx := localsky.HybridSkyline(rel, localsky.Query{Pos: center, D: d, SpatialIndex: true}, nil, nil)
		idxUS := float64(time.Since(t0).Microseconds())
		t.AddRow(d, scanUS, idxUS, plain.Stats.Scanned, idx.Stats.Scanned)
	}
	return []*Table{t}
}
