package bench

import (
	"fmt"
	"time"

	"manetskyline/internal/gen"
	"manetskyline/internal/skyline"
	"manetskyline/internal/tuple"
)

// AblationBaselines races every centralized skyline algorithm in the
// repository — the paper's §6 related-work lineup — on one dataset per
// distribution: BNL and D&C (Börzsönyi et al.), SFS (Chomicki et al.),
// the O(n log n) 2-D sort, Bitmap and Index (Tan et al.), NN (Kossmann et
// al.), and BBS over an R-tree (Papadias et al.). BBS is reported twice: including and excluding index
// construction, since the index is normally amortized.
func AblationBaselines(sc Scale) []*Table {
	p := sc.params()
	n := p.F5DimCard
	t := &Table{
		ID:      "ablation-baselines",
		Title:   fmt.Sprintf("centralized skyline algorithms (host ms, %d tuples, 2 attrs)", n),
		Columns: []string{"algorithm", "IN", "AC", "skyline-IN", "skyline-AC"},
	}

	type algo struct {
		name string
		run  func([]tuple.Tuple) []tuple.Tuple
	}
	algos := []algo{
		{"BNL", skyline.BNL},
		{"SFS", skyline.SFS},
		{"D&C", skyline.DivideAndConquer},
		{"Sort2D", skyline.Sort2D},
		{"Bitmap", skyline.Bitmap},
		{"Index", skyline.Index},
		{"NN", skyline.NN},
		{"BBS(+build)", skyline.BBS},
	}

	datasets := map[gen.Distribution][]tuple.Tuple{}
	for _, dist := range []gen.Distribution{gen.Independent, gen.AntiCorrelated} {
		datasets[dist] = gen.Generate(gen.DefaultConfig(n, 2, dist, p.Seed))
	}

	for _, a := range algos {
		var ms [2]float64
		var sizes [2]int
		for di, dist := range []gen.Distribution{gen.Independent, gen.AntiCorrelated} {
			start := time.Now()
			sky := a.run(datasets[dist])
			ms[di] = time.Since(start).Seconds() * 1e3
			sizes[di] = len(sky)
		}
		t.AddRow(a.name, ms[0], ms[1], sizes[0], sizes[1])
	}

	// BBS with the index built ahead of time.
	var ms [2]float64
	var sizes [2]int
	for di, dist := range []gen.Distribution{gen.Independent, gen.AntiCorrelated} {
		tree := skyline.BuildAttrTree(datasets[dist])
		start := time.Now()
		sky := skyline.BBSOnTree(datasets[dist], tree)
		ms[di] = time.Since(start).Seconds() * 1e3
		sizes[di] = len(sky)
	}
	t.AddRow("BBS(indexed)", ms[0], ms[1], sizes[0], sizes[1])
	return []*Table{t}
}
