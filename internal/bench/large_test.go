package bench

import (
	"os"
	"testing"

	"manetskyline/internal/manet"
)

func TestScenarioLargeGeometry(t *testing.T) {
	p := ScenarioLarge(LargeConfig{Nodes: 1000, Strategy: manet.BreadthFirst})
	if p.Grid != 32 || p.NumDevices() != 1024 {
		t.Fatalf("1000 nodes → grid %d (%d devices), want 32 (1024)", p.Grid, p.NumDevices())
	}
	if p.Space != largeCellSide*32 {
		t.Fatalf("space %g, want %g", p.Space, largeCellSide*32)
	}
	if p.Mobility.Space != p.Space {
		t.Fatalf("mobility space %g diverges from field %g", p.Mobility.Space, p.Space)
	}
	if !p.CompactMobility || !p.FloodRoutes || p.Radio.LinkQueue <= 0 {
		t.Fatal("scale knobs not engaged")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid params: %v", err)
	}
}

func TestRunLargeSmall(t *testing.T) {
	for _, s := range []manet.Forwarding{manet.BreadthFirst, manet.DepthFirst} {
		r := RunLarge(LargeConfig{Nodes: 400, Strategy: s, SimTime: 120})
		if r.Devices != 400 {
			t.Fatalf("%v: devices %d, want 400", s, r.Devices)
		}
		if r.Events == 0 || r.EventsPerSec <= 0 {
			t.Fatalf("%v: no events executed (%+v)", s, r)
		}
		if r.Queries == 0 || r.Completed == 0 {
			t.Fatalf("%v: queries %d completed %d — scale scenario inert", s, r.Queries, r.Completed)
		}
		if r.FramesSent == 0 {
			t.Fatalf("%v: radio idle", s)
		}
		if r.Report() == "" {
			t.Fatalf("%v: empty report", s)
		}
	}
}

// TestScaleSmoke30k is the CI scale gate: a 30k-node breadth-first run must
// finish inside the job's time budget and sustain a minimum event
// throughput. Gated behind SCALE_SMOKE=1 so routine `go test ./...` stays
// fast.
func TestScaleSmoke30k(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") == "" {
		t.Skip("set SCALE_SMOKE=1 to run the 30k-node smoke test")
	}
	r := RunLarge(LargeConfig{Nodes: 30000, Strategy: manet.BreadthFirst, SimTime: 300})
	t.Logf("\n%s", r.Report())
	if r.Devices < 30000 {
		t.Fatalf("devices %d < 30000", r.Devices)
	}
	if r.Completed == 0 {
		t.Fatal("no queries completed at 30k nodes")
	}
	// Throughput floor: the struct-of-arrays engine clears well over a
	// million events/sec on developer hardware; 200k/sec catches an
	// order-of-magnitude regression without flaking on slow CI runners.
	if r.EventsPerSec < 200_000 {
		t.Fatalf("throughput %.0f events/sec below the 200k floor", r.EventsPerSec)
	}
}
