// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§5) as text tables and optional CSV
// files, at three scales — Small for CI and Go benchmarks, Default for a
// laptop-scale full reproduction, and Paper for the original Table 6
// parameter space.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Table is one experiment's output: a titled grid whose first column is the
// swept parameter and whose remaining columns are the series the paper
// plots.
type Table struct {
	// ID names the artifact ("fig5a", "fig6b", ...).
	ID string
	// Title describes the table in the paper's terms.
	Title string
	// Columns holds the header row.
	Columns []string
	// Rows holds formatted cells; each row has len(Columns) entries.
	Rows [][]string
}

// AddRow appends a row of cells, formatting floats with %g-style trimming.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	if len(row) != len(t.Columns) {
		panic(fmt.Sprintf("bench: row has %d cells, table %s has %d columns", len(row), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, row)
}

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteCSV writes the table as <dir>/<id>.csv.
func (t *Table) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Emit renders tables to w and, when csvDir is non-empty, to CSV files.
func Emit(w io.Writer, csvDir string, tables ...*Table) error {
	for _, t := range tables {
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
		if csvDir != "" {
			if err := t.WriteCSV(csvDir); err != nil {
				return err
			}
		}
	}
	return nil
}
