package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"manetskyline/internal/gen"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden sweep tables")

// TestFig8Fig12Golden extends the PR 1 determinism gate across PRs: the
// fig8 DRR tables and the fig12 message-count table at Small scale must be
// byte-identical to the golden files captured before the simulation fast
// path (spatial neighbor grid, value-heap scheduler, cached mobility)
// landed — at every worker count. Regenerate with `go test -run
// TestFig8Fig12Golden ./internal/bench -update` only when an intentional
// semantic change to the simulation is being made.
func TestFig8Fig12Golden(t *testing.T) {
	goldens := map[string][]byte{}
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			drr, _, msgs := simFiguresFresh(Small, gen.Independent, "fig8", "fig10")
			goldens["fig8-small.golden"] = renderAll(t, drr)
			goldens["fig12-small.golden"] = renderAll(t, []*Table{msgs})
		})
		for name, got := range goldens {
			path := filepath.Join("testdata", name)
			if *updateGolden {
				if w > 1 {
					continue // goldens come from the serial run
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("workers=%d: %s diverged from pre-fast-path output:\ngot:\n%s\nwant:\n%s",
					w, name, got, want)
			}
		}
	}
}
