package bench

import "fmt"

// Scale selects how much of the Table 6 parameter space an experiment
// sweeps.
type Scale int

const (
	// Small runs in seconds; used by unit tests and testing.B benchmarks.
	Small Scale = iota
	// Default reproduces every figure's shape at laptop scale in minutes.
	Default
	// Paper sweeps the full Table 6 space (100K-1M tuples, 9-100 devices).
	Paper
)

// ParseScale maps a flag value to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return Small, nil
	case "default", "":
		return Default, nil
	case "paper":
		return Paper, nil
	default:
		return 0, fmt.Errorf("bench: unknown scale %q (small|default|paper)", s)
	}
}

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Default:
		return "default"
	case Paper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// params is the concrete sweep specification for one scale.
type params struct {
	// Figure 5 (local processing on the handheld).
	F5Cards   []int // cardinality sweep at 2 attributes
	F5DimCard int   // cardinality for the dimensionality sweep
	F5Dims    []int

	// Figures 6-7 (static pre-tests).
	StaticCards []int // cardinality sweep, 5×5 grid, 2 attributes
	StaticCard  int   // fixed cardinality for dim and device sweeps
	StaticDims  []int
	StaticGrids []int // grid side lengths (devices = g²)
	StaticGrid  int   // fixed grid side

	// Figures 8-12 (MANET simulation).
	SimCards []int
	SimCard  int
	// SimDimCard is the cardinality for the dimensionality sweep; smaller
	// than SimCard at default scale because anti-correlated 5-D skylines
	// approach the whole dataset and depth-first forwarding then pays a
	// quadratic merge on every backtrack hop (the very effect Figures
	// 10(b)/11(b) report — visible at any cardinality).
	SimDimCard int
	SimDims    []int
	SimGrids   []int
	SimGrid    int
	SimTime    float64
	Distances  []float64
	MinQueries int
	MaxQueries int

	Seed int64
}

func (s Scale) params() params {
	switch s {
	case Small:
		return params{
			F5Cards:   []int{1000, 2000},
			F5DimCard: 2000,
			F5Dims:    []int{2, 3},

			StaticCards: []int{4000, 8000},
			StaticCard:  6000,
			StaticDims:  []int{2, 3},
			StaticGrids: []int{3, 4},
			StaticGrid:  3,

			SimCards:   []int{4000, 8000},
			SimCard:    6000,
			SimDimCard: 4000,
			SimDims:    []int{2, 3},
			SimGrids:   []int{3, 4},
			SimGrid:    3,
			SimTime:    1200,
			Distances:  []float64{100, 250, 500},
			MinQueries: 1,
			MaxQueries: 2,

			Seed: 1,
		}
	case Paper:
		return params{
			F5Cards:   ints(10000, 100000, 10000),
			F5DimCard: 50000,
			F5Dims:    []int{2, 3, 4, 5},

			StaticCards: ints(100000, 1000000, 100000),
			StaticCard:  500000,
			StaticDims:  []int{2, 3, 4, 5},
			StaticGrids: []int{3, 4, 5, 6, 7, 8, 9, 10},
			StaticGrid:  5,

			SimCards:   ints(100000, 1000000, 100000),
			SimCard:    500000,
			SimDimCard: 500000,
			SimDims:    []int{2, 3, 4, 5},
			SimGrids:   []int{3, 4, 5, 6, 7, 8, 9, 10},
			SimGrid:    5,
			SimTime:    7200,
			Distances:  []float64{100, 250, 500},
			MinQueries: 1,
			MaxQueries: 5,

			Seed: 1,
		}
	default: // Default
		return params{
			F5Cards:   ints(10000, 100000, 10000),
			F5DimCard: 50000,
			F5Dims:    []int{2, 3, 4, 5},

			StaticCards: ints(20000, 100000, 20000),
			StaticCard:  50000,
			StaticDims:  []int{2, 3, 4, 5},
			StaticGrids: []int{3, 5, 7, 10},
			StaticGrid:  5,

			SimCards:   ints(20000, 100000, 20000),
			SimCard:    50000,
			SimDimCard: 10000,
			SimDims:    []int{2, 3, 4, 5},
			SimGrids:   []int{3, 5, 7},
			SimGrid:    5,
			SimTime:    7200,
			Distances:  []float64{100, 250, 500},
			MinQueries: 1,
			MaxQueries: 2,

			Seed: 1,
		}
	}
}

func ints(from, to, step int) []int {
	var out []int
	for v := from; v <= to; v += step {
		out = append(out, v)
	}
	return out
}
