package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The paper's evaluation grid (§5, Figures 5-12) is a set of mutually
// independent scenario runs: every (series × axis-point) job derives all of
// its randomness from an explicit seed in the sweep parameters and shares
// no state with its neighbours. The pool here fans those jobs out over a
// bounded number of workers while the harness collects results positionally,
// so the emitted tables are byte-identical to a serial run regardless of
// execution order.

// workerCount is the pool width; 0 means "not set yet" and resolves to
// runtime.GOMAXPROCS(0) at use time.
var workerCount atomic.Int64

// SetWorkers fixes how many scenario jobs may run concurrently. Values
// below 1 reset to the default of runtime.GOMAXPROCS(0). A width of 1
// reproduces the serial harness exactly: jobs run inline in index order.
func SetWorkers(n int) {
	if n < 1 {
		n = 0
	}
	workerCount.Store(int64(n))
}

// Workers reports the current pool width.
func Workers() int {
	if n := workerCount.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(0), ..., fn(n-1) on the pool and blocks until every job
// finished. Jobs must be independent and write their outputs to distinct,
// pre-allocated slots; forEach guarantees all writes are visible when it
// returns. With one worker (or one job) it degenerates to the plain serial
// loop, which determinism tests lean on.
func forEach(n int, fn func(int)) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
