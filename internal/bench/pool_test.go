package bench

import (
	"bytes"
	"runtime"
	"sync/atomic"
	"testing"

	"manetskyline/internal/gen"
)

// withWorkers runs the body under a fixed pool width and restores the
// previous setting afterwards.
func withWorkers(t *testing.T, n int, body func()) {
	t.Helper()
	prev := int(workerCount.Load())
	SetWorkers(n)
	defer workerCount.Store(int64(prev))
	body()
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	prev := int(workerCount.Load())
	defer workerCount.Store(int64(prev))
	SetWorkers(0)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetWorkers(-3)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() after negative set = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Errorf("Workers() = %d, want 3", got)
	}
}

func TestForEachRunsEveryJobExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		withWorkers(t, w, func() {
			const n = 137
			var counts [n]atomic.Int64
			forEach(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Errorf("workers=%d: job %d ran %d times", w, i, c)
				}
			}
		})
	}
	// Degenerate sizes must not hang or panic.
	withWorkers(t, 4, func() {
		forEach(0, func(int) { t.Error("job ran for n=0") })
		ran := false
		forEach(1, func(int) { ran = true })
		if !ran {
			t.Error("single job did not run")
		}
	})
}

// renderAll emits tables to one byte stream for comparison.
func renderAll(t *testing.T, tables []*Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Emit(&buf, "", tables...); err != nil {
		t.Fatalf("Emit: %v", err)
	}
	return buf.Bytes()
}

// TestParallelSweepDeterministic is the tentpole's contract: the parallel
// sweep engine must emit tables byte-identical to the serial (-workers=1)
// harness, for both the MANET simulation sweep and the static pre-tests.
func TestParallelSweepDeterministic(t *testing.T) {
	var serialSim, parallelSim, serialStatic, parallelStatic []byte
	withWorkers(t, 1, func() {
		drr, resp, msgs := simFiguresFresh(Small, gen.Independent, "fig8", "fig10")
		serialSim = renderAll(t, append(append(append([]*Table{}, drr...), resp...), msgs))
		serialStatic = renderAll(t, staticFigure(Small, gen.Independent, "fig6"))
	})
	withWorkers(t, 4, func() {
		drr, resp, msgs := simFiguresFresh(Small, gen.Independent, "fig8", "fig10")
		parallelSim = renderAll(t, append(append(append([]*Table{}, drr...), resp...), msgs))
		parallelStatic = renderAll(t, staticFigure(Small, gen.Independent, "fig6"))
	})
	if !bytes.Equal(serialSim, parallelSim) {
		t.Errorf("simulation sweep diverges between -workers=1 and -workers=4:\nserial:\n%s\nparallel:\n%s", serialSim, parallelSim)
	}
	if !bytes.Equal(serialStatic, parallelStatic) {
		t.Errorf("static sweep diverges between -workers=1 and -workers=4:\nserial:\n%s\nparallel:\n%s", serialStatic, parallelStatic)
	}
}

// TestSimFiguresMemoized verifies the satellite fix for redundant full-sweep
// recomputation: Fig8/Fig10/Fig12 must share one sweep per (scale,
// distribution) instead of re-running the simulations.
func TestSimFiguresMemoized(t *testing.T) {
	drr1, resp1, msgs1 := simFigures(Small, gen.Independent, "fig8", "fig10")
	drr2, resp2, msgs2 := simFigures(Small, gen.Independent, "fig8", "fig10")
	if len(drr1) == 0 || drr1[0] != drr2[0] || resp1[0] != resp2[0] || msgs1 != msgs2 {
		t.Errorf("repeated simFigures calls should return the memoized tables")
	}
	// Fig12 re-presents the memoized message table under its own ID.
	fig12 := Fig12(Small)
	if len(fig12) != 1 || fig12[0].ID != "fig12" {
		t.Fatalf("Fig12 shape wrong: %+v", fig12)
	}
	if len(fig12[0].Rows) != len(msgs1.Rows) {
		t.Fatalf("Fig12 has %d rows, sweep msgs has %d", len(fig12[0].Rows), len(msgs1.Rows))
	}
	for i := range msgs1.Rows {
		for j := range msgs1.Rows[i] {
			if fig12[0].Rows[i][j] != msgs1.Rows[i][j] {
				t.Errorf("Fig12 row %d cell %d = %q, sweep msgs %q", i, j, fig12[0].Rows[i][j], msgs1.Rows[i][j])
			}
		}
	}
}
