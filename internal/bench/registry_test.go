package bench

import (
	"io"
	"testing"
)

// Every registered experiment must run to completion at Small scale and
// emit well-formed tables. This covers the per-figure entry points the
// shared-sweep tests don't reach. Skipped under -short: it executes several
// full (small) MANET sweeps.
func TestEveryExperimentRunsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep is not short")
	}
	for _, e := range Experiments() {
		if e.Name == "all" || e.Name == "sim" {
			continue // compositions of the individual experiments below
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tables := e.Run(Small)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.Name)
			}
			for _, tab := range tables {
				if tab.ID == "" || len(tab.Columns) == 0 {
					t.Errorf("%s produced a malformed table %+v", e.Name, tab)
				}
				if len(tab.Rows) == 0 {
					t.Errorf("%s table %s has no rows", e.Name, tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("%s table %s has ragged rows", e.Name, tab.ID)
					}
				}
				if err := Emit(io.Discard, "", tab); err != nil {
					t.Errorf("%s table %s failed to render: %v", e.Name, tab.ID, err)
				}
			}
		})
	}
}
