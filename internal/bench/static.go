package bench

import (
	"fmt"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
)

// staticSeries is one line of Figures 6-7: a filtering strategy (single or
// dynamic) combined with a dominating-region estimation mode.
type staticSeries struct {
	dynamic bool
	mode    core.Estimation
}

func (s staticSeries) label() string {
	if s.dynamic {
		return "DF-" + s.mode.String()
	}
	return "SF-" + s.mode.String()
}

// staticSeriesSet is the paper's six series: {SF, DF} × {OVE, EXT, UNE}.
func staticSeriesSet() []staticSeries {
	var out []staticSeries
	for _, dyn := range []bool{false, true} {
		for _, mode := range []core.Estimation{core.Over, core.Exact, core.Under} {
			out = append(out, staticSeries{dynamic: dyn, mode: mode})
		}
	}
	return out
}

// staticDRR runs the static pre-test protocol for one dataset and one
// series, averaging the pooled DRR over every device acting as originator
// once (§5.2.2-I).
func staticDRR(n, dim, grid int, dist gen.Distribution, s staticSeries, seed int64) float64 {
	cfg := gen.DefaultConfig(n, dim, dist, seed)
	data := gen.Generate(cfg)
	parts := gen.GridPartition(data, grid, cfg.Space)
	devs := make([]*core.Device, len(parts))
	for i, p := range parts {
		devs[i] = core.NewDevice(core.DeviceID(i), p, cfg.Schema(), s.mode, s.dynamic)
	}
	outs := core.RunStaticAllOpt(devs, grid, core.StaticOptions{SkipAssembly: true})
	var acc core.DRRAccumulator
	for _, o := range outs {
		acc.Add(o.Acc)
	}
	return acc.DRR()
}

// staticFigure builds the three sub-figures of Figure 6 (independent data)
// or Figure 7 (anti-correlated data): DRR versus cardinality,
// dimensionality, and device count, across the six strategy × estimation
// series. Every (series × axis-point) pre-test builds its own dataset and
// devices from the scale's fixed seed, so the cells fan out over the worker
// pool and are collected positionally into the serial row order.
func staticFigure(sc Scale, dist gen.Distribution, figID string) []*Table {
	p := sc.params()
	series := staticSeriesSet()
	cols := []string{"param"}
	for _, s := range series {
		cols = append(cols, s.label())
	}

	type axisSpec struct{ n, dim, grid int }
	axes := [3][]axisSpec{}
	for _, n := range p.StaticCards {
		axes[0] = append(axes[0], axisSpec{n, 2, p.StaticGrid})
	}
	for _, dim := range p.StaticDims {
		axes[1] = append(axes[1], axisSpec{p.StaticCard, dim, p.StaticGrid})
	}
	for _, g := range p.StaticGrids {
		axes[2] = append(axes[2], axisSpec{p.StaticCard, 2, g})
	}

	type slot struct{ sweep, axis, ser int }
	var jobs []slot
	drrs := [3][][]float64{}
	for sw := range axes {
		drrs[sw] = make([][]float64, len(axes[sw]))
		for ai := range axes[sw] {
			drrs[sw][ai] = make([]float64, len(series))
			for si := range series {
				jobs = append(jobs, slot{sw, ai, si})
			}
		}
	}
	forEach(len(jobs), func(i int) {
		j := jobs[i]
		a := axes[j.sweep][j.axis]
		drrs[j.sweep][j.axis][j.ser] = staticDRR(a.n, a.dim, a.grid, dist, series[j.ser], p.Seed)
	})

	addRows := func(t *Table, sweep int, axisVal func(i int) any) {
		for ai := range axes[sweep] {
			row := []any{axisVal(ai)}
			for _, v := range drrs[sweep][ai] {
				row = append(row, v)
			}
			t.AddRow(row...)
		}
	}

	card := &Table{
		ID:      figID + "a",
		Title:   fmt.Sprintf("static DRR vs. cardinality (%v data, %d×%d grid, 2 attrs)", dist, p.StaticGrid, p.StaticGrid),
		Columns: append([]string{"tuples"}, cols[1:]...),
	}
	addRows(card, 0, func(i int) any { return p.StaticCards[i] })

	dims := &Table{
		ID:      figID + "b",
		Title:   fmt.Sprintf("static DRR vs. dimensionality (%v data, %d tuples, %d×%d grid)", dist, p.StaticCard, p.StaticGrid, p.StaticGrid),
		Columns: append([]string{"attrs"}, cols[1:]...),
	}
	addRows(dims, 1, func(i int) any { return p.StaticDims[i] })

	grids := &Table{
		ID:      figID + "c",
		Title:   fmt.Sprintf("static DRR vs. number of devices (%v data, %d tuples, 2 attrs)", dist, p.StaticCard),
		Columns: append([]string{"devices"}, cols[1:]...),
	}
	addRows(grids, 2, func(i int) any { return p.StaticGrids[i] * p.StaticGrids[i] })

	return []*Table{card, dims, grids}
}

// Fig6 reproduces Figure 6: data reduction rate on independent datasets in
// the static setting, for {SF, DF} × {OVE, EXT, UNE}.
func Fig6(sc Scale) []*Table { return staticFigure(sc, gen.Independent, "fig6") }

// Fig7 reproduces Figure 7: the same pre-tests on anti-correlated datasets.
func Fig7(sc Scale) []*Table { return staticFigure(sc, gen.AntiCorrelated, "fig7") }
