package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{
		"small": Small, "default": Default, "": Default, "paper": Paper,
	} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Errorf("bogus scale should error")
	}
	if Small.String() != "small" || Default.String() != "default" || Paper.String() != "paper" {
		t.Errorf("scale names wrong")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("long-label", 0.123456)
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-label") {
		t.Errorf("missing content:\n%s", out)
	}
	if !strings.Contains(out, "0.1235") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
}

func TestTableRowWidthPanics(t *testing.T) {
	tab := &Table{ID: "x", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Errorf("short row should panic")
		}
	}()
	tab.AddRow(1)
}

func TestTableCSV(t *testing.T) {
	dir := t.TempDir()
	tab := &Table{ID: "csvtest", Title: "t", Columns: []string{"a", "b"}}
	tab.AddRow(1, 2)
	if err := tab.WriteCSV(dir); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "csvtest.csv"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Errorf("csv content %q", data)
	}
}

func TestRegistryLookups(t *testing.T) {
	names := []string{"fig5a", "fig5b", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "sim", "baselines", "storage", "multifilter", "redistribution", "spatialindex", "strategies", "all"}
	for _, n := range names {
		if _, err := Lookup(n); err != nil {
			t.Errorf("Lookup(%q): %v", n, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Errorf("unknown experiment should error")
	}
	if len(Experiments()) != len(names) {
		t.Errorf("registry has %d experiments, want %d", len(Experiments()), len(names))
	}
}

// parseCell reads a numeric cell.
func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig5SmallShapes(t *testing.T) {
	tabs := Fig5a(Small)
	if len(tabs) != 2 {
		t.Fatalf("Fig5a returned %d tables", len(tabs))
	}
	dev := tabs[0]
	if len(dev.Rows) != 2 {
		t.Fatalf("small scale should sweep 2 cardinalities")
	}
	// HS must beat FS on every row for both distributions (the Figure 5
	// claim), in estimated device time.
	for _, row := range dev.Rows {
		fsIN, hsIN := parseCell(t, row[1]), parseCell(t, row[2])
		fsAC, hsAC := parseCell(t, row[3]), parseCell(t, row[4])
		if hsIN >= fsIN {
			t.Errorf("row %s: HS-IN %v should beat FS-IN %v", row[0], hsIN, fsIN)
		}
		if hsAC >= fsAC {
			t.Errorf("row %s: HS-AC %v should beat FS-AC %v", row[0], hsAC, fsAC)
		}
	}
	tabs5b := Fig5b(Small)
	if len(tabs5b) != 2 || len(tabs5b[0].Rows) != 2 {
		t.Fatalf("Fig5b shape wrong")
	}
	for _, row := range tabs5b[0].Rows {
		if parseCell(t, row[2]) >= parseCell(t, row[1]) {
			t.Errorf("dim %s: HS should beat FS", row[0])
		}
	}
}

func TestFig6SmallShapes(t *testing.T) {
	tabs := Fig6(Small)
	if len(tabs) != 3 {
		t.Fatalf("Fig6 should produce 3 sub-figures")
	}
	for _, tab := range tabs {
		if len(tab.Columns) != 7 { // param + 6 series
			t.Fatalf("%s: %d columns, want 7", tab.ID, len(tab.Columns))
		}
		for _, row := range tab.Rows {
			for i := 1; i < len(row); i++ {
				drr := parseCell(t, row[i])
				if drr < -1 || drr > 1 {
					t.Errorf("%s row %s: DRR %v out of range", tab.ID, row[0], drr)
				}
			}
		}
	}
	// On independent data the dynamic strategy should achieve positive
	// reduction in the cardinality sweep's largest setting.
	last := tabs[0].Rows[len(tabs[0].Rows)-1]
	dfEXT := parseCell(t, last[5]) // columns: tuples, SF-OVE, SF-EXT, SF-UNE, DF-OVE, DF-EXT, DF-UNE
	if dfEXT <= 0 {
		t.Errorf("DF-EXT DRR should be positive on independent data, got %v (row %v)", dfEXT, last)
	}
}

func TestSimFiguresSmall(t *testing.T) {
	drr, resp, msgs := simFigures(Small, 0 /* Independent */, "fig8", "fig10")
	if len(drr) != 3 || len(resp) != 3 || msgs == nil {
		t.Fatalf("simFigures shape wrong: %d %d", len(drr), len(resp))
	}
	for _, tab := range append(append([]*Table{}, drr...), resp...) {
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no rows", tab.ID)
		}
	}
	// Response times must be positive where present.
	for _, tab := range resp {
		for _, row := range tab.Rows {
			for _, cell := range row[1:] {
				if cell == "n/a" {
					continue
				}
				if v := parseCell(t, cell); v <= 0 {
					t.Errorf("%s: non-positive response time %v", tab.ID, v)
				}
			}
		}
	}
	// Message counts grow with the device count for BF.
	if len(msgs.Rows) >= 2 {
		firstBF := parseCell(t, msgs.Rows[0][len(msgs.Columns)-1])
		lastBF := parseCell(t, msgs.Rows[len(msgs.Rows)-1][len(msgs.Columns)-1])
		if lastBF <= firstBF {
			t.Errorf("BF message count should grow with devices: %v → %v", firstBF, lastBF)
		}
	}
}

func TestStrategiesSmallShapes(t *testing.T) {
	tabs := Strategies(Small)
	if len(tabs) != 2 {
		t.Fatalf("Strategies returned %d tables, want 2", len(tabs))
	}
	cost, loss := tabs[0], tabs[1]
	wantRows := []string{"BF", "DF", "SF"}
	for _, tab := range tabs {
		if len(tab.Rows) != len(wantRows) {
			t.Fatalf("%s has %d rows, want %d", tab.ID, len(tab.Rows), len(wantRows))
		}
		for i, row := range tab.Rows {
			if row[0] != wantRows[i] {
				t.Errorf("%s row %d is %q, want %q", tab.ID, i, row[0], wantRows[i])
			}
		}
	}
	for _, row := range cost.Rows {
		if b := parseCell(t, row[1]); b <= 0 {
			t.Errorf("%s: non-positive query bytes %v", row[0], b)
		}
		if c := parseCell(t, row[5]); c < 0 || c > 1 {
			t.Errorf("%s: completion %v out of range", row[0], c)
		}
	}
	for _, row := range loss.Rows {
		if row[1] == "n/a" {
			t.Errorf("%s: lossy run computed no recall", row[0])
			continue
		}
		if r := parseCell(t, row[1]); r < 0 || r > 1 {
			t.Errorf("%s: recall %v out of range", row[0], r)
		}
	}
}

func TestAblationStorageSmall(t *testing.T) {
	tabs := AblationStorage(Small)
	if len(tabs) != 1 || len(tabs[0].Rows) != 4 {
		t.Fatalf("ablation-storage shape wrong")
	}
	var flatKiB, hybridKiB float64
	for _, row := range tabs[0].Rows {
		switch row[0] {
		case "flat":
			flatKiB = parseCell(t, row[3])
		case "hybrid":
			hybridKiB = parseCell(t, row[3])
		}
	}
	if hybridKiB >= flatKiB {
		t.Errorf("hybrid (%v KiB) should be smaller than flat (%v KiB)", hybridKiB, flatKiB)
	}
}

func TestAblationMultiFilterSmall(t *testing.T) {
	tabs := AblationMultiFilter(Small)
	if len(tabs) != 1 || len(tabs[0].Rows) != 5 {
		t.Fatalf("ablation-multifilter shape wrong")
	}
	// More filters must not reduce the number of pruned tuples; the DRR can
	// still dip because each filter costs a transmission, so only check the
	// k=1 row is sane.
	first := parseCell(t, tabs[0].Rows[0][1])
	if first < -1 || first > 1 {
		t.Errorf("DRR out of range: %v", first)
	}
}

func TestEmit(t *testing.T) {
	dir := t.TempDir()
	tab := &Table{ID: "emitted", Title: "t", Columns: []string{"a"}}
	tab.AddRow(1)
	var buf bytes.Buffer
	if err := Emit(&buf, dir, tab); err != nil {
		t.Fatalf("Emit: %v", err)
	}
	if !strings.Contains(buf.String(), "emitted") {
		t.Errorf("text output missing")
	}
	if _, err := os.Stat(filepath.Join(dir, "emitted.csv")); err != nil {
		t.Errorf("csv missing: %v", err)
	}
}
