package bench

import (
	"runtime"
	"testing"

	"manetskyline/internal/gen"
)

// benchmarkStaticSweep measures one full Small static figure under the
// given pool width; comparing Serial with Parallel shows the sweep engine's
// wall-clock win on multi-core hosts.
func benchmarkStaticSweep(b *testing.B, workers int) {
	prev := int(workerCount.Load())
	SetWorkers(workers)
	defer workerCount.Store(int64(prev))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		staticFigure(Small, gen.Independent, "fig6")
	}
}

func BenchmarkStaticSweepSerial(b *testing.B) { benchmarkStaticSweep(b, 1) }

func BenchmarkStaticSweepParallel(b *testing.B) {
	benchmarkStaticSweep(b, runtime.GOMAXPROCS(0))
}

// benchmarkSimSweep does the same for the MANET simulation sweep, bypassing
// the memo so every iteration pays the real cost.
func benchmarkSimSweep(b *testing.B, workers int) {
	prev := int(workerCount.Load())
	SetWorkers(workers)
	defer workerCount.Store(int64(prev))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simFiguresFresh(Small, gen.Independent, "fig8", "fig10")
	}
}

func BenchmarkSimSweepSerial(b *testing.B) { benchmarkSimSweep(b, 1) }

func BenchmarkSimSweepParallel(b *testing.B) {
	benchmarkSimSweep(b, runtime.GOMAXPROCS(0))
}

// BenchmarkPoolOverhead isolates the fan-out cost of the pool itself on
// trivially small jobs.
func BenchmarkPoolOverhead(b *testing.B) {
	prev := int(workerCount.Load())
	SetWorkers(runtime.GOMAXPROCS(0))
	defer workerCount.Store(int64(prev))
	sink := make([]int, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forEach(len(sink), func(j int) { sink[j] = j * j })
	}
}
