package bench

import (
	"fmt"
	"sync"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
	"manetskyline/internal/manet"
)

// simSeries is one line of Figures 8-11: a forwarding strategy combined
// with a distance of interest. The filter configuration is fixed to the
// paper's simulation choice (§5.2.2-II): under-estimated dominating regions
// with dynamic updates.
type simSeries struct {
	strategy manet.Forwarding
	distance float64
}

func (s simSeries) label() string {
	return fmt.Sprintf("%v-%.0f", s.strategy, s.distance)
}

func simSeriesSet(distances []float64) []simSeries {
	var out []simSeries
	for _, st := range []manet.Forwarding{manet.DepthFirst, manet.BreadthFirst} {
		for _, d := range distances {
			out = append(out, simSeries{strategy: st, distance: d})
		}
	}
	return out
}

// simPoint is one scenario run's aggregated metrics.
type simPoint struct {
	drr      float64
	resp     float64
	respOK   bool
	messages float64
	done     float64
}

// runSim executes one MANET scenario.
func runSim(p params, n, dim, grid int, dist gen.Distribution, s simSeries) simPoint {
	mp := manet.DefaultParams()
	mp.Grid = grid
	mp.GlobalN = n
	mp.Dim = dim
	mp.Dist = dist
	mp.QueryDist = s.distance
	mp.Mode = core.Under
	mp.Dynamic = true
	mp.Strategy = s.strategy
	mp.SimTime = p.SimTime
	mp.MinQueries = p.MinQueries
	mp.MaxQueries = p.MaxQueries
	mp.Seed = p.Seed

	out := manet.Run(mp)
	resp, ok := out.MeanResponseTime()
	return simPoint{
		drr:      out.PooledDRR(),
		resp:     resp,
		respOK:   ok,
		messages: out.MeanMessages(),
		done:     out.CompletionRate(),
	}
}

// simSweep runs all series over one swept axis and returns a DRR table, a
// response-time table, and a message-count table sharing the same rows.
type simSweep struct {
	drr, resp, msgs *Table
}

func newSimSweep(idSuffix, axisName, title string, series []simSeries, drrID, respID string) simSweep {
	cols := []string{axisName}
	for _, s := range series {
		cols = append(cols, s.label())
	}
	mk := func(id, what string) *Table {
		return &Table{ID: id, Title: what + title, Columns: append([]string(nil), cols...)}
	}
	return simSweep{
		drr:  mk(drrID+idSuffix, "MANET DRR "),
		resp: mk(respID+idSuffix, "MANET response time (s) "),
		msgs: mk("msgs-"+drrID+idSuffix, "MANET mean messages/query "),
	}
}

func (sw simSweep) addPoint(axis any, pts []simPoint) {
	drrRow := []any{axis}
	respRow := []any{axis}
	msgRow := []any{axis}
	for _, pt := range pts {
		drrRow = append(drrRow, pt.drr)
		if pt.respOK {
			respRow = append(respRow, pt.resp)
		} else {
			respRow = append(respRow, "n/a")
		}
		msgRow = append(msgRow, pt.messages)
	}
	sw.drr.AddRow(drrRow...)
	sw.resp.AddRow(respRow...)
	sw.msgs.AddRow(msgRow...)
}

// sweepMemo caches one full simulation sweep per (scale, distribution,
// figure IDs) within a process: Fig8/Fig10 (and Fig9/Fig11) present
// different tables of the same sweep, and Fig12's message counts are the
// grid axis of the independent-data sweep, so recomputing it per figure
// would triple the dominant simulation cost of `-experiment all`.
var (
	sweepMu   sync.Mutex
	sweepMemo = map[sweepKey]*sweepResult{}
)

type sweepKey struct {
	sc            Scale
	dist          gen.Distribution
	drrID, respID string
}

type sweepResult struct {
	drr, resp []*Table
	msgs      *Table
}

// simFigures returns the memoized full MANET sweep for one attribute
// distribution: the DRR tables (Figure 8 or 9), the response-time tables
// (Figure 10 or 11), and the message-count table feeding Figure 12.
func simFigures(sc Scale, dist gen.Distribution, drrID, respID string) (drr, resp []*Table, msgs *Table) {
	key := sweepKey{sc, dist, drrID, respID}
	sweepMu.Lock()
	defer sweepMu.Unlock()
	r, ok := sweepMemo[key]
	if !ok {
		r = &sweepResult{}
		r.drr, r.resp, r.msgs = simFiguresFresh(sc, dist, drrID, respID)
		sweepMemo[key] = r
	}
	return r.drr, r.resp, r.msgs
}

// simFiguresFresh computes the sweep, fanning every independent
// (series × axis-point) scenario out over the worker pool. Each job's
// randomness comes solely from the per-job parameters (the scale's fixed
// seed), and results land in positional slots, so the assembled tables are
// byte-identical however many workers run.
func simFiguresFresh(sc Scale, dist gen.Distribution, drrID, respID string) (drr, resp []*Table, msgs *Table) {
	p := sc.params()
	series := simSeriesSet(p.Distances)

	// The three swept axes of Figures 8-12: cardinality, dimensionality,
	// and device count, each crossed with every series.
	type axisSpec struct{ n, dim, grid int }
	axes := [3][]axisSpec{}
	for _, n := range p.SimCards {
		axes[0] = append(axes[0], axisSpec{n, 2, p.SimGrid})
	}
	for _, dim := range p.SimDims {
		axes[1] = append(axes[1], axisSpec{p.SimDimCard, dim, p.SimGrid})
	}
	for _, g := range p.SimGrids {
		axes[2] = append(axes[2], axisSpec{p.SimCard, 2, g})
	}

	type slot struct{ sweep, axis, ser int }
	var jobs []slot
	points := [3][][]simPoint{}
	for sw := range axes {
		points[sw] = make([][]simPoint, len(axes[sw]))
		for ai := range axes[sw] {
			points[sw][ai] = make([]simPoint, len(series))
			for si := range series {
				jobs = append(jobs, slot{sw, ai, si})
			}
		}
	}
	forEach(len(jobs), func(i int) {
		j := jobs[i]
		a := axes[j.sweep][j.axis]
		points[j.sweep][j.axis][j.ser] = runSim(p, a.n, a.dim, a.grid, dist, series[j.ser])
	})

	cards := newSimSweep("a", "tuples",
		fmt.Sprintf("vs. cardinality (%v, %d×%d grid, 2 attrs)", dist, p.SimGrid, p.SimGrid),
		series, drrID, respID)
	for ai, n := range p.SimCards {
		cards.addPoint(n, points[0][ai])
	}

	dims := newSimSweep("b", "attrs",
		fmt.Sprintf("vs. dimensionality (%v, %d tuples, %d×%d grid)", dist, p.SimDimCard, p.SimGrid, p.SimGrid),
		series, drrID, respID)
	for ai, dim := range p.SimDims {
		dims.addPoint(dim, points[1][ai])
	}

	grids := newSimSweep("c", "devices",
		fmt.Sprintf("vs. number of devices (%v, %d tuples, 2 attrs)", dist, p.SimCard),
		series, drrID, respID)
	msgs = &Table{
		ID:      "fig12-" + dist.String(),
		Title:   fmt.Sprintf("mean messages per query vs. number of devices (%v, %d tuples, 2 attrs)", dist, p.SimCard),
		Columns: grids.msgs.Columns,
	}
	for ai, g := range p.SimGrids {
		pts := points[2][ai]
		grids.addPoint(g*g, pts)
		row := []any{g * g}
		for _, pt := range pts {
			row = append(row, pt.messages)
		}
		msgs.AddRow(row...)
	}

	drr = []*Table{cards.drr, dims.drr, grids.drr}
	resp = []*Table{cards.resp, dims.resp, grids.resp}
	return drr, resp, msgs
}

// Fig8 reproduces Figure 8: DRR on independent datasets in the MANET
// simulation (DF/BF forwarding × distances of interest).
func Fig8(sc Scale) []*Table {
	drr, _, _ := simFigures(sc, gen.Independent, "fig8", "fig10")
	return drr
}

// Fig9 reproduces Figure 9: DRR on anti-correlated datasets.
func Fig9(sc Scale) []*Table {
	drr, _, _ := simFigures(sc, gen.AntiCorrelated, "fig9", "fig11")
	return drr
}

// Fig10 reproduces Figure 10: response time on independent datasets.
func Fig10(sc Scale) []*Table {
	_, resp, _ := simFigures(sc, gen.Independent, "fig8", "fig10")
	return resp
}

// Fig11 reproduces Figure 11: response time on anti-correlated datasets.
func Fig11(sc Scale) []*Table {
	_, resp, _ := simFigures(sc, gen.AntiCorrelated, "fig9", "fig11")
	return resp
}

// Fig12 reproduces Figure 12: query message count versus device count
// (BF vs. DF). The paper notes cardinality, dimensionality, and
// distribution barely affect the count, so independent data suffices — and
// the numbers are exactly the grid axis of the independent-data sweep, so
// Fig12 re-presents the memoized sweep's message table instead of re-running
// the simulations.
func Fig12(sc Scale) []*Table {
	p := sc.params()
	_, _, msgs := simFigures(sc, gen.Independent, "fig8", "fig10")
	t := &Table{
		ID:      "fig12",
		Title:   fmt.Sprintf("mean messages per query vs. number of devices (IN, %d tuples, 2 attrs)", p.SimCard),
		Columns: append([]string(nil), msgs.Columns...),
		Rows:    append([][]string(nil), msgs.Rows...),
	}
	return []*Table{t}
}

// SimAll runs both distributions' sweeps once and emits Figures 8-12
// without duplicating simulation work.
func SimAll(sc Scale) []*Table {
	drrIN, respIN, msgsIN := simFigures(sc, gen.Independent, "fig8", "fig10")
	drrAC, respAC, msgsAC := simFigures(sc, gen.AntiCorrelated, "fig9", "fig11")
	var out []*Table
	out = append(out, drrIN...)
	out = append(out, drrAC...)
	out = append(out, respIN...)
	out = append(out, respAC...)
	out = append(out, msgsIN, msgsAC)
	return out
}
