package bench

import (
	"fmt"
	"time"

	"manetskyline/internal/device"
	"manetskyline/internal/gen"
	"manetskyline/internal/localsky"
	"manetskyline/internal/storage"
)

// localRun evaluates one local skyline query under both storage schemes and
// returns estimated device seconds (the paper's Figure 5 quantity) and
// measured host seconds for each.
type localRun struct {
	hsDevice, fsDevice float64 // handheld cost-model estimate (s)
	hsHost, fsHost     float64 // measured wall time on this machine (s)
}

func runLocal(n, dim int, dist gen.Distribution, seed int64) localRun {
	cfg := gen.HandheldConfig(n, dim, dist, seed)
	data := gen.Generate(cfg)
	model := device.Handheld200MHz()
	q := localsky.Query{} // unconstrained: pure skyline cost, as in §5.1

	hs := storage.NewHybrid(data)
	t0 := time.Now()
	hres := localsky.HybridSkyline(hs, q, nil, nil)
	hsHost := time.Since(t0).Seconds()

	fs := storage.NewFlat(data)
	t0 = time.Now()
	fres := localsky.BNLSkyline(fs, q, nil, nil)
	fsHost := time.Since(t0).Seconds()

	return localRun{
		hsDevice: model.Time(hres.Stats),
		fsDevice: model.Time(fres.Stats),
		hsHost:   hsHost,
		fsHost:   fsHost,
	}
}

// Fig5a reproduces Figure 5(a): local skyline processing time, hybrid
// storage (HS, the Figure 4 algorithm) versus flat storage (FS, BNL), as
// cardinality grows, on independent (IN) and anti-correlated (AC) data with
// two non-spatial attributes. The first table is the paper's quantity
// (estimated seconds on a 200 MHz handheld); the second reports the host
// measurements backing the estimate.
func Fig5a(sc Scale) []*Table {
	p := sc.params()
	dev := &Table{
		ID:      "fig5a",
		Title:   "local processing time vs. cardinality (estimated handheld seconds)",
		Columns: []string{"tuples", "FS-IN", "HS-IN", "FS-AC", "HS-AC"},
	}
	host := &Table{
		ID:      "fig5a-host",
		Title:   "local processing time vs. cardinality (measured host milliseconds)",
		Columns: []string{"tuples", "FS-IN", "HS-IN", "FS-AC", "HS-AC"},
	}
	// Each (cardinality × distribution) evaluation is independent and runs
	// on the worker pool. The estimated-device columns are deterministic
	// work counters; only the backing host wall times pick up co-scheduling
	// noise, as any wall measurement on a busy machine does.
	ins := make([]localRun, len(p.F5Cards))
	acs := make([]localRun, len(p.F5Cards))
	forEach(2*len(p.F5Cards), func(i int) {
		if i < len(p.F5Cards) {
			ins[i] = runLocal(p.F5Cards[i], 2, gen.Independent, p.Seed)
		} else {
			acs[i-len(p.F5Cards)] = runLocal(p.F5Cards[i-len(p.F5Cards)], 2, gen.AntiCorrelated, p.Seed)
		}
	})
	for i, n := range p.F5Cards {
		in, ac := ins[i], acs[i]
		dev.AddRow(n, in.fsDevice, in.hsDevice, ac.fsDevice, ac.hsDevice)
		host.AddRow(n, in.fsHost*1e3, in.hsHost*1e3, ac.fsHost*1e3, ac.hsHost*1e3)
	}
	return []*Table{dev, host}
}

// Fig5b reproduces Figure 5(b): local skyline processing time versus
// dimensionality at fixed cardinality, averaging the IN and AC costs as the
// paper does ("their costs are very close to each other for each
// dimensionality" does not hold for BNL at high dimensions, so the average
// is reported the same way regardless).
func Fig5b(sc Scale) []*Table {
	p := sc.params()
	dev := &Table{
		ID:      "fig5b",
		Title:   fmt.Sprintf("local processing time vs. dimensionality at %d tuples (estimated handheld seconds, avg of IN and AC)", p.F5DimCard),
		Columns: []string{"attrs", "FS", "HS"},
	}
	host := &Table{
		ID:      "fig5b-host",
		Title:   "local processing time vs. dimensionality (measured host milliseconds, avg of IN and AC)",
		Columns: []string{"attrs", "FS", "HS"},
	}
	ins := make([]localRun, len(p.F5Dims))
	acs := make([]localRun, len(p.F5Dims))
	forEach(2*len(p.F5Dims), func(i int) {
		if i < len(p.F5Dims) {
			ins[i] = runLocal(p.F5DimCard, p.F5Dims[i], gen.Independent, p.Seed)
		} else {
			acs[i-len(p.F5Dims)] = runLocal(p.F5DimCard, p.F5Dims[i-len(p.F5Dims)], gen.AntiCorrelated, p.Seed)
		}
	})
	for i, dim := range p.F5Dims {
		in, ac := ins[i], acs[i]
		dev.AddRow(dim, (in.fsDevice+ac.fsDevice)/2, (in.hsDevice+ac.hsDevice)/2)
		host.AddRow(dim, (in.fsHost+ac.fsHost)/2*1e3, (in.hsHost+ac.hsHost)/2*1e3)
	}
	return []*Table{dev, host}
}
