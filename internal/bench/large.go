package bench

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"manetskyline/internal/gen"
	"manetskyline/internal/manet"
)

// This file is the 30k-100k node scale harness. The paper's experiments stop
// at 100 devices (Table 6); everything here probes how far the simulator
// itself carries beyond that — struct-of-arrays node state, compact events,
// the epoch grid, and per-link transmit modeling are exactly the machinery
// this sweep exercises.
//
// Geometry keeps density constant instead of the figure sweeps' fixed 1 km²
// field: the cell side stays at largeCellSide regardless of node count, so
// the spatial domain grows as grid·largeCellSide and every node sees
// ~π·Range²/cellSide² ≈ 12 neighbours whether the network has 1k or 100k
// devices. A fixed field would turn 100k nodes into a single collision
// domain and measure nothing but broadcast storms.

const (
	// largeCellSide is the per-device cell side in meters (one device per
	// cell). With largeRange = 250 the mean degree is π·250²/125² ≈ 12.6.
	largeCellSide = 125.0
	// largeRange is the radio range for scale runs.
	largeRange = 250.0
	// largeTuplesPerDevice keeps local relations small: the sweep measures
	// simulator throughput, not skyline processing cost.
	largeTuplesPerDevice = 4
)

// LargeConfig parameterizes one scale-sweep point.
type LargeConfig struct {
	// Nodes is the requested device count; the actual count is the next
	// perfect square (one device per grid cell).
	Nodes int
	// Strategy selects BF or DF forwarding.
	Strategy manet.Forwarding
	// SimTime is the simulated duration in seconds (0 ⇒ 300).
	SimTime float64
	// Originators caps how many devices issue queries (0 ⇒ 4). At 30k+
	// devices letting everyone flood measures queue collapse, not
	// throughput.
	Originators int
	// Seed drives all randomness (0 ⇒ 1).
	Seed int64
}

// ScenarioLarge builds the manet.Params for one scale point: constant
// density geometry, compact struct-of-arrays mobility, flood-installed
// reverse routes, bounded per-link transmit queues, and an epoch grid fed
// by the mobility speed bound.
func ScenarioLarge(cfg LargeConfig) manet.Params {
	grid := 1
	for grid*grid < cfg.Nodes {
		grid++
	}
	p := manet.DefaultParams()
	p.Grid = grid
	p.GlobalN = largeTuplesPerDevice * grid * grid
	p.Dim = 2
	p.Dist = gen.Independent
	p.Space = largeCellSide * float64(grid)
	p.Mobility.Space = p.Space
	p.QueryDist = largeRange
	p.Strategy = cfg.Strategy

	p.SimTime = cfg.SimTime
	if p.SimTime <= 0 {
		p.SimTime = 300
	}
	p.MinQueries, p.MaxQueries = 1, 1
	p.Originators = cfg.Originators
	if p.Originators <= 0 {
		p.Originators = 4
	}
	// DF serializes the traversal over every device, so at scale it cannot
	// finish inside any reasonable horizon; the deadline finalizes partial
	// results instead of leaving queries open.
	p.QueryDeadline = p.SimTime / 2

	p.Radio.Range = largeRange
	p.Radio.LinkQueue = 16
	p.CompactMobility = true
	p.FloodRoutes = true

	p.Seed = cfg.Seed
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// LargeResult is one scale point's measurements.
type LargeResult struct {
	Devices int
	Grid    int
	Space   float64

	Events       uint64
	Wall         time.Duration
	EventsPerSec float64

	// HeapGrowth is the OS-claimed heap growth (runtime MemStats.Sys
	// delta) across the run — a proxy for the run's peak live footprint.
	HeapGrowth   uint64
	BytesPerNode float64
	// PeakRSS is the process high-water mark from /proc/self/status
	// (VmHWM); 0 where the proc filesystem is unavailable.
	PeakRSS uint64

	Queries, Completed, Partial int
	FramesSent, Receptions      int
	DroppedQueue                int
	RREQSent, DataDelivered     int
}

// RunLarge executes one scale point and measures it.
func RunLarge(cfg LargeConfig) LargeResult {
	p := ScenarioLarge(cfg)

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	start := time.Now()
	out := manet.Run(p)
	wall := time.Since(start)

	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	r := LargeResult{
		Devices: p.NumDevices(),
		Grid:    p.Grid,
		Space:   p.Space,
		Events:  out.Events,
		Wall:    wall,

		HeapGrowth: m1.Sys - m0.Sys,
		PeakRSS:    peakRSS(),

		Queries:       len(out.Queries),
		FramesSent:    out.Radio.FramesSent,
		Receptions:    out.Radio.Receptions,
		DroppedQueue:  out.Radio.DroppedQueue,
		RREQSent:      out.Aodv.RREQSent,
		DataDelivered: out.Aodv.DataDelivered,
	}
	for _, q := range out.Queries {
		if q.Done {
			r.Completed++
		}
		if q.Partial {
			r.Partial++
		}
	}
	if s := wall.Seconds(); s > 0 {
		r.EventsPerSec = float64(r.Events) / s
	}
	r.BytesPerNode = float64(r.HeapGrowth) / float64(r.Devices)
	return r
}

// Report renders the result as the scale sweep's standard block.
func (r LargeResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "devices:        %d (%d×%d grid, %.0f m field)\n",
		r.Devices, r.Grid, r.Grid, r.Space)
	fmt.Fprintf(&b, "events:         %d in %.2fs wall (%.0f events/sec)\n",
		r.Events, r.Wall.Seconds(), r.EventsPerSec)
	fmt.Fprintf(&b, "memory:         %.0f bytes/node heap growth", r.BytesPerNode)
	if r.PeakRSS > 0 {
		fmt.Fprintf(&b, ", peak RSS %.1f MiB", float64(r.PeakRSS)/(1<<20))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "queries:        %d issued, %d completed (%d partial)\n",
		r.Queries, r.Completed, r.Partial)
	fmt.Fprintf(&b, "radio:          %d frames sent, %d receptions, %d queue drops\n",
		r.FramesSent, r.Receptions, r.DroppedQueue)
	fmt.Fprintf(&b, "routing:        %d RREQ, %d data delivered\n",
		r.RREQSent, r.DataDelivered)
	return b.String()
}

// peakRSS reads the process's resident-set high-water mark from
// /proc/self/status (VmHWM, reported in kB). Returns 0 when the file or
// field is unavailable (non-Linux hosts) — callers fall back to the heap
// growth figure.
func peakRSS() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
