package bench

import (
	"fmt"
	"sort"
)

// Experiment is a named, runnable reproduction artifact.
type Experiment struct {
	// Name is the CLI identifier ("fig5a", "fig8", "all", ...).
	Name string
	// Description says what the experiment regenerates.
	Description string
	// Run produces the experiment's tables at the given scale.
	Run func(Scale) []*Table
}

// Experiments returns the registry, sorted by name.
func Experiments() []Experiment {
	exps := []Experiment{
		{"fig5a", "local processing time vs. cardinality, HS vs FS (Figure 5a)", Fig5a},
		{"fig5b", "local processing time vs. dimensionality (Figure 5b)", Fig5b},
		{"fig5", "both local processing experiments (Figure 5)", func(sc Scale) []*Table {
			return append(Fig5a(sc), Fig5b(sc)...)
		}},
		{"fig6", "static DRR on independent data, SF/DF × OVE/EXT/UNE (Figure 6)", Fig6},
		{"fig7", "static DRR on anti-correlated data (Figure 7)", Fig7},
		{"fig8", "MANET DRR on independent data, BF/DF × distance (Figure 8)", Fig8},
		{"fig9", "MANET DRR on anti-correlated data (Figure 9)", Fig9},
		{"fig10", "MANET response time on independent data (Figure 10)", Fig10},
		{"fig11", "MANET response time on anti-correlated data (Figure 11)", Fig11},
		{"fig12", "query message count vs. device count, BF vs DF (Figure 12)", Fig12},
		{"sim", "all MANET simulation figures in one sweep (Figures 8-12)", SimAll},
		{"baselines", "ablation: all centralized skyline algorithms head to head (§6)", AblationBaselines},
		{"storage", "ablation: storage models' time and size (§4.1 in prose)", AblationStorage},
		{"multifilter", "extension: DRR vs. number of filtering tuples (§7)", AblationMultiFilter},
		{"redistribution", "extension: relation hand-off under mobility (§7)", AblationRedistribution},
		{"spatialindex", "extension: spatial bucket grid vs. the Figure 4 sequential scan", AblationSpatialIndex},
		{"strategies", "three strategies head-to-head: BF vs DF vs SF cost and loss robustness", Strategies},
		{"all", "every figure and ablation", runAll},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].Name < exps[j].Name })
	return exps
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", name)
}

// runAll regenerates everything, sharing the simulation sweeps across
// Figures 8-12.
func runAll(sc Scale) []*Table {
	var out []*Table
	out = append(out, Fig5a(sc)...)
	out = append(out, Fig5b(sc)...)
	out = append(out, Fig6(sc)...)
	out = append(out, Fig7(sc)...)
	out = append(out, SimAll(sc)...)
	out = append(out, AblationBaselines(sc)...)
	out = append(out, AblationStorage(sc)...)
	out = append(out, AblationMultiFilter(sc)...)
	out = append(out, AblationRedistribution(sc)...)
	out = append(out, AblationSpatialIndex(sc)...)
	out = append(out, Strategies(sc)...)
	return out
}
