package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Stream framing for TCP transports: every message is prefixed by a 4-byte
// little-endian length. MaxFrame bounds a frame on read so a corrupt or
// hostile peer cannot force an unbounded allocation.
const MaxFrame = 64 << 20

// WriteFrame writes one length-prefixed message.
func WriteFrame(w io.Writer, msg []byte) error {
	if len(msg) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(msg))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// ReadFrame reads one length-prefixed message.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}
