package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Stream framing for TCP transports: every message is prefixed by a 4-byte
// little-endian header word. MaxFrame bounds a frame on read so a corrupt
// or hostile peer cannot force an unbounded allocation.
//
// The header word is versioned via its top bit. Version 1 (the original
// format) uses the word as a plain payload length. Version 2 sets bit 31
// (traceFlag) and carries a fixed-size TraceContext between the header and
// the message, so distributed tracing rides inside the existing framing:
//
//	v1 frame := len:uint32                    msg[len]
//	v2 frame := (len|traceFlag):uint32  ctx[10]  msg[len-10]
//
// where the flagged length covers the context plus the message, so a
// forwarder that only understands "read length, copy that many bytes" (see
// ReadRawFrame) stays correct without decoding the context. A v1-only
// reader rejects a v2 frame loudly (the flagged length exceeds MaxFrame)
// instead of misparsing it; a v2 reader accepts both versions, which keeps
// mixed fleets safe during rollout.
const MaxFrame = 64 << 20

// traceFlag marks a frame that carries a TraceContext after the header.
const traceFlag = 1 << 31

// TraceContextSize is the encoded size of a TraceContext.
const TraceContextSize = 10

// TraceContext is the compact causal-trace header a traced frame carries:
// the query identity (the paper's (originator, counter) pair doubles as the
// trace ID), the hop number this frame represents, and the peer that sent
// it. It is deliberately tiny — ten bytes against kilobyte result frames —
// so tracing perturbs the byte ledger it exists to explain as little as
// possible.
type TraceContext struct {
	// Org and Cnt identify the query instance (the trace ID).
	Org int32
	Cnt uint8
	// Hop is the TCP hop number of this transmission: 1 for a frame the
	// originator sends, incremented by every forwarding peer.
	Hop uint8
	// Parent is the device that put this frame on the wire.
	Parent int32
}

// appendTraceContext encodes tc.
func appendTraceContext(b []byte, tc *TraceContext) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(tc.Org))
	b = binary.LittleEndian.AppendUint32(b, uint32(tc.Parent))
	b = append(b, tc.Cnt, tc.Hop)
	return b
}

// decodeTraceContext decodes a TraceContextSize-byte context.
func decodeTraceContext(b []byte) TraceContext {
	return TraceContext{
		Org:    int32(binary.LittleEndian.Uint32(b)),
		Parent: int32(binary.LittleEndian.Uint32(b[4:])),
		Cnt:    b[8],
		Hop:    b[9],
	}
}

// WriteFrame writes one length-prefixed message in the v1 format.
func WriteFrame(w io.Writer, msg []byte) error {
	return WriteFrameCtx(w, msg, nil)
}

// WriteFrameCtx writes one framed message; a non-nil tc upgrades the frame
// to v2 with the trace context piggy-backed. A nil tc produces bytes
// identical to WriteFrame, so untraced deployments stay on the v1 wire
// format and tracing costs nothing when disabled.
func WriteFrameCtx(w io.Writer, msg []byte, tc *TraceContext) error {
	if len(msg) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(msg))
	}
	if tc == nil {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err := w.Write(msg)
		return err
	}
	var hdr [4 + TraceContextSize]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)+TraceContextSize)|traceFlag)
	appendTraceContext(hdr[:4], tc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// ReadFrame reads one length-prefixed message, accepting both frame
// versions and discarding any trace context.
func ReadFrame(r io.Reader) ([]byte, error) {
	msg, _, _, err := ReadFrameCtx(r)
	return msg, err
}

// ReadFrameCtx reads one framed message of either version. For a v2 frame
// it also returns the trace context and traced=true; for a v1 frame the
// context is zero and traced=false.
func ReadFrameCtx(r io.Reader) (msg []byte, tc TraceContext, traced bool, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return nil, tc, false, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	traced = n&traceFlag != 0
	n &^= traceFlag
	if traced {
		if n < TraceContextSize {
			return nil, tc, false, fmt.Errorf("wire: traced frame of %d bytes lacks a trace context", n)
		}
		n -= TraceContextSize
	}
	if n > MaxFrame {
		return nil, tc, false, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	if traced {
		var raw [TraceContextSize]byte
		if _, err = io.ReadFull(r, raw[:]); err != nil {
			return nil, tc, false, err
		}
		tc = decodeTraceContext(raw[:])
	}
	msg = make([]byte, n)
	if _, err = io.ReadFull(r, msg); err != nil {
		return nil, tc, false, err
	}
	return msg, tc, traced, nil
}

// FrameWireSize is the on-air size of one framed message: header word plus
// trace context (when traced) plus payload. Transports use it so byte
// ledgers reflect exactly what crossed the socket.
func FrameWireSize(msgLen int, traced bool) int {
	if traced {
		return 4 + TraceContextSize + msgLen
	}
	return 4 + msgLen
}

// ReadRawFrame reads one frame of either version without decoding it: the
// header word is returned verbatim and the body includes the trace context
// when present. Frame-aware middleboxes (the chaos proxies) use it to
// forward traced frames transparently.
func ReadRawFrame(r io.Reader) (hdr [4]byte, body []byte, err error) {
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return hdr, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:]) &^ traceFlag
	if n > MaxFrame+TraceContextSize {
		return hdr, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	body = make([]byte, n)
	if _, err = io.ReadFull(r, body); err != nil {
		return hdr, nil, err
	}
	return hdr, body, nil
}

// WriteRawFrame writes a frame previously read by ReadRawFrame, preserving
// its version bit and trace context byte-for-byte.
func WriteRawFrame(w io.Writer, hdr [4]byte, body []byte) error {
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}
