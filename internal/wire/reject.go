package wire

import (
	"encoding/binary"
	"fmt"
	"time"

	"manetskyline/internal/core"
)

// The gateway front tier (internal/gateway) answers every query it cannot
// serve with an explicit reject frame instead of a silent timeout — the
// overload contract is "every request gets an answer, even if the answer is
// no". The frame carries a machine-readable reason and a retry-after hint
// the client's backoff can honour:
//
//	reject := kind:uint8 org:int32 cnt:uint8 code:uint8 retryafterms:uint32
//
// Peers that predate the gateway reject the unknown kind at Peek (older
// builds) or skip it in their serve loop (builds that know the kind but do
// not speak the gateway protocol) — either way the frame is dropped and
// counted without disturbing the connection, mirroring the FilterSet
// mixed-version story.

// Reject reason codes carried by Reject.Code.
const (
	// RejectShedRate: the token bucket is empty and the wait for a token
	// would exceed the request deadline.
	RejectShedRate uint8 = iota
	// RejectShedQueue: the admission queue is full.
	RejectShedQueue
	// RejectShedDeadline: the request's deadline expired while it waited
	// (for a token or for a coalesced leader).
	RejectShedDeadline
	// RejectUnavailable: the backend failed or is shutting down.
	RejectUnavailable

	rejectCodeMax = RejectUnavailable
)

// RejectCodeName names a reject code for logs and metrics labels.
func RejectCodeName(code uint8) string {
	switch code {
	case RejectShedRate:
		return "rate"
	case RejectShedQueue:
		return "queue"
	case RejectShedDeadline:
		return "deadline"
	case RejectUnavailable:
		return "unavailable"
	}
	return "unknown"
}

// Reject is a decoded reject message: one query's explicit refusal.
type Reject struct {
	Key core.QueryKey
	// Code classifies the refusal (RejectShed*, RejectUnavailable).
	Code uint8
	// RetryAfterMs hints when a retry could be admitted (0 = unknown).
	RetryAfterMs uint32
}

// RetryAfter returns the hint as a duration.
func (r Reject) RetryAfter() time.Duration {
	return time.Duration(r.RetryAfterMs) * time.Millisecond
}

// EncodeReject serializes a reject message.
func EncodeReject(r Reject) []byte {
	b := make([]byte, 0, 1+4+1+1+4)
	b = append(b, byte(KindReject))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(r.Key.Org)))
	b = append(b, r.Key.Cnt)
	b = append(b, r.Code)
	b = binary.LittleEndian.AppendUint32(b, r.RetryAfterMs)
	return b
}

// DecodeReject parses a message produced by EncodeReject.
func DecodeReject(b []byte) (Reject, error) {
	var r Reject
	if len(b) < 1 || Kind(b[0]) != KindReject {
		return r, fmt.Errorf("wire: not a reject message")
	}
	b = b[1:]
	if len(b) != 4+1+1+4 {
		return r, fmt.Errorf("wire: reject message has %d body bytes, want 10", len(b))
	}
	r.Key.Org = core.DeviceID(int32(binary.LittleEndian.Uint32(b)))
	r.Key.Cnt = b[4]
	r.Code = b[5]
	if r.Code > rejectCodeMax {
		return Reject{}, fmt.Errorf("wire: unknown reject code %d", r.Code)
	}
	r.RetryAfterMs = binary.LittleEndian.Uint32(b[6:])
	return r, nil
}
