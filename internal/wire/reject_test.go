package wire

import (
	"bytes"
	"testing"
	"time"

	"manetskyline/internal/core"
)

func TestRejectRoundTrip(t *testing.T) {
	cases := []Reject{
		{Key: core.QueryKey{Org: 1, Cnt: 2}, Code: RejectShedRate, RetryAfterMs: 50},
		{Key: core.QueryKey{Org: -7, Cnt: 255}, Code: RejectShedQueue},
		{Key: core.QueryKey{Org: 0, Cnt: 0}, Code: RejectShedDeadline, RetryAfterMs: 0},
		{Key: core.QueryKey{Org: 1 << 20, Cnt: 9}, Code: RejectUnavailable, RetryAfterMs: 1<<32 - 1},
	}
	for _, want := range cases {
		enc := EncodeReject(want)
		if k, err := Peek(enc); err != nil || k != KindReject {
			t.Fatalf("Peek(%x) = %v, %v; want KindReject", enc, k, err)
		}
		got, err := DecodeReject(enc)
		if err != nil {
			t.Fatalf("DecodeReject(%+v): %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
		if re := EncodeReject(got); !bytes.Equal(re, enc) {
			t.Errorf("re-encode not stable: %x vs %x", re, enc)
		}
	}
}

func TestRejectRetryAfter(t *testing.T) {
	r := Reject{RetryAfterMs: 1500}
	if got := r.RetryAfter(); got != 1500*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 1.5s", got)
	}
}

func TestDecodeRejectErrors(t *testing.T) {
	good := EncodeReject(Reject{Key: core.QueryKey{Org: 3, Cnt: 1}, Code: RejectShedRate})
	cases := map[string][]byte{
		"empty":      {},
		"wrong kind": {byte(KindQuery), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"truncated":  good[:len(good)-1],
		"trailing":   append(append([]byte(nil), good...), 0),
		"bad code":   {byte(KindReject), 0, 0, 0, 0, 0, rejectCodeMax + 1, 0, 0, 0, 0},
	}
	for name, b := range cases {
		if _, err := DecodeReject(b); err == nil {
			t.Errorf("%s: DecodeReject(%x) accepted, want error", name, b)
		}
	}
}

func TestRejectCodeNames(t *testing.T) {
	want := map[uint8]string{
		RejectShedRate: "rate", RejectShedQueue: "queue",
		RejectShedDeadline: "deadline", RejectUnavailable: "unavailable",
		rejectCodeMax + 1: "unknown",
	}
	for code, name := range want {
		if got := RejectCodeName(code); got != name {
			t.Errorf("RejectCodeName(%d) = %q, want %q", code, got, name)
		}
	}
}
