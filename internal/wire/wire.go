// Package wire defines the binary serialization of the distributed skyline
// protocol: queries (with their piggy-backed filtering tuple) and result
// sets of tuples. Real mobile devices exchange bytes, not Go pointers; the
// TCP transport of the live peer runtime (internal/p2p) and any future
// on-the-wire deployment speak this format. The in-memory transports use
// the same SizeBytes accounting, so simulated byte counts equal the true
// encoded sizes.
//
// Format (all integers little-endian):
//
//	message   := kind:uint8 body
//	query     := org:int32 cnt:uint8 x:float64 y:float64 d:float64
//	             hasFilter:uint8 [tuple vdr:float64]
//	             extraCount:uint16 tuple*          (multi-filter extension)
//	result    := org:int32 cnt:uint8 from:int32 count:uint32 tuple*
//	filterset := org:int32 cnt:uint8 phase:uint8 from:int32
//	             x:float64 y:float64 d:float64 samplek:uint16
//	             count:uint32 tuple*                 (SF; see filterset.go)
//	reject    := org:int32 cnt:uint8 code:uint8
//	             retryafterms:uint32                 (gateway; see reject.go)
//	tuple     := x:float64 y:float64 dim:uint16 attr:float64*
//
// Floats are IEEE-754 bit patterns. The distance d uses math.Inf(1) for
// unconstrained queries and survives the round trip.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"manetskyline/internal/core"
	"manetskyline/internal/tuple"
)

// Kind tags a message on the wire.
type Kind uint8

// Message kinds.
const (
	KindQuery Kind = iota + 1
	KindResult
	// KindFilterSet carries the SF (sampling-filter) subprotocol — sample
	// requests and replies, the filter-set broadcast, and survivor returns —
	// distinguished by a phase byte (see filterset.go). Peers that predate
	// SF reject it at Peek and drop the frame without dropping the
	// connection.
	KindFilterSet
	// KindReject is the gateway front tier's explicit refusal: the query
	// was shed (rate limit, queue full, deadline) or the backend is
	// unavailable, with a retry-after hint (see reject.go). Pre-gateway
	// peers drop it without dropping the connection.
	KindReject
)

// MaxDim bounds tuple dimensionality on decode, guarding against corrupt
// or hostile input.
const MaxDim = 64

// MaxTuples bounds result cardinality on decode.
const MaxTuples = 1 << 22

// appendTuple encodes one tuple.
func appendTuple(b []byte, t tuple.Tuple) []byte {
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.X))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Y))
	b = binary.LittleEndian.AppendUint16(b, uint16(t.Dim()))
	for _, v := range t.Attrs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// tupleSize is the encoded size of one tuple.
func tupleSize(dim int) int { return 8 + 8 + 2 + 8*dim }

// decodeTuple decodes one tuple, returning the remaining bytes.
func decodeTuple(b []byte) (tuple.Tuple, []byte, error) {
	if len(b) < 18 {
		return tuple.Tuple{}, nil, fmt.Errorf("wire: truncated tuple header (%d bytes)", len(b))
	}
	var t tuple.Tuple
	t.X = math.Float64frombits(binary.LittleEndian.Uint64(b))
	t.Y = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	dim := int(binary.LittleEndian.Uint16(b[16:]))
	if dim > MaxDim {
		return tuple.Tuple{}, nil, fmt.Errorf("wire: tuple dimensionality %d exceeds limit %d", dim, MaxDim)
	}
	b = b[18:]
	if len(b) < 8*dim {
		return tuple.Tuple{}, nil, fmt.Errorf("wire: truncated tuple body")
	}
	t.Attrs = make([]float64, dim)
	for i := 0; i < dim; i++ {
		t.Attrs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return t, b[8*dim:], nil
}

// MaxExtraFilters bounds the multi-filter set on decode.
const MaxExtraFilters = 256

// EncodeQuery serializes a query message.
func EncodeQuery(q core.Query) []byte {
	size := 1 + 4 + 1 + 24 + 1 + 2
	if q.Filter != nil {
		size += tupleSize(q.Filter.Dim()) + 8
	}
	for _, t := range q.Extra {
		size += tupleSize(t.Dim())
	}
	b := make([]byte, 0, size)
	b = append(b, byte(KindQuery))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(q.Org)))
	b = append(b, q.Cnt)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(q.Pos.X))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(q.Pos.Y))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(q.D))
	if q.Filter == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = appendTuple(b, *q.Filter)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(q.FilterVDR))
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(q.Extra)))
	for _, t := range q.Extra {
		b = appendTuple(b, t)
	}
	return b
}

// Result is a decoded result message: one device's reduced local skyline
// for one query.
type Result struct {
	Key    core.QueryKey
	From   core.DeviceID
	Tuples []tuple.Tuple
}

// EncodeResult serializes a result message.
func EncodeResult(r Result) []byte {
	size := 1 + 4 + 1 + 4 + 4
	for _, t := range r.Tuples {
		size += tupleSize(t.Dim())
	}
	b := make([]byte, 0, size)
	b = append(b, byte(KindResult))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(r.Key.Org)))
	b = append(b, r.Key.Cnt)
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(r.From)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Tuples)))
	for _, t := range r.Tuples {
		b = appendTuple(b, t)
	}
	return b
}

// Peek returns the message kind without decoding the body.
func Peek(b []byte) (Kind, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("wire: empty message")
	}
	k := Kind(b[0])
	if k != KindQuery && k != KindResult && k != KindFilterSet && k != KindReject {
		return 0, fmt.Errorf("wire: unknown message kind %d", b[0])
	}
	return k, nil
}

// DecodeQuery parses a query message produced by EncodeQuery.
func DecodeQuery(b []byte) (core.Query, error) {
	var q core.Query
	if len(b) < 1 || Kind(b[0]) != KindQuery {
		return q, fmt.Errorf("wire: not a query message")
	}
	b = b[1:]
	if len(b) < 4+1+24+1 {
		return q, fmt.Errorf("wire: truncated query")
	}
	q.Org = core.DeviceID(int32(binary.LittleEndian.Uint32(b)))
	q.Cnt = b[4]
	q.Pos.X = math.Float64frombits(binary.LittleEndian.Uint64(b[5:]))
	q.Pos.Y = math.Float64frombits(binary.LittleEndian.Uint64(b[13:]))
	q.D = math.Float64frombits(binary.LittleEndian.Uint64(b[21:]))
	hasFilter := b[29]
	b = b[30:]
	switch hasFilter {
	case 0:
	case 1:
		t, rest, err := decodeTuple(b)
		if err != nil {
			return q, err
		}
		if len(rest) < 8 {
			return q, fmt.Errorf("wire: bad filter VDR trailer (%d bytes)", len(rest))
		}
		q.Filter = &t
		q.FilterVDR = math.Float64frombits(binary.LittleEndian.Uint64(rest))
		b = rest[8:]
	default:
		return q, fmt.Errorf("wire: bad filter flag %d", hasFilter)
	}
	if len(b) < 2 {
		return q, fmt.Errorf("wire: truncated extra-filter count")
	}
	extra := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if extra > MaxExtraFilters {
		return q, fmt.Errorf("wire: %d extra filters exceeds limit %d", extra, MaxExtraFilters)
	}
	for i := 0; i < extra; i++ {
		t, rest, err := decodeTuple(b)
		if err != nil {
			return q, fmt.Errorf("wire: extra filter %d: %w", i, err)
		}
		q.Extra = append(q.Extra, t)
		b = rest
	}
	if len(b) != 0 {
		return q, fmt.Errorf("wire: %d trailing bytes after query", len(b))
	}
	return q, nil
}

// DecodeResult parses a result message produced by EncodeResult.
func DecodeResult(b []byte) (Result, error) {
	var r Result
	if len(b) < 1 || Kind(b[0]) != KindResult {
		return r, fmt.Errorf("wire: not a result message")
	}
	b = b[1:]
	if len(b) < 4+1+4+4 {
		return r, fmt.Errorf("wire: truncated result header")
	}
	r.Key.Org = core.DeviceID(int32(binary.LittleEndian.Uint32(b)))
	r.Key.Cnt = b[4]
	r.From = core.DeviceID(int32(binary.LittleEndian.Uint32(b[5:])))
	count := binary.LittleEndian.Uint32(b[9:])
	if count > MaxTuples {
		return r, fmt.Errorf("wire: result claims %d tuples, limit %d", count, MaxTuples)
	}
	b = b[13:]
	r.Tuples = make([]tuple.Tuple, 0, count)
	for i := uint32(0); i < count; i++ {
		t, rest, err := decodeTuple(b)
		if err != nil {
			return r, fmt.Errorf("wire: tuple %d: %w", i, err)
		}
		r.Tuples = append(r.Tuples, t)
		b = rest
	}
	if len(b) != 0 {
		return r, fmt.Errorf("wire: %d trailing bytes after result", len(b))
	}
	if len(r.Tuples) == 0 {
		r.Tuples = nil
	}
	return r, nil
}
