package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"manetskyline/internal/core"
	"manetskyline/internal/tuple"
)

func TestFilterSetRoundTrip(t *testing.T) {
	cases := []FilterSet{
		{Key: core.QueryKey{Org: 1, Cnt: 2}, Phase: SFPhaseSampleRequest,
			Pos: tuple.Point{X: 100, Y: 200}, D: 250, SampleK: 2},
		{Key: core.QueryKey{Org: 9, Cnt: 0}, Phase: SFPhaseSampleReply, From: 7,
			Tuples: []tuple.Tuple{tp(1, 2, 60, 3), tp(4, 5, 70, 4)}},
		{Key: core.QueryKey{Org: -3, Cnt: 255}, Phase: SFPhaseFilterSet,
			Pos: tuple.Point{X: -1, Y: 1e9}, D: math.Inf(1),
			Tuples: []tuple.Tuple{tp(0, 0, 12, 1)}},
		{Key: core.QueryKey{Org: 42, Cnt: 17}, Phase: SFPhaseSurvivors, From: 88},
	}
	for i, m := range cases {
		b := EncodeFilterSet(m)
		if k, err := Peek(b); err != nil || k != KindFilterSet {
			t.Fatalf("case %d: Peek = %v, %v", i, k, err)
		}
		got, err := DecodeFilterSet(b)
		if err != nil {
			t.Fatalf("case %d: DecodeFilterSet: %v", i, err)
		}
		// Inf survives, so DeepEqual works for these finite-or-Inf cases.
		if !reflect.DeepEqual(m, got) {
			t.Errorf("case %d: round trip mismatch:\n%+v\n%+v", i, m, got)
		}
	}
}

func TestFilterSetRejectsCorruption(t *testing.T) {
	good := EncodeFilterSet(FilterSet{
		Key: core.QueryKey{Org: 1, Cnt: 2}, Phase: SFPhaseFilterSet,
		D:      300,
		Tuples: []tuple.Tuple{tp(1, 2, 3, 4)},
	})
	for n := 0; n < len(good); n++ {
		if _, err := DecodeFilterSet(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	if _, err := DecodeFilterSet(append(append([]byte{}, good...), 0xFF)); err == nil {
		t.Errorf("trailing garbage should be rejected")
	}

	// An out-of-range phase byte must be rejected.
	bad := append([]byte{}, good...)
	bad[6] = sfPhaseMax + 1
	if _, err := DecodeFilterSet(bad); err == nil {
		t.Errorf("unknown phase should be rejected")
	}

	// A hostile tuple count must be rejected before allocation.
	h := EncodeFilterSet(FilterSet{Key: core.QueryKey{Org: 1, Cnt: 1}})
	copy(h[len(h)-4:], []byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := DecodeFilterSet(h); err == nil {
		t.Errorf("hostile tuple count should be rejected")
	}

	// Cross-kind confusion must fail cleanly in both directions.
	if _, err := DecodeFilterSet(EncodeQuery(core.Query{Org: 1, Cnt: 1, D: 100})); err == nil {
		t.Errorf("query bytes must not decode as filter set")
	}
	if _, err := DecodeQuery(good); err == nil {
		t.Errorf("filter-set bytes must not decode as query")
	}
	if _, err := DecodeResult(good); err == nil {
		t.Errorf("filter-set bytes must not decode as result")
	}
}

// FuzzWireFilterSetRoundTrip drives EncodeFilterSet from arbitrary structured
// inputs: every message SF can construct must encode, decode without error,
// and re-encode to the identical bytes. Seeds covering all four phases are
// checked in under testdata/fuzz.
func FuzzWireFilterSetRoundTrip(f *testing.F) {
	f.Add(int32(1), uint8(2), uint8(0), int32(0), 100.0, 200.0, 250.0, uint16(2), []byte{})
	f.Add(int32(7), uint8(0), uint8(1), int32(9), 0.0, 0.0, -1.0, uint16(0), []byte{2, 1, 2, 3, 4})
	f.Add(int32(-5), uint8(255), uint8(2), int32(3), 1e18, -1e18, 0.0, uint16(8), []byte{4, 9, 9, 9, 9, 1, 1, 1, 1})
	f.Add(int32(42), uint8(17), uint8(3), int32(88), -3.5, 2.5, 600.0, uint16(1), []byte{1, 30, 31})
	f.Fuzz(func(t *testing.T, org int32, cnt, phase uint8, from int32,
		x, y, d float64, samplek uint16, raw []byte) {
		m := FilterSet{
			Key:     core.QueryKey{Org: core.DeviceID(org), Cnt: cnt},
			Phase:   phase % (sfPhaseMax + 1),
			From:    core.DeviceID(from),
			Pos:     tuple.Point{X: x, Y: y},
			D:       d,
			SampleK: samplek,
			Tuples:  fuzzTuples(raw),
		}
		enc := EncodeFilterSet(m)
		dec, err := DecodeFilterSet(enc)
		if err != nil {
			t.Fatalf("decode of encoded filter set failed: %v", err)
		}
		if re := EncodeFilterSet(dec); !bytes.Equal(re, enc) {
			t.Fatalf("filter-set round trip not stable:\n in: %x\nout: %x", enc, re)
		}
		if len(dec.Tuples) != len(m.Tuples) {
			t.Fatalf("round trip changed cardinality: %d vs %d", len(dec.Tuples), len(m.Tuples))
		}
	})
}

// FuzzDecodeFilterSet is the decode-side contract: arbitrary bytes must never
// panic, and everything accepted must re-encode canonically.
func FuzzDecodeFilterSet(f *testing.F) {
	f.Add(EncodeFilterSet(FilterSet{Key: core.QueryKey{Org: 1, Cnt: 1}, Phase: SFPhaseSampleRequest, D: 250}))
	f.Add(EncodeFilterSet(FilterSet{
		Key: core.QueryKey{Org: 2, Cnt: 9}, Phase: SFPhaseSurvivors, From: 5,
		Tuples: []tuple.Tuple{{X: 1, Y: 2, Attrs: []float64{3, 4}}},
	}))
	f.Add([]byte{byte(KindFilterSet)})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeFilterSet(b)
		if err != nil {
			return
		}
		re := EncodeFilterSet(m)
		if string(re) != string(b) {
			t.Fatalf("accepted non-canonical filter-set encoding:\n in: %x\nout: %x", b, re)
		}
	})
}
