package wire

import (
	"bytes"
	"io"
	"testing"
)

func BenchmarkWriteFrameLegacy(b *testing.B) {
	msg := make([]byte, 96)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(io.Discard, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteFrameCtxNil(b *testing.B) {
	msg := make([]byte, 96)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteFrameCtx(io.Discard, msg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteFrameCtxTraced(b *testing.B) {
	msg := make([]byte, 96)
	tc := &TraceContext{Org: 7, Cnt: 3, Hop: 2, Parent: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteFrameCtx(io.Discard, msg, tc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFrameCtxTraced(b *testing.B) {
	msg := make([]byte, 96)
	tc := &TraceContext{Org: 7, Cnt: 3, Hop: 2, Parent: 4}
	var buf bytes.Buffer
	if err := WriteFrameCtx(&buf, msg, tc); err != nil {
		b.Fatal(err)
	}
	frame := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := bytes.NewReader(frame)
		if _, _, _, err := ReadFrameCtx(r); err != nil {
			b.Fatal(err)
		}
	}
}
