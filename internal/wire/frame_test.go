package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestFrameCtxRoundTrip(t *testing.T) {
	msgs := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xAB}, 4096)}
	ctxs := []*TraceContext{
		nil,
		{Org: 0, Cnt: 0, Hop: 0, Parent: 0},
		{Org: 7, Cnt: 3, Hop: 1, Parent: 7},
		{Org: -2, Cnt: 255, Hop: 255, Parent: 1<<31 - 1},
	}
	for _, tc := range ctxs {
		for _, msg := range msgs {
			var buf bytes.Buffer
			if err := WriteFrameCtx(&buf, msg, tc); err != nil {
				t.Fatalf("WriteFrameCtx: %v", err)
			}
			wantSize := FrameWireSize(len(msg), tc != nil)
			if buf.Len() != wantSize {
				t.Errorf("frame size %d, FrameWireSize says %d", buf.Len(), wantSize)
			}
			got, gotTC, traced, err := ReadFrameCtx(&buf)
			if err != nil {
				t.Fatalf("ReadFrameCtx: %v", err)
			}
			if !bytes.Equal(got, msg) {
				t.Errorf("payload mismatch: %x vs %x", got, msg)
			}
			if traced != (tc != nil) {
				t.Errorf("traced = %v for ctx %v", traced, tc)
			}
			if tc != nil && gotTC != *tc {
				t.Errorf("ctx round trip: got %+v, want %+v", gotTC, *tc)
			}
		}
	}
}

// TestFrameCtxNilMatchesLegacy pins the compatibility contract: a nil trace
// context produces the v1 byte stream exactly, and a v1-era reader (which
// treats the header word as a plain length) reads it unchanged.
func TestFrameCtxNilMatchesLegacy(t *testing.T) {
	msg := []byte("legacy payload")
	var a, b bytes.Buffer
	if err := WriteFrame(&a, msg); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrameCtx(&b, msg, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("nil-ctx frame differs from legacy frame:\n%x\n%x", a.Bytes(), b.Bytes())
	}
	n := binary.LittleEndian.Uint32(a.Bytes())
	if n != uint32(len(msg)) {
		t.Fatalf("legacy header word = %d, want plain length %d", n, len(msg))
	}
}

// TestTracedFrameRejectedByLegacyLengthCheck documents the failure mode for
// a v1-only reader: the flagged header word exceeds MaxFrame, so the frame
// is rejected loudly instead of misparsed as a giant payload.
func TestTracedFrameRejectedByLegacyLengthCheck(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameCtx(&buf, []byte("x"), &TraceContext{Org: 1}); err != nil {
		t.Fatal(err)
	}
	n := binary.LittleEndian.Uint32(buf.Bytes())
	if n <= MaxFrame {
		t.Fatalf("traced header word %d would pass a v1 length check", n)
	}
}

func TestReadFrameDiscardsCtx(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameCtx(&buf, []byte("msg"), &TraceContext{Org: 9, Cnt: 1, Hop: 2, Parent: 4}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame on traced frame: %v", err)
	}
	if string(got) != "msg" {
		t.Errorf("payload = %q", got)
	}
}

// TestRawFramePassthrough pins the middlebox contract: read-raw + write-raw
// reproduces both frame versions byte-for-byte.
func TestRawFramePassthrough(t *testing.T) {
	var in bytes.Buffer
	if err := WriteFrame(&in, []byte("plain")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrameCtx(&in, []byte("traced"), &TraceContext{Org: 3, Cnt: 2, Hop: 1, Parent: 0}); err != nil {
		t.Fatal(err)
	}
	orig := append([]byte(nil), in.Bytes()...)
	var out bytes.Buffer
	for i := 0; i < 2; i++ {
		hdr, body, err := ReadRawFrame(&in)
		if err != nil {
			t.Fatalf("ReadRawFrame %d: %v", i, err)
		}
		if err := WriteRawFrame(&out, hdr, body); err != nil {
			t.Fatalf("WriteRawFrame %d: %v", i, err)
		}
	}
	if !bytes.Equal(out.Bytes(), orig) {
		t.Fatalf("raw passthrough not byte-identical:\n%x\n%x", out.Bytes(), orig)
	}
	// The forwarded traced frame still decodes with its context intact.
	var replay bytes.Buffer
	replay.Write(out.Bytes())
	if _, err := ReadFrame(&replay); err != nil {
		t.Fatal(err)
	}
	msg, tc, traced, err := ReadFrameCtx(&replay)
	if err != nil || !traced {
		t.Fatalf("forwarded traced frame lost its context (traced=%v err=%v)", traced, err)
	}
	if string(msg) != "traced" || tc.Org != 3 || tc.Hop != 1 {
		t.Errorf("forwarded frame decoded to %q %+v", msg, tc)
	}
}

func TestTracedFrameTruncations(t *testing.T) {
	var full bytes.Buffer
	if err := WriteFrameCtx(&full, []byte("payload"), &TraceContext{Org: 5, Parent: 2, Hop: 3, Cnt: 1}); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		_, _, _, err := ReadFrameCtx(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Errorf("truncation at %d of %d accepted", cut, len(raw))
		}
	}
	// A flagged frame too short to hold a context is rejected.
	var bad bytes.Buffer
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(TraceContextSize-1)|traceFlag)
	bad.Write(hdr[:])
	bad.Write(make([]byte, TraceContextSize-1))
	if _, _, _, err := ReadFrameCtx(&bad); err == nil {
		t.Error("undersized traced frame accepted")
	}
}

// FuzzFrameCtxRoundTrip drives the framing from structured inputs: every
// frame we can write must read back identically, traced or not.
func FuzzFrameCtxRoundTrip(f *testing.F) {
	f.Add([]byte("msg"), true, int32(1), uint8(2), uint8(3), int32(4))
	f.Add([]byte{}, false, int32(0), uint8(0), uint8(0), int32(0))
	f.Add(bytes.Repeat([]byte{7}, 100), true, int32(-1), uint8(255), uint8(255), int32(-9))
	f.Fuzz(func(t *testing.T, msg []byte, traced bool, org int32, cnt, hop uint8, parent int32) {
		var tc *TraceContext
		if traced {
			tc = &TraceContext{Org: org, Cnt: cnt, Hop: hop, Parent: parent}
		}
		var buf bytes.Buffer
		if err := WriteFrameCtx(&buf, msg, tc); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, gotTC, gotTraced, err := ReadFrameCtx(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, msg) || gotTraced != traced {
			t.Fatalf("round trip changed frame: %x/%v vs %x/%v", got, gotTraced, msg, traced)
		}
		if traced && gotTC != *tc {
			t.Fatalf("context changed: %+v vs %+v", gotTC, *tc)
		}
		// Raw passthrough must preserve the stream byte-for-byte.
		hdr, body, err := ReadRawFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("raw read: %v", err)
		}
		var out bytes.Buffer
		if err := WriteRawFrame(&out, hdr, body); err != nil {
			t.Fatalf("raw write: %v", err)
		}
		if !bytes.Equal(out.Bytes(), buf.Bytes()) {
			t.Fatal("raw passthrough not identical")
		}
	})
}
