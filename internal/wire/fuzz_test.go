package wire

import (
	"bytes"
	"testing"

	"manetskyline/internal/core"
	"manetskyline/internal/tuple"
)

// fuzzTuples decodes a compact byte script into a bag of tuples: the first
// byte picks the dimensionality, the rest become coarse attribute values.
// Coarse domains and shared bytes force ties and duplicates.
func fuzzTuples(raw []byte) []tuple.Tuple {
	if len(raw) == 0 {
		return nil
	}
	dim := 1 + int(raw[0]%4)
	raw = raw[1:]
	var ts []tuple.Tuple
	for len(raw) >= dim && len(ts) < 32 {
		attrs := make([]float64, dim)
		for i := range attrs {
			attrs[i] = float64(raw[i] % 32)
		}
		ts = append(ts, tuple.Tuple{
			X: float64(len(ts)), Y: float64(len(ts) % 5), Attrs: attrs,
		})
		raw = raw[dim:]
	}
	return ts
}

// FuzzWireRoundTrip drives the encoders from arbitrary structured inputs:
// every message the system can construct must encode, decode without error,
// and re-encode to the identical bytes. This is the complement of the
// decode-side fuzzers below, which start from arbitrary bytes.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(int32(1), uint8(2), 100.0, 200.0, 250.0, false, 0.0, []byte{}, int32(3))
	f.Add(int32(7), uint8(0), 0.0, 0.0, -1.0, true, 980.5, []byte{2, 1, 2, 3, 4}, int32(0))
	f.Add(int32(-5), uint8(255), 1e18, -1e18, 0.0, true, -3.0, []byte{4, 9, 9, 9, 9, 1, 1, 1, 1}, int32(88))
	f.Fuzz(func(t *testing.T, org int32, cnt uint8, x, y, d float64,
		hasFilter bool, vdr float64, raw []byte, from int32) {
		ts := fuzzTuples(raw)
		q := core.Query{
			Org: core.DeviceID(org), Cnt: cnt,
			Pos: tuple.Point{X: x, Y: y}, D: d,
		}
		if hasFilter && len(ts) > 0 {
			q.Filter = &ts[0]
			q.FilterVDR = vdr
			q.Extra = ts[1:]
		}
		enc := EncodeQuery(q)
		dec, err := DecodeQuery(enc)
		if err != nil {
			t.Fatalf("decode of encoded query failed: %v", err)
		}
		if re := EncodeQuery(dec); !bytes.Equal(re, enc) {
			t.Fatalf("query round trip not stable:\n in: %x\nout: %x", enc, re)
		}
		r := Result{Key: q.Key(), From: core.DeviceID(from), Tuples: ts}
		encR := EncodeResult(r)
		decR, err := DecodeResult(encR)
		if err != nil {
			t.Fatalf("decode of encoded result failed: %v", err)
		}
		if re := EncodeResult(decR); !bytes.Equal(re, encR) {
			t.Fatalf("result round trip not stable:\n in: %x\nout: %x", encR, re)
		}
		if len(decR.Tuples) != len(ts) {
			t.Fatalf("result round trip changed cardinality: %d vs %d", len(decR.Tuples), len(ts))
		}
	})
}

// FuzzDecodeQuery exercises the decoder with arbitrary bytes: it must never
// panic, and everything it accepts must re-encode to the same bytes
// (canonical form).
func FuzzDecodeQuery(f *testing.F) {
	flt := tuple.Tuple{X: 1, Y: 2, Attrs: []float64{60, 3}}
	f.Add(EncodeQuery(core.Query{Org: 1, Cnt: 2, D: 250}))
	f.Add(EncodeQuery(core.Query{Org: 3, Cnt: 4, Filter: &flt, FilterVDR: 980}))
	f.Add([]byte{})
	f.Add([]byte{byte(KindQuery)})
	f.Fuzz(func(t *testing.T, b []byte) {
		q, err := DecodeQuery(b)
		if err != nil {
			return
		}
		re := EncodeQuery(q)
		if string(re) != string(b) {
			t.Fatalf("accepted non-canonical query encoding:\n in: %x\nout: %x", b, re)
		}
	})
}

// FuzzDecodeReject is the decode-side contract for the gateway's reject
// frame: arbitrary bytes never panic, and every accepted message re-encodes
// to the identical (canonical) bytes. Seeds live in
// testdata/fuzz/FuzzDecodeReject.
func FuzzDecodeReject(f *testing.F) {
	f.Add(EncodeReject(Reject{Key: core.QueryKey{Org: 1, Cnt: 2}, Code: RejectShedRate, RetryAfterMs: 50}))
	f.Add(EncodeReject(Reject{Key: core.QueryKey{Org: -9, Cnt: 255}, Code: RejectUnavailable, RetryAfterMs: 1<<32 - 1}))
	f.Add([]byte{byte(KindReject)})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeReject(b)
		if err != nil {
			return
		}
		re := EncodeReject(r)
		if string(re) != string(b) {
			t.Fatalf("accepted non-canonical reject encoding:\n in: %x\nout: %x", b, re)
		}
	})
}

// FuzzDecodeResult is the same contract for result messages.
func FuzzDecodeResult(f *testing.F) {
	f.Add(EncodeResult(Result{Key: core.QueryKey{Org: 1, Cnt: 1}}))
	f.Add(EncodeResult(Result{
		Key:    core.QueryKey{Org: 2, Cnt: 9},
		From:   5,
		Tuples: []tuple.Tuple{{X: 1, Y: 2, Attrs: []float64{3, 4}}},
	}))
	f.Add([]byte{byte(KindResult)})
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeResult(b)
		if err != nil {
			return
		}
		re := EncodeResult(r)
		if string(re) != string(b) {
			t.Fatalf("accepted non-canonical result encoding:\n in: %x\nout: %x", b, re)
		}
	})
}
