package wire

import (
	"testing"

	"manetskyline/internal/core"
	"manetskyline/internal/tuple"
)

// FuzzDecodeQuery exercises the decoder with arbitrary bytes: it must never
// panic, and everything it accepts must re-encode to the same bytes
// (canonical form).
func FuzzDecodeQuery(f *testing.F) {
	flt := tuple.Tuple{X: 1, Y: 2, Attrs: []float64{60, 3}}
	f.Add(EncodeQuery(core.Query{Org: 1, Cnt: 2, D: 250}))
	f.Add(EncodeQuery(core.Query{Org: 3, Cnt: 4, Filter: &flt, FilterVDR: 980}))
	f.Add([]byte{})
	f.Add([]byte{byte(KindQuery)})
	f.Fuzz(func(t *testing.T, b []byte) {
		q, err := DecodeQuery(b)
		if err != nil {
			return
		}
		re := EncodeQuery(q)
		if string(re) != string(b) {
			t.Fatalf("accepted non-canonical query encoding:\n in: %x\nout: %x", b, re)
		}
	})
}

// FuzzDecodeResult is the same contract for result messages.
func FuzzDecodeResult(f *testing.F) {
	f.Add(EncodeResult(Result{Key: core.QueryKey{Org: 1, Cnt: 1}}))
	f.Add(EncodeResult(Result{
		Key:    core.QueryKey{Org: 2, Cnt: 9},
		From:   5,
		Tuples: []tuple.Tuple{{X: 1, Y: 2, Attrs: []float64{3, 4}}},
	}))
	f.Add([]byte{byte(KindResult)})
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeResult(b)
		if err != nil {
			return
		}
		re := EncodeResult(r)
		if string(re) != string(b) {
			t.Fatalf("accepted non-canonical result encoding:\n in: %x\nout: %x", b, re)
		}
	})
}
