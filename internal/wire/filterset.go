package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"manetskyline/internal/core"
	"manetskyline/internal/tuple"
)

// The SF (sampling-filter) strategy adds one message kind covering its whole
// subprotocol, distinguished by a phase byte:
//
//	filterset := kind:uint8 org:int32 cnt:uint8 phase:uint8 from:int32
//	             x:float64 y:float64 d:float64 samplek:uint16
//	             count:uint32 tuple*
//
// Phase semantics (unused fields are zero and ignored):
//
//	0 sample-request: originator → peers; x/y/d carry the query predicate
//	                  and samplek the per-peer sample budget.
//	1 sample-reply:   peer → originator; from identifies the peer, tuples
//	                  carry its seeded local-skyline sample.
//	2 filter-set:     originator → peers; x/y/d carry the predicate again
//	                  (a peer that missed phase 0 answers from this message
//	                  alone), tuples carry the selected filter set.
//	3 survivors:      peer → originator; tuples carry the peer's local
//	                  skyline pruned by the filter set.
//
// Peers that predate SF reject the unknown kind at Peek and drop the frame
// without disturbing the connection — the mixed-version story is
// reject-don't-crash, verified in internal/tcp.

// SF subprotocol phases carried by FilterSet.Phase.
const (
	SFPhaseSampleRequest uint8 = iota
	SFPhaseSampleReply
	SFPhaseFilterSet
	SFPhaseSurvivors

	sfPhaseMax = SFPhaseSurvivors
)

// FilterSet is a decoded SF subprotocol message.
type FilterSet struct {
	Key   core.QueryKey
	Phase uint8
	// From identifies the replying peer in phases 1 and 3.
	From core.DeviceID
	// Pos and D are the query predicate (phases 0 and 2).
	Pos tuple.Point
	D   float64
	// SampleK is the per-peer sample budget (phase 0).
	SampleK uint16
	// Tuples is the phase's payload: sample, filter set, or survivors.
	Tuples []tuple.Tuple
}

// EncodeFilterSet serializes an SF subprotocol message.
func EncodeFilterSet(m FilterSet) []byte {
	size := 1 + 4 + 1 + 1 + 4 + 24 + 2 + 4
	for _, t := range m.Tuples {
		size += tupleSize(t.Dim())
	}
	b := make([]byte, 0, size)
	b = append(b, byte(KindFilterSet))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(m.Key.Org)))
	b = append(b, m.Key.Cnt)
	b = append(b, m.Phase)
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(m.From)))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Pos.X))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Pos.Y))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.D))
	b = binary.LittleEndian.AppendUint16(b, m.SampleK)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Tuples)))
	for _, t := range m.Tuples {
		b = appendTuple(b, t)
	}
	return b
}

// DecodeFilterSet parses a message produced by EncodeFilterSet.
func DecodeFilterSet(b []byte) (FilterSet, error) {
	var m FilterSet
	if len(b) < 1 || Kind(b[0]) != KindFilterSet {
		return m, fmt.Errorf("wire: not a filter-set message")
	}
	b = b[1:]
	if len(b) < 4+1+1+4+24+2+4 {
		return m, fmt.Errorf("wire: truncated filter-set header (%d bytes)", len(b))
	}
	m.Key.Org = core.DeviceID(int32(binary.LittleEndian.Uint32(b)))
	m.Key.Cnt = b[4]
	m.Phase = b[5]
	if m.Phase > sfPhaseMax {
		return FilterSet{}, fmt.Errorf("wire: unknown SF phase %d", m.Phase)
	}
	m.From = core.DeviceID(int32(binary.LittleEndian.Uint32(b[6:])))
	m.Pos.X = math.Float64frombits(binary.LittleEndian.Uint64(b[10:]))
	m.Pos.Y = math.Float64frombits(binary.LittleEndian.Uint64(b[18:]))
	m.D = math.Float64frombits(binary.LittleEndian.Uint64(b[26:]))
	m.SampleK = binary.LittleEndian.Uint16(b[34:])
	count := binary.LittleEndian.Uint32(b[36:])
	if count > MaxTuples {
		return FilterSet{}, fmt.Errorf("wire: filter set claims %d tuples, limit %d", count, MaxTuples)
	}
	b = b[40:]
	m.Tuples = make([]tuple.Tuple, 0, count)
	for i := uint32(0); i < count; i++ {
		t, rest, err := decodeTuple(b)
		if err != nil {
			return FilterSet{}, fmt.Errorf("wire: filter-set tuple %d: %w", i, err)
		}
		m.Tuples = append(m.Tuples, t)
		b = rest
	}
	if len(b) != 0 {
		return FilterSet{}, fmt.Errorf("wire: %d trailing bytes after filter set", len(b))
	}
	if len(m.Tuples) == 0 {
		m.Tuples = nil
	}
	return m, nil
}
