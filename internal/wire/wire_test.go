package wire

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"manetskyline/internal/core"
	"manetskyline/internal/tuple"
)

func tp(x, y float64, attrs ...float64) tuple.Tuple {
	return tuple.Tuple{X: x, Y: y, Attrs: attrs}
}

func TestQueryRoundTrip(t *testing.T) {
	flt := tp(1.5, -2.5, 60, 3)
	cases := []core.Query{
		{Org: 7, Cnt: 3, Pos: tuple.Point{X: 100, Y: 200}, D: 250},
		{Org: 0, Cnt: 0, Pos: tuple.Point{}, D: math.Inf(1)},
		{Org: 42, Cnt: 255, Pos: tuple.Point{X: -1, Y: 1e9}, D: 0.001,
			Filter: &flt, FilterVDR: 980},
		{Org: 9, Cnt: 1, D: 300, Filter: &flt, FilterVDR: 5,
			Extra: []tuple.Tuple{tp(1, 1, 70, 4), tp(2, 2, 100, 2)}},
	}
	for i, q := range cases {
		b := EncodeQuery(q)
		if k, err := Peek(b); err != nil || k != KindQuery {
			t.Fatalf("case %d: Peek = %v, %v", i, k, err)
		}
		got, err := DecodeQuery(b)
		if err != nil {
			t.Fatalf("case %d: DecodeQuery: %v", i, err)
		}
		if !queriesEqual(q, got) {
			t.Errorf("case %d: round trip mismatch:\n%+v\n%+v", i, q, got)
		}
	}
}

func queriesEqual(a, b core.Query) bool {
	if a.Org != b.Org || a.Cnt != b.Cnt || a.Pos != b.Pos {
		return false
	}
	if a.D != b.D && !(math.IsInf(a.D, 1) && math.IsInf(b.D, 1)) {
		return false
	}
	if (a.Filter == nil) != (b.Filter == nil) {
		return false
	}
	if a.Filter != nil {
		if !a.Filter.Equal(*b.Filter) || a.FilterVDR != b.FilterVDR {
			return false
		}
	}
	if len(a.Extra) != len(b.Extra) {
		return false
	}
	for i := range a.Extra {
		if !a.Extra[i].Equal(b.Extra[i]) {
			return false
		}
	}
	return true
}

func TestResultRoundTrip(t *testing.T) {
	cases := []Result{
		{Key: core.QueryKey{Org: 1, Cnt: 2}, From: 3},
		{Key: core.QueryKey{Org: 9, Cnt: 200}, From: 55, Tuples: []tuple.Tuple{
			tp(1, 2, 3), tp(4, 5, 6), tp(-1e6, 1e-6, 0),
		}},
	}
	for i, r := range cases {
		b := EncodeResult(r)
		if k, err := Peek(b); err != nil || k != KindResult {
			t.Fatalf("case %d: Peek = %v, %v", i, k, err)
		}
		got, err := DecodeResult(b)
		if err != nil {
			t.Fatalf("case %d: DecodeResult: %v", i, err)
		}
		if !reflect.DeepEqual(r, got) {
			t.Errorf("case %d: round trip mismatch:\n%+v\n%+v", i, r, got)
		}
	}
}

func TestQuickQueryRoundTrip(t *testing.T) {
	f := func(org int32, cnt uint8, x, y, d float64, hasFilter bool, fx float64, attrs []float64) bool {
		if len(attrs) > MaxDim {
			attrs = attrs[:MaxDim]
		}
		q := core.Query{Org: core.DeviceID(org), Cnt: cnt, Pos: tuple.Point{X: x, Y: y}, D: d}
		if hasFilter {
			flt := tuple.Tuple{X: fx, Attrs: attrs}
			q.Filter = &flt
			q.FilterVDR = fx * 2
		}
		got, err := DecodeQuery(EncodeQuery(q))
		if err != nil {
			return false
		}
		// NaN-tolerant comparison: NaN != NaN, so compare bit patterns.
		return bitsEqualQuery(q, got)
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func bitsEqualQuery(a, b core.Query) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if a.Org != b.Org || a.Cnt != b.Cnt ||
		!eq(a.Pos.X, b.Pos.X) || !eq(a.Pos.Y, b.Pos.Y) || !eq(a.D, b.D) {
		return false
	}
	if (a.Filter == nil) != (b.Filter == nil) {
		return false
	}
	if a.Filter != nil {
		if !eq(a.FilterVDR, b.FilterVDR) || !eq(a.Filter.X, b.Filter.X) || !eq(a.Filter.Y, b.Filter.Y) {
			return false
		}
		if len(a.Filter.Attrs) != len(b.Filter.Attrs) {
			return false
		}
		for i := range a.Filter.Attrs {
			if !eq(a.Filter.Attrs[i], b.Filter.Attrs[i]) {
				return false
			}
		}
	}
	return true
}

func TestDecodeRejectsCorruption(t *testing.T) {
	q := core.Query{Org: 1, Cnt: 2, D: 100}
	flt := tp(0, 0, 1, 2)
	qf := q
	qf.Filter = &flt
	r := Result{Key: core.QueryKey{Org: 1, Cnt: 1}, Tuples: []tuple.Tuple{tp(1, 2, 3, 4)}}

	good := [][]byte{EncodeQuery(q), EncodeQuery(qf), EncodeResult(r)}
	for gi, g := range good {
		// Truncations at every length must error, never panic.
		for n := 0; n < len(g); n++ {
			b := g[:n]
			if _, err := DecodeQuery(b); gi < 2 && err == nil {
				t.Fatalf("good[%d] truncated to %d decoded as query", gi, n)
			}
			if _, err := DecodeResult(b); gi == 2 && err == nil {
				t.Fatalf("good[%d] truncated to %d decoded as result", gi, n)
			}
		}
		// Trailing garbage must be rejected.
		b := append(append([]byte{}, g...), 0xFF)
		if _, err := DecodeQuery(b); gi < 2 && err == nil {
			t.Fatalf("good[%d]+garbage decoded as query", gi)
		}
		if _, err := DecodeResult(b); gi == 2 && err == nil {
			t.Fatalf("good[%d]+garbage decoded as result", gi)
		}
	}

	if _, err := Peek(nil); err == nil {
		t.Errorf("Peek(nil) should error")
	}
	if _, err := Peek([]byte{99}); err == nil {
		t.Errorf("unknown kind should error")
	}
	if _, err := DecodeQuery(EncodeResult(r)); err == nil {
		t.Errorf("result bytes must not decode as query")
	}
	if _, err := DecodeResult(EncodeQuery(q)); err == nil {
		t.Errorf("query bytes must not decode as result")
	}
}

func TestDecodeRejectsHostileSizes(t *testing.T) {
	// A result header claiming 4 billion tuples must be rejected before any
	// allocation.
	b := []byte{byte(KindResult)}
	b = append(b, 0, 0, 0, 0) // org
	b = append(b, 1)          // cnt
	b = append(b, 0, 0, 0, 0) // from
	b = append(b, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := DecodeResult(b); err == nil {
		t.Errorf("hostile tuple count should be rejected")
	}
	// A tuple with dim 65535 must be rejected.
	q := []byte{byte(KindQuery)}
	q = append(q, 0, 0, 0, 0)
	q = append(q, 1)
	q = append(q, make([]byte, 24)...)
	q = append(q, 1)                   // has filter
	q = append(q, make([]byte, 16)...) // x, y
	q = append(q, 0xFF, 0xFF)          // dim = 65535
	if _, err := DecodeQuery(q); err == nil {
		t.Errorf("hostile dimensionality should be rejected")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{{1, 2, 3}, {}, bytes.Repeat([]byte{7}, 10000)}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d mismatch", i)
		}
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Errorf("exhausted stream should error")
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Errorf("oversized write should error")
	}
	// A hostile length prefix must be rejected without allocation.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Errorf("hostile length should be rejected")
	}
	// Truncated payload must error.
	buf.Reset()
	buf.Write([]byte{10, 0, 0, 0, 1, 2})
	if _, err := ReadFrame(&buf); err == nil {
		t.Errorf("truncated frame should error")
	}
}
