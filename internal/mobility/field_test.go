package mobility

import (
	"testing"

	"manetskyline/internal/tuple"
)

func TestFieldStaysInBounds(t *testing.T) {
	cfg := DefaultConfig()
	f := NewField(cfg)
	for i := 0; i < 32; i++ {
		f.AddRandom(int64(i + 1))
	}
	for i := 0; i < f.Len(); i++ {
		for ti := 0; ti <= 7200; ti += 7 {
			p := f.Pos(i, float64(ti))
			if p.X < 0 || p.X > cfg.Space || p.Y < 0 || p.Y > cfg.Space {
				t.Fatalf("node %d at t=%d outside area: %v", i, ti, p)
			}
		}
	}
}

func TestFieldContinuityAndSpeedBound(t *testing.T) {
	cfg := DefaultConfig()
	f := NewField(cfg)
	f.Add(tuple.Point{X: 500, Y: 500}, 77)
	prev := f.Pos(0, 0)
	for ti := 0.25; ti < 7200; ti += 0.25 {
		cur := f.Pos(0, ti)
		if d := prev.Dist(cur); d > cfg.SpeedMax*0.25+1e-9 {
			t.Fatalf("discontinuity at t=%v: moved %v in 0.25s", ti, d)
		}
		prev = cur
	}
}

func TestFieldDeterministic(t *testing.T) {
	a, b := NewField(DefaultConfig()), NewField(DefaultConfig())
	a.Add(tuple.Point{X: 10, Y: 20}, 5)
	b.Add(tuple.Point{X: 10, Y: 20}, 5)
	for ti := 0.0; ti < 2000; ti += 13 {
		if a.Pos(0, ti) != b.Pos(0, ti) {
			t.Fatalf("same seed diverged at t=%v", ti)
		}
	}
	c := NewField(DefaultConfig())
	c.Add(tuple.Point{X: 10, Y: 20}, 6)
	diverged := false
	for ti := 0.0; ti < 2000; ti += 13 {
		if a.Pos(0, ti) != c.Pos(0, ti) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Errorf("different seeds gave identical trajectories")
	}
}

func TestFieldForwardOnlyClamp(t *testing.T) {
	f := NewField(DefaultConfig())
	f.Add(tuple.Point{X: 1, Y: 2}, 3)
	if f.Pos(0, 0) != (tuple.Point{X: 1, Y: 2}) {
		t.Fatalf("Pos(0) != start")
	}
	f.Pos(0, 5000) // advance far ahead, discarding old legs
	n := &f.nodes[0]
	if got := f.Pos(0, n.t0-100); got != (tuple.Point{X: n.fromX, Y: n.fromY}) {
		t.Errorf("past query should clamp to current leg start, got %v", got)
	}
}

func TestFieldModelAdapter(t *testing.T) {
	f := NewField(DefaultConfig())
	i := f.AddRandom(9)
	var m Model = f.Model(i)
	if m.Pos(42) != f.Pos(i, 42) {
		t.Errorf("adapter disagrees with direct access")
	}
}

// BenchmarkWaypointPos shows what the leg memo buys. "stationary" queries a
// pausing node at one instant — the pre-memo code re-ran the covering-leg
// scan and re-derived the direction vector every call; "crawl" advances in
// tiny steps within one leg (the radio medium's per-timestep refresh
// pattern); "sweep" jumps whole legs and pays the search path.
func BenchmarkWaypointPos(b *testing.B) {
	b.Run("stationary", func(b *testing.B) {
		w := NewWaypoint(DefaultConfig(), 41)
		// Park the query inside the first pause window.
		t0 := w.legs[0].moveEnd + 1
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = w.Pos(t0)
		}
	})
	b.Run("crawl", func(b *testing.B) {
		w := NewWaypoint(DefaultConfig(), 41)
		b.ReportAllocs()
		t := 0.0
		for i := 0; i < b.N; i++ {
			t += 0.001
			if t > 7200 {
				t = 0.001
			}
			_ = w.Pos(t)
		}
	})
	b.Run("sweep", func(b *testing.B) {
		w := NewWaypoint(DefaultConfig(), 41)
		w.Pos(7200) // materialize the horizon once
		b.ReportAllocs()
		t := 0.0
		for i := 0; i < b.N; i++ {
			t += 173 // ≫ leg length: defeats the memo, exercises the search
			if t > 7200 {
				t = 0.5
			}
			_ = w.Pos(t)
		}
	})
}

// BenchmarkFieldPos is the SoA counterpart of BenchmarkWaypointPos/crawl.
func BenchmarkFieldPos(b *testing.B) {
	f := NewField(DefaultConfig())
	f.AddRandom(41)
	b.ReportAllocs()
	t := 0.0
	for i := 0; i < b.N; i++ {
		t += 0.001
		_ = f.Pos(0, t)
	}
}
