package mobility

import (
	"math"
	"math/rand"
	"testing"

	"manetskyline/internal/tuple"
)

func TestStatic(t *testing.T) {
	s := Static{X: 3, Y: 4}
	if s.Pos(0) != (tuple.Point{X: 3, Y: 4}) || s.Pos(1e6) != (tuple.Point{X: 3, Y: 4}) {
		t.Errorf("static node moved")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Space: 0, SpeedMin: 1, SpeedMax: 2},
		{Space: 10, SpeedMin: 0, SpeedMax: 2},
		{Space: 10, SpeedMin: 3, SpeedMax: 2},
		{Space: 10, SpeedMin: 1, SpeedMax: 2, Pause: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestWaypointStaysInBounds(t *testing.T) {
	cfg := DefaultConfig()
	w := NewWaypoint(cfg, 42)
	for ti := 0; ti <= 7200; ti += 7 {
		p := w.Pos(float64(ti))
		if p.X < 0 || p.X > cfg.Space || p.Y < 0 || p.Y > cfg.Space {
			t.Fatalf("position %v at t=%d outside area", p, ti)
		}
	}
}

func TestWaypointSpeedBounds(t *testing.T) {
	cfg := DefaultConfig()
	w := NewWaypoint(cfg, 7)
	const dt = 0.5
	prev := w.Pos(0)
	for ti := dt; ti < 3600; ti += dt {
		cur := w.Pos(ti)
		speed := prev.Dist(cur) / dt
		// Within a single leg the speed is ≤ SpeedMax; across a turn the
		// chord can only be shorter. Pauses give speed 0.
		if speed > cfg.SpeedMax+1e-9 {
			t.Fatalf("speed %v at t=%v exceeds max %v", speed, ti, cfg.SpeedMax)
		}
		prev = cur
	}
}

func TestWaypointActuallyMovesAndPauses(t *testing.T) {
	cfg := Config{Space: 1000, SpeedMin: 5, SpeedMax: 5, Pause: 100}
	w := NewWaypoint(cfg, 3)
	start := w.Pos(0)
	moved := false
	for ti := 1.0; ti < 600; ti++ {
		if w.Pos(ti).Dist(start) > 1 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatalf("node never moved")
	}
	// Find a pause: some window of ≥ Pause seconds with no movement.
	paused := false
	for ti := 0.0; ti < 3600 && !paused; ti += 1 {
		if w.Pos(ti) == w.Pos(ti+cfg.Pause-1) {
			paused = true
		}
	}
	if !paused {
		t.Errorf("node never paused despite 100s holding time")
	}
}

func TestWaypointDeterministic(t *testing.T) {
	a := NewWaypoint(DefaultConfig(), 5)
	b := NewWaypoint(DefaultConfig(), 5)
	for ti := 0.0; ti < 1000; ti += 13 {
		if a.Pos(ti) != b.Pos(ti) {
			t.Fatalf("same seed diverged at t=%v", ti)
		}
	}
	c := NewWaypoint(DefaultConfig(), 6)
	diverged := false
	for ti := 0.0; ti < 1000; ti += 13 {
		if a.Pos(ti) != c.Pos(ti) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Errorf("different seeds gave identical trajectories")
	}
}

func TestWaypointRandomAccessTimeConsistency(t *testing.T) {
	// Pos must be a pure function of t: asking out of order or repeatedly
	// returns identical values.
	w := NewWaypoint(DefaultConfig(), 11)
	p1000 := w.Pos(1000)
	p10 := w.Pos(10)
	if w.Pos(1000) != p1000 || w.Pos(10) != p10 {
		t.Fatalf("Pos is not a pure function of time")
	}
	if w.Pos(-5) != w.Pos(0) {
		t.Errorf("negative time should clamp to start")
	}
}

func TestWaypointAt(t *testing.T) {
	start := tuple.Point{X: 123, Y: 456}
	w := NewWaypointAt(DefaultConfig(), start, 9)
	if w.Pos(0) != start {
		t.Errorf("Pos(0) = %v, want %v", w.Pos(0), start)
	}
}

func TestWaypointContinuity(t *testing.T) {
	// No teleporting: position change over dt is bounded by SpeedMax*dt.
	cfg := DefaultConfig()
	w := NewWaypoint(cfg, 99)
	for ti := 0.0; ti < 7200; ti += 0.25 {
		d := w.Pos(ti).Dist(w.Pos(ti + 0.25))
		if d > cfg.SpeedMax*0.25+1e-9 {
			t.Fatalf("discontinuity at t=%v: moved %v in 0.25s", ti, d)
		}
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("invalid config should panic")
		}
	}()
	NewWaypoint(Config{}, 1)
}

func TestLegsCoverLongHorizons(t *testing.T) {
	w := NewWaypoint(DefaultConfig(), 2)
	p := w.Pos(100000) // ~28 simulated hours
	if math.IsNaN(p.X) || math.IsNaN(p.Y) {
		t.Fatalf("position is NaN")
	}
}

// TestWaypointCursorPurity checks that the leg cursor is invisible: a
// trajectory queried in an adversarial random order returns bit-identical
// positions to a fresh instance of the same seed queried monotonically.
func TestWaypointCursorPurity(t *testing.T) {
	const seed = 23
	ref := NewWaypoint(DefaultConfig(), seed)
	times := make([]float64, 200)
	want := make([]tuple.Point, len(times))
	for i := range times {
		times[i] = float64(i) * 7.3
		want[i] = ref.Pos(times[i])
	}
	w := NewWaypoint(DefaultConfig(), seed)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		for _, i := range r.Perm(len(times)) {
			if got := w.Pos(times[i]); got != want[i] {
				t.Fatalf("t=%g: cursor-order query %v != monotonic reference %v",
					times[i], got, want[i])
			}
		}
	}
}
