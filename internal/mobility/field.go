package mobility

import "manetskyline/internal/tuple"

// Field is a struct-of-arrays random-waypoint backend for very large
// fleets. A *Waypoint costs ~5 KB of heap per node — the math/rand source
// alone is a 607-word table — and materializes every leg it has ever
// walked. A Field node is one flat ~88-byte record: an 8-byte splitmix64
// state and the current leg only, since the simulator queries positions at
// the engine clock, which never runs backwards. At 100k nodes that is the
// difference between ~500 MB of trajectory state and ~9 MB.
//
// The trade-offs, stated plainly:
//
//   - Pos is forward-only per node: asking for a time before the current
//     leg clamps to the leg's start. The radio medium only queries the
//     present, so this is invisible there.
//   - Trajectories are NOT bit-compatible with Waypoint — the RNG differs —
//     so Field is opt-in (Params.CompactMobility in the manet layer) and
//     never used where golden traces apply.
type Field struct {
	cfg   Config
	nodes []fieldNode
}

// fieldNode is one node's trajectory state: RNG + current leg + direction.
type fieldNode struct {
	state          uint64 // splitmix64 state: the whole RNG, 8 bytes
	t0, moveEnd    float64
	t1             float64
	fromX, fromY   float64
	toX, toY       float64
	dx, dy         float64
}

// NewField creates an empty field; Add nodes before the simulation starts.
func NewField(cfg Config) *Field {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Field{cfg: cfg}
}

// splitmix64 is the tiny, well-distributed PRNG step used per node
// (Steele et al., "Fast Splittable Pseudorandom Number Generators").
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9fe
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// f64 draws a uniform float64 in [0, 1).
func (n *fieldNode) f64() float64 {
	return float64(splitmix64(&n.state)>>11) / (1 << 53)
}

// Add registers a node starting at a fixed position with its own seed and
// returns its index.
func (f *Field) Add(start tuple.Point, seed int64) int {
	f.nodes = append(f.nodes, fieldNode{state: uint64(seed)})
	i := len(f.nodes) - 1
	n := &f.nodes[i]
	// Scramble once so nearby seeds diverge immediately.
	splitmix64(&n.state)
	f.nextLeg(n, 0, start.X, start.Y)
	return i
}

// AddRandom registers a node starting at a uniform random position.
func (f *Field) AddRandom(seed int64) int {
	f.nodes = append(f.nodes, fieldNode{state: uint64(seed)})
	i := len(f.nodes) - 1
	n := &f.nodes[i]
	splitmix64(&n.state)
	x := n.f64() * f.cfg.Space
	y := n.f64() * f.cfg.Space
	f.nextLeg(n, 0, x, y)
	return i
}

// Len returns the number of registered nodes.
func (f *Field) Len() int { return len(f.nodes) }

// nextLeg replaces n's current leg with a fresh draw from (t0, from).
func (f *Field) nextLeg(n *fieldNode, t0, fromX, fromY float64) {
	toX := n.f64() * f.cfg.Space
	toY := n.f64() * f.cfg.Space
	speed := f.cfg.SpeedMin + n.f64()*(f.cfg.SpeedMax-f.cfg.SpeedMin)
	dx, dy := toX-fromX, toY-fromY
	travel := tuple.Point{X: fromX, Y: fromY}.Dist(tuple.Point{X: toX, Y: toY}) / speed
	n.t0 = t0
	n.moveEnd = t0 + travel
	n.t1 = t0 + travel + f.cfg.Pause
	n.fromX, n.fromY = fromX, fromY
	n.toX, n.toY = toX, toY
	n.dx, n.dy = dx, dy
}

// Pos returns node i's position at time t. Forward-only: times before the
// current leg clamp to the leg start (the engine clock never rewinds, so
// simulation queries never hit the clamp).
func (f *Field) Pos(i int, t float64) tuple.Point {
	n := &f.nodes[i]
	for t > n.t1 {
		f.nextLeg(n, n.t1, n.toX, n.toY)
	}
	if t <= n.t0 {
		return tuple.Point{X: n.fromX, Y: n.fromY}
	}
	if t >= n.moveEnd {
		return tuple.Point{X: n.toX, Y: n.toY} // pausing
	}
	frac := (t - n.t0) / (n.moveEnd - n.t0)
	return tuple.Point{X: n.fromX + frac*n.dx, Y: n.fromY + frac*n.dy}
}

// Model adapts one field node to the Model interface. The adapter is a
// two-word value; boxing it into the interface is the only per-node
// allocation the field layout incurs.
func (f *Field) Model(i int) Model { return fieldModel{f: f, i: int32(i)} }

type fieldModel struct {
	f *Field
	i int32
}

func (m fieldModel) Pos(t float64) tuple.Point { return m.f.Pos(int(m.i), t) }
