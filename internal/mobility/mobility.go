// Package mobility implements node movement models for the MANET
// simulation. The paper's experiments use the random waypoint model of
// Broch et al. (Table 7: speeds 2-10 m/s, 120 s holding time): every device
// repeatedly picks a uniform random destination in the spatial domain,
// travels there in a straight line at a uniform random speed, pauses for the
// holding time, and repeats.
//
// Positions are a pure function of simulated time: trajectories are
// materialized lazily as legs, so any component may ask for a node's
// position at any (non-decreasing or decreasing) time without coordination.
package mobility

import (
	"fmt"
	"math/rand"

	"manetskyline/internal/tuple"
)

// Model yields a node's position at a given simulated time.
type Model interface {
	// Pos returns the position at time t ≥ 0 (seconds).
	Pos(t float64) tuple.Point
}

// Static is a motionless node, used by the pre-tests and as a degenerate
// mobility model.
type Static tuple.Point

// Pos returns the fixed position.
func (s Static) Pos(float64) tuple.Point { return tuple.Point(s) }

// Config parameterizes the random waypoint model.
type Config struct {
	// Space is the side length of the square movement area.
	Space float64
	// SpeedMin and SpeedMax bound the per-leg uniform speed (m/s).
	SpeedMin, SpeedMax float64
	// Pause is the holding time at each destination (seconds).
	Pause float64
}

// DefaultConfig returns the paper's Table 7 settings over a 1000×1000 area.
func DefaultConfig() Config {
	return Config{Space: 1000, SpeedMin: 2, SpeedMax: 10, Pause: 120}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Space <= 0 {
		return fmt.Errorf("mobility: non-positive space %g", c.Space)
	}
	if c.SpeedMin <= 0 || c.SpeedMax < c.SpeedMin {
		return fmt.Errorf("mobility: bad speed range [%g,%g]", c.SpeedMin, c.SpeedMax)
	}
	if c.Pause < 0 {
		return fmt.Errorf("mobility: negative pause %g", c.Pause)
	}
	return nil
}

// Waypoint is one node's random-waypoint trajectory.
type Waypoint struct {
	cfg  Config
	rng  *rand.Rand
	legs []leg // materialized prefix of the trajectory
	cur  int   // last-hit leg index; simulation queries are near-monotonic
}

// leg covers [t0, t1): movement from a to b, then a pause until t1.
type leg struct {
	t0, moveEnd, t1 float64
	from, to        tuple.Point
}

// NewWaypoint creates a trajectory starting at a uniform random position.
// Each node must get its own rng (or at least its own seed) so trajectories
// are independent yet reproducible.
func NewWaypoint(cfg Config, seed int64) *Waypoint {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	w := &Waypoint{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	start := w.randPoint()
	w.legs = append(w.legs, w.nextLeg(0, start))
	return w
}

// NewWaypointAt creates a trajectory starting at a fixed position, used
// when devices begin at the centre of their data's grid cell.
func NewWaypointAt(cfg Config, start tuple.Point, seed int64) *Waypoint {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	w := &Waypoint{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	w.legs = append(w.legs, w.nextLeg(0, start))
	return w
}

func (w *Waypoint) randPoint() tuple.Point {
	return tuple.Point{
		X: w.rng.Float64() * w.cfg.Space,
		Y: w.rng.Float64() * w.cfg.Space,
	}
}

func (w *Waypoint) nextLeg(t0 float64, from tuple.Point) leg {
	to := w.randPoint()
	speed := w.cfg.SpeedMin + w.rng.Float64()*(w.cfg.SpeedMax-w.cfg.SpeedMin)
	travel := from.Dist(to) / speed
	return leg{t0: t0, moveEnd: t0 + travel, t1: t0 + travel + w.cfg.Pause, from: from, to: to}
}

// covers reports whether leg i is the covering leg for time t, i.e. the
// first leg whose end time reaches t — the exact element the binary search
// finds.
func (w *Waypoint) covers(i int, t float64) bool {
	return w.legs[i].t1 >= t && (i == 0 || w.legs[i-1].t1 < t)
}

// Pos returns the node's position at time t. Times before zero clamp to the
// starting position. Position remains a pure function of t; the leg cursor
// only short-circuits the search, so queries may arrive in any order.
func (w *Waypoint) Pos(t float64) tuple.Point {
	if t <= 0 {
		return w.legs[0].from
	}
	// Extend the trajectory to cover t.
	for w.legs[len(w.legs)-1].t1 < t {
		last := w.legs[len(w.legs)-1]
		w.legs = append(w.legs, w.nextLeg(last.t1, last.to))
	}
	// Simulation time crawls forward, so the covering leg is almost always
	// the last-hit leg or its successor; fall back to binary search when
	// the query jumps elsewhere.
	i := w.cur
	if i >= len(w.legs) {
		i = len(w.legs) - 1
	}
	if !w.covers(i, t) {
		if i+1 < len(w.legs) && w.covers(i+1, t) {
			i++
		} else {
			lo, hi := 0, len(w.legs)-1
			for lo < hi {
				mid := (lo + hi) / 2
				if w.legs[mid].t1 < t {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			i = lo
		}
	}
	w.cur = i
	l := w.legs[i]
	if t >= l.moveEnd {
		return l.to // pausing
	}
	frac := (t - l.t0) / (l.moveEnd - l.t0)
	return tuple.Point{
		X: l.from.X + frac*(l.to.X-l.from.X),
		Y: l.from.Y + frac*(l.to.Y-l.from.Y),
	}
}
