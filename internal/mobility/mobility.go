// Package mobility implements node movement models for the MANET
// simulation. The paper's experiments use the random waypoint model of
// Broch et al. (Table 7: speeds 2-10 m/s, 120 s holding time): every device
// repeatedly picks a uniform random destination in the spatial domain,
// travels there in a straight line at a uniform random speed, pauses for the
// holding time, and repeats.
//
// Positions are a pure function of simulated time: trajectories are
// materialized lazily as legs, so any component may ask for a node's
// position at any (non-decreasing or decreasing) time without coordination.
package mobility

import (
	"fmt"
	"math/rand"

	"manetskyline/internal/tuple"
)

// Model yields a node's position at a given simulated time.
type Model interface {
	// Pos returns the position at time t ≥ 0 (seconds).
	Pos(t float64) tuple.Point
}

// Static is a motionless node, used by the pre-tests and as a degenerate
// mobility model.
type Static tuple.Point

// Pos returns the fixed position.
func (s Static) Pos(float64) tuple.Point { return tuple.Point(s) }

// Config parameterizes the random waypoint model.
type Config struct {
	// Space is the side length of the square movement area.
	Space float64
	// SpeedMin and SpeedMax bound the per-leg uniform speed (m/s).
	SpeedMin, SpeedMax float64
	// Pause is the holding time at each destination (seconds).
	Pause float64
}

// DefaultConfig returns the paper's Table 7 settings over a 1000×1000 area.
func DefaultConfig() Config {
	return Config{Space: 1000, SpeedMin: 2, SpeedMax: 10, Pause: 120}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Space <= 0 {
		return fmt.Errorf("mobility: non-positive space %g", c.Space)
	}
	if c.SpeedMin <= 0 || c.SpeedMax < c.SpeedMin {
		return fmt.Errorf("mobility: bad speed range [%g,%g]", c.SpeedMin, c.SpeedMax)
	}
	if c.Pause < 0 {
		return fmt.Errorf("mobility: negative pause %g", c.Pause)
	}
	return nil
}

// Waypoint is one node's random-waypoint trajectory.
type Waypoint struct {
	cfg  Config
	rng  *rand.Rand
	legs []leg // materialized prefix of the trajectory
	cur  int   // last-hit leg index; simulation queries are near-monotonic

	// Memo of legs[cur] with its direction vector: the covering-leg test
	// and the interpolation read these flat fields, so repeated queries on
	// one leg — a node pausing at a waypoint, or barely moving between
	// engine timesteps — touch no slice element and recompute no deltas.
	// Legs are append-only, so the memo is invalidated only when cur moves.
	memo   leg
	dx, dy float64
}

// leg covers [t0, t1): movement from a to b, then a pause until t1.
type leg struct {
	t0, moveEnd, t1 float64
	from, to        tuple.Point
}

// NewWaypoint creates a trajectory starting at a uniform random position.
// Each node must get its own rng (or at least its own seed) so trajectories
// are independent yet reproducible.
func NewWaypoint(cfg Config, seed int64) *Waypoint {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	w := &Waypoint{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	start := w.randPoint()
	w.legs = append(w.legs, w.nextLeg(0, start))
	w.setCur(0)
	return w
}

// NewWaypointAt creates a trajectory starting at a fixed position, used
// when devices begin at the centre of their data's grid cell.
func NewWaypointAt(cfg Config, start tuple.Point, seed int64) *Waypoint {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	w := &Waypoint{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	w.legs = append(w.legs, w.nextLeg(0, start))
	w.setCur(0)
	return w
}

// setCur moves the leg cursor and refreshes the memoized leg and its
// direction vector. The deltas are the same expressions Pos used to
// evaluate inline, so interpolated positions stay bit-identical.
func (w *Waypoint) setCur(i int) {
	w.cur = i
	l := w.legs[i]
	w.memo = l
	w.dx = l.to.X - l.from.X
	w.dy = l.to.Y - l.from.Y
}

func (w *Waypoint) randPoint() tuple.Point {
	return tuple.Point{
		X: w.rng.Float64() * w.cfg.Space,
		Y: w.rng.Float64() * w.cfg.Space,
	}
}

func (w *Waypoint) nextLeg(t0 float64, from tuple.Point) leg {
	to := w.randPoint()
	speed := w.cfg.SpeedMin + w.rng.Float64()*(w.cfg.SpeedMax-w.cfg.SpeedMin)
	travel := from.Dist(to) / speed
	return leg{t0: t0, moveEnd: t0 + travel, t1: t0 + travel + w.cfg.Pause, from: from, to: to}
}

// covers reports whether leg i is the covering leg for time t, i.e. the
// first leg whose end time reaches t — the exact element the binary search
// finds.
func (w *Waypoint) covers(i int, t float64) bool {
	return w.legs[i].t1 >= t && (i == 0 || w.legs[i-1].t1 < t)
}

// Pos returns the node's position at time t. Times before zero clamp to the
// starting position. Position remains a pure function of t; the leg cursor
// only short-circuits the search, so queries may arrive in any order.
func (w *Waypoint) Pos(t float64) tuple.Point {
	if t <= 0 {
		return w.legs[0].from
	}
	// Fast path: the memoized leg still covers t (consecutive legs share
	// their boundary time exactly, so t0 < t ≤ t1 is the covers() test on
	// flat fields). A node pausing at a waypoint returns straight from the
	// memo; a moving node reuses the memoized direction vector.
	if t > w.memo.t0 && t <= w.memo.t1 {
		return w.interp(t)
	}
	// Extend the trajectory to cover t.
	for w.legs[len(w.legs)-1].t1 < t {
		last := w.legs[len(w.legs)-1]
		w.legs = append(w.legs, w.nextLeg(last.t1, last.to))
	}
	// Simulation time crawls forward, so the covering leg is almost always
	// the last-hit leg or its successor; fall back to binary search when
	// the query jumps elsewhere.
	i := w.cur
	if i >= len(w.legs) {
		i = len(w.legs) - 1
	}
	if !w.covers(i, t) {
		if i+1 < len(w.legs) && w.covers(i+1, t) {
			i++
		} else {
			lo, hi := 0, len(w.legs)-1
			for lo < hi {
				mid := (lo + hi) / 2
				if w.legs[mid].t1 < t {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			i = lo
		}
	}
	w.setCur(i)
	return w.interp(t)
}

// interp evaluates the memoized leg at time t: the destination during the
// pause, linear interpolation with the memoized direction vector while
// moving. The arithmetic matches the pre-memo implementation operation for
// operation, keeping trajectories bit-identical.
func (w *Waypoint) interp(t float64) tuple.Point {
	if t >= w.memo.moveEnd {
		return w.memo.to // pausing
	}
	frac := (t - w.memo.t0) / (w.memo.moveEnd - w.memo.t0)
	return tuple.Point{
		X: w.memo.from.X + frac*w.dx,
		Y: w.memo.from.Y + frac*w.dy,
	}
}
