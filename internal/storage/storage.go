// Package storage implements the dataset storage models §4.1 of the paper
// discusses for resource-constrained mobile devices:
//
//   - Flat storage (FS): every tuple stores its raw attribute values
//     sequentially; the baseline the paper compares against.
//   - Hybrid storage (HS): the paper's proposal. Spatial coordinates stay
//     inline with each tuple (they are rarely shared), while every
//     non-spatial attribute is ID-coded against a per-attribute sorted array
//     of distinct domain values. Because domains are sorted, comparing IDs
//     is equivalent to comparing values, domain bounds l_j and h_j are O(1),
//     and narrow integer IDs (one byte for ≤256 distinct values) both shrink
//     the relation and speed up dominance tests.
//   - Domain storage (Ammann et al.): like HS but domains are kept in
//     insertion order, so tuples hold value pointers that must be
//     dereferenced for every comparison. Built as the ablation §4.1 argues
//     against in prose.
//   - Ring storage (PicoDBMS): tuples sharing a value are linked in a ring
//     with a single external pointer to the value; reading an attribute
//     walks the ring. Also built for the ablation.
//
// All models expose the same Relation interface so the local skyline
// algorithms and benchmarks can run against any of them.
package storage

import (
	"fmt"

	"manetskyline/internal/tuple"
)

// Relation is the read-only view of a stored local relation R_i that local
// query processing operates on.
type Relation interface {
	// Len returns the number of tuples.
	Len() int
	// Dim returns the number of non-spatial attributes.
	Dim() int
	// Tuple materializes tuple i (positions first, then attribute values).
	Tuple(i int) tuple.Tuple
	// Pos returns the spatial position of tuple i without materializing it.
	Pos(i int) tuple.Point
	// Value returns attribute j of tuple i.
	Value(i, j int) float64
	// MBR returns the minimum bounding rectangle of all positions; it backs
	// the mindist pre-check of the Figure 4 algorithm.
	MBR() tuple.Rect
	// AttrMin returns l_j, the smallest value of attribute j present in the
	// relation.
	AttrMin(j int) float64
	// AttrMax returns h_j, the largest value of attribute j present; it is
	// the local bound used for under-estimated dominating regions (§3.3).
	AttrMax(j int) float64
	// MemBytes estimates the storage footprint in bytes, the quantity the
	// storage models compete on.
	MemBytes() int
	// Model names the storage model ("flat", "hybrid", ...).
	Model() string
}

// Tuples materializes every tuple of a relation, in storage order.
func Tuples(r Relation) []tuple.Tuple {
	out := make([]tuple.Tuple, r.Len())
	for i := range out {
		out[i] = r.Tuple(i)
	}
	return out
}

// checkBuild validates constructor input: all tuples must share one
// dimensionality.
func checkBuild(ts []tuple.Tuple) int {
	if len(ts) == 0 {
		return 0
	}
	dim := ts[0].Dim()
	for i, t := range ts {
		if t.Dim() != dim {
			panic(fmt.Sprintf("storage: tuple %d has %d attributes, want %d", i, t.Dim(), dim))
		}
	}
	return dim
}

// bounds scans per-attribute minima and maxima.
func bounds(ts []tuple.Tuple, dim int) (lo, hi []float64) {
	lo = make([]float64, dim)
	hi = make([]float64, dim)
	for j := 0; j < dim; j++ {
		for i, t := range ts {
			v := t.Attrs[j]
			if i == 0 || v < lo[j] {
				lo[j] = v
			}
			if i == 0 || v > hi[j] {
				hi[j] = v
			}
		}
	}
	return lo, hi
}

// Flat is the flat storage model: raw values in tuple order.
type Flat struct {
	pos    []tuple.Point
	attrs  [][]float64 // [tuple][attr]
	dim    int
	mbr    tuple.Rect
	lo, hi []float64 // per-attribute l_j and h_j
}

// NewFlat builds a flat relation preserving input order.
func NewFlat(ts []tuple.Tuple) *Flat {
	dim := checkBuild(ts)
	f := &Flat{
		pos:   make([]tuple.Point, len(ts)),
		attrs: make([][]float64, len(ts)),
		dim:   dim,
		mbr:   tuple.BoundingRect(ts),
	}
	for i, t := range ts {
		f.pos[i] = t.Pos()
		f.attrs[i] = append([]float64(nil), t.Attrs...)
	}
	f.lo, f.hi = bounds(ts, dim)
	return f
}

// Len returns the number of tuples.
func (f *Flat) Len() int { return len(f.pos) }

// Dim returns the attribute count.
func (f *Flat) Dim() int { return f.dim }

// Pos returns the position of tuple i.
func (f *Flat) Pos(i int) tuple.Point { return f.pos[i] }

// Value returns attribute j of tuple i.
func (f *Flat) Value(i, j int) float64 { return f.attrs[i][j] }

// Tuple materializes tuple i.
func (f *Flat) Tuple(i int) tuple.Tuple {
	return tuple.Tuple{X: f.pos[i].X, Y: f.pos[i].Y, Attrs: append([]float64(nil), f.attrs[i]...)}
}

// Rows exposes the raw attribute rows without copying; callers must not
// mutate them. The flat-storage BNL scan reads these directly, paying raw
// float comparisons but no per-access indirection — the honest baseline.
func (f *Flat) Rows() [][]float64 { return f.attrs }

// MBR returns the bounding rectangle of all positions.
func (f *Flat) MBR() tuple.Rect { return f.mbr }

// AttrMin returns the smallest stored value of attribute j.
func (f *Flat) AttrMin(j int) float64 { return f.lo[j] }

// AttrMax returns the largest stored value of attribute j.
func (f *Flat) AttrMax(j int) float64 { return f.hi[j] }

// MemBytes counts positions and raw float64 attribute values.
func (f *Flat) MemBytes() int {
	return len(f.pos)*16 + len(f.pos)*f.dim*8
}

// Model returns "flat".
func (f *Flat) Model() string { return "flat" }
