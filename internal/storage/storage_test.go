package storage

import (
	"sort"
	"testing"

	"manetskyline/internal/gen"
	"manetskyline/internal/skyline"
	"manetskyline/internal/tuple"
)

func builders() map[string]func([]tuple.Tuple) Relation {
	return map[string]func([]tuple.Tuple) Relation{
		"flat":   func(ts []tuple.Tuple) Relation { return NewFlat(ts) },
		"hybrid": func(ts []tuple.Tuple) Relation { return NewHybrid(ts) },
		"domain": func(ts []tuple.Tuple) Relation { return NewDomain(ts) },
		"ring":   func(ts []tuple.Tuple) Relation { return NewRing(ts) },
	}
}

// Every storage model must hold exactly the same multiset of tuples it was
// built from.
func TestModelsPreserveContents(t *testing.T) {
	data := gen.Generate(gen.HandheldConfig(500, 3, gen.AntiCorrelated, 12))
	for name, build := range builders() {
		r := build(data)
		if r.Len() != len(data) {
			t.Fatalf("%s: Len = %d, want %d", name, r.Len(), len(data))
		}
		if r.Dim() != 3 {
			t.Fatalf("%s: Dim = %d, want 3", name, r.Dim())
		}
		got := Tuples(r)
		if !sameMultiset(got, data) {
			t.Errorf("%s: stored tuples differ from input", name)
		}
		for i := 0; i < r.Len(); i++ {
			tp := r.Tuple(i)
			if r.Pos(i) != tp.Pos() {
				t.Fatalf("%s: Pos(%d) mismatch", name, i)
			}
			for j := 0; j < r.Dim(); j++ {
				if r.Value(i, j) != tp.Attrs[j] {
					t.Fatalf("%s: Value(%d,%d) = %v, want %v", name, i, j, r.Value(i, j), tp.Attrs[j])
				}
			}
		}
	}
}

func sameMultiset(a, b []tuple.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(t tuple.Tuple) string { return t.String() }
	count := map[string]int{}
	for _, t := range a {
		count[key(t)]++
	}
	for _, t := range b {
		count[key(t)]--
		if count[key(t)] < 0 {
			return false
		}
	}
	return true
}

func TestModelsAgreeOnBoundsAndMBR(t *testing.T) {
	data := gen.Generate(gen.HandheldConfig(300, 4, gen.Independent, 5))
	flat := NewFlat(data)
	for name, build := range builders() {
		r := build(data)
		if r.MBR() != flat.MBR() {
			t.Errorf("%s: MBR %+v differs from flat %+v", name, r.MBR(), flat.MBR())
		}
		for j := 0; j < r.Dim(); j++ {
			if r.AttrMin(j) != flat.AttrMin(j) || r.AttrMax(j) != flat.AttrMax(j) {
				t.Errorf("%s: bounds for attr %d = [%v,%v], want [%v,%v]",
					name, j, r.AttrMin(j), r.AttrMax(j), flat.AttrMin(j), flat.AttrMax(j))
			}
		}
	}
}

func TestHybridIDOrderIsomorphism(t *testing.T) {
	data := gen.Generate(gen.HandheldConfig(400, 3, gen.AntiCorrelated, 8))
	h := NewHybrid(data)
	for j := 0; j < h.Dim(); j++ {
		// Domain sorted strictly ascending.
		dom := make([]float64, h.DomainSize(j))
		for k := range dom {
			dom[k] = h.IDToValue(j, k)
		}
		if !sort.Float64sAreSorted(dom) {
			t.Fatalf("attr %d domain not sorted", j)
		}
		for k := 1; k < len(dom); k++ {
			if dom[k] == dom[k-1] {
				t.Fatalf("attr %d domain contains duplicate value %v", j, dom[k])
			}
		}
		// ID comparison ⇔ value comparison for every pair of tuples.
		for i := 0; i < h.Len(); i += 37 {
			for k := 0; k < h.Len(); k += 41 {
				idLess := h.ID(i, j) < h.ID(k, j)
				valLess := h.Value(i, j) < h.Value(k, j)
				if idLess != valLess {
					t.Fatalf("ID order disagrees with value order at (%d,%d) attr %d", i, k, j)
				}
				if (h.ID(i, j) == h.ID(k, j)) != (h.Value(i, j) == h.Value(k, j)) {
					t.Fatalf("ID equality disagrees with value equality at (%d,%d) attr %d", i, k, j)
				}
			}
		}
	}
}

func TestHybridSortProperty(t *testing.T) {
	// The SFS presort guarantee: no tuple can dominate an earlier tuple.
	data := gen.Generate(gen.HandheldConfig(600, 2, gen.AntiCorrelated, 3))
	h := NewHybrid(data)
	ts := Tuples(h)
	for i := 0; i < len(ts); i++ {
		for k := 0; k < i; k++ {
			if ts[i].Dominates(ts[k]) {
				t.Fatalf("tuple %d dominates earlier tuple %d: %v > %v", i, k, ts[i], ts[k])
			}
		}
	}
	// Primary sort key must be non-decreasing.
	for i := 1; i < h.Len(); i++ {
		if h.ID(i, h.SortAttr()) < h.ID(i-1, h.SortAttr()) {
			t.Fatalf("primary sort attribute not non-decreasing at %d", i)
		}
	}
}

func TestHybridSortAttrHasMostDistinctValues(t *testing.T) {
	// Attribute 1 has many distinct values; attribute 0 only a few.
	var data []tuple.Tuple
	for i := 0; i < 100; i++ {
		data = append(data, tuple.Tuple{
			X: float64(i), Y: 0,
			Attrs: []float64{float64(i % 3), float64(i)},
		})
	}
	h := NewHybrid(data)
	if h.SortAttr() != 1 {
		t.Errorf("SortAttr = %d, want 1", h.SortAttr())
	}
	if h.DomainSize(0) != 3 || h.DomainSize(1) != 100 {
		t.Errorf("domain sizes = %d,%d", h.DomainSize(0), h.DomainSize(1))
	}
}

func TestHybridIDWidths(t *testing.T) {
	mk := func(distinct int) *Hybrid {
		data := make([]tuple.Tuple, distinct)
		for i := range data {
			data[i] = tuple.Tuple{X: float64(i), Y: 0, Attrs: []float64{float64(i)}}
		}
		return NewHybrid(data)
	}
	if _, ok := mk(200).ids[0].(byteColumn); !ok {
		t.Errorf("200-value domain should use byte IDs")
	}
	if _, ok := mk(300).ids[0].(wordColumn); !ok {
		t.Errorf("300-value domain should use 16-bit IDs")
	}
	if _, ok := mk(70000).ids[0].(dwordColumn); !ok {
		t.Errorf("70000-value domain should use 32-bit IDs")
	}
}

func TestMemBytesOrdering(t *testing.T) {
	// With shared values (100-distinct domains), hybrid must be smaller than
	// flat; ring smaller than domain storage is not guaranteed in our
	// accounting, but every compressed model must beat flat.
	data := gen.Generate(gen.HandheldConfig(5000, 3, gen.Independent, 2))
	flat := NewFlat(data).MemBytes()
	hybrid := NewHybrid(data).MemBytes()
	domain := NewDomain(data).MemBytes()
	ring := NewRing(data).MemBytes()
	t.Logf("bytes: flat=%d hybrid=%d domain=%d ring=%d", flat, hybrid, domain, ring)
	if hybrid >= flat {
		t.Errorf("hybrid (%d) should be smaller than flat (%d)", hybrid, flat)
	}
	if domain >= flat {
		t.Errorf("domain (%d) should be smaller than flat (%d)", domain, flat)
	}
	if ring >= flat {
		t.Errorf("ring (%d) should be smaller than flat (%d)", ring, flat)
	}
	if hybrid > domain {
		t.Errorf("hybrid byte IDs (%d) should not exceed domain 4-byte pointers (%d)", hybrid, domain)
	}
}

func TestSkylineSameAcrossModels(t *testing.T) {
	data := gen.Generate(gen.HandheldConfig(400, 2, gen.AntiCorrelated, 77))
	want := skyline.BNL(data)
	for name, build := range builders() {
		r := build(data)
		got := skyline.BNL(Tuples(r))
		if !skyline.SetEqual(want, got) {
			t.Errorf("%s: skyline over stored tuples differs (%d vs %d)", name, len(got), len(want))
		}
	}
}

func TestEmptyRelations(t *testing.T) {
	for name, build := range builders() {
		r := build(nil)
		if r.Len() != 0 {
			t.Errorf("%s: empty relation Len = %d", name, r.Len())
		}
		if !r.MBR().IsEmpty() {
			t.Errorf("%s: empty relation MBR should be empty", name)
		}
		if r.MemBytes() != 0 {
			t.Errorf("%s: empty relation MemBytes = %d", name, r.MemBytes())
		}
	}
}

func TestRingValueWalk(t *testing.T) {
	// Three tuples share value 5 on attribute 0; each must still read 5.
	data := []tuple.Tuple{
		{X: 0, Y: 0, Attrs: []float64{5, 1}},
		{X: 1, Y: 0, Attrs: []float64{7, 2}},
		{X: 2, Y: 0, Attrs: []float64{5, 3}},
		{X: 3, Y: 0, Attrs: []float64{5, 4}},
	}
	r := NewRing(data)
	for i, want := range []float64{5, 7, 5, 5} {
		if got := r.Value(i, 0); got != want {
			t.Errorf("Value(%d,0) = %v, want %v", i, got, want)
		}
	}
}

func TestMixedDimensionPanics(t *testing.T) {
	bad := []tuple.Tuple{
		{Attrs: []float64{1, 2}},
		{Attrs: []float64{1}},
	}
	for name, build := range builders() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: mixed dimensionality should panic", name)
				}
			}()
			build(bad)
		}()
	}
}

func TestModelNames(t *testing.T) {
	want := map[string]bool{"flat": true, "hybrid": true, "domain": true, "ring": true}
	for name, build := range builders() {
		r := build(nil)
		if r.Model() != name || !want[r.Model()] {
			t.Errorf("Model() = %q, want %q", r.Model(), name)
		}
	}
}

func TestDecodeIDsIntoReusesBuffer(t *testing.T) {
	data := gen.Generate(gen.DefaultConfig(500, 3, gen.Independent, 5))
	h := NewHybrid(data)

	want := h.DecodeIDs()
	got := h.DecodeIDsInto(nil)
	if len(got) != len(want) {
		t.Fatalf("DecodeIDsInto(nil) len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DecodeIDsInto(nil)[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	// A big-enough buffer must be reused, not reallocated.
	buf := make([]uint32, 0, len(want)+64)
	got = h.DecodeIDsInto(buf)
	if &got[0] != &buf[:1][0] {
		t.Errorf("DecodeIDsInto should reuse the provided buffer")
	}

	// Undersized buffers are replaced.
	got = h.DecodeIDsInto(make([]uint32, 1))
	if len(got) != len(want) {
		t.Errorf("undersized buffer: len %d, want %d", len(got), len(want))
	}
}

func TestDecodeIDsForIntoMatchesDecodeIDsFor(t *testing.T) {
	data := gen.Generate(gen.DefaultConfig(400, 2, gen.AntiCorrelated, 6))
	h := NewHybrid(data)
	idx := []int32{3, 17, 99, 255}
	want := h.DecodeIDsFor(idx)
	buf := make([]uint32, 0, len(idx)*h.Dim())
	got := h.DecodeIDsForInto(buf, idx)
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Errorf("DecodeIDsForInto should reuse the provided buffer")
	}
}

func TestAppendAttrsMatchesTuple(t *testing.T) {
	data := gen.Generate(gen.DefaultConfig(200, 4, gen.Independent, 7))
	h := NewHybrid(data)
	var attrs []float64
	for i := 0; i < h.Len(); i++ {
		start := len(attrs)
		attrs = h.AppendAttrs(attrs, i)
		want := h.Tuple(i).Attrs
		got := attrs[start:]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("tuple %d attr %d = %v, want %v", i, j, got[j], want[j])
			}
		}
	}
}
