package storage

import (
	"sort"

	"manetskyline/internal/tuple"
)

// idColumn stores one attribute's per-tuple domain IDs at the narrowest
// integer width that fits the domain, mirroring the paper's use of byte IDs
// for 100-value domains (§5.1).
type idColumn interface {
	get(i int) int
	set(i, id int)
	bytes() int
	// decode widens the column into dst with the given stride, writing the
	// i-th ID at dst[i*stride]; query processing decodes once per scan so
	// the hot dominance loop reads a flat row-major array instead of
	// dispatching through this interface.
	decode(dst []uint32, stride int)
}

type byteColumn []uint8

func (c byteColumn) get(i int) int { return int(c[i]) }
func (c byteColumn) set(i, id int) { c[i] = uint8(id) }
func (c byteColumn) bytes() int    { return len(c) }
func (c byteColumn) decode(dst []uint32, stride int) {
	for i, v := range c {
		dst[i*stride] = uint32(v)
	}
}

type wordColumn []uint16

func (c wordColumn) get(i int) int { return int(c[i]) }
func (c wordColumn) set(i, id int) { c[i] = uint16(id) }
func (c wordColumn) bytes() int    { return 2 * len(c) }
func (c wordColumn) decode(dst []uint32, stride int) {
	for i, v := range c {
		dst[i*stride] = uint32(v)
	}
}

type dwordColumn []uint32

func (c dwordColumn) get(i int) int { return int(c[i]) }
func (c dwordColumn) set(i, id int) { c[i] = uint32(id) }
func (c dwordColumn) bytes() int    { return 4 * len(c) }
func (c dwordColumn) decode(dst []uint32, stride int) {
	for i, v := range c {
		dst[i*stride] = v
	}
}

func newIDColumn(n, domainSize int) idColumn {
	switch {
	case domainSize <= 1<<8:
		return make(byteColumn, n)
	case domainSize <= 1<<16:
		return make(wordColumn, n)
	default:
		return make(dwordColumn, n)
	}
}

// Hybrid is the paper's hybrid storage model (§4.1-4.2): spatial coordinates
// inline, non-spatial attributes ID-coded against per-attribute sorted
// domain arrays, and tuples kept sorted by ID vector with the
// most-distinct-values attribute as the primary key.
//
// Because every domain is sorted ascending, ID order is value order: the
// dominance test between two tuples can compare small integer IDs instead of
// raw floats, and the local minimum l_j (respectively maximum h_j) of any
// attribute is domain[0] (domain[len-1]) in O(1).
//
// The sort order strengthens the paper's "sort on one attribute" to a full
// lexicographic order on the ID vector (primary key = the chosen attribute).
// Lexicographic order has the SFS property the Figure 4 scan relies on: a
// later tuple can never dominate an earlier one, so accepted skyline tuples
// are never evicted.
type Hybrid struct {
	pos      []tuple.Point
	domains  [][]float64 // [attr] sorted ascending distinct values
	ids      []idColumn  // [attr][tuple] domain index
	dim      int
	sortAttr int // attribute with the most distinct values; primary sort key
	mbr      tuple.Rect

	// Spatial bucket grid over the MBR: buckets[cell] lists tuple indices
	// in ascending (lex) order. An optimization beyond the paper: the
	// Figure 4 scan distance-checks every tuple, while the grid lets a
	// selective range query visit only intersecting cells.
	buckets  [][]int32
	bucketsG int
}

// NewHybrid builds a hybrid relation. The input order is not preserved:
// tuples are sorted lexicographically by ID vector starting at the primary
// attribute, which is the SFS presort of §4.2.
func NewHybrid(ts []tuple.Tuple) *Hybrid {
	dim := checkBuild(ts)
	h := &Hybrid{
		domains: make([][]float64, dim),
		ids:     make([]idColumn, dim),
		dim:     dim,
		mbr:     tuple.BoundingRect(ts),
	}

	// Build each attribute's sorted distinct-value domain.
	maxDistinct := -1
	for j := 0; j < dim; j++ {
		vals := make([]float64, 0, len(ts))
		for _, t := range ts {
			vals = append(vals, t.Attrs[j])
		}
		sort.Float64s(vals)
		distinct := vals[:0]
		for i, v := range vals {
			if i == 0 || v != vals[i-1] {
				distinct = append(distinct, v)
			}
		}
		h.domains[j] = append([]float64(nil), distinct...)
		if len(distinct) > maxDistinct {
			maxDistinct = len(distinct)
			h.sortAttr = j
		}
	}

	// Encode every tuple as an ID vector.
	rows := make([][]int, len(ts))
	for i, t := range ts {
		row := make([]int, dim)
		for j := 0; j < dim; j++ {
			row[j] = sort.SearchFloat64s(h.domains[j], t.Attrs[j])
		}
		rows[i] = row
	}

	// SFS presort: lexicographic on IDs, primary key = sortAttr.
	order := make([]int, len(ts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := rows[order[a]], rows[order[b]]
		if ra[h.sortAttr] != rb[h.sortAttr] {
			return ra[h.sortAttr] < rb[h.sortAttr]
		}
		for j := 0; j < dim; j++ {
			if ra[j] != rb[j] {
				return ra[j] < rb[j]
			}
		}
		return false
	})

	h.pos = make([]tuple.Point, len(ts))
	for j := 0; j < dim; j++ {
		h.ids[j] = newIDColumn(len(ts), len(h.domains[j]))
	}
	for i, src := range order {
		h.pos[i] = ts[src].Pos()
		for j := 0; j < dim; j++ {
			h.ids[j].set(i, rows[src][j])
		}
	}
	h.buildBuckets()
	return h
}

// buildBuckets fills the spatial grid; bucket lists stay in ascending index
// order because tuples are visited in storage (lex) order.
func (h *Hybrid) buildBuckets() {
	n := len(h.pos)
	if n == 0 || h.mbr.IsEmpty() {
		return
	}
	g := 1
	for g*g*16 < n { // ~16+ tuples per cell on average
		g++
	}
	h.bucketsG = g
	h.buckets = make([][]int32, g*g)
	for i, p := range h.pos {
		h.buckets[h.bucketOf(p)] = append(h.buckets[h.bucketOf(p)], int32(i))
	}
}

func (h *Hybrid) bucketOf(p tuple.Point) int {
	g := h.bucketsG
	w := (h.mbr.MaxX - h.mbr.MinX) / float64(g)
	hh := (h.mbr.MaxY - h.mbr.MinY) / float64(g)
	col, row := 0, 0
	if w > 0 {
		col = int((p.X - h.mbr.MinX) / w)
	}
	if hh > 0 {
		row = int((p.Y - h.mbr.MinY) / hh)
	}
	if col >= g {
		col = g - 1
	}
	if row >= g {
		row = g - 1
	}
	return row*g + col
}

// RangeCandidates returns, in ascending (lex) order, the indices of every
// tuple whose grid cell intersects the disc around pos with radius d — a
// superset of the in-range tuples; callers still distance-check each. It
// returns (nil, false) when the whole relation qualifies, so callers fall
// back to the plain sequential scan.
func (h *Hybrid) RangeCandidates(pos tuple.Point, d float64) ([]int32, bool) {
	if h.bucketsG == 0 {
		return nil, false
	}
	g := h.bucketsG
	w := (h.mbr.MaxX - h.mbr.MinX) / float64(g)
	hh := (h.mbr.MaxY - h.mbr.MinY) / float64(g)
	if w <= 0 || hh <= 0 {
		return nil, false
	}
	colLo := int((pos.X - d - h.mbr.MinX) / w)
	colHi := int((pos.X + d - h.mbr.MinX) / w)
	rowLo := int((pos.Y - d - h.mbr.MinY) / hh)
	rowHi := int((pos.Y + d - h.mbr.MinY) / hh)
	if colLo < 0 {
		colLo = 0
	}
	if rowLo < 0 {
		rowLo = 0
	}
	if colHi >= g {
		colHi = g - 1
	}
	if rowHi >= g {
		rowHi = g - 1
	}
	if colLo == 0 && rowLo == 0 && colHi == g-1 && rowHi == g-1 {
		return nil, false // everything qualifies: sequential scan is cheaper
	}
	var out []int32
	for row := rowLo; row <= rowHi; row++ {
		for col := colLo; col <= colHi; col++ {
			// Skip cells entirely outside the disc.
			cell := tuple.Rect{
				MinX: h.mbr.MinX + float64(col)*w, MaxX: h.mbr.MinX + float64(col+1)*w,
				MinY: h.mbr.MinY + float64(row)*hh, MaxY: h.mbr.MinY + float64(row+1)*hh,
			}
			if cell.MinDist(pos) > d {
				continue
			}
			out = append(out, h.buckets[row*g+col]...)
		}
	}
	// Restore ascending (lex) order. For small candidate sets a sort wins;
	// for large ones a linear mark-and-sweep over the relation is cheaper
	// than n log n comparison sorting.
	if len(out)*16 < len(h.pos) {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, true
	}
	mark := make([]bool, len(h.pos))
	for _, i := range out {
		mark[i] = true
	}
	out = out[:0]
	for i, m := range mark {
		if m {
			out = append(out, int32(i))
		}
	}
	return out, true
}

// Len returns the number of tuples.
func (h *Hybrid) Len() int { return len(h.pos) }

// Dim returns the attribute count.
func (h *Hybrid) Dim() int { return h.dim }

// Pos returns the position of tuple i.
func (h *Hybrid) Pos(i int) tuple.Point { return h.pos[i] }

// ID returns the domain index of attribute j of tuple i. Comparing IDs of
// the same attribute compares the underlying values.
func (h *Hybrid) ID(i, j int) int { return h.ids[j].get(i) }

// Value decodes attribute j of tuple i through the domain array.
func (h *Hybrid) Value(i, j int) float64 { return h.domains[j][h.ids[j].get(i)] }

// Tuple materializes tuple i.
func (h *Hybrid) Tuple(i int) tuple.Tuple {
	attrs := make([]float64, h.dim)
	for j := range attrs {
		attrs[j] = h.Value(i, j)
	}
	return tuple.Tuple{X: h.pos[i].X, Y: h.pos[i].Y, Attrs: attrs}
}

// MBR returns the bounding rectangle of all positions.
func (h *Hybrid) MBR() tuple.Rect { return h.mbr }

// AttrMin returns l_j in O(1): the first entry of the sorted domain.
func (h *Hybrid) AttrMin(j int) float64 {
	if len(h.domains[j]) == 0 {
		return 0
	}
	return h.domains[j][0]
}

// AttrMax returns h_j in O(1): the last entry of the sorted domain.
func (h *Hybrid) AttrMax(j int) float64 {
	if len(h.domains[j]) == 0 {
		return 0
	}
	return h.domains[j][len(h.domains[j])-1]
}

// DomainSize returns the number of distinct values of attribute j.
func (h *Hybrid) DomainSize(j int) int { return len(h.domains[j]) }

// SortAttr returns the index of the primary sort attribute (the one with
// the most distinct values).
func (h *Hybrid) SortAttr() int { return h.sortAttr }

// IDToValue decodes a domain ID for attribute j.
func (h *Hybrid) IDToValue(j, id int) float64 { return h.domains[j][id] }

// DecodeIDs widens every tuple's ID vector into one row-major []uint32
// (tuple i occupies ids[i*Dim() : (i+1)*Dim()]). The local skyline scan
// decodes once and runs its dominance tests over this flat array — the
// in-register form the paper's byte IDs take on a real device.
func (h *Hybrid) DecodeIDs() []uint32 {
	return h.DecodeIDsInto(nil)
}

// DecodeIDsInto is DecodeIDs writing into dst, which is grown only when its
// capacity is insufficient; the (possibly reallocated) buffer is returned.
// Steady-state query processing reuses one buffer across calls and performs
// no allocation.
func (h *Hybrid) DecodeIDsInto(dst []uint32) []uint32 {
	n := len(h.pos) * h.dim
	if cap(dst) < n {
		dst = make([]uint32, n)
	} else {
		dst = dst[:n]
	}
	for j := 0; j < h.dim; j++ {
		h.ids[j].decode(dst[j:], h.dim)
	}
	return dst
}

// DecodeIDsFor widens only the given tuples' ID vectors, row-major in the
// order given: candidate k occupies ids[k*Dim() : (k+1)*Dim()]. Selective
// range queries decode just their candidates instead of the whole relation.
func (h *Hybrid) DecodeIDsFor(idx []int32) []uint32 {
	return h.DecodeIDsForInto(nil, idx)
}

// DecodeIDsForInto is DecodeIDsFor writing into dst under the same reuse
// contract as DecodeIDsInto.
func (h *Hybrid) DecodeIDsForInto(dst []uint32, idx []int32) []uint32 {
	n := len(idx) * h.dim
	if cap(dst) < n {
		dst = make([]uint32, n)
	} else {
		dst = dst[:n]
	}
	at := 0
	for _, i := range idx {
		for j := 0; j < h.dim; j++ {
			dst[at] = uint32(h.ids[j].get(int(i)))
			at++
		}
	}
	return dst
}

// AppendAttrs appends tuple i's decoded attribute values to dst and returns
// the extended slice, letting callers materialize skyline members into one
// shared backing array instead of one allocation per tuple.
func (h *Hybrid) AppendAttrs(dst []float64, i int) []float64 {
	for j := 0; j < h.dim; j++ {
		dst = append(dst, h.domains[j][h.ids[j].get(i)])
	}
	return dst
}

// MemBytes counts inline positions, ID columns at their native width, and
// the shared domain arrays.
func (h *Hybrid) MemBytes() int {
	b := len(h.pos) * 16
	for j := 0; j < h.dim; j++ {
		b += h.ids[j].bytes()
		b += len(h.domains[j]) * 8
	}
	return b
}

// Model returns "hybrid".
func (h *Hybrid) Model() string { return "hybrid" }
