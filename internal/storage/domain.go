package storage

import (
	"sort"

	"manetskyline/internal/tuple"
)

// Domain is the domain storage model of Ammann et al. that §4.1 rejects:
// every attribute of every tuple holds a pointer (here an index) into a
// per-attribute domain array kept in *insertion* order. Shared values are
// stored once, but because the domain is unsorted, every comparison must
// dereference the pointer to reach the raw value, and finding domain bounds
// requires a scan. The model exists in this repository to quantify the
// paper's prose argument for hybrid storage.
type Domain struct {
	pos     []tuple.Point
	domains [][]float64 // [attr] distinct values in first-seen order
	refs    [][]int32   // [attr][tuple] index into domains[attr]
	dim     int
	mbr     tuple.Rect
	lo, hi  []float64
}

// NewDomain builds a domain-storage relation preserving input order.
func NewDomain(ts []tuple.Tuple) *Domain {
	dim := checkBuild(ts)
	d := &Domain{
		pos:     make([]tuple.Point, len(ts)),
		domains: make([][]float64, dim),
		refs:    make([][]int32, dim),
		dim:     dim,
		mbr:     tuple.BoundingRect(ts),
	}
	for j := 0; j < dim; j++ {
		d.refs[j] = make([]int32, len(ts))
		seen := map[float64]int32{}
		for i, t := range ts {
			v := t.Attrs[j]
			idx, ok := seen[v]
			if !ok {
				idx = int32(len(d.domains[j]))
				seen[v] = idx
				d.domains[j] = append(d.domains[j], v)
			}
			d.refs[j][i] = idx
		}
	}
	for i, t := range ts {
		d.pos[i] = t.Pos()
	}
	d.lo, d.hi = bounds(ts, dim)
	return d
}

// Len returns the number of tuples.
func (d *Domain) Len() int { return len(d.pos) }

// Dim returns the attribute count.
func (d *Domain) Dim() int { return d.dim }

// Pos returns the position of tuple i.
func (d *Domain) Pos(i int) tuple.Point { return d.pos[i] }

// Value dereferences the value pointer of attribute j of tuple i.
func (d *Domain) Value(i, j int) float64 { return d.domains[j][d.refs[j][i]] }

// Tuple materializes tuple i.
func (d *Domain) Tuple(i int) tuple.Tuple {
	attrs := make([]float64, d.dim)
	for j := range attrs {
		attrs[j] = d.Value(i, j)
	}
	return tuple.Tuple{X: d.pos[i].X, Y: d.pos[i].Y, Attrs: attrs}
}

// MBR returns the bounding rectangle of all positions.
func (d *Domain) MBR() tuple.Rect { return d.mbr }

// AttrMin returns the smallest stored value of attribute j (precomputed at
// build; a genuine lightweight device would scan the unsorted domain).
func (d *Domain) AttrMin(j int) float64 { return d.lo[j] }

// AttrMax returns the largest stored value of attribute j.
func (d *Domain) AttrMax(j int) float64 { return d.hi[j] }

// MemBytes counts positions, 4-byte value pointers, and domain arrays.
func (d *Domain) MemBytes() int {
	b := len(d.pos) * 16
	for j := 0; j < d.dim; j++ {
		b += 4 * len(d.refs[j])
		b += 8 * len(d.domains[j])
	}
	return b
}

// Model returns "domain".
func (d *Domain) Model() string { return "domain" }

// Ring is the PicoDBMS ring storage model that §4.1 rejects: all tuples
// sharing an attribute value form a singly linked ring through that
// attribute's link column, and exactly one element of the ring points at
// the shared value. Reading an attribute therefore walks the ring until it
// reaches the value pointer — cheap to store, expensive to read, which is
// what disqualifies it for comparison-heavy skyline processing.
type Ring struct {
	pos  []tuple.Point
	vals [][]float64 // [attr] distinct values, sorted (ring heads)
	// link[j][i] >= 0 is the next tuple in tuple i's ring for attribute j;
	// link[j][i] == -(v+1) terminates the ring at value index v.
	link   [][]int32
	dim    int
	mbr    tuple.Rect
	lo, hi []float64
}

// NewRing builds a ring-storage relation preserving input order.
func NewRing(ts []tuple.Tuple) *Ring {
	dim := checkBuild(ts)
	r := &Ring{
		pos:  make([]tuple.Point, len(ts)),
		vals: make([][]float64, dim),
		link: make([][]int32, dim),
		dim:  dim,
		mbr:  tuple.BoundingRect(ts),
	}
	for i, t := range ts {
		r.pos[i] = t.Pos()
	}
	for j := 0; j < dim; j++ {
		// Sorted distinct values.
		vals := make([]float64, 0, len(ts))
		for _, t := range ts {
			vals = append(vals, t.Attrs[j])
		}
		sort.Float64s(vals)
		distinct := vals[:0]
		for i, v := range vals {
			if i == 0 || v != vals[i-1] {
				distinct = append(distinct, v)
			}
		}
		r.vals[j] = append([]float64(nil), distinct...)

		// Chain tuples with equal values; the last points at the value.
		r.link[j] = make([]int32, len(ts))
		lastOf := make([]int32, len(r.vals[j]))
		for v := range lastOf {
			lastOf[v] = -1
		}
		// Build backwards so each tuple links to the next occurrence.
		for i := len(ts) - 1; i >= 0; i-- {
			v := int32(sort.SearchFloat64s(r.vals[j], ts[i].Attrs[j]))
			if lastOf[v] < 0 {
				r.link[j][i] = -(v + 1) // ring tail: external value pointer
			} else {
				r.link[j][i] = lastOf[v]
			}
			lastOf[v] = int32(i)
		}
	}
	r.lo, r.hi = bounds(ts, dim)
	return r
}

// Len returns the number of tuples.
func (r *Ring) Len() int { return len(r.pos) }

// Dim returns the attribute count.
func (r *Ring) Dim() int { return r.dim }

// Pos returns the position of tuple i.
func (r *Ring) Pos(i int) tuple.Point { return r.pos[i] }

// Value walks tuple i's ring for attribute j until it reaches the external
// value pointer. The walk is what makes ring storage slow for skyline
// processing (§4.1).
func (r *Ring) Value(i, j int) float64 {
	at := int32(i)
	for r.link[j][at] >= 0 {
		at = r.link[j][at]
	}
	return r.vals[j][-r.link[j][at]-1]
}

// Tuple materializes tuple i.
func (r *Ring) Tuple(i int) tuple.Tuple {
	attrs := make([]float64, r.dim)
	for j := range attrs {
		attrs[j] = r.Value(i, j)
	}
	return tuple.Tuple{X: r.pos[i].X, Y: r.pos[i].Y, Attrs: attrs}
}

// MBR returns the bounding rectangle of all positions.
func (r *Ring) MBR() tuple.Rect { return r.mbr }

// AttrMin returns the smallest stored value of attribute j in O(1); ring
// domains are sorted here.
func (r *Ring) AttrMin(j int) float64 { return r.lo[j] }

// AttrMax returns the largest stored value of attribute j.
func (r *Ring) AttrMax(j int) float64 { return r.hi[j] }

// MemBytes counts positions, 4-byte ring links, and value arrays.
func (r *Ring) MemBytes() int {
	b := len(r.pos) * 16
	for j := 0; j < r.dim; j++ {
		b += 4 * len(r.link[j])
		b += 8 * len(r.vals[j])
	}
	return b
}

// Model returns "ring".
func (r *Ring) Model() string { return "ring" }
