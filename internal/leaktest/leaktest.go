// Package leaktest gates goroutine hygiene: a test snapshots the
// goroutines created by this module's packages before exercising a
// subsystem and asserts afterwards that none survived. It guards the
// supervised transport's accept/serve/writer/heartbeat loops and the chaos
// proxy's pumps, whose whole point is to be torn down cleanly by Close.
//
// Goroutines are identified by creation site, filtered to this module, so
// runtime, testing, and third-party housekeeping goroutines never trip the
// gate and a leak report names the exact loop that survived.
package leaktest

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// modulePrefix scopes the gate to goroutines this repository started.
const modulePrefix = "manetskyline/"

// snapshot returns one "created by" line per live goroutine started by
// module code, sorted.
func snapshot() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var sites []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		lines := strings.Split(g, "\n")
		for i, l := range lines {
			if strings.HasPrefix(l, "created by ") && strings.Contains(l, modulePrefix) &&
				!strings.Contains(l, "leaktest") {
				site := strings.TrimPrefix(l, "created by ")
				if i+1 < len(lines) {
					site += " at " + strings.TrimSpace(lines[i+1])
				}
				sites = append(sites, site)
				break
			}
		}
	}
	sort.Strings(sites)
	return sites
}

// count tallies sites.
func count(sites []string) map[string]int {
	m := make(map[string]int, len(sites))
	for _, s := range sites {
		m[s]++
	}
	return m
}

// Check snapshots the module's goroutines and returns a function to defer:
// it fails the test if, after a settling grace period, any module goroutine
// beyond the baseline is still running.
func Check(t testing.TB) func() {
	t.Helper()
	before := count(snapshot())
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var leaked []string
		for {
			leaked = leaked[:0]
			now := count(snapshot())
			for site, n := range now {
				if extra := n - before[site]; extra > 0 {
					leaked = append(leaked, fmt.Sprintf("%d × %s", extra, site))
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		sort.Strings(leaked)
		t.Errorf("leaked %d goroutine group(s):\n  %s", len(leaked), strings.Join(leaked, "\n  "))
	}
}
