// Package faults provides scriptable, seed-deterministic fault injection
// for the MANET simulation: timed per-link and per-region loss windows,
// node outage churn (crash, pause, reboot), network partitions, and frame
// duplication/reordering. A Plan declares the schedule; an Injector applies
// it through the hook points of internal/radio without touching the
// medium's own random stream, so fault-free runs stay byte-identical to
// their goldens and fault runs are bit-deterministic for a given
// (plan, scenario seed) pair.
//
// The design follows the graceful-degradation framing of distributed
// skyline monitoring over mobile things: the question is never only "does
// the protocol survive?" but "how much of the true skyline does a degraded
// run still return?" — the recall oracle in internal/manet closes that
// loop against these schedules.
package faults

import (
	"encoding/json"
	"fmt"
	"os"
)

// Window bounds a fault in simulated time: active on [Start, End). An End
// of zero (or negative) means the fault never ends — the idiom for a crash
// that is not followed by a reboot.
type Window struct {
	Start float64 `json:"start"`
	End   float64 `json:"end,omitempty"`
}

// Active reports whether the window covers time now.
func (w Window) Active(now float64) bool {
	return now >= w.Start && (w.End <= 0 || now < w.End)
}

// validate checks window sanity (an open end is allowed).
func (w Window) validate(what string) error {
	if w.Start < 0 {
		return fmt.Errorf("faults: %s starts at negative time %g", what, w.Start)
	}
	if w.End > 0 && w.End <= w.Start {
		return fmt.Errorf("faults: %s window [%g,%g) is empty", what, w.Start, w.End)
	}
	return nil
}

// LinkLoss drops frames on one directed link (or both directions) with the
// given probability while the window is active. Prob 1 severs the link.
type LinkLoss struct {
	Window
	From          int     `json:"from"`
	To            int     `json:"to"`
	Bidirectional bool    `json:"bidirectional,omitempty"`
	Prob          float64 `json:"prob"`
}

// RegionLoss drops frames whose sender or receiver stands inside the
// rectangle with the given probability while the window is active — a
// jammed or congested area of the field.
type RegionLoss struct {
	Window
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
	Prob float64 `json:"prob"`
}

// contains reports whether (x, y) lies inside the region.
func (r RegionLoss) contains(x, y float64) bool {
	return x >= r.MinX && x <= r.MaxX && y >= r.MinY && y <= r.MaxY
}

// Outage silences one node for the window: it neither transmits nor
// receives. An open-ended window is a crash; a bounded one is a pause
// followed by a reboot (protocol state survives, as on a real device whose
// radio was off).
type Outage struct {
	Window
	Node int `json:"node"`
}

// Partition splits the network for the window: frames between nodes in
// different groups are dropped. Nodes not listed in any group share one
// implicit extra group.
type Partition struct {
	Window
	Groups [][]int `json:"groups"`
}

// Chaos perturbs frame delivery while active: with probability Prob per
// transmission, Duplicate schedules up to MaxExtra extra copies and Reorder
// postpones delivery by up to MaxDelay seconds (letting later frames
// overtake).
type Chaos struct {
	Window
	Prob     float64 `json:"prob"`
	MaxExtra int     `json:"max_extra,omitempty"`
	MaxDelay float64 `json:"max_delay,omitempty"`
}

// Plan is one named, serializable fault schedule.
type Plan struct {
	Name string `json:"name,omitempty"`
	// Seed drives the injector's private random stream; zero derives it
	// from the scenario seed, so the same plan under different scenario
	// seeds draws different (but still reproducible) loss patterns.
	Seed       int64        `json:"seed,omitempty"`
	LinkLoss   []LinkLoss   `json:"link_loss,omitempty"`
	RegionLoss []RegionLoss `json:"region_loss,omitempty"`
	Outages    []Outage     `json:"outages,omitempty"`
	Partitions []Partition  `json:"partitions,omitempty"`
	Duplicate  []Chaos      `json:"duplicate,omitempty"`
	Reorder    []Chaos      `json:"reorder,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || len(p.LinkLoss) == 0 && len(p.RegionLoss) == 0 &&
		len(p.Outages) == 0 && len(p.Partitions) == 0 &&
		len(p.Duplicate) == 0 && len(p.Reorder) == 0
}

// Validate checks the plan against a network of numNodes nodes; pass a
// negative count to skip node-bound checks.
func (p *Plan) Validate(numNodes int) error {
	if p == nil {
		return nil
	}
	checkNode := func(n int, what string) error {
		if n < 0 || (numNodes >= 0 && n >= numNodes) {
			return fmt.Errorf("faults: %s references node %d outside [0,%d)", what, n, numNodes)
		}
		return nil
	}
	for i, l := range p.LinkLoss {
		if err := l.validate("link_loss"); err != nil {
			return err
		}
		if err := checkNode(l.From, "link_loss"); err != nil {
			return err
		}
		if err := checkNode(l.To, "link_loss"); err != nil {
			return err
		}
		if l.Prob <= 0 || l.Prob > 1 {
			return fmt.Errorf("faults: link_loss[%d] probability %g outside (0,1]", i, l.Prob)
		}
	}
	for i, r := range p.RegionLoss {
		if err := r.validate("region_loss"); err != nil {
			return err
		}
		if r.MinX > r.MaxX || r.MinY > r.MaxY {
			return fmt.Errorf("faults: region_loss[%d] rectangle is inverted", i)
		}
		if r.Prob <= 0 || r.Prob > 1 {
			return fmt.Errorf("faults: region_loss[%d] probability %g outside (0,1]", i, r.Prob)
		}
	}
	for _, o := range p.Outages {
		if err := o.validate("outage"); err != nil {
			return err
		}
		if err := checkNode(o.Node, "outage"); err != nil {
			return err
		}
	}
	for i, pt := range p.Partitions {
		if err := pt.validate("partition"); err != nil {
			return err
		}
		if len(pt.Groups) < 1 {
			return fmt.Errorf("faults: partition[%d] has no groups", i)
		}
		seen := map[int]bool{}
		for _, g := range pt.Groups {
			for _, n := range g {
				if err := checkNode(n, "partition"); err != nil {
					return err
				}
				if seen[n] {
					return fmt.Errorf("faults: partition[%d] lists node %d twice", i, n)
				}
				seen[n] = true
			}
		}
	}
	for i, c := range append(append([]Chaos(nil), p.Duplicate...), p.Reorder...) {
		if err := c.validate("chaos"); err != nil {
			return err
		}
		if c.Prob <= 0 || c.Prob > 1 {
			return fmt.Errorf("faults: chaos[%d] probability %g outside (0,1]", i, c.Prob)
		}
		if c.MaxDelay < 0 {
			return fmt.Errorf("faults: chaos[%d] negative max delay %g", i, c.MaxDelay)
		}
	}
	return nil
}

// ParseJSON decodes a plan from JSON bytes.
func ParseJSON(b []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("faults: bad plan JSON: %w", err)
	}
	return &p, nil
}

// ReadFile loads a plan from a JSON file.
func ReadFile(path string) (*Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseJSON(b)
}

// MarshalJSON helpers are the stdlib defaults; WriteFile is the inverse of
// ReadFile for plan authoring tools and tests.
func WriteFile(path string, p *Plan) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
