package faults

import (
	"sync"
	"testing"

	"manetskyline/internal/tuple"
)

func TestEvalNodeDownAndSevered(t *testing.T) {
	p := &Plan{
		Outages: []Outage{
			{Window: Window{Start: 1, End: 2}, Node: 3},
			{Window: Window{Start: 5}, Node: 4}, // open-ended crash
		},
		Partitions: []Partition{{
			Window: Window{Start: 10, End: 20},
			Groups: [][]int{{0, 1}, {2, 3}},
		}},
	}
	e := NewEval(p, 1)
	if e.NodeDown(3, 0.5) {
		t.Errorf("node 3 down before its window")
	}
	if !e.NodeDown(3, 1.5) {
		t.Errorf("node 3 should be down at 1.5")
	}
	if e.NodeDown(3, 2.0) {
		t.Errorf("node 3 should be back at 2.0")
	}
	if !e.NodeDown(4, 100) {
		t.Errorf("open-ended crash should never end")
	}
	if !e.Severed(0, 3, 1.5) || !e.Severed(3, 0, 1.5) {
		t.Errorf("outage should sever both directions")
	}
	if e.Severed(0, 1, 15) {
		t.Errorf("same partition group should stay connected")
	}
	if !e.Severed(0, 2, 15) {
		t.Errorf("cross-partition link should be severed")
	}
	// Unlisted nodes share the implicit group: 7↔8 connected, 7↔0 severed.
	if e.Severed(7, 8, 15) {
		t.Errorf("two unlisted nodes should stay connected")
	}
	if !e.Severed(7, 0, 15) {
		t.Errorf("unlisted vs listed node should be severed")
	}
}

func TestEvalSeveredUntil(t *testing.T) {
	p := &Plan{
		Outages: []Outage{{Window: Window{Start: 1, End: 3}, Node: 1}},
		Partitions: []Partition{{
			Window: Window{Start: 2, End: 5},
			Groups: [][]int{{0}, {1}},
		}},
	}
	e := NewEval(p, 1)
	if until, forever := e.SeveredUntil(0, 1, 2.5); forever || until != 5 {
		t.Errorf("SeveredUntil = %g %v, want 5 false", until, forever)
	}
	if until, forever := e.SeveredUntil(0, 1, 4.5); forever || until != 5 {
		t.Errorf("SeveredUntil = %g %v, want 5 false", until, forever)
	}
	if until, _ := e.SeveredUntil(0, 1, 6); until != 6 {
		t.Errorf("healed link should return now")
	}
	open := NewEval(&Plan{Outages: []Outage{{Window: Window{Start: 0}, Node: 1}}}, 1)
	if _, forever := open.SeveredUntil(0, 1, 1); !forever {
		t.Errorf("open-ended outage should report forever")
	}
}

func TestEvalDropFrameAndEffects(t *testing.T) {
	p := &Plan{
		LinkLoss: []LinkLoss{{
			Window: Window{Start: 0, End: 10}, From: 0, To: 1, Prob: 1,
		}},
		RegionLoss: []RegionLoss{{
			Window: Window{Start: 0, End: 10},
			MinX:   0, MinY: 0, MaxX: 100, MaxY: 100, Prob: 1,
		}},
		Duplicate: []Chaos{{Window: Window{Start: 0, End: 10}, Prob: 1, MaxExtra: 1}},
		Reorder:   []Chaos{{Window: Window{Start: 0, End: 10}, Prob: 1, MaxDelay: 2}},
	}
	e := NewEval(p, 7)
	if !e.DropFrame(0, 1, 5, tuple.Point{X: 500, Y: 500}, tuple.Point{X: 500, Y: 500}) {
		t.Errorf("prob-1 link loss should drop")
	}
	if e.DropFrame(1, 0, 5, tuple.Point{X: 500, Y: 500}, tuple.Point{X: 500, Y: 500}) {
		t.Errorf("unidirectional loss should not drop the reverse link")
	}
	if !e.DropFrame(2, 3, 5, tuple.Point{X: 50, Y: 50}, tuple.Point{X: 500, Y: 500}) {
		t.Errorf("prob-1 region loss should drop frames from inside the region")
	}
	if e.DropFrame(0, 1, 50, tuple.Point{}, tuple.Point{}) {
		t.Errorf("nothing should drop outside every window")
	}
	delay, dups := e.FrameEffects(5)
	if delay <= 0 || delay > 2 {
		t.Errorf("prob-1 reorder should delay within (0,2], got %g", delay)
	}
	if dups != 1 {
		t.Errorf("prob-1 duplicate with MaxExtra 1 should add one copy, got %d", dups)
	}
}

func TestEvalConcurrentUse(t *testing.T) {
	p, err := Named("chaos", 9, 10)
	if err != nil {
		t.Fatalf("Named: %v", err)
	}
	e := NewEval(p, 3)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				e.DropFrame(0, 1, 5, tuple.Point{}, tuple.Point{})
				e.FrameEffects(5)
				e.Severed(0, 1, 5)
			}
		}()
	}
	wg.Wait()
}
