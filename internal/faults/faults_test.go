package faults

import (
	"path/filepath"
	"testing"

	"manetskyline/internal/radio"
	"manetskyline/internal/tuple"
)

// nid and pt shorten injector-hook arguments in assertions.
func nid(n int) radio.NodeID { return radio.NodeID(n) }
func pt() tuple.Point        { return tuple.Point{} }

func TestWindowActive(t *testing.T) {
	cases := []struct {
		w    Window
		now  float64
		want bool
	}{
		{Window{Start: 10, End: 20}, 5, false},
		{Window{Start: 10, End: 20}, 10, true},
		{Window{Start: 10, End: 20}, 19.9, true},
		{Window{Start: 10, End: 20}, 20, false},
		{Window{Start: 10}, 1e9, true}, // open end: a crash never recovers
		{Window{Start: 10}, 9.9, false},
	}
	for _, c := range cases {
		if got := c.w.Active(c.now); got != c.want {
			t.Errorf("window %+v at %g: active=%v, want %v", c.w, c.now, got, c.want)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	good := &Plan{
		LinkLoss:   []LinkLoss{{Window: Window{Start: 0, End: 10}, From: 0, To: 1, Prob: 0.5}},
		RegionLoss: []RegionLoss{{Window: Window{Start: 0}, MinX: 0, MinY: 0, MaxX: 10, MaxY: 10, Prob: 1}},
		Outages:    []Outage{{Window: Window{Start: 5}, Node: 2}},
		Partitions: []Partition{{Window: Window{Start: 1, End: 2}, Groups: [][]int{{0, 1}, {2}}}},
		Duplicate:  []Chaos{{Window: Window{Start: 0, End: 1}, Prob: 0.1, MaxExtra: 2}},
	}
	if err := good.Validate(3); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if (*Plan)(nil).Validate(3) != nil {
		t.Errorf("nil plan should validate")
	}
	bad := []*Plan{
		{LinkLoss: []LinkLoss{{Window: Window{Start: 0}, From: 0, To: 9, Prob: 0.5}}},       // node out of range
		{LinkLoss: []LinkLoss{{Window: Window{Start: 0}, From: 0, To: 1, Prob: 0}}},         // zero probability
		{LinkLoss: []LinkLoss{{Window: Window{Start: 5, End: 5}, From: 0, To: 1, Prob: 1}}}, // empty window
		{Outages: []Outage{{Window: Window{Start: -1}, Node: 0}}},                           // negative start
		{Partitions: []Partition{{Window: Window{Start: 0}, Groups: [][]int{{0, 1}, {1}}}}}, // duplicate member
		{Partitions: []Partition{{Window: Window{Start: 0}}}},                               // no groups
		{RegionLoss: []RegionLoss{{Window: Window{Start: 0}, MinX: 5, MaxX: 1, Prob: 1}}},   // inverted rect
		{Reorder: []Chaos{{Window: Window{Start: 0}, Prob: 0.5, MaxDelay: -1}}},             // negative delay
	}
	for i, p := range bad {
		if p.Validate(3) == nil {
			t.Errorf("bad plan %d accepted: %+v", i, p)
		}
	}
}

func TestEmpty(t *testing.T) {
	if !(&Plan{Name: "noop", Seed: 9}).Empty() {
		t.Errorf("plan with only name/seed should be empty")
	}
	if (&Plan{Outages: []Outage{{Node: 0}}}).Empty() {
		t.Errorf("plan with an outage is not empty")
	}
	if !(*Plan)(nil).Empty() {
		t.Errorf("nil plan is empty")
	}
}

func TestNamedPlansValidate(t *testing.T) {
	for _, name := range PlanNames() {
		p, err := Named(name, 9, 3600)
		if err != nil {
			t.Fatalf("builtin %q: %v", name, err)
		}
		if p.Empty() {
			t.Errorf("builtin %q is empty", name)
		}
		if err := p.Validate(9); err != nil {
			t.Errorf("builtin %q does not validate: %v", name, err)
		}
	}
	if _, err := Named("no-such-plan", 9, 3600); err == nil {
		t.Errorf("unknown plan name accepted")
	}
}

func TestChurnPlanDeterministic(t *testing.T) {
	a := ChurnPlan(16, 3600, 2, 0.1, 7)
	b := ChurnPlan(16, 3600, 2, 0.1, 7)
	if len(a.Outages) != len(b.Outages) {
		t.Fatalf("churn outage counts differ: %d vs %d", len(a.Outages), len(b.Outages))
	}
	for i := range a.Outages {
		if a.Outages[i] != b.Outages[i] {
			t.Fatalf("churn outage %d differs: %+v vs %+v", i, a.Outages[i], b.Outages[i])
		}
	}
	for _, o := range a.Outages {
		if o.Node == 0 {
			t.Errorf("churn must spare node 0 (the conventional originator)")
		}
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p, err := Named("crash+partition", 9, 1800)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := WriteFile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || len(got.Outages) != len(p.Outages) ||
		len(got.Partitions) != len(p.Partitions) {
		t.Fatalf("round trip changed the plan:\n%+v\n%+v", p, got)
	}
	// Load resolves a path to the file and a bare word to a builtin.
	fromFile, err := Load(path, 9, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Name != p.Name {
		t.Errorf("Load(path) name %q, want %q", fromFile.Name, p.Name)
	}
	if _, err := Load("chaos", 9, 1800); err != nil {
		t.Errorf("Load(builtin name): %v", err)
	}
	if _, err := Load("definitely-missing", 9, 1800); err == nil {
		t.Errorf("Load of unknown spec should fail")
	}
}

func TestInjectorOutageWindows(t *testing.T) {
	p := &Plan{Outages: []Outage{
		{Window: Window{Start: 100, End: 200}, Node: 3},
		{Window: Window{Start: 300}, Node: 3}, // crash for good
	}}
	in := NewInjector(p, 1)
	cases := []struct {
		now  float64
		want bool
	}{{50, false}, {150, true}, {250, false}, {350, true}, {1e6, true}}
	for _, c := range cases {
		if got := in.NodeDown(3, c.now); got != c.want {
			t.Errorf("NodeDown(3, %g) = %v, want %v", c.now, got, c.want)
		}
		if in.NodeDown(2, c.now) {
			t.Errorf("node 2 has no outages but is down at %g", c.now)
		}
	}
}

func TestInjectorPartitionDeterministic(t *testing.T) {
	p := &Plan{Partitions: []Partition{{
		Window: Window{Start: 0, End: 100},
		Groups: [][]int{{0, 1}, {2, 3}},
	}}}
	in := NewInjector(p, 1)
	cut := func(a, b int, now float64) bool {
		return in.CutLink(nid(a), nid(b), now, pt(), pt())
	}
	if cut(0, 1, 50) {
		t.Errorf("same-group link severed")
	}
	if !cut(0, 2, 50) || !cut(3, 1, 50) {
		t.Errorf("cross-group link survived the partition")
	}
	if cut(0, 2, 150) {
		t.Errorf("partition outlived its window")
	}
	// Unlisted nodes share the implicit group -1: connected to each other,
	// cut from every listed group.
	if cut(4, 5, 50) {
		t.Errorf("two unlisted nodes were severed")
	}
	if !cut(4, 0, 50) {
		t.Errorf("unlisted node still reaches group 0")
	}
	if in.Stats.PartitionDrops == 0 {
		t.Errorf("partition drops not tallied")
	}
}

func TestInjectorLossSeedDeterminism(t *testing.T) {
	p := &Plan{LinkLoss: []LinkLoss{{
		Window: Window{Start: 0}, From: 0, To: 1, Bidirectional: true, Prob: 0.5,
	}}}
	run := func(seed int64) []bool {
		in := NewInjector(p, seed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.CutLink(0, 1, float64(i), pt(), pt())
		}
		return out
	}
	a, b := run(3), run(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := run(4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different scenario seeds produced identical loss patterns")
	}
	// Bidirectional: the reverse direction is also lossy (statistically).
	in := NewInjector(p, 9)
	drops := 0
	for i := 0; i < 64; i++ {
		if in.CutLink(1, 0, float64(i), pt(), pt()) {
			drops++
		}
	}
	if drops == 0 {
		t.Errorf("bidirectional loss never dropped the reverse direction")
	}
}

func TestTxEffects(t *testing.T) {
	p := &Plan{
		Duplicate: []Chaos{{Window: Window{Start: 0}, Prob: 1, MaxExtra: 3}},
		Reorder:   []Chaos{{Window: Window{Start: 0}, Prob: 1, MaxDelay: 2}},
	}
	in := NewInjector(p, 5)
	sawDup := false
	for i := 0; i < 32; i++ {
		extra, dups := in.TxEffects(0, float64(i))
		if extra < 0 || extra > 2 {
			t.Fatalf("reorder delay %g outside [0,2]", extra)
		}
		if len(dups) > 0 {
			sawDup = true
		}
		if len(dups) > 3 {
			t.Fatalf("%d duplicate copies exceed MaxExtra", len(dups))
		}
	}
	if !sawDup {
		t.Errorf("Prob=1 duplication never duplicated")
	}
	if in.Stats.Duplicated == 0 || in.Stats.Reordered == 0 {
		t.Errorf("chaos stats not tallied: %+v", in.Stats)
	}
	// Outside every window the injector is a no-op that draws nothing.
	quiet := NewInjector(&Plan{
		Duplicate: []Chaos{{Window: Window{Start: 100, End: 200}, Prob: 1}},
	}, 5)
	if extra, dups := quiet.TxEffects(0, 50); extra != 0 || len(dups) != 0 {
		t.Errorf("inactive window perturbed a transmission")
	}
}
