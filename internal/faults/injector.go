package faults

import (
	"math/rand"
	"sort"

	"manetskyline/internal/radio"
	"manetskyline/internal/sim"
	"manetskyline/internal/tuple"
)

// Stats tallies what the injector actually did to a run, by cause.
type Stats struct {
	// OutageDrops counts frames silenced because an endpoint was down.
	OutageDrops int
	// LinkDrops, RegionDrops, and PartitionDrops count frames removed by the
	// corresponding schedules.
	LinkDrops      int
	RegionDrops    int
	PartitionDrops int
	// Duplicated counts extra frame copies scheduled; Reordered counts
	// frames whose delivery was postponed.
	Duplicated int
	Reordered  int
}

// Injector applies one Plan to a running simulation through the radio
// medium's fault hooks. All randomness flows through a private seeded
// source: the medium's own stream is never consulted, so attaching an empty
// plan (or none) leaves a run byte-identical, and any plan replays
// bit-identically for the same (plan seed, scenario seed) pair.
type Injector struct {
	plan *Plan
	rng  *rand.Rand

	// outagesByNode indexes outage windows for O(k) NodeDown checks under
	// churn plans with many outages.
	outagesByNode map[int][]Window
	// groups[i] maps node → group index for plan.Partitions[i]; nodes not
	// listed share the implicit group -1.
	groups []map[int]int

	dupScratch []float64

	// Stats is exported for assertions and reports.
	Stats Stats
}

// NewInjector builds the injector for a plan. The scenario seed feeds the
// private random stream when the plan does not pin its own seed.
func NewInjector(p *Plan, scenarioSeed int64) *Injector {
	seed := p.Seed
	if seed == 0 {
		// An arbitrary odd constant decorrelates the fault stream from the
		// scenario stream that shares the same user-facing seed.
		seed = scenarioSeed*0x9E3779B9 + 0x1D872B41
	}
	in := &Injector{
		plan:          p,
		rng:           rand.New(rand.NewSource(seed)),
		outagesByNode: make(map[int][]Window),
	}
	for _, o := range p.Outages {
		in.outagesByNode[o.Node] = append(in.outagesByNode[o.Node], o.Window)
	}
	for _, pt := range p.Partitions {
		m := make(map[int]int)
		for g, nodes := range pt.Groups {
			for _, n := range nodes {
				m[n] = g
			}
		}
		in.groups = append(in.groups, m)
	}
	return in
}

// Plan returns the schedule the injector executes.
func (in *Injector) Plan() *Plan { return in.plan }

// NodeDown reports whether the node is inside an outage window at now.
func (in *Injector) NodeDown(id radio.NodeID, now float64) bool {
	for _, w := range in.outagesByNode[int(id)] {
		if w.Active(now) {
			return true
		}
	}
	return false
}

// CutLink decides, at delivery time, whether the frame from → to must be
// removed by the schedule: a downed receiver silences the frame, partitions
// sever deterministically, and link and region loss windows draw from the
// injector's private stream. The sender's liveness is not re-checked here —
// it was checked at transmit time, and a frame already in flight when its
// sender goes down still arrives.
func (in *Injector) CutLink(from, to radio.NodeID, now float64, fromPos, toPos tuple.Point) bool {
	if in.NodeDown(to, now) {
		in.Stats.OutageDrops++
		return true
	}
	for i, pt := range in.plan.Partitions {
		if !pt.Active(now) {
			continue
		}
		m := in.groups[i]
		gf, okf := m[int(from)]
		gt, okt := m[int(to)]
		if !okf {
			gf = -1
		}
		if !okt {
			gt = -1
		}
		if gf != gt {
			in.Stats.PartitionDrops++
			return true
		}
	}
	for _, l := range in.plan.LinkLoss {
		match := (l.From == int(from) && l.To == int(to)) ||
			(l.Bidirectional && l.From == int(to) && l.To == int(from))
		if !match || !l.Active(now) {
			continue
		}
		if l.Prob >= 1 || in.rng.Float64() < l.Prob {
			in.Stats.LinkDrops++
			return true
		}
	}
	for _, r := range in.plan.RegionLoss {
		if !r.Active(now) {
			continue
		}
		if !r.contains(fromPos.X, fromPos.Y) && !r.contains(toPos.X, toPos.Y) {
			continue
		}
		if r.Prob >= 1 || in.rng.Float64() < r.Prob {
			in.Stats.RegionDrops++
			return true
		}
	}
	return false
}

// dupSpread is the default spacing of duplicated copies when a Duplicate
// window does not set MaxDelay: tight enough to land amid the original
// frame's contemporaries, nonzero so copies occupy distinct event slots.
const dupSpread = 0.005

// TxEffects perturbs one transmission: extraDelay postpones the nominal
// delivery (reordering it past later frames) and each entry of dupDelays
// schedules one duplicate copy that many seconds after the (postponed)
// delivery. The returned slice is reused across calls.
func (in *Injector) TxEffects(from radio.NodeID, now float64) (extraDelay float64, dupDelays []float64) {
	for _, c := range in.plan.Reorder {
		if !c.Active(now) {
			continue
		}
		if in.rng.Float64() < c.Prob {
			extraDelay += in.rng.Float64() * c.MaxDelay
			in.Stats.Reordered++
		}
	}
	in.dupScratch = in.dupScratch[:0]
	for _, c := range in.plan.Duplicate {
		if !c.Active(now) {
			continue
		}
		if in.rng.Float64() >= c.Prob {
			continue
		}
		extra := 1
		if c.MaxExtra > 1 {
			extra += in.rng.Intn(c.MaxExtra)
		}
		spread := c.MaxDelay
		if spread <= 0 {
			spread = dupSpread
		}
		for i := 0; i < extra; i++ {
			in.dupScratch = append(in.dupScratch, in.rng.Float64()*spread)
			in.Stats.Duplicated++
		}
	}
	return extraDelay, in.dupScratch
}

// Event narrates one schedule boundary for traces and telemetry.
type Event struct {
	// T is the simulated time of the boundary.
	T float64
	// Kind names the fault and edge: "outage-start", "outage-end",
	// "partition-start", "partition-end", "link-loss-start", ... Open-ended
	// windows emit no end event.
	Kind string
	// Node is the affected node for outages, -1 otherwise.
	Node int
}

// Schedule registers one engine event per schedule boundary and feeds each
// to emit as simulated time passes — the hook the simulator uses to write
// fault lines into its JSONL trace. Boundaries are sorted by (time, kind,
// node) before scheduling so the trace order is stable regardless of plan
// declaration order.
func (in *Injector) Schedule(eng *sim.Engine, emit func(Event)) {
	var evs []Event
	add := func(w Window, kind string, node int) {
		evs = append(evs, Event{T: w.Start, Kind: kind + "-start", Node: node})
		if w.End > 0 {
			evs = append(evs, Event{T: w.End, Kind: kind + "-end", Node: node})
		}
	}
	for _, o := range in.plan.Outages {
		add(o.Window, "outage", o.Node)
	}
	for _, pt := range in.plan.Partitions {
		add(pt.Window, "partition", -1)
	}
	for _, l := range in.plan.LinkLoss {
		add(l.Window, "link-loss", l.From)
	}
	for _, r := range in.plan.RegionLoss {
		add(r.Window, "region-loss", -1)
	}
	for _, c := range in.plan.Duplicate {
		add(c.Window, "duplicate", -1)
	}
	for _, c := range in.plan.Reorder {
		add(c.Window, "reorder", -1)
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].T != evs[j].T {
			return evs[i].T < evs[j].T
		}
		if evs[i].Kind != evs[j].Kind {
			return evs[i].Kind < evs[j].Kind
		}
		return evs[i].Node < evs[j].Node
	})
	for _, ev := range evs {
		ev := ev
		eng.At(ev.T, func() { emit(ev) })
	}
}
