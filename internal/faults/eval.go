package faults

import (
	"math/rand"
	"sync"

	"manetskyline/internal/tuple"
)

// Eval answers "what does this plan do to the link from → to at time now?"
// for consumers that run outside the discrete-event simulator — most
// importantly the live-socket chaos proxy (internal/chaos), which maps wall
// clock onto plan time. Unlike Injector it has no radio/sim dependencies,
// is safe for concurrent use, and draws loss decisions from its own locked
// stream (live runs are not replayed byte-for-byte, so per-call determinism
// is not required — only distribution fidelity).
type Eval struct {
	plan *Plan

	mu  sync.Mutex
	rng *rand.Rand

	outagesByNode map[int][]Window
	groups        []map[int]int
}

// NewEval builds an evaluator for the plan. The seed feeds the private
// random stream when the plan does not pin its own.
func NewEval(p *Plan, seed int64) *Eval {
	if p.Seed != 0 {
		seed = p.Seed
	}
	e := &Eval{
		plan:          p,
		rng:           rand.New(rand.NewSource(seed)),
		outagesByNode: make(map[int][]Window),
	}
	for _, o := range p.Outages {
		e.outagesByNode[o.Node] = append(e.outagesByNode[o.Node], o.Window)
	}
	for _, pt := range p.Partitions {
		m := make(map[int]int)
		for g, nodes := range pt.Groups {
			for _, n := range nodes {
				m[n] = g
			}
		}
		e.groups = append(e.groups, m)
	}
	return e
}

// Plan returns the schedule the evaluator answers for.
func (e *Eval) Plan() *Plan { return e.plan }

// NodeDown reports whether the node sits inside an outage window at now.
func (e *Eval) NodeDown(node int, now float64) bool {
	for _, w := range e.outagesByNode[node] {
		if w.Active(now) {
			return true
		}
	}
	return false
}

// Severed reports whether a partition (or an endpoint outage) blocks the
// link from → to at now. Deterministic: no random draw is consumed.
func (e *Eval) Severed(from, to int, now float64) bool {
	if e.NodeDown(from, now) || e.NodeDown(to, now) {
		return true
	}
	for i, pt := range e.plan.Partitions {
		if !pt.Active(now) {
			continue
		}
		m := e.groups[i]
		gf, okf := m[from]
		gt, okt := m[to]
		if !okf {
			gf = -1
		}
		if !okt {
			gt = -1
		}
		if gf != gt {
			return true
		}
	}
	return false
}

// SeveredUntil returns the plan time at which every currently-severing
// window over from → to has ended, and whether any of them is open-ended
// (a permanent cut). When the link is not severed it returns (now, false).
func (e *Eval) SeveredUntil(from, to int, now float64) (until float64, forever bool) {
	until = now
	extend := func(w Window) {
		if !w.Active(now) {
			return
		}
		if w.End <= 0 {
			forever = true
		} else if w.End > until {
			until = w.End
		}
	}
	for _, w := range e.outagesByNode[from] {
		extend(w)
	}
	for _, w := range e.outagesByNode[to] {
		extend(w)
	}
	for i, pt := range e.plan.Partitions {
		m := e.groups[i]
		gf, okf := m[from]
		gt, okt := m[to]
		if !okf {
			gf = -1
		}
		if !okt {
			gt = -1
		}
		if gf != gt {
			extend(pt.Window)
		}
	}
	return until, forever
}

// DropFrame decides whether probabilistic loss (link or region windows)
// removes one frame on from → to at now. Endpoint positions feed region
// loss; pass zero points when positions are unknown (region loss then only
// fires for regions containing the origin).
func (e *Eval) DropFrame(from, to int, now float64, fromPos, toPos tuple.Point) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, l := range e.plan.LinkLoss {
		match := (l.From == from && l.To == to) ||
			(l.Bidirectional && l.From == to && l.To == from)
		if !match || !l.Active(now) {
			continue
		}
		if l.Prob >= 1 || e.rng.Float64() < l.Prob {
			return true
		}
	}
	for _, r := range e.plan.RegionLoss {
		if !r.Active(now) {
			continue
		}
		if !r.contains(fromPos.X, fromPos.Y) && !r.contains(toPos.X, toPos.Y) {
			continue
		}
		if r.Prob >= 1 || e.rng.Float64() < r.Prob {
			return true
		}
	}
	return false
}

// FrameEffects draws the chaos perturbations for one frame at now: delay is
// the extra seconds to hold the frame (reordering it past its successors)
// and dups is how many extra copies to deliver.
func (e *Eval) FrameEffects(now float64) (delay float64, dups int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, c := range e.plan.Reorder {
		if c.Active(now) && e.rng.Float64() < c.Prob {
			delay += e.rng.Float64() * c.MaxDelay
		}
	}
	for _, c := range e.plan.Duplicate {
		if c.Active(now) && e.rng.Float64() < c.Prob {
			dups++
			if c.MaxExtra > 1 {
				dups += e.rng.Intn(c.MaxExtra)
			}
		}
	}
	return delay, dups
}
