package faults

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
)

// Named builds one of the built-in plans, scaled to a network of numNodes
// nodes running for simTime simulated seconds. The built-ins cover the
// regimes the paper's MANET premise implies but never measures:
//
//	crash            two nodes die permanently at 25% and 50% of the run
//	pause            one node sleeps through the middle third, then reboots
//	partition        the network splits in two halves for the middle third
//	crash+partition  both of the above combined (the golden-replay plan)
//	lossy-center     50% frame loss inside the central quarter of the field
//	chaos            10% duplication and 10% reordering (≤2 s) all run long
//	churn            Poisson-ish outage churn, ~2 outages per node, mean
//	                 downtime 10% of the run
func Named(name string, numNodes int, simTime float64) (*Plan, error) {
	if numNodes < 1 {
		return nil, fmt.Errorf("faults: named plan needs a positive node count, got %d", numNodes)
	}
	mid := func(frac float64) float64 { return simTime * frac }
	crash := []Outage{
		{Window: Window{Start: mid(0.25)}, Node: numNodes / 2},
	}
	if numNodes > 1 {
		crash = append(crash, Outage{Window: Window{Start: mid(0.5)}, Node: numNodes - 1})
	}
	halfA := make([]int, 0, numNodes/2)
	halfB := make([]int, 0, numNodes-numNodes/2)
	for i := 0; i < numNodes; i++ {
		if i < numNodes/2 {
			halfA = append(halfA, i)
		} else {
			halfB = append(halfB, i)
		}
	}
	partition := []Partition{{
		Window: Window{Start: mid(1.0 / 3), End: mid(2.0 / 3)},
		Groups: [][]int{halfA, halfB},
	}}
	switch name {
	case "crash":
		return &Plan{Name: name, Outages: crash}, nil
	case "pause":
		return &Plan{Name: name, Outages: []Outage{
			{Window: Window{Start: mid(1.0 / 3), End: mid(2.0 / 3)}, Node: 0},
		}}, nil
	case "partition":
		return &Plan{Name: name, Partitions: partition}, nil
	case "crash+partition":
		return &Plan{Name: name, Outages: crash, Partitions: partition}, nil
	case "lossy-center":
		return &Plan{Name: name, RegionLoss: []RegionLoss{{
			Window: Window{Start: 0, End: simTime},
			MinX:   250, MinY: 250, MaxX: 750, MaxY: 750,
			Prob: 0.5,
		}}}, nil
	case "chaos":
		return &Plan{Name: name,
			Duplicate: []Chaos{{Window: Window{Start: 0, End: simTime}, Prob: 0.1, MaxExtra: 2}},
			Reorder:   []Chaos{{Window: Window{Start: 0, End: simTime}, Prob: 0.1, MaxDelay: 2}},
		}, nil
	case "churn":
		return ChurnPlan(numNodes, simTime, 2, 0.1, 1), nil
	default:
		return nil, fmt.Errorf("faults: unknown plan %q (have %s)", name, strings.Join(PlanNames(), ", "))
	}
}

// PlanNames lists the built-in plan names.
func PlanNames() []string {
	names := []string{"crash", "pause", "partition", "crash+partition", "lossy-center", "chaos", "churn"}
	sort.Strings(names)
	return names
}

// ChurnPlan generates a deterministic node-churn schedule: each node
// suffers ~perNode outages at random times, each lasting ~downFrac of the
// run on average (exponential-ish via the uniform draw). Node 0 is spared
// so the network always retains at least one stable member.
func ChurnPlan(numNodes int, simTime, perNode, downFrac float64, seed int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Name: "churn", Seed: seed}
	for n := 1; n < numNodes; n++ {
		k := int(perNode)
		if rng.Float64() < perNode-float64(k) {
			k++
		}
		for i := 0; i < k; i++ {
			start := rng.Float64() * simTime * 0.9
			down := rng.Float64() * 2 * downFrac * simTime
			end := start + down
			if end > simTime {
				end = simTime
			}
			p.Outages = append(p.Outages, Outage{Window: Window{Start: start, End: end}, Node: n})
		}
	}
	sort.Slice(p.Outages, func(i, j int) bool {
		if p.Outages[i].Start != p.Outages[j].Start {
			return p.Outages[i].Start < p.Outages[j].Start
		}
		return p.Outages[i].Node < p.Outages[j].Node
	})
	return p
}

// Load resolves a -faults flag: a built-in plan name, or a path to a JSON
// plan file (tried whenever the name is unknown, preferred when the file
// exists). The returned plan is validated against the node count.
func Load(spec string, numNodes int, simTime float64) (*Plan, error) {
	var p *Plan
	if _, err := os.Stat(spec); err == nil {
		p, err = ReadFile(spec)
		if err != nil {
			return nil, err
		}
	} else {
		var nerr error
		p, nerr = Named(spec, numNodes, simTime)
		if nerr != nil {
			return nil, nerr
		}
	}
	if err := p.Validate(numNodes); err != nil {
		return nil, err
	}
	return p, nil
}
