// Package skyline implements the centralized skyline algorithms from the
// literature the paper builds on: Block-Nested-Loop (BNL) and
// Divide-and-Conquer from Börzsönyi et al. (ICDE 2001), Sort-Filter-Skyline
// (SFS) from Chomicki et al. (ICDE 2003), and an O(n log n) sort-based
// special case for two dimensions.
//
// These serve three roles in the reproduction: BNL over flat storage is the
// paper's baseline for the local-processing experiments (Figure 5); SFS is
// the template for the hybrid-storage local algorithm of Figure 4; and any
// of them provides the ground truth that the distributed protocol is
// property-tested against (distributed result = centralized constrained
// skyline).
package skyline

import (
	"sort"

	"manetskyline/internal/tuple"
)

// BNL computes the skyline with the block-nested-loop algorithm: every tuple
// is compared against a window of current skyline candidates. Incomparable
// tuples accumulate in the window; dominated tuples are discarded; window
// tuples dominated by an incoming tuple are evicted. With an unbounded
// window (memory is not the constraint in this reproduction) a single pass
// suffices and the window is exactly the skyline.
func BNL(ts []tuple.Tuple) []tuple.Tuple {
	var window []tuple.Tuple
next:
	for _, cand := range ts {
		for _, w := range window {
			if w.Dominates(cand) {
				continue next
			}
		}
		keep := window[:0]
		for _, w := range window {
			if !cand.Dominates(w) {
				keep = append(keep, w)
			}
		}
		window = append(keep, cand)
	}
	return window
}

// SFS computes the skyline with the sort-filter-skyline algorithm: tuples
// are first sorted by a monotone scoring function (here the attribute sum,
// the entropy-like score Chomicki et al. suggest), which guarantees that no
// tuple can dominate a tuple appearing earlier in the order. One scan then
// compares each tuple only against already-accepted skyline tuples, and
// accepted tuples are never evicted.
func SFS(ts []tuple.Tuple) []tuple.Tuple {
	sorted := make([]tuple.Tuple, len(ts))
	copy(sorted, ts)
	sort.SliceStable(sorted, func(i, j int) bool {
		return attrSum(sorted[i]) < attrSum(sorted[j])
	})
	var sky []tuple.Tuple
next:
	for _, cand := range sorted {
		for _, s := range sky {
			if s.Dominates(cand) {
				continue next
			}
			// Equal attribute vectors at different sites are both skyline
			// members; Dominates already returns false for them.
		}
		sky = append(sky, cand)
	}
	return sky
}

func attrSum(t tuple.Tuple) float64 {
	s := 0.0
	for _, v := range t.Attrs {
		s += v
	}
	return s
}

// DivideAndConquer computes the skyline with the D&C scheme of Börzsönyi et
// al.: split the input by the median of the first attribute, recurse, and
// merge by removing from the worse half everything dominated by the better
// half's skyline.
func DivideAndConquer(ts []tuple.Tuple) []tuple.Tuple {
	in := make([]tuple.Tuple, len(ts))
	copy(in, ts)
	return dac(in)
}

func dac(ts []tuple.Tuple) []tuple.Tuple {
	if len(ts) <= 32 {
		return BNL(ts)
	}
	// Partition around the median first-attribute value.
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].Attrs[0] < ts[j].Attrs[0] })
	mid := len(ts) / 2
	// Avoid splitting a run of equal values across both halves in a way that
	// makes no progress: nudge the split point to the end of the run.
	for mid < len(ts) && ts[mid].Attrs[0] == ts[mid-1].Attrs[0] {
		mid++
	}
	if mid == len(ts) {
		return BNL(ts)
	}
	low := dac(ts[:mid])  // better (smaller) on attribute 0
	high := dac(ts[mid:]) // worse on attribute 0
	// The run-aware split makes every high tuple strictly worse on
	// attribute 0 than every low tuple, so no high tuple can dominate a low
	// tuple; the merge only removes high tuples dominated by low's skyline.
	merged := low
nextHigh:
	for _, h := range high {
		for _, l := range low {
			if l.Dominates(h) {
				continue nextHigh
			}
		}
		merged = append(merged, h)
	}
	return merged
}

// Sort2D computes the skyline of strictly two-dimensional tuples in
// O(n log n): sort by (p1, p2) and sweep, keeping tuples whose p2 improves
// on the best seen so far. Tuples that tie the current best vector on both
// attributes are retained (distinct sites with equal attributes are mutually
// non-dominating). Panics if any tuple is not 2-D.
func Sort2D(ts []tuple.Tuple) []tuple.Tuple {
	sorted := make([]tuple.Tuple, len(ts))
	copy(sorted, ts)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Attrs[0] != b.Attrs[0] {
			return a.Attrs[0] < b.Attrs[0]
		}
		return a.Attrs[1] < b.Attrs[1]
	})
	var sky []tuple.Tuple
	for _, cand := range sorted {
		if cand.Dim() != 2 {
			panic("skyline: Sort2D requires 2-D tuples")
		}
		n := len(sky)
		if n == 0 {
			sky = append(sky, cand)
			continue
		}
		last := sky[n-1]
		switch {
		case cand.Attrs[1] < last.Attrs[1]:
			// Strict improvement in p2; p1 is ≥ previous. If p1 ties the
			// previous tuple the previous tuple is now dominated — but that
			// cannot happen: with equal p1 the sort put the smaller p2
			// first, so cand.p2 ≥ last.p2 within a p1-run. Hence p1 here is
			// strictly larger and both survive.
			sky = append(sky, cand)
		case cand.Attrs[0] == last.Attrs[0] && cand.Attrs[1] == last.Attrs[1]:
			// Equal vector: a distinct site with identical attributes.
			sky = append(sky, cand)
		}
	}
	return sky
}

// Constrained computes the skyline of the tuples within distance d of pos —
// the centralized semantics of the paper's distributed query Q_ds, and the
// ground truth for every distributed test.
func Constrained(ts []tuple.Tuple, pos tuple.Point, d float64) []tuple.Tuple {
	var in []tuple.Tuple
	for _, t := range ts {
		if pos.WithinDist(t.Pos(), d) {
			in = append(in, t)
		}
	}
	return SFS(in)
}

// Contains reports whether sky contains a tuple equal to t.
func Contains(sky []tuple.Tuple, t tuple.Tuple) bool {
	for _, s := range sky {
		if s.Equal(t) {
			return true
		}
	}
	return false
}

// SetEqual reports whether two skylines contain the same tuples, ignoring
// order and multiplicity of exact duplicates.
func SetEqual(a, b []tuple.Tuple) bool {
	for _, t := range a {
		if !Contains(b, t) {
			return false
		}
	}
	for _, t := range b {
		if !Contains(a, t) {
			return false
		}
	}
	return true
}

// Verify checks that sky is exactly the skyline of ts: every member is
// non-dominated in ts, and every non-dominated tuple of ts is present.
// It is O(n·|sky|) and intended for tests.
func Verify(ts, sky []tuple.Tuple) bool {
	for _, s := range sky {
		if !Contains(ts, s) {
			return false
		}
		for _, t := range ts {
			if t.Dominates(s) {
				return false
			}
		}
	}
next:
	for _, t := range ts {
		for _, u := range ts {
			if u.Dominates(t) {
				continue next
			}
		}
		if !Contains(sky, t) {
			return false
		}
	}
	return true
}
