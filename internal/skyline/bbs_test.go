package skyline

import (
	"testing"

	"manetskyline/internal/gen"
	"manetskyline/internal/tuple"
)

func TestBBSAndBitmapAgreeWithBNL(t *testing.T) {
	for _, dist := range []gen.Distribution{gen.Independent, gen.AntiCorrelated, gen.Correlated} {
		for _, dim := range []int{1, 2, 3, 4} {
			for seed := int64(0); seed < 3; seed++ {
				c := gen.DefaultConfig(500, dim, dist, seed)
				c.Distinct = 15 // coarse: many exact ties and duplicate vectors
				data := gen.Generate(c)
				want := BNL(data)
				if got := BBS(data); !SetEqual(want, got) {
					t.Errorf("BBS %v dim=%d seed=%d: %d tuples vs BNL %d",
						dist, dim, seed, len(got), len(want))
				}
				if got := Bitmap(data); !SetEqual(want, got) {
					t.Errorf("Bitmap %v dim=%d seed=%d: %d tuples vs BNL %d",
						dist, dim, seed, len(got), len(want))
				}
				if got := NN(data); !SetEqual(want, got) {
					t.Errorf("NN %v dim=%d seed=%d: %d tuples vs BNL %d",
						dist, dim, seed, len(got), len(want))
				}
				if got := Index(data); !SetEqual(want, got) {
					t.Errorf("Index %v dim=%d seed=%d: %d tuples vs BNL %d",
						dist, dim, seed, len(got), len(want))
				}
			}
		}
	}
}

func TestBBSPaperExample(t *testing.T) {
	want := BNL(hotelsR1())
	if got := BBS(hotelsR1()); !SetEqual(want, got) {
		t.Errorf("BBS(R1) = %v, want %v", got, want)
	}
	if got := Bitmap(hotelsR2()); !SetEqual(BNL(hotelsR2()), got) {
		t.Errorf("Bitmap(R2) = %v", got)
	}
}

func TestBBSEmptyAndSingleton(t *testing.T) {
	if got := BBS(nil); len(got) != 0 {
		t.Errorf("BBS(nil) = %v", got)
	}
	if got := Bitmap(nil); len(got) != 0 {
		t.Errorf("Bitmap(nil) = %v", got)
	}
	if got := NN(nil); len(got) != 0 {
		t.Errorf("NN(nil) = %v", got)
	}
	if got := Index(nil); len(got) != 0 {
		t.Errorf("Index(nil) = %v", got)
	}
	one := []tuple.Tuple{tp(0, 0, 3, 3)}
	if got := BBS(one); len(got) != 1 {
		t.Errorf("BBS singleton = %v", got)
	}
	if got := Bitmap(one); len(got) != 1 {
		t.Errorf("Bitmap singleton = %v", got)
	}
}

func TestBBSKeepsDuplicateVectors(t *testing.T) {
	data := []tuple.Tuple{
		tp(0, 0, 1, 1),
		tp(9, 9, 1, 1), // distinct site, same vector
		tp(5, 5, 0.5, 3),
		tp(7, 7, 2, 2), // dominated by both (1,1) sites
	}
	for name, f := range map[string]func([]tuple.Tuple) []tuple.Tuple{
		"BBS": BBS, "Bitmap": Bitmap, "NN": NN, "Index": Index,
	} {
		got := f(data)
		if len(got) != 3 {
			t.Errorf("%s: got %d tuples (%v), want both duplicate-vector sites kept", name, len(got), got)
		}
	}
}

// BBS is progressive: the skyline points come out in ascending attribute-sum
// order.
func TestBBSProgressiveOrder(t *testing.T) {
	data := gen.Generate(gen.DefaultConfig(2000, 2, gen.AntiCorrelated, 5))
	got := BBS(data)
	for i := 1; i < len(got); i++ {
		if sum(got[i].Attrs) < sum(got[i-1].Attrs)-1e-9 {
			t.Fatalf("BBS output not in ascending sum order at %d", i)
		}
	}
}

func TestBBSOnPrebuiltTree(t *testing.T) {
	data := gen.Generate(gen.DefaultConfig(1500, 3, gen.Independent, 9))
	tree := BuildAttrTree(data)
	a := BBSOnTree(data, tree)
	b := BBSOnTree(data, tree) // the tree is read-only and reusable
	if !SetEqual(a, b) || !SetEqual(a, BNL(data)) {
		t.Errorf("prebuilt-tree BBS inconsistent")
	}
}
