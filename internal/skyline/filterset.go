package skyline

import (
	"math/rand"

	"manetskyline/internal/tuple"
)

// This file implements the filter-set selection behind the sampling-based SF
// strategy (and the §7 multi-filter extension, whose core.SelectFilters
// delegates here): pick k tuples from a skyline so that the union volume of
// their dominating regions — the region of the data space where at least one
// chosen tuple prunes — is maximized under the upper bounds hi.
//
// A single max-VDR tuple covers one corner of the data space; tuples far
// from it survive pruning even when other skyline tuples would have removed
// them. The union of overlapping dominating hyper-rectangles has no cheap
// closed form, so marginal coverage is estimated by Monte Carlo sampling
// over the bounding box, seeded for determinism.

// FilterVDR computes Π_k (hi_k - p_k), the volume of t's dominating region
// against upper bounds hi, clamping to zero when t lies above any bound.
// This mirrors core.VDR so filter selection can run without the device
// machinery.
func FilterVDR(t tuple.Tuple, hi []float64) float64 {
	v := 1.0
	for k, p := range t.Attrs {
		f := hi[k] - p
		if f <= 0 {
			return 0
		}
		v *= f
	}
	return v
}

// SelectFilterSet picks up to k filtering tuples from a skyline, maximizing
// the (sampled) union volume of their dominating regions under the upper
// bounds hi. The first pick is always the max-VDR tuple, so k=1 degenerates
// to the paper's single-filter choice. samples controls the Monte Carlo
// precision (0 ⇒ 2048); seed makes the estimate deterministic.
func SelectFilterSet(sky []tuple.Tuple, hi []float64, k, samples int, seed int64) []tuple.Tuple {
	if k <= 0 || len(sky) == 0 {
		return nil
	}
	if k > len(sky) {
		k = len(sky)
	}
	if samples <= 0 {
		samples = 2048
	}
	dim := len(hi)

	// Sample points uniformly in [min attr seen, hi]^dim — the region where
	// candidate dominating regions live.
	lo := make([]float64, dim)
	copy(lo, sky[0].Attrs)
	for _, t := range sky {
		for j, v := range t.Attrs {
			if v < lo[j] {
				lo[j] = v
			}
		}
	}
	r := rand.New(rand.NewSource(seed))
	pts := make([][]float64, samples)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = lo[j] + r.Float64()*(hi[j]-lo[j])
		}
		pts[i] = p
	}

	covered := make([]bool, samples)
	chosen := make([]tuple.Tuple, 0, k)
	used := make([]bool, len(sky))

	// First pick: exact max-VDR for parity with the single-filter scheme
	// (ties keep the earliest tuple, matching core.SelectFilter).
	firstIdx, bestV := 0, 0.0
	for i := range sky {
		if v := FilterVDR(sky[i], hi); i == 0 || v > bestV {
			firstIdx, bestV = i, v
		}
	}
	first := sky[firstIdx].Clone()
	for i := range sky {
		if sky[i].Equal(first) {
			used[i] = true
			break
		}
	}
	chosen = append(chosen, first)
	markCovered(covered, pts, first)

	for len(chosen) < k {
		bestGain := 0
		bestIdx := -1
		for i := range sky {
			if used[i] {
				continue
			}
			gain := 0
			for s, p := range pts {
				if !covered[s] && inDominatingRegion(sky[i], p) {
					gain++
				}
			}
			if gain > bestGain {
				bestGain = gain
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break // no remaining tuple adds coverage
		}
		used[bestIdx] = true
		chosen = append(chosen, sky[bestIdx].Clone())
		markCovered(covered, pts, sky[bestIdx])
	}
	return chosen
}

func markCovered(covered []bool, pts [][]float64, t tuple.Tuple) {
	for s, p := range pts {
		if !covered[s] && inDominatingRegion(t, p) {
			covered[s] = true
		}
	}
}

// inDominatingRegion reports whether point p lies strictly inside t's
// dominating region (t better on every coordinate).
func inDominatingRegion(t tuple.Tuple, p []float64) bool {
	for j, v := range t.Attrs {
		if v >= p[j] {
			return false
		}
	}
	return true
}
